// Historical queries (paper §3.6): "CCF supports historical queries, which
// are served from the ledger ... The enclave fetches the required entries
// from the host, checks their integrity against the Merkle tree root
// signatures, decrypts them and makes them available to the application."
//
// The StateCache is the enclave half of that loop. An endpoint asks for a
// committed seqno range; the cache issues an asynchronous fetch to the
// untrusted host (tee::LedgerFetchRequest over the ringbuffer) and the
// endpoint answers 202 Accepted with Retry-After until the range is ready.
// Every fetched entry is treated as adversarial input: it is only accepted
// once its digest matches the enclave's own Merkle leaf AND a receipt to a
// signed root verifies against the service identity. Accepted private
// write sets are decrypted with the ledger secret and replayed into a
// point-in-time kv::Store so endpoints can run ordinary transactions
// against the historical state.
//
// Completed requests live in a small LRU with a TTL; in-flight requests
// retry on an interval and fail cleanly on a deadline. A rejected (corrupt)
// entry is never cached — its slot stays empty and is re-fetched.

#ifndef CCF_NODE_HISTORICAL_H_
#define CCF_NODE_HISTORICAL_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "common/status.h"
#include "kv/store.h"
#include "ledger/ledger.h"
#include "merkle/receipt.h"
#include "node/config.h"
#include "tee/messages.h"

namespace ccf::node::historical {

// One ledger entry that passed enclave-side verification.
struct VerifiedEntry {
  ledger::Entry entry;
  kv::WriteSet writes;      // public + decrypted private writes
  merkle::Receipt receipt;  // proof handed back to the client
};

enum class RequestState {
  kFetching,   // host fetch in flight (or awaiting retry)
  kReady,      // all entries verified, store materialized
  kFailed,     // timeout or host error; reported once, then forgotten
  kCompacted,  // retired below the snapshot horizon; definitive (sticky)
};

// A cached [lo, hi] range request.
struct RangeRequest {
  uint64_t lo = 0;
  uint64_t hi = 0;
  RequestState state = RequestState::kFetching;
  std::string error;
  uint64_t horizon = 0;  // meaningful for kCompacted

  // Index (seqno - lo); empty slots are unverified (awaiting [re]fetch).
  std::vector<std::optional<VerifiedEntry>> entries;
  // Point-in-time store: state as of `hi`, with every seqno in [lo, hi]
  // applied on top of an empty base — a range-scoped historical view.
  std::shared_ptr<kv::Store> store;

  uint64_t last_access_ms = 0;
  uint64_t deadline_ms = 0;
  uint64_t last_fetch_ms = 0;
  uint64_t retries = 0;

  bool Complete() const;
  const VerifiedEntry* EntryAt(uint64_t seqno) const;
  // A transaction against the historical state at `seqno` in [lo, hi].
  Result<kv::Tx> TxAt(uint64_t seqno) const;
};

class StateCache {
 public:
  // Sends a tee::LedgerFetchRequest for [lo, hi] to the host.
  using FetchFn = std::function<void(uint64_t lo, uint64_t hi)>;
  // Verifies one fetched entry against the enclave's Merkle tree and the
  // service identity. Status semantics:
  //   Unavailable      — transient (not yet committed / no covering signed
  //                      root); the slot stays empty and is retried.
  //   PermissionDenied — the entry contradicts the tree: rejected, never
  //                      cached, counted in stats().entries_rejected.
  using VerifyFn = std::function<Result<VerifiedEntry>(const ledger::Entry&)>;

  StateCache(const HistoricalConfig& config, FetchFn fetch, VerifyFn verify);

  struct Lookup {
    RequestState state = RequestState::kFetching;
    const RangeRequest* request = nullptr;  // non-null iff kReady
    uint64_t retry_after_ms = 0;            // meaningful for kFetching
    std::string error;                      // meaningful for kFailed/kCompacted
    uint64_t horizon = 0;                   // meaningful for kCompacted
  };

  // Requests [lo, hi]; starts a fetch on first sight. The returned pointer
  // is valid until the next non-const call on the cache. A kFailed result
  // also forgets the request, so the next identical call starts fresh. A
  // kCompacted result is definitive — the entries were retired below the
  // host's snapshot horizon — so it is cached (until TTL) and answered
  // without re-fetching: clients get a terminal 404, never a retry loop.
  Lookup GetRange(uint64_t lo, uint64_t hi, uint64_t now_ms);

  // Delivers a host fetch response (from the ringbuffer). Fills matching
  // empty slots with verified entries; on completion builds the store.
  void OnFetchResponse(const tee::LedgerFetchResponse& response);

  // Drives retries, deadlines and TTL eviction. Call once per tick.
  void Tick(uint64_t now_ms);

  // Re-verifies every cached ready entry against the service identity;
  // returns the first inconsistency found. Test hook for the no-poisoned-
  // cache invariant.
  Status AuditCache(ByteSpan service_public_key) const;

  size_t cached_requests() const { return requests_.size(); }

  struct Stats {
    uint64_t requests = 0;
    uint64_t hits = 0;   // lookups answered kReady
    uint64_t fetches = 0;
    uint64_t retries = 0;
    uint64_t timeouts = 0;
    uint64_t failures = 0;   // host-reported errors
    uint64_t compacted = 0;  // ranges retired below the snapshot horizon
    uint64_t entries_accepted = 0;
    uint64_t entries_rejected = 0;   // failed verification (corrupt)
    uint64_t stale_responses = 0;    // response for a forgotten request
    uint64_t evictions = 0;          // LRU
    uint64_t expired = 0;            // TTL
  };
  const Stats& stats() const { return stats_; }

 private:
  using RangeKey = std::pair<uint64_t, uint64_t>;

  void SendFetch(RangeRequest* request, uint64_t now_ms);
  void EvictOverCapacity();
  static Status BuildStore(RangeRequest* request);

  HistoricalConfig config_;
  FetchFn fetch_;
  VerifyFn verify_;
  std::map<RangeKey, RangeRequest> requests_;
  Stats stats_;
};

}  // namespace ccf::node::historical

#endif  // CCF_NODE_HISTORICAL_H_
