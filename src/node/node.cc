#include "node/node.h"

#include <algorithm>
#include <cassert>

#include "common/buffer.h"
#include "common/hex.h"
#include "common/logging.h"
#include "crypto/sign.h"
#include "gov/constitution.h"
#include "kv/tables.h"
#include "kv/writeset.h"
#include "tee/attestation.h"
#include "tee/messages.h"

namespace ccf::node {

namespace tables = kv::tables;

namespace {

// First byte of every simulation payload addressed to a node host.
enum WireKind : uint8_t {
  kSessionRecord = 1,
  kNodeChannel = 2,
};

// Inner types on node-to-node channels.
enum ChannelType : uint8_t {
  kConsensus = 1,
  kForwardRequest = 2,
  kForwardResponse = 3,
  kSnapshotCatchUp = 4,
};

// Ring-buffer message types live in tee/messages.h (shared with tests).
using tee::kCloseSession;
using tee::kInboundNet;
using tee::kLedgerFetchRequest;
using tee::kLedgerFetchResponse;
using tee::kOutboundNet;
using tee::kSessionClosed;
using tee::kSnapshotWrite;

Bytes WrapWire(WireKind kind, ByteSpan payload) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(kind));
  Append(&out, payload);
  return out;
}

crypto::Sha256Digest PublicAadDigest(ByteSpan public_ws) {
  return crypto::Sha256::Hash(public_ws);
}

}  // namespace

// ----------------------------------------------------------- lifecycle

Node::Node(NodeConfig config, Application* app, sim::Environment* env)
    : config_(config),
      app_(app),
      env_(env),
      boundary_(config.tee_mode),
      host_drbg_("ccf-host-" + config.node_id, config.seed),
      drbg_("ccf-node-" + config.node_id, config.seed),
      node_key_(crypto::KeyPair::Generate(&drbg_)),
      indexer_(config.historical.index_entries_per_tick),
      verify_drbg_("ccf-verify-" + config.node_id, config.seed),
      worker_pool_(config.worker_threads),
      exec_pool_(config.exec_threads) {
  store_.SetRetainedRootCap(config_.kv_retained_root_cap);
  historical_ = std::make_unique<historical::StateCache>(
      config_.historical,
      [this](uint64_t lo, uint64_t hi) { EnclaveSendLedgerFetch(lo, hi); },
      [this](const ledger::Entry& entry) { return VerifyFetchedEntry(entry); });
  app_context_.historical = historical_.get();
  app_context_.indexer = &indexer_;
  app_context_.receiptable_seqno = [this] { return ReceiptableUpto(); };
  app_context_.commit_seqno = [this] { return commit_seqno(); };
  app_context_.now_ms = [this] { return now_ms_; };
  BindNodeMetrics();
  boundary_.BindMetrics(&metrics_);
  worker_pool_.BindMetrics(&metrics_);
  exec_pool_.BindMetrics(&metrics_, "exec.worker");
  InstallFrameworkEndpoints();
  if (app_ != nullptr) {
    app_->RegisterEndpoints(&registry_, app_context_);
  }
}

void Node::BindNodeMetrics() {
  crypto_metrics_.signs = metrics_.GetCounter("crypto.signs");
  crypto_metrics_.signs_deferred = metrics_.GetCounter("crypto.signs_deferred");
  crypto_metrics_.verifies_single =
      metrics_.GetCounter("crypto.verifies_single");
  crypto_metrics_.verifies_batched =
      metrics_.GetCounter("crypto.verifies_batched");
  crypto_metrics_.verify_batches = metrics_.GetCounter("crypto.verify_batches");
  crypto_metrics_.verify_failures =
      metrics_.GetCounter("crypto.verify_failures");
  historical_metrics_.host_fetch_requests =
      metrics_.GetCounter("historical.host_fetch_requests");
  historical_metrics_.host_fetch_responses =
      metrics_.GetCounter("historical.host_fetch_responses");
  historical_metrics_.host_fetch_drops =
      metrics_.GetCounter("historical.host_fetch_drops");
  historical_metrics_.host_fetch_corrupts =
      metrics_.GetCounter("historical.host_fetch_corrupts");
  historical_metrics_.host_fetch_delays =
      metrics_.GetCounter("historical.host_fetch_delays");
  historical_metrics_.host_fetch_reorders =
      metrics_.GetCounter("historical.host_fetch_reorders");
  historical_metrics_.entries_verified =
      metrics_.GetCounter("historical.entries_verified");
  historical_metrics_.entries_rejected =
      metrics_.GetCounter("historical.entries_rejected");
  m_channel_rekeys_ = metrics_.GetCounter("channel.rekeys");
  m_index_upto_ = metrics_.GetGauge("index.upto");
  m_index_lag_ = metrics_.GetGauge("index.lag");
  m_ledger_entries_ = metrics_.GetGauge("ledger.entries");
  snapshot_metrics_.taken = metrics_.GetCounter("snapshot.taken");
  snapshot_metrics_.evidence_committed =
      metrics_.GetCounter("snapshot.evidence_committed");
  snapshot_metrics_.persisted = metrics_.GetCounter("snapshot.persisted");
  snapshot_metrics_.persist_drops =
      metrics_.GetCounter("snapshot.persist_drops");
  snapshot_metrics_.persist_corrupts =
      metrics_.GetCounter("snapshot.persist_corrupts");
  m_ledger_base_ = metrics_.GetGauge("ledger.base");
  exec_metrics_.batches = metrics_.GetCounter("exec.batches");
  exec_metrics_.requests = metrics_.GetCounter("exec.requests");
  exec_metrics_.conflicts = metrics_.GetCounter("exec.conflicts");
  exec_metrics_.retries = metrics_.GetCounter("exec.retries");
  exec_metrics_.aborts = metrics_.GetCounter("exec.aborts");
  exec_metrics_.batch_size = metrics_.GetHistogram("exec.batch_size");
  exec_metrics_.flush_drain = metrics_.GetCounter("exec.flush.drain");
  exec_metrics_.flush_size = metrics_.GetCounter("exec.flush.size");
  exec_metrics_.flush_deadline = metrics_.GetCounter("exec.flush.deadline");
}

Node::CryptoOpCounters Node::crypto_ops() const {
  CryptoOpCounters c;
  c.signs = crypto_metrics_.signs->value();
  c.signs_deferred = crypto_metrics_.signs_deferred->value();
  c.verifies_single = crypto_metrics_.verifies_single->value();
  c.verifies_batched = crypto_metrics_.verifies_batched->value();
  c.verify_batches = crypto_metrics_.verify_batches->value();
  c.verify_failures = crypto_metrics_.verify_failures->value();
  return c;
}

Node::HistoricalCounters Node::historical_counters() const {
  HistoricalCounters h;
  h.host_fetch_requests = historical_metrics_.host_fetch_requests->value();
  h.host_fetch_responses = historical_metrics_.host_fetch_responses->value();
  h.host_fetch_drops = historical_metrics_.host_fetch_drops->value();
  h.host_fetch_corrupts = historical_metrics_.host_fetch_corrupts->value();
  h.host_fetch_delays = historical_metrics_.host_fetch_delays->value();
  h.host_fetch_reorders = historical_metrics_.host_fetch_reorders->value();
  h.entries_verified = historical_metrics_.entries_verified->value();
  h.entries_rejected = historical_metrics_.entries_rejected->value();
  return h;
}

Node::~Node() {
  if (env_ != nullptr) env_->Unregister(config_.node_id);
}

void Node::RegisterWithEnvironment() {
  // Live mode: no environment; the host (src/host) drives Tick and
  // HostReceive directly.
  if (env_ == nullptr) return;
  env_->Register(
      config_.node_id,
      [this](const std::string& from, ByteSpan data) {
        HostReceive(from, data);
      },
      [this](uint64_t now_ms) { Tick(now_ms); });
}

std::unique_ptr<Node> Node::CreateGenesis(NodeConfig config,
                                          const ServiceInit& init,
                                          Application* app,
                                          sim::Environment* env) {
  auto node = std::unique_ptr<Node>(new Node(config, app, env));
  node->InitGenesis(init);
  node->RegisterWithEnvironment();
  return node;
}

std::unique_ptr<Node> Node::CreateJoiner(NodeConfig config,
                                         crypto::PublicKeyBytes service_identity,
                                         const std::string& target_node,
                                         Application* app,
                                         sim::Environment* env) {
  auto node = std::unique_ptr<Node>(new Node(config, app, env));
  node->service_identity_ = service_identity;
  node->RegisterWithEnvironment();
  node->StartJoin(target_node);
  return node;
}

std::unique_ptr<Node> Node::CreateRecovery(NodeConfig config,
                                           ledger::Ledger restored,
                                           Application* app,
                                           sim::Environment* env) {
  auto node = std::unique_ptr<Node>(new Node(config, app, env));
  node->InitRecovery(std::move(restored), std::nullopt);
  node->RegisterWithEnvironment();
  return node;
}

Result<std::unique_ptr<Node>> Node::CreateRecoveryFromDir(
    NodeConfig config, const std::string& dir, Application* app,
    sim::Environment* env) {
  ASSIGN_OR_RETURN(ledger::Ledger restored, ledger::LoadFromDir(dir));
  std::optional<SnapshotBundle> bundle;
  if (restored.base_seqno() > 0) {
    // Chunks below the snapshot horizon were retired: the suffix alone is
    // useless without the matching verified snapshot bundle.
    ASSIGN_OR_RETURN(SnapshotBundle b, LoadLatestBundleFromDir(dir));
    if (b.seqno != restored.base_seqno()) {
      return Status::Corruption(
          "recovery: snapshot at " + std::to_string(b.seqno) +
          " does not match ledger base " +
          std::to_string(restored.base_seqno()));
    }
    RETURN_IF_ERROR(VerifyBundleContent(b));
    // The evidence entry inside the bundle must be the same bytes the
    // persisted ledger carries at that seqno: the bundle and the ledger
    // suffix must tell one story.
    ASSIGN_OR_RETURN(const ledger::Entry* ev_entry,
                     restored.Get(b.evidence_seqno));
    if (ev_entry->Serialize() != b.evidence_entry) {
      return Status::Corruption(
          "recovery: ledger entry at " + std::to_string(b.evidence_seqno) +
          " disagrees with the bundle's evidence entry");
    }
    // Receipt check against the service identity recorded in the snapshot
    // itself. Like ledger-based recovery this is trust-on-first-use for
    // the old identity: an operator substituting an entire self-consistent
    // ledger+snapshot is out of scope (the recovered service gets a new
    // identity either way, making the recovery evident to verifiers).
    kv::Store probe;
    ASSIGN_OR_RETURN(kv::State pub, RestorePublicState(b));
    probe.InstallState(std::move(pub), b.seqno);
    auto raw = probe.GetStr(tables::kServiceInfo, tables::kCurrentKey);
    if (!raw.has_value()) {
      return Status::Corruption("recovery: snapshot has no service info");
    }
    ASSIGN_OR_RETURN(json::Value j, json::Parse(*raw));
    ASSIGN_OR_RETURN(gov::ServiceInfo info, gov::ServiceInfo::FromJson(j));
    ASSIGN_OR_RETURN(crypto::Certificate cert,
                     crypto::Certificate::Deserialize(info.cert));
    RETURN_IF_ERROR(VerifyBundle(
        b, ByteSpan(cert.public_key.data(), cert.public_key.size())));
    bundle = std::move(b);
  }
  auto node = std::unique_ptr<Node>(new Node(config, app, env));
  node->InitRecovery(std::move(restored), std::move(bundle));
  node->RegisterWithEnvironment();
  return node;
}

void Node::InitGenesis(const ServiceInit& init) {
  // Fresh service identity (paper Table 1: generated when a CCF service is
  // started for the first time).
  service_key_ = std::make_unique<crypto::KeyPair>(
      crypto::KeyPair::Generate(&drbg_));
  service_identity_ = service_key_->public_key();
  service_cert_ = crypto::IssueCertificate("service", "service",
                                           service_identity_, *service_key_,
                                           "");
  node_cert_ = crypto::IssueCertificate(config_.node_id, "node",
                                        node_key_.public_key(), *service_key_,
                                        "service");
  ledger_secret_ = kv::LedgerSecret::Generate(&drbg_);
  encryptor_ = std::make_unique<kv::TxEncryptor>(ledger_secret_);

  raft_ = std::make_unique<consensus::RaftNode>(
      config_.node_id, config_.raft, std::set<std::string>{config_.node_id},
      /*start_as_primary=*/true, this);
  raft_->BindMetrics(&metrics_);

  // The genesis transaction (paper §5): constitution, consortium, code id,
  // this node, and the service identity, in one transaction.
  kv::Tx tx = store_.BeginTx();
  tx.Handle(tables::kConstitution)
      ->PutStr(tables::kCurrentKey,
               init.constitution.empty() ? gov::DefaultConstitution()
                                         : init.constitution);
  for (const MemberIdentity& m : init.members) {
    gov::MemberInfo info;
    info.cert = m.cert;
    info.encryption_key = m.encryption_key;
    gov::WriteRecord(tx.Handle(tables::kMembersCerts), m.member_id,
                     info.ToJson());
  }
  for (const auto& [user_id, cert] : init.initial_users) {
    gov::UserInfo info;
    info.cert = cert;
    gov::WriteRecord(tx.Handle(tables::kUsersCerts), user_id, info.ToJson());
  }
  tx.Handle(tables::kNodesCodeIds)->PutStr(config_.code_id, "AllowedToJoin");

  gov::NodeInfo self;
  self.node_id = config_.node_id;
  self.status = gov::NodeStatus::kTrusted;
  self.cert = node_cert_;
  self.code_id = config_.code_id;
  self.host = config_.host;
  gov::WriteRecord(tx.Handle(tables::kNodesInfo), config_.node_id,
                   self.ToJson());

  gov::ServiceInfo service;
  service.status = init.open_immediately ? gov::ServiceStatus::kOpen
                                         : gov::ServiceStatus::kOpening;
  service.cert = service_cert_.Serialize();
  gov::WriteRecord(tx.Handle(tables::kServiceInfo), tables::kCurrentKey,
                   service.ToJson());

  if (!init.members.empty()) {
    Status s = gov::ShareManager::ReissueShares(&tx, ledger_secret_, &drbg_);
    if (!s.ok()) LOG_ERROR << "genesis share issuance failed: " << s.ToString();
  }

  auto committed = CommitAndReplicate(&tx, ledger::EntryType::kInternal);
  if (!committed.ok()) {
    LOG_ERROR << "genesis commit failed: " << committed.status().ToString();
    return;
  }
  EmitSignature();
}

gov::ServiceStatus Node::service_status() const {
  auto raw = store_.GetStr(tables::kServiceInfo, tables::kCurrentKey);
  if (!raw.has_value()) return gov::ServiceStatus::kOpening;
  auto j = json::Parse(*raw);
  if (!j.ok()) return gov::ServiceStatus::kOpening;
  auto info = gov::ServiceInfo::FromJson(*j);
  if (!info.ok()) return gov::ServiceStatus::kOpening;
  return info->status;
}

// -------------------------------------------------------------- driving

bool Node::HostReceive(const std::string& from, ByteSpan data) {
  // Host side: push the raw network payload across the boundary.
  BufWriter w;
  w.Str(from);
  w.Blob(data);
  if (!boundary_.HostSend(kInboundNet, w.data())) {
    // Sim mode has no retry path, so a full ring means a dropped message
    // worth shouting about; the live host parks the connection and
    // retries, making this ordinary backpressure (DESIGN.md §13).
    if (env_ != nullptr) {
      LOG_WARN << config_.node_id << " boundary inbox full, dropping message";
    }
    return false;
  }
  return true;
}

bool Node::HostPostSessionClosed(const std::string& peer) {
  tee::SessionControl msg{peer};
  return boundary_.HostSend(kSessionClosed, msg.Serialize());
}

void Node::Tick(uint64_t now_ms) {
  now_ms_ = std::max(now_ms_, now_ms);
  // Worker-pool completions land here, before any message processing, so
  // their placement in virtual time does not depend on worker_threads (see
  // DESIGN.md: worker-pool determinism contract).
  DrainWorkerCompletions();
  // Host fetch responses whose delay elapsed land in the enclave inbox
  // before it drains, giving fetches a deterministic 1-tick minimum RTT.
  HostDeliverFetchResponses();
  DrainEnclaveInbox();
  if (raft_ != nullptr) {
    raft_->Tick(now_ms_);
    MaybeCompleteRetirements();
    HandleOwnRetirement();
    // Asynchronous indexing: absorb newly committed entries under the
    // per-tick budget (paper §3.4).
    indexer_.Tick(raft_->commit_seqno(),
                  [this](uint64_t seqno, indexing::CommittedEntry* out) {
                    return DecodeCommittedEntry(seqno, out);
                  });
    historical_->Tick(now_ms_);
    // Snapshot evidence commits from the tick loop, never from OnCommit
    // (committing inside a raft callback would re-enter raft). It runs
    // before the signature so the evidence can be covered promptly.
    MaybeCommitSnapshotEvidence();
    // Signature submission goes last: nothing else may claim the seqno the
    // signed root reserves before the blocking drain commits it.
    MaybeEmitSignature(now_ms_);
    // Once a committed signature covers the evidence, attach its receipt
    // and hand the finished bundle to the host.
    MaybePersistSnapshot();
    // A long-lived primary bounds its in-memory consensus log by the
    // snapshot horizon; laggards below it are offered the bundle instead.
    MaybeCompactRaftLog();
    // Per-tick observability gauges (write-only; nothing reads them back).
    m_index_upto_->Set(indexer_.indexed_upto());
    m_index_lag_->Set(indexer_.Lag(raft_->commit_seqno()));
    m_ledger_entries_->Set(host_ledger_.last_seqno());
    m_ledger_base_->Set(host_ledger_.base_seqno());
  }
  DrainEnclaveOutbox();
}

void Node::DrainWorkerCompletions() {
  worker_pool_.Drain(/*wait_all=*/!config_.worker_async);
}

void Node::DrainEnclaveInbox() {
  uint32_t type;
  Bytes payload;
  while (boundary_.EnclaveReceive(&type, &payload)) {
    if (type == kLedgerFetchResponse) {
      EnclaveHandleFetchResponse(payload);
      continue;
    }
    if (type == kSessionClosed) {
      auto msg = tee::SessionControl::Deserialize(payload);
      if (msg.ok()) sessions_.erase(msg->peer);
      continue;
    }
    if (type != kInboundNet) continue;
    BufReader r(payload);
    auto from = r.Str();
    if (!from.ok()) continue;
    auto data = r.Blob();
    if (!data.ok()) continue;
    EnclaveProcess(*from, *data);
  }
  // Flush-policy decision point: with the thresholds disabled the batch
  // must never outlive the inbox drain that accumulated it (bit-identical
  // sim replay); with a size/deadline policy it may ride across drains.
  MaybeFlushExecBatch();
}

void Node::MaybeFlushExecBatch() {
  if (exec_batch_.empty()) return;
  const bool deferred =
      config_.exec_batch_max > 0 || config_.exec_batch_deadline_ms > 0;
  if (!deferred) {
    exec_metrics_.flush_drain->Inc();
    FlushExecBatch();
    return;
  }
  if (config_.exec_batch_max > 0 &&
      exec_batch_.size() >= config_.exec_batch_max) {
    exec_metrics_.flush_size->Inc();
    FlushExecBatch();
    return;
  }
  // A size-only policy still flushes a partial batch after one tick so a
  // lull in arrivals cannot strand requests.
  const uint64_t deadline =
      std::max<uint64_t>(config_.exec_batch_deadline_ms, 1);
  if (now_ms_ >= exec_batch_opened_ms_ + deadline) {
    exec_metrics_.flush_deadline->Inc();
    FlushExecBatch();
  }
}

void Node::EnclaveProcess(const std::string& from, ByteSpan data) {
  if (data.empty()) return;
  auto kind = static_cast<WireKind>(data[0]);
  ByteSpan payload = data.subspan(1);
  switch (kind) {
    case kSessionRecord:
      HandleSessionRecord(from, payload);
      break;
    case kNodeChannel:
      HandleChannelMessage(from, payload);
      break;
    default:
      LOG_WARN << config_.node_id << " unknown wire kind from " << from;
  }
}

void Node::EnclaveSendNet(const std::string& to, ByteSpan data) {
  BufWriter w;
  w.Str(to);
  w.Blob(data);
  if (!boundary_.EnclaveSend(kOutboundNet, w.data())) {
    LOG_WARN << config_.node_id << " boundary outbox full, dropping message";
  }
}

void Node::DrainEnclaveOutbox() {
  uint32_t type;
  Bytes payload;
  while (boundary_.HostReceive(&type, &payload)) {
    if (type == kLedgerFetchRequest) {
      HostServeLedgerFetch(payload);
      continue;
    }
    if (type == kSnapshotWrite) {
      HostStoreSnapshot(payload);
      continue;
    }
    if (type == kCloseSession) {
      auto msg = tee::SessionControl::Deserialize(payload);
      if (msg.ok() && transport_ != nullptr) {
        transport_->CloseSession(msg->peer);
      }
      continue;
    }
    if (type != kOutboundNet) continue;
    BufReader r(payload);
    auto to = r.Str();
    if (!to.ok()) continue;
    auto data = r.Blob();
    if (!data.ok()) continue;
    if (transport_ != nullptr) {
      transport_->NetSend(*to, std::move(*data));
    } else if (env_ != nullptr) {
      env_->Send(config_.node_id, *to, std::move(*data));
    }
  }
}

// ----------------------------------------------- historical ledger fetch

void Node::EnclaveSendLedgerFetch(uint64_t lo, uint64_t hi) {
  tee::LedgerFetchRequest req{lo, hi};
  if (!boundary_.EnclaveSend(kLedgerFetchRequest, req.Serialize())) {
    LOG_WARN << config_.node_id << " boundary outbox full, dropping fetch";
  }
}

void Node::HostServeLedgerFetch(ByteSpan payload) {
  auto req = tee::LedgerFetchRequest::Deserialize(payload);
  if (!req.ok()) return;
  historical_metrics_.host_fetch_requests->Inc();

  tee::LedgerFetchResponse resp;
  resp.lo = req->lo;
  resp.hi = req->hi;
  resp.ok = true;
  for (uint64_t seqno = req->lo; seqno <= req->hi; ++seqno) {
    auto entry = host_ledger_.Get(seqno);
    if (!entry.ok()) {
      resp.ok = false;
      resp.error = entry.status().message();
      if (entry.status().IsOutOfRange()) {
        // Retired below the snapshot horizon: definitive, not transient.
        // The enclave surfaces this as a 404 instead of retrying forever.
        resp.compacted = true;
        resp.horizon = host_ledger_.base_seqno();
      }
      resp.entries.clear();
      break;
    }
    resp.entries.push_back((*entry)->Serialize());
  }
  Bytes wire = resp.Serialize();

  // Untrusted-host fault policy: the environment may tell this host to
  // drop, corrupt, delay or reorder its fetch responses (chaos suites).
  sim::HostFaults faults =
      env_ != nullptr ? env_->HostFaultsFor(config_.node_id) : sim::HostFaults{};
  auto bernoulli = [&](double p) {
    return p > 0.0 && host_drbg_.Uniform(10000) < static_cast<uint64_t>(p * 10000);
  };
  if (bernoulli(faults.drop)) {
    historical_metrics_.host_fetch_drops->Inc();
    return;  // the enclave's retry interval recovers
  }
  if (bernoulli(faults.corrupt) && !wire.empty()) {
    wire[host_drbg_.Uniform(wire.size())] ^= 0x01;
    historical_metrics_.host_fetch_corrupts->Inc();
  }
  uint64_t delay = 0;
  if (faults.extra_delay_max_ms > 0) {
    delay = host_drbg_.Uniform(faults.extra_delay_max_ms + 1);
    if (delay > 0) historical_metrics_.host_fetch_delays->Inc();
  }
  PendingHostFetch pending;
  pending.deliver_at_ms = now_ms_ + 1 + delay;  // min 1-tick RTT
  pending.seq = host_fetch_seq_++;
  pending.payload = std::move(wire);
  if (bernoulli(faults.reorder) && !host_fetch_queue_.empty()) {
    // Swap payloads with a random queued response: both still arrive, but
    // each at the other's delivery time.
    size_t i = host_drbg_.Uniform(host_fetch_queue_.size());
    std::swap(host_fetch_queue_[i].payload, pending.payload);
    historical_metrics_.host_fetch_reorders->Inc();
  }
  host_fetch_queue_.push_back(std::move(pending));
}

void Node::HostDeliverFetchResponses() {
  if (host_fetch_queue_.empty()) return;
  // Deliver due responses in (deliver_at, seq) order for determinism.
  std::sort(host_fetch_queue_.begin(), host_fetch_queue_.end(),
            [](const PendingHostFetch& a, const PendingHostFetch& b) {
              return a.deliver_at_ms != b.deliver_at_ms
                         ? a.deliver_at_ms < b.deliver_at_ms
                         : a.seq < b.seq;
            });
  size_t delivered = 0;
  for (PendingHostFetch& pending : host_fetch_queue_) {
    if (pending.deliver_at_ms > now_ms_) break;
    if (!boundary_.HostSend(kLedgerFetchResponse, pending.payload)) {
      LOG_WARN << config_.node_id << " boundary inbox full, dropping fetch "
               << "response";
    } else {
      historical_metrics_.host_fetch_responses->Inc();
    }
    ++delivered;
  }
  host_fetch_queue_.erase(host_fetch_queue_.begin(),
                          host_fetch_queue_.begin() + delivered);
}

void Node::EnclaveHandleFetchResponse(ByteSpan payload) {
  auto resp = tee::LedgerFetchResponse::Deserialize(payload);
  if (!resp.ok()) {
    // A corrupted frame is indistinguishable from a lying host; drop it
    // and let the retry interval re-fetch.
    LOG_DEBUG << config_.node_id << " undecodable fetch response: "
              << resp.status().ToString();
    return;
  }
  historical_->OnFetchResponse(*resp);
}

uint64_t Node::ReceiptableUpto() const {
  if (raft_ == nullptr) return 0;
  uint64_t commit = raft_->commit_seqno();
  // Largest committed signed root; its boundary covers seqnos < sr.seqno.
  for (auto it = signed_roots_.rbegin(); it != signed_roots_.rend(); ++it) {
    if (it->first > commit) continue;
    uint64_t upto = it->second.seqno > 0 ? it->second.seqno - 1 : 0;
    return std::min(commit, upto);
  }
  return 0;
}

Result<historical::VerifiedEntry> Node::VerifyFetchedEntry(
    const ledger::Entry& entry) {
  // Everything in a fetch response is untrusted host input. Acceptance
  // requires: (1) the seqno is committed; (2) the entry's recomputed leaf
  // equals the enclave's own Merkle leaf at that position; (3) a receipt
  // to a committed signed root verifies against the service identity.
  if (raft_ == nullptr || entry.seqno == 0 ||
      entry.seqno > raft_->commit_seqno()) {
    return Status::Unavailable("fetched entry not committed yet");
  }
  crypto::Sha256Digest ws_digest = entry.WriteSetDigest();
  Bytes leaf_content = merkle::TransactionLeafContent(
      entry.view, entry.seqno, ws_digest, entry.claims_digest);
  auto expected_leaf = tree_.LeafAt(entry.seqno - 1);
  if (!expected_leaf.ok()) {
    return Status::Unavailable("no tree leaf for fetched entry");
  }
  if (merkle::LeafHash(leaf_content) != *expected_leaf) {
    historical_metrics_.entries_rejected->Inc();
    return Status::PermissionDenied("fetched entry contradicts Merkle tree");
  }
  ASSIGN_OR_RETURN(
      merkle::Receipt receipt,
      BuildReceiptForDigests(entry.view, entry.seqno, ws_digest,
                             entry.claims_digest));
  RETURN_IF_ERROR(receipt.Verify(
      ByteSpan(service_identity_.data(), service_identity_.size())));

  Bytes private_plain;
  if (!entry.private_sealed.empty()) {
    if (encryptor_ == nullptr) {
      return Status::Unavailable("no ledger secret for fetched entry");
    }
    auto aad = PublicAadDigest(entry.public_ws);
    auto opened = encryptor_->Open(entry.view, entry.seqno,
                                   entry.private_sealed,
                                   ByteSpan(aad.data(), aad.size()));
    if (!opened.ok()) {
      historical_metrics_.entries_rejected->Inc();
      return Status::PermissionDenied("fetched entry fails decryption");
    }
    private_plain = opened.take();
  }
  ASSIGN_OR_RETURN(kv::WriteSet writes,
                   kv::WriteSet::Parse(entry.public_ws, private_plain));

  historical::VerifiedEntry out;
  out.entry = entry;
  out.writes = std::move(writes);
  out.receipt = std::move(receipt);
  historical_metrics_.entries_verified->Inc();
  return out;
}

bool Node::DecodeCommittedEntry(uint64_t seqno,
                                indexing::CommittedEntry* out) {
  auto entry = host_ledger_.Get(seqno);
  if (!entry.ok()) return false;  // e.g. pre-snapshot seqnos on a joiner
  Bytes private_plain;
  if (!(*entry)->private_sealed.empty() && encryptor_ != nullptr) {
    auto aad = PublicAadDigest((*entry)->public_ws);
    auto opened = encryptor_->Open((*entry)->view, (*entry)->seqno,
                                   (*entry)->private_sealed,
                                   ByteSpan(aad.data(), aad.size()));
    if (!opened.ok()) return false;
    private_plain = opened.take();
  }
  auto ws = kv::WriteSet::Parse((*entry)->public_ws, private_plain);
  if (!ws.ok()) return false;
  out->view = (*entry)->view;
  out->seqno = (*entry)->seqno;
  out->writes = ws.take();
  return true;
}

// ----------------------------------------------------- node channels

std::optional<crypto::PublicKeyBytes> Node::NodePublicKey(
    const std::string& node_id) {
  auto it = known_node_keys_.find(node_id);
  if (it != known_node_keys_.end()) return it->second;
  auto raw = store_.GetStr(tables::kNodesInfo, node_id);
  if (!raw.has_value()) return std::nullopt;
  auto j = json::Parse(*raw);
  if (!j.ok()) return std::nullopt;
  auto info = gov::NodeInfo::FromJson(*j);
  if (!info.ok()) return std::nullopt;
  known_node_keys_[node_id] = info->cert.public_key;
  return info->cert.public_key;
}

Result<Bytes> Node::ChannelKeyFor(const std::string& peer, uint32_t epoch) {
  auto peer_key = NodePublicKey(peer);
  if (!peer_key.has_value()) {
    return Status::NotFound("no public key known for node " + peer);
  }
  ASSIGN_OR_RETURN(Bytes shared, node_key_.DeriveSharedSecret(*peer_key));
  // Derivation is symmetric in the pair of node ids. The epoch rolls the
  // key when a direction's AEAD message counter nears the nonce limit:
  // static-static ECDH always yields the same shared secret, so freshness
  // must come from the HKDF info input.
  std::string lo = std::min(config_.node_id, peer);
  std::string hi = std::max(config_.node_id, peer);
  return crypto::Hkdf(shared, ToBytes("ccf.channel.v1"),
                      ToBytes(lo + "|" + hi + "|e" + std::to_string(epoch)),
                      32);
}

crypto::AesGcm* Node::ChannelGcmFor(const std::string& peer, uint32_t epoch) {
  ChannelState& ch = channels_[peer];
  auto it = ch.gcm_by_epoch.find(epoch);
  if (it != ch.gcm_by_epoch.end()) return it->second.get();
  auto key = ChannelKeyFor(peer, epoch);
  if (!key.ok()) {
    LOG_DEBUG << config_.node_id << " cannot reach " << peer << ": "
              << key.status().ToString();
    return nullptr;
  }
  auto gcm = std::make_unique<crypto::AesGcm>(*key);
  crypto::AesGcm* ptr = gcm.get();
  ch.gcm_by_epoch[epoch] = std::move(gcm);
  // Bound the cache: keep only the newest few epochs (send + both sides
  // of an in-flight rekey).
  while (ch.gcm_by_epoch.size() > 4) {
    ch.gcm_by_epoch.erase(ch.gcm_by_epoch.begin());
  }
  return ptr;
}

uint64_t Node::channel_send_counter(const std::string& peer) const {
  auto it = channels_.find(peer);
  return it != channels_.end() ? it->second.send_counter : 0;
}

uint32_t Node::channel_send_epoch(const std::string& peer) const {
  auto it = channels_.find(peer);
  return it != channels_.end() ? it->second.send_epoch : 0;
}

void Node::TestForceChannelCounter(const std::string& peer, uint64_t value) {
  channels_[peer].send_counter = value;
}

void Node::SendOnChannel(const std::string& peer, uint8_t channel_type,
                         ByteSpan payload) {
  ChannelState& ch = channels_[peer];
  if (ch.send_counter >= kChannelRekeyAt) {
    // Fail closed before the GCM nonce space can be exhausted: tear the
    // send context down and re-derive under the next epoch.
    ch.gcm_by_epoch.erase(ch.send_epoch);
    ++ch.send_epoch;
    ch.send_counter = 0;
    m_channel_rekeys_->Inc();
    LOG_INFO << config_.node_id << " rekeying channel to " << peer
             << " (epoch " << ch.send_epoch << ")";
  }
  crypto::AesGcm* gcm_ptr = ChannelGcmFor(peer, ch.send_epoch);
  if (gcm_ptr == nullptr) return;
  crypto::AesGcm& gcm = *gcm_ptr;
  BufWriter ivw;
  ivw.U64(ch.send_counter++);
  // Direction split: the two directions of one epoch's key must never
  // share an IV. A lo/hi direction bit guarantees that for any pair of
  // distinct node ids (a length-based split would collide for same-length
  // ids like "n0"/"n1").
  ivw.U32(config_.node_id < peer ? 0u : 1u);
  Bytes inner;
  inner.push_back(channel_type);
  Append(&inner, payload);
  Bytes aad = ToBytes(config_.node_id + ">" + peer);
  Bytes sealed = gcm.Seal(ivw.data(), inner, aad);

  BufWriter w;
  w.U32(ch.send_epoch);
  w.Blob(ivw.data());
  w.Raw(sealed);
  EnclaveSendNet(peer, WrapWire(kNodeChannel, w.data()));
}

void Node::HandleChannelMessage(const std::string& peer, ByteSpan payload) {
  BufReader r(payload);
  auto epoch = r.U32();
  if (!epoch.ok()) return;
  crypto::AesGcm* gcm_ptr = ChannelGcmFor(peer, *epoch);
  if (gcm_ptr == nullptr) return;
  auto iv = r.Blob();
  if (!iv.ok() || iv->size() != crypto::kGcmIvSize) return;
  auto sealed = r.Raw(r.remaining());
  if (!sealed.ok()) return;
  Bytes aad = ToBytes(peer + ">" + config_.node_id);
  auto inner = gcm_ptr->Open(*iv, *sealed, aad);
  if (!inner.ok()) {
    LOG_WARN << config_.node_id << " rejecting unauthenticated channel "
             << "message from " << peer;
    return;
  }
  if (inner->empty()) return;
  uint8_t channel_type = (*inner)[0];
  ByteSpan body(inner->data() + 1, inner->size() - 1);

  // Channel traffic can commit, roll back, or execute forwarded requests;
  // batched requests must see the store head they were enqueued against.
  FlushExecBatch();

  switch (channel_type) {
    case kConsensus: {
      if (raft_ == nullptr) return;
      auto msg = consensus::Message::Deserialize(body);
      if (msg.ok() && msg->from == peer) {
        raft_->Receive(*msg, now_ms_);
      }
      break;
    }
    case kForwardRequest: {
      BufReader fr(body);
      auto corr = fr.U64();
      auto has_cert = fr.Bool();
      if (!corr.ok() || !has_cert.ok()) return;
      std::optional<crypto::Certificate> cert;
      if (*has_cert) {
        auto cert_bytes = fr.Blob();
        if (!cert_bytes.ok()) return;
        auto parsed = crypto::Certificate::Deserialize(*cert_bytes);
        if (!parsed.ok()) return;
        cert = std::move(*parsed);
      }
      auto req_bytes = fr.Blob();
      if (!req_bytes.ok()) return;
      http::RequestParser parser;
      parser.Feed(*req_bytes);
      auto req = parser.Next();
      if (!req.ok() || !req->has_value()) return;

      // Re-authenticate the forwarded caller against our own state.
      http::Response response;
      auto caller = Authenticate(cert);
      if (!caller.ok()) {
        response.status = 401;
        response.body = ToBytes(caller.status().ToString());
      } else {
        response = ExecuteRequest(**req, *caller);
      }
      BufWriter w;
      w.U64(*corr);
      w.Blob(response.Serialize());
      SendOnChannel(peer, kForwardResponse, w.data());
      break;
    }
    case kForwardResponse: {
      BufReader fr(body);
      auto corr = fr.U64();
      auto resp_bytes = fr.Blob();
      if (!corr.ok() || !resp_bytes.ok()) return;
      auto it = pending_forwards_.find(*corr);
      if (it == pending_forwards_.end()) return;
      std::string session_peer = it->second;
      pending_forwards_.erase(it);
      http::ResponseParser parser;
      parser.Feed(*resp_bytes);
      auto resp = parser.Next();
      if (resp.ok() && resp->has_value()) {
        RespondToSession(session_peer, **resp);
      }
      break;
    }
    case kSnapshotCatchUp: {
      HandleSnapshotCatchUp(peer, body);
      break;
    }
    default:
      break;
  }
}

void Node::Send(const consensus::NodeId& to, const consensus::Message& msg) {
  SendOnChannel(to, kConsensus, msg.Serialize());
}

// --------------------------------------------------- consensus callbacks

void Node::OnAppend(const consensus::LogEntry& entry) {
  OnAppendBatch({&entry});
}

void Node::OnAppendBatch(
    const std::vector<const consensus::LogEntry*>& entries) {
  // Phase 1: decode (parse + decrypt) every entry. A corrupt entry ends
  // the batch at the preceding entry -- the valid prefix still applies.
  struct Decoded {
    ledger::Entry entry;
    kv::WriteSet ws;
  };
  std::vector<Decoded> batch;
  batch.reserve(entries.size());
  for (const consensus::LogEntry* le : entries) {
    auto parsed = ledger::Entry::Deserialize(*le->data);
    if (!parsed.ok()) {
      LOG_ERROR << config_.node_id
                << " corrupt replicated entry: " << parsed.status().ToString();
      integrity_violation_ = true;
      break;
    }
    ledger::Entry ledger_entry = parsed.take();

    // Decrypt the private half with the ledger secret.
    Bytes private_plain;
    if (!ledger_entry.private_sealed.empty() && encryptor_ != nullptr) {
      auto aad = PublicAadDigest(ledger_entry.public_ws);
      auto opened = encryptor_->Open(ledger_entry.view, ledger_entry.seqno,
                                     ledger_entry.private_sealed,
                                     ByteSpan(aad.data(), aad.size()));
      if (!opened.ok()) {
        LOG_ERROR << config_.node_id << " cannot decrypt private writes at "
                  << ledger_entry.seqno;
        integrity_violation_ = true;
        break;
      }
      private_plain = opened.take();
    }
    auto ws = kv::WriteSet::Parse(ledger_entry.public_ws, private_plain);
    if (!ws.ok()) {
      integrity_violation_ = true;
      break;
    }
    batch.push_back({std::move(ledger_entry), ws.take()});
  }
  if (batch.empty()) return;

  // Phase 2: append every Merkle leaf in one batched pass (4-way SHA-256).
  std::vector<Bytes> leaf_contents;
  leaf_contents.reserve(batch.size());
  for (const Decoded& d : batch) {
    TxDigests digests;
    digests.write_set = d.entry.WriteSetDigest();
    digests.claims = d.entry.claims_digest;
    leaf_contents.push_back(merkle::TransactionLeafContent(
        d.entry.view, d.entry.seqno, digests.write_set, digests.claims));
    tx_digests_.push_back(digests);
  }
  tree_.AppendBatch(leaf_contents);

  // Phase 3: sequential apply. Signature roots are checked against the
  // prefix they cover (RootAt, which for the default synchronous signing
  // path is the tree right before the signature entry); the expensive
  // Ed25519 check is queued for batch verification at the commit boundary.
  for (Decoded& d : batch) {
    if (d.entry.type == ledger::EntryType::kSignature) {
      auto it = d.ws.maps.find(tables::kSignatures);
      if (it != d.ws.maps.end()) {
        for (const auto& [key, value] : it->second) {
          if (!value.has_value()) continue;
          auto hex = HexDecode(ToString(*value));
          if (!hex.ok()) continue;
          auto sr = merkle::SignedRoot::Deserialize(*hex);
          if (!sr.ok()) continue;
          auto covered = (sr->seqno >= 1 && sr->seqno <= d.entry.seqno)
                             ? tree_.RootAt(sr->seqno - 1)
                             : Status::OutOfRange("bad signed seqno");
          if (!covered.ok() || covered.value() != sr->root) {
            LOG_ERROR << config_.node_id << " signature root mismatch at "
                      << d.entry.seqno;
            integrity_violation_ = true;
          } else {
            signed_roots_[d.entry.seqno] = *sr;
            pending_sig_verifies_.push_back({d.entry.seqno, *sr});
          }
        }
      }
    }

    Status applied = store_.ApplyWriteSet(d.ws, d.entry.seqno);
    if (!applied.ok()) {
      LOG_ERROR << config_.node_id << " apply failed: " << applied.ToString();
      integrity_violation_ = true;
      // Drop this entry's leaf and everything after it; the prefix stands.
      tree_.Truncate(d.entry.seqno - 1);
      tx_digests_.resize(d.entry.seqno - 1);
      return;
    }
    Status appended = host_ledger_.Append(std::move(d.entry));
    if (!appended.ok()) {
      LOG_ERROR << config_.node_id << " ledger append failed";
    }
  }
}

void Node::AppendLeafFor(const ledger::Entry& entry) {
  TxDigests digests;
  digests.write_set = entry.WriteSetDigest();
  digests.claims = entry.claims_digest;
  Bytes leaf = merkle::TransactionLeafContent(entry.view, entry.seqno,
                                              digests.write_set,
                                              digests.claims);
  tree_.Append(leaf);
  tx_digests_.push_back(digests);
}

void Node::OnRollback(uint64_t seqno) {
  Status s = store_.Rollback(seqno);
  if (!s.ok()) LOG_ERROR << config_.node_id << " rollback: " << s.ToString();
  // The tree and digest history track the full ledger (joiners receive
  // the historical leaves at join time), so indices align with seqnos.
  tree_.Truncate(seqno);
  tx_digests_.resize(seqno);
  Status truncated = host_ledger_.Truncate(seqno);
  if (!truncated.ok()) {
    // Rolling back below the snapshot horizon would mean consensus
    // disagreed with a committed snapshot -- that cannot be recovered.
    LOG_ERROR << config_.node_id << " ledger truncate: "
              << truncated.ToString();
    integrity_violation_ = true;
  }
  signed_roots_.erase(signed_roots_.upper_bound(seqno), signed_roots_.end());
  while (!pending_sig_verifies_.empty() &&
         pending_sig_verifies_.back().seqno > seqno) {
    pending_sig_verifies_.pop_back();
  }
  indexer_.OnRollback(seqno);
  txs_since_signature_ = 0;
}

void Node::VerifyCommittedSignatures(uint64_t commit_seqno) {
  if (pending_sig_verifies_.empty() ||
      pending_sig_verifies_.front().seqno > commit_seqno) {
    return;
  }
  struct VerifyJob {
    uint64_t seqno = 0;
    std::string signer;
    crypto::PublicKeyBytes pub{};
    Bytes payload;
    crypto::SignatureBytes sig{};
  };
  std::vector<VerifyJob> jobs;
  while (!pending_sig_verifies_.empty() &&
         pending_sig_verifies_.front().seqno <= commit_seqno) {
    const PendingSigVerify& p = pending_sig_verifies_.front();
    VerifyJob job;
    job.seqno = p.seqno;
    job.signer = p.sr.node_id;
    job.payload = p.sr.SignedPayload();
    job.sig = p.sr.signature;
    auto pub = NodePublicKey(p.sr.node_id);
    if (!pub.has_value()) {
      LOG_ERROR << config_.node_id << " signature at " << p.seqno
                << " from unknown node " << p.sr.node_id;
      integrity_violation_ = true;
      crypto_metrics_.verify_failures->Inc();
    } else {
      job.pub = *pub;
      jobs.push_back(std::move(job));
    }
    pending_sig_verifies_.pop_front();
  }
  if (jobs.empty()) return;

  if (jobs.size() == 1) {
    crypto_metrics_.verifies_single->Inc();
    const VerifyJob& job = jobs.front();
    if (!crypto::Verify(ByteSpan(job.pub.data(), job.pub.size()), job.payload,
                        ByteSpan(job.sig.data(), job.sig.size()))) {
      LOG_ERROR << config_.node_id << " bad signature at " << job.seqno
                << " from " << job.signer;
      integrity_violation_ = true;
      crypto_metrics_.verify_failures->Inc();
    }
    return;
  }

  std::vector<crypto::BatchVerifyItem> items;
  items.reserve(jobs.size());
  for (const VerifyJob& job : jobs) {
    items.push_back({ByteSpan(job.pub.data(), job.pub.size()), job.payload,
                     ByteSpan(job.sig.data(), job.sig.size())});
  }
  std::vector<bool> ok;
  bool all = crypto::VerifyBatch(items, &verify_drbg_, &ok);
  crypto_metrics_.verify_batches->Inc();
  crypto_metrics_.verifies_batched->Inc(jobs.size());
  if (!all) {
    for (size_t i = 0; i < jobs.size(); ++i) {
      if (ok[i]) continue;
      LOG_ERROR << config_.node_id << " bad signature at " << jobs[i].seqno
                << " from " << jobs[i].signer;
      integrity_violation_ = true;
      crypto_metrics_.verify_failures->Inc();
    }
  }
}

void Node::OnCommit(uint64_t seqno) {
  VerifyCommittedSignatures(seqno);
  Status s = store_.Compact(seqno);
  if (!s.ok()) {
    LOG_ERROR << config_.node_id << " compact: " << s.ToString();
  }
  // Committed entries are fed to the indexing strategies asynchronously,
  // under a per-tick budget, by indexer_.Tick (paper §3.4).
  MaybeSnapshot();
}

void Node::OnRoleChange(consensus::Role role, uint64_t view) {
  LOG_INFO << config_.node_id << " is now " << consensus::RoleName(role)
           << " in view " << view;
  if (role == consensus::Role::kPrimary) {
    if (recovery_pending_ && store_.current_seqno() > 0) {
      // First primary moment of a recovery node: declare the recovered
      // service (paper §5.2).
      kv::Tx tx = store_.BeginTx();
      // Retire all previous nodes; this node joins as the sole trusted one.
      std::vector<std::string> old_nodes;
      tx.Handle(tables::kNodesInfo)
          ->Foreach([&](const Bytes& key, const Bytes&) {
            old_nodes.push_back(ToString(key));
            return true;
          });
      for (const std::string& old_id : old_nodes) {
        auto record = gov::ReadRecord(tx.Handle(tables::kNodesInfo), old_id);
        if (!record.ok()) continue;
        auto info = gov::NodeInfo::FromJson(*record);
        if (!info.ok()) continue;
        info->status = gov::NodeStatus::kRetired;
        gov::WriteRecord(tx.Handle(tables::kNodesInfo), old_id,
                         info->ToJson());
      }
      gov::NodeInfo self;
      self.node_id = config_.node_id;
      self.status = gov::NodeStatus::kTrusted;
      self.cert = node_cert_;
      self.code_id = config_.code_id;
      self.host = config_.host;
      gov::WriteRecord(tx.Handle(tables::kNodesInfo), config_.node_id,
                       self.ToJson());

      // New service identity; previous identity recorded so the recovery
      // is detectable and the open proposal can be bound to it.
      auto old_service = store_.GetStr(tables::kServiceInfo,
                                       tables::kCurrentKey);
      std::string previous;
      if (old_service.has_value()) {
        auto j = json::Parse(*old_service);
        if (j.ok()) {
          auto info = gov::ServiceInfo::FromJson(*j);
          if (info.ok()) {
            auto cert = crypto::Certificate::Deserialize(info->cert);
            if (cert.ok()) {
              previous = HexEncode(ByteSpan(cert->public_key.data(),
                                            cert->public_key.size()));
            }
          }
        }
      }
      gov::ServiceInfo service;
      service.status = gov::ServiceStatus::kRecovering;
      service.cert = service_cert_.Serialize();
      service.previous_identity = previous;
      gov::WriteRecord(tx.Handle(tables::kServiceInfo), tables::kCurrentKey,
                       service.ToJson());

      auto committed = CommitAndReplicate(&tx, ledger::EntryType::kInternal);
      if (!committed.ok()) {
        LOG_ERROR << "recovery declaration failed: "
                  << committed.status().ToString();
      }
    }
    // Paper §4.2: "The new view will begin with a signature transaction."
    EmitSignature();
  }
}

// ----------------------------------------------------- transactions

uint64_t Node::ViewAtSeqno(uint64_t seqno) const {
  if (raft_ == nullptr) return 0;
  uint64_t v = 0;
  for (const auto& [view, start] : raft_->view_history()) {
    if (start <= seqno) v = view;
  }
  return v;
}

Result<consensus::TxId> Node::CommitAndReplicate(kv::Tx* tx,
                                                 ledger::EntryType type) {
  if (raft_ == nullptr || !raft_->IsPrimary()) {
    return Status::Unavailable("not the primary");
  }
  ASSIGN_OR_RETURN(kv::CommitResult result, store_.CommitTx(tx));
  if (result.write_set.empty()) {
    // Read-only (paper §3.4): respond with the last applied transaction ID.
    return consensus::TxId{ViewAtSeqno(result.seqno), result.seqno};
  }

  ledger::Entry entry;
  entry.view = raft_->view();
  entry.seqno = result.seqno;
  entry.type = type;
  entry.public_ws = result.write_set.SerializePublic();
  Bytes private_plain = result.write_set.SerializePrivate();
  kv::WriteSet empty_check;
  // Only seal when there are private writes.
  bool has_private = false;
  for (const auto& [name, writes] : result.write_set.maps) {
    if (!kv::IsPublicMap(name) && !writes.empty()) has_private = true;
  }
  if (has_private) {
    if (encryptor_ == nullptr) {
      return Status::FailedPrecondition("no ledger secret available");
    }
    auto aad = PublicAadDigest(entry.public_ws);
    entry.private_sealed =
        encryptor_->Seal(entry.view, entry.seqno, private_plain,
                         ByteSpan(aad.data(), aad.size()));
  }
  if (!result.claims.empty()) {
    entry.claims_digest = crypto::Sha256::Hash(result.claims);
  }

  AppendLeafFor(entry);
  auto data = std::make_shared<const Bytes>(entry.Serialize());
  std::optional<consensus::Configuration> reconfig =
      DetectReconfiguration(result.write_set, result.seqno);
  Status appended = host_ledger_.Append(entry);
  if (!appended.ok()) {
    LOG_ERROR << config_.node_id << " primary ledger append failed";
  }
  if (type == ledger::EntryType::kSignature) {
    // Record our own signed root for receipts.
    auto it = result.write_set.maps.find(tables::kSignatures);
    if (it != result.write_set.maps.end() && !it->second.empty()) {
      auto hex = HexDecode(ToString(*it->second.begin()->second));
      if (hex.ok()) {
        auto sr = merkle::SignedRoot::Deserialize(*hex);
        if (sr.ok()) signed_roots_[entry.seqno] = *sr;
      }
    }
  } else {
    ++txs_since_signature_;
  }

  Status replicated = raft_->Replicate(
      result.seqno, data, type == ledger::EntryType::kSignature, reconfig);
  if (!replicated.ok()) {
    return replicated;
  }
  return consensus::TxId{entry.view, entry.seqno};
}

std::set<std::string> Node::TrustedNodesInState() const {
  std::set<std::string> trusted;
  const kv::MapEntry* map = store_.current_state().maps.Get(
      std::string(tables::kNodesInfo));
  if (map == nullptr) return trusted;
  map->data.ForEach([&](const Bytes& key, const kv::VersionedValue& vv) {
    auto j = json::Parse(ToString(vv.value));
    if (j.ok() && j->GetString("status") == "Trusted") {
      trusted.insert(ToString(key));
    }
    return true;
  });
  return trusted;
}

std::optional<consensus::Configuration> Node::DetectReconfiguration(
    const kv::WriteSet& writes, uint64_t seqno) {
  auto it = writes.maps.find(tables::kNodesInfo);
  if (it == writes.maps.end() || it->second.empty()) return std::nullopt;
  std::set<std::string> trusted = TrustedNodesInState();
  if (!raft_->active_configs().empty() &&
      raft_->active_configs().back().nodes == trusted) {
    return std::nullopt;  // membership unchanged (e.g. Retiring -> Retired)
  }
  // Nodes leaving the configuration become learners until they have seen
  // their own retirement commit (paper §4.5).
  for (const std::string& old_node :
       raft_->active_configs().back().nodes) {
    if (trusted.count(old_node) == 0 && old_node != config_.node_id) {
      raft_->AddLearner(old_node);
    }
  }
  LOG_INFO << config_.node_id << " reconfiguration at " << seqno << " to "
           << trusted.size() << " nodes";
  return consensus::Configuration{seqno, std::move(trusted)};
}

void Node::EmitSignature() {
  if (raft_ == nullptr || !raft_->IsPrimary()) return;
  merkle::SignedRoot sr;
  sr.view = raft_->view();
  sr.seqno = raft_->last_seqno() + 1;
  sr.root = tree_.Root();
  sr.node_id = config_.node_id;
  sr.signature = node_key_.Sign(sr.SignedPayload());
  crypto_metrics_.signs->Inc();
  CommitSignedRoot(sr);
}

void Node::CommitSignedRoot(const merkle::SignedRoot& sr) {
  kv::Tx tx = store_.BeginTx();
  tx.Handle(tables::kSignatures)
      ->PutStr(tables::kCurrentKey, HexEncode(sr.Serialize()));
  auto committed = CommitAndReplicate(&tx, ledger::EntryType::kSignature);
  if (committed.ok()) {
    // Entries between the signed prefix boundary and the signature entry
    // itself (possible only under worker_async, where appends continue
    // while the sign is in flight) still await coverage by the next
    // signature. In the synchronous modes this difference is zero.
    txs_since_signature_ = committed->seqno - sr.seqno;
    last_signature_ms_ = now_ms_;
  }
}

void Node::SubmitDeferredSignature() {
  // Capture the root and the seqno it reserves now; the Ed25519 sign runs
  // on the worker pool and the commit lands at the drain point at the top
  // of the next Tick. With worker_threads == 0 the sign still happens
  // right here (WorkerPool sync mode), so this path is fully
  // deterministic; only the commit moves to the drain point.
  auto sr = std::make_shared<merkle::SignedRoot>();
  sr->view = raft_->view();
  sr->seqno = raft_->last_seqno() + 1;
  sr->root = tree_.Root();
  sr->node_id = config_.node_id;
  sig_inflight_ = true;
  crypto_metrics_.signs->Inc();
  crypto_metrics_.signs_deferred->Inc();
  worker_pool_.Submit(
      [this, sr] { sr->signature = node_key_.Sign(sr->SignedPayload()); },
      [this, sr] {
        sig_inflight_ = false;
        // An unchanged view guarantees no rollback has touched the signed
        // prefix since capture (a primary only rolls back across view
        // changes). last_seqno may have advanced under worker_async; the
        // signature then covers a prefix of the entry it lands in, which
        // receipts and audit accept (merkle/receipt.h).
        if (raft_ == nullptr || !raft_->IsPrimary() ||
            raft_->view() != sr->view || raft_->last_seqno() + 1 < sr->seqno) {
          return;  // stale; the cadence will trigger a fresh signature
        }
        CommitSignedRoot(*sr);
      });
}

void Node::MaybeEmitSignature(uint64_t now_ms) {
  if (!raft_->IsPrimary() || txs_since_signature_ == 0 || sig_inflight_) {
    return;
  }
  if (txs_since_signature_ >= config_.signature_interval_txs ||
      now_ms - last_signature_ms_ >= config_.signature_interval_ms) {
    SubmitDeferredSignature();
  }
}

void Node::MaybeSnapshot() {
  uint64_t commit = raft_->commit_seqno();
  if (commit < last_snapshot_seqno_ + config_.snapshot_interval_txs) return;
  last_snapshot_seqno_ = commit;
  latest_snapshot_ = kv::TakeSnapshot(store_, ViewAtSeqno(commit));
  // Keep the matching tree leaves and configurations for joiners. ALL
  // active configurations are captured: a snapshot taken inside a
  // reconfiguration window has two, and a joiner seeded with only the
  // first would run consensus against a stale membership.
  snapshot_leaves_.clear();
  for (uint64_t i = 0; i < commit; ++i) {
    auto leaf = tree_.LeafAt(i);
    if (leaf.ok()) snapshot_leaves_.push_back(*leaf);
  }
  snapshot_configs_ = raft_->active_configs();
  snapshot_evidence_due_ = true;
  snapshot_metrics_.taken->Inc();
}

void Node::MaybeCommitSnapshotEvidence() {
  if (!snapshot_evidence_due_ || !raft_->IsPrimary()) return;
  if (!latest_snapshot_.has_value() || encryptor_ == nullptr) return;
  snapshot_evidence_due_ = false;

  auto state = kv::DeserializeState(latest_snapshot_->data);
  if (!state.ok()) {
    LOG_ERROR << config_.node_id << " snapshot state undecodable: "
              << state.status().ToString();
    return;
  }
  SnapshotBundle bundle =
      BuildBundle(*state, latest_snapshot_->seqno, latest_snapshot_->view,
                  ledger_secret_, snapshot_leaves_, snapshot_configs_);

  kv::Tx tx = store_.BeginTx();
  tx.Handle(tables::kSnapshotEvidence)
      ->PutStr(tables::kCurrentKey, ToString(EvidenceRecord(bundle)));
  auto committed = CommitAndReplicate(&tx, ledger::EntryType::kInternal);
  if (!committed.ok()) {
    // e.g. a concurrent write raced the tx; retry on the next tick.
    snapshot_evidence_due_ = true;
    return;
  }
  bundle.evidence_seqno = committed->seqno;
  auto entry = host_ledger_.Get(committed->seqno);
  if (!entry.ok()) {
    LOG_ERROR << config_.node_id << " evidence entry missing from ledger";
    return;
  }
  bundle.evidence_entry = (*entry)->Serialize();
  pending_bundle_ = std::move(bundle);
  snapshot_metrics_.evidence_committed->Inc();
}

void Node::MaybePersistSnapshot() {
  if (!pending_bundle_.has_value() || !raft_->IsPrimary()) return;
  if (ReceiptableUpto() < pending_bundle_->evidence_seqno) return;
  auto receipt = BuildReceipt(pending_bundle_->evidence_seqno);
  if (!receipt.ok()) return;  // signature not committed yet; next tick
  pending_bundle_->receipt = receipt->Serialize();
  // Self-check before shipping: anything that fails here would fail on
  // every joiner and make the snapshot worse than useless.
  Status verified = VerifyBundle(
      *pending_bundle_,
      ByteSpan(service_identity_.data(), service_identity_.size()));
  if (!verified.ok()) {
    LOG_ERROR << config_.node_id << " snapshot bundle failed self-check: "
              << verified.ToString();
    pending_bundle_.reset();
    return;
  }
  latest_bundle_ = std::move(pending_bundle_);
  pending_bundle_.reset();

  tee::SnapshotWrite msg;
  msg.seqno = latest_bundle_->seqno;
  msg.bundle = latest_bundle_->Serialize();
  if (!boundary_.EnclaveSend(kSnapshotWrite, msg.Serialize())) {
    LOG_WARN << config_.node_id << " boundary outbox full, dropping snapshot";
  }
  snapshot_metrics_.persisted->Inc();
}

void Node::MaybeCompactRaftLog() {
  if (raft_ == nullptr || !raft_->IsPrimary() || !latest_bundle_.has_value()) {
    return;
  }
  // Entries below the snapshot horizon are droppable once every
  // replication target's match index has passed them: nobody can need them
  // from the log any more, and anyone who falls further behind gets the
  // bundle instead. CompactTo additionally clamps to the commit point.
  raft_->CompactTo(
      std::min(latest_bundle_->seqno, raft_->MinPeerMatch()));
  for (const std::string& peer : raft_->peers_needing_snapshot()) {
    auto it = offered_catchup_.find(peer);
    if (it != offered_catchup_.end() && it->second >= latest_bundle_->seqno) {
      continue;  // this bundle was already offered; wait for the install
    }
    offered_catchup_[peer] = latest_bundle_->seqno;
    LOG_INFO << config_.node_id << " offering snapshot catch-up at "
             << latest_bundle_->seqno << " to " << peer;
    SendOnChannel(peer, kSnapshotCatchUp, latest_bundle_->Serialize());
  }
}

void Node::HandleSnapshotCatchUp(const std::string& peer, ByteSpan body) {
  if (raft_ == nullptr || raft_->IsPrimary()) return;
  auto bundle = SnapshotBundle::Deserialize(body);
  if (!bundle.ok()) {
    LOG_WARN << config_.node_id << " undecodable catch-up snapshot from "
             << peer;
    return;
  }
  if (bundle->seqno <= raft_->commit_seqno()) return;  // stale offer
  if (encryptor_ == nullptr) return;  // no ledger secret yet
  // Untrusted until the evidence receipt verifies against the pinned
  // service identity, exactly like a joiner's bundle (paper §4.4).
  Status verified = VerifyBundle(
      *bundle, ByteSpan(service_identity_.data(), service_identity_.size()));
  if (!verified.ok()) {
    LOG_WARN << config_.node_id << " rejecting catch-up snapshot from "
             << peer << ": " << verified.ToString();
    return;
  }
  auto state = RestoreState(*bundle, ledger_secret_);
  if (!state.ok()) {
    LOG_WARN << config_.node_id << " catch-up snapshot restore failed: "
             << state.status().ToString();
    return;
  }

  // Re-base wholesale: the local suffix is an uncommitted prefix of what
  // the bundle already covers. The Merkle tree rebuilds from the bundle's
  // leaves (our own leaves are a prefix of them, so committed signed roots
  // and receipts stay valid); the host ledger restarts at the bundle's
  // base like a joiner's.
  store_.InstallState(state.take(), bundle->seqno);
  tree_.Truncate(0);
  tree_.AppendLeafHashes(bundle->leaves);
  tx_digests_.clear();
  tx_digests_.resize(bundle->seqno);  // digests for old entries are unknown
  pending_sig_verifies_.clear();  // all pending are below the bundle
  host_ledger_ = ledger::Ledger();
  Status based = host_ledger_.SetBase(bundle->seqno);
  if (!based.ok()) {
    LOG_ERROR << config_.node_id << " catch-up ledger re-base failed: "
              << based.ToString();
  }
  raft_->InstallSnapshot(bundle->seqno, bundle->view, bundle->configs);
  LOG_INFO << config_.node_id << " installed catch-up snapshot at "
           << bundle->seqno << " from " << peer;
}

void Node::HostStoreSnapshot(ByteSpan payload) {
  auto msg = tee::SnapshotWrite::Deserialize(payload);
  if (!msg.ok()) return;
  sim::HostFaults faults =
      env_ != nullptr ? env_->HostFaultsFor(config_.node_id) : sim::HostFaults{};
  auto bernoulli = [&](double p) {
    return p > 0.0 && host_drbg_.Uniform(10000) < static_cast<uint64_t>(p * 10000);
  };
  if (bernoulli(faults.snapshot_drop)) {
    snapshot_metrics_.persist_drops->Inc();
    return;  // the next snapshot interval produces a fresh bundle
  }
  if (bernoulli(faults.snapshot_corrupt) && !msg->bundle.empty()) {
    msg->bundle[host_drbg_.Uniform(msg->bundle.size())] ^= 0x01;
    snapshot_metrics_.persist_corrupts->Inc();
  }
  // The host stores the bundle as opaque bytes; verification happens in
  // the enclave of whoever loads it (joiner or recovery node).
  host_snapshot_bundle_ = std::move(msg->bundle);
  host_snapshot_seqno_ = msg->seqno;
  if (config_.snapshot_retire_ledger) {
    Status retired = host_ledger_.RetireBelow(msg->seqno);
    if (!retired.ok()) {
      LOG_WARN << config_.node_id << " chunk retirement: "
               << retired.ToString();
    }
  }
}

Status Node::SaveSnapshotToDir(const std::string& dir) const {
  if (host_snapshot_seqno_ == 0) {
    return Status::NotFound("host holds no snapshot bundle");
  }
  return SaveRawBundleToDir(host_snapshot_bundle_, host_snapshot_seqno_, dir);
}

void Node::MaybeCompleteRetirements() {
  // Paper §4.5: once the reconfiguration transaction that set a node to
  // RETIRING has committed (removing it from the configuration), the
  // primary adds a second transaction marking it RETIRED; after that
  // commits the node can be shut down.
  if (raft_ == nullptr || !raft_->IsPrimary()) return;
  const kv::MapEntry* map =
      store_.current_state().maps.Get(std::string(tables::kNodesInfo));
  if (map == nullptr) return;
  std::vector<std::string> to_retire;
  map->data.ForEach([&](const Bytes& key, const kv::VersionedValue& vv) {
    if (vv.version > raft_->commit_seqno()) return true;  // not committed
    auto j = json::Parse(ToString(vv.value));
    if (j.ok() && j->GetString("status") == "Retiring") {
      to_retire.push_back(ToString(key));
    }
    return true;
  });
  // Drop learners that have fully caught up on a committed retirement.
  std::vector<std::string> done;
  for (const std::string& learner : raft_->learners()) {
    auto raw = store_.GetStr(tables::kNodesInfo, learner);
    if (!raw.has_value()) continue;
    auto j = json::Parse(*raw);
    if (j.ok() && j->GetString("status") == "Retired" &&
        raft_->PeerCaughtUp(learner)) {
      done.push_back(learner);
    }
  }
  for (const std::string& learner : done) raft_->RemoveLearner(learner);

  if (to_retire.empty()) return;
  kv::Tx tx = store_.BeginTx();
  for (const std::string& node_id : to_retire) {
    auto record = gov::ReadRecord(tx.Handle(tables::kNodesInfo), node_id);
    if (!record.ok()) continue;
    auto info = gov::NodeInfo::FromJson(*record);
    if (!info.ok()) continue;
    info->status = gov::NodeStatus::kRetired;
    gov::WriteRecord(tx.Handle(tables::kNodesInfo), node_id, info->ToJson());
    LOG_INFO << config_.node_id << " marking " << node_id << " Retired";
  }
  auto committed = CommitAndReplicate(&tx, ledger::EntryType::kReconfiguration);
  if (!committed.ok()) {
    LOG_DEBUG << "retirement completion failed: "
              << committed.status().ToString();
  }
}

void Node::HandleOwnRetirement() {
  if (retired_) return;
  auto raw = store_.GetStr(tables::kNodesInfo, config_.node_id);
  if (!raw.has_value()) return;
  auto j = json::Parse(*raw);
  if (!j.ok()) return;
  if (j->GetString("status") == "Retired") {
    // Only final once committed.
    const kv::MapEntry* map = store_.current_state().maps.Get(
        std::string(tables::kNodesInfo));
    if (map != nullptr && map->version <= raft_->commit_seqno()) {
      retired_ = true;
      LOG_INFO << config_.node_id << " retired and may shut down";
    }
  }
}

Result<Bytes> Node::ExtractRecoveryShare(const std::string& member_id,
                                         const crypto::KeyPair& member_key) {
  kv::Tx tx = store_.BeginTx();
  return gov::ShareManager::ExtractMemberShare(&tx, member_id, member_key);
}

}  // namespace ccf::node
