#include "node/snapshots.h"

#include <algorithm>
#include <cstdlib>
#include <filesystem>
#include <fstream>

#include "common/buffer.h"
#include "common/hex.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"
#include "json/json.h"
#include "kv/tables.h"
#include "kv/writeset.h"

namespace ccf::node {

namespace {

constexpr char kBundleTag[] = "ccf.snapshot.bundle.v1";

// Fields covered by the content digest (everything except the evidence
// binding, which commits after the digest is computed).
void WriteContent(BufWriter* w, const SnapshotBundle& b) {
  w->Str(kBundleTag);
  w->U64(b.view);
  w->U64(b.seqno);
  w->Blob(b.public_data);
  w->Blob(b.private_sealed);
  w->U64(b.leaves.size());
  for (const merkle::Digest& leaf : b.leaves) {
    w->Raw(ByteSpan(leaf.data(), leaf.size()));
  }
  w->U64(b.configs.size());
  for (const consensus::Configuration& c : b.configs) {
    w->U64(c.seqno);
    w->U64(c.nodes.size());
    for (const auto& n : c.nodes) w->Str(n);
  }
}

Bytes SnapshotAad(uint64_t view, uint64_t seqno) {
  BufWriter w;
  w.Str("ccf.snapshot.aad.v1");
  w.U64(view);
  w.U64(seqno);
  return w.Take();
}

// A fixed seqno-derived IV is safe here because the derived snapshot key
// is used for exactly one plaintext per seqno, and determinism is the
// point: identical state sealed at identical (view, seqno) must produce
// identical bytes on every node.
std::array<uint8_t, crypto::kGcmIvSize> SnapshotIv(uint64_t seqno) {
  std::array<uint8_t, crypto::kGcmIvSize> iv{};
  for (int i = 0; i < 8; ++i) {
    iv[i] = static_cast<uint8_t>(seqno >> (8 * i));
  }
  iv[8] = 's';
  iv[9] = 'n';
  iv[10] = 'a';
  iv[11] = 'p';
  return iv;
}

Bytes SnapshotKey(const kv::LedgerSecret& secret) {
  return crypto::Hkdf(secret.key, ToBytes("ccf.snapshot.key.v1"), ToBytes(""),
                      crypto::kAes256KeySize);
}

}  // namespace

Bytes SnapshotBundle::Serialize() const {
  BufWriter w;
  WriteContent(&w, *this);
  w.U64(evidence_seqno);
  w.Blob(evidence_entry);
  w.Blob(receipt);
  return w.Take();
}

Result<SnapshotBundle> SnapshotBundle::Deserialize(ByteSpan data) {
  BufReader r(data);
  SnapshotBundle b;
  ASSIGN_OR_RETURN(std::string tag, r.Str());
  if (tag != kBundleTag) {
    return Status::Corruption("snapshot bundle: bad tag");
  }
  ASSIGN_OR_RETURN(b.view, r.U64());
  ASSIGN_OR_RETURN(b.seqno, r.U64());
  ASSIGN_OR_RETURN(b.public_data, r.Blob());
  ASSIGN_OR_RETURN(b.private_sealed, r.Blob());
  ASSIGN_OR_RETURN(uint64_t nleaves, r.U64());
  if (nleaves * crypto::kSha256DigestSize > r.remaining()) {
    return Status::OutOfRange("snapshot bundle: truncated leaves");
  }
  b.leaves.reserve(static_cast<size_t>(nleaves));
  for (uint64_t i = 0; i < nleaves; ++i) {
    ASSIGN_OR_RETURN(Bytes d, r.Raw(crypto::kSha256DigestSize));
    merkle::Digest leaf;
    std::copy(d.begin(), d.end(), leaf.begin());
    b.leaves.push_back(leaf);
  }
  ASSIGN_OR_RETURN(uint64_t nconfigs, r.U64());
  if (nconfigs > r.remaining()) {
    return Status::OutOfRange("snapshot bundle: truncated configs");
  }
  for (uint64_t i = 0; i < nconfigs; ++i) {
    consensus::Configuration c;
    ASSIGN_OR_RETURN(c.seqno, r.U64());
    ASSIGN_OR_RETURN(uint64_t nnodes, r.U64());
    if (nnodes > r.remaining()) {
      return Status::OutOfRange("snapshot bundle: truncated config nodes");
    }
    for (uint64_t j = 0; j < nnodes; ++j) {
      ASSIGN_OR_RETURN(std::string node, r.Str());
      c.nodes.insert(std::move(node));
    }
    b.configs.push_back(std::move(c));
  }
  ASSIGN_OR_RETURN(b.evidence_seqno, r.U64());
  ASSIGN_OR_RETURN(b.evidence_entry, r.Blob());
  ASSIGN_OR_RETURN(b.receipt, r.Blob());
  if (!r.AtEnd()) {
    return Status::Corruption("snapshot bundle: trailing bytes");
  }
  return b;
}

crypto::Sha256Digest SnapshotBundle::ContentDigest() const {
  BufWriter w;
  WriteContent(&w, *this);
  return crypto::Sha256::Hash(w.data());
}

Bytes SealSnapshotPrivate(const kv::LedgerSecret& secret, uint64_t view,
                          uint64_t seqno, ByteSpan plain) {
  auto iv = SnapshotIv(seqno);
  return crypto::AesGcm(SnapshotKey(secret))
      .Seal(ByteSpan(iv.data(), iv.size()), plain, SnapshotAad(view, seqno));
}

Result<Bytes> OpenSnapshotPrivate(const kv::LedgerSecret& secret,
                                  uint64_t view, uint64_t seqno,
                                  ByteSpan sealed) {
  auto iv = SnapshotIv(seqno);
  return crypto::AesGcm(SnapshotKey(secret))
      .Open(ByteSpan(iv.data(), iv.size()), sealed, SnapshotAad(view, seqno));
}

SnapshotBundle BuildBundle(const kv::State& state, uint64_t seqno,
                           uint64_t view, const kv::LedgerSecret& secret,
                           std::vector<merkle::Digest> leaves,
                           std::vector<consensus::Configuration> configs) {
  SnapshotBundle b;
  b.seqno = seqno;
  b.view = view;
  b.public_data = kv::SerializeState(kv::FilterState(state, true));
  b.private_sealed = SealSnapshotPrivate(
      secret, view, seqno,
      kv::SerializeState(kv::FilterState(state, false)));
  b.leaves = std::move(leaves);
  b.configs = std::move(configs);
  return b;
}

Bytes EvidenceRecord(const SnapshotBundle& bundle) {
  crypto::Sha256Digest digest = bundle.ContentDigest();
  json::Object out;
  out["digest"] = HexEncode(ByteSpan(digest.data(), digest.size()));
  out["seqno"] = bundle.seqno;
  out["view"] = bundle.view;
  return ToBytes(json::Value(std::move(out)).Dump());
}

Result<SnapshotEvidence> ParseEvidenceEntry(const ledger::Entry& entry) {
  ASSIGN_OR_RETURN(kv::WriteSet ws,
                   kv::WriteSet::Parse(entry.public_ws, ByteSpan{}));
  auto map_it = ws.maps.find(kv::tables::kSnapshotEvidence);
  if (map_it == ws.maps.end()) {
    return Status::NotFound("snapshot: entry carries no evidence");
  }
  auto val_it = map_it->second.find(ToBytes(kv::tables::kCurrentKey));
  if (val_it == map_it->second.end() || !val_it->second.has_value()) {
    return Status::NotFound("snapshot: entry carries no evidence record");
  }
  ASSIGN_OR_RETURN(json::Value record, json::Parse(ToString(*val_it->second)));
  SnapshotEvidence ev;
  ev.seqno = static_cast<uint64_t>(record.GetInt("seqno"));
  ev.view = static_cast<uint64_t>(record.GetInt("view"));
  ASSIGN_OR_RETURN(Bytes digest, HexDecode(record.GetString("digest")));
  if (digest.size() != ev.digest.size()) {
    return Status::Corruption("snapshot: malformed evidence digest");
  }
  std::copy(digest.begin(), digest.end(), ev.digest.begin());
  return ev;
}

Status VerifyBundleContent(const SnapshotBundle& bundle) {
  if (bundle.seqno == 0) {
    return Status::InvalidArgument("snapshot bundle: empty snapshot");
  }
  if (bundle.leaves.size() != bundle.seqno) {
    return Status::Corruption("snapshot bundle: leaf count " +
                              std::to_string(bundle.leaves.size()) +
                              " does not cover seqno " +
                              std::to_string(bundle.seqno));
  }
  if (bundle.configs.empty()) {
    return Status::Corruption("snapshot bundle: no configurations");
  }
  if (bundle.evidence_seqno <= bundle.seqno) {
    return Status::Corruption("snapshot bundle: evidence precedes snapshot");
  }
  ASSIGN_OR_RETURN(ledger::Entry entry,
                   ledger::Entry::Deserialize(bundle.evidence_entry));
  if (entry.seqno != bundle.evidence_seqno) {
    return Status::Corruption("snapshot bundle: evidence entry seqno " +
                              std::to_string(entry.seqno) + " != " +
                              std::to_string(bundle.evidence_seqno));
  }
  ASSIGN_OR_RETURN(SnapshotEvidence ev, ParseEvidenceEntry(entry));
  if (ev.seqno != bundle.seqno || ev.view != bundle.view) {
    return Status::PermissionDenied(
        "snapshot bundle: evidence does not match bundle position");
  }
  if (ev.digest != bundle.ContentDigest()) {
    return Status::PermissionDenied(
        "snapshot bundle: evidence digest mismatch (forged or corrupt)");
  }
  ASSIGN_OR_RETURN(merkle::Receipt receipt,
                   merkle::Receipt::Deserialize(bundle.receipt));
  if (receipt.seqno != entry.seqno || receipt.view != entry.view ||
      receipt.write_set_digest != entry.WriteSetDigest() ||
      receipt.claims_digest != entry.claims_digest) {
    return Status::PermissionDenied(
        "snapshot bundle: receipt does not cover the evidence entry");
  }
  return Status::Ok();
}

Status VerifyBundle(const SnapshotBundle& bundle,
                    ByteSpan service_public_key) {
  RETURN_IF_ERROR(VerifyBundleContent(bundle));
  ASSIGN_OR_RETURN(merkle::Receipt receipt,
                   merkle::Receipt::Deserialize(bundle.receipt));
  return receipt.Verify(service_public_key);
}

Result<kv::State> RestorePublicState(const SnapshotBundle& bundle) {
  ASSIGN_OR_RETURN(kv::State state, kv::DeserializeState(bundle.public_data));
  Status ok = Status::Ok();
  state.maps.ForEach([&](const std::string& name, const kv::MapEntry&) {
    if (!kv::IsPublicMap(name)) {
      ok = Status::Corruption("snapshot bundle: private map \"" + name +
                              "\" in the public half");
      return false;
    }
    return true;
  });
  RETURN_IF_ERROR(ok);
  return state;
}

Result<kv::State> RestoreState(const SnapshotBundle& bundle,
                               const kv::LedgerSecret& secret) {
  ASSIGN_OR_RETURN(kv::State pub, RestorePublicState(bundle));
  ASSIGN_OR_RETURN(Bytes plain, OpenSnapshotPrivate(secret, bundle.view,
                                                    bundle.seqno,
                                                    bundle.private_sealed));
  ASSIGN_OR_RETURN(kv::State priv, kv::DeserializeState(plain));
  return kv::MergeStates(pub, priv);
}

Status SaveRawBundleToDir(ByteSpan bundle, uint64_t seqno,
                          const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("snapshot: cannot create dir " + dir);
  }
  for (const auto& de : fs::directory_iterator(dir)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("snapshot_", 0) == 0) fs::remove(de.path(), ec);
  }
  const std::string path = dir + "/snapshot_" + std::to_string(seqno);
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("snapshot: cannot open " + path);
  }
  out.write(reinterpret_cast<const char*>(bundle.data()),
            static_cast<std::streamsize>(bundle.size()));
  if (!out) {
    return Status::Internal("snapshot: write failed for " + path);
  }
  return Status::Ok();
}

Status SaveBundleToDir(const SnapshotBundle& bundle, const std::string& dir) {
  Bytes data = bundle.Serialize();
  return SaveRawBundleToDir(data, bundle.seqno, dir);
}

Result<SnapshotBundle> LoadLatestBundleFromDir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    return Status::NotFound("snapshot: no such directory " + dir);
  }
  uint64_t best_seqno = 0;
  std::string best_path;
  for (const auto& de : fs::directory_iterator(dir)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("snapshot_", 0) != 0) continue;
    uint64_t seqno = std::strtoull(name.c_str() + 9, nullptr, 10);
    if (seqno > best_seqno) {
      best_seqno = seqno;
      best_path = de.path().string();
    }
  }
  if (best_path.empty()) {
    return Status::NotFound("snapshot: no snapshot files in " + dir);
  }
  std::ifstream in(best_path, std::ios::binary);
  if (!in) {
    return Status::Internal("snapshot: cannot open " + best_path);
  }
  Bytes data((std::istreambuf_iterator<char>(in)),
             std::istreambuf_iterator<char>());
  return SnapshotBundle::Deserialize(data);
}

}  // namespace ccf::node
