#include "node/indexing.h"

#include <algorithm>

namespace ccf::indexing {

Indexer::Indexer(size_t entries_per_tick)
    : entries_per_tick_(entries_per_tick == 0 ? 1 : entries_per_tick) {}

void Indexer::Install(std::shared_ptr<Strategy> strategy) {
  if (strategy) strategies_.push_back(std::move(strategy));
}

size_t Indexer::Tick(uint64_t commit_seqno, const DecodeFn& decode) {
  size_t fed = 0;
  while (indexed_upto_ < commit_seqno && fed < entries_per_tick_) {
    uint64_t seqno = indexed_upto_ + 1;
    CommittedEntry entry;
    if (decode(seqno, &entry)) {
      for (auto& strategy : strategies_) {
        strategy->OnCommittedEntry(entry.view, entry.seqno, entry.writes);
      }
    } else {
      ++stats_.decode_failures;
    }
    indexed_upto_ = seqno;
    ++fed;
  }
  if (fed > 0) {
    stats_.entries_fed += fed;
    ++stats_.ticks_with_work;
    stats_.max_fed_per_tick = std::max<uint64_t>(stats_.max_fed_per_tick, fed);
  }
  return fed;
}

void Indexer::OnRollback(uint64_t seqno) {
  // Only committed entries are ever fed, and commit never rolls back, so a
  // rollback below indexed_upto_ would mean the feed order was violated.
  (void)seqno;
}

SeqnosByKey::SeqnosByKey(std::string map_name, uint64_t bucket_size)
    : map_name_(std::move(map_name)),
      bucket_size_(bucket_size == 0 ? 1 : bucket_size) {}

void SeqnosByKey::OnCommittedEntry(uint64_t view, uint64_t seqno,
                                   const kv::WriteSet& writes) {
  (void)view;
  auto it = writes.maps.find(map_name_);
  if (it == writes.maps.end()) return;
  for (const auto& [key, value] : it->second) {
    std::string key_str(key.begin(), key.end());
    auto& bucket = buckets_[key_str][seqno / bucket_size_];
    if (bucket.empty() || bucket.back() < seqno) bucket.push_back(seqno);
  }
}

std::vector<uint64_t> SeqnosByKey::SeqnosInRange(std::string_view key,
                                                 uint64_t lo,
                                                 uint64_t hi) const {
  std::vector<uint64_t> out;
  if (lo > hi) return out;
  auto it = buckets_.find(std::string(key));
  if (it == buckets_.end()) return out;
  const auto& by_bucket = it->second;
  for (auto b = by_bucket.lower_bound(lo / bucket_size_);
       b != by_bucket.end() && b->first <= hi / bucket_size_; ++b) {
    for (uint64_t seqno : b->second) {
      if (seqno >= lo && seqno <= hi) out.push_back(seqno);
    }
  }
  return out;
}

std::optional<uint64_t> SeqnosByKey::LastWriteAtOrBefore(
    std::string_view key, uint64_t seqno) const {
  auto it = buckets_.find(std::string(key));
  if (it == buckets_.end()) return std::nullopt;
  const auto& by_bucket = it->second;
  // Walk buckets downward from the one containing `seqno`.
  auto b = by_bucket.upper_bound(seqno / bucket_size_);
  while (b != by_bucket.begin()) {
    --b;
    const auto& seqnos = b->second;
    auto pos = std::upper_bound(seqnos.begin(), seqnos.end(), seqno);
    if (pos != seqnos.begin()) return *(pos - 1);
  }
  return std::nullopt;
}

size_t SeqnosByKey::bucket_count() const {
  size_t n = 0;
  for (const auto& [key, by_bucket] : buckets_) n += by_bucket.size();
  return n;
}

}  // namespace ccf::indexing
