#include "node/historical.h"

#include <algorithm>

namespace ccf::node::historical {

bool RangeRequest::Complete() const {
  for (const auto& slot : entries) {
    if (!slot.has_value()) return false;
  }
  return !entries.empty();
}

const VerifiedEntry* RangeRequest::EntryAt(uint64_t seqno) const {
  if (seqno < lo || seqno > hi) return nullptr;
  const auto& slot = entries[seqno - lo];
  return slot.has_value() ? &*slot : nullptr;
}

Result<kv::Tx> RangeRequest::TxAt(uint64_t seqno) const {
  if (state != RequestState::kReady || !store) {
    return Status::FailedPrecondition("historical: range not ready");
  }
  if (seqno < lo || seqno > hi) {
    return Status::OutOfRange("historical: seqno outside range");
  }
  return store->BeginTxAt(seqno);
}

StateCache::StateCache(const HistoricalConfig& config, FetchFn fetch,
                       VerifyFn verify)
    : config_(config), fetch_(std::move(fetch)), verify_(std::move(verify)) {}

StateCache::Lookup StateCache::GetRange(uint64_t lo, uint64_t hi,
                                        uint64_t now_ms) {
  ++stats_.requests;
  Lookup out;
  if (lo == 0 || hi < lo) {
    out.state = RequestState::kFailed;
    out.error = "historical: invalid range";
    return out;
  }
  if (hi - lo + 1 > config_.max_range) {
    out.state = RequestState::kFailed;
    out.error = "historical: range too large (max " +
                std::to_string(config_.max_range) + ")";
    return out;
  }
  auto it = requests_.find({lo, hi});
  if (it != requests_.end()) {
    RangeRequest& req = it->second;
    req.last_access_ms = now_ms;
    out.state = req.state;
    switch (req.state) {
      case RequestState::kReady:
        ++stats_.hits;
        out.request = &req;
        return out;
      case RequestState::kFetching:
        out.retry_after_ms = config_.retry_after_ms;
        return out;
      case RequestState::kFailed:
        // Report the error once, then forget the request so the next
        // identical query starts a fresh fetch.
        out.error = req.error;
        requests_.erase(it);
        return out;
      case RequestState::kCompacted:
        // Definitive: the range was retired below the snapshot horizon.
        // Keep the request cached so repeat queries answer immediately
        // instead of re-fetching what the host no longer has.
        out.error = req.error;
        out.horizon = req.horizon;
        return out;
    }
  }
  RangeRequest req;
  req.lo = lo;
  req.hi = hi;
  req.entries.resize(hi - lo + 1);
  req.last_access_ms = now_ms;
  req.deadline_ms = now_ms + config_.fetch_timeout_ms;
  auto [pos, inserted] = requests_.emplace(RangeKey{lo, hi}, std::move(req));
  SendFetch(&pos->second, now_ms);
  EvictOverCapacity();
  out.state = RequestState::kFetching;
  out.retry_after_ms = config_.retry_after_ms;
  return out;
}

void StateCache::SendFetch(RangeRequest* request, uint64_t now_ms) {
  request->last_fetch_ms = now_ms;
  ++stats_.fetches;
  fetch_(request->lo, request->hi);
}

void StateCache::EvictOverCapacity() {
  while (requests_.size() > config_.cache_max_requests) {
    auto victim = requests_.end();
    for (auto it = requests_.begin(); it != requests_.end(); ++it) {
      if (victim == requests_.end() ||
          it->second.last_access_ms < victim->second.last_access_ms) {
        victim = it;
      }
    }
    requests_.erase(victim);
    ++stats_.evictions;
  }
}

void StateCache::OnFetchResponse(const tee::LedgerFetchResponse& response) {
  auto it = requests_.find({response.lo, response.hi});
  if (it == requests_.end()) {
    ++stats_.stale_responses;  // evicted or timed out while in flight
    return;
  }
  RangeRequest& req = it->second;
  if (req.state != RequestState::kFetching) return;
  if (!response.ok) {
    if (response.compacted) {
      // Not transient: these seqnos were retired below the snapshot
      // horizon and no amount of retrying brings them back.
      req.state = RequestState::kCompacted;
      req.error = "compacted below snapshot horizon";
      req.horizon = response.horizon;
      ++stats_.compacted;
      return;
    }
    req.state = RequestState::kFailed;
    req.error = "host: " + response.error;
    ++stats_.failures;
    return;
  }
  for (size_t i = 0; i < req.entries.size(); ++i) {
    if (req.entries[i].has_value()) continue;  // already verified
    if (i >= response.entries.size()) break;
    auto entry_or = ledger::Entry::Deserialize(response.entries[i]);
    if (!entry_or.ok() || entry_or->seqno != req.lo + i) {
      ++stats_.entries_rejected;
      continue;  // slot stays empty; re-fetched on the retry interval
    }
    auto verified_or = verify_(*entry_or);
    if (!verified_or.ok()) {
      // Transient (Unavailable: no covering root yet) leaves the slot
      // empty silently; anything else is a corrupt entry.
      if (!verified_or.status().IsUnavailable()) {
        ++stats_.entries_rejected;
      }
      continue;
    }
    req.entries[i] = std::move(*verified_or);
    ++stats_.entries_accepted;
  }
  if (req.Complete()) {
    Status built = BuildStore(&req);
    if (built.ok()) {
      req.state = RequestState::kReady;
    } else {
      req.state = RequestState::kFailed;
      req.error = built.message();
      ++stats_.failures;
    }
  }
}

Status StateCache::BuildStore(RangeRequest* request) {
  auto store = std::make_shared<kv::Store>();
  store->SetRetainedRootCap(0);  // retain every root in [lo, hi]
  store->InstallState(kv::State{}, request->lo - 1);
  for (const auto& slot : request->entries) {
    Status applied =
        store->ApplyWriteSet(slot->writes, slot->entry.seqno);
    if (!applied.ok()) return applied;
  }
  request->store = std::move(store);
  return Status::Ok();
}

void StateCache::Tick(uint64_t now_ms) {
  for (auto it = requests_.begin(); it != requests_.end();) {
    RangeRequest& req = it->second;
    if (req.state == RequestState::kFetching) {
      if (now_ms >= req.deadline_ms) {
        req.state = RequestState::kFailed;
        req.error = "historical: fetch timed out";
        ++stats_.timeouts;
      } else if (now_ms >= req.last_fetch_ms + config_.retry_interval_ms) {
        // Re-fetch the whole range; verified slots are skipped on receipt.
        ++req.retries;
        ++stats_.retries;
        SendFetch(&req, now_ms);
      }
    }
    if (now_ms >= req.last_access_ms + config_.cache_ttl_ms) {
      it = requests_.erase(it);
      ++stats_.expired;
    } else {
      ++it;
    }
  }
}

Status StateCache::AuditCache(ByteSpan service_public_key) const {
  for (const auto& [key, req] : requests_) {
    if (req.state != RequestState::kReady) continue;
    for (const auto& slot : req.entries) {
      if (!slot.has_value()) {
        return Status::Internal("historical: ready range with empty slot");
      }
      const VerifiedEntry& ve = *slot;
      Status ok = ve.receipt.Verify(service_public_key);
      if (!ok.ok()) return ok;
      if (ve.receipt.seqno != ve.entry.seqno ||
          ve.receipt.write_set_digest != ve.entry.WriteSetDigest()) {
        return Status::Internal("historical: receipt/entry mismatch");
      }
    }
  }
  return Status::Ok();
}

}  // namespace ccf::node::historical
