// Verified snapshot bundles (paper §4.4).
//
// "Nodes can begin from a snapshot and use the consensus layer to simply
// learn the transactions since." For that to be safe the snapshot itself
// must be verifiable: after taking a snapshot at seqno S the primary
// commits an *evidence* transaction to the public map
// "public:ccf.internal.snapshot_evidence" carrying the snapshot's content
// digest. Once the evidence commits under a signed Merkle root, an
// ordinary receipt (paper §3.5) for the evidence transaction proves — to a
// joiner, a recovering node, or an offline auditor — that the service
// committed to exactly these snapshot bytes. The bundle shipped to the
// host (and served to joiners) packages:
//
//   - the public-map state in plain text and the private-map state sealed
//     with a key derived from the ledger secret (deterministically, so
//     every node producing the snapshot produces identical bytes and the
//     content digest is well-defined without revealing private state),
//   - the Merkle leaf hashes for seqnos [1, S] so the receiver can extend
//     the tree and verify future receipts,
//   - ALL active consensus configurations at S (a snapshot taken inside a
//     reconfiguration window has two),
//   - the evidence transaction's ledger entry and its receipt.
//
// Everything that leaves the enclave is untrusted on the way back in:
// VerifyBundle re-derives the content digest and checks the receipt
// against the service identity before any install.

#ifndef CCF_NODE_SNAPSHOTS_H_
#define CCF_NODE_SNAPSHOTS_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "consensus/types.h"
#include "crypto/sha256.h"
#include "kv/encryptor.h"
#include "kv/snapshot.h"
#include "ledger/ledger.h"
#include "merkle/receipt.h"

namespace ccf::node {

struct SnapshotBundle {
  uint64_t seqno = 0;  // snapshot covers committed state up to here
  uint64_t view = 0;
  Bytes public_data;     // plaintext kv::SerializeState of the public maps
  Bytes private_sealed;  // deterministically sealed state of private maps
  std::vector<merkle::Digest> leaves;  // Merkle leaf hashes for [1, seqno]
  std::vector<consensus::Configuration> configs;  // all active at seqno

  // Evidence binding (filled once the evidence transaction commits).
  uint64_t evidence_seqno = 0;
  Bytes evidence_entry;  // serialized ledger::Entry carrying the digest
  Bytes receipt;         // serialized merkle::Receipt for that entry

  Bytes Serialize() const;
  static Result<SnapshotBundle> Deserialize(ByteSpan data);

  // Digest committed as evidence: covers state, leaves and configs but NOT
  // the evidence fields (the evidence transaction commits after the
  // digest is computed).
  crypto::Sha256Digest ContentDigest() const;
};

// Deterministic sealing of the private half. The key is derived from the
// ledger secret via HKDF and the IV from the snapshot seqno, so two nodes
// sealing the same state at the same (view, seqno) produce identical
// ciphertext — a requirement for the content digest to be comparable
// across nodes.
Bytes SealSnapshotPrivate(const kv::LedgerSecret& secret, uint64_t view,
                          uint64_t seqno, ByteSpan plain);
Result<Bytes> OpenSnapshotPrivate(const kv::LedgerSecret& secret,
                                  uint64_t view, uint64_t seqno,
                                  ByteSpan sealed);

// Builds a bundle (without evidence fields) from a committed state.
SnapshotBundle BuildBundle(const kv::State& state, uint64_t seqno,
                           uint64_t view, const kv::LedgerSecret& secret,
                           std::vector<merkle::Digest> leaves,
                           std::vector<consensus::Configuration> configs);

// The JSON record committed to tables::kSnapshotEvidence:
//   {"digest":"<hex>","seqno":S,"view":V}
Bytes EvidenceRecord(const SnapshotBundle& bundle);

struct SnapshotEvidence {
  uint64_t seqno = 0;
  uint64_t view = 0;
  crypto::Sha256Digest digest{};
};

// Extracts the evidence record from a ledger entry's public write set.
Result<SnapshotEvidence> ParseEvidenceEntry(const ledger::Entry& entry);

// Structural verification: the bundle's evidence entry parses, matches
// the re-derived content digest, the leaf count matches the seqno, and
// the receipt is internally consistent with the evidence entry. Does NOT
// check the receipt signature chain.
Status VerifyBundleContent(const SnapshotBundle& bundle);

// Full verification: VerifyBundleContent plus the receipt verifies
// against the service identity. This MUST pass before any install.
Status VerifyBundle(const SnapshotBundle& bundle,
                    ByteSpan service_public_key);

// Reassembles KV state. RestorePublicState needs no secrets;
// RestoreState additionally opens the sealed private half and merges.
Result<kv::State> RestorePublicState(const SnapshotBundle& bundle);
Result<kv::State> RestoreState(const SnapshotBundle& bundle,
                               const kv::LedgerSecret& secret);

// Host-side persistence next to the ledger chunks: one file
// "snapshot_<seqno>" holding the serialized bundle; older snapshot files
// are removed on save. The raw form is what the host uses — it never
// interprets the bundle, it just stores bytes.
Status SaveRawBundleToDir(ByteSpan bundle, uint64_t seqno,
                          const std::string& dir);
Status SaveBundleToDir(const SnapshotBundle& bundle, const std::string& dir);
Result<SnapshotBundle> LoadLatestBundleFromDir(const std::string& dir);

}  // namespace ccf::node

#endif  // CCF_NODE_SNAPSHOTS_H_
