// Offline ledger audit (paper §6.2).
//
// "Integrity protection with signature transactions ensures that a
// malicious party cannot modify the ledger undetected whilst it is in
// persistent storage, however, the ledger could be rolled back to a
// previously valid prefix."
//
// The auditor works with no access to a running service or the ledger
// secret: it replays the PUBLIC halves of every transaction, rebuilds the
// Merkle tree, and verifies each signature transaction's signed root
// against the reconstructed tree, the signing node's certificate, and the
// service identity. Governance (proposals, ballots, membership, code ids)
// is fully public, so the whole governance history is auditable offline.

#ifndef CCF_NODE_AUDIT_H_
#define CCF_NODE_AUDIT_H_

#include <optional>
#include <string>

#include "common/status.h"
#include "crypto/sign.h"
#include "ledger/ledger.h"

namespace ccf::node {

struct AuditReport {
  uint64_t entries = 0;
  uint64_t signature_transactions = 0;
  // Entries up to here are covered by a verified signature (its own or a
  // later one); a suffix beyond it is present but not yet signed.
  uint64_t verified_seqno = 0;
  uint64_t governance_entries = 0;
  // Signatures that went through crypto::VerifyBatch (0 in serial mode).
  uint64_t batched_verifications = 0;
  // The service identity the ledger chains to (hex public key).
  std::string service_identity_hex;
};

struct AuditOptions {
  // Use the batched kernels: MerkleTree::AppendBatch for leaf replay and
  // crypto::VerifyBatch for root signatures. Off = the serial baseline
  // (bench_ablation_crypto compares the two).
  bool batch = true;
  // Signatures accumulated before a VerifyBatch flush.
  size_t verify_batch_width = 32;
};

// Audits `ledger`. If `expected_service` is provided the genesis service
// identity must match it; otherwise it is taken from the genesis entry
// (trust-on-first-use) and reported.
Result<AuditReport> AuditLedger(
    const ledger::Ledger& ledger,
    std::optional<crypto::PublicKeyBytes> expected_service = std::nullopt,
    AuditOptions options = {});

}  // namespace ccf::node

#endif  // CCF_NODE_AUDIT_H_
