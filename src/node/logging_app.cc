#include "node/logging_app.h"

#include "json/json.h"

namespace ccf::node {

namespace {

void WriteMessage(rpc::EndpointContext* ctx, const char* map) {
  auto params = ctx->Params();
  if (!params.ok() || params->Get("id") == nullptr ||
      params->Get("msg") == nullptr) {
    ctx->SetError(400, "body must contain {id, msg}");
    return;
  }
  int64_t id = params->GetInt("id");
  std::string msg = params->GetString("msg");
  ctx->tx().Handle(map)->PutStr(std::to_string(id), msg);
  json::Object out;
  out["ok"] = true;
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

void ReadMessage(rpc::EndpointContext* ctx, const char* map) {
  std::string id = ctx->request().GetHeader("x-query-id");
  if (id.empty()) {
    ctx->SetError(400, "missing id query parameter");
    return;
  }
  auto msg = ctx->tx().Handle(map)->GetStr(id);
  if (!msg.has_value()) {
    ctx->SetError(404, "no such message");
    return;
  }
  json::Object out;
  out["id"] = static_cast<int64_t>(std::strtoll(id.c_str(), nullptr, 10));
  out["msg"] = *msg;
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

}  // namespace

void LoggingApp::RegisterEndpoints(rpc::EndpointRegistry* registry) {
  using rpc::AuthPolicy;
  registry->Install(
      "POST", "/app/log",
      {[](rpc::EndpointContext* ctx) { WriteMessage(ctx, kPrivateMessagesMap); },
       AuthPolicy::kUserCert, /*read_only=*/false});
  registry->Install(
      "GET", "/app/log",
      {[](rpc::EndpointContext* ctx) { ReadMessage(ctx, kPrivateMessagesMap); },
       AuthPolicy::kUserCert, /*read_only=*/true});
  registry->Install(
      "POST", "/app/log_public",
      {[](rpc::EndpointContext* ctx) { WriteMessage(ctx, kPublicMessagesMap); },
       AuthPolicy::kUserCert, /*read_only=*/false});
  registry->Install(
      "GET", "/app/log_public",
      {[](rpc::EndpointContext* ctx) { ReadMessage(ctx, kPublicMessagesMap); },
       AuthPolicy::kUserCert, /*read_only=*/true});
  registry->Install(
      "GET", "/app/count",
      {[](rpc::EndpointContext* ctx) {
         json::Object out;
         out["count"] = ctx->tx().Handle(kPrivateMessagesMap)->Size();
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kUserCert, /*read_only=*/true});
}

const std::string& LoggingAppModule() {
  static const std::string module = R"CCL(
// Scripted logging application (Table 5's "JS" implementation).

function write_message(request) {
  let p = request.params;
  if (p == null || p.id == null || p.msg == null) {
    return {status: 400, body: {error: 'body must contain {id, msg}'}};
  }
  kv_put('private:app.messages', str(p.id), p.msg);
  return {status: 200, body: {ok: true}};
}

function read_message(request) {
  let p = request.params;
  if (p == null || p.id == null) {
    return {status: 400, body: {error: 'body must contain {id}'}};
  }
  let msg = kv_get('private:app.messages', str(p.id));
  if (msg == null) {
    return {status: 404, body: {error: 'no such message'}};
  }
  return {status: 200, body: {id: p.id, msg: msg}};
}
)CCL";
  return module;
}

const std::string& LoggingAppEndpointsJson() {
  static const std::string endpoints = R"JSON({
    "POST /app/jslog": {"handler": "write_message", "auth": "user_cert",
                        "readonly": false},
    "POST /app/jslog_read": {"handler": "read_message", "auth": "user_cert",
                             "readonly": true}
  })JSON";
  return endpoints;
}

}  // namespace ccf::node
