// Asynchronous ledger indexing (paper §3.4): "the indexer pre-processes
// in-order each transaction in the ledger as it is committed", building
// app-defined lookup structures for historical range queries.
//
// Unlike the naive design that indexes inline at the commit callback, the
// Indexer runs at the node's tick with a bounded per-tick entry budget:
// a large commit jump (batch append, joiner catch-up) is absorbed over
// several ticks instead of stalling message processing, and the index
// lags commit by a bounded, observable amount (Lag()) until it catches
// up — the backpressure half of the paper's asynchronous indexing story.

#ifndef CCF_NODE_INDEXING_H_
#define CCF_NODE_INDEXING_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "kv/writeset.h"

namespace ccf::indexing {

// A committed ledger entry after enclave-side decode (private writes
// decrypted), as handed to strategies.
struct CommittedEntry {
  uint64_t view = 0;
  uint64_t seqno = 0;
  kv::WriteSet writes;
};

// An indexing strategy observes every committed entry exactly once, in
// seqno order.
class Strategy {
 public:
  virtual ~Strategy() = default;
  virtual const char* name() const = 0;
  virtual void OnCommittedEntry(uint64_t view, uint64_t seqno,
                                const kv::WriteSet& writes) = 0;
};

// Feeds committed entries to the installed strategies with a per-tick
// budget. The owner (Node) calls Tick once per simulated millisecond with
// the current commit point and a decode callback that materializes one
// committed entry (ledger read + decrypt + parse).
class Indexer {
 public:
  // `entries_per_tick` caps how many entries one Tick may feed (>= 1).
  explicit Indexer(size_t entries_per_tick = 32);

  void Install(std::shared_ptr<Strategy> strategy);

  // Returns false when the entry cannot be decoded (e.g. a joiner's
  // pre-snapshot seqnos, absent from the host ledger); the Indexer then
  // skips it and moves on, matching what a fresh replica could index.
  using DecodeFn = std::function<bool(uint64_t seqno, CommittedEntry* out)>;

  // Feeds entries (indexed_upto, commit_seqno] up to the budget, in
  // order. Returns the number fed this tick.
  size_t Tick(uint64_t commit_seqno, const DecodeFn& decode);

  // Rollbacks only touch uncommitted seqnos, which the Indexer has never
  // seen; this guards the invariant rather than undoing anything.
  void OnRollback(uint64_t seqno);

  uint64_t indexed_upto() const { return indexed_upto_; }
  uint64_t Lag(uint64_t commit_seqno) const {
    return commit_seqno > indexed_upto_ ? commit_seqno - indexed_upto_ : 0;
  }
  size_t strategy_count() const { return strategies_.size(); }

  struct Stats {
    uint64_t entries_fed = 0;
    uint64_t ticks_with_work = 0;
    uint64_t max_fed_per_tick = 0;  // observable backpressure bound
    uint64_t decode_failures = 0;
  };
  const Stats& stats() const { return stats_; }

 private:
  size_t entries_per_tick_;
  uint64_t indexed_upto_ = 0;
  std::vector<std::shared_ptr<Strategy>> strategies_;
  Stats stats_;
};

// The workhorse index shipped with the framework (real CCF's SeqnosByKey):
// for one KV map, the ascending list of seqnos that wrote each key,
// stored in fixed-width seqno buckets so range queries touch only the
// buckets overlapping [from, to].
class SeqnosByKey : public Strategy {
 public:
  explicit SeqnosByKey(std::string map_name, uint64_t bucket_size = 64);

  const char* name() const override { return "SeqnosByKey"; }
  void OnCommittedEntry(uint64_t view, uint64_t seqno,
                        const kv::WriteSet& writes) override;

  // Seqnos in [lo, hi] (inclusive) that wrote `key`, ascending.
  std::vector<uint64_t> SeqnosInRange(std::string_view key, uint64_t lo,
                                      uint64_t hi) const;
  // The last seqno <= `seqno` that wrote `key` (point-in-time lookup).
  std::optional<uint64_t> LastWriteAtOrBefore(std::string_view key,
                                              uint64_t seqno) const;

  const std::string& map_name() const { return map_name_; }
  size_t key_count() const { return buckets_.size(); }
  size_t bucket_count() const;

 private:
  std::string map_name_;
  uint64_t bucket_size_;
  // key -> bucket index (seqno / bucket_size) -> ascending seqnos.
  std::map<std::string, std::map<uint64_t, std::vector<uint64_t>>> buckets_;
};

}  // namespace ccf::indexing

#endif  // CCF_NODE_INDEXING_H_
