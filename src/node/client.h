// A user (or consortium member) client in the simulation.
//
// Connects to any CCF node over STLS (pinning the service identity, paper
// §6.1), speaks HTTP/1.1 inside the session, and surfaces responses with
// their transaction IDs. Members sign governance request bodies with their
// certificate key (the COSE-Sign1 analogue).

#ifndef CCF_NODE_CLIENT_H_
#define CCF_NODE_CLIENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "crypto/cert.h"
#include "http/http.h"
#include "json/json.h"
#include "rpc/session.h"
#include "sim/environment.h"

namespace ccf::node {

class Client {
 public:
  // `key`/`cert` may be null/empty for anonymous clients.
  Client(std::string client_id, sim::Environment* env,
         crypto::PublicKeyBytes service_identity,
         const crypto::KeyPair* key = nullptr,
         std::optional<crypto::Certificate> cert = std::nullopt);
  ~Client();

  // Opens (or re-opens) a session to `node_id`.
  void Connect(const std::string& node_id);
  const std::string& connected_node() const { return node_id_; }
  bool connected() const { return session_ != nullptr && session_->established(); }

  using ResponseCallback = std::function<void(Result<http::Response>)>;

  // Fire-and-forget: responses arrive via callback as the simulation runs.
  void SendRequest(http::Request request, ResponseCallback callback);

  // Convenience: drives the environment until the response arrives (or
  // timeout). Handshake is performed on demand.
  Result<http::Response> Call(http::Request request,
                              uint64_t timeout_ms = 5000);
  Result<http::Response> Get(const std::string& path,
                             uint64_t timeout_ms = 5000);
  Result<http::Response> PostJson(const std::string& path,
                                  const json::Value& body,
                                  uint64_t timeout_ms = 5000);
  // Signs the body with the client key (governance requests).
  Result<http::Response> PostJsonSigned(const std::string& path,
                                        const json::Value& body,
                                        uint64_t timeout_ms = 5000);

  // Parses the transaction ID header of a response ("view.seqno").
  static std::optional<std::pair<uint64_t, uint64_t>> TxIdOf(
      const http::Response& response);

  // Statistics for benchmarks.
  uint64_t responses_received() const { return responses_received_; }

 private:
  void OnNetMessage(const std::string& from, ByteSpan data);
  void FlushQueue();

  std::string client_id_;
  sim::Environment* env_;
  crypto::PublicKeyBytes service_identity_;
  const crypto::KeyPair* key_;
  std::optional<crypto::Certificate> cert_;
  crypto::Drbg drbg_;

  std::string node_id_;
  std::unique_ptr<rpc::ClientSession> session_;
  http::ResponseParser parser_;
  std::deque<Bytes> queued_requests_;  // serialized, awaiting handshake
  std::deque<ResponseCallback> pending_;
  uint64_t responses_received_ = 0;
};

}  // namespace ccf::node

#endif  // CCF_NODE_CLIENT_H_
