// Application interface (paper §2: "CCF enables each service to bring its
// own application logic"). C++ applications implement this and register
// endpoints; scripted (CCL) applications are installed via the set_js_app
// governance action and executed by the node's script runtime.

#ifndef CCF_NODE_APP_H_
#define CCF_NODE_APP_H_

#include <functional>

#include "node/historical.h"
#include "node/indexing.h"
#include "rpc/endpoints.h"

namespace ccf::node {

// Framework services exposed to applications at registration time
// (paper §3.4, §3.6): the historical state cache, the asynchronous
// indexer, and seqno accessors for clamping queries to what is provable.
struct NodeContext {
  historical::StateCache* historical = nullptr;
  indexing::Indexer* indexer = nullptr;
  // Largest committed seqno a receipt can currently be built for (the
  // committed prefix below the last committed signed root).
  std::function<uint64_t()> receiptable_seqno;
  std::function<uint64_t()> commit_seqno;
  // The node's virtual clock (for StateCache::GetRange bookkeeping).
  std::function<uint64_t()> now_ms;
};

class Application {
 public:
  virtual ~Application() = default;
  // Installs the application's endpoints (paths should start with /app/).
  // Called once per node; `node` stays valid for the node's lifetime, so
  // handlers may capture it by value.
  virtual void RegisterEndpoints(rpc::EndpointRegistry* registry,
                                 const NodeContext& node) = 0;
};

}  // namespace ccf::node

#endif  // CCF_NODE_APP_H_
