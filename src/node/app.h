// Application interface (paper §2: "CCF enables each service to bring its
// own application logic"). C++ applications implement this and register
// endpoints; scripted (CCL) applications are installed via the set_js_app
// governance action and executed by the node's script runtime.

#ifndef CCF_NODE_APP_H_
#define CCF_NODE_APP_H_

#include "rpc/endpoints.h"

namespace ccf::node {

class Application {
 public:
  virtual ~Application() = default;
  // Installs the application's endpoints (paths should start with /app/).
  virtual void RegisterEndpoints(rpc::EndpointRegistry* registry) = 0;
};

// Indexing strategy (paper §3.4): the indexer pre-processes each committed
// transaction in ledger order, maintaining app-defined lookup structures
// for historical range queries.
class IndexingStrategy {
 public:
  virtual ~IndexingStrategy() = default;
  virtual void OnCommittedEntry(uint64_t view, uint64_t seqno,
                                const kv::WriteSet& writes) = 0;
};

}  // namespace ccf::node

#endif  // CCF_NODE_APP_H_
