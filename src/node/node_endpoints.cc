// Session handling, request dispatch, built-in endpoints, the join
// protocol, and disaster recovery for ccf::node::Node.

#include <algorithm>
#include <chrono>

#include "common/buffer.h"
#include "common/hex.h"
#include "common/logging.h"
#include "gov/constitution.h"
#include "gov/proposals.h"
#include "kv/tables.h"
#include "node/node.h"
#include "rpc/openapi.h"
#include "script/interp.h"
#include "tee/attestation.h"

namespace ccf::node {

namespace tables = kv::tables;

namespace {

enum WireKind : uint8_t {
  kSessionRecord = 1,
  kNodeChannel = 2,
};

enum ChannelType : uint8_t {
  kConsensus = 1,
  kForwardRequest = 2,
  kForwardResponse = 3,
  kSnapshotCatchUp = 4,  // handled in node.cc; listed to keep enums in sync
};

Bytes WrapWire(WireKind kind, ByteSpan payload) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(kind));
  Append(&out, payload);
  return out;
}

// Verifies the detached governance request signature (COSE-Sign1 analogue):
// x-ccf-signature header = hex signature over SHA-256 of the body, under
// the caller's certificate key.
Status VerifyGovSignature(const http::Request& request,
                          const rpc::CallerIdentity& caller) {
  if (!caller.cert.has_value()) {
    return Status::Unauthenticated("governance requires a member certificate");
  }
  std::string sig_hex = request.GetHeader("x-ccf-signature");
  if (sig_hex.empty()) {
    return Status::Unauthenticated(
        "governance writes must be signed (x-ccf-signature)");
  }
  auto sig = HexDecode(sig_hex);
  if (!sig.ok()) return Status::Unauthenticated("malformed signature");
  auto digest = crypto::Sha256::Hash(request.body);
  if (!crypto::Verify(caller.cert->public_key,
                      ByteSpan(digest.data(), digest.size()), *sig)) {
    return Status::Unauthenticated("bad governance request signature");
  }
  return Status::Ok();
}

}  // namespace

// --------------------------------------------------------------- sessions

void Node::HandleSessionRecord(const std::string& peer, ByteSpan record) {
  // A joining node acts as the STLS *client* towards its target.
  if (join_pending_ && peer == join_target_) {
    HandleJoinResponseRecord(record);
    return;
  }

  auto it = sessions_.find(peer);
  bool is_hello = !record.empty() && record[0] == 1;  // kClientHello
  if (it == sessions_.end() || is_hello) {
    UserSession session;
    session.stls = std::make_unique<rpc::ServerSession>(&node_key_,
                                                        node_cert_, &drbg_);
    it = sessions_.insert_or_assign(peer, std::move(session)).first;
  }
  auto out = it->second.stls->OnRecord(record);
  if (!out.ok()) {
    LOG_DEBUG << config_.node_id << " session error from " << peer << ": "
              << out.status().ToString();
    sessions_.erase(it);
    return;
  }
  if (!out->to_send.empty()) {
    EnclaveSendNet(peer, WrapWire(kSessionRecord, out->to_send));
  }
  for (const Bytes& app_data : out->app_data) {
    it->second.parser.Feed(app_data);
  }
  while (true) {
    auto req = it->second.parser.Next();
    if (!req.ok()) {
      // Malformed HTTP: answer 400 and drop the connection (the parser
      // state is poisoned, nothing after this is trustworthy). Flush the
      // batch first so earlier pipelined responses keep their order.
      FlushExecBatch();
      if (sessions_.find(peer) != sessions_.end()) {
        http::Response resp = rpc::ErrorResponse(400, "InvalidRequestBody",
                                                 "malformed request");
        resp.headers["connection"] = "close";
        RespondToSession(peer, resp);
      }
      CloseUserSession(peer);
      return;
    }
    if (!req->has_value()) break;
    DispatchRequest(peer, **req);
    // Dispatch may have torn down the session (error or close path).
    it = sessions_.find(peer);
    if (it == sessions_.end()) break;
  }
}

void Node::RespondToSession(const std::string& session_peer,
                            const http::Response& response) {
  auto it = sessions_.find(session_peer);
  if (it == sessions_.end()) return;
  UserSession& session = it->second;
  if (session.in_flight > 0) --session.in_flight;
  if (session.close_after && session.in_flight == 0) {
    // Last pipelined response on a closing connection: announce the close
    // in the response, then tear the session down.
    http::Response last = response;
    last.headers["connection"] = "close";
    auto record = session.stls->Seal(last.Serialize());
    if (record.ok()) {
      EnclaveSendNet(session_peer, WrapWire(kSessionRecord, *record));
    }
    CloseUserSession(session_peer);
    return;
  }
  auto record = session.stls->Seal(response.Serialize());
  if (record.ok()) {
    EnclaveSendNet(session_peer, WrapWire(kSessionRecord, *record));
  }
}

void Node::CloseUserSession(const std::string& session_peer) {
  sessions_.erase(session_peer);
  // Ask the host to close the underlying connection once everything
  // already queued ahead has been flushed. Best effort: the simulator has
  // no connections and ignores it, and on a full ring the disconnect will
  // surface through the transport anyway.
  tee::SessionControl msg{session_peer};
  boundary_.EnclaveSend(tee::kCloseSession, msg.Serialize());
}

// ----------------------------------------------------------------- auth

Result<rpc::CallerIdentity> Node::Authenticate(
    const std::optional<crypto::Certificate>& session_cert) {
  rpc::CallerIdentity caller;
  if (!session_cert.has_value()) return caller;
  caller.cert = session_cert;
  std::string cert_hex = HexEncode(session_cert->Serialize());

  // Scan the identity maps for a record with this certificate; the map key
  // is the principal's id (paper Table 3 / Listing 2 style).
  auto scan = [&](const char* table, bool* flag) {
    const kv::MapEntry* map =
        store_.current_state().maps.Get(std::string(table));
    if (map == nullptr) return;
    map->data.ForEach([&](const Bytes& key, const kv::VersionedValue& vv) {
      auto j = json::Parse(ToString(vv.value));
      if (j.ok() && j->GetString("cert") == cert_hex) {
        caller.id = ToString(key);
        *flag = true;
        return false;
      }
      return true;
    });
  };
  scan(tables::kUsersCerts, &caller.is_user);
  if (!caller.is_user) scan(tables::kMembersCerts, &caller.is_member);
  if (caller.id.empty()) caller.id = session_cert->Fingerprint();
  return caller;
}

Status Node::CheckAuthPolicy(rpc::AuthPolicy policy,
                             const rpc::CallerIdentity& caller) {
  switch (policy) {
    case rpc::AuthPolicy::kNoAuth:
      return Status::Ok();
    case rpc::AuthPolicy::kUserCert:
      if (!caller.is_user) {
        return Status::PermissionDenied("requires a registered user cert");
      }
      return Status::Ok();
    case rpc::AuthPolicy::kMemberCert:
      if (!caller.is_member) {
        return Status::PermissionDenied("requires a consortium member cert");
      }
      return Status::Ok();
    case rpc::AuthPolicy::kAnyCert:
      if (!caller.is_user && !caller.is_member) {
        return Status::PermissionDenied("requires a registered cert");
      }
      return Status::Ok();
  }
  return Status::Internal("unknown auth policy");
}

// -------------------------------------------------------------- dispatch

void Node::DispatchRequest(const std::string& session_peer,
                           const http::Request& request) {
  auto session_it = sessions_.find(session_peer);
  if (session_it == sessions_.end()) return;
  UserSession& session = session_it->second;

  // HTTP keep-alive hardening (live clients): track pipelining depth and
  // honour "connection: close". Responses land through RespondToSession,
  // which closes the connection once the last in-flight response drains.
  ++session.in_flight;
  if (request.GetHeader("connection") == "close") {
    session.close_after = true;
  }
  if (config_.http_max_pipeline > 0 &&
      session.in_flight > config_.http_max_pipeline) {
    // Flush first so earlier pipelined responses keep their order; the
    // flush can itself retire this session, so re-find it.
    FlushExecBatch();
    if (auto it = sessions_.find(session_peer); it != sessions_.end()) {
      it->second.close_after = true;
      RespondToSession(session_peer,
                       rpc::ErrorResponse(503, "ServiceUnavailable",
                                          "pipeline depth exceeded"));
    }
    return;
  }

  auto caller = Authenticate(session.stls->peer_cert());
  if (!caller.ok()) {
    // Flush first so responses stay ordered per connection.
    FlushExecBatch();
    RespondToSession(session_peer,
                     rpc::ErrorResponse(401, "Unauthorized",
                                        caller.status().ToString()));
    return;
  }

  // One classification for native and scripted endpoints: read-only
  // endpoints are served by any node (paper §4.3); writes go to the
  // primary. Session consistency: once forwarded, always forwarded.
  ResolvedEndpoint re = ResolveEndpoint(request.method, request.path);

  // Declared request schemas are enforced at the door (DESIGN.md §14):
  // a violating body is rejected with a structured 400 before the request
  // is batched, forwarded, or allowed to open a KV transaction. Schemas
  // are public (served at /app/api), so validating before auth leaks
  // nothing. Forwarded requests are re-checked on the primary.
  if (auto rejected = CheckRequestSchemaFor(re, request);
      rejected.has_value()) {
    // Flush first so earlier pipelined responses keep their order.
    FlushExecBatch();
    RespondToSession(session_peer, *rejected);
    return;
  }

  bool must_forward = (!re.read_only || session.sticky_forwarding) &&
                      raft_ != nullptr && !raft_->IsPrimary();
  if (must_forward) {
    FlushExecBatch();
    if (auto it = sessions_.find(session_peer); it != sessions_.end()) {
      it->second.sticky_forwarding = true;
      ForwardToPrimary(session_peer, request, *caller);
    }
    return;
  }
  if (re.found && re.exec_parallel) {
    // Batched optimistic execution (DESIGN.md §12). Eligibility must not
    // depend on exec_threads: every setting takes the batch path, and the
    // batch path itself is scheduling-independent (the pool's synchronous
    // mode runs jobs inline in the same order a blocking drain retires
    // them), so exec_threads 0 and N produce bit-identical runs.
    if (exec_batch_.empty()) exec_batch_opened_ms_ = now_ms_;
    exec_batch_.push_back(
        ExecBatchItem{session_peer, request, *caller, std::move(re)});
    // The size threshold fires as soon as it is met -- even mid-drain --
    // so memory stays bounded and batches form at exactly exec_batch_max
    // under sustained load (a no-op with the policy disabled).
    if (config_.exec_batch_max > 0 &&
        exec_batch_.size() >= config_.exec_batch_max) {
      exec_metrics_.flush_size->Inc();
      FlushExecBatch();
    }
    return;
  }
  FlushExecBatch();
  http::Response response = ExecuteRequest(request, *caller);
  RespondToSession(session_peer, response);
}

void Node::ForwardToPrimary(const std::string& session_peer,
                            const http::Request& request,
                            const rpc::CallerIdentity& caller) {
  auto leader = raft_ != nullptr ? raft_->leader() : std::nullopt;
  if (!leader.has_value() || *leader == config_.node_id) {
    RespondToSession(session_peer,
                     rpc::ErrorResponse(503, "ServiceUnavailable",
                                        "no known primary, retry"));
    return;
  }
  uint64_t corr = next_correlation_++;
  pending_forwards_[corr] = session_peer;
  BufWriter w;
  w.U64(corr);
  w.Bool(caller.cert.has_value());
  if (caller.cert.has_value()) {
    w.Blob(caller.cert->Serialize());
  }
  w.Blob(request.Serialize());
  SendOnChannel(*leader, kForwardRequest, w.data());
}

http::Response Node::ExecuteRequest(const http::Request& request,
                                    const rpc::CallerIdentity& caller) {
  auto t0 = std::chrono::steady_clock::now();
  http::Response response = ExecuteRequestInner(request, caller);
  auto us = std::chrono::duration_cast<std::chrono::microseconds>(
                std::chrono::steady_clock::now() - t0)
                .count();
  rpc::RecordEndpointMetrics(&metrics_, request.method,
                             http::ParseTarget(request.path).path,
                             response.status, static_cast<uint64_t>(us));
  return response;
}

Node::ResolvedEndpoint Node::ResolveEndpoint(const std::string& method,
                                             const std::string& target) {
  ResolvedEndpoint re;
  re.path = http::ParseTarget(target).path;
  re.spec = registry_.Find(method, re.path);
  if (re.spec != nullptr) {
    re.found = true;
    re.read_only = re.spec->read_only;
    re.exec_parallel = re.spec->exec_parallel;
    re.auth = re.spec->auth;
    return re;
  }
  auto scripted = store_.GetStr(tables::kEndpoints, method + " " + re.path);
  if (!scripted.has_value()) return re;
  auto j = json::Parse(*scripted);
  if (!j.ok()) return re;
  re.found = true;
  re.is_scripted = true;
  re.scripted_spec = std::move(*j);
  re.read_only = re.scripted_spec.GetBool("readonly");
  // Scripted handlers run in a fresh per-request interpreter whose only
  // shared state is the transaction, so they are always batchable.
  re.exec_parallel = true;
  std::string auth = re.scripted_spec.GetString("auth", "no_auth");
  if (auth == "user_cert") re.auth = rpc::AuthPolicy::kUserCert;
  if (auth == "member_cert") re.auth = rpc::AuthPolicy::kMemberCert;
  if (auth == "any_cert") re.auth = rpc::AuthPolicy::kAnyCert;
  return re;
}

// Methods other than `method` that could serve `path` -- native registry
// entries plus scripted endpoints from the store. Non-empty means the
// request should fail 405 (method mismatch) rather than 404 (no such
// path), with the list joined into the Allow: header.
std::vector<std::string> Node::AllowedMethodsForPath(
    const std::string& method, const std::string& path) {
  std::vector<std::string> allowed = registry_.MethodsForPath(path);
  // Scripted endpoints are keyed "METHOD path" in the store; probe the
  // verbs the framework routes rather than scanning the whole table.
  for (const char* m : {"DELETE", "GET", "POST", "PUT"}) {
    if (method != m &&
        store_.GetStr(tables::kEndpoints, std::string(m) + " " + path)
            .has_value()) {
      allowed.emplace_back(m);
    }
  }
  std::sort(allowed.begin(), allowed.end());
  allowed.erase(std::unique(allowed.begin(), allowed.end()), allowed.end());
  allowed.erase(std::remove(allowed.begin(), allowed.end(), method),
                allowed.end());
  return allowed;
}

std::optional<http::Response> Node::CheckRequestSchemaFor(
    const ResolvedEndpoint& re, const http::Request& request) {
  if (!re.found || re.is_scripted || re.spec == nullptr ||
      re.spec->request_schema == nullptr) {
    return std::nullopt;
  }
  // Same parse as EndpointContext::Params: an empty body validates as {}.
  Result<json::Value> body =
      request.body.empty() ? Result<json::Value>(json::Value(json::Object{}))
                           : json::Parse(ToString(request.body));
  return rpc::CheckRequestSchema(*re.spec, body);
}

http::Response Node::ExecuteRequestInner(const http::Request& request,
                                         const rpc::CallerIdentity& caller) {
  http::Response error;
  ResolvedEndpoint re = ResolveEndpoint(request.method, request.path);
  if (!re.found) {
    std::vector<std::string> allowed =
        AllowedMethodsForPath(request.method, re.path);
    if (!allowed.empty()) {
      std::string joined;
      for (const std::string& m : allowed) {
        if (!joined.empty()) joined += ", ";
        joined += m;
      }
      error = rpc::ErrorResponse(405, "MethodNotAllowed",
                                 request.method + " is not supported here; "
                                 "Allow: " + joined);
      error.headers["allow"] = joined;
      return error;
    }
    return rpc::ErrorResponse(404, "ResourceNotFound", "no such endpoint");
  }

  // Forwarded requests reach this node without passing the entry node's
  // dispatch-time schema gate in this process; re-check before any
  // transaction is opened.
  if (auto rejected = CheckRequestSchemaFor(re, request);
      rejected.has_value()) {
    return *rejected;
  }

  // Optimistic execution with re-execution on conflict (paper §6.4).
  const size_t attempts = config_.exec_max_retries + 1;
  for (size_t attempt = 0; attempt < attempts; ++attempt) {
    kv::Tx tx = store_.BeginTx();
    http::Response resp = ExecuteOnTx(re, request, caller, &tx);
    if (resp.status >= 400) {
      return resp;  // failed requests leave no trace in the ledger
    }
    auto stamp_uncommitted = [&](http::Response* r) {
      r->headers[http::kTxIdHeader] =
          consensus::TxId{ViewAtSeqno(store_.current_seqno()),
                          store_.current_seqno()}
              .ToString();
    };
    if (re.read_only) {
      if (!re.is_scripted && tx.has_writes()) {
        return rpc::ErrorResponse(500, "InternalError",
                                  "read-only endpoint wrote");
      }
      stamp_uncommitted(&resp);
      return resp;
    }
    if (re.is_scripted && !tx.has_writes()) {
      stamp_uncommitted(&resp);
      return resp;
    }
    ledger::EntryType entry_type =
        !re.is_scripted && re.path.rfind("/gov/", 0) == 0
            ? ledger::EntryType::kGovernance
            : ledger::EntryType::kUser;
    auto committed = CommitAndReplicate(&tx, entry_type);
    if (!committed.ok()) {
      if (committed.status().code() == Status::Code::kAborted) {
        continue;  // conflict: re-execute
      }
      return rpc::ErrorResponse(503, "ServiceUnavailable",
                                committed.status().message());
    }
    resp.headers[http::kTxIdHeader] = committed->ToString();
    return resp;
  }
  return rpc::ErrorResponse(409, "Conflict", "transaction conflict");
}

http::Response Node::ExecuteOnTx(const ResolvedEndpoint& re,
                                 const http::Request& request,
                                 const rpc::CallerIdentity& caller,
                                 kv::Tx* tx) {
  // The application is only reachable once the service is open (paper §5).
  if (re.path.rfind("/app/", 0) == 0 &&
      service_status() != gov::ServiceStatus::kOpen) {
    return rpc::ErrorResponse(503, "ServiceUnavailable",
                              "service is not open");
  }
  Status auth_ok = CheckAuthPolicy(re.auth, caller);
  if (!auth_ok.ok()) {
    return rpc::ErrorResponse(401, "Unauthorized", auth_ok.message());
  }
  if (re.is_scripted) {
    return ExecuteScriptedOnTx(re.scripted_spec, request, caller, tx);
  }
  // Handlers read query params via EndpointContext::Param, which checks
  // the query string first; the legacy x-query-* headers are still
  // stashed so pre-query-string handlers and clients keep working.
  http::ParsedTarget target = http::ParseTarget(request.path);
  http::Request annotated = request;
  for (const auto& [k, v] : target.params) {
    annotated.headers["x-query-" + k] = v;
  }
  rpc::EndpointContext qctx(tx, &annotated, caller);
  re.spec->handler(&qctx);
  return std::move(qctx.response());
}

http::Response Node::ExecuteScriptedOnTx(const json::Value& spec,
                                         const http::Request& request,
                                         const rpc::CallerIdentity& caller,
                                         kv::Tx* tx) {
  http::Response resp;
  auto module = store_.GetStr(tables::kModules, "app");
  if (!module.has_value()) {
    return rpc::ErrorResponse(500, "InternalError",
                              "no scripted app installed");
  }
  std::string handler = spec.GetString("handler");
  bool read_only = spec.GetBool("readonly");

  // Fresh interpreter per request, like CCF's per-request JS runtime; the
  // transaction is the only state it shares with anything else, which is
  // what makes scripted endpoints batchable.
  script::Interpreter interp;
  gov::BindKvNatives(&interp, tx, read_only);
  auto program = script::Compile(*module);
  if (!program.ok()) {
    return rpc::ErrorResponse(500, "InternalError",
                              "app module does not compile");
  }
  if (!interp.Run(*program).ok()) {
    return rpc::ErrorResponse(500, "InternalError",
                              "app module failed to initialize");
  }

  script::Object req_obj;
  req_obj["method"] = script::Value(request.method);
  req_obj["path"] = script::Value(request.path);
  req_obj["body"] = script::Value(ToString(request.body));
  req_obj["caller_id"] = script::Value(caller.id);
  auto params = json::Parse(ToString(request.body));
  req_obj["params"] = params.ok() ? script::Value::FromJson(*params)
                                  : script::Value();
  auto result = interp.Call(handler, {script::Value(std::move(req_obj))});
  if (!result.ok()) {
    return rpc::ErrorResponse(500, "InternalError",
                              result.status().message());
  }

  // Handler returns {status, body} (object body is JSON-serialized).
  int status = 200;
  std::string body;
  if (result->is_object()) {
    const script::Object& obj = *result->AsObject();
    auto sit = obj.find("status");
    if (sit != obj.end() && sit->second.is_number()) {
      status = static_cast<int>(sit->second.AsNumber());
    }
    auto bit = obj.find("body");
    if (bit != obj.end()) {
      if (bit->second.is_string()) {
        body = bit->second.AsString();
      } else {
        auto j = bit->second.ToJson();
        if (j.ok()) body = j->Dump();
      }
    }
  } else if (result->is_string()) {
    body = result->AsString();
  }
  // Normalize scripted error responses onto the standard envelope: CCL
  // handlers return {status: 4xx, body: {error: "msg"}} with a flat
  // string; rewrap it as {"error": {"code", "message"}} so native and
  // scripted endpoints fail identically. Bodies already carrying an
  // error object pass through untouched.
  if (status >= 400) {
    auto parsed = json::Parse(body);
    const json::Value* err =
        parsed.ok() && parsed->is_object() ? parsed->Get("error") : nullptr;
    if (err != nullptr && err->is_string()) {
      body = rpc::ErrorBody(rpc::DefaultErrorCode(status), err->AsString())
                 .Dump();
    } else if (err == nullptr || !err->is_object()) {
      body = rpc::ErrorBody(rpc::DefaultErrorCode(status), body).Dump();
    }
    resp.headers["content-type"] = "application/json";
  }
  resp.status = status;
  resp.body = ToBytes(body);
  // Commit/abort handling and TxId stamping happen at the caller's serial
  // commit point (ExecuteRequestInner or CommitBatchedItem).
  return resp;
}

// ------------------------------------------------------ batched execution

void Node::FlushExecBatch() {
  if (exec_batch_.empty()) return;
  const size_t n = exec_batch_.size();
  exec_metrics_.batches->Inc();
  exec_metrics_.requests->Inc(n);
  exec_metrics_.batch_size->Record(static_cast<uint64_t>(n));

  // Phase A: every item opens a transaction off the same store head *at
  // flush time* (with a deferred flush policy, commits -- signatures,
  // other traffic -- may land between enqueue and flush; OCC validation
  // covers them like any other predecessor), then all handlers execute
  // on the exec pool against that shared immutable snapshot (paper §3.4).
  // Each job touches only its own slot, so the results are independent of
  // worker scheduling; with exec_threads == 0 the pool runs the jobs
  // inline in submission order, which is exactly the order a blocking
  // drain retires them -- the two modes are bit-identical.
  std::vector<kv::Tx> txs;
  txs.reserve(n);
  for (size_t i = 0; i < n; ++i) txs.push_back(store_.BeginTx());
  std::vector<http::Response> responses(n);
  std::vector<uint64_t> wall_us(n, 0);
  std::vector<tee::WorkerPool::Job> jobs;
  jobs.reserve(n);
  for (size_t i = 0; i < n; ++i) {
    jobs.push_back([this, i, &txs, &responses, &wall_us] {
      const ExecBatchItem& item = exec_batch_[i];
      auto t0 = std::chrono::steady_clock::now();
      responses[i] = ExecuteOnTx(item.re, item.request, item.caller, &txs[i]);
      wall_us[i] = static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::microseconds>(
              std::chrono::steady_clock::now() - t0)
              .count());
    });
  }
  exec_pool_.SubmitBatch(std::move(jobs));
  exec_pool_.Drain(/*wait_all=*/true);

  // Phase B: single serial commit point, in submission order. Writers
  // validate against whatever committed before them (including earlier
  // members of this batch) and re-execute serially on conflict.
  for (size_t i = 0; i < n; ++i) {
    const ExecBatchItem& item = exec_batch_[i];
    http::Response out =
        CommitBatchedItem(item, &txs[i], std::move(responses[i]));
    rpc::RecordEndpointMetrics(&metrics_, item.request.method, item.re.path,
                               out.status, wall_us[i]);
    RespondToSession(item.session_peer, out);
  }
  exec_batch_.clear();
}

http::Response Node::CommitBatchedItem(const ExecBatchItem& item, kv::Tx* tx,
                                       http::Response resp) {
  if (resp.status >= 400) {
    return resp;  // failed requests leave no trace in the ledger
  }
  auto stamp_uncommitted = [&](http::Response* r) {
    r->headers[http::kTxIdHeader] =
        consensus::TxId{ViewAtSeqno(store_.current_seqno()),
                        store_.current_seqno()}
            .ToString();
  };
  if (item.re.read_only) {
    // No validation needed: the handler saw one immutable committed
    // snapshot and wrote nothing, so it serializes at its snapshot.
    if (!item.re.is_scripted && tx->has_writes()) {
      return rpc::ErrorResponse(500, "InternalError",
                                "read-only endpoint wrote");
    }
    stamp_uncommitted(&resp);
    return resp;
  }

  ledger::EntryType entry_type =
      !item.re.is_scripted && item.re.path.rfind("/gov/", 0) == 0
          ? ledger::EntryType::kGovernance
          : ledger::EntryType::kUser;
  uint64_t reexecs = 0;
  std::optional<kv::Tx> retry_tx;
  kv::Tx* cur = tx;
  for (;;) {
    if (item.re.is_scripted && !cur->has_writes()) {
      stamp_uncommitted(&resp);
      break;
    }
    auto committed = CommitAndReplicate(cur, entry_type);
    if (committed.ok()) {
      resp.headers[http::kTxIdHeader] = committed->ToString();
      break;
    }
    if (committed.status().code() != Status::Code::kAborted) {
      resp = rpc::ErrorResponse(503, "ServiceUnavailable",
                                committed.status().message());
      break;
    }
    if (reexecs == 0) exec_metrics_.conflicts->Inc();
    if (reexecs >= config_.exec_max_retries) {
      exec_metrics_.aborts->Inc();
      resp = rpc::ErrorResponse(409, "Conflict", "transaction conflict");
      break;
    }
    ++reexecs;
    exec_metrics_.retries->Inc();
    // Serial re-execution against the latest committed head (paper §6.4:
    // business logic may run several times, its transaction is applied
    // exactly once).
    retry_tx.emplace(store_.BeginTx());
    cur = &*retry_tx;
    resp = ExecuteOnTx(item.re, item.request, item.caller, cur);
    if (resp.status >= 400) break;
  }
  metrics_
      .GetHistogram("exec.reexecs." + item.request.method + " " + item.re.path)
      ->Record(reexecs);
  return resp;
}

// --------------------------------------------------- framework endpoints

void Node::InstallFrameworkEndpoints() {
  using rpc::AuthPolicy;
  using rpc::EndpointContext;

  // Transaction status (paper §3.2, Figure 4).
  registry_.Install(
      "GET", "/node/tx",
      {[this](EndpointContext* ctx) {
         uint64_t view = ctx->ParamU64("view");
         uint64_t seqno = ctx->ParamU64("seqno");
         json::Object out;
         out["view"] = view;
         out["seqno"] = seqno;
         out["status"] = consensus::TxStatusName(
             raft_ != nullptr ? raft_->GetTxStatus(view, seqno)
                              : consensus::TxStatus::kUnknown);
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  registry_.Install(
      "GET", "/node/commit",
      {[this](EndpointContext* ctx) {
         uint64_t commit = raft_ != nullptr ? raft_->commit_seqno() : 0;
         json::Object out;
         out["view"] = ViewAtSeqno(commit);
         out["seqno"] = commit;
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  // Crypto op telemetry. Thin alias over the metrics registry (the
  // generic endpoint is GET /node/metrics); keeps the original flat keys.
  registry_.Install(
      "GET", "/node/crypto_ops",
      {[this](EndpointContext* ctx) {
         const merkle::MerkleTree::Stats& ts = tree_.stats();
         CryptoOpCounters ops = crypto_ops();
         json::Object out;
         out["merkle_leaf_hashes"] = ts.leaf_hashes;
         out["merkle_interior_hashes"] = ts.interior_hashes;
         out["merkle_batched_leaves"] = ts.batched_leaves;
         out["merkle_x4_groups"] = ts.x4_groups;
         out["signs"] = ops.signs;
         out["signs_deferred"] = ops.signs_deferred;
         out["verifies_single"] = ops.verifies_single;
         out["verifies_batched"] = ops.verifies_batched;
         out["verify_batches"] = ops.verify_batches;
         out["verify_failures"] = ops.verify_failures;
         out["worker_threads"] = static_cast<uint64_t>(
             worker_pool_.worker_count());
         out["worker_jobs_submitted"] = worker_pool_.submitted();
         out["worker_jobs_drained"] = worker_pool_.drained();
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  // Generic metrics exposition: every registry metric, as JSON or (with
  // ?format=prometheus) Prometheus text. Only aggregate numbers cross
  // this boundary -- see DESIGN.md on what enclave code may record.
  registry_.Install(
      "GET", "/node/metrics",
      {[this](EndpointContext* ctx) {
         if (ctx->Param("format") == "prometheus") {
           http::Response& resp = ctx->response();
           resp.status = 200;
           resp.headers["content-type"] = "text/plain; version=0.0.4";
           resp.body = ToBytes(metrics_.ToPrometheus());
           return;
         }
         json::Object out;
         out["node_id"] = config_.node_id;
         out["metrics"] = metrics_.ToJson();
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  registry_.Install(
      "GET", "/node/network",
      {[this](EndpointContext* ctx) {
         json::Object out;
         out["view"] = raft_ != nullptr ? raft_->view() : 0;
         out["primary"] =
             raft_ != nullptr && raft_->leader().has_value()
                 ? json::Value(*raft_->leader())
                 : json::Value(nullptr);
         json::Object nodes;
         ctx->tx().Handle(tables::kNodesInfo)
             ->Foreach([&](const Bytes& key, const Bytes& value) {
               auto j = json::Parse(ToString(value));
               nodes[ToString(key)] =
                   j.ok() ? json::Value(j->GetString("status"))
                          : json::Value("?");
               return true;
             });
         out["nodes"] = std::move(nodes);
         out["service_status"] = gov::ServiceStatusName(service_status());
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  // Verifiable receipts (paper §3.5).
  registry_.Install(
      "GET", "/node/receipt",
      {[this](EndpointContext* ctx) {
         uint64_t seqno = ctx->ParamU64("seqno");
         auto receipt = BuildReceipt(seqno);
         if (!receipt.ok()) {
           ctx->SetError(404, receipt.status().message());
           return;
         }
         json::Object out;
         out["receipt"] = HexEncode(receipt->Serialize());
         out["view"] = receipt->view;
         out["seqno"] = receipt->seqno;
         out["root_seqno"] = receipt->signed_root.seqno;
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  // Join protocol (paper §4.4 / §5; a write, so it executes on the
  // primary via forwarding).
  registry_.Install("POST", "/node/join",
                    {[this](EndpointContext* ctx) { HandleJoinRequest(ctx); },
                     AuthPolicy::kNoAuth, /*read_only=*/false});

  // Governance (paper §5.1).
  registry_.Install(
      "POST", "/gov/propose",
      {[this](EndpointContext* ctx) {
         Status sig = VerifyGovSignature(ctx->request(), ctx->caller());
         if (!sig.ok()) {
           ctx->SetError(401, sig.message());
           return;
         }
         auto params = ctx->Params();
         if (!params.ok() || params->Get("proposal") == nullptr) {
           ctx->SetError(400, "body must contain {proposal}");
           return;
         }
         auto outcome = gov::ProposalManager::Submit(
             &ctx->tx(), ctx->caller().id, *params->Get("proposal"),
             ctx->request().body);
         if (!outcome.ok()) {
           ctx->SetError(400, outcome.status().message());
           return;
         }
         json::Object out;
         out["proposal_id"] = outcome->proposal_id;
         out["state"] = gov::ProposalStateName(outcome->state);
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kMemberCert, /*read_only=*/false});

  registry_.Install(
      "POST", "/gov/vote",
      {[this](EndpointContext* ctx) {
         Status sig = VerifyGovSignature(ctx->request(), ctx->caller());
         if (!sig.ok()) {
           ctx->SetError(401, sig.message());
           return;
         }
         auto params = ctx->Params();
         if (!params.ok()) {
           ctx->SetError(400, "bad body");
           return;
         }
         auto outcome = gov::ProposalManager::Vote(
             &ctx->tx(), ctx->caller().id,
             params->GetString("proposal_id"), params->GetString("ballot"),
             ctx->request().body);
         if (!outcome.ok()) {
           ctx->SetError(400, outcome.status().message());
           return;
         }
         json::Object out;
         out["proposal_id"] = outcome->proposal_id;
         out["state"] = gov::ProposalStateName(outcome->state);
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kMemberCert, /*read_only=*/false});

  registry_.Install(
      "GET", "/gov/proposal",
      {[this](EndpointContext* ctx) {
         std::string id = ctx->Param("id");
         auto proposal = gov::ProposalManager::GetProposal(&ctx->tx(), id);
         auto info = gov::ProposalManager::GetInfo(&ctx->tx(), id);
         if (!proposal.ok() || !info.ok()) {
           ctx->SetError(404, "no such proposal");
           return;
         }
         json::Object out;
         out["proposal"] = *proposal;
         out["info"] = info->ToJson();
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kMemberCert, /*read_only=*/true});

  // Disaster recovery share submission (paper §5.2).
  registry_.Install(
      "POST", "/gov/recovery_share",
      {[this](EndpointContext* ctx) { HandleRecoveryShareSubmission(ctx); },
       AuthPolicy::kMemberCert, /*read_only=*/false});

  // Historical-query / indexing telemetry (operator view of paper §3.4/3.6).
  registry_.Install(
      "GET", "/node/historical",
      {[this](EndpointContext* ctx) {
         const historical::StateCache::Stats& cs = historical_->stats();
         const indexing::Indexer::Stats& is = indexer_.stats();
         HistoricalCounters hc = historical_counters();
         json::Object out;
         out["cache_requests"] = cs.requests;
         out["cache_hits"] = cs.hits;
         out["cache_fetches"] = cs.fetches;
         out["cache_retries"] = cs.retries;
         out["cache_timeouts"] = cs.timeouts;
         out["cache_failures"] = cs.failures;
         out["cache_entries_accepted"] = cs.entries_accepted;
         out["cache_entries_rejected"] = cs.entries_rejected;
         out["cache_stale_responses"] = cs.stale_responses;
         out["cache_evictions"] = cs.evictions;
         out["cache_expired"] = cs.expired;
         out["cached_requests"] = static_cast<uint64_t>(
             historical_->cached_requests());
         out["indexed_upto"] = indexer_.indexed_upto();
         out["index_lag"] = indexer_.Lag(
             raft_ != nullptr ? raft_->commit_seqno() : 0);
         out["index_entries_fed"] = is.entries_fed;
         out["index_max_fed_per_tick"] = is.max_fed_per_tick;
         out["index_decode_failures"] = is.decode_failures;
         out["receiptable_upto"] = ReceiptableUpto();
         out["host_fetch_requests"] = hc.host_fetch_requests;
         out["host_fetch_responses"] = hc.host_fetch_responses;
         out["host_fetch_drops"] = hc.host_fetch_drops;
         out["host_fetch_corrupts"] = hc.host_fetch_corrupts;
         out["host_fetch_delays"] = hc.host_fetch_delays;
         out["host_fetch_reorders"] = hc.host_fetch_reorders;
         out["entries_verified"] = hc.entries_verified;
         out["entries_rejected"] = hc.entries_rejected;
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  registry_.Install(
      "GET", "/node/api",
      {[this](EndpointContext* ctx) {
         json::Array endpoints;
         for (const std::string& key : registry_.List()) {
           endpoints.emplace_back(key);
         }
         json::Object out;
         out["endpoints"] = std::move(endpoints);
         ctx->SetJsonResponse(200, json::Value(std::move(out)));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});

  // Generated OpenAPI 3.0 for every installed /app/ endpoint, schemas
  // included (DESIGN.md §14). The registry is immutable after node
  // construction and generation is pure, so the document is stable across
  // requests and across nodes running the same application.
  registry_.Install(
      "GET", "/app/api",
      {[this](EndpointContext* ctx) {
         rpc::OpenApiInfo info;
         info.title = "CCF application API";
         info.description =
             "Generated from this node's endpoint registry; scripted (CCL) "
             "endpoints are installed via governance and listed by "
             "GET /node/api instead.";
         ctx->SetJsonResponse(200, rpc::BuildOpenApi(registry_, info));
       },
       AuthPolicy::kNoAuth, /*read_only=*/true});
}

Result<merkle::Receipt> Node::BuildReceipt(uint64_t seqno) {
  if (raft_ == nullptr || seqno == 0 || seqno > raft_->commit_seqno()) {
    return Status::NotFound("transaction is not committed");
  }
  if (seqno > tx_digests_.size()) {
    return Status::NotFound("no digest recorded for seqno");
  }
  return BuildReceiptForDigests(ViewAtSeqno(seqno), seqno,
                                tx_digests_[seqno - 1].write_set,
                                tx_digests_[seqno - 1].claims);
}

Result<merkle::Receipt> Node::BuildReceiptForDigests(
    uint64_t view, uint64_t seqno, const crypto::Sha256Digest& write_set,
    const crypto::Sha256Digest& claims) {
  if (raft_ == nullptr || seqno == 0 || seqno > raft_->commit_seqno()) {
    return Status::NotFound("transaction is not committed");
  }
  // Find the first committed signature transaction whose signed root
  // covers seqno. Under worker_async the signature entry at key `first`
  // may carry a root over a shorter prefix (sr.seqno <= first), so the
  // value's boundary is what must clear seqno.
  auto it = signed_roots_.upper_bound(seqno);
  while (it != signed_roots_.end() &&
         (it->first > raft_->commit_seqno() || it->second.seqno <= seqno)) {
    ++it;
  }
  if (it == signed_roots_.end()) {
    return Status::Unavailable("no signature transaction covers this seqno");
  }
  const merkle::SignedRoot& sr = it->second;

  merkle::Receipt receipt;
  receipt.view = view;
  receipt.seqno = seqno;
  receipt.write_set_digest = write_set;
  receipt.claims_digest = claims;
  ASSIGN_OR_RETURN(receipt.proof, tree_.GetProof(seqno - 1, sr.seqno - 1));
  receipt.signed_root = sr;
  // The receipt carries the signing node's certificate. We may not be the
  // signer; look its certificate up in the store.
  if (sr.node_id == config_.node_id) {
    receipt.node_cert = node_cert_;
  } else {
    auto raw = store_.GetStr(tables::kNodesInfo, sr.node_id);
    if (!raw.has_value()) {
      return Status::Unavailable("signer certificate unknown");
    }
    ASSIGN_OR_RETURN(json::Value j, json::Parse(*raw));
    ASSIGN_OR_RETURN(gov::NodeInfo info, gov::NodeInfo::FromJson(j));
    receipt.node_cert = info.cert;
  }
  return receipt;
}

// ------------------------------------------------------------------ join

void Node::HandleJoinRequest(rpc::EndpointContext* ctx) {
  auto params = ctx->Params();
  if (!params.ok()) {
    ctx->SetError(400, "bad join body");
    return;
  }
  std::string joiner_id = params->GetString("node_id");
  std::string host = params->GetString("host");
  auto quote_bytes = HexDecode(params->GetString("quote"));
  auto pub_bytes = HexDecode(params->GetString("public_key"));
  if (joiner_id.empty() || !quote_bytes.ok() || !pub_bytes.ok() ||
      pub_bytes->size() != crypto::kPublicKeySize) {
    ctx->SetError(400, "join requires node_id, quote, public_key");
    return;
  }
  auto quote = tee::Quote::Deserialize(*quote_bytes);
  if (!quote.ok()) {
    ctx->SetError(400, "malformed quote");
    return;
  }
  // Attestation (paper §2): platform signature, report data binding, and
  // code id governance check (Listing 1: add_node_code).
  if (!tee::Platform::Global().VerifyQuote(*quote).ok()) {
    ctx->SetError(401, "attestation failed: bad platform signature");
    return;
  }
  crypto::PublicKeyBytes joiner_key{};
  std::copy(pub_bytes->begin(), pub_bytes->end(), joiner_key.begin());
  if (quote->report_data != tee::ReportDataForNodeKey(joiner_key)) {
    ctx->SetError(401, "attestation failed: report data mismatch");
    return;
  }
  if (!ctx->tx().Handle(tables::kNodesCodeIds)->HasStr(quote->code_id)) {
    ctx->SetError(401, "attestation failed: code id not trusted");
    return;
  }
  auto existing = ctx->tx().Handle(tables::kNodesInfo)->GetStr(joiner_id);
  if (existing.has_value()) {
    ctx->SetError(409, "node id already known");
    return;
  }
  if (service_key_ == nullptr || encryptor_ == nullptr) {
    ctx->SetError(503, "node holds no service secrets yet");
    return;
  }

  // Issue the node certificate and record the node as PENDING (Figure 6);
  // governance later transitions it to TRUSTED.
  crypto::Certificate joiner_cert = crypto::IssueCertificate(
      joiner_id, "node", joiner_key, *service_key_, "service");
  gov::NodeInfo info;
  info.node_id = joiner_id;
  info.status = gov::NodeStatus::kPending;
  info.cert = joiner_cert;
  info.code_id = quote->code_id;
  info.host = host;
  gov::WriteRecord(ctx->tx().Handle(tables::kNodesInfo), joiner_id,
                   info.ToJson());

  // Service secrets and catch-up state, protected by the STLS session.
  json::Object out;
  out["node_cert"] = HexEncode(joiner_cert.Serialize());
  out["service_cert"] = HexEncode(service_cert_.Serialize());
  out["service_key_seed"] =
      HexEncode(ByteSpan(service_key_->seed().data(), 32));
  out["ledger_secret"] = HexEncode(ledger_secret_.key);

  // Certificates of the current consensus peers. A joiner whose snapshot
  // predates (or, for the empty-snapshot baseline, omits) the nodes table
  // cannot derive node-channel keys for them, yet the raft catch-up that
  // would teach it those keys is itself delivered over node channels. The
  // joiner verifies each certificate against the pinned service identity
  // before trusting it.
  json::Object peer_certs;
  for (const consensus::Configuration& cfg : raft_->active_configs()) {
    for (const std::string& nid : cfg.nodes) {
      if (peer_certs.count(nid) > 0) continue;
      auto record = gov::ReadRecord(ctx->tx().Handle(tables::kNodesInfo), nid);
      if (!record.ok()) continue;
      auto peer_info = gov::NodeInfo::FromJson(*record);
      if (!peer_info.ok()) continue;
      peer_certs[nid] = HexEncode(peer_info->cert.Serialize());
    }
  }
  out["peer_certs"] = std::move(peer_certs);

  // Snapshot of committed state (paper §4.4: "nodes can begin from a
  // snapshot"). A joiner that asked for a verifiable bundle gets the
  // latest receipted one and checks its evidence receipt against the
  // pinned service identity before installing anything. Otherwise fall
  // back to the inline snapshot, whose only protection is the attested
  // STLS session; a joiner that declined snapshots outright (benchmark
  // baseline) gets an empty one and replays the full log via catch-up.
  bool want_snapshot = params->GetBool("want_snapshot");
  if (want_snapshot && latest_bundle_.has_value()) {
    out["snapshot_bundle"] = HexEncode(latest_bundle_->Serialize());
    ctx->SetJsonResponse(200, json::Value(std::move(out)));
    return;
  }
  kv::Snapshot snap;
  std::vector<merkle::Digest> leaves;
  std::vector<consensus::Configuration> configs;
  if (!want_snapshot) {
    snap.data = kv::SerializeState(kv::State{});
    configs = raft_->active_configs();
  } else if (latest_snapshot_.has_value()) {
    snap = *latest_snapshot_;
    leaves = snapshot_leaves_;
    configs = snapshot_configs_;
  } else {
    snap = kv::TakeSnapshot(store_, ViewAtSeqno(store_.committed_seqno()));
    for (uint64_t i = 0; i < snap.seqno; ++i) {
      auto leaf = tree_.LeafAt(i);
      if (leaf.ok()) leaves.push_back(*leaf);
    }
    // ALL active configurations: inside a reconfiguration window there are
    // two, and a joiner seeded with only the first would run consensus
    // against a stale membership.
    configs = raft_->active_configs();
  }
  out["snapshot_seqno"] = snap.seqno;
  out["snapshot_view"] = snap.view;
  out["snapshot_data"] = HexEncode(snap.data);
  Bytes leaves_flat;
  for (const merkle::Digest& d : leaves) {
    Append(&leaves_flat, ByteSpan(d.data(), d.size()));
  }
  out["tree_leaves"] = HexEncode(leaves_flat);
  json::Array config_json;
  for (const consensus::Configuration& cfg : configs) {
    json::Object c;
    c["seqno"] = cfg.seqno;
    json::Array nodes;
    for (const std::string& n : cfg.nodes) nodes.emplace_back(n);
    c["nodes"] = std::move(nodes);
    config_json.push_back(json::Value(std::move(c)));
  }
  out["configurations"] = std::move(config_json);
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

void Node::StartJoin(const std::string& target_node) {
  join_pending_ = true;
  join_target_ = target_node;
  join_session_ = std::make_unique<rpc::ClientSession>(
      service_identity_, nullptr, std::nullopt, &drbg_);
  EnclaveSendNet(target_node,
                 WrapWire(kSessionRecord, join_session_->Start()));
}

void Node::HandleJoinResponseRecord(ByteSpan record) {
  auto out = join_session_->OnRecord(record);
  if (!out.ok()) {
    LOG_ERROR << config_.node_id << " join session failed: "
              << out.status().ToString();
    return;
  }
  if (out->established && !join_request_sent_) {
    join_request_sent_ = true;
    // Send the join request with our quote.
    tee::Quote quote = tee::Platform::Global().GenerateQuote(
        config_.code_id, tee::ReportDataForNodeKey(node_key_.public_key()));
    json::Object body;
    body["node_id"] = config_.node_id;
    body["host"] = config_.host;
    body["want_snapshot"] = config_.join_from_snapshot;
    body["quote"] = HexEncode(quote.Serialize());
    body["public_key"] = HexEncode(
        ByteSpan(node_key_.public_key().data(), crypto::kPublicKeySize));
    http::Request req;
    req.method = "POST";
    req.path = "/node/join";
    req.body = ToBytes(json::Value(std::move(body)).Dump());
    auto sealed = join_session_->Seal(req.Serialize());
    if (sealed.ok()) {
      EnclaveSendNet(join_target_, WrapWire(kSessionRecord, *sealed));
    }
    return;
  }
  for (const Bytes& data : out->app_data) {
    join_parser_.Feed(data);
  }
  auto resp = join_parser_.Next();
  if (!resp.ok() || !resp->has_value()) return;
  if ((*resp)->status != 200) {
    LOG_ERROR << config_.node_id << " join rejected: "
              << ToString((*resp)->body);
    return;
  }
  auto body = json::Parse(ToString((*resp)->body));
  if (!body.ok()) return;
  Status installed = InstallJoinResponse(*body);
  if (!installed.ok()) {
    LOG_ERROR << config_.node_id << " join install failed: "
              << installed.ToString();
  }
}

Status Node::InstallJoinResponse(const json::Value& body) {
  ASSIGN_OR_RETURN(Bytes node_cert_bytes,
                   HexDecode(body.GetString("node_cert")));
  ASSIGN_OR_RETURN(node_cert_,
                   crypto::Certificate::Deserialize(node_cert_bytes));
  ASSIGN_OR_RETURN(Bytes service_cert_bytes,
                   HexDecode(body.GetString("service_cert")));
  ASSIGN_OR_RETURN(service_cert_,
                   crypto::Certificate::Deserialize(service_cert_bytes));
  ASSIGN_OR_RETURN(Bytes seed, HexDecode(body.GetString("service_key_seed")));
  service_key_ = std::make_unique<crypto::KeyPair>(
      crypto::KeyPair::FromSeed(seed));
  if (service_key_->public_key() != service_identity_) {
    return Status::PermissionDenied("join: service key does not match pin");
  }
  ASSIGN_OR_RETURN(Bytes secret, HexDecode(body.GetString("ledger_secret")));
  ledger_secret_ = kv::LedgerSecret{secret};
  encryptor_ = std::make_unique<kv::TxEncryptor>(ledger_secret_);

  // Seed the node-channel key cache from the served peer certificates:
  // until catch-up repopulates the nodes table locally, these are the only
  // way to open channels to the current consensus peers. Nothing is
  // trusted unless it verifies against the pinned service identity.
  const json::Value* peers = body.Get("peer_certs");
  if (peers != nullptr && peers->is_object()) {
    for (const auto& [nid, cert_hex] : peers->AsObject()) {
      if (!cert_hex.is_string()) continue;
      auto cert_bytes = HexDecode(cert_hex.AsString());
      if (!cert_bytes.ok()) continue;
      auto cert = crypto::Certificate::Deserialize(*cert_bytes);
      if (!cert.ok()) continue;
      if (!crypto::VerifyCertificate(
               *cert, ByteSpan(service_identity_.data(),
                               service_identity_.size()))
               .ok()) {
        continue;
      }
      known_node_keys_[nid] = cert->public_key;
    }
  }

  // Verified snapshot bundle (paper §4.4): everything in it is untrusted
  // until the evidence receipt verifies against the pinned service
  // identity. A forged or corrupt bundle is rejected here, before any
  // state is installed.
  const json::Value* bundle_hex = body.Get("snapshot_bundle");
  if (bundle_hex != nullptr && bundle_hex->is_string()) {
    ASSIGN_OR_RETURN(Bytes bundle_bytes, HexDecode(bundle_hex->AsString()));
    ASSIGN_OR_RETURN(SnapshotBundle bundle,
                     SnapshotBundle::Deserialize(bundle_bytes));
    RETURN_IF_ERROR(VerifyBundle(
        bundle, ByteSpan(service_identity_.data(), service_identity_.size())));
    ASSIGN_OR_RETURN(kv::State state, RestoreState(bundle, ledger_secret_));
    store_.InstallState(std::move(state), bundle.seqno);
    tx_digests_.clear();
    tx_digests_.resize(bundle.seqno);  // digests for old entries are unknown
    tree_.AppendLeafHashes(bundle.leaves);
    RETURN_IF_ERROR(host_ledger_.SetBase(bundle.seqno));
    raft_ = std::make_unique<consensus::RaftNode>(consensus::RaftNode::Joiner(
        config_.node_id, config_.raft, bundle.view, bundle.seqno,
        bundle.configs, this));
    raft_->BindMetrics(&metrics_);
    join_pending_ = false;
    join_session_.reset();
    LOG_INFO << config_.node_id << " joined from verified snapshot at "
             << bundle.seqno;
    return Status::Ok();
  }

  // Install the inline (legacy) snapshot.
  kv::Snapshot snap;
  snap.seqno = static_cast<uint64_t>(body.GetInt("snapshot_seqno"));
  snap.view = static_cast<uint64_t>(body.GetInt("snapshot_view"));
  ASSIGN_OR_RETURN(snap.data, HexDecode(body.GetString("snapshot_data")));
  RETURN_IF_ERROR(kv::InstallSnapshot(snap, &store_));

  // Rebuild the Merkle tree from the provided leaves.
  ASSIGN_OR_RETURN(Bytes leaves_flat, HexDecode(body.GetString("tree_leaves")));
  if (leaves_flat.size() % crypto::kSha256DigestSize != 0 ||
      leaves_flat.size() / crypto::kSha256DigestSize != snap.seqno) {
    return Status::InvalidArgument("join: bad tree leaves");
  }
  tx_digests_.clear();
  tx_digests_.resize(snap.seqno);  // digests for old entries are unknown
  std::vector<merkle::Digest> leaves(snap.seqno);
  for (uint64_t i = 0; i < snap.seqno; ++i) {
    std::copy(leaves_flat.begin() + i * crypto::kSha256DigestSize,
              leaves_flat.begin() + (i + 1) * crypto::kSha256DigestSize,
              leaves[i].begin());
  }
  // Bulk-install the historical leaves; interior nodes go through the
  // 4-way hashing kernel.
  tree_.AppendLeafHashes(leaves);

  std::vector<consensus::Configuration> configs;
  const json::Value* config_json = body.Get("configurations");
  if (config_json != nullptr && config_json->is_array()) {
    for (const json::Value& c : config_json->AsArray()) {
      consensus::Configuration cfg;
      cfg.seqno = static_cast<uint64_t>(c.GetInt("seqno"));
      const json::Value* nodes = c.Get("nodes");
      if (nodes != nullptr && nodes->is_array()) {
        for (const json::Value& n : nodes->AsArray()) {
          if (n.is_string()) cfg.nodes.insert(n.AsString());
        }
      }
      configs.push_back(std::move(cfg));
    }
  }
  if (configs.empty()) {
    return Status::InvalidArgument("join: no configurations");
  }

  RETURN_IF_ERROR(host_ledger_.SetBase(snap.seqno));
  raft_ = std::make_unique<consensus::RaftNode>(consensus::RaftNode::Joiner(
      config_.node_id, config_.raft, snap.view, snap.seqno, configs, this));
  raft_->BindMetrics(&metrics_);
  join_pending_ = false;
  join_session_.reset();
  LOG_INFO << config_.node_id << " joined at snapshot " << snap.seqno;
  return Status::Ok();
}

// -------------------------------------------------------------- recovery

void Node::InitRecovery(ledger::Ledger restored,
                        std::optional<SnapshotBundle> bundle) {
  recovery_pending_ = true;
  // New service identity (paper §5.2: "the newly recovered service will
  // have a new service identity, making it clear a recovery occurred").
  service_key_ = std::make_unique<crypto::KeyPair>(
      crypto::KeyPair::Generate(&drbg_));
  service_identity_ = service_key_->public_key();
  service_cert_ = crypto::IssueCertificate("service", "service",
                                           service_identity_, *service_key_,
                                           "");
  node_cert_ = crypto::IssueCertificate(config_.node_id, "node",
                                        node_key_.public_key(), *service_key_,
                                        "service");

  // Replay the public parts of the restored ledger (paper §5.2: "the
  // public parts of transactions are restored"). When the ledger starts
  // past a snapshot horizon, the caller (CreateRecoveryFromDir) has
  // already verified the bundle; public state installs at the snapshot
  // seqno and only the ledger suffix replays (paper §4.4).
  host_ledger_ = std::move(restored);
  std::vector<Bytes> leaf_contents;
  if (bundle.has_value()) {
    auto pub = RestorePublicState(*bundle);
    if (!pub.ok()) {
      LOG_ERROR << "recovery: snapshot public state undecodable: "
                << pub.status().ToString();
      return;
    }
    store_.InstallState(pub.take(), bundle->seqno);
    tree_.AppendLeafHashes(bundle->leaves);
    tx_digests_.clear();
    tx_digests_.resize(bundle->seqno);  // digests for old entries unknown
    recovery_bundle_ = std::move(bundle);
  }
  leaf_contents.reserve(host_ledger_.entries().size());
  for (const ledger::Entry& entry : host_ledger_.entries()) {
    auto ws = kv::WriteSet::Parse(entry.public_ws, {});
    if (ws.ok()) {
      Status applied = store_.ApplyWriteSet(*ws, entry.seqno);
      if (!applied.ok()) {
        LOG_ERROR << "recovery replay failed at " << entry.seqno;
        tree_.AppendBatch(leaf_contents);  // keep the applied prefix's tree
        return;
      }
    }
    TxDigests digests;
    digests.write_set = entry.WriteSetDigest();
    digests.claims = entry.claims_digest;
    tx_digests_.push_back(digests);
    leaf_contents.push_back(merkle::TransactionLeafContent(
        entry.view, entry.seqno, digests.write_set, digests.claims));
  }
  // Rebuild the whole tree in one batched pass (4-way SHA-256 kernel).
  tree_.AppendBatch(leaf_contents);
  uint64_t base = host_ledger_.last_seqno();
  uint64_t base_view =
      !host_ledger_.entries().empty() ? host_ledger_.entries().back().view
      : recovery_bundle_.has_value() ? recovery_bundle_->view
                                     : 0;
  // The recovered service is committed up to the restored ledger end.
  Status compacted = store_.Compact(base);
  if (!compacted.ok()) {
    LOG_ERROR << "recovery compact failed: " << compacted.ToString();
  }

  raft_ = std::make_unique<consensus::RaftNode>(consensus::RaftNode::Joiner(
      config_.node_id, config_.raft, base_view, base,
      {consensus::Configuration{0, {config_.node_id}}}, this));
  raft_->BindMetrics(&metrics_);
  // A single-node configuration elects itself at the first timeout; the
  // recovery-declaration transaction is emitted in OnRoleChange.
}

void Node::HandleRecoveryShareSubmission(rpc::EndpointContext* ctx) {
  Status sig = VerifyGovSignature(ctx->request(), ctx->caller());
  if (!sig.ok()) {
    ctx->SetError(401, sig.message());
    return;
  }
  if (!recovery_pending_) {
    ctx->SetError(400, "service is not recovering");
    return;
  }
  auto params = ctx->Params();
  if (!params.ok()) {
    ctx->SetError(400, "bad body");
    return;
  }
  auto share = HexDecode(params->GetString("share"));
  if (!share.ok()) {
    ctx->SetError(400, "share must be hex");
    return;
  }
  submitted_shares_[ctx->caller().id] = *share;

  int threshold = gov::ShareManager::RecoveryThreshold(&ctx->tx());
  json::Object out;
  out["submitted"] = static_cast<int64_t>(submitted_shares_.size());
  out["threshold"] = threshold;

  if (static_cast<int>(submitted_shares_.size()) >= threshold) {
    auto secret = gov::ShareManager::RecoverLedgerSecret(&ctx->tx(),
                                                         submitted_shares_);
    if (!secret.ok()) {
      ctx->SetError(400, secret.status().message());
      return;
    }
    CompleteRecovery(secret.take());
    out["recovered"] = true;
  } else {
    out["recovered"] = false;
  }
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

void Node::CompleteRecovery(kv::LedgerSecret secret) {
  ledger_secret_ = std::move(secret);
  encryptor_ = std::make_unique<kv::TxEncryptor>(ledger_secret_);

  // Rebuild the store, now decrypting private writes (paper §5.2: "the
  // previous ledger's private state decrypted"). A node that bootstrapped
  // from a snapshot starts from the bundle's full state (opening its
  // sealed private half with the recovered secret) and replays only the
  // ledger suffix on top.
  kv::Store rebuilt;
  if (recovery_bundle_.has_value()) {
    auto full = RestoreState(*recovery_bundle_, ledger_secret_);
    if (!full.ok()) {
      LOG_ERROR << "recovery: cannot open snapshot private state: "
                << full.status().ToString();
      return;
    }
    rebuilt.InstallState(full.take(), recovery_bundle_->seqno);
  }
  for (const ledger::Entry& entry : host_ledger_.entries()) {
    Bytes private_plain;
    if (!entry.private_sealed.empty()) {
      auto aad = crypto::Sha256::Hash(entry.public_ws);
      auto opened = encryptor_->Open(entry.view, entry.seqno,
                                     entry.private_sealed,
                                     ByteSpan(aad.data(), aad.size()));
      if (opened.ok()) {
        private_plain = opened.take();
      } else {
        LOG_ERROR << "recovery: cannot decrypt entry " << entry.seqno;
      }
    }
    auto ws = kv::WriteSet::Parse(entry.public_ws, private_plain);
    if (!ws.ok()) continue;
    Status applied = rebuilt.ApplyWriteSet(*ws, entry.seqno);
    if (!applied.ok()) {
      LOG_ERROR << "recovery rebuild failed at " << entry.seqno;
      return;
    }
  }
  Status compacted = rebuilt.Compact(raft_->commit_seqno());
  if (!compacted.ok()) {
    LOG_ERROR << "recovery rebuild compact failed";
  }
  store_ = std::move(rebuilt);
  recovery_pending_ = false;
  recovery_bundle_.reset();
  submitted_shares_.clear();

  // Re-key the recovery shares under the new consortium state.
  kv::Tx tx = store_.BeginTx();
  Status reissued = gov::ShareManager::ReissueShares(&tx, ledger_secret_,
                                                     &drbg_);
  if (reissued.ok()) {
    auto committed = CommitAndReplicate(&tx, ledger::EntryType::kInternal);
    if (!committed.ok()) {
      LOG_ERROR << "share reissue commit failed";
    }
  }
  LOG_INFO << config_.node_id << " recovery complete; private state restored";
}

}  // namespace ccf::node
