#include "node/client.h"

#include "common/hex.h"
#include "common/logging.h"
#include "crypto/sha256.h"

namespace ccf::node {

namespace {
constexpr uint8_t kSessionRecordKind = 1;

Bytes WrapSession(ByteSpan record) {
  Bytes out;
  out.push_back(kSessionRecordKind);
  Append(&out, record);
  return out;
}
}  // namespace

Client::Client(std::string client_id, sim::Environment* env,
               crypto::PublicKeyBytes service_identity,
               const crypto::KeyPair* key,
               std::optional<crypto::Certificate> cert)
    : client_id_(std::move(client_id)),
      env_(env),
      service_identity_(service_identity),
      key_(key),
      cert_(std::move(cert)),
      drbg_("ccf-client-" + client_id_, 0) {
  env_->Register(
      client_id_,
      [this](const std::string& from, ByteSpan data) {
        OnNetMessage(from, data);
      },
      [](uint64_t) {});
}

Client::~Client() { env_->Unregister(client_id_); }

void Client::Connect(const std::string& node_id) {
  node_id_ = node_id;
  session_ = std::make_unique<rpc::ClientSession>(service_identity_, key_,
                                                  cert_, &drbg_);
  parser_ = http::ResponseParser();
  // Outstanding callbacks fail: the session is gone.
  for (auto& cb : pending_) {
    cb(Status::Unavailable("session closed by reconnect"));
  }
  pending_.clear();
  env_->Send(client_id_, node_id_, WrapSession(session_->Start()));
}

void Client::SendRequest(http::Request request, ResponseCallback callback) {
  if (session_ == nullptr) {
    callback(Status::FailedPrecondition("client not connected"));
    return;
  }
  pending_.push_back(std::move(callback));
  Bytes wire = request.Serialize();
  if (!session_->established()) {
    queued_requests_.push_back(std::move(wire));
    return;
  }
  auto record = session_->Seal(wire);
  if (record.ok()) {
    env_->Send(client_id_, node_id_, WrapSession(*record));
  }
}

void Client::FlushQueue() {
  while (!queued_requests_.empty()) {
    auto record = session_->Seal(queued_requests_.front());
    queued_requests_.pop_front();
    if (record.ok()) {
      env_->Send(client_id_, node_id_, WrapSession(*record));
    }
  }
}

void Client::OnNetMessage(const std::string& from, ByteSpan data) {
  if (session_ == nullptr || from != node_id_ || data.empty() ||
      data[0] != kSessionRecordKind) {
    return;
  }
  auto out = session_->OnRecord(data.subspan(1));
  if (!out.ok()) {
    LOG_DEBUG << client_id_ << " session error: " << out.status().ToString();
    return;
  }
  if (out->established) FlushQueue();
  for (const Bytes& app_data : out->app_data) {
    parser_.Feed(app_data);
  }
  while (true) {
    auto resp = parser_.Next();
    if (!resp.ok() || !resp->has_value()) break;
    ++responses_received_;
    if (!pending_.empty()) {
      ResponseCallback cb = std::move(pending_.front());
      pending_.pop_front();
      cb(std::move(**resp));
    }
  }
}

Result<http::Response> Client::Call(http::Request request,
                                    uint64_t timeout_ms) {
  // Shared, not stack-captured: on timeout the pending callback outlives
  // this frame and may still fire on a later reconnect/teardown.
  auto result = std::make_shared<std::optional<Result<http::Response>>>();
  SendRequest(std::move(request), [result](Result<http::Response> r) {
    *result = std::move(r);
  });
  env_->RunUntil([&] { return result->has_value(); }, timeout_ms);
  if (!result->has_value()) {
    return Status::Unavailable("request timed out");
  }
  return std::move(**result);
}

Result<http::Response> Client::Get(const std::string& path,
                                   uint64_t timeout_ms) {
  http::Request req;
  req.method = "GET";
  req.path = path;
  return Call(std::move(req), timeout_ms);
}

Result<http::Response> Client::PostJson(const std::string& path,
                                        const json::Value& body,
                                        uint64_t timeout_ms) {
  http::Request req;
  req.method = "POST";
  req.path = path;
  req.headers["content-type"] = "application/json";
  req.body = ToBytes(body.Dump());
  return Call(std::move(req), timeout_ms);
}

Result<http::Response> Client::PostJsonSigned(const std::string& path,
                                              const json::Value& body,
                                              uint64_t timeout_ms) {
  if (key_ == nullptr) {
    return Status::FailedPrecondition("client has no signing key");
  }
  http::Request req;
  req.method = "POST";
  req.path = path;
  req.headers["content-type"] = "application/json";
  req.body = ToBytes(body.Dump());
  auto digest = crypto::Sha256::Hash(req.body);
  auto sig = key_->Sign(ByteSpan(digest.data(), digest.size()));
  req.headers["x-ccf-signature"] = HexEncode(ByteSpan(sig.data(), sig.size()));
  return Call(std::move(req), timeout_ms);
}

std::optional<std::pair<uint64_t, uint64_t>> Client::TxIdOf(
    const http::Response& response) {
  std::string header = response.GetHeader(http::kTxIdHeader);
  size_t dot = header.find('.');
  if (dot == std::string::npos) return std::nullopt;
  return std::make_pair(std::strtoull(header.c_str(), nullptr, 10),
                        std::strtoull(header.c_str() + dot + 1, nullptr, 10));
}

}  // namespace ccf::node
