// Node and service configuration.

#ifndef CCF_NODE_CONFIG_H_
#define CCF_NODE_CONFIG_H_

#include <string>
#include <vector>

#include "consensus/raft.h"
#include "crypto/cert.h"
#include "tee/attestation.h"
#include "tee/boundary.h"

namespace ccf::node {

// Historical-query subsystem knobs (node/historical.h). Defaults suit the
// simulator's millisecond clock; tests shrink the cache to exercise
// eviction and benchmarks raise max_range.
struct HistoricalConfig {
  // LRU bound on concurrently cached range requests.
  size_t cache_max_requests = 8;
  // A cached request untouched for this long is evicted.
  uint64_t cache_ttl_ms = 10000;
  // While a request is incomplete, re-issue the host fetch this often.
  uint64_t retry_interval_ms = 20;
  // A request still incomplete after this long fails with a timeout.
  uint64_t fetch_timeout_ms = 1000;
  // Advertised Retry-After while a fetch is in flight.
  uint64_t retry_after_ms = 10;
  // Maximum seqno span of one range request.
  size_t max_range = 128;
  // Indexer backpressure: committed entries fed per tick.
  size_t index_entries_per_tick = 32;
};

struct NodeConfig {
  std::string node_id;
  tee::TeeMode tee_mode = tee::TeeMode::kVirtual;
  tee::CodeId code_id = "ccf-code-v1";
  std::string host = "";  // operator-visible address label
  uint64_t seed = 0;      // deterministic key/drbg seed

  consensus::RaftConfig raft;
  // A signature transaction is emitted after this many transactions (paper
  // §7: "the signature transaction frequency has been set to every 100
  // transactions"), or after signature_interval_ms of inactivity.
  uint64_t signature_interval_txs = 100;
  uint64_t signature_interval_ms = 100;
  // Snapshots of committed state are produced every this many commits.
  uint64_t snapshot_interval_txs = 1000;
  // Joiners ask the service for a verified snapshot bundle and bootstrap
  // from it plus the ledger suffix (paper §4.4); off = full replay via
  // consensus catch-up (the pre-snapshot baseline, kept for benchmarks).
  bool join_from_snapshot = true;
  // After the host persists a verified snapshot at seqno S, retire ledger
  // chunks entirely below S (bounding host disk and memory). Off by
  // default: auditing and full-replay recovery need the whole ledger
  // unless an operator opts into the snapshot horizon.
  bool snapshot_retire_ledger = false;
  // How many full KV store roots to retain for rollback / historical
  // reads before falling back to write-set replay (0 = unlimited). Kept
  // comfortably above the signature interval so common rollbacks stay
  // O(1).
  size_t kv_retained_root_cap = 256;
  // Enclave worker threads for deferred signing (paper §7: dedicated
  // threads keep signing off the message-handling hot path). 0 (default)
  // executes offloaded jobs synchronously at the submission point; N>0
  // runs real threads. In both cases completions are delivered at the same
  // drain point at the top of Node::Tick, so with worker_async unset the
  // simulated service is bit-for-bit identical across settings (see
  // DESIGN.md: worker-pool determinism contract).
  size_t worker_threads = 0;
  // With worker_threads > 0: don't block the drain point on unfinished
  // jobs. Signature transactions then land whenever their sign finishes,
  // covering a prefix of the log (merkle/receipt.h). Maximum overlap for
  // wall-clock benchmarks; not bit-reproducible, so the deterministic
  // chaos suites leave it off.
  bool worker_async = false;
  // Optimistic parallel request execution (DESIGN.md §12). Batches of
  // independent, parallel-safe requests execute concurrently on a
  // dedicated pool against a shared committed-state snapshot; a serial
  // commit point validates read-sets and re-executes losers. 0 (default)
  // runs each batched handler synchronously at the submission point, so
  // the simulated service is bit-for-bit identical across settings: batch
  // composition, commit order, and every response byte depend only on the
  // message schedule, never on exec_threads.
  size_t exec_threads = 0;
  // Bounded OCC retries: a transaction that keeps losing read-set
  // validation is re-executed serially at most this many times before the
  // request fails with 409.
  size_t exec_max_retries = 4;
  // Exec-batch flush policy (DESIGN.md §12/§13). With both at 0 (default)
  // the batch is flushed unconditionally at the end of every inbox drain —
  // the historical behaviour, bit-identical for the deterministic chaos
  // suites. When either threshold is set, a batch survives inbox drains
  // until it reaches exec_batch_max requests or its first request has
  // waited exec_batch_deadline_ms milliseconds (a deadline of 0 with a
  // size threshold set means "at most one tick"), letting batches form
  // across the bursty arrival pattern of live sockets.
  size_t exec_batch_max = 0;
  uint64_t exec_batch_deadline_ms = 0;
  // Per-connection cap on pipelined requests awaiting a response. A client
  // exceeding it gets 503 + connection close (after all earlier responses
  // on the connection). 0 = unlimited; the default is far above anything
  // the sim harnesses pipeline, so simulated runs are unaffected.
  size_t http_max_pipeline = 4096;
  // Historical queries and asynchronous indexing (node/historical.h).
  HistoricalConfig historical;
};

// Initial consortium passed to the genesis node (paper §5: "the
// constitution ... is provided to a CCF service at start-up").
struct MemberIdentity {
  std::string member_id;
  Bytes cert;                           // serialized member certificate
  crypto::PublicKeyBytes encryption_key{};  // for recovery shares
};

struct ServiceInit {
  std::vector<MemberIdentity> members;
  std::string constitution;  // CCL source; empty => default constitution
  // Convenience for tests/benchmarks: open the service at genesis instead
  // of requiring a transition_service_to_open proposal.
  bool open_immediately = false;
  // Users registered at genesis (normally added via set_user proposals).
  std::vector<std::pair<std::string, Bytes>> initial_users;  // id, cert
};

}  // namespace ccf::node

#endif  // CCF_NODE_CONFIG_H_
