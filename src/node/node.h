// A CCF node: the integration of every substrate in this repository.
//
// One Node object contains both halves of Figure 2:
//   - the untrusted HOST: network endpoint (simulation process), the
//     append-only ledger on "disk", snapshot files;
//   - the ENCLAVE: node & service keys, the transactional KV store, the
//     Merkle tree, the consensus layer, the endpoint dispatcher, the
//     governance engine, and the script runtime.
// All network payloads cross between the two through the ring-buffer
// boundary (tee::EnclaveBoundary), where the TEE mode's cost applies.
// Ledger persistence is modelled as direct host-object calls.
//
// A node starts in one of three ways (paper §5):
//   - CreateGenesis: first node of a new service; creates the service
//     identity and the genesis transaction.
//   - CreateJoiner: attests to an existing service over STLS and receives
//     the service secrets, a snapshot, and a node certificate (§4.4).
//   - CreateRecovery: disaster recovery from ledger files (§5.2): public
//     state is restored immediately; private state after enough members
//     submit their recovery shares.

#ifndef CCF_NODE_NODE_H_
#define CCF_NODE_NODE_H_

#include <deque>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "consensus/raft.h"
#include "gov/records.h"
#include "gov/shares.h"
#include "http/http.h"
#include "kv/encryptor.h"
#include "kv/snapshot.h"
#include "kv/store.h"
#include "ledger/ledger.h"
#include "merkle/merkle.h"
#include "merkle/receipt.h"
#include "node/app.h"
#include "node/config.h"
#include "node/historical.h"
#include "node/indexing.h"
#include "node/snapshots.h"
#include "observe/metrics.h"
#include "rpc/endpoints.h"
#include "rpc/session.h"
#include "sim/environment.h"
#include "tee/worker_pool.h"

namespace ccf::node {

// Host-side network transport behind DrainEnclaveOutbox. The simulator's
// Environment::Send is the default; the live TCP host (src/host) installs
// an implementation over real sockets via SetHostTransport. Calls arrive
// on whatever thread drives Node::Tick; implementations that own an IO
// thread must make these safe to call from the tick thread.
class HostTransport {
 public:
  virtual ~HostTransport() = default;
  // Deliver `payload` to the node or client session labelled `to`.
  virtual void NetSend(const std::string& to, Bytes payload) = 0;
  // The enclave asked to close this session's connection (after any
  // responses already queued ahead of it).
  virtual void CloseSession(const std::string& peer) { (void)peer; }
};

class Node : public consensus::RaftCallbacks {
 public:
  static std::unique_ptr<Node> CreateGenesis(NodeConfig config,
                                             const ServiceInit& init,
                                             Application* app,
                                             sim::Environment* env);
  static std::unique_ptr<Node> CreateJoiner(
      NodeConfig config, crypto::PublicKeyBytes service_identity,
      const std::string& target_node, Application* app,
      sim::Environment* env);
  static std::unique_ptr<Node> CreateRecovery(NodeConfig config,
                                              ledger::Ledger restored,
                                              Application* app,
                                              sim::Environment* env);
  // Disaster recovery from a persisted directory: loads the ledger chunks
  // and, when the ledger starts past seqno 1 (chunks below the snapshot
  // horizon were retired), requires and verifies the matching snapshot
  // bundle before bootstrapping from snapshot + suffix (paper §4.4, §5.2).
  static Result<std::unique_ptr<Node>> CreateRecoveryFromDir(
      NodeConfig config, const std::string& dir, Application* app,
      sim::Environment* env);
  ~Node() override;

  Node(const Node&) = delete;
  Node& operator=(const Node&) = delete;

  // ------------------------------------------------------------ state

  const std::string& id() const { return config_.node_id; }
  // Accessors are safe before a joiner has completed its join.
  bool IsPrimary() const { return raft_ != nullptr && raft_->IsPrimary(); }
  uint64_t view() const { return raft_ != nullptr ? raft_->view() : 0; }
  uint64_t commit_seqno() const {
    return raft_ != nullptr ? raft_->commit_seqno() : 0;
  }
  uint64_t last_seqno() const {
    return raft_ != nullptr ? raft_->last_seqno() : 0;
  }
  bool has_joined() const { return raft_ != nullptr; }
  const crypto::PublicKeyBytes& service_identity() const {
    return service_identity_;
  }
  gov::ServiceStatus service_status() const;
  // True once this node's retirement has committed and it can be shut
  // down by the operator (paper §4.5).
  bool retired() const { return retired_; }

  consensus::RaftNode& raft() { return *raft_; }
  const consensus::RaftNode& raft() const { return *raft_; }

  // Unified metrics registry (tee boundary, worker pool, consensus, rpc,
  // crypto/historical counters; exposed via GET /node/metrics).
  observe::Registry& metrics() { return metrics_; }
  const observe::Registry& metrics() const { return metrics_; }

  // Crypto op telemetry (also surfaced via GET /node/crypto_ops). Merkle
  // hashing counters live in tree().stats(). The values live in the
  // metrics registry; this is a point-in-time snapshot of them.
  struct CryptoOpCounters {
    uint64_t signs = 0;            // signature transactions signed
    uint64_t signs_deferred = 0;   // of which went through the worker pool
    uint64_t verifies_single = 0;  // signature txs verified one-by-one
    uint64_t verifies_batched = 0; // signature txs verified via VerifyBatch
    uint64_t verify_batches = 0;   // VerifyBatch invocations
    uint64_t verify_failures = 0;  // signatures that failed verification
  };
  CryptoOpCounters crypto_ops() const;
  // Host-fetch / historical-query telemetry (GET /node/historical);
  // registry-backed snapshot, like crypto_ops().
  struct HistoricalCounters {
    uint64_t host_fetch_requests = 0;   // fetch requests the host served
    uint64_t host_fetch_responses = 0;  // responses delivered to the enclave
    uint64_t host_fetch_drops = 0;      // responses dropped by fault policy
    uint64_t host_fetch_corrupts = 0;   // responses bit-flipped
    uint64_t host_fetch_delays = 0;     // responses given extra delay
    uint64_t host_fetch_reorders = 0;   // responses swapped in the queue
    uint64_t entries_verified = 0;      // fetched entries passing verification
    uint64_t entries_rejected = 0;      // fetched entries failing verification
  };
  HistoricalCounters historical_counters() const;

  // Node-to-node channel AEAD state (tests / operator). A channel rekeys
  // (fail closed: fresh HKDF epoch, counter reset) before its per-epoch
  // message counter can reach the GCM nonce limit.
  static constexpr uint64_t kChannelRekeyAt = uint64_t{1} << 48;
  uint64_t channel_send_counter(const std::string& peer) const;
  uint32_t channel_send_epoch(const std::string& peer) const;
  // Test-only: jump the counter next to the threshold to exercise rekey.
  void TestForceChannelCounter(const std::string& peer, uint64_t value);
  const tee::WorkerPool& worker_pool() const { return worker_pool_; }
  kv::Store& store() { return store_; }
  const kv::Store& store() const { return store_; }
  const merkle::MerkleTree& tree() const { return tree_; }
  const ledger::Ledger& host_ledger() const { return host_ledger_; }
  const tee::EnclaveBoundary& boundary() const { return boundary_; }

  // ------------------------------------------------------- host ops

  Status SaveLedgerToDir(const std::string& dir) const {
    return ledger::SaveToDir(host_ledger_, dir);
  }
  // Persists the host's latest snapshot bundle (if any) next to the
  // ledger chunks as "snapshot_<seqno>".
  Status SaveSnapshotToDir(const std::string& dir) const;
  // Seqno of the latest snapshot bundle the host holds (0 = none).
  uint64_t host_snapshot_seqno() const { return host_snapshot_seqno_; }

  void InstallIndexingStrategy(std::shared_ptr<indexing::Strategy> strategy) {
    indexer_.Install(std::move(strategy));
  }
  indexing::Indexer& indexer() { return indexer_; }
  historical::StateCache& historical() { return *historical_; }
  const historical::StateCache& historical() const { return *historical_; }
  // Largest committed seqno a receipt can be built for: the boundary of
  // the last committed signed root, clamped to the commit point. App-level
  // historical queries clamp here so every returned entry is provable.
  uint64_t ReceiptableUpto() const;

  // Member-side helper for recovery drills (reads public state).
  Result<Bytes> ExtractRecoveryShare(const std::string& member_id,
                                     const crypto::KeyPair& member_key);

  // -------------------------------------------- live-host driving
  //
  // In sim mode these are invoked via the environment registration; a
  // live host (src/host) drives them directly instead. Threading contract
  // (DESIGN.md §13): Tick is the single ring consumer and must only ever
  // run on one thread at a time; HostReceive/HostPostSessionClosed are
  // ring producers (MPSC) and may be called concurrently from IO threads.

  // Installs the live transport used by DrainEnclaveOutbox in place of
  // the sim environment. Call before the first Tick.
  void SetHostTransport(HostTransport* transport) { transport_ = transport; }
  // Advances host + enclave state to `now_ms` (wall-clock in live mode,
  // virtual time in sim mode).
  void Tick(uint64_t now_ms);
  // Injects an inbound network payload from `from`. Returns false when the
  // host-to-enclave ring is full — backpressure; the caller should park
  // the connection and retry rather than drop (satellite: ring_full).
  bool HostReceive(const std::string& from, ByteSpan data);
  // Tells the enclave that `peer`'s connection is gone so it can free the
  // session state. Same backpressure contract as HostReceive.
  bool HostPostSessionClosed(const std::string& peer);

  // --------------------------------------------------- RaftCallbacks

  void OnAppend(const consensus::LogEntry& entry) override;
  void OnAppendBatch(
      const std::vector<const consensus::LogEntry*>& entries) override;
  void OnRollback(uint64_t seqno) override;
  void OnCommit(uint64_t seqno) override;
  void OnRoleChange(consensus::Role role, uint64_t view) override;
  void Send(const consensus::NodeId& to,
            const consensus::Message& msg) override;

 private:
  Node(NodeConfig config, Application* app, sim::Environment* env);

  // ------------------------------------------------------ lifecycle

  void InitGenesis(const ServiceInit& init);
  void StartJoin(const std::string& target_node);
  void InitRecovery(ledger::Ledger restored,
                    std::optional<SnapshotBundle> bundle);
  void RegisterWithEnvironment();
  void InstallFrameworkEndpoints();

  // -------------------------------------------------------- driving

  void DrainEnclaveInbox();
  void DrainEnclaveOutbox();
  // Host side of the historical fetch loop: serve a fetch request from the
  // host ledger (applying the environment's host-fault policy), and deliver
  // queued responses whose delay has elapsed into the enclave inbox.
  void HostServeLedgerFetch(ByteSpan payload);
  void HostDeliverFetchResponses();
  // Enclave side: issue a fetch, and route a response to the state cache.
  void EnclaveSendLedgerFetch(uint64_t lo, uint64_t hi);
  void EnclaveHandleFetchResponse(ByteSpan payload);
  // Verifies one host-fetched entry against the Merkle tree and a signed
  // root, then decrypts its private writes (see historical::VerifyFn).
  Result<historical::VerifiedEntry> VerifyFetchedEntry(
      const ledger::Entry& entry);
  // Decodes one committed entry from the host ledger for the indexer.
  bool DecodeCommittedEntry(uint64_t seqno, indexing::CommittedEntry* out);
  void EnclaveProcess(const std::string& from, ByteSpan data);
  // Queues an outbound network message (crosses the boundary).
  void EnclaveSendNet(const std::string& to, ByteSpan data);

  // ------------------------------------------------------- sessions

  void HandleSessionRecord(const std::string& peer, ByteSpan record);
  void HandleChannelMessage(const std::string& peer, ByteSpan payload);
  void SendOnChannel(const std::string& peer, uint8_t channel_type,
                     ByteSpan payload);
  Result<Bytes> ChannelKeyFor(const std::string& peer, uint32_t epoch);
  crypto::AesGcm* ChannelGcmFor(const std::string& peer, uint32_t epoch);
  void BindNodeMetrics();
  std::optional<crypto::PublicKeyBytes> NodePublicKey(
      const std::string& node_id);

  // ------------------------------------------------------- requests

  // One classification shared by native and scripted endpoints: dispatch,
  // forwarding, batching eligibility, and execution all read the same
  // resolution, so a scripted endpoint's "readonly" field and a native
  // EndpointSpec::read_only are one concept (paper §4.3 forwarding rules).
  struct ResolvedEndpoint {
    bool found = false;
    const rpc::EndpointSpec* spec = nullptr;  // native; stable -- the
                                              // registry is immutable
                                              // after construction
    json::Value scripted_spec;                // scripted record (copy)
    bool is_scripted = false;
    bool read_only = false;
    bool exec_parallel = false;
    rpc::AuthPolicy auth = rpc::AuthPolicy::kNoAuth;
    std::string path;  // target with the query string stripped
  };
  ResolvedEndpoint ResolveEndpoint(const std::string& method,
                                   const std::string& target);

  // One entry of the pending optimistic-execution batch (DESIGN.md §12),
  // accumulated by DispatchRequest while draining the enclave inbox and
  // flushed before anything that could commit, forward, or respond.
  struct ExecBatchItem {
    std::string session_peer;
    http::Request request;
    rpc::CallerIdentity caller;
    ResolvedEndpoint re;
  };

  void DispatchRequest(const std::string& session_peer,
                       const http::Request& request);
  void RespondToSession(const std::string& session_peer,
                        const http::Response& response);
  // Drops the session and, in live mode, asks the host to close the
  // underlying connection (tee::kCloseSession).
  void CloseUserSession(const std::string& session_peer);
  // Timed wrapper: runs ExecuteRequestInner and records per-endpoint
  // request/status/latency metrics.
  http::Response ExecuteRequest(const http::Request& request,
                                const rpc::CallerIdentity& caller);
  http::Response ExecuteRequestInner(const http::Request& request,
                                     const rpc::CallerIdentity& caller);
  // Methods (native or scripted) that could serve `path`, excluding
  // `method` itself: non-empty distinguishes 405 from 404 and feeds the
  // Allow: header.
  std::vector<std::string> AllowedMethodsForPath(const std::string& method,
                                                 const std::string& path);
  // Validates the request body against the resolved endpoint's declared
  // request schema (DESIGN.md §14). Returns the structured 400 response
  // on violation; nullopt when valid or no schema is declared. Runs
  // before any KV transaction is opened.
  std::optional<http::Response> CheckRequestSchemaFor(
      const ResolvedEndpoint& re, const http::Request& request);
  // Runs one endpoint handler against a caller-provided transaction, with
  // no commit: the service-open gate, the auth policy, and the handler.
  // Safe on exec-pool workers during a batch's execution phase -- it only
  // reads committed store state and mutates its own tx/response.
  http::Response ExecuteOnTx(const ResolvedEndpoint& re,
                             const http::Request& request,
                             const rpc::CallerIdentity& caller, kv::Tx* tx);
  http::Response ExecuteScriptedOnTx(const json::Value& spec,
                                     const http::Request& request,
                                     const rpc::CallerIdentity& caller,
                                     kv::Tx* tx);
  // Serial commit point for one batched item: validate/commit its
  // phase-A transaction, re-executing serially with bounded retries on
  // conflict (paper §6.4: logic may run multiple times, its transaction
  // is applied exactly once).
  http::Response CommitBatchedItem(const ExecBatchItem& item, kv::Tx* tx,
                                   http::Response resp);
  // Executes the pending batch: every item gets a transaction off the
  // same store head, handlers run on exec_pool_, then a serial commit
  // point validates and responds in submission order.
  void FlushExecBatch();
  // Flush-policy decision point at the end of every inbox drain: with the
  // thresholds disabled (default) flushes unconditionally (the historical
  // behaviour); otherwise flushes only once the batch reaches
  // exec_batch_max items or its oldest item has aged past
  // exec_batch_deadline_ms.
  void MaybeFlushExecBatch();
  Result<rpc::CallerIdentity> Authenticate(
      const std::optional<crypto::Certificate>& session_cert);
  Status CheckAuthPolicy(rpc::AuthPolicy policy,
                         const rpc::CallerIdentity& caller);
  void ForwardToPrimary(const std::string& session_peer,
                        const http::Request& request,
                        const rpc::CallerIdentity& caller);

  // -------------------------------------------------- transactions

  // Commits `tx` and replicates the resulting entry. Returns the tx ID.
  Result<consensus::TxId> CommitAndReplicate(kv::Tx* tx,
                                             ledger::EntryType type);
  // Inline sign-and-commit (genesis, role change). The cadence-driven path
  // goes through SubmitDeferredSignature / the worker pool instead.
  void EmitSignature();
  void MaybeEmitSignature(uint64_t now_ms);
  void SubmitDeferredSignature();
  void CommitSignedRoot(const merkle::SignedRoot& sr);
  // Runs worker-pool completions at the deterministic drain point (top of
  // Tick). Blocking unless config_.worker_async.
  void DrainWorkerCompletions();
  // Batch-verifies queued remote signature transactions up to the new
  // commit point.
  void VerifyCommittedSignatures(uint64_t commit_seqno);
  void MaybeSnapshot();
  // Primary-only snapshot evidence/persistence pipeline, driven from Tick
  // (never from inside OnCommit — committing there would re-enter raft):
  // commit the evidence transaction for a freshly captured snapshot, then
  // once the evidence is receipt-provable, attach the receipt and ship
  // the bundle to the host over the boundary (tee::kSnapshotWrite).
  void MaybeCommitSnapshotEvidence();
  void MaybePersistSnapshot();
  // Host side: store a snapshot bundle the enclave asked to persist,
  // applying the environment's snapshot fault policy, and retire ledger
  // chunks below the horizon when configured.
  void HostStoreSnapshot(ByteSpan payload);
  // Primary-only, from Tick: drops consensus log entries below the latest
  // persisted snapshot once every peer's match index has passed them, and
  // offers the bundle to laggards whose next entry fell below the base.
  void MaybeCompactRaftLog();
  // Follower side of snapshot catch-up: verify the offered bundle against
  // the service identity and re-base store/tree/ledger/raft onto it.
  void HandleSnapshotCatchUp(const std::string& peer, ByteSpan body);
  std::optional<consensus::Configuration> DetectReconfiguration(
      const kv::WriteSet& writes, uint64_t seqno);
  std::set<std::string> TrustedNodesInState() const;
  void AppendLeafFor(const ledger::Entry& entry);
  uint64_t ViewAtSeqno(uint64_t seqno) const;
  void HandleOwnRetirement();
  void MaybeCompleteRetirements();

  // ------------------------------------------------ built-in logic

  void HandleJoinRequest(rpc::EndpointContext* ctx);
  void HandleJoinResponseRecord(ByteSpan record);
  Status InstallJoinResponse(const json::Value& body);
  void HandleRecoveryShareSubmission(rpc::EndpointContext* ctx);
  void CompleteRecovery(kv::LedgerSecret secret);
  Result<merkle::Receipt> BuildReceipt(uint64_t seqno);
  // Receipt for explicit digests (the historical path verifies fetched
  // entries whose digests may predate this node's own tx_digests_).
  Result<merkle::Receipt> BuildReceiptForDigests(
      uint64_t view, uint64_t seqno, const crypto::Sha256Digest& write_set,
      const crypto::Sha256Digest& claims);

  // ---------------------------------------------------------- data

  NodeConfig config_;
  Application* app_;
  sim::Environment* env_;              // null in live mode
  HostTransport* transport_ = nullptr; // null in sim mode

  // Declared before every instrumented member so bound metric pointers
  // outlive their users (destruction is reverse order; worker_pool_ is
  // last and its in-flight completions may still record).
  observe::Registry metrics_;

  // ------------------------------ host state
  ledger::Ledger host_ledger_;
  tee::EnclaveBoundary boundary_;
  // Host-side randomness for the fetch-fault policy. Separate from the
  // enclave DRBGs so enabling faults does not perturb key generation.
  crypto::Drbg host_drbg_;
  // Fetch responses in flight on the host, delivered into the enclave
  // inbox once their (1 tick + fault-injected) delay elapses.
  struct PendingHostFetch {
    uint64_t deliver_at_ms = 0;
    uint64_t seq = 0;  // FIFO tiebreak within one deliver_at_ms
    Bytes payload;     // serialized tee::LedgerFetchResponse
  };
  std::vector<PendingHostFetch> host_fetch_queue_;
  uint64_t host_fetch_seq_ = 0;
  // Latest snapshot bundle persisted by the host (serialized; outside the
  // trust boundary — re-verified before any install on the way back in).
  Bytes host_snapshot_bundle_;
  uint64_t host_snapshot_seqno_ = 0;

  // ------------------------------ enclave state
  crypto::Drbg drbg_;
  crypto::KeyPair node_key_;
  crypto::Certificate node_cert_;
  // Service identity. Genesis/recovery nodes generate it; joiners receive
  // the private key after attestation (paper Table 1).
  std::unique_ptr<crypto::KeyPair> service_key_;  // null until trusted
  crypto::PublicKeyBytes service_identity_{};
  crypto::Certificate service_cert_;

  kv::Store store_;
  std::unique_ptr<kv::TxEncryptor> encryptor_;
  kv::LedgerSecret ledger_secret_;
  merkle::MerkleTree tree_;
  std::unique_ptr<consensus::RaftNode> raft_;

  rpc::EndpointRegistry registry_;

  // Per-transaction digests for receipts, indexed by seqno-1.
  struct TxDigests {
    crypto::Sha256Digest write_set;
    crypto::Sha256Digest claims;
  };
  std::vector<TxDigests> tx_digests_;
  // Committed signature roots by seqno (receipt lookup).
  std::map<uint64_t, merkle::SignedRoot> signed_roots_;

  // Sessions from users/joiners, keyed by transport peer id (simulation
  // peer id in sim mode, connection label in live mode).
  struct UserSession {
    std::unique_ptr<rpc::ServerSession> stls;
    http::RequestParser parser;
    bool sticky_forwarding = false;
    // HTTP keep-alive hardening: requests dispatched but not yet
    // responded to (pipelining depth), and whether the connection closes
    // once in-flight responses drain ("connection: close", a parse error,
    // or the pipelining cap).
    size_t in_flight = 0;
    bool close_after = false;
  };
  std::map<std::string, UserSession> sessions_;

  // Node-to-node channel receive/send state. Pair keys are derived per
  // (peer, epoch) from static-static ECDH via HKDF and cached; the send
  // epoch advances (rekey) before the AEAD message counter can approach
  // the nonce limit, and receivers derive whatever epoch the wire names.
  struct ChannelState {
    uint64_t send_counter = 0;
    uint32_t send_epoch = 0;
    // Small per-epoch AEAD cache (our send epoch + the peer's, which may
    // briefly differ around a rekey); pruned to the newest few.
    std::map<uint32_t, std::unique_ptr<crypto::AesGcm>> gcm_by_epoch;
  };
  std::map<std::string, ChannelState> channels_;
  std::map<std::string, crypto::PublicKeyBytes> known_node_keys_;

  // Forwarded requests awaiting a primary response: correlation -> session.
  uint64_t next_correlation_ = 1;
  std::map<uint64_t, std::string> pending_forwards_;

  // Joining state.
  bool join_pending_ = false;
  std::string join_target_;
  std::unique_ptr<rpc::ClientSession> join_session_;
  http::ResponseParser join_parser_;
  bool join_request_sent_ = false;

  // Recovery state.
  bool recovery_pending_ = false;
  std::map<std::string, Bytes> submitted_shares_;

  // Signature cadence.
  uint64_t txs_since_signature_ = 0;
  uint64_t last_signature_ms_ = 0;
  uint64_t now_ms_ = 0;

  // Snapshots. MaybeSnapshot captures the committed state on every node;
  // the primary then runs the evidence/persistence pipeline: build a
  // bundle, commit its digest as evidence, wait until a receipt covers
  // the evidence, and hand the finished bundle to the host and joiners.
  uint64_t last_snapshot_seqno_ = 0;
  std::optional<kv::Snapshot> latest_snapshot_;
  std::vector<merkle::Digest> snapshot_leaves_;  // tree leaves at snapshot
  std::vector<consensus::Configuration> snapshot_configs_;
  bool snapshot_evidence_due_ = false;  // capture awaiting an evidence tx
  std::optional<SnapshotBundle> pending_bundle_;  // awaiting its receipt
  std::optional<SnapshotBundle> latest_bundle_;   // verified, receipted
  // Bundle a recovery node bootstrapped from (used by CompleteRecovery to
  // rebuild private state below the suffix).
  std::optional<SnapshotBundle> recovery_bundle_;

  // Historical queries + asynchronous indexing (paper §3.4, §3.6).
  indexing::Indexer indexer_;
  std::unique_ptr<historical::StateCache> historical_;
  NodeContext app_context_;

  bool retired_ = false;
  bool integrity_violation_ = false;  // backup saw a bad signature root

  // Deferred signing state: true while a sign job is in flight between
  // SubmitDeferredSignature and its completion at the drain point.
  bool sig_inflight_ = false;

  // Remote signature transactions awaiting Ed25519 verification, queued at
  // append and batch-verified at the commit boundary (in-order by seqno).
  struct PendingSigVerify {
    uint64_t seqno = 0;  // ledger seqno of the signature transaction
    merkle::SignedRoot sr;
  };
  std::deque<PendingSigVerify> pending_sig_verifies_;
  // Combiner-scalar DRBG for VerifyBatch; seeded from the node id so
  // deterministic runs replay identical combiners.
  crypto::Drbg verify_drbg_;

  // Registry-backed counters (bound once in BindNodeMetrics; the structs
  // mirror the snapshot types above).
  struct CryptoOpMetrics {
    observe::Counter* signs = nullptr;
    observe::Counter* signs_deferred = nullptr;
    observe::Counter* verifies_single = nullptr;
    observe::Counter* verifies_batched = nullptr;
    observe::Counter* verify_batches = nullptr;
    observe::Counter* verify_failures = nullptr;
  };
  CryptoOpMetrics crypto_metrics_;
  struct HistoricalMetrics {
    observe::Counter* host_fetch_requests = nullptr;
    observe::Counter* host_fetch_responses = nullptr;
    observe::Counter* host_fetch_drops = nullptr;
    observe::Counter* host_fetch_corrupts = nullptr;
    observe::Counter* host_fetch_delays = nullptr;
    observe::Counter* host_fetch_reorders = nullptr;
    observe::Counter* entries_verified = nullptr;
    observe::Counter* entries_rejected = nullptr;
  };
  HistoricalMetrics historical_metrics_;
  observe::Counter* m_channel_rekeys_ = nullptr;
  observe::Gauge* m_index_upto_ = nullptr;
  observe::Gauge* m_index_lag_ = nullptr;
  observe::Gauge* m_ledger_entries_ = nullptr;
  struct SnapshotMetrics {
    observe::Counter* taken = nullptr;
    observe::Counter* evidence_committed = nullptr;
    observe::Counter* persisted = nullptr;
    observe::Counter* persist_drops = nullptr;
    observe::Counter* persist_corrupts = nullptr;
  };
  SnapshotMetrics snapshot_metrics_;
  observe::Gauge* m_ledger_base_ = nullptr;
  struct ExecMetrics {
    observe::Counter* batches = nullptr;
    observe::Counter* requests = nullptr;
    observe::Counter* conflicts = nullptr;
    observe::Counter* retries = nullptr;
    observe::Counter* aborts = nullptr;
    observe::Histogram* batch_size = nullptr;
    // Flush-policy trigger counters (exec.flush.*): inbox-drain (policy
    // disabled), size threshold, deadline expiry.
    observe::Counter* flush_drain = nullptr;
    observe::Counter* flush_size = nullptr;
    observe::Counter* flush_deadline = nullptr;
  };
  ExecMetrics exec_metrics_;

  // Pending optimistic-execution batch (DESIGN.md §12).
  std::vector<ExecBatchItem> exec_batch_;
  // now_ms_ when the oldest item of the current batch was enqueued
  // (deadline flush policy; meaningless while the batch is empty).
  uint64_t exec_batch_opened_ms_ = 0;

  // Snapshot catch-up offers already sent: peer -> offered bundle seqno
  // (re-offered only once a newer bundle exists).
  std::map<std::string, uint64_t> offered_catchup_;

  // Declared last so they are destroyed first: in-flight jobs may touch
  // other members, which must still be alive while the destructors join.
  tee::WorkerPool worker_pool_;
  // Request-execution pool for batched optimistic execution (DESIGN.md
  // §12); separate from worker_pool_ so crypto offload and request
  // execution are sized independently (exec_threads).
  tee::WorkerPool exec_pool_;
};

}  // namespace ccf::node

#endif  // CCF_NODE_NODE_H_
