#include "node/audit.h"

#include <map>

#include "common/hex.h"
#include "gov/records.h"
#include "json/json.h"
#include "kv/tables.h"
#include "kv/writeset.h"
#include "merkle/merkle.h"
#include "merkle/receipt.h"

namespace ccf::node {

namespace tables = kv::tables;

namespace {

// Minimal public-state replay: map name -> key -> value.
using PublicState = std::map<std::string, std::map<std::string, std::string>>;

void ApplyPublic(const kv::WriteSet& ws, PublicState* state) {
  for (const auto& [name, writes] : ws.maps) {
    if (!kv::IsPublicMap(name)) continue;
    auto& map = (*state)[name];
    for (const auto& [key, value] : writes) {
      if (value.has_value()) {
        map[ToString(key)] = ToString(*value);
      } else {
        map.erase(ToString(key));
      }
    }
  }
}

Result<crypto::PublicKeyBytes> ServiceIdentityFrom(const PublicState& state) {
  auto mit = state.find(tables::kServiceInfo);
  if (mit == state.end()) {
    return Status::Corruption("audit: no service info in genesis");
  }
  auto kit = mit->second.find(tables::kCurrentKey);
  if (kit == mit->second.end()) {
    return Status::Corruption("audit: no current service record");
  }
  ASSIGN_OR_RETURN(json::Value j, json::Parse(kit->second));
  ASSIGN_OR_RETURN(gov::ServiceInfo info, gov::ServiceInfo::FromJson(j));
  ASSIGN_OR_RETURN(crypto::Certificate cert,
                   crypto::Certificate::Deserialize(info.cert));
  return cert.public_key;
}

Result<crypto::Certificate> NodeCertFrom(const PublicState& state,
                                         const std::string& node_id) {
  auto mit = state.find(tables::kNodesInfo);
  if (mit == state.end()) {
    return Status::Corruption("audit: no nodes.info map");
  }
  auto kit = mit->second.find(node_id);
  if (kit == mit->second.end()) {
    return Status::Corruption("audit: unknown signing node " + node_id);
  }
  ASSIGN_OR_RETURN(json::Value j, json::Parse(kit->second));
  ASSIGN_OR_RETURN(gov::NodeInfo info, gov::NodeInfo::FromJson(j));
  return info.cert;
}

}  // namespace

Result<AuditReport> AuditLedger(
    const ledger::Ledger& ledger,
    std::optional<crypto::PublicKeyBytes> expected_service) {
  if (ledger.base_seqno() != 0) {
    return Status::InvalidArgument(
        "audit: full audit requires a ledger from genesis");
  }

  AuditReport report;
  PublicState state;
  merkle::MerkleTree tree;
  std::optional<crypto::PublicKeyBytes> service;

  for (const ledger::Entry& entry : ledger.entries()) {
    ++report.entries;
    if (entry.seqno != report.entries) {
      return Status::Corruption("audit: non-contiguous seqno at " +
                                std::to_string(entry.seqno));
    }
    auto ws = kv::WriteSet::Parse(entry.public_ws, {});
    if (!ws.ok()) {
      return Status::Corruption("audit: unparseable write set at " +
                                std::to_string(entry.seqno));
    }

    if (entry.type == ledger::EntryType::kSignature) {
      ++report.signature_transactions;
      auto it = ws->maps.find(tables::kSignatures);
      if (it == ws->maps.end() || it->second.empty() ||
          !it->second.begin()->second.has_value()) {
        return Status::Corruption("audit: signature entry without root at " +
                                  std::to_string(entry.seqno));
      }
      ASSIGN_OR_RETURN(Bytes sr_bytes,
                       HexDecode(ToString(*it->second.begin()->second)));
      ASSIGN_OR_RETURN(merkle::SignedRoot sr,
                       merkle::SignedRoot::Deserialize(sr_bytes));
      if (sr.seqno != entry.seqno) {
        return Status::Corruption("audit: signed root seqno mismatch at " +
                                  std::to_string(entry.seqno));
      }
      // Root covers everything before this entry.
      if (sr.root != tree.Root()) {
        return Status::Corruption(
            "audit: Merkle root mismatch at " + std::to_string(entry.seqno) +
            " (ledger modified)");
      }
      if (!service.has_value()) {
        return Status::Corruption("audit: signature before genesis state");
      }
      ASSIGN_OR_RETURN(crypto::Certificate signer,
                       NodeCertFrom(state, sr.node_id));
      RETURN_IF_ERROR(crypto::VerifyCertificate(signer, *service));
      if (!crypto::Verify(signer.public_key, sr.SignedPayload(),
                          ByteSpan(sr.signature.data(),
                                   sr.signature.size()))) {
        return Status::Corruption("audit: bad root signature at " +
                                  std::to_string(entry.seqno));
      }
      report.verified_seqno = entry.seqno;
    }

    if (entry.type == ledger::EntryType::kGovernance) {
      ++report.governance_entries;
    }

    ApplyPublic(*ws, &state);
    tree.Append(merkle::TransactionLeafContent(
        entry.view, entry.seqno, entry.WriteSetDigest(),
        entry.claims_digest));

    if (!service.has_value()) {
      // Genesis entry: establish (or check) the service identity.
      ASSIGN_OR_RETURN(crypto::PublicKeyBytes id, ServiceIdentityFrom(state));
      if (expected_service.has_value() && id != *expected_service) {
        return Status::PermissionDenied(
            "audit: ledger chains to a different service identity");
      }
      service = id;
      report.service_identity_hex =
          HexEncode(ByteSpan(id.data(), id.size()));
    }
  }
  return report;
}

}  // namespace ccf::node
