#include "node/audit.h"

#include <map>

#include "common/hex.h"
#include "gov/records.h"
#include "json/json.h"
#include "kv/tables.h"
#include "kv/writeset.h"
#include "merkle/merkle.h"
#include "merkle/receipt.h"

namespace ccf::node {

namespace tables = kv::tables;

namespace {

// Minimal public-state replay: map name -> key -> value.
using PublicState = std::map<std::string, std::map<std::string, std::string>>;

void ApplyPublic(const kv::WriteSet& ws, PublicState* state) {
  for (const auto& [name, writes] : ws.maps) {
    if (!kv::IsPublicMap(name)) continue;
    auto& map = (*state)[name];
    for (const auto& [key, value] : writes) {
      if (value.has_value()) {
        map[ToString(key)] = ToString(*value);
      } else {
        map.erase(ToString(key));
      }
    }
  }
}

Result<crypto::PublicKeyBytes> ServiceIdentityFrom(const PublicState& state) {
  auto mit = state.find(tables::kServiceInfo);
  if (mit == state.end()) {
    return Status::Corruption("audit: no service info in genesis");
  }
  auto kit = mit->second.find(tables::kCurrentKey);
  if (kit == mit->second.end()) {
    return Status::Corruption("audit: no current service record");
  }
  ASSIGN_OR_RETURN(json::Value j, json::Parse(kit->second));
  ASSIGN_OR_RETURN(gov::ServiceInfo info, gov::ServiceInfo::FromJson(j));
  ASSIGN_OR_RETURN(crypto::Certificate cert,
                   crypto::Certificate::Deserialize(info.cert));
  return cert.public_key;
}

Result<crypto::Certificate> NodeCertFrom(const PublicState& state,
                                         const std::string& node_id) {
  auto mit = state.find(tables::kNodesInfo);
  if (mit == state.end()) {
    return Status::Corruption("audit: no nodes.info map");
  }
  auto kit = mit->second.find(node_id);
  if (kit == mit->second.end()) {
    return Status::Corruption("audit: unknown signing node " + node_id);
  }
  ASSIGN_OR_RETURN(json::Value j, json::Parse(kit->second));
  ASSIGN_OR_RETURN(gov::NodeInfo info, gov::NodeInfo::FromJson(j));
  return info.cert;
}

}  // namespace

Result<AuditReport> AuditLedger(
    const ledger::Ledger& ledger,
    std::optional<crypto::PublicKeyBytes> expected_service,
    AuditOptions options) {
  if (ledger.base_seqno() != 0) {
    return Status::InvalidArgument(
        "audit: full audit requires a ledger from genesis");
  }

  AuditReport report;
  PublicState state;
  merkle::MerkleTree tree;
  std::optional<crypto::PublicKeyBytes> service;

  // Batch mode: leaf contents accumulate here and flush through the 4-way
  // hashing kernel, at the latest right before a root check needs them.
  std::vector<Bytes> pending_leaves;
  auto flush_leaves = [&] {
    tree.AppendBatch(pending_leaves);
    pending_leaves.clear();
  };

  // Batch mode: root signatures accumulate here and flush through
  // VerifyBatch. The combiner DRBG is fixed-seeded: the audit is a
  // deterministic function of the ledger bytes.
  struct SigJob {
    uint64_t seqno = 0;
    Bytes payload;
    crypto::PublicKeyBytes pub{};
    crypto::SignatureBytes sig{};
  };
  std::vector<SigJob> sig_jobs;
  crypto::Drbg audit_drbg("ccf-audit-verify", 1);
  auto flush_sigs = [&]() -> Status {
    if (sig_jobs.empty()) return Status::Ok();
    std::vector<crypto::BatchVerifyItem> items;
    items.reserve(sig_jobs.size());
    for (const SigJob& j : sig_jobs) {
      items.push_back({ByteSpan(j.pub.data(), j.pub.size()), j.payload,
                       ByteSpan(j.sig.data(), j.sig.size())});
    }
    std::vector<bool> ok;
    if (!crypto::VerifyBatch(items, &audit_drbg, &ok)) {
      for (size_t i = 0; i < ok.size(); ++i) {
        if (!ok[i]) {
          return Status::Corruption("audit: bad root signature at " +
                                    std::to_string(sig_jobs[i].seqno));
        }
      }
    }
    report.batched_verifications += sig_jobs.size();
    sig_jobs.clear();
    return Status::Ok();
  };

  for (const ledger::Entry& entry : ledger.entries()) {
    ++report.entries;
    if (entry.seqno != report.entries) {
      return Status::Corruption("audit: non-contiguous seqno at " +
                                std::to_string(entry.seqno));
    }
    auto ws = kv::WriteSet::Parse(entry.public_ws, {});
    if (!ws.ok()) {
      return Status::Corruption("audit: unparseable write set at " +
                                std::to_string(entry.seqno));
    }

    if (entry.type == ledger::EntryType::kSignature) {
      ++report.signature_transactions;
      auto it = ws->maps.find(tables::kSignatures);
      if (it == ws->maps.end() || it->second.empty() ||
          !it->second.begin()->second.has_value()) {
        return Status::Corruption("audit: signature entry without root at " +
                                  std::to_string(entry.seqno));
      }
      ASSIGN_OR_RETURN(Bytes sr_bytes,
                       HexDecode(ToString(*it->second.begin()->second)));
      ASSIGN_OR_RETURN(merkle::SignedRoot sr,
                       merkle::SignedRoot::Deserialize(sr_bytes));
      // The signed root covers a prefix boundary no later than the entry
      // carrying it (equal under synchronous signing; strictly earlier is
      // possible under worker_async offload, see merkle/receipt.h).
      if (sr.seqno == 0 || sr.seqno > entry.seqno) {
        return Status::Corruption("audit: signed root seqno mismatch at " +
                                  std::to_string(entry.seqno));
      }
      if (options.batch) flush_leaves();
      ASSIGN_OR_RETURN(merkle::Digest covered, tree.RootAt(sr.seqno - 1));
      if (sr.root != covered) {
        return Status::Corruption(
            "audit: Merkle root mismatch at " + std::to_string(entry.seqno) +
            " (ledger modified)");
      }
      if (!service.has_value()) {
        return Status::Corruption("audit: signature before genesis state");
      }
      ASSIGN_OR_RETURN(crypto::Certificate signer,
                       NodeCertFrom(state, sr.node_id));
      RETURN_IF_ERROR(crypto::VerifyCertificate(signer, *service));
      if (options.batch) {
        // Queue for VerifyBatch; any failure aborts the audit at flush, so
        // the optimistic verified_seqno below never survives a bad batch.
        sig_jobs.push_back({entry.seqno, sr.SignedPayload(),
                            signer.public_key, sr.signature});
        if (sig_jobs.size() >= options.verify_batch_width) {
          RETURN_IF_ERROR(flush_sigs());
        }
      } else if (!crypto::Verify(signer.public_key, sr.SignedPayload(),
                                 ByteSpan(sr.signature.data(),
                                          sr.signature.size()))) {
        return Status::Corruption("audit: bad root signature at " +
                                  std::to_string(entry.seqno));
      }
      report.verified_seqno = entry.seqno;
    }

    if (entry.type == ledger::EntryType::kGovernance) {
      ++report.governance_entries;
    }

    ApplyPublic(*ws, &state);
    Bytes leaf = merkle::TransactionLeafContent(
        entry.view, entry.seqno, entry.WriteSetDigest(), entry.claims_digest);
    if (options.batch) {
      pending_leaves.push_back(std::move(leaf));
    } else {
      tree.Append(leaf);
    }

    if (!service.has_value()) {
      // Genesis entry: establish (or check) the service identity.
      ASSIGN_OR_RETURN(crypto::PublicKeyBytes id, ServiceIdentityFrom(state));
      if (expected_service.has_value() && id != *expected_service) {
        return Status::PermissionDenied(
            "audit: ledger chains to a different service identity");
      }
      service = id;
      report.service_identity_hex =
          HexEncode(ByteSpan(id.data(), id.size()));
    }
  }
  if (options.batch) {
    flush_leaves();
    RETURN_IF_ERROR(flush_sigs());
  }
  return report;
}

}  // namespace ccf::node
