// The append-only ledger (paper §3.2).
//
// Every transaction becomes one ledger entry carrying the transaction ID
// (view, seqno), an entry type, the serialized public write set in plain
// text, and the private write set sealed with the ledger secret. Signature
// entries additionally carry a SignedRoot in their public writes
// ("public:ccf.internal.signatures").
//
// The host keeps the logical ledger in memory (class Ledger) and persists
// it to a directory of physical chunk files, each terminating at a
// signature transaction, exactly as the paper describes. The persistent
// copy is OUTSIDE the trust boundary: everything read back is re-verified
// (see verifier.h).

#ifndef CCF_LEDGER_LEDGER_H_
#define CCF_LEDGER_LEDGER_H_

#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace ccf::ledger {

enum class EntryType : uint8_t {
  kUser = 0,             // application transaction
  kSignature = 1,        // Merkle root signature (paper §3.2)
  kReconfiguration = 2,  // node membership change (paper §4.4)
  kGovernance = 3,       // proposal / ballot / member action (paper §5.1)
  kInternal = 4,         // other framework writes (service info, shares...)
};

struct Entry {
  uint64_t view = 0;
  uint64_t seqno = 0;  // 1-based ledger position
  EntryType type = EntryType::kUser;
  Bytes public_ws;       // serialized public write set (plain text)
  Bytes private_sealed;  // sealed private write set ("" if none)
  crypto::Sha256Digest claims_digest{};

  Bytes Serialize() const;
  static Result<Entry> Deserialize(ByteSpan data);

  // Digest of the entry body, used as the transaction's write-set digest
  // in Merkle leaves and receipts.
  crypto::Sha256Digest WriteSetDigest() const;
};

// In-memory logical ledger of one node. Seqnos are 1-based and contiguous.
// A node joining from a snapshot holds only the suffix after its base
// (paper §4.4).
class Ledger {
 public:
  // Declares that entries up to `base` live in the snapshot, not here.
  // Only valid while empty: re-basing a non-empty ledger would silently
  // orphan its entries, so that is a loud FailedPrecondition.
  Status SetBase(uint64_t base);
  uint64_t base_seqno() const { return base_seqno_; }

  // Appends the next entry; entry.seqno must equal last_seqno()+1.
  Status Append(Entry entry);

  // NotFound past the tail; OutOfRange at or below the base (the entry
  // existed but was retired below the snapshot horizon — definitive, a
  // caller must not retry).
  Result<const Entry*> Get(uint64_t seqno) const;
  uint64_t last_seqno() const { return base_seqno_ + entries_.size(); }

  // Removes all entries with seqno > `seqno` (consensus rollback).
  // Truncating exactly at the base empties the suffix; truncating below it
  // is a FailedPrecondition — the prefix up to base is snapshot-covered
  // committed state and can never roll back.
  Status Truncate(uint64_t seqno);

  // Snapshot compaction: drops every entry with seqno <= `horizon` and
  // advances the base to `horizon`. A horizon at or below the current base
  // is an ok no-op; a horizon past the tail is a FailedPrecondition.
  Status RetireBelow(uint64_t horizon);

  const std::vector<Entry>& entries() const { return entries_; }

 private:
  uint64_t base_seqno_ = 0;
  std::vector<Entry> entries_;
};

// ------------------------------------------------------- Physical files

// Writes `ledger` as chunk files under `dir` (created if needed). Each
// committed-range chunk ends at a signature transaction and is named
// "ledger_<first>-<last>"; a trailing unsigned suffix is written as the
// open chunk "ledger_<first>" (matching the real CCF's chunk layout).
// Chunks entirely below the ledger's base (retired below the snapshot
// horizon) are simply absent.
Status SaveToDir(const Ledger& ledger, const std::string& dir);

// Scans `dir`, validates framing and contiguity, and rebuilds the ledger.
// Content authenticity must be established separately (verifier.h).
Result<Ledger> LoadFromDir(const std::string& dir);

}  // namespace ccf::ledger

#endif  // CCF_LEDGER_LEDGER_H_
