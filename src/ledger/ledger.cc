#include "ledger/ledger.h"

#include <algorithm>
#include <cstring>
#include <filesystem>
#include <fstream>

#include "common/buffer.h"

namespace ccf::ledger {

namespace {
constexpr char kChunkMagic[] = "CCFLEDG1";
constexpr size_t kMagicLen = 8;
}  // namespace

Bytes Entry::Serialize() const {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  w.U8(static_cast<uint8_t>(type));
  w.Blob(public_ws);
  w.Blob(private_sealed);
  w.Raw(ByteSpan(claims_digest.data(), claims_digest.size()));
  return w.Take();
}

Result<Entry> Entry::Deserialize(ByteSpan data) {
  BufReader r(data);
  Entry e;
  ASSIGN_OR_RETURN(e.view, r.U64());
  ASSIGN_OR_RETURN(e.seqno, r.U64());
  ASSIGN_OR_RETURN(uint8_t type, r.U8());
  if (type > static_cast<uint8_t>(EntryType::kInternal)) {
    return Status::Corruption("ledger: unknown entry type");
  }
  e.type = static_cast<EntryType>(type);
  ASSIGN_OR_RETURN(e.public_ws, r.Blob());
  ASSIGN_OR_RETURN(e.private_sealed, r.Blob());
  ASSIGN_OR_RETURN(Bytes digest, r.Raw(crypto::kSha256DigestSize));
  std::copy(digest.begin(), digest.end(), e.claims_digest.begin());
  if (!r.AtEnd()) {
    return Status::Corruption("ledger: trailing entry bytes");
  }
  return e;
}

crypto::Sha256Digest Entry::WriteSetDigest() const {
  BufWriter w;
  w.U8(static_cast<uint8_t>(type));
  w.Blob(public_ws);
  w.Blob(private_sealed);
  return crypto::Sha256::Hash(w.data());
}

Status Ledger::SetBase(uint64_t base) {
  if (!entries_.empty()) {
    return Status::FailedPrecondition(
        "ledger: SetBase on non-empty ledger (last seqno " +
        std::to_string(last_seqno()) + ")");
  }
  base_seqno_ = base;
  return Status::Ok();
}

Status Ledger::Append(Entry entry) {
  if (entry.seqno != last_seqno() + 1) {
    return Status::FailedPrecondition(
        "ledger: non-contiguous append at " + std::to_string(entry.seqno));
  }
  entries_.push_back(std::move(entry));
  return Status::Ok();
}

Result<const Entry*> Ledger::Get(uint64_t seqno) const {
  if (seqno <= base_seqno_) {
    return Status::OutOfRange("ledger: seqno " + std::to_string(seqno) +
                              " compacted below snapshot horizon " +
                              std::to_string(base_seqno_));
  }
  if (seqno > last_seqno()) {
    return Status::NotFound("ledger: no entry at seqno " +
                            std::to_string(seqno));
  }
  return &entries_[seqno - base_seqno_ - 1];
}

Status Ledger::Truncate(uint64_t seqno) {
  if (seqno < base_seqno_) {
    return Status::FailedPrecondition(
        "ledger: cannot truncate to " + std::to_string(seqno) +
        " below snapshot base " + std::to_string(base_seqno_));
  }
  if (seqno - base_seqno_ < entries_.size()) {
    entries_.resize(seqno - base_seqno_);
  }
  return Status::Ok();
}

Status Ledger::RetireBelow(uint64_t horizon) {
  if (horizon <= base_seqno_) return Status::Ok();
  if (horizon > last_seqno()) {
    return Status::FailedPrecondition(
        "ledger: cannot retire below " + std::to_string(horizon) +
        " past last seqno " + std::to_string(last_seqno()));
  }
  entries_.erase(entries_.begin(),
                 entries_.begin() +
                     static_cast<ptrdiff_t>(horizon - base_seqno_));
  base_seqno_ = horizon;
  return Status::Ok();
}

namespace {

Status WriteChunk(const std::string& path, const std::vector<Entry>& entries,
                  size_t first_idx, size_t last_idx) {
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  if (!out) {
    return Status::Internal("ledger: cannot open " + path);
  }
  out.write(kChunkMagic, kMagicLen);
  for (size_t i = first_idx; i <= last_idx; ++i) {
    Bytes frame = entries[i].Serialize();
    uint32_t len = static_cast<uint32_t>(frame.size());
    char len_le[4] = {static_cast<char>(len), static_cast<char>(len >> 8),
                      static_cast<char>(len >> 16),
                      static_cast<char>(len >> 24)};
    out.write(len_le, 4);
    out.write(reinterpret_cast<const char*>(frame.data()), frame.size());
  }
  if (!out) {
    return Status::Internal("ledger: write failed for " + path);
  }
  return Status::Ok();
}

Result<std::vector<Entry>> ReadChunk(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    return Status::Internal("ledger: cannot open " + path);
  }
  char magic[kMagicLen];
  in.read(magic, kMagicLen);
  if (!in || std::memcmp(magic, kChunkMagic, kMagicLen) != 0) {
    return Status::Corruption("ledger: bad chunk magic in " + path);
  }
  std::vector<Entry> entries;
  while (true) {
    char len_le[4];
    in.read(len_le, 4);
    if (in.eof()) {
      // A partial read (1-3 bytes) sets eofbit as well as failbit; only a
      // clean EOF at a frame boundary (0 bytes read) ends the chunk.
      if (in.gcount() == 0) break;
      return Status::Corruption("ledger: truncated frame length");
    }
    if (!in) return Status::Corruption("ledger: truncated frame length");
    uint32_t len = static_cast<uint8_t>(len_le[0]) |
                   (static_cast<uint8_t>(len_le[1]) << 8) |
                   (static_cast<uint8_t>(len_le[2]) << 16) |
                   (static_cast<uint8_t>(len_le[3]) << 24);
    if (len > (64u << 20)) {
      return Status::Corruption("ledger: oversized frame");
    }
    Bytes frame(len);
    in.read(reinterpret_cast<char*>(frame.data()), len);
    if (!in) return Status::Corruption("ledger: truncated frame body");
    ASSIGN_OR_RETURN(Entry e, Entry::Deserialize(frame));
    entries.push_back(std::move(e));
  }
  return entries;
}

}  // namespace

Status SaveToDir(const Ledger& ledger, const std::string& dir) {
  namespace fs = std::filesystem;
  std::error_code ec;
  fs::create_directories(dir, ec);
  if (ec) {
    return Status::Internal("ledger: cannot create dir " + dir);
  }
  // Remove stale chunk files so the directory mirrors this ledger exactly.
  for (const auto& de : fs::directory_iterator(dir)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("ledger_", 0) == 0) fs::remove(de.path(), ec);
  }

  const auto& entries = ledger.entries();
  size_t chunk_start = 0;
  while (chunk_start < entries.size()) {
    // A chunk extends to the next signature entry (inclusive), or to the
    // end of the ledger as a partial chunk.
    size_t end = chunk_start;
    bool closed = false;
    for (size_t i = chunk_start; i < entries.size(); ++i) {
      end = i;
      if (entries[i].type == EntryType::kSignature) {
        closed = true;
        break;
      }
    }
    // Closed committed-range chunk "ledger_<first>-<last>"; the trailing
    // unsigned suffix is the open chunk "ledger_<first>".
    std::string name =
        "ledger_" + std::to_string(ledger.base_seqno() + chunk_start + 1);
    if (closed) {
      name += "-" + std::to_string(ledger.base_seqno() + end + 1);
    }
    RETURN_IF_ERROR(WriteChunk(dir + "/" + name, entries, chunk_start, end));
    chunk_start = end + 1;
  }
  return Status::Ok();
}

Result<Ledger> LoadFromDir(const std::string& dir) {
  namespace fs = std::filesystem;
  if (!fs::is_directory(dir)) {
    return Status::NotFound("ledger: no such directory " + dir);
  }
  // Collect chunk files sorted by their first seqno.
  std::vector<std::pair<uint64_t, std::string>> files;
  for (const auto& de : fs::directory_iterator(dir)) {
    const std::string name = de.path().filename().string();
    if (name.rfind("ledger_", 0) != 0) continue;
    uint64_t first = std::strtoull(name.c_str() + 7, nullptr, 10);
    files.emplace_back(first, de.path().string());
  }
  std::sort(files.begin(), files.end());

  Ledger ledger;
  // After a snapshot, the earliest chunk on disk starts past seqno 1; the
  // restored ledger's base is whatever precedes that first chunk.
  if (!files.empty() && files[0].first > 0) {
    RETURN_IF_ERROR(ledger.SetBase(files[0].first - 1));
  }
  for (const auto& [first, path] : files) {
    ASSIGN_OR_RETURN(std::vector<Entry> entries, ReadChunk(path));
    for (Entry& e : entries) {
      RETURN_IF_ERROR(ledger.Append(std::move(e)));
    }
  }
  return ledger;
}

}  // namespace ccf::ledger
