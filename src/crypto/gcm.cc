#include "crypto/gcm.h"

#include <cassert>
#include <cstring>

namespace ccf::crypto {

namespace {

// GF(2^128) multiplication per SP 800-38D §6.3 (bit-reflected convention).
// Operands and result are 16-byte big-endian blocks.
void GfMul128(const uint8_t x[16], const uint8_t y[16], uint8_t out[16]) {
  uint64_t v_hi = 0, v_lo = 0;
  for (int i = 0; i < 8; ++i) v_hi = (v_hi << 8) | y[i];
  for (int i = 8; i < 16; ++i) v_lo = (v_lo << 8) | y[i];

  uint64_t z_hi = 0, z_lo = 0;
  for (int i = 0; i < 128; ++i) {
    int byte = i / 8;
    int bit = 7 - (i % 8);
    if ((x[byte] >> bit) & 1) {
      z_hi ^= v_hi;
      z_lo ^= v_lo;
    }
    bool lsb = (v_lo & 1) != 0;
    v_lo = (v_lo >> 1) | (v_hi << 63);
    v_hi >>= 1;
    if (lsb) v_hi ^= 0xe100000000000000ULL;
  }
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(z_hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) out[8 + i] = static_cast<uint8_t>(z_lo >> (56 - 8 * i));
}

void Inc32(uint8_t block[16]) {
  for (int i = 15; i >= 12; --i) {
    if (++block[i] != 0) break;
  }
}

void PutBe64(uint64_t v, uint8_t* out) {
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(v >> (56 - 8 * i));
}

}  // namespace

AesGcm::AesGcm(ByteSpan key) : aes_(key) {
  uint8_t zero[16] = {0};
  aes_.EncryptBlock(zero, h_);

  // Htable[j] = (4-bit value j in the leading nibble) * H, via the
  // (slow, known-correct) bit-serial multiply.
  for (int j = 0; j < 16; ++j) {
    uint8_t x[16] = {0};
    x[0] = static_cast<uint8_t>(j << 4);
    uint8_t out[16];
    GfMul128(x, h_, out);
    uint64_t hi = 0, lo = 0;
    for (int i = 0; i < 8; ++i) hi = (hi << 8) | out[i];
    for (int i = 8; i < 16; ++i) lo = (lo << 8) | out[i];
    ht_hi_[j] = hi;
    ht_lo_[j] = lo;
  }
  // r4_[rem] = reduction term for shifting rem (4 bits) off the low end,
  // derived from four single-bit shifts.
  for (int rem = 0; rem < 16; ++rem) {
    uint64_t hi = 0, lo = static_cast<uint64_t>(rem);
    for (int k = 0; k < 4; ++k) {
      bool lsb = (lo & 1) != 0;
      lo = (lo >> 1) | (hi << 63);
      hi >>= 1;
      if (lsb) hi ^= 0xe100000000000000ULL;
    }
    r4_[rem] = hi;
  }
}

// Multiplies (hi, lo) by H using the 4-bit tables (Shoup's method):
// Horner over the 32 nibbles, highest position first.
void AesGcm::GMultH(uint64_t* io_hi, uint64_t* io_lo) const {
  uint64_t x_hi = *io_hi, x_lo = *io_lo;
  // Nibble at position p (p=0: leading nibble of byte 0).
  auto nibble = [&](int p) -> int {
    uint64_t word = p < 16 ? x_hi : x_lo;
    int shift = 60 - 4 * (p & 15);
    return static_cast<int>((word >> shift) & 0xF);
  };
  int n = nibble(31);
  uint64_t z_hi = ht_hi_[n], z_lo = ht_lo_[n];
  for (int p = 30; p >= 0; --p) {
    uint64_t rem = z_lo & 0xF;
    z_lo = (z_lo >> 4) | (z_hi << 60);
    z_hi = (z_hi >> 4) ^ r4_[rem];
    n = nibble(p);
    z_hi ^= ht_hi_[n];
    z_lo ^= ht_lo_[n];
  }
  *io_hi = z_hi;
  *io_lo = z_lo;
}

void AesGcm::Ghash(ByteSpan aad, ByteSpan ciphertext, uint8_t out[16]) const {
  uint64_t y_hi = 0, y_lo = 0;
  auto absorb = [&](ByteSpan data) {
    for (size_t off = 0; off < data.size(); off += 16) {
      uint8_t block[16] = {0};
      size_t n = std::min<size_t>(16, data.size() - off);
      std::memcpy(block, data.data() + off, n);
      uint64_t b_hi = 0, b_lo = 0;
      for (int i = 0; i < 8; ++i) b_hi = (b_hi << 8) | block[i];
      for (int i = 8; i < 16; ++i) b_lo = (b_lo << 8) | block[i];
      y_hi ^= b_hi;
      y_lo ^= b_lo;
      GMultH(&y_hi, &y_lo);
    }
  };
  absorb(aad);
  absorb(ciphertext);
  uint8_t lens[16];
  PutBe64(aad.size() * 8, lens);
  PutBe64(ciphertext.size() * 8, lens + 8);
  absorb(ByteSpan(lens, 16));
  for (int i = 0; i < 8; ++i) out[i] = static_cast<uint8_t>(y_hi >> (56 - 8 * i));
  for (int i = 0; i < 8; ++i) out[8 + i] = static_cast<uint8_t>(y_lo >> (56 - 8 * i));
}

void AesGcm::CtrCrypt(const uint8_t j0[16], ByteSpan in, uint8_t* out) const {
  uint8_t ctr[16];
  std::memcpy(ctr, j0, 16);
  for (size_t off = 0; off < in.size(); off += 16) {
    Inc32(ctr);
    uint8_t keystream[16];
    aes_.EncryptBlock(ctr, keystream);
    size_t n = std::min<size_t>(16, in.size() - off);
    for (size_t i = 0; i < n; ++i) {
      out[off + i] = in[off + i] ^ keystream[i];
    }
  }
}

Bytes AesGcm::Seal(ByteSpan iv, ByteSpan plaintext, ByteSpan aad) const {
  assert(iv.size() == kGcmIvSize);
  uint8_t j0[16] = {0};
  std::memcpy(j0, iv.data(), 12);
  j0[15] = 1;

  Bytes out(plaintext.size() + kGcmTagSize);
  CtrCrypt(j0, plaintext, out.data());

  uint8_t s[16];
  Ghash(aad, ByteSpan(out.data(), plaintext.size()), s);
  uint8_t ek_j0[16];
  aes_.EncryptBlock(j0, ek_j0);
  for (int i = 0; i < 16; ++i) {
    out[plaintext.size() + i] = s[i] ^ ek_j0[i];
  }
  return out;
}

Result<Bytes> AesGcm::Open(ByteSpan iv, ByteSpan sealed, ByteSpan aad) const {
  if (iv.size() != kGcmIvSize) {
    return Status::InvalidArgument("gcm: bad IV size");
  }
  if (sealed.size() < kGcmTagSize) {
    return Status::Corruption("gcm: ciphertext shorter than tag");
  }
  size_t ct_len = sealed.size() - kGcmTagSize;
  ByteSpan ciphertext = sealed.subspan(0, ct_len);
  ByteSpan tag = sealed.subspan(ct_len);

  uint8_t j0[16] = {0};
  std::memcpy(j0, iv.data(), 12);
  j0[15] = 1;

  uint8_t s[16];
  Ghash(aad, ciphertext, s);
  uint8_t ek_j0[16];
  aes_.EncryptBlock(j0, ek_j0);
  uint8_t expected[16];
  for (int i = 0; i < 16; ++i) expected[i] = s[i] ^ ek_j0[i];
  if (!ConstantTimeEqual(ByteSpan(expected, 16), tag)) {
    return Status::Corruption("gcm: authentication tag mismatch");
  }

  Bytes out(ct_len);
  CtrCrypt(j0, ciphertext, out.data());
  return out;
}

}  // namespace ccf::crypto
