#include "crypto/shamir.h"

#include <set>

namespace ccf::crypto {

namespace {

// GF(2^8) with the AES polynomial x^8+x^4+x^3+x+1.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = (a & 0x80) != 0;
    a <<= 1;
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

uint8_t GfPow(uint8_t a, int e) {
  uint8_t r = 1;
  while (e > 0) {
    if (e & 1) r = GfMul(r, a);
    a = GfMul(a, a);
    e >>= 1;
  }
  return r;
}

uint8_t GfInv(uint8_t a) {
  // a^254 = a^-1 in GF(2^8).
  return GfPow(a, 254);
}

}  // namespace

Result<std::vector<Share>> ShamirSplit(ByteSpan secret, int k, int n,
                                       Drbg* drbg) {
  if (k < 1 || n < k || n > 255) {
    return Status::InvalidArgument("shamir: need 1 <= k <= n <= 255");
  }
  std::vector<Share> shares(n);
  for (int i = 0; i < n; ++i) {
    shares[i].index = static_cast<uint8_t>(i + 1);
    shares[i].data.resize(secret.size());
  }
  // Per secret byte: polynomial p(x) = s + c1 x + ... + c_{k-1} x^{k-1}.
  std::vector<uint8_t> coeffs(k);
  for (size_t byte = 0; byte < secret.size(); ++byte) {
    coeffs[0] = secret[byte];
    for (int j = 1; j < k; ++j) {
      drbg->Generate(&coeffs[j], 1);
    }
    for (int i = 0; i < n; ++i) {
      uint8_t x = shares[i].index;
      // Horner evaluation.
      uint8_t y = coeffs[k - 1];
      for (int j = k - 2; j >= 0; --j) {
        y = GfMul(y, x) ^ coeffs[j];
      }
      shares[i].data[byte] = y;
    }
  }
  return shares;
}

Result<Bytes> ShamirCombine(const std::vector<Share>& shares, int k) {
  if (k < 1 || static_cast<int>(shares.size()) < k) {
    return Status::InvalidArgument("shamir: not enough shares");
  }
  std::set<uint8_t> seen;
  for (int i = 0; i < k; ++i) {
    if (shares[i].index == 0) {
      return Status::InvalidArgument("shamir: share index 0 is invalid");
    }
    if (!seen.insert(shares[i].index).second) {
      return Status::InvalidArgument("shamir: duplicate share index");
    }
    if (shares[i].data.size() != shares[0].data.size()) {
      return Status::InvalidArgument("shamir: inconsistent share lengths");
    }
  }

  size_t len = shares[0].data.size();
  Bytes secret(len, 0);
  // Lagrange interpolation at x = 0 using the first k shares.
  for (int i = 0; i < k; ++i) {
    uint8_t xi = shares[i].index;
    // basis_i(0) = prod_{j != i} x_j / (x_j - x_i); subtraction is XOR.
    uint8_t num = 1, den = 1;
    for (int j = 0; j < k; ++j) {
      if (j == i) continue;
      num = GfMul(num, shares[j].index);
      den = GfMul(den, static_cast<uint8_t>(shares[j].index ^ xi));
    }
    uint8_t basis = GfMul(num, GfInv(den));
    for (size_t b = 0; b < len; ++b) {
      secret[b] ^= GfMul(shares[i].data[b], basis);
    }
  }
  return secret;
}

}  // namespace ccf::crypto
