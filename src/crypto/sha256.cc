#include "crypto/sha256.h"

#include <cstring>

namespace ccf::crypto {

namespace {

// FIPS 180-4 §4.2.2 round constants: first 32 bits of the fractional parts
// of the cube roots of the first 64 primes.
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

}  // namespace

void Sha256::Reset() {
  // FIPS 180-4 §5.3.3 initial hash value.
  state_[0] = 0x6a09e667;
  state_[1] = 0xbb67ae85;
  state_[2] = 0x3c6ef372;
  state_[3] = 0xa54ff53a;
  state_[4] = 0x510e527f;
  state_[5] = 0x9b05688c;
  state_[6] = 0x1f83d9ab;
  state_[7] = 0x5be0cd19;
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha256::Compress(const uint8_t* block) { CompressBlocks(block, 1); }

void Sha256::CompressBlocks(const uint8_t* data, size_t n) {
  // Hoist the chaining state into locals for the whole run so consecutive
  // blocks don't round-trip through memory.
  uint32_t s0 = state_[0], s1 = state_[1], s2 = state_[2], s3 = state_[3];
  uint32_t s4 = state_[4], s5 = state_[5], s6 = state_[6], s7 = state_[7];
  for (size_t blk = 0; blk < n; ++blk, data += 64) {
    uint32_t w[64];
    for (int i = 0; i < 16; ++i) {
      w[i] = (static_cast<uint32_t>(data[4 * i]) << 24) |
             (static_cast<uint32_t>(data[4 * i + 1]) << 16) |
             (static_cast<uint32_t>(data[4 * i + 2]) << 8) |
             static_cast<uint32_t>(data[4 * i + 3]);
    }
    for (int i = 16; i < 64; ++i) {
      uint32_t t0 = Rotr(w[i - 15], 7) ^ Rotr(w[i - 15], 18) ^ (w[i - 15] >> 3);
      uint32_t t1 = Rotr(w[i - 2], 17) ^ Rotr(w[i - 2], 19) ^ (w[i - 2] >> 10);
      w[i] = w[i - 16] + t0 + w[i - 7] + t1;
    }
    uint32_t a = s0, b = s1, c = s2, d = s3;
    uint32_t e = s4, f = s5, g = s6, h = s7;
    for (int i = 0; i < 64; ++i) {
      uint32_t x1 = Rotr(e, 6) ^ Rotr(e, 11) ^ Rotr(e, 25);
      uint32_t ch = (e & f) ^ (~e & g);
      uint32_t t1 = h + x1 + ch + kK[i] + w[i];
      uint32_t x0 = Rotr(a, 2) ^ Rotr(a, 13) ^ Rotr(a, 22);
      uint32_t maj = (a & b) ^ (a & c) ^ (b & c);
      uint32_t t2 = x0 + maj;
      h = g;
      g = f;
      f = e;
      e = d + t1;
      d = c;
      c = b;
      b = a;
      a = t1 + t2;
    }
    s0 += a;
    s1 += b;
    s2 += c;
    s3 += d;
    s4 += e;
    s5 += f;
    s6 += g;
    s7 += h;
  }
  state_[0] = s0;
  state_[1] = s1;
  state_[2] = s2;
  state_[3] = s3;
  state_[4] = s4;
  state_[5] = s5;
  state_[6] = s6;
  state_[7] = s7;
}

void Sha256::Update(ByteSpan data) {
  total_len_ += data.size();
  size_t off = 0;
  if (buf_len_ > 0) {
    size_t take = std::min(data.size(), sizeof(buf_) - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == sizeof(buf_)) {
      Compress(buf_);
      buf_len_ = 0;
    }
  }
  // Whole blocks compress directly from the caller's span; the internal
  // buffer only ever holds a partial head (above) or tail (below).
  if (size_t whole = (data.size() - off) / 64; whole > 0) {
    CompressBlocks(data.data() + off, whole);
    off += whole * 64;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Sha256Digest Sha256::Finish() {
  uint64_t bit_len = total_len_ * 8;
  uint8_t pad[72];
  size_t pad_len = (buf_len_ < 56) ? (56 - buf_len_) : (120 - buf_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
  }
  Update(ByteSpan(pad, pad_len + 8));

  Sha256Digest out;
  for (int i = 0; i < 8; ++i) {
    out[4 * i] = static_cast<uint8_t>(state_[i] >> 24);
    out[4 * i + 1] = static_cast<uint8_t>(state_[i] >> 16);
    out[4 * i + 2] = static_cast<uint8_t>(state_[i] >> 8);
    out[4 * i + 3] = static_cast<uint8_t>(state_[i]);
  }
  Reset();
  return out;
}

}  // namespace ccf::crypto
