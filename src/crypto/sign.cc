#include "crypto/sign.h"

#include <cstring>

#include "crypto/gcm.h"
#include "crypto/sha512.h"

namespace ccf::crypto {

namespace {

ec::Scalar HashToScalar(ByteSpan a, ByteSpan b, ByteSpan c) {
  Sha512 h;
  h.Update(a);
  h.Update(b);
  h.Update(c);
  Sha512Digest d = h.Finish();
  return ec::ScalarReduce(ByteSpan(d.data(), d.size()));
}

}  // namespace

KeyPair KeyPair::FromSeed(ByteSpan seed) {
  KeyPair kp;
  Bytes s(seed.begin(), seed.end());
  s.resize(32, 0);
  std::memcpy(kp.seed_.data(), s.data(), 32);

  // Expand the seed into the signing scalar and the nonce key, Ed25519-style.
  Sha512Digest expanded = Sha512::Hash(ByteSpan(kp.seed_.data(), 32));
  kp.secret_ = ec::ScalarReduce(ByteSpan(expanded.data(), 32));
  std::memcpy(kp.nonce_key_.data(), expanded.data() + 32, 32);

  ec::Point pub = ec::ScalarMultBase(kp.secret_);
  kp.public_key_ = ec::Encode(pub);
  return kp;
}

KeyPair KeyPair::Generate(Drbg* drbg) {
  Bytes seed = drbg->Generate(32);
  return FromSeed(seed);
}

SignatureBytes KeyPair::Sign(ByteSpan msg) const {
  // Deterministic nonce r = H(nonce_key || msg) mod l.
  ec::Scalar r = HashToScalar(ByteSpan(nonce_key_.data(), 32), msg, {});
  ec::Point big_r = ec::ScalarMultBase(r);
  auto r_enc = ec::Encode(big_r);

  // Challenge k = H(enc(R) || enc(A) || msg) mod l.
  ec::Scalar k = HashToScalar(ByteSpan(r_enc.data(), 32),
                              ByteSpan(public_key_.data(), 32), msg);

  // s = r + k * secret mod l.
  ec::Scalar s = ec::ScalarMulAdd(k, secret_, r);

  SignatureBytes sig{};
  std::memcpy(sig.data(), r_enc.data(), 32);
  std::memcpy(sig.data() + 32, s.data(), 32);
  return sig;
}

bool Verify(ByteSpan pub, ByteSpan msg, ByteSpan sig) {
  if (pub.size() != kPublicKeySize || sig.size() != kSignatureSize) {
    return false;
  }
  auto r_result = ec::Decode(sig.subspan(0, 32));
  if (!r_result.ok()) return false;
  auto a_result = ec::Decode(pub);
  if (!a_result.ok()) return false;

  ec::Scalar s{};
  std::memcpy(s.data(), sig.data() + 32, 32);
  if (!ec::ScalarIsCanonical(s)) return false;

  ec::Scalar k = HashToScalar(sig.subspan(0, 32), pub, msg);

  // Check s*B == R + k*A.
  ec::Point lhs = ec::ScalarMultBase(s);
  ec::Point rhs = ec::Add(r_result.value(), ec::ScalarMult(k, a_result.value()));
  return ec::PointEqual(lhs, rhs);
}

bool VerifyBatch(std::span<const BatchVerifyItem> items, Drbg* drbg,
                 std::vector<bool>* ok_out) {
  const size_t n = items.size();
  if (ok_out != nullptr) {
    ok_out->assign(n, true);
  }
  if (n == 0) return true;

  // Decode phase. Items that fail decoding/canonicality checks can never
  // verify; they are marked failed up front and excluded from the combined
  // equation so one malformed signature doesn't force the whole batch onto
  // the serial fallback path.
  struct Decoded {
    size_t index;
    ec::Point r;
    ec::Point a;
    ec::Scalar s;
    ec::Scalar k;
  };
  std::vector<Decoded> valid;
  valid.reserve(n);
  bool all_ok = true;
  for (size_t i = 0; i < n; ++i) {
    const BatchVerifyItem& it = items[i];
    bool ok = it.pub.size() == kPublicKeySize && it.sig.size() == kSignatureSize;
    Decoded d;
    d.index = i;
    if (ok) {
      auto r_result = ec::Decode(it.sig.subspan(0, 32));
      auto a_result = ec::Decode(it.pub);
      std::memcpy(d.s.data(), it.sig.data() + 32, 32);
      ok = r_result.ok() && a_result.ok() && ec::ScalarIsCanonical(d.s);
      if (ok) {
        d.r = r_result.value();
        d.a = a_result.value();
        d.k = HashToScalar(it.sig.subspan(0, 32), it.pub, it.msg);
        valid.push_back(d);
      }
    }
    if (!ok) {
      all_ok = false;
      if (ok_out != nullptr) (*ok_out)[i] = false;
    }
  }
  if (valid.empty()) return all_ok;

  // Combined equation with fresh random 128-bit combiners:
  //   S*B + sum z_i*(-R_i) + sum (z_i*k_i)*(-A_i) == identity,
  // where S = sum z_i*s_i mod l.
  const ec::Scalar kZero{};
  std::vector<ec::Scalar> scalars;
  std::vector<ec::Point> points;
  scalars.reserve(2 * valid.size() + 1);
  points.reserve(2 * valid.size() + 1);
  ec::Scalar sum_zs = kZero;
  scalars.push_back(kZero);  // placeholder for S
  points.push_back(ec::BasePoint());
  for (const Decoded& d : valid) {
    Bytes zb = drbg->Generate(16);
    ec::Scalar z{};
    std::memcpy(z.data(), zb.data(), 16);
    if (ec::ScalarIsZero(z)) z[0] = 1;
    sum_zs = ec::ScalarMulAdd(z, d.s, sum_zs);
    scalars.push_back(z);
    points.push_back(ec::Negate(d.r));
    scalars.push_back(ec::ScalarMulAdd(z, d.k, kZero));
    points.push_back(ec::Negate(d.a));
  }
  scalars[0] = sum_zs;

  if (ec::IsIdentity(ec::MultiScalarMult(scalars, points))) {
    return all_ok;
  }

  // The combined check failed: at least one signature is bad. Fall back to
  // per-signature verification to pinpoint which.
  for (const Decoded& d : valid) {
    const BatchVerifyItem& it = items[d.index];
    if (!Verify(it.pub, it.msg, it.sig)) {
      all_ok = false;
      if (ok_out != nullptr) (*ok_out)[d.index] = false;
    }
  }
  return all_ok;
}

Result<Bytes> KeyPair::DeriveSharedSecret(ByteSpan peer_public) const {
  ASSIGN_OR_RETURN(ec::Point peer, ec::Decode(peer_public));
  ec::Point shared = ec::ScalarMult(secret_, peer);
  if (ec::IsIdentity(shared)) {
    return Status::InvalidArgument("dh: degenerate shared point");
  }
  auto enc = ec::Encode(shared);
  return Hkdf(ByteSpan(enc.data(), enc.size()), ToBytes("ccf.dh.v1"), {}, 32);
}

Result<Bytes> EciesSeal(ByteSpan recipient_pub, ByteSpan plaintext,
                        Drbg* drbg) {
  KeyPair ephemeral = KeyPair::Generate(drbg);
  ASSIGN_OR_RETURN(Bytes key, ephemeral.DeriveSharedSecret(recipient_pub));
  AesGcm gcm(key);
  // A fresh key is derived per message (fresh ephemeral), so a zero IV is
  // safe here.
  uint8_t iv[kGcmIvSize] = {0};
  Bytes sealed = gcm.Seal(ByteSpan(iv, sizeof(iv)), plaintext,
                          ByteSpan(ephemeral.public_key()));
  Bytes out(ephemeral.public_key().begin(), ephemeral.public_key().end());
  Append(&out, sealed);
  return out;
}

Result<Bytes> KeyPair::EciesOpen(ByteSpan sealed) const {
  if (sealed.size() < kPublicKeySize + kGcmTagSize) {
    return Status::Corruption("ecies: blob too short");
  }
  ByteSpan eph_pub = sealed.subspan(0, kPublicKeySize);
  ASSIGN_OR_RETURN(Bytes key, DeriveSharedSecret(eph_pub));
  AesGcm gcm(key);
  uint8_t iv[kGcmIvSize] = {0};
  return gcm.Open(ByteSpan(iv, sizeof(iv)), sealed.subspan(kPublicKeySize),
                  eph_pub);
}

}  // namespace ccf::crypto
