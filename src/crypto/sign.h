// Schnorr signatures over edwards25519 (Ed25519-shaped), ECDH key agreement,
// and ECIES public-key encryption.
//
// These stand in for the paper's Ed25519/ECDSA service & node identities
// (Table 1), Diffie-Hellman node-to-node channel keys (§7), and the RSA-OAEP
// encryption of recovery shares to members' public keys (§5.2).

#ifndef CCF_CRYPTO_SIGN_H_
#define CCF_CRYPTO_SIGN_H_

#include <array>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/ec25519.h"
#include "crypto/hmac.h"

namespace ccf::crypto {

inline constexpr size_t kPublicKeySize = ec::kPointSize;
inline constexpr size_t kSignatureSize = 64;  // enc(R) || s

using PublicKeyBytes = std::array<uint8_t, kPublicKeySize>;
using SignatureBytes = std::array<uint8_t, kSignatureSize>;

// Verifies `sig` over `msg` under `pub`. Statelessly usable by anyone
// holding the 32-byte public key.
bool Verify(ByteSpan pub, ByteSpan msg, ByteSpan sig);

// A signing/DH key pair. Derives deterministically from a 32-byte seed so
// that simulated enclaves are reproducible.
class KeyPair {
 public:
  // Generates from a DRBG.
  static KeyPair Generate(Drbg* drbg);
  // Derives from a fixed seed (deterministic; used by tests/simulation).
  static KeyPair FromSeed(ByteSpan seed);

  const PublicKeyBytes& public_key() const { return public_key_; }

  // Schnorr signature: enc(R) || s, 64 bytes. Deterministic nonce derived
  // from the secret and the message.
  SignatureBytes Sign(ByteSpan msg) const;

  // ECDH: shared secret = HKDF(enc(scalar * peer_point)). 32 bytes.
  Result<Bytes> DeriveSharedSecret(ByteSpan peer_public) const;

  // ECIES decryption of a blob produced by EciesSeal against our key.
  Result<Bytes> EciesOpen(ByteSpan sealed) const;

  // Serialization of the secret seed (for tests / local persistence only;
  // real CCF keys never leave the enclave).
  const std::array<uint8_t, 32>& seed() const { return seed_; }

 private:
  KeyPair() = default;

  std::array<uint8_t, 32> seed_{};
  ec::Scalar secret_{};
  std::array<uint8_t, 32> nonce_key_{};
  PublicKeyBytes public_key_{};
};

// ECIES: encrypts `plaintext` to the holder of `recipient_pub`.
// Output: enc(ephemeral_pub) || AES-256-GCM(iv=0, plaintext).
Result<Bytes> EciesSeal(ByteSpan recipient_pub, ByteSpan plaintext,
                        Drbg* drbg);

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_SIGN_H_
