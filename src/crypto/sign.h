// Schnorr signatures over edwards25519 (Ed25519-shaped), ECDH key agreement,
// and ECIES public-key encryption.
//
// These stand in for the paper's Ed25519/ECDSA service & node identities
// (Table 1), Diffie-Hellman node-to-node channel keys (§7), and the RSA-OAEP
// encryption of recovery shares to members' public keys (§5.2).

#ifndef CCF_CRYPTO_SIGN_H_
#define CCF_CRYPTO_SIGN_H_

#include <array>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/ec25519.h"
#include "crypto/hmac.h"

namespace ccf::crypto {

inline constexpr size_t kPublicKeySize = ec::kPointSize;
inline constexpr size_t kSignatureSize = 64;  // enc(R) || s

using PublicKeyBytes = std::array<uint8_t, kPublicKeySize>;
using SignatureBytes = std::array<uint8_t, kSignatureSize>;

// Verifies `sig` over `msg` under `pub`. Statelessly usable by anyone
// holding the 32-byte public key.
bool Verify(ByteSpan pub, ByteSpan msg, ByteSpan sig);

// One signature to be checked by VerifyBatch. Spans must stay valid for the
// duration of the call.
struct BatchVerifyItem {
  ByteSpan pub;  // 32-byte public key
  ByteSpan msg;
  ByteSpan sig;  // 64-byte signature
};

// Random-linear-combination batch verification: instead of k independent
// `s_i*B == R_i + k_i*A_i` checks, draws random 128-bit combiner scalars
// z_i from `drbg` and checks the single multi-scalar equation
//   (sum z_i*s_i)*B + sum z_i*(-R_i) + sum (z_i*k_i)*(-A_i) == identity,
// evaluated with ec::MultiScalarMult. A forgery passes with probability
// <= 2^-128 over the combiners. Pass a deterministically seeded DRBG in
// simulation so replays draw identical combiners.
//
// Returns true iff every signature verifies. If `ok_out` is non-null it is
// resized to items.size() with the per-item verdict; when the combined
// equation fails, the batch falls back to per-signature verification to
// pinpoint the culprits (so the fast path is only fast when everything is
// honest -- the common case).
bool VerifyBatch(std::span<const BatchVerifyItem> items, Drbg* drbg,
                 std::vector<bool>* ok_out = nullptr);

// A signing/DH key pair. Derives deterministically from a 32-byte seed so
// that simulated enclaves are reproducible.
class KeyPair {
 public:
  // Generates from a DRBG.
  static KeyPair Generate(Drbg* drbg);
  // Derives from a fixed seed (deterministic; used by tests/simulation).
  static KeyPair FromSeed(ByteSpan seed);

  const PublicKeyBytes& public_key() const { return public_key_; }

  // Schnorr signature: enc(R) || s, 64 bytes. Deterministic nonce derived
  // from the secret and the message.
  SignatureBytes Sign(ByteSpan msg) const;

  // ECDH: shared secret = HKDF(enc(scalar * peer_point)). 32 bytes.
  Result<Bytes> DeriveSharedSecret(ByteSpan peer_public) const;

  // ECIES decryption of a blob produced by EciesSeal against our key.
  Result<Bytes> EciesOpen(ByteSpan sealed) const;

  // Serialization of the secret seed (for tests / local persistence only;
  // real CCF keys never leave the enclave).
  const std::array<uint8_t, 32>& seed() const { return seed_; }

 private:
  KeyPair() = default;

  std::array<uint8_t, 32> seed_{};
  ec::Scalar secret_{};
  std::array<uint8_t, 32> nonce_key_{};
  PublicKeyBytes public_key_{};
};

// ECIES: encrypts `plaintext` to the holder of `recipient_pub`.
// Output: enc(ephemeral_pub) || AES-256-GCM(iv=0, plaintext).
Result<Bytes> EciesSeal(ByteSpan recipient_pub, ByteSpan plaintext,
                        Drbg* drbg);

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_SIGN_H_
