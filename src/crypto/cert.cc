#include "crypto/cert.h"

#include <cstring>

#include "common/buffer.h"
#include "common/hex.h"

namespace ccf::crypto {

Bytes Certificate::TbsBytes() const {
  BufWriter w;
  w.Str(subject);
  w.Str(role);
  w.Raw(ByteSpan(public_key.data(), public_key.size()));
  w.Str(issuer);
  w.U64(valid_from);
  w.U64(valid_to);
  return w.Take();
}

Bytes Certificate::Serialize() const {
  BufWriter w;
  w.Blob(TbsBytes());
  w.Raw(ByteSpan(signature.data(), signature.size()));
  return w.Take();
}

Result<Certificate> Certificate::Deserialize(ByteSpan data) {
  BufReader r(data);
  ASSIGN_OR_RETURN(Bytes tbs, r.Blob());
  ASSIGN_OR_RETURN(Bytes sig, r.Raw(kSignatureSize));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("cert: trailing bytes");
  }

  Certificate cert;
  BufReader tr(tbs);
  ASSIGN_OR_RETURN(cert.subject, tr.Str());
  ASSIGN_OR_RETURN(cert.role, tr.Str());
  ASSIGN_OR_RETURN(Bytes pk, tr.Raw(kPublicKeySize));
  std::memcpy(cert.public_key.data(), pk.data(), kPublicKeySize);
  ASSIGN_OR_RETURN(cert.issuer, tr.Str());
  ASSIGN_OR_RETURN(cert.valid_from, tr.U64());
  ASSIGN_OR_RETURN(cert.valid_to, tr.U64());
  if (!tr.AtEnd()) {
    return Status::InvalidArgument("cert: trailing TBS bytes");
  }
  std::memcpy(cert.signature.data(), sig.data(), kSignatureSize);
  return cert;
}

std::string Certificate::Fingerprint() const {
  Sha256Digest d = Sha256::Hash(Serialize());
  return HexEncode(ByteSpan(d.data(), d.size()));
}

Certificate IssueCertificate(const std::string& subject,
                             const std::string& role,
                             const PublicKeyBytes& subject_key,
                             const KeyPair& issuer_key,
                             const std::string& issuer_subject,
                             uint64_t valid_from, uint64_t valid_to) {
  Certificate cert;
  cert.subject = subject;
  cert.role = role;
  cert.public_key = subject_key;
  cert.issuer = issuer_subject;
  cert.valid_from = valid_from;
  cert.valid_to = valid_to;
  cert.signature = issuer_key.Sign(cert.TbsBytes());
  return cert;
}

Status VerifyCertificate(const Certificate& cert, ByteSpan issuer_pub,
                         uint64_t now) {
  if (now < cert.valid_from || now >= cert.valid_to) {
    return Status::PermissionDenied("cert: outside validity window");
  }
  if (!Verify(issuer_pub, cert.TbsBytes(),
              ByteSpan(cert.signature.data(), cert.signature.size()))) {
    return Status::PermissionDenied("cert: bad signature");
  }
  return Status::Ok();
}

}  // namespace ccf::crypto
