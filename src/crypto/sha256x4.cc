// 4-way interleaved multi-buffer SHA-256 (see sha256.h).
//
// Layout: every working variable is a 4-lane array indexed [lane], and every
// round body is a `for (lane)` loop over plain uint32_t ops. The four
// compression chains are independent, so the CPU can overlap their serial
// a..h dependency chains, and with SSE2/NEON the compiler vectorizes each
// lane loop into one 4x32-bit operation. No intrinsics, no platform gates.

#include <cstring>

#include "crypto/sha256.h"

namespace ccf::crypto {

namespace {

// FIPS 180-4 §4.2.2 round constants (same table as sha256.cc).
constexpr uint32_t kK[64] = {
    0x428a2f98, 0x71374491, 0xb5c0fbcf, 0xe9b5dba5, 0x3956c25b, 0x59f111f1,
    0x923f82a4, 0xab1c5ed5, 0xd807aa98, 0x12835b01, 0x243185be, 0x550c7dc3,
    0x72be5d74, 0x80deb1fe, 0x9bdc06a7, 0xc19bf174, 0xe49b69c1, 0xefbe4786,
    0x0fc19dc6, 0x240ca1cc, 0x2de92c6f, 0x4a7484aa, 0x5cb0a9dc, 0x76f988da,
    0x983e5152, 0xa831c66d, 0xb00327c8, 0xbf597fc7, 0xc6e00bf3, 0xd5a79147,
    0x06ca6351, 0x14292967, 0x27b70a85, 0x2e1b2138, 0x4d2c6dfc, 0x53380d13,
    0x650a7354, 0x766a0abb, 0x81c2c92e, 0x92722c85, 0xa2bfe8a1, 0xa81a664b,
    0xc24b8b70, 0xc76c51a3, 0xd192e819, 0xd6990624, 0xf40e3585, 0x106aa070,
    0x19a4c116, 0x1e376c08, 0x2748774c, 0x34b0bcb5, 0x391c0cb3, 0x4ed8aa4a,
    0x5b9cca4f, 0x682e6ff3, 0x748f82ee, 0x78a5636f, 0x84c87814, 0x8cc70208,
    0x90befffa, 0xa4506ceb, 0xbef9a3f7, 0xc67178f2,
};

inline uint32_t Rotr(uint32_t x, int n) { return (x >> n) | (x << (32 - n)); }

void Compress4(uint32_t state[8][4], const uint8_t* const blocks[4]) {
  uint32_t w[64][4];
  for (int i = 0; i < 16; ++i) {
    for (int l = 0; l < 4; ++l) {
      const uint8_t* b = blocks[l] + 4 * i;
      w[i][l] = (static_cast<uint32_t>(b[0]) << 24) |
                (static_cast<uint32_t>(b[1]) << 16) |
                (static_cast<uint32_t>(b[2]) << 8) | static_cast<uint32_t>(b[3]);
    }
  }
  for (int i = 16; i < 64; ++i) {
    for (int l = 0; l < 4; ++l) {
      uint32_t s0 =
          Rotr(w[i - 15][l], 7) ^ Rotr(w[i - 15][l], 18) ^ (w[i - 15][l] >> 3);
      uint32_t s1 =
          Rotr(w[i - 2][l], 17) ^ Rotr(w[i - 2][l], 19) ^ (w[i - 2][l] >> 10);
      w[i][l] = w[i - 16][l] + s0 + w[i - 7][l] + s1;
    }
  }

  uint32_t a[4], b[4], c[4], d[4], e[4], f[4], g[4], h[4];
  for (int l = 0; l < 4; ++l) {
    a[l] = state[0][l];
    b[l] = state[1][l];
    c[l] = state[2][l];
    d[l] = state[3][l];
    e[l] = state[4][l];
    f[l] = state[5][l];
    g[l] = state[6][l];
    h[l] = state[7][l];
  }

  for (int i = 0; i < 64; ++i) {
    for (int l = 0; l < 4; ++l) {
      uint32_t s1 = Rotr(e[l], 6) ^ Rotr(e[l], 11) ^ Rotr(e[l], 25);
      uint32_t ch = (e[l] & f[l]) ^ (~e[l] & g[l]);
      uint32_t t1 = h[l] + s1 + ch + kK[i] + w[i][l];
      uint32_t s0 = Rotr(a[l], 2) ^ Rotr(a[l], 13) ^ Rotr(a[l], 22);
      uint32_t maj = (a[l] & b[l]) ^ (a[l] & c[l]) ^ (b[l] & c[l]);
      uint32_t t2 = s0 + maj;
      h[l] = g[l];
      g[l] = f[l];
      f[l] = e[l];
      e[l] = d[l] + t1;
      d[l] = c[l];
      c[l] = b[l];
      b[l] = a[l];
      a[l] = t1 + t2;
    }
  }

  for (int l = 0; l < 4; ++l) {
    state[0][l] += a[l];
    state[1][l] += b[l];
    state[2][l] += c[l];
    state[3][l] += d[l];
    state[4][l] += e[l];
    state[5][l] += f[l];
    state[6][l] += g[l];
    state[7][l] += h[l];
  }
}

}  // namespace

void Sha256x4(const uint8_t* const msgs[4], size_t len, Sha256Digest out[4]) {
  // FIPS 180-4 §5.3.3 initial hash value, broadcast to all four lanes.
  static constexpr uint32_t kIv[8] = {0x6a09e667, 0xbb67ae85, 0x3c6ef372,
                                      0xa54ff53a, 0x510e527f, 0x9b05688c,
                                      0x1f83d9ab, 0x5be0cd19};
  uint32_t state[8][4];
  for (int i = 0; i < 8; ++i) {
    for (int l = 0; l < 4; ++l) state[i][l] = kIv[i];
  }

  size_t whole = len / 64;
  const uint8_t* blocks[4];
  for (size_t blk = 0; blk < whole; ++blk) {
    for (int l = 0; l < 4; ++l) blocks[l] = msgs[l] + 64 * blk;
    Compress4(state, blocks);
  }

  // All messages share a length, so the padding layout is identical per
  // lane: remainder || 0x80 || zeros || 64-bit big-endian bit length.
  size_t rem = len % 64;
  size_t tail_len = (rem < 56) ? 64 : 128;
  uint8_t tail[4][128];
  uint64_t bit_len = static_cast<uint64_t>(len) * 8;
  for (int l = 0; l < 4; ++l) {
    std::memcpy(tail[l], msgs[l] + 64 * whole, rem);
    tail[l][rem] = 0x80;
    std::memset(tail[l] + rem + 1, 0, tail_len - rem - 1 - 8);
    for (int i = 0; i < 8; ++i) {
      tail[l][tail_len - 8 + i] = static_cast<uint8_t>(bit_len >> (56 - 8 * i));
    }
  }
  for (size_t blk = 0; blk < tail_len / 64; ++blk) {
    for (int l = 0; l < 4; ++l) blocks[l] = tail[l] + 64 * blk;
    Compress4(state, blocks);
  }

  for (int l = 0; l < 4; ++l) {
    for (int i = 0; i < 8; ++i) {
      out[l][4 * i] = static_cast<uint8_t>(state[i][l] >> 24);
      out[l][4 * i + 1] = static_cast<uint8_t>(state[i][l] >> 16);
      out[l][4 * i + 2] = static_cast<uint8_t>(state[i][l] >> 8);
      out[l][4 * i + 3] = static_cast<uint8_t>(state[i][l]);
    }
  }
}

}  // namespace ccf::crypto
