// edwards25519 group arithmetic, implemented from scratch.
//
// Field elements are mod p = 2^255 - 19 with 51-bit limbs; points use
// extended twisted-Edwards coordinates (a = -1). All curve constants that
// admit it (d, sqrt(-1), the base point) are *derived* at start-up from
// their defining equations rather than transcribed, and validated by unit
// tests (group laws, order of the base point).
//
// This module underlies Schnorr signatures (sign.h), ECDH channel keys, and
// ECIES recovery-share encryption. The implementation favours clarity and
// testability over speed and is not constant-time; a production deployment
// would swap in a hardened implementation behind the same interface.

#ifndef CCF_CRYPTO_EC25519_H_
#define CCF_CRYPTO_EC25519_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf::crypto::ec {

// --------------------------------------------------------------- Field

// Field element mod 2^255-19, five 51-bit limbs, little-endian.
struct Fe {
  uint64_t v[5] = {0, 0, 0, 0, 0};
};

Fe FeZero();
Fe FeOne();
Fe FeFromU64(uint64_t x);
Fe FeAdd(const Fe& a, const Fe& b);
Fe FeSub(const Fe& a, const Fe& b);
Fe FeMul(const Fe& a, const Fe& b);
Fe FeSquare(const Fe& a);
Fe FeNeg(const Fe& a);
Fe FeInvert(const Fe& a);        // a^(p-2); FeInvert(0) == 0.
bool FeIsZero(const Fe& a);
bool FeEqual(const Fe& a, const Fe& b);
bool FeIsNegative(const Fe& a);  // canonical value is odd.

// 32-byte little-endian encodings (canonical on output).
std::array<uint8_t, 32> FeToBytes(const Fe& a);
Fe FeFromBytes(const uint8_t bytes[32]);  // high bit ignored.

// Square root in the field: returns false if `a` is a non-residue.
bool FeSqrt(const Fe& a, Fe* out);

// --------------------------------------------------------------- Scalars

inline constexpr size_t kScalarSize = 32;
// Scalar mod the group order l = 2^252 + 27742317777372353535851937790883648493,
// canonical 32-byte little-endian.
using Scalar = std::array<uint8_t, kScalarSize>;

// Reduces an arbitrary-length big-endian-agnostic (little-endian) byte
// string mod l.
Scalar ScalarReduce(ByteSpan bytes_le);
// (a * b + c) mod l.
Scalar ScalarMulAdd(const Scalar& a, const Scalar& b, const Scalar& c);
bool ScalarIsCanonical(const Scalar& s);
bool ScalarIsZero(const Scalar& s);

// --------------------------------------------------------------- Points

// Extended coordinates (X:Y:Z:T) with x = X/Z, y = Y/Z, T = XY/Z.
struct Point {
  Fe x, y, z, t;
};

Point Identity();
const Point& BasePoint();
Point Add(const Point& p, const Point& q);
Point Double(const Point& p);
Point Negate(const Point& p);
Point ScalarMult(const Scalar& s, const Point& p);
Point ScalarMultBase(const Scalar& s);
// sum_i scalars[i] * points[i] via Straus' interleaved windowed method
// (4-bit windows, one shared doubling chain). Far cheaper than summing
// individual ScalarMult results once there are a few points; this is the
// engine behind crypto::VerifyBatch. Requires equal-length inputs.
Point MultiScalarMult(std::span<const Scalar> scalars,
                      std::span<const Point> points);
bool PointEqual(const Point& p, const Point& q);
bool IsIdentity(const Point& p);
// Membership of the full curve (not subgroup-checked).
bool IsOnCurve(const Point& p);

inline constexpr size_t kPointSize = 32;
// Compressed encoding: y with the sign of x in bit 255.
std::array<uint8_t, kPointSize> Encode(const Point& p);
Result<Point> Decode(ByteSpan encoded);

// Curve constant d = -121665/121666 (derived at start-up).
const Fe& ConstD();

}  // namespace ccf::crypto::ec

#endif  // CCF_CRYPTO_EC25519_H_
