// AES-256-GCM authenticated encryption (NIST SP 800-38D).
//
// This is the cipher protecting private-map updates on the ledger (the
// "ledger secret", paper Table 1), node-to-node channel payloads, STLS
// session records, and the simulated SGX memory-encryption boundary.

#ifndef CCF_CRYPTO_GCM_H_
#define CCF_CRYPTO_GCM_H_

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/aes.h"

namespace ccf::crypto {

inline constexpr size_t kGcmIvSize = 12;
inline constexpr size_t kGcmTagSize = 16;

// AES-256-GCM with a fixed key. Thread-compatible (const methods only
// after construction).
class AesGcm {
 public:
  explicit AesGcm(ByteSpan key);

  // Encrypts `plaintext` with `iv` (12 bytes) and additional authenticated
  // data `aad`. Output is ciphertext || 16-byte tag.
  Bytes Seal(ByteSpan iv, ByteSpan plaintext, ByteSpan aad) const;

  // Reverses Seal. Fails with CORRUPTION if the tag does not verify.
  Result<Bytes> Open(ByteSpan iv, ByteSpan sealed, ByteSpan aad) const;

 private:
  void Ghash(ByteSpan aad, ByteSpan ciphertext, uint8_t out[16]) const;
  void CtrCrypt(const uint8_t j0[16], ByteSpan in, uint8_t* out) const;

  void GMultH(uint64_t* hi, uint64_t* lo) const;

  Aes256 aes_;
  uint8_t h_[16];  // GHASH subkey: E(K, 0^128).
  // Shoup 4-bit tables for GHASH: ht_[j] = (j << 124-bit position) * H,
  // derived at key setup from the bit-serial multiply; r4_ reduces the 4
  // bits shifted out by a *x^4 step.
  uint64_t ht_hi_[16];
  uint64_t ht_lo_[16];
  uint64_t r4_[16];
};

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_GCM_H_
