#include "crypto/aes.h"

#include <cassert>
#include <cstring>

namespace ccf::crypto {

namespace {

// GF(2^8) multiplication with the AES reduction polynomial x^8+x^4+x^3+x+1.
uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    bool hi = (a & 0x80) != 0;
    a <<= 1;
    if (hi) a ^= 0x1b;
    b >>= 1;
  }
  return p;
}

struct SBoxes {
  uint8_t fwd[256];
  uint8_t inv[256];
  // T-tables for the encryption rounds: te[0][x] packs the MixColumns
  // column (2s, s, s, 3s) for s = S(x); te[1..3] are byte rotations.
  uint32_t te[4][256];
};

// FIPS 197 §5.1.1: S-box = affine transform of the multiplicative inverse.
SBoxes BuildSBoxes() {
  SBoxes s{};
  // Build inverses via exhaustive product search (256^2 at start-up).
  uint8_t inverse[256] = {0};
  for (int a = 1; a < 256; ++a) {
    for (int b = 1; b < 256; ++b) {
      if (GfMul(static_cast<uint8_t>(a), static_cast<uint8_t>(b)) == 1) {
        inverse[a] = static_cast<uint8_t>(b);
        break;
      }
    }
  }
  for (int x = 0; x < 256; ++x) {
    uint8_t b = inverse[x];
    uint8_t y = 0;
    for (int i = 0; i < 8; ++i) {
      uint8_t bit = static_cast<uint8_t>(
          ((b >> i) & 1) ^ ((b >> ((i + 4) % 8)) & 1) ^
          ((b >> ((i + 5) % 8)) & 1) ^ ((b >> ((i + 6) % 8)) & 1) ^
          ((b >> ((i + 7) % 8)) & 1) ^ ((0x63 >> i) & 1));
      y |= static_cast<uint8_t>(bit << i);
    }
    s.fwd[x] = y;
    s.inv[y] = static_cast<uint8_t>(x);
  }
  for (int x = 0; x < 256; ++x) {
    uint8_t sb = s.fwd[x];
    uint32_t t = (static_cast<uint32_t>(GfMul(sb, 2)) << 24) |
                 (static_cast<uint32_t>(sb) << 16) |
                 (static_cast<uint32_t>(sb) << 8) |
                 static_cast<uint32_t>(GfMul(sb, 3));
    s.te[0][x] = t;
    s.te[1][x] = (t >> 8) | (t << 24);
    s.te[2][x] = (t >> 16) | (t << 16);
    s.te[3][x] = (t >> 24) | (t << 8);
  }
  return s;
}

const SBoxes& GetSBoxes() {
  static const SBoxes s = BuildSBoxes();
  return s;
}

}  // namespace

Aes256::Aes256(ByteSpan key) {
  assert(key.size() == kAes256KeySize);
  const SBoxes& sb = GetSBoxes();

  constexpr int kNk = 8;          // 256-bit key = 8 words.
  constexpr int kNw = 4 * (kRounds + 1);  // 60 words of round key.
  uint32_t w[kNw];
  for (int i = 0; i < kNk; ++i) {
    w[i] = (static_cast<uint32_t>(key[4 * i]) << 24) |
           (static_cast<uint32_t>(key[4 * i + 1]) << 16) |
           (static_cast<uint32_t>(key[4 * i + 2]) << 8) |
           static_cast<uint32_t>(key[4 * i + 3]);
  }
  auto sub_word = [&](uint32_t x) {
    return (static_cast<uint32_t>(sb.fwd[(x >> 24) & 0xFF]) << 24) |
           (static_cast<uint32_t>(sb.fwd[(x >> 16) & 0xFF]) << 16) |
           (static_cast<uint32_t>(sb.fwd[(x >> 8) & 0xFF]) << 8) |
           static_cast<uint32_t>(sb.fwd[x & 0xFF]);
  };
  uint8_t rcon = 0x01;
  for (int i = kNk; i < kNw; ++i) {
    uint32_t temp = w[i - 1];
    if (i % kNk == 0) {
      temp = sub_word((temp << 8) | (temp >> 24)) ^
             (static_cast<uint32_t>(rcon) << 24);
      rcon = GfMul(rcon, 2);
    } else if (i % kNk == 4) {
      temp = sub_word(temp);
    }
    w[i] = w[i - kNk] ^ temp;
  }
  for (int i = 0; i < kNw; ++i) {
    round_keys_[4 * i] = static_cast<uint8_t>(w[i] >> 24);
    round_keys_[4 * i + 1] = static_cast<uint8_t>(w[i] >> 16);
    round_keys_[4 * i + 2] = static_cast<uint8_t>(w[i] >> 8);
    round_keys_[4 * i + 3] = static_cast<uint8_t>(w[i]);
  }
}

void Aes256::EncryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  // T-table implementation: each round is 16 table lookups and XORs.
  const SBoxes& sb = GetSBoxes();
  auto load_be = [](const uint8_t* p) {
    return (static_cast<uint32_t>(p[0]) << 24) |
           (static_cast<uint32_t>(p[1]) << 16) |
           (static_cast<uint32_t>(p[2]) << 8) | static_cast<uint32_t>(p[3]);
  };
  auto rk = [&](int round, int col) {
    return load_be(round_keys_ + 16 * round + 4 * col);
  };

  uint32_t c0 = load_be(in) ^ rk(0, 0);
  uint32_t c1 = load_be(in + 4) ^ rk(0, 1);
  uint32_t c2 = load_be(in + 8) ^ rk(0, 2);
  uint32_t c3 = load_be(in + 12) ^ rk(0, 3);

  for (int round = 1; round < kRounds; ++round) {
    uint32_t n0 = sb.te[0][(c0 >> 24) & 0xff] ^ sb.te[1][(c1 >> 16) & 0xff] ^
                  sb.te[2][(c2 >> 8) & 0xff] ^ sb.te[3][c3 & 0xff] ^
                  rk(round, 0);
    uint32_t n1 = sb.te[0][(c1 >> 24) & 0xff] ^ sb.te[1][(c2 >> 16) & 0xff] ^
                  sb.te[2][(c3 >> 8) & 0xff] ^ sb.te[3][c0 & 0xff] ^
                  rk(round, 1);
    uint32_t n2 = sb.te[0][(c2 >> 24) & 0xff] ^ sb.te[1][(c3 >> 16) & 0xff] ^
                  sb.te[2][(c0 >> 8) & 0xff] ^ sb.te[3][c1 & 0xff] ^
                  rk(round, 2);
    uint32_t n3 = sb.te[0][(c3 >> 24) & 0xff] ^ sb.te[1][(c0 >> 16) & 0xff] ^
                  sb.te[2][(c1 >> 8) & 0xff] ^ sb.te[3][c2 & 0xff] ^
                  rk(round, 3);
    c0 = n0;
    c1 = n1;
    c2 = n2;
    c3 = n3;
  }

  // Final round: SubBytes + ShiftRows + AddRoundKey, no MixColumns.
  auto final_col = [&](uint32_t a, uint32_t b, uint32_t c, uint32_t d,
                       int col) {
    uint32_t v = (static_cast<uint32_t>(sb.fwd[(a >> 24) & 0xff]) << 24) |
                 (static_cast<uint32_t>(sb.fwd[(b >> 16) & 0xff]) << 16) |
                 (static_cast<uint32_t>(sb.fwd[(c >> 8) & 0xff]) << 8) |
                 static_cast<uint32_t>(sb.fwd[d & 0xff]);
    return v ^ rk(kRounds, col);
  };
  uint32_t o0 = final_col(c0, c1, c2, c3, 0);
  uint32_t o1 = final_col(c1, c2, c3, c0, 1);
  uint32_t o2 = final_col(c2, c3, c0, c1, 2);
  uint32_t o3 = final_col(c3, c0, c1, c2, 3);
  auto store_be = [](uint32_t v, uint8_t* p) {
    p[0] = static_cast<uint8_t>(v >> 24);
    p[1] = static_cast<uint8_t>(v >> 16);
    p[2] = static_cast<uint8_t>(v >> 8);
    p[3] = static_cast<uint8_t>(v);
  };
  store_be(o0, out);
  store_be(o1, out + 4);
  store_be(o2, out + 8);
  store_be(o3, out + 12);
}

void Aes256::DecryptBlock(const uint8_t in[16], uint8_t out[16]) const {
  const SBoxes& sb = GetSBoxes();
  uint8_t s[16];
  for (int i = 0; i < 16; ++i) s[i] = in[i] ^ round_keys_[16 * kRounds + i];

  for (int round = kRounds - 1; round >= 0; --round) {
    // InvShiftRows.
    uint8_t t[16];
    for (int c = 0; c < 4; ++c) {
      for (int r = 0; r < 4; ++r) {
        t[4 * ((c + r) % 4) + r] = s[4 * c + r];
      }
    }
    std::memcpy(s, t, 16);
    // InvSubBytes.
    for (int i = 0; i < 16; ++i) s[i] = sb.inv[s[i]];
    // AddRoundKey.
    for (int i = 0; i < 16; ++i) s[i] ^= round_keys_[16 * round + i];
    // InvMixColumns (skipped for the first encryption round's key).
    if (round > 0) {
      for (int c = 0; c < 4; ++c) {
        uint8_t* col = s + 4 * c;
        uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = GfMul(a0, 14) ^ GfMul(a1, 11) ^ GfMul(a2, 13) ^ GfMul(a3, 9);
        col[1] = GfMul(a0, 9) ^ GfMul(a1, 14) ^ GfMul(a2, 11) ^ GfMul(a3, 13);
        col[2] = GfMul(a0, 13) ^ GfMul(a1, 9) ^ GfMul(a2, 14) ^ GfMul(a3, 11);
        col[3] = GfMul(a0, 11) ^ GfMul(a1, 13) ^ GfMul(a2, 9) ^ GfMul(a3, 14);
      }
    }
  }
  std::memcpy(out, s, 16);
}

}  // namespace ccf::crypto
