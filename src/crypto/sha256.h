// SHA-256 (FIPS 180-4), implemented from scratch.
//
// This is the hash used throughout the system: Merkle tree nodes (paper §7),
// transaction digests, key fingerprints, and HMAC/HKDF/DRBG below.

#ifndef CCF_CRYPTO_SHA256_H_
#define CCF_CRYPTO_SHA256_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ccf::crypto {

inline constexpr size_t kSha256DigestSize = 32;
using Sha256Digest = std::array<uint8_t, kSha256DigestSize>;

// Incremental SHA-256 hasher.
class Sha256 {
 public:
  Sha256() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  Sha256Digest Finish();

  // One-shot convenience.
  static Sha256Digest Hash(ByteSpan data) {
    Sha256 h;
    h.Update(data);
    return h.Finish();
  }

 private:
  void Compress(const uint8_t* block);
  // Compresses `n` consecutive 64-byte blocks starting at `data` with the
  // working state held in locals across blocks. `Update` feeds whole blocks
  // here straight from the caller's span -- only a sub-block head/tail is
  // ever staged through `buf_`.
  void CompressBlocks(const uint8_t* data, size_t n);

  uint32_t state_[8];
  uint64_t total_len_ = 0;
  uint8_t buf_[64];
  size_t buf_len_ = 0;
};

// 4-way interleaved multi-buffer SHA-256: hashes four equal-length messages
// in one pass, running the four compression chains side by side so the
// per-round dependency chains overlap (and the lane loops auto-vectorize to
// 4x32-bit SIMD). This is the kernel behind MerkleTree::AppendBatch, where
// leaves and interior nodes arrive in bulk with a fixed size.
void Sha256x4(const uint8_t* const msgs[4], size_t len, Sha256Digest out[4]);

inline Bytes DigestToBytes(const Sha256Digest& d) {
  return Bytes(d.begin(), d.end());
}

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_SHA256_H_
