#include "crypto/ec25519.h"

#include <cassert>
#include <cstring>
#include <vector>

namespace ccf::crypto::ec {

namespace {

using u128 = unsigned __int128;

constexpr uint64_t kMask51 = (uint64_t{1} << 51) - 1;

// One full carry pass; on entry limbs may be up to ~2^63.
Fe Carry(Fe a) {
  for (int pass = 0; pass < 2; ++pass) {
    uint64_t c = 0;
    for (int i = 0; i < 5; ++i) {
      a.v[i] += c;
      c = a.v[i] >> 51;
      a.v[i] &= kMask51;
    }
    a.v[0] += 19 * c;
  }
  return a;
}

}  // namespace

Fe FeZero() { return Fe{}; }
Fe FeOne() { return FeFromU64(1); }

Fe FeFromU64(uint64_t x) {
  Fe r;
  r.v[0] = x & kMask51;
  r.v[1] = x >> 51;
  return r;
}

Fe FeAdd(const Fe& a, const Fe& b) {
  Fe r;
  for (int i = 0; i < 5; ++i) r.v[i] = a.v[i] + b.v[i];
  return Carry(r);
}

Fe FeSub(const Fe& a, const Fe& b) {
  // a + 2p - b keeps limbs positive; inputs are carried (< 2^52).
  Fe r;
  r.v[0] = a.v[0] + ((uint64_t{1} << 52) - 38) - b.v[0];
  for (int i = 1; i < 5; ++i) {
    r.v[i] = a.v[i] + ((uint64_t{1} << 52) - 2) - b.v[i];
  }
  return Carry(r);
}

Fe FeNeg(const Fe& a) { return FeSub(FeZero(), a); }

Fe FeMul(const Fe& a, const Fe& b) {
  const uint64_t* x = a.v;
  const uint64_t* y = b.v;
  u128 r[5];
  r[0] = (u128)x[0] * y[0] +
         (u128)19 * ((u128)x[1] * y[4] + (u128)x[2] * y[3] +
                     (u128)x[3] * y[2] + (u128)x[4] * y[1]);
  r[1] = (u128)x[0] * y[1] + (u128)x[1] * y[0] +
         (u128)19 * ((u128)x[2] * y[4] + (u128)x[3] * y[3] +
                     (u128)x[4] * y[2]);
  r[2] = (u128)x[0] * y[2] + (u128)x[1] * y[1] + (u128)x[2] * y[0] +
         (u128)19 * ((u128)x[3] * y[4] + (u128)x[4] * y[3]);
  r[3] = (u128)x[0] * y[3] + (u128)x[1] * y[2] + (u128)x[2] * y[1] +
         (u128)x[3] * y[0] + (u128)19 * ((u128)x[4] * y[4]);
  r[4] = (u128)x[0] * y[4] + (u128)x[1] * y[3] + (u128)x[2] * y[2] +
         (u128)x[3] * y[1] + (u128)x[4] * y[0];

  // Carry the 128-bit accumulators down to 64-bit limbs.
  Fe out;
  u128 c = 0;
  for (int i = 0; i < 5; ++i) {
    r[i] += c;
    out.v[i] = static_cast<uint64_t>(r[i]) & kMask51;
    c = r[i] >> 51;
  }
  out.v[0] += 19 * static_cast<uint64_t>(c);
  return Carry(out);
}

Fe FeSquare(const Fe& a) { return FeMul(a, a); }

std::array<uint8_t, 32> FeToBytes(const Fe& in) {
  Fe a = Carry(in);
  // Canonicalize: subtract p iff a >= p.
  uint64_t q = (a.v[0] + 19) >> 51;
  for (int i = 1; i < 5; ++i) q = (a.v[i] + q) >> 51;
  a.v[0] += 19 * q;
  uint64_t c = 0;
  for (int i = 0; i < 5; ++i) {
    a.v[i] += c;
    c = a.v[i] >> 51;
    a.v[i] &= kMask51;
  }
  // The final carry out of limb 4 (bit 255) is dropped: it is exactly the
  // subtraction of p when a >= p.

  std::array<uint8_t, 32> out{};
  uint64_t acc = 0;
  int acc_bits = 0;
  int limb = 0;
  for (int i = 0; i < 32; ++i) {
    if (acc_bits < 8 && limb < 5) {
      acc |= a.v[limb] << acc_bits;
      acc_bits += 51;
      ++limb;
    }
    out[i] = static_cast<uint8_t>(acc);
    acc >>= 8;
    acc_bits -= 8;
  }
  return out;
}

Fe FeFromBytes(const uint8_t bytes[32]) {
  // Limb l holds bits [51*l, 51*(l+1)); bit 255 is ignored.
  Fe r;
  for (int l = 0; l < 5; ++l) {
    uint64_t val = 0;
    int width = (l == 4) ? 51 : 51;
    for (int bit = 0; bit < width; ++bit) {
      int abs_bit = 51 * l + bit;
      if (abs_bit >= 255) break;
      uint64_t b = (bytes[abs_bit / 8] >> (abs_bit % 8)) & 1;
      val |= b << bit;
    }
    r.v[l] = val;
  }
  return Carry(r);
}

bool FeIsZero(const Fe& a) {
  auto b = FeToBytes(a);
  uint8_t acc = 0;
  for (uint8_t x : b) acc |= x;
  return acc == 0;
}

bool FeEqual(const Fe& a, const Fe& b) {
  return FeToBytes(a) == FeToBytes(b);
}

bool FeIsNegative(const Fe& a) { return (FeToBytes(a)[0] & 1) != 0; }

namespace {

// a^e where e is a little-endian byte string.
Fe FePow(const Fe& a, const uint8_t* e, size_t e_len) {
  Fe r = FeOne();
  bool any = false;
  for (size_t i = e_len; i-- > 0;) {
    for (int bit = 7; bit >= 0; --bit) {
      if (any) r = FeSquare(r);
      if ((e[i] >> bit) & 1) {
        r = FeMul(r, a);
        any = true;
      } else if (any) {
        // nothing
      }
    }
  }
  return r;
}

struct FieldExponents {
  uint8_t p_minus_2[32];   // 2^255 - 21
  uint8_t p_plus_3_div_8[32];   // 2^252 - 2
  Fe sqrt_m1;              // 2^((p-1)/4)
};

const FieldExponents& GetFieldExponents() {
  static const FieldExponents fx = [] {
    FieldExponents f{};
    std::memset(f.p_minus_2, 0xff, 32);
    f.p_minus_2[0] = 0xeb;
    f.p_minus_2[31] = 0x7f;
    std::memset(f.p_plus_3_div_8, 0xff, 32);
    f.p_plus_3_div_8[0] = 0xfe;
    f.p_plus_3_div_8[31] = 0x0f;
    uint8_t p_minus_1_div_4[32];
    std::memset(p_minus_1_div_4, 0xff, 32);
    p_minus_1_div_4[0] = 0xfb;
    p_minus_1_div_4[31] = 0x1f;
    f.sqrt_m1 = FePow(FeFromU64(2), p_minus_1_div_4, 32);
    return f;
  }();
  return fx;
}

}  // namespace

Fe FeInvert(const Fe& a) {
  const FieldExponents& fx = GetFieldExponents();
  return FePow(a, fx.p_minus_2, 32);
}

bool FeSqrt(const Fe& a, Fe* out) {
  if (FeIsZero(a)) {
    *out = FeZero();
    return true;
  }
  const FieldExponents& fx = GetFieldExponents();
  Fe r = FePow(a, fx.p_plus_3_div_8, 32);
  Fe r2 = FeSquare(r);
  if (FeEqual(r2, a)) {
    *out = r;
    return true;
  }
  if (FeEqual(r2, FeNeg(a))) {
    *out = FeMul(r, fx.sqrt_m1);
    return true;
  }
  return false;
}

// --------------------------------------------------------------- Scalars

namespace {

// Minimal little-endian uint32-limb bignum, only what scalar arithmetic
// needs: compare, subtract, shift, multiply, and binary modular reduction.
using Big = std::vector<uint32_t>;

void BigTrim(Big* a) {
  while (!a->empty() && a->back() == 0) a->pop_back();
}

int BigCmp(const Big& a, const Big& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

void BigSub(Big* a, const Big& b) {  // requires *a >= b
  uint64_t borrow = 0;
  for (size_t i = 0; i < a->size(); ++i) {
    uint64_t sub = (i < b.size() ? b[i] : 0) + borrow;
    uint64_t cur = (*a)[i];
    if (cur >= sub) {
      (*a)[i] = static_cast<uint32_t>(cur - sub);
      borrow = 0;
    } else {
      (*a)[i] = static_cast<uint32_t>(cur + (uint64_t{1} << 32) - sub);
      borrow = 1;
    }
  }
  BigTrim(a);
}

int BigBitLength(const Big& a) {
  if (a.empty()) return 0;
  uint32_t top = a.back();
  int bits = 0;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return static_cast<int>((a.size() - 1) * 32) + bits;
}

Big BigShiftLeft(const Big& a, int bits) {
  if (a.empty()) return a;
  int words = bits / 32;
  int rem = bits % 32;
  Big r(a.size() + words + 1, 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(a[i]) << rem;
    r[i + words] |= static_cast<uint32_t>(v);
    r[i + words + 1] |= static_cast<uint32_t>(v >> 32);
  }
  BigTrim(&r);
  return r;
}

void BigShiftRight1(Big* a) {
  uint32_t carry = 0;
  for (size_t i = a->size(); i-- > 0;) {
    uint32_t cur = (*a)[i];
    (*a)[i] = (cur >> 1) | (carry << 31);
    carry = cur & 1;
  }
  BigTrim(a);
}

void BigMod(Big* x, const Big& m) {
  assert(!m.empty());
  if (BigCmp(*x, m) < 0) return;
  int shift = BigBitLength(*x) - BigBitLength(m);
  Big d = BigShiftLeft(m, shift);
  for (int i = 0; i <= shift; ++i) {
    if (BigCmp(*x, d) >= 0) BigSub(x, d);
    BigShiftRight1(&d);
  }
}

Big BigMul(const Big& a, const Big& b) {
  if (a.empty() || b.empty()) return {};
  Big r(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t t = static_cast<uint64_t>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint32_t>(t);
      carry = t >> 32;
    }
    r[i + b.size()] += static_cast<uint32_t>(carry);
  }
  BigTrim(&r);
  return r;
}

Big BigAdd(const Big& a, const Big& b) {
  Big r(std::max(a.size(), b.size()) + 1, 0);
  uint64_t carry = 0;
  for (size_t i = 0; i < r.size(); ++i) {
    uint64_t t = carry;
    if (i < a.size()) t += a[i];
    if (i < b.size()) t += b[i];
    r[i] = static_cast<uint32_t>(t);
    carry = t >> 32;
  }
  BigTrim(&r);
  return r;
}

Big BigFromBytesLe(ByteSpan bytes) {
  Big r((bytes.size() + 3) / 4, 0);
  for (size_t i = 0; i < bytes.size(); ++i) {
    r[i / 4] |= static_cast<uint32_t>(bytes[i]) << (8 * (i % 4));
  }
  BigTrim(&r);
  return r;
}

Scalar BigToScalar(const Big& a) {
  Scalar s{};
  for (size_t i = 0; i < a.size() && i < 8; ++i) {
    s[4 * i] = static_cast<uint8_t>(a[i]);
    s[4 * i + 1] = static_cast<uint8_t>(a[i] >> 8);
    s[4 * i + 2] = static_cast<uint8_t>(a[i] >> 16);
    s[4 * i + 3] = static_cast<uint8_t>(a[i] >> 24);
  }
  return s;
}

// Group order l = 2^252 + 27742317777372353535851937790883648493.
const Big& OrderL() {
  static const Big l = [] {
    uint8_t bytes[32] = {
        0xed, 0xd3, 0xf5, 0x5c, 0x1a, 0x63, 0x12, 0x58, 0xd6, 0x9c, 0xf7,
        0xa2, 0xde, 0xf9, 0xde, 0x14, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00,
        0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x00, 0x10};
    return BigFromBytesLe(ByteSpan(bytes, 32));
  }();
  return l;
}

}  // namespace

Scalar ScalarReduce(ByteSpan bytes_le) {
  Big x = BigFromBytesLe(bytes_le);
  BigMod(&x, OrderL());
  return BigToScalar(x);
}

Scalar ScalarMulAdd(const Scalar& a, const Scalar& b, const Scalar& c) {
  Big x = BigMul(BigFromBytesLe(a), BigFromBytesLe(b));
  x = BigAdd(x, BigFromBytesLe(c));
  BigMod(&x, OrderL());
  return BigToScalar(x);
}

bool ScalarIsCanonical(const Scalar& s) {
  Big x = BigFromBytesLe(s);
  return BigCmp(x, OrderL()) < 0;
}

bool ScalarIsZero(const Scalar& s) {
  for (uint8_t b : s) {
    if (b != 0) return false;
  }
  return true;
}

// --------------------------------------------------------------- Points

namespace {

struct CurveConstants {
  Fe d;
  Fe d2;
  Point base;
};

Point MakeBasePoint(const Fe& d) {
  // y = 4/5; x is the even root of (y^2 - 1) / (d*y^2 + 1).
  Fe y = FeMul(FeFromU64(4), FeInvert(FeFromU64(5)));
  Fe y2 = FeSquare(y);
  Fe u = FeSub(y2, FeOne());
  Fe v = FeAdd(FeMul(d, y2), FeOne());
  Fe x2 = FeMul(u, FeInvert(v));
  Fe x;
  bool ok = FeSqrt(x2, &x);
  assert(ok);
  (void)ok;
  if (FeIsNegative(x)) x = FeNeg(x);
  Point p;
  p.x = x;
  p.y = y;
  p.z = FeOne();
  p.t = FeMul(x, y);
  return p;
}

const CurveConstants& GetCurve() {
  static const CurveConstants c = [] {
    CurveConstants cc;
    // d = -121665 / 121666.
    cc.d = FeMul(FeNeg(FeFromU64(121665)), FeInvert(FeFromU64(121666)));
    cc.d2 = FeAdd(cc.d, cc.d);
    cc.base = MakeBasePoint(cc.d);
    return cc;
  }();
  return c;
}

}  // namespace

const Fe& ConstD() { return GetCurve().d; }

Point Identity() {
  Point p;
  p.x = FeZero();
  p.y = FeOne();
  p.z = FeOne();
  p.t = FeZero();
  return p;
}

const Point& BasePoint() { return GetCurve().base; }

// add-2008-hwcd-3: strongly unified addition for a = -1 twisted Edwards.
Point Add(const Point& p, const Point& q) {
  const Fe& d2 = GetCurve().d2;
  Fe a = FeMul(FeSub(p.y, p.x), FeSub(q.y, q.x));
  Fe b = FeMul(FeAdd(p.y, p.x), FeAdd(q.y, q.x));
  Fe c = FeMul(FeMul(p.t, d2), q.t);
  Fe dd = FeMul(FeAdd(p.z, p.z), q.z);
  Fe e = FeSub(b, a);
  Fe f = FeSub(dd, c);
  Fe g = FeAdd(dd, c);
  Fe h = FeAdd(b, a);
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

// dbl-2008-hwcd for a = -1.
Point Double(const Point& p) {
  Fe a = FeSquare(p.x);
  Fe b = FeSquare(p.y);
  Fe c = FeAdd(FeSquare(p.z), FeSquare(p.z));
  Fe e = FeSub(FeSub(FeSquare(FeAdd(p.x, p.y)), a), b);
  Fe g = FeSub(b, a);          // D + B with D = -A
  Fe f = FeSub(g, c);
  Fe h = FeNeg(FeAdd(a, b));   // D - B
  Point r;
  r.x = FeMul(e, f);
  r.y = FeMul(g, h);
  r.t = FeMul(e, h);
  r.z = FeMul(f, g);
  return r;
}

Point Negate(const Point& p) {
  Point r = p;
  r.x = FeNeg(p.x);
  r.t = FeNeg(p.t);
  return r;
}

Point ScalarMult(const Scalar& s, const Point& p) {
  Point r = Identity();
  for (int i = 255; i >= 0; --i) {
    r = Double(r);
    if ((s[i / 8] >> (i % 8)) & 1) {
      r = Add(r, p);
    }
  }
  return r;
}

Point ScalarMultBase(const Scalar& s) { return ScalarMult(s, BasePoint()); }

Point MultiScalarMult(std::span<const Scalar> scalars,
                      std::span<const Point> points) {
  assert(scalars.size() == points.size());
  const size_t n = points.size();
  if (n == 0) return Identity();

  // Per-point table of odd-free small multiples: table[i][j] = (j+1)*P_i
  // for j in [0, 15). 14 additions per point, amortized over the 64 window
  // lookups below.
  std::vector<std::array<Point, 15>> table(n);
  for (size_t i = 0; i < n; ++i) {
    table[i][0] = points[i];
    for (int j = 1; j < 15; ++j) {
      table[i][j] = Add(table[i][j - 1], points[i]);
    }
  }

  // Straus: walk the 64 scalar nibbles from most to least significant with
  // a single shared chain of 4 doublings per window.
  Point r = Identity();
  for (int w = 63; w >= 0; --w) {
    if (w != 63) {
      r = Double(Double(Double(Double(r))));
    }
    for (size_t i = 0; i < n; ++i) {
      uint8_t byte = scalars[i][w / 2];
      uint8_t nib = (w % 2 != 0) ? (byte >> 4) : (byte & 0x0f);
      if (nib != 0) {
        r = Add(r, table[i][nib - 1]);
      }
    }
  }
  return r;
}

bool PointEqual(const Point& p, const Point& q) {
  // x1/z1 == x2/z2 <=> x1*z2 == x2*z1, same for y.
  return FeEqual(FeMul(p.x, q.z), FeMul(q.x, p.z)) &&
         FeEqual(FeMul(p.y, q.z), FeMul(q.y, p.z));
}

bool IsIdentity(const Point& p) { return PointEqual(p, Identity()); }

bool IsOnCurve(const Point& p) {
  if (FeIsZero(p.z)) return false;
  // Affine check via projective algebra:
  //   (-x^2 + y^2) = 1 + d x^2 y^2
  //   (-X^2 + Y^2) Z^2 = Z^4 + d X^2 Y^2, and T Z = X Y.
  Fe x2 = FeSquare(p.x);
  Fe y2 = FeSquare(p.y);
  Fe z2 = FeSquare(p.z);
  Fe lhs = FeMul(FeSub(y2, x2), z2);
  Fe rhs = FeAdd(FeSquare(z2), FeMul(ConstD(), FeMul(x2, y2)));
  if (!FeEqual(lhs, rhs)) return false;
  return FeEqual(FeMul(p.t, p.z), FeMul(p.x, p.y));
}

std::array<uint8_t, kPointSize> Encode(const Point& p) {
  Fe zinv = FeInvert(p.z);
  Fe x = FeMul(p.x, zinv);
  Fe y = FeMul(p.y, zinv);
  auto out = FeToBytes(y);
  if (FeIsNegative(x)) out[31] |= 0x80;
  return out;
}

Result<Point> Decode(ByteSpan encoded) {
  if (encoded.size() != kPointSize) {
    return Status::InvalidArgument("point: bad encoding length");
  }
  uint8_t ybytes[32];
  std::memcpy(ybytes, encoded.data(), 32);
  bool sign = (ybytes[31] & 0x80) != 0;
  ybytes[31] &= 0x7f;
  Fe y = FeFromBytes(ybytes);
  // Reject non-canonical y.
  auto canon = FeToBytes(y);
  if (std::memcmp(canon.data(), ybytes, 32) != 0) {
    return Status::InvalidArgument("point: non-canonical y");
  }

  Fe y2 = FeSquare(y);
  Fe u = FeSub(y2, FeOne());
  Fe v = FeAdd(FeMul(ConstD(), y2), FeOne());
  Fe x2 = FeMul(u, FeInvert(v));
  Fe x;
  if (!FeSqrt(x2, &x)) {
    return Status::InvalidArgument("point: not on curve");
  }
  if (FeIsZero(x)) {
    if (sign) {
      return Status::InvalidArgument("point: invalid sign for x=0");
    }
  } else if (FeIsNegative(x) != sign) {
    x = FeNeg(x);
  }
  Point p;
  p.x = x;
  p.y = y;
  p.z = FeOne();
  p.t = FeMul(x, y);
  return p;
}

}  // namespace ccf::crypto::ec
