// Shamir k-of-n secret sharing over GF(2^8) (paper §5.2: recovery shares).
//
// The ledger-secret wrapping key is split into n shares such that any k
// reconstruct it and fewer than k reveal nothing. Each byte of the secret is
// shared independently with a random degree-(k-1) polynomial.

#ifndef CCF_CRYPTO_SHAMIR_H_
#define CCF_CRYPTO_SHAMIR_H_

#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/hmac.h"

namespace ccf::crypto {

struct Share {
  uint8_t index = 0;  // x-coordinate, 1..255. 0 is the secret itself.
  Bytes data;         // one byte per secret byte.
};

// Splits `secret` into n shares with threshold k (1 <= k <= n <= 255).
Result<std::vector<Share>> ShamirSplit(ByteSpan secret, int k, int n,
                                       Drbg* drbg);

// Recovers the secret from at least k distinct shares (any subset works;
// shares beyond the first k of consistent length are used too).
Result<Bytes> ShamirCombine(const std::vector<Share>& shares, int k);

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_SHAMIR_H_
