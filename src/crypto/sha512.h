// SHA-512 (FIPS 180-4), implemented from scratch.
//
// Round constants and the initial hash value are derived at first use from
// their FIPS definitions (fractional parts of cube/square roots of the first
// primes) using exact integer arithmetic, and validated by unit tests against
// the published values.

#ifndef CCF_CRYPTO_SHA512_H_
#define CCF_CRYPTO_SHA512_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ccf::crypto {

inline constexpr size_t kSha512DigestSize = 64;
using Sha512Digest = std::array<uint8_t, kSha512DigestSize>;

// Incremental SHA-512 hasher.
class Sha512 {
 public:
  Sha512() { Reset(); }

  void Reset();
  void Update(ByteSpan data);
  Sha512Digest Finish();

  static Sha512Digest Hash(ByteSpan data) {
    Sha512 h;
    h.Update(data);
    return h.Finish();
  }

 private:
  void Compress(const uint8_t* block);

  uint64_t state_[8];
  uint64_t total_len_ = 0;  // Message lengths beyond 2^64 bits are not used.
  uint8_t buf_[128];
  size_t buf_len_ = 0;
};

namespace internal {
// Exposed for tests: first 64 bits of the fractional part of cbrt(p) and
// sqrt(p) for integer p.
uint64_t CbrtFrac64(uint64_t p);
uint64_t SqrtFrac64(uint64_t p);
}  // namespace internal

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_SHA512_H_
