#include "crypto/hmac.h"

#include <cstring>

#include "common/buffer.h"

namespace ccf::crypto {

Sha256Digest HmacSha256(ByteSpan key, ByteSpan data) {
  uint8_t k[64] = {0};
  if (key.size() > 64) {
    Sha256Digest kd = Sha256::Hash(key);
    std::memcpy(k, kd.data(), kd.size());
  } else {
    std::memcpy(k, key.data(), key.size());
  }

  uint8_t ipad[64], opad[64];
  for (int i = 0; i < 64; ++i) {
    ipad[i] = k[i] ^ 0x36;
    opad[i] = k[i] ^ 0x5c;
  }

  Sha256 inner;
  inner.Update(ByteSpan(ipad, 64));
  inner.Update(data);
  Sha256Digest inner_digest = inner.Finish();

  Sha256 outer;
  outer.Update(ByteSpan(opad, 64));
  outer.Update(inner_digest);
  return outer.Finish();
}

Bytes Hkdf(ByteSpan ikm, ByteSpan salt, ByteSpan info, size_t out_len) {
  // Extract.
  Sha256Digest prk = HmacSha256(salt, ikm);
  // Expand.
  Bytes out;
  out.reserve(out_len);
  Bytes t;
  uint8_t counter = 1;
  while (out.size() < out_len) {
    Bytes block = t;
    Append(&block, info);
    block.push_back(counter++);
    Sha256Digest d = HmacSha256(prk, block);
    t.assign(d.begin(), d.end());
    size_t take = std::min(t.size(), out_len - out.size());
    out.insert(out.end(), t.begin(), t.begin() + take);
  }
  return out;
}

Drbg::Drbg(ByteSpan seed) {
  std::memset(key_, 0, sizeof(key_));
  std::memset(value_, 1, sizeof(value_));
  Update(seed);
}

Drbg::Drbg(std::string_view label, uint64_t n) : Drbg([&] {
  BufWriter w;
  w.Str(label);
  w.U64(n);
  return w.Take();
}()) {}

void Drbg::Update(ByteSpan data) {
  // K = HMAC(K, V || 0x00 || data); V = HMAC(K, V)
  Bytes buf(value_, value_ + 32);
  buf.push_back(0x00);
  Append(&buf, data);
  Sha256Digest k = HmacSha256(ByteSpan(key_, 32), buf);
  std::memcpy(key_, k.data(), 32);
  Sha256Digest v = HmacSha256(ByteSpan(key_, 32), ByteSpan(value_, 32));
  std::memcpy(value_, v.data(), 32);
  if (!data.empty()) {
    buf.assign(value_, value_ + 32);
    buf.push_back(0x01);
    Append(&buf, data);
    k = HmacSha256(ByteSpan(key_, 32), buf);
    std::memcpy(key_, k.data(), 32);
    v = HmacSha256(ByteSpan(key_, 32), ByteSpan(value_, 32));
    std::memcpy(value_, v.data(), 32);
  }
}

void Drbg::Generate(uint8_t* out, size_t len) {
  size_t produced = 0;
  while (produced < len) {
    Sha256Digest v = HmacSha256(ByteSpan(key_, 32), ByteSpan(value_, 32));
    std::memcpy(value_, v.data(), 32);
    size_t take = std::min<size_t>(32, len - produced);
    std::memcpy(out + produced, value_, take);
    produced += take;
  }
  Update(ByteSpan());
}

Bytes Drbg::Generate(size_t len) {
  Bytes out(len);
  Generate(out.data(), len);
  return out;
}

uint64_t Drbg::NextU64() {
  uint8_t buf[8];
  Generate(buf, 8);
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v = (v << 8) | buf[i];
  return v;
}

uint64_t Drbg::Uniform(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  uint64_t limit = bound * ((~uint64_t{0}) / bound);
  uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return v % bound;
}

}  // namespace ccf::crypto
