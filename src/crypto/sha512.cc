#include "crypto/sha512.h"

#include <cstring>
#include <mutex>
#include <vector>

namespace ccf::crypto {

namespace internal {

namespace {

using u128 = unsigned __int128;
// Little-endian 64-bit limb bignum, used only for deriving the SHA-512
// constants exactly (fractional parts of cube/square roots of primes).
using Limbs = std::vector<uint64_t>;

Limbs Trim(Limbs v) {
  while (!v.empty() && v.back() == 0) v.pop_back();
  return v;
}

int Cmp(const Limbs& a, const Limbs& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

Limbs Mul(const Limbs& a, const Limbs& b) {
  Limbs r(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    for (size_t j = 0; j < b.size(); ++j) {
      u128 t = static_cast<u128>(a[i]) * b[j] + r[i + j] + carry;
      r[i + j] = static_cast<uint64_t>(t);
      carry = static_cast<uint64_t>(t >> 64);
    }
    r[i + b.size()] += carry;
  }
  return Trim(std::move(r));
}

Limbs FromU128(u128 x) {
  Limbs v;
  if (static_cast<uint64_t>(x) != 0 || (x >> 64) != 0) {
    v.push_back(static_cast<uint64_t>(x));
  }
  if ((x >> 64) != 0) v.push_back(static_cast<uint64_t>(x >> 64));
  return v;
}

// Value p * 2^(64*words).
Limbs Shifted(uint64_t p, int words) {
  Limbs v(words + 1, 0);
  v[words] = p;
  return Trim(std::move(v));
}

// Largest x with x^k <= p * 2^(64*shift_words).
u128 IRootShifted(uint64_t p, int k, int shift_words, u128 hi_bound) {
  Limbs target = Shifted(p, shift_words);
  u128 lo = 0, hi = hi_bound;  // invariant: lo^k <= target < hi^k
  while (hi - lo > 1) {
    u128 mid = lo + (hi - lo) / 2;
    Limbs m = FromU128(mid);
    Limbs pow = m;
    for (int i = 1; i < k; ++i) pow = Mul(pow, m);
    if (Cmp(pow, target) <= 0) {
      lo = mid;
    } else {
      hi = mid;
    }
  }
  return lo;
}

}  // namespace

uint64_t CbrtFrac64(uint64_t p) {
  // floor(cbrt(p) * 2^64) mod 2^64: the integer part of cbrt(p) sits above
  // bit 63 and is discarded by the cast.
  u128 x = IRootShifted(p, 3, /*shift_words=*/3, static_cast<u128>(1) << 68);
  return static_cast<uint64_t>(x);
}

uint64_t SqrtFrac64(uint64_t p) {
  u128 x = IRootShifted(p, 2, /*shift_words=*/2, static_cast<u128>(1) << 68);
  return static_cast<uint64_t>(x);
}

}  // namespace internal

namespace {

constexpr int kPrimes80[80] = {
    2,   3,   5,   7,   11,  13,  17,  19,  23,  29,  31,  37,  41,  43,
    47,  53,  59,  61,  67,  71,  73,  79,  83,  89,  97,  101, 103, 107,
    109, 113, 127, 131, 137, 139, 149, 151, 157, 163, 167, 173, 179, 181,
    191, 193, 197, 199, 211, 223, 227, 229, 233, 239, 241, 251, 257, 263,
    269, 271, 277, 281, 283, 293, 307, 311, 313, 317, 331, 337, 347, 349,
    353, 359, 367, 373, 379, 383, 389, 397, 401, 409};

struct Constants {
  uint64_t k[80];
  uint64_t h0[8];
};

const Constants& GetConstants() {
  static const Constants c = [] {
    Constants out;
    for (int i = 0; i < 80; ++i) {
      out.k[i] = internal::CbrtFrac64(kPrimes80[i]);
    }
    for (int i = 0; i < 8; ++i) {
      out.h0[i] = internal::SqrtFrac64(kPrimes80[i]);
    }
    return out;
  }();
  return c;
}

inline uint64_t Rotr(uint64_t x, int n) { return (x >> n) | (x << (64 - n)); }

}  // namespace

void Sha512::Reset() {
  const Constants& c = GetConstants();
  for (int i = 0; i < 8; ++i) state_[i] = c.h0[i];
  total_len_ = 0;
  buf_len_ = 0;
}

void Sha512::Compress(const uint8_t* block) {
  const Constants& c = GetConstants();
  uint64_t w[80];
  for (int i = 0; i < 16; ++i) {
    uint64_t v = 0;
    for (int j = 0; j < 8; ++j) {
      v = (v << 8) | block[8 * i + j];
    }
    w[i] = v;
  }
  for (int i = 16; i < 80; ++i) {
    uint64_t s0 = Rotr(w[i - 15], 1) ^ Rotr(w[i - 15], 8) ^ (w[i - 15] >> 7);
    uint64_t s1 = Rotr(w[i - 2], 19) ^ Rotr(w[i - 2], 61) ^ (w[i - 2] >> 6);
    w[i] = w[i - 16] + s0 + w[i - 7] + s1;
  }

  uint64_t a = state_[0], b = state_[1], cc = state_[2], d = state_[3];
  uint64_t e = state_[4], f = state_[5], g = state_[6], h = state_[7];

  for (int i = 0; i < 80; ++i) {
    uint64_t s1 = Rotr(e, 14) ^ Rotr(e, 18) ^ Rotr(e, 41);
    uint64_t ch = (e & f) ^ (~e & g);
    uint64_t t1 = h + s1 + ch + c.k[i] + w[i];
    uint64_t s0 = Rotr(a, 28) ^ Rotr(a, 34) ^ Rotr(a, 39);
    uint64_t maj = (a & b) ^ (a & cc) ^ (b & cc);
    uint64_t t2 = s0 + maj;
    h = g;
    g = f;
    f = e;
    e = d + t1;
    d = cc;
    cc = b;
    b = a;
    a = t1 + t2;
  }

  state_[0] += a;
  state_[1] += b;
  state_[2] += cc;
  state_[3] += d;
  state_[4] += e;
  state_[5] += f;
  state_[6] += g;
  state_[7] += h;
}

void Sha512::Update(ByteSpan data) {
  total_len_ += data.size();
  size_t off = 0;
  if (buf_len_ > 0) {
    size_t take = std::min(data.size(), sizeof(buf_) - buf_len_);
    std::memcpy(buf_ + buf_len_, data.data(), take);
    buf_len_ += take;
    off = take;
    if (buf_len_ == sizeof(buf_)) {
      Compress(buf_);
      buf_len_ = 0;
    }
  }
  while (off + 128 <= data.size()) {
    Compress(data.data() + off);
    off += 128;
  }
  if (off < data.size()) {
    std::memcpy(buf_, data.data() + off, data.size() - off);
    buf_len_ = data.size() - off;
  }
}

Sha512Digest Sha512::Finish() {
  uint64_t bit_len_lo = total_len_ << 3;
  uint64_t bit_len_hi = total_len_ >> 61;
  uint8_t pad[144];
  size_t pad_len = (buf_len_ < 112) ? (112 - buf_len_) : (240 - buf_len_);
  pad[0] = 0x80;
  std::memset(pad + 1, 0, pad_len - 1);
  for (int i = 0; i < 8; ++i) {
    pad[pad_len + i] = static_cast<uint8_t>(bit_len_hi >> (56 - 8 * i));
    pad[pad_len + 8 + i] = static_cast<uint8_t>(bit_len_lo >> (56 - 8 * i));
  }
  Update(ByteSpan(pad, pad_len + 16));

  Sha512Digest out;
  for (int i = 0; i < 8; ++i) {
    for (int j = 0; j < 8; ++j) {
      out[8 * i + j] = static_cast<uint8_t>(state_[i] >> (56 - 8 * j));
    }
  }
  Reset();
  return out;
}

}  // namespace ccf::crypto
