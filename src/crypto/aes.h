// AES-256 block cipher (FIPS 197), implemented from scratch.
//
// The S-box is generated at start-up from its algebraic definition
// (multiplicative inverse in GF(2^8) followed by the FIPS affine transform)
// and validated by unit tests against published known-answer vectors.

#ifndef CCF_CRYPTO_AES_H_
#define CCF_CRYPTO_AES_H_

#include <array>
#include <cstdint>

#include "common/bytes.h"

namespace ccf::crypto {

inline constexpr size_t kAesBlockSize = 16;
inline constexpr size_t kAes256KeySize = 32;

// AES-256 with a fixed expanded key. Encrypt/decrypt single 16-byte blocks.
class Aes256 {
 public:
  explicit Aes256(ByteSpan key);  // key.size() must be 32.

  void EncryptBlock(const uint8_t in[16], uint8_t out[16]) const;
  void DecryptBlock(const uint8_t in[16], uint8_t out[16]) const;

 private:
  static constexpr int kRounds = 14;
  // Round keys as bytes: (kRounds + 1) * 16.
  uint8_t round_keys_[(kRounds + 1) * 16];
};

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_AES_H_
