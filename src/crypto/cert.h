// Compact certificates standing in for X.509 (paper Table 1).
//
// A certificate binds a subject name and role to a public key, signed by an
// issuer. The service identity is a self-signed certificate; node, member,
// and user identities are either self-signed (trust anchored via KV maps,
// as CCF does with users.certs / members.certs) or issued by the service.

#ifndef CCF_CRYPTO_CERT_H_
#define CCF_CRYPTO_CERT_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sign.h"

namespace ccf::crypto {

struct Certificate {
  std::string subject;   // e.g. "member0", "node-3", "service"
  std::string role;      // "service" | "node" | "member" | "user"
  PublicKeyBytes public_key{};
  std::string issuer;    // issuer subject ("" => self-signed)
  uint64_t valid_from = 0;             // inclusive, unix-ish seconds
  uint64_t valid_to = ~uint64_t{0};    // exclusive
  SignatureBytes signature{};          // issuer signature over TbsBytes()

  // The to-be-signed portion (everything except the signature).
  Bytes TbsBytes() const;
  Bytes Serialize() const;
  static Result<Certificate> Deserialize(ByteSpan data);

  // Hex SHA-256 of the serialized certificate; used as stable identity in
  // KV maps.
  std::string Fingerprint() const;
};

// Creates a certificate for `subject_key`, signed by `issuer_key`.
// Self-signed when issuer_subject is empty (issuer_key must then hold
// subject_key itself).
Certificate IssueCertificate(const std::string& subject,
                             const std::string& role,
                             const PublicKeyBytes& subject_key,
                             const KeyPair& issuer_key,
                             const std::string& issuer_subject,
                             uint64_t valid_from = 0,
                             uint64_t valid_to = ~uint64_t{0});

// Verifies the signature under `issuer_pub` and the validity window at
// time `now`.
Status VerifyCertificate(const Certificate& cert, ByteSpan issuer_pub,
                         uint64_t now = 0);

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_CERT_H_
