// HMAC-SHA256 (RFC 2104), HKDF (RFC 5869), and HMAC-DRBG (SP 800-90A).
//
// HKDF derives per-purpose keys from the ledger secret; HMAC-DRBG is the
// deterministic randomness source used by every simulated enclave (seeded
// per node, keeping all protocol runs reproducible).

#ifndef CCF_CRYPTO_HMAC_H_
#define CCF_CRYPTO_HMAC_H_

#include <string_view>

#include "common/bytes.h"
#include "crypto/sha256.h"

namespace ccf::crypto {

// HMAC-SHA256(key, data).
Sha256Digest HmacSha256(ByteSpan key, ByteSpan data);

// HKDF-SHA256 extract-and-expand. `out_len` up to 255*32 bytes.
Bytes Hkdf(ByteSpan ikm, ByteSpan salt, ByteSpan info, size_t out_len);

// Deterministic random bit generator (HMAC-DRBG with SHA-256).
// Not thread-safe; each enclave owns one instance.
class Drbg {
 public:
  // Seeds from entropy material. The same seed yields the same stream.
  explicit Drbg(ByteSpan seed);

  // Convenience: seed from a label and a 64-bit value (tests, simulation).
  Drbg(std::string_view label, uint64_t n);

  void Generate(uint8_t* out, size_t len);
  Bytes Generate(size_t len);
  uint64_t NextU64();
  // Uniform in [0, bound). bound must be > 0.
  uint64_t Uniform(uint64_t bound);

 private:
  void Update(ByteSpan data);

  uint8_t key_[32];
  uint8_t value_[32];
};

}  // namespace ccf::crypto

#endif  // CCF_CRYPTO_HMAC_H_
