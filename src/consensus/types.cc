#include "consensus/types.h"

#include "common/buffer.h"

namespace ccf::consensus {

Bytes LogEntry::Serialize() const {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  w.Bool(is_signature);
  w.Bool(reconfig.has_value());
  if (reconfig.has_value()) {
    w.U64(reconfig->seqno);
    w.U32(static_cast<uint32_t>(reconfig->nodes.size()));
    for (const NodeId& n : reconfig->nodes) w.Str(n);
  }
  w.Blob(data != nullptr ? *data : Bytes{});
  return w.Take();
}

Result<LogEntry> LogEntry::Deserialize(ByteSpan bytes) {
  BufReader r(bytes);
  LogEntry e;
  ASSIGN_OR_RETURN(e.view, r.U64());
  ASSIGN_OR_RETURN(e.seqno, r.U64());
  ASSIGN_OR_RETURN(e.is_signature, r.Bool());
  ASSIGN_OR_RETURN(bool has_reconfig, r.Bool());
  if (has_reconfig) {
    Configuration cfg;
    ASSIGN_OR_RETURN(cfg.seqno, r.U64());
    ASSIGN_OR_RETURN(uint32_t n, r.U32());
    for (uint32_t i = 0; i < n; ++i) {
      ASSIGN_OR_RETURN(std::string node, r.Str());
      cfg.nodes.insert(std::move(node));
    }
    e.reconfig = std::move(cfg);
  }
  ASSIGN_OR_RETURN(Bytes data, r.Blob());
  e.data = std::make_shared<const Bytes>(std::move(data));
  return e;
}

namespace {

enum MessageTag : uint8_t {
  kAppendEntriesReq = 0,
  kAppendEntriesResp = 1,
  kRequestVoteReq = 2,
  kRequestVoteResp = 3,
};

}  // namespace

Bytes Message::Serialize() const {
  BufWriter w;
  w.Str(from);
  if (const auto* ae = std::get_if<AppendEntriesReq>(&body)) {
    w.U8(kAppendEntriesReq);
    w.U64(ae->view);
    w.U64(ae->prev_view);
    w.U64(ae->prev_seqno);
    w.U64(ae->commit_seqno);
    w.U32(static_cast<uint32_t>(ae->entries.size()));
    for (const LogEntry& e : ae->entries) w.Blob(e.Serialize());
  } else if (const auto* resp = std::get_if<AppendEntriesResp>(&body)) {
    w.U8(kAppendEntriesResp);
    w.U64(resp->view);
    w.Bool(resp->success);
    w.U64(resp->match_seqno);
    w.U64(resp->commit_seqno);
  } else if (const auto* rv = std::get_if<RequestVoteReq>(&body)) {
    w.U8(kRequestVoteReq);
    w.U64(rv->view);
    w.U64(rv->last_sig_view);
    w.U64(rv->last_sig_seqno);
  } else if (const auto* vr = std::get_if<RequestVoteResp>(&body)) {
    w.U8(kRequestVoteResp);
    w.U64(vr->view);
    w.Bool(vr->granted);
  }
  return w.Take();
}

Result<Message> Message::Deserialize(ByteSpan bytes) {
  BufReader r(bytes);
  Message m;
  ASSIGN_OR_RETURN(m.from, r.Str());
  ASSIGN_OR_RETURN(uint8_t tag, r.U8());
  switch (tag) {
    case kAppendEntriesReq: {
      AppendEntriesReq ae;
      ASSIGN_OR_RETURN(ae.view, r.U64());
      ASSIGN_OR_RETURN(ae.prev_view, r.U64());
      ASSIGN_OR_RETURN(ae.prev_seqno, r.U64());
      ASSIGN_OR_RETURN(ae.commit_seqno, r.U64());
      ASSIGN_OR_RETURN(uint32_t n, r.U32());
      for (uint32_t i = 0; i < n; ++i) {
        ASSIGN_OR_RETURN(Bytes blob, r.Blob());
        ASSIGN_OR_RETURN(LogEntry e, LogEntry::Deserialize(blob));
        ae.entries.push_back(std::move(e));
      }
      m.body = std::move(ae);
      break;
    }
    case kAppendEntriesResp: {
      AppendEntriesResp resp;
      ASSIGN_OR_RETURN(resp.view, r.U64());
      ASSIGN_OR_RETURN(resp.success, r.Bool());
      ASSIGN_OR_RETURN(resp.match_seqno, r.U64());
      ASSIGN_OR_RETURN(resp.commit_seqno, r.U64());
      m.body = resp;
      break;
    }
    case kRequestVoteReq: {
      RequestVoteReq rv;
      ASSIGN_OR_RETURN(rv.view, r.U64());
      ASSIGN_OR_RETURN(rv.last_sig_view, r.U64());
      ASSIGN_OR_RETURN(rv.last_sig_seqno, r.U64());
      m.body = rv;
      break;
    }
    case kRequestVoteResp: {
      RequestVoteResp vr;
      ASSIGN_OR_RETURN(vr.view, r.U64());
      ASSIGN_OR_RETURN(vr.granted, r.Bool());
      m.body = vr;
      break;
    }
    default:
      return Status::InvalidArgument("consensus: unknown message tag");
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("consensus: trailing message bytes");
  }
  return m;
}

}  // namespace ccf::consensus
