// CCF's consensus protocol node (paper §4).
//
// A RaftNode is deterministic and passive: it only acts when driven by
// Tick(now_ms) and Receive(msg, now_ms), emitting outbound messages and
// state-change notifications through the Callbacks interface. The same
// code runs under the discrete-event simulator (tests, failure injection)
// and the realtime benchmark driver.
//
// Differences from vanilla Raft, following the paper:
//   - Only signature transactions are commit points (§4.1). A transaction
//     is committed once a subsequent signature transaction is replicated
//     to a majority of every active configuration.
//   - Election up-to-dateness compares the transaction ID of the *last
//     signature transaction* (§4.2, Table 2).
//   - A new primary rolls its log back to its last signature transaction
//     and starts its view with a fresh signature transaction (§4.2).
//   - Reconfiguration is a single transaction moving between arbitrary
//     node sets; quorums are required in every active configuration, and
//     configurations activate as soon as the reconfiguration transaction
//     is appended (§4.4).
//   - A primary that cannot reach a majority of backups within
//     `primary_quiesce_timeout_ms` steps down (§4.2).

#ifndef CCF_CONSENSUS_RAFT_H_
#define CCF_CONSENSUS_RAFT_H_

#include <functional>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "consensus/types.h"
#include "crypto/hmac.h"
#include "observe/metrics.h"

namespace ccf::consensus {

struct RaftConfig {
  uint64_t election_timeout_min_ms = 150;
  uint64_t election_timeout_max_ms = 300;
  uint64_t heartbeat_interval_ms = 20;
  // Primary steps down if it cannot reach a majority for this long.
  uint64_t primary_quiesce_timeout_ms = 600;
  // Max entries per append_entries message.
  size_t max_batch_entries = 100;
  // Seed for the election-timeout jitter (deterministic runs).
  uint64_t seed = 0;
};

// Callbacks implemented by the node layer.
class RaftCallbacks {
 public:
  virtual ~RaftCallbacks() = default;

  // A remote-originated entry was appended to the local log (backup path).
  // The node layer applies it to its KV store, ledger, and Merkle tree.
  virtual void OnAppend(const LogEntry& entry) = 0;
  // A contiguous run of remote-originated entries was appended in one
  // AppendEntries message, delivered together after the last one is in the
  // log. Default: per-entry delivery. The node layer overrides this to
  // batch the Merkle/ledger work (crypto::Sha256x4 via AppendBatch).
  virtual void OnAppendBatch(const std::vector<const LogEntry*>& entries) {
    for (const LogEntry* entry : entries) OnAppend(*entry);
  }
  // The log was rolled back: discard everything with seqno > `seqno`.
  virtual void OnRollback(uint64_t seqno) = 0;
  // The commit sequence number advanced.
  virtual void OnCommit(uint64_t seqno) = 0;
  // Role or view changed. A new primary is expected to replicate a fresh
  // signature transaction immediately (paper §4.2).
  virtual void OnRoleChange(Role role, uint64_t view) = 0;
  // Outbound message transport (node-to-node channels).
  virtual void Send(const NodeId& to, const Message& msg) = 0;
};

class RaftNode {
 public:
  // A node of a fresh service. `initial_nodes` is the configuration at
  // seqno 0. If `start_as_primary` (the genesis node of a new service,
  // paper §5: service start), the node assumes the primary role of view 1
  // immediately.
  RaftNode(NodeId id, RaftConfig config, std::set<NodeId> initial_nodes,
           bool start_as_primary, RaftCallbacks* callbacks);

  // A node joining from a snapshot at (base_view, base_seqno), with the
  // active configurations recorded in that snapshot.
  static RaftNode Joiner(NodeId id, RaftConfig config, uint64_t base_view,
                         uint64_t base_seqno,
                         std::vector<Configuration> configs,
                         RaftCallbacks* callbacks);

  // ---------------------------------------------------------- Driving

  void Tick(uint64_t now_ms);
  void Receive(const Message& msg, uint64_t now_ms);

  // ------------------------------------------------------ Primary API

  // Appends the next entry to the primary's log and schedules replication.
  // `data` is the serialized ledger entry; seqno must be last_seqno()+1.
  // Fails unless this node is the primary.
  Status Replicate(uint64_t seqno, std::shared_ptr<const Bytes> data,
                   bool is_signature,
                   std::optional<Configuration> reconfig = std::nullopt);

  // ----------------------------------------------------------- State

  const NodeId& id() const { return id_; }
  Role role() const { return role_; }
  bool IsPrimary() const { return role_ == Role::kPrimary; }
  uint64_t view() const { return view_; }
  std::optional<NodeId> leader() const { return leader_; }
  uint64_t last_seqno() const { return base_seqno_ + log_.size(); }
  uint64_t base_seqno() const { return base_seqno_; }
  uint64_t commit_seqno() const { return commit_seqno_; }
  TxId last_signature() const { return {last_sig_view_, last_sig_seqno_}; }

  // The active configurations, current first (paper §4.4).
  const std::vector<Configuration>& active_configs() const {
    return active_configs_;
  }
  // Union of nodes across active configurations.
  std::set<NodeId> AllNodes() const;
  // Whether this node is a member of any active configuration.
  bool InActiveConfig() const;

  // Transaction status (paper Figure 4).
  TxStatus GetTxStatus(uint64_t view, uint64_t seqno) const;
  // Every role transition this node went through, in order. Lets an
  // external checker assert election safety (at most one primary per view)
  // even for primaries that stepped down between observations.
  struct RoleEvent {
    uint64_t time_ms;
    uint64_t view;
    Role role;
  };
  const std::vector<RoleEvent>& role_history() const { return role_history_; }
  // View history: (view, start seqno) pairs, ascending.
  const std::vector<std::pair<uint64_t, uint64_t>>& view_history() const {
    return view_history_;
  }

  const LogEntry* GetLogEntry(uint64_t seqno) const;

  // Learners: peers outside every configuration that the primary keeps
  // replicating to (retiring nodes learning their own retirement, §4.5).
  void AddLearner(const NodeId& peer);
  void RemoveLearner(const NodeId& peer) { learners_.erase(peer); }
  const std::set<NodeId>& learners() const { return learners_; }
  // True when a peer's log and commit knowledge match ours.
  bool PeerCaughtUp(const NodeId& peer) const;

  // ------------------------------------------------- Log compaction

  // Drops in-memory log entries at or below `seqno` (clamped to the commit
  // point), re-basing the log the way a snapshot-bootstrapped joiner
  // starts: seqnos <= base answer from (base_view, base_seqno). A
  // long-lived primary calls this once every peer's match index has passed
  // its snapshot horizon, so the log stops growing without bound.
  void CompactTo(uint64_t seqno);

  // Re-bases this node onto a verified snapshot at (view, seqno),
  // discarding the local log. Used for snapshot-based catch-up: a laggard
  // whose next needed entry fell below the primary's compacted base cannot
  // be served from the log and installs the snapshot instead (the node
  // layer has already verified and applied the matching KV state). No-op
  // unless seqno is ahead of the local commit point.
  void InstallSnapshot(uint64_t seqno, uint64_t view,
                       std::vector<Configuration> configs);

  // Smallest match index across every replication target (configured
  // peers, learners, and retiring nodes still being streamed to);
  // last_seqno() when there are no peers. Only meaningful on the primary.
  uint64_t MinPeerMatch() const;

  // Peers whose append_entries backoff hit the compacted log base: the log
  // cannot serve them and only a snapshot can. Maintained on the primary
  // (flagged on a failed response hinting below base, cleared on success).
  const std::set<NodeId>& peers_needing_snapshot() const {
    return needs_snapshot_;
  }

  // Force an immediate election on the next tick (testing / operator).
  void ForceElectionTimeout() { election_deadline_ms_ = 0; }

  // Test-only: installs a log wholesale (used to reproduce the paper's
  // Figure 5 / Table 2 scenarios). Resets derived state accordingly.
  void TestInstallLog(std::vector<LogEntry> entries, uint64_t view);

  // Registers consensus metrics (elections, primary transitions, view and
  // commit gauges, append batch sizes, submit->commit latency in virtual
  // ms). Metrics are write-only -- nothing here feeds back into protocol
  // decisions, so instrumented and unbound nodes behave identically.
  void BindMetrics(observe::Registry* reg);

 private:
  RaftNode(NodeId id, RaftConfig config, RaftCallbacks* callbacks);

  // Role transitions.
  void BecomeBackup(uint64_t view);
  void BecomeCandidate();
  void BecomePrimary();

  void HandleAppendEntries(const NodeId& from, const AppendEntriesReq& req);
  void HandleAppendEntriesResp(const NodeId& from,
                               const AppendEntriesResp& resp);
  void HandleRequestVote(const NodeId& from, const RequestVoteReq& req);
  void HandleRequestVoteResp(const NodeId& from, const RequestVoteResp& resp);

  void AppendToLog(LogEntry entry, bool remote_origin);
  void TruncateLog(uint64_t seqno);
  void AdvanceCommitAsPrimary();
  void SetCommit(uint64_t seqno);
  void RetireOldConfigs();
  void SendAppendEntries(const NodeId& peer);
  void BroadcastAppendEntries(bool force);
  bool HaveQuorumInEveryConfig(
      const std::function<bool(const NodeId&)>& counted) const;
  void ResetElectionTimer();
  bool MayStartElection() const;

  uint64_t ViewAt(uint64_t seqno) const;  // from view history
  const LogEntry& EntryAt(uint64_t seqno) const;

  NodeId id_;
  RaftConfig cfg_;
  RaftCallbacks* cb_;
  crypto::Drbg rng_;

  Role role_ = Role::kBackup;
  uint64_t view_ = 0;
  std::optional<NodeId> voted_for_;
  uint64_t voted_in_view_ = 0;
  std::optional<NodeId> leader_;

  // Log entries for seqnos (base_seqno_, base_seqno_ + log_.size()].
  std::vector<LogEntry> log_;
  uint64_t base_seqno_ = 0;
  uint64_t base_view_ = 0;
  uint64_t commit_seqno_ = 0;
  uint64_t last_sig_seqno_ = 0;
  uint64_t last_sig_view_ = 0;

  std::vector<Configuration> active_configs_;
  std::vector<std::pair<uint64_t, uint64_t>> view_history_;  // (view, start)
  std::vector<RoleEvent> role_history_;

  // Election state.
  uint64_t now_ms_ = 0;
  uint64_t election_deadline_ms_ = 0;
  uint64_t last_leader_contact_ms_ = 0;
  std::set<NodeId> votes_granted_;
  std::set<NodeId> learners_;
  std::set<NodeId> needs_snapshot_;  // primary-side laggard flags

  // Primary state.
  std::map<NodeId, uint64_t> next_seqno_;
  std::map<NodeId, uint64_t> match_seqno_;
  std::map<NodeId, uint64_t> peer_commit_;
  std::map<NodeId, uint64_t> last_response_ms_;
  std::map<NodeId, uint64_t> last_sent_ms_;
  uint64_t became_primary_ms_ = 0;

  // Observability (null until BindMetrics; every use is null-guarded).
  observe::Counter* m_elections_ = nullptr;
  observe::Counter* m_became_primary_ = nullptr;
  observe::Gauge* m_view_ = nullptr;
  observe::Gauge* m_commit_ = nullptr;
  observe::Histogram* m_append_batch_ = nullptr;
  observe::Histogram* m_commit_latency_ = nullptr;
  // Virtual-time submit stamps for entries this node replicated as
  // primary; drained into m_commit_latency_ when commit passes them,
  // pruned on rollback.
  std::map<uint64_t, uint64_t> submit_time_ms_;
};

}  // namespace ccf::consensus

#endif  // CCF_CONSENSUS_RAFT_H_
