// Types and wire messages for CCF's consensus layer (paper §4).
//
// The protocol is derived from Raft but adapted for trusted execution:
//   - commit points are signature transactions only (§4.1),
//   - election up-to-dateness compares last *signature* transactions (§4.2),
//   - reconfiguration is a single transaction switching between arbitrary
//     node sets, with majority quorums required in every active
//     configuration (§4.4).

#ifndef CCF_CONSENSUS_TYPES_H_
#define CCF_CONSENSUS_TYPES_H_

#include <memory>
#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf::consensus {

using NodeId = std::string;

// Transaction ID: the ordered pair (view, seqno) (paper §3.1).
struct TxId {
  uint64_t view = 0;
  uint64_t seqno = 0;

  bool operator==(const TxId&) const = default;
  std::string ToString() const {
    return std::to_string(view) + "." + std::to_string(seqno);
  }
};

// Transaction status as observed by a node (paper Figure 4).
enum class TxStatus {
  kUnknown,    // node has no evidence about this ID
  kPending,    // in the local ledger, not yet committed
  kCommitted,  // final
  kInvalid,    // final: can never commit
};

inline const char* TxStatusName(TxStatus s) {
  switch (s) {
    case TxStatus::kUnknown: return "Unknown";
    case TxStatus::kPending: return "Pending";
    case TxStatus::kCommitted: return "Committed";
    case TxStatus::kInvalid: return "Invalid";
  }
  return "?";
}

// A node configuration: the TRUSTED node set introduced by the
// reconfiguration transaction at `seqno` (paper §4.4).
struct Configuration {
  uint64_t seqno = 0;
  std::set<NodeId> nodes;

  bool operator==(const Configuration&) const = default;
};

// One replicated log entry. `data` is the serialized ledger::Entry, opaque
// to consensus; the flags it needs (signature / reconfiguration) are
// explicit.
struct LogEntry {
  uint64_t view = 0;
  uint64_t seqno = 0;
  bool is_signature = false;
  std::optional<Configuration> reconfig;
  std::shared_ptr<const Bytes> data;

  Bytes Serialize() const;
  static Result<LogEntry> Deserialize(ByteSpan bytes);
};

// ------------------------------------------------------------- Messages

struct AppendEntriesReq {
  uint64_t view = 0;
  // Transaction ID of the entry immediately preceding `entries`.
  uint64_t prev_view = 0;
  uint64_t prev_seqno = 0;
  uint64_t commit_seqno = 0;
  std::vector<LogEntry> entries;
};

struct AppendEntriesResp {
  uint64_t view = 0;
  bool success = false;
  // On success: highest seqno now matching the primary's log. On failure:
  // the responder's best guess at the latest common point (paper §4.2).
  uint64_t match_seqno = 0;
  // The responder's commit seqno (used to decide when a retiring learner
  // has fully caught up, §4.5).
  uint64_t commit_seqno = 0;
};

struct RequestVoteReq {
  uint64_t view = 0;
  // Transaction ID of the candidate's last signature transaction (§4.2).
  uint64_t last_sig_view = 0;
  uint64_t last_sig_seqno = 0;
};

struct RequestVoteResp {
  uint64_t view = 0;
  bool granted = false;
};

struct Message {
  NodeId from;
  std::variant<AppendEntriesReq, AppendEntriesResp, RequestVoteReq,
               RequestVoteResp>
      body;

  Bytes Serialize() const;
  static Result<Message> Deserialize(ByteSpan bytes);
};

// Consensus node roles (paper Figure 6: the TRUSTED states).
enum class Role { kBackup, kCandidate, kPrimary };

inline const char* RoleName(Role r) {
  switch (r) {
    case Role::kBackup: return "Backup";
    case Role::kCandidate: return "Candidate";
    case Role::kPrimary: return "Primary";
  }
  return "?";
}

}  // namespace ccf::consensus

#endif  // CCF_CONSENSUS_TYPES_H_
