#include "consensus/raft.h"

#include <algorithm>
#include <cassert>
#include <functional>

#include "common/logging.h"

namespace ccf::consensus {

namespace {
size_t MajorityOf(size_t n) { return n / 2 + 1; }
}  // namespace

RaftNode::RaftNode(NodeId id, RaftConfig config, RaftCallbacks* callbacks)
    : id_(std::move(id)),
      cfg_(config),
      cb_(callbacks),
      rng_("raft-" + id_, config.seed) {}

RaftNode::RaftNode(NodeId id, RaftConfig config, std::set<NodeId> initial_nodes,
                   bool start_as_primary, RaftCallbacks* callbacks)
    : RaftNode(std::move(id), config, callbacks) {
  active_configs_.push_back(Configuration{0, std::move(initial_nodes)});
  ResetElectionTimer();
  if (start_as_primary) {
    view_ = 1;
    view_history_.emplace_back(view_, 1);
    role_ = Role::kPrimary;
    leader_ = id_;
    became_primary_ms_ = 0;
    role_history_.push_back(RoleEvent{0, view_, role_});
    cb_->OnRoleChange(role_, view_);
  }
}

RaftNode RaftNode::Joiner(NodeId id, RaftConfig config, uint64_t base_view,
                          uint64_t base_seqno,
                          std::vector<Configuration> configs,
                          RaftCallbacks* callbacks) {
  RaftNode node(std::move(id), config, callbacks);
  node.base_seqno_ = base_seqno;
  node.base_view_ = base_view;
  node.commit_seqno_ = base_seqno;  // the snapshot only covers commits
  node.view_ = base_view;
  // Snapshots are taken at commit points, which are always at or after a
  // signature transaction (paper §3.2).
  node.last_sig_seqno_ = base_seqno;
  node.last_sig_view_ = base_view;
  node.active_configs_ = std::move(configs);
  if (base_view > 0) {
    // Coarse history: everything up to the base is attributed to base_view;
    // statuses below the base are answered as Committed/Invalid by seqno.
    node.view_history_.emplace_back(base_view, 1);
  }
  node.ResetElectionTimer();
  return node;
}

// ----------------------------------------------------------------- Timers

void RaftNode::ResetElectionTimer() {
  uint64_t span = cfg_.election_timeout_max_ms - cfg_.election_timeout_min_ms;
  uint64_t jitter = span > 0 ? rng_.Uniform(span + 1) : 0;
  election_deadline_ms_ = now_ms_ + cfg_.election_timeout_min_ms + jitter;
}

bool RaftNode::MayStartElection() const {
  // Paper §4.4: a newly added node participates in consensus (including
  // elections) once it has appended the first signature transaction
  // following the reconfiguration transaction that added it. The initial
  // configuration (seqno 0) is exempt to allow bootstrap.
  for (const Configuration& cfg : active_configs_) {
    if (cfg.nodes.count(id_) == 0) continue;
    if (cfg.seqno == 0) return true;
    if (last_sig_seqno_ > cfg.seqno) return true;
  }
  return false;
}

void RaftNode::Tick(uint64_t now_ms) {
  now_ms_ = std::max(now_ms_, now_ms);

  switch (role_) {
    case Role::kBackup:
    case Role::kCandidate:
      if (now_ms_ >= election_deadline_ms_ && MayStartElection()) {
        BecomeCandidate();
      }
      break;
    case Role::kPrimary: {
      // Paper §4.5: once the reconfiguration transaction removing this
      // primary from every active configuration has committed, it stops
      // sending heartbeats and steps down, but remains online replicating
      // its ledger and voting for new primaries.
      if (!InActiveConfig()) {
        LOG_INFO << id_ << " retired from configuration, stepping down";
        BecomeBackup(view_);
        return;
      }
      // Step down if a majority is unreachable (paper §4.2: a primary that
      // cannot make progress steps down cleanly).
      auto responded_recently = [&](const NodeId& n) {
        if (n == id_) return true;
        auto it = last_response_ms_.find(n);
        uint64_t last = it != last_response_ms_.end() ? it->second
                                                      : became_primary_ms_;
        return now_ms_ - last <= cfg_.primary_quiesce_timeout_ms;
      };
      if (!HaveQuorumInEveryConfig(responded_recently)) {
        LOG_INFO << id_ << " primary quiesced, stepping down in view "
                 << view_;
        BecomeBackup(view_);
        return;
      }
      BroadcastAppendEntries(/*force=*/false);
      break;
    }
  }
}

void RaftNode::BindMetrics(observe::Registry* reg) {
  m_elections_ = reg->GetCounter("consensus.elections");
  m_became_primary_ = reg->GetCounter("consensus.became_primary");
  m_view_ = reg->GetGauge("consensus.view");
  m_commit_ = reg->GetGauge("consensus.commit_seqno");
  m_append_batch_ = reg->GetHistogram("consensus.append_batch_entries");
  m_commit_latency_ = reg->GetHistogram("consensus.commit_latency_ms");
  m_view_->Set(view_);
  m_commit_->Set(commit_seqno_);
}

// ------------------------------------------------------------ Transitions

void RaftNode::BecomeBackup(uint64_t view) {
  bool changed = role_ != Role::kBackup || view != view_;
  view_ = view;
  role_ = Role::kBackup;
  if (m_view_ != nullptr) m_view_->Set(view_);
  votes_granted_.clear();
  ResetElectionTimer();
  if (changed) {
    role_history_.push_back(RoleEvent{now_ms_, view_, role_});
    cb_->OnRoleChange(role_, view_);
  }
}

void RaftNode::BecomeCandidate() {
  role_ = Role::kCandidate;
  ++view_;
  if (m_elections_ != nullptr) m_elections_->Inc();
  if (m_view_ != nullptr) m_view_->Set(view_);
  leader_.reset();
  voted_for_ = id_;
  voted_in_view_ = view_;
  votes_granted_ = {id_};
  ResetElectionTimer();
  LOG_DEBUG << id_ << " starts election in view " << view_;
  role_history_.push_back(RoleEvent{now_ms_, view_, role_});
  cb_->OnRoleChange(role_, view_);

  RequestVoteReq req;
  req.view = view_;
  req.last_sig_view = last_sig_view_;
  req.last_sig_seqno = last_sig_seqno_;
  for (const NodeId& peer : AllNodes()) {
    if (peer == id_) continue;
    cb_->Send(peer, Message{id_, req});
  }
  // Single-node configurations win instantly.
  if (HaveQuorumInEveryConfig(
          [&](const NodeId& n) { return votes_granted_.count(n) > 0; })) {
    BecomePrimary();
  }
}

void RaftNode::BecomePrimary() {
  LOG_INFO << id_ << " becomes primary in view " << view_;
  role_ = Role::kPrimary;
  leader_ = id_;
  became_primary_ms_ = now_ms_;
  if (m_became_primary_ != nullptr) m_became_primary_->Inc();
  role_history_.push_back(RoleEvent{now_ms_, view_, role_});

  // Paper §4.2: the new primary discards any transactions after its last
  // signature transaction.
  if (last_seqno() > last_sig_seqno_) {
    TruncateLog(last_sig_seqno_);
  }

  next_seqno_.clear();
  match_seqno_.clear();
  last_response_ms_.clear();
  last_sent_ms_.clear();
  needs_snapshot_.clear();
  for (const NodeId& peer : AllNodes()) {
    if (peer == id_) continue;
    next_seqno_[peer] = last_seqno() + 1;
    match_seqno_[peer] = 0;
    last_response_ms_[peer] = now_ms_;
  }

  // The node layer replicates a fresh signature transaction now: "the new
  // view will begin with a signature transaction" (§4.2).
  cb_->OnRoleChange(role_, view_);
  BroadcastAppendEntries(/*force=*/true);
}

// ------------------------------------------------------------------- Log

uint64_t RaftNode::ViewAt(uint64_t seqno) const {
  if (seqno == 0) return 0;
  if (seqno <= base_seqno_) return base_view_;
  uint64_t v = 0;
  for (const auto& [view, start] : view_history_) {
    if (start <= seqno) v = view;
  }
  return v;
}

const LogEntry& RaftNode::EntryAt(uint64_t seqno) const {
  assert(seqno > base_seqno_ && seqno <= last_seqno());
  return log_[seqno - base_seqno_ - 1];
}

const LogEntry* RaftNode::GetLogEntry(uint64_t seqno) const {
  if (seqno <= base_seqno_ || seqno > last_seqno()) return nullptr;
  return &log_[seqno - base_seqno_ - 1];
}

void RaftNode::AppendToLog(LogEntry entry, bool remote_origin) {
  assert(entry.seqno == last_seqno() + 1);
  if (view_history_.empty() || view_history_.back().first < entry.view) {
    view_history_.emplace_back(entry.view, entry.seqno);
  }
  if (entry.is_signature) {
    last_sig_seqno_ = entry.seqno;
    last_sig_view_ = entry.view;
  }
  if (entry.reconfig.has_value()) {
    // Paper §4.4: a configuration becomes active as soon as the
    // reconfiguration transaction is appended.
    active_configs_.push_back(*entry.reconfig);
    if (role_ == Role::kPrimary) {
      for (const NodeId& peer : entry.reconfig->nodes) {
        if (peer == id_ || next_seqno_.count(peer) > 0) continue;
        next_seqno_[peer] = entry.seqno;  // new joiner; back off as needed
        match_seqno_[peer] = 0;
        last_response_ms_[peer] = now_ms_;
      }
    }
  }
  log_.push_back(std::move(entry));
  if (remote_origin) cb_->OnAppend(log_.back());
}

void RaftNode::TruncateLog(uint64_t seqno) {
  assert(seqno >= base_seqno_);
  assert(seqno >= commit_seqno_);
  if (seqno >= last_seqno()) return;
  log_.resize(seqno - base_seqno_);
  // Rebuild derived state.
  while (!view_history_.empty() && view_history_.back().second > seqno) {
    view_history_.pop_back();
  }
  // Rolled-back reconfigurations are removed (paper §4.4); at least the
  // current (committed or initial) configuration always remains.
  while (active_configs_.size() > 1 && active_configs_.back().seqno > seqno) {
    active_configs_.pop_back();
  }
  last_sig_seqno_ = 0;
  last_sig_view_ = 0;
  for (auto it = log_.rbegin(); it != log_.rend(); ++it) {
    if (it->is_signature) {
      last_sig_seqno_ = it->seqno;
      last_sig_view_ = it->view;
      break;
    }
  }
  if (last_sig_seqno_ == 0 && base_seqno_ > 0) {
    // The snapshot base is always at or after a signature.
    last_sig_seqno_ = base_seqno_;
    last_sig_view_ = base_view_;
  }
  // Rolled-back entries will never commit under our stamp.
  submit_time_ms_.erase(submit_time_ms_.upper_bound(seqno),
                        submit_time_ms_.end());
  cb_->OnRollback(seqno);
}

void RaftNode::CompactTo(uint64_t seqno) {
  // Never drop uncommitted entries: they may still be rolled back, and
  // TruncateLog cannot cut below the base.
  seqno = std::min(seqno, commit_seqno_);
  if (seqno <= base_seqno_) return;
  // Capture the view before erasing: ViewAt answers from view_history_,
  // which is preserved across compaction (GetTxStatus still needs it).
  base_view_ = ViewAt(seqno);
  log_.erase(log_.begin(),
             log_.begin() + static_cast<ptrdiff_t>(seqno - base_seqno_));
  base_seqno_ = seqno;
}

void RaftNode::InstallSnapshot(uint64_t seqno, uint64_t view,
                               std::vector<Configuration> configs) {
  if (seqno <= commit_seqno_) return;
  // Mirror the Joiner bootstrap: the snapshot covers only committed state,
  // taken at or after a signature transaction (paper §3.2 / §5).
  log_.clear();
  base_seqno_ = seqno;
  base_view_ = view;
  commit_seqno_ = seqno;
  last_sig_seqno_ = seqno;
  last_sig_view_ = view;
  if (!configs.empty()) active_configs_ = std::move(configs);
  view_history_.clear();
  if (view > 0) {
    // Coarse history, as for a joiner: everything up to the base is
    // attributed to the snapshot's view.
    view_history_.emplace_back(view, 1);
  }
  view_ = std::max(view_, view);
  submit_time_ms_.clear();
  if (m_commit_ != nullptr) m_commit_->Set(commit_seqno_);
  if (m_view_ != nullptr) m_view_->Set(view_);
  ResetElectionTimer();
}

uint64_t RaftNode::MinPeerMatch() const {
  uint64_t min_match = last_seqno();
  auto consider = [&](const NodeId& peer) {
    if (peer == id_) return;
    auto it = match_seqno_.find(peer);
    min_match = std::min(
        min_match, it != match_seqno_.end() ? it->second : uint64_t{0});
  };
  for (const NodeId& peer : AllNodes()) consider(peer);
  for (const NodeId& peer : learners_) consider(peer);
  // Retiring nodes still being streamed to (tracked in the match map but
  // outside every configuration) hold compaction back too.
  for (const auto& [peer, match] : match_seqno_) consider(peer);
  return min_match;
}

// ---------------------------------------------------------------- Quorums

std::set<NodeId> RaftNode::AllNodes() const {
  std::set<NodeId> all;
  for (const Configuration& cfg : active_configs_) {
    all.insert(cfg.nodes.begin(), cfg.nodes.end());
  }
  return all;
}

bool RaftNode::InActiveConfig() const {
  for (const Configuration& cfg : active_configs_) {
    if (cfg.nodes.count(id_) > 0) return true;
  }
  return false;
}

bool RaftNode::HaveQuorumInEveryConfig(
    const std::function<bool(const NodeId&)>& counted) const {
  for (const Configuration& cfg : active_configs_) {
    size_t count = 0;
    for (const NodeId& n : cfg.nodes) {
      if (counted(n)) ++count;
    }
    if (count < MajorityOf(cfg.nodes.size())) return false;
  }
  return true;
}

// -------------------------------------------------------------- Primary

Status RaftNode::Replicate(uint64_t seqno, std::shared_ptr<const Bytes> data,
                           bool is_signature,
                           std::optional<Configuration> reconfig) {
  if (role_ != Role::kPrimary) {
    return Status::FailedPrecondition("raft: not the primary");
  }
  if (seqno != last_seqno() + 1) {
    return Status::InvalidArgument("raft: non-contiguous replicate");
  }
  LogEntry entry;
  entry.view = view_;
  entry.seqno = seqno;
  entry.is_signature = is_signature;
  entry.reconfig = std::move(reconfig);
  entry.data = std::move(data);
  AppendToLog(std::move(entry), /*remote_origin=*/false);
  if (m_commit_latency_ != nullptr) submit_time_ms_[seqno] = now_ms_;

  // Signature transactions flush eagerly (they gate commit latency);
  // regular entries ride the next heartbeat or the ack-driven stream
  // (each successful append_entries response immediately triggers the
  // next batch), which bounds outbound traffic per tick.
  if (is_signature) {
    BroadcastAppendEntries(/*force=*/true);
  }
  // Single-node configurations commit immediately.
  AdvanceCommitAsPrimary();
  return Status::Ok();
}

void RaftNode::AddLearner(const NodeId& peer) {
  if (peer == id_) return;
  learners_.insert(peer);
  if (role_ == Role::kPrimary && next_seqno_.count(peer) == 0) {
    next_seqno_[peer] = last_seqno() + 1;
    match_seqno_[peer] = 0;
    last_response_ms_[peer] = now_ms_;
  }
}

bool RaftNode::PeerCaughtUp(const NodeId& peer) const {
  auto it = match_seqno_.find(peer);
  if (it == match_seqno_.end() || it->second < last_seqno()) return false;
  if (commit_seqno_ < last_seqno()) return false;
  auto cit = peer_commit_.find(peer);
  return cit != peer_commit_.end() && cit->second >= last_seqno();
}

void RaftNode::BroadcastAppendEntries(bool force) {
  std::set<NodeId> targets = AllNodes();
  for (const NodeId& learner : learners_) {
    targets.insert(learner);
    if (next_seqno_.count(learner) == 0) {
      next_seqno_[learner] = last_seqno() + 1;
      match_seqno_[learner] = 0;
      last_response_ms_[learner] = now_ms_;
    }
  }
  // Nodes removed by a committed reconfiguration keep receiving entries
  // until they have caught up, so a retiring node learns that its own
  // retirement committed before shutting down (paper §4.5).
  for (auto it = match_seqno_.begin(); it != match_seqno_.end();) {
    const NodeId& peer = it->first;
    if (targets.count(peer) > 0) {
      ++it;
      continue;
    }
    if (PeerCaughtUp(peer)) {
      next_seqno_.erase(peer);
      last_response_ms_.erase(peer);
      last_sent_ms_.erase(peer);
      peer_commit_.erase(peer);
      it = match_seqno_.erase(it);
      continue;
    }
    targets.insert(peer);
    ++it;
  }
  for (const NodeId& peer : targets) {
    if (peer == id_) continue;
    auto it = last_sent_ms_.find(peer);
    bool due = force || it == last_sent_ms_.end() ||
               now_ms_ - it->second >= cfg_.heartbeat_interval_ms;
    if (due) SendAppendEntries(peer);
  }
}

void RaftNode::SendAppendEntries(const NodeId& peer) {
  uint64_t next = next_seqno_.count(peer) > 0 ? next_seqno_[peer]
                                              : last_seqno() + 1;
  next = std::max(next, base_seqno_ + 1);
  AppendEntriesReq req;
  req.view = view_;
  req.prev_seqno = next - 1;
  req.prev_view = ViewAt(next - 1);
  req.commit_seqno = commit_seqno_;
  uint64_t end = std::min(last_seqno(), next + cfg_.max_batch_entries - 1);
  for (uint64_t s = next; s <= end; ++s) {
    req.entries.push_back(EntryAt(s));
  }
  if (m_append_batch_ != nullptr) m_append_batch_->Record(req.entries.size());
  last_sent_ms_[peer] = now_ms_;
  cb_->Send(peer, Message{id_, req});
}

void RaftNode::AdvanceCommitAsPrimary() {
  if (role_ != Role::kPrimary) return;
  // Find the highest signature transaction of the current view that is
  // replicated to a majority of every active configuration.
  for (uint64_t s = last_sig_seqno_; s > commit_seqno_;) {
    const LogEntry* e = GetLogEntry(s);
    if (e == nullptr) break;
    if (e->is_signature && e->view == view_) {
      auto replicated = [&](const NodeId& n) {
        if (n == id_) return last_seqno() >= s;
        auto it = match_seqno_.find(n);
        return it != match_seqno_.end() && it->second >= s;
      };
      if (HaveQuorumInEveryConfig(replicated)) {
        SetCommit(s);
        return;
      }
    }
    // Walk back to the previous signature transaction.
    uint64_t prev = 0;
    for (uint64_t t = s - 1; t > commit_seqno_; --t) {
      const LogEntry* pe = GetLogEntry(t);
      if (pe != nullptr && pe->is_signature) {
        prev = t;
        break;
      }
    }
    if (prev == 0) break;
    s = prev;
  }
}

void RaftNode::SetCommit(uint64_t seqno) {
  if (seqno <= commit_seqno_) return;
  commit_seqno_ = seqno;
  if (m_commit_ != nullptr) m_commit_->Set(commit_seqno_);
  if (m_commit_latency_ != nullptr) {
    // Drain submit stamps up to the new commit point; virtual-time delta,
    // so the histogram is reproducible from the seed.
    auto it = submit_time_ms_.begin();
    while (it != submit_time_ms_.end() && it->first <= commit_seqno_) {
      m_commit_latency_->Record(now_ms_ - it->second);
      it = submit_time_ms_.erase(it);
    }
  }
  RetireOldConfigs();
  cb_->OnCommit(commit_seqno_);
}

void RaftNode::RetireOldConfigs() {
  // Paper §4.4: once a reconfiguration transaction is committed, all
  // earlier configurations are removed.
  size_t keep_from = 0;
  for (size_t i = 0; i < active_configs_.size(); ++i) {
    if (active_configs_[i].seqno <= commit_seqno_) keep_from = i;
  }
  if (keep_from > 0) {
    active_configs_.erase(active_configs_.begin(),
                          active_configs_.begin() + keep_from);
  }
}

// ------------------------------------------------------------- Receiving

void RaftNode::Receive(const Message& msg, uint64_t now_ms) {
  now_ms_ = std::max(now_ms_, now_ms);
  if (const auto* ae = std::get_if<AppendEntriesReq>(&msg.body)) {
    HandleAppendEntries(msg.from, *ae);
  } else if (const auto* resp = std::get_if<AppendEntriesResp>(&msg.body)) {
    HandleAppendEntriesResp(msg.from, *resp);
  } else if (const auto* rv = std::get_if<RequestVoteReq>(&msg.body)) {
    HandleRequestVote(msg.from, *rv);
  } else if (const auto* vr = std::get_if<RequestVoteResp>(&msg.body)) {
    HandleRequestVoteResp(msg.from, *vr);
  }
}

void RaftNode::HandleAppendEntries(const NodeId& from,
                                   const AppendEntriesReq& req) {
  if (req.view < view_) {
    // Stale primary: reply negatively with our view so it can update
    // itself (paper §4.2).
    AppendEntriesResp resp;
    resp.view = view_;
    resp.success = false;
    resp.match_seqno = last_seqno();
    resp.commit_seqno = commit_seqno_;
    cb_->Send(from, Message{id_, resp});
    return;
  }
  if (req.view > view_ || role_ != Role::kBackup) {
    BecomeBackup(req.view);
  }
  leader_ = from;
  last_leader_contact_ms_ = now_ms_;
  ResetElectionTimer();

  AppendEntriesResp resp;
  resp.view = view_;

  // Check the previous transaction ID (paper §4.1: "This check ensures
  // that if any two ledgers contain a transaction with the same ID then
  // the ledgers up to and including that transaction are identical").
  if (req.prev_seqno > last_seqno()) {
    resp.success = false;
    resp.match_seqno = last_seqno();  // latest possible common point
    resp.commit_seqno = commit_seqno_;
    cb_->Send(from, Message{id_, resp});
    return;
  }
  if (req.prev_seqno > base_seqno_ &&
      ViewAt(req.prev_seqno) != req.prev_view) {
    resp.success = false;
    resp.match_seqno = std::min(req.prev_seqno - 1, last_seqno());
    resp.commit_seqno = commit_seqno_;
    cb_->Send(from, Message{id_, resp});
    return;
  }

  uint64_t match = req.prev_seqno;
  uint64_t first_appended = 0;  // 0 = nothing fresh appended
  for (const LogEntry& entry : req.entries) {
    if (entry.seqno <= base_seqno_) {
      match = std::max(match, entry.seqno);
      continue;  // already compacted (committed)
    }
    if (entry.seqno <= last_seqno()) {
      if (EntryAt(entry.seqno).view == entry.view) {
        match = entry.seqno;
        continue;  // duplicate of what we have
      }
      // Conflict: the primary's ledger is ground truth (paper §4.2).
      TruncateLog(entry.seqno - 1);
    }
    if (entry.seqno != last_seqno() + 1) break;  // gap; stop here
    // Delivery to the node layer is batched below; fresh appends are
    // always a contiguous suffix of the request (once one is appended,
    // every later entry takes this branch or breaks).
    AppendToLog(entry, /*remote_origin=*/false);
    if (first_appended == 0) first_appended = entry.seqno;
    match = entry.seqno;
  }
  if (first_appended != 0) {
    // Pointers are collected only after the loop: AppendToLog grows log_
    // and would invalidate them.
    std::vector<const LogEntry*> batch;
    batch.reserve(last_seqno() - first_appended + 1);
    for (uint64_t s = first_appended; s <= last_seqno(); ++s) {
      batch.push_back(&EntryAt(s));
    }
    cb_->OnAppendBatch(batch);
  }

  if (req.commit_seqno > commit_seqno_) {
    // Cap at `match`, not last_seqno(): entries beyond the verified match
    // point may be a stale tail from an older view that the primary has
    // not yet overwritten.
    SetCommit(std::min(req.commit_seqno, match));
  }

  resp.success = true;
  resp.match_seqno = match;
  resp.commit_seqno = commit_seqno_;
  cb_->Send(from, Message{id_, resp});
}

void RaftNode::HandleAppendEntriesResp(const NodeId& from,
                                       const AppendEntriesResp& resp) {
  if (resp.view > view_) {
    BecomeBackup(resp.view);
    return;
  }
  if (role_ != Role::kPrimary || resp.view < view_) return;
  last_response_ms_[from] = now_ms_;
  peer_commit_[from] = std::max(peer_commit_[from], resp.commit_seqno);

  if (resp.success) {
    needs_snapshot_.erase(from);
    uint64_t prev_match = match_seqno_[from];
    match_seqno_[from] = std::max(prev_match, resp.match_seqno);
    next_seqno_[from] = match_seqno_[from] + 1;
    AdvanceCommitAsPrimary();
    if (last_seqno() >= next_seqno_[from]) {
      SendAppendEntries(from);  // keep streaming to lagging peers
    }
  } else {
    // Back off using the responder's hint (paper §4.2: "utilizing the
    // information provided by the backup").
    uint64_t hint_next = resp.match_seqno + 1;
    if (hint_next <= base_seqno_) {
      // The entry this peer needs next was compacted away: only a snapshot
      // can serve it. The node layer watches this set and ships one.
      needs_snapshot_.insert(from);
    }
    uint64_t current_next = next_seqno_.count(from) > 0 ? next_seqno_[from]
                                                        : last_seqno() + 1;
    next_seqno_[from] =
        std::max<uint64_t>(base_seqno_ + 1,
                           std::min(hint_next, current_next - 1));
    SendAppendEntries(from);
  }
}

void RaftNode::HandleRequestVote(const NodeId& from,
                                 const RequestVoteReq& req) {
  // Sticky leader: while we hear regular heartbeats from a live primary,
  // ignore higher-view vote requests. This stops nodes removed by a
  // reconfiguration (or briefly partitioned) from disrupting a healthy
  // cluster (cf. Raft §6 / CCF's election guard).
  if (req.view > view_ && leader_.has_value() &&
      now_ms_ - last_leader_contact_ms_ < cfg_.election_timeout_min_ms) {
    RequestVoteResp resp;
    resp.view = view_;
    resp.granted = false;
    cb_->Send(from, Message{id_, resp});
    return;
  }
  if (req.view > view_) {
    BecomeBackup(req.view);
  }
  RequestVoteResp resp;
  resp.view = view_;
  resp.granted = false;
  if (req.view == view_ &&
      (voted_in_view_ != view_ || !voted_for_.has_value() ||
       *voted_for_ == from)) {
    // Paper §4.2: grant iff the candidate's last signature transaction is
    // at least as up-to-date as ours.
    bool up_to_date =
        req.last_sig_view > last_sig_view_ ||
        (req.last_sig_view == last_sig_view_ &&
         req.last_sig_seqno >= last_sig_seqno_);
    if (up_to_date) {
      resp.granted = true;
      voted_for_ = from;
      voted_in_view_ = view_;
      ResetElectionTimer();
    }
  }
  cb_->Send(from, Message{id_, resp});
}

void RaftNode::HandleRequestVoteResp(const NodeId& from,
                                     const RequestVoteResp& resp) {
  if (resp.view > view_) {
    BecomeBackup(resp.view);
    return;
  }
  if (role_ != Role::kCandidate || resp.view != view_ || !resp.granted) {
    return;
  }
  votes_granted_.insert(from);
  if (HaveQuorumInEveryConfig(
          [&](const NodeId& n) { return votes_granted_.count(n) > 0; })) {
    BecomePrimary();
  }
}

// ---------------------------------------------------------------- Status

TxStatus RaftNode::GetTxStatus(uint64_t view, uint64_t seqno) const {
  if (seqno == 0) return TxStatus::kInvalid;
  // Invalid if a greater view started at this seqno or earlier (§4.3).
  for (const auto& [v, start] : view_history_) {
    if (v > view && start <= seqno) return TxStatus::kInvalid;
  }
  if (seqno <= last_seqno()) {
    uint64_t entry_view = ViewAt(seqno);
    if (entry_view == view) {
      return seqno <= commit_seqno_ ? TxStatus::kCommitted
                                    : TxStatus::kPending;
    }
    if (seqno <= commit_seqno_) return TxStatus::kInvalid;
  }
  return TxStatus::kUnknown;
}

void RaftNode::TestInstallLog(std::vector<LogEntry> entries, uint64_t view) {
  log_.clear();
  view_history_.clear();
  base_seqno_ = 0;
  base_view_ = 0;
  commit_seqno_ = 0;
  last_sig_seqno_ = 0;
  last_sig_view_ = 0;
  view_ = view;
  for (LogEntry& e : entries) {
    AppendToLog(std::move(e), /*remote_origin=*/false);
  }
}

}  // namespace ccf::consensus
