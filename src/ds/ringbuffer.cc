#include "ds/ringbuffer.h"

#include <cassert>
#include <cstring>

namespace ccf::ds {

namespace {
size_t RoundUpPow2(size_t n) {
  size_t p = 64;
  while (p < n) p <<= 1;
  return p;
}
}  // namespace

RingBuffer::RingBuffer(size_t capacity)
    : capacity_(RoundUpPow2(capacity)),
      mask_(capacity_ - 1),
      storage_(capacity_ / 8, 0) {}

bool RingBuffer::TryWrite(uint32_t type, ByteSpan payload) {
  assert(type < kPadType);
  size_t total = kHeaderSize + Align8(payload.size());
  if (total > max_payload_size() + kHeaderSize) {
    return false;  // can never fit
  }

  uint64_t msg_offset;
  uint64_t pad = 0;
  while (true) {
    uint64_t h = head_.load(std::memory_order_acquire);
    uint64_t t = tail_.load(std::memory_order_acquire);
    uint64_t pos = h & mask_;
    pad = (pos + total > capacity_) ? (capacity_ - pos) : 0;
    uint64_t need = pad + total;
    if (h + need - t > capacity_) {
      return false;  // full
    }
    if (head_.compare_exchange_weak(h, h + need, std::memory_order_acq_rel)) {
      msg_offset = h + pad;
      if (pad != 0) {
        // Publish a padding message covering [h, h+pad).
        HeaderAt(h).store(
            kReadyBit | (uint64_t{kPadType} << 32) | (pad - kHeaderSize),
            std::memory_order_release);
      }
      break;
    }
  }

  if (!payload.empty()) {
    std::memcpy(BytesAt(msg_offset + kHeaderSize), payload.data(),
                payload.size());
  }
  HeaderAt(msg_offset)
      .store(kReadyBit | (uint64_t{type} << 32) | payload.size(),
             std::memory_order_release);
  return true;
}

bool RingBuffer::TryRead(uint32_t* type, Bytes* payload) {
  while (true) {
    uint64_t t = tail_.load(std::memory_order_relaxed);
    if (t == head_.load(std::memory_order_acquire)) {
      return false;  // empty
    }
    uint64_t hdr = HeaderAt(t).load(std::memory_order_acquire);
    if ((hdr & kReadyBit) == 0) {
      return false;  // reserved but not yet published
    }
    uint32_t msg_type = static_cast<uint32_t>((hdr >> 32) & 0x7fffffff);
    size_t size = static_cast<size_t>(hdr & 0xffffffff);
    size_t span = kHeaderSize + Align8(size);

    if (msg_type == kPadType) {
      // Zero the padding region and skip it.
      std::memset(BytesAt(t), 0, span);
      tail_.store(t + span, std::memory_order_release);
      continue;
    }

    payload->assign(BytesAt(t + kHeaderSize), BytesAt(t + kHeaderSize) + size);
    *type = msg_type;
    std::memset(BytesAt(t), 0, span);
    tail_.store(t + span, std::memory_order_release);
    return true;
  }
}

}  // namespace ccf::ds
