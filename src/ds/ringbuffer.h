// Lock-free multi-producer single-consumer ring buffer.
//
// The paper (§7): "The host and the TEE communicate via a pair of lock-free
// multi-producer single-consumer ringbuffers to minimize the expensive
// transitions to/from the TEE." This is that structure: producers reserve
// space with a CAS on the head offset, write the message body, then publish
// it by storing the header word with release semantics; the single consumer
// processes messages in reservation order.
//
// Message layout (8-byte aligned):
//   u64 header = kReadyBit | (type << 32) | payload_size
//   payload bytes, zero-padded to 8 bytes.
// A kPadType message fills the tail of the buffer when a message would
// otherwise straddle the wrap-around point.

#ifndef CCF_DS_RINGBUFFER_H_
#define CCF_DS_RINGBUFFER_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "common/bytes.h"

namespace ccf::ds {

class RingBuffer {
 public:
  // `capacity` is rounded up to a power of two, minimum 64 bytes.
  explicit RingBuffer(size_t capacity);

  RingBuffer(const RingBuffer&) = delete;
  RingBuffer& operator=(const RingBuffer&) = delete;

  // Producer side (any thread). Returns false if there is no space.
  // `type` must be < 2^31 and not kPadType; payload must fit the buffer.
  bool TryWrite(uint32_t type, ByteSpan payload);

  // Consumer side (single thread). Returns false if no message is ready.
  bool TryRead(uint32_t* type, Bytes* payload);

  // True when all published messages have been consumed. Only meaningful
  // when producers are quiescent.
  bool Empty() const {
    return tail_.load(std::memory_order_acquire) ==
           head_.load(std::memory_order_acquire);
  }

  size_t capacity() const { return capacity_; }

  // Bytes reserved but not yet consumed (headers and pad messages
  // included). Approximate under concurrent producers; used for occupancy
  // gauges.
  size_t used_bytes() const {
    return static_cast<size_t>(head_.load(std::memory_order_acquire) -
                               tail_.load(std::memory_order_acquire));
  }

  // Largest payload a buffer of this capacity can carry.
  size_t max_payload_size() const { return capacity_ / 2 - kHeaderSize; }

  static constexpr uint32_t kPadType = 0x7fffffff;

 private:
  static constexpr size_t kHeaderSize = 8;
  static constexpr uint64_t kReadyBit = uint64_t{1} << 63;

  static size_t Align8(size_t n) { return (n + 7) & ~size_t{7}; }

  std::atomic<uint64_t>& HeaderAt(uint64_t logical_offset) {
    return *reinterpret_cast<std::atomic<uint64_t>*>(
        &storage_[(logical_offset & mask_) / 8]);
  }
  uint8_t* BytesAt(uint64_t logical_offset) {
    return reinterpret_cast<uint8_t*>(storage_.data()) +
           (logical_offset & mask_);
  }

  size_t capacity_;
  uint64_t mask_;
  std::vector<uint64_t> storage_;  // 8-aligned backing store, zeroed.
  std::atomic<uint64_t> head_{0};  // next logical write offset
  std::atomic<uint64_t> tail_{0};  // next logical read offset
};

}  // namespace ccf::ds

#endif  // CCF_DS_RINGBUFFER_H_
