// Persistent (immutable) map based on the Compressed Hash-Array Mapped
// Prefix-tree, CHAMP (Steindorfer & Vinju, 2016).
//
// The paper (§7) bases CCF's key-value maps on CHAMP: updates produce new
// map versions sharing structure with old ones, so the store can keep one
// root per ledger version and roll back uncommitted suffixes in O(1) after
// a view change (§4.2) — this is the design rationale reproduced here.
//
// Put/Remove are path-copying and O(log32 n); lookups are O(log32 n).
// Instances are cheap to copy (shared_ptr to root) and safe to read from
// multiple threads.

#ifndef CCF_DS_CHAMP_H_
#define CCF_DS_CHAMP_H_

#include <bit>
#include <cstdint>
#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"

namespace ccf::ds {

// Deterministic 64-bit FNV-1a, used so map layout does not depend on the
// standard library's std::hash.
inline uint64_t Fnv1a64(const uint8_t* data, size_t len) {
  uint64_t h = 0xcbf29ce484222325ULL;
  for (size_t i = 0; i < len; ++i) {
    h ^= data[i];
    h *= 0x100000001b3ULL;
  }
  return h;
}

// Key traits for byte-string-like keys (Bytes, std::string).
template <typename K>
struct ChampKeyOps {
  static uint64_t Hash(const K& k) {
    return Fnv1a64(reinterpret_cast<const uint8_t*>(k.data()), k.size());
  }
  static bool Equal(const K& a, const K& b) { return a == b; }
};

template <typename K, typename V, typename Ops = ChampKeyOps<K>>
class ChampMap {
 public:
  ChampMap() = default;

  size_t size() const { return size_; }
  bool empty() const { return size_ == 0; }

  // Returns nullptr if absent. The pointer is valid as long as this map
  // instance (or a descendant sharing the entry) is alive.
  const V* Get(const K& key) const {
    if (root_ == nullptr) return nullptr;
    const Node* node = root_.get();
    uint64_t hash = Ops::Hash(key);
    int depth = 0;
    while (true) {
      if (depth >= kMaxDepth) {
        for (const Entry& e : node->data) {
          if (Ops::Equal(e.key, key)) return &e.value;
        }
        return nullptr;
      }
      uint32_t bit = BitFor(hash, depth);
      if (node->datamap & bit) {
        const Entry& e = node->data[DataIndex(node->datamap, bit)];
        return Ops::Equal(e.key, key) ? &e.value : nullptr;
      }
      if (node->nodemap & bit) {
        node = node->children[NodeIndex(node->nodemap, bit)].get();
        ++depth;
        continue;
      }
      return nullptr;
    }
  }

  bool Contains(const K& key) const { return Get(key) != nullptr; }

  // Returns a new map with key -> value (insert or replace).
  ChampMap Put(const K& key, V value) const {
    bool replaced = false;
    NodePtr new_root = PutRec(root_, 0, Ops::Hash(key), key,
                              std::move(value), &replaced);
    ChampMap out;
    out.root_ = std::move(new_root);
    out.size_ = size_ + (replaced ? 0 : 1);
    return out;
  }

  // Returns a new map without `key` (same map if absent).
  ChampMap Remove(const K& key) const {
    if (root_ == nullptr) return *this;
    bool removed = false;
    NodePtr new_root = RemoveRec(root_, 0, Ops::Hash(key), key, &removed);
    if (!removed) return *this;
    ChampMap out;
    out.root_ = std::move(new_root);
    out.size_ = size_ - 1;
    return out;
  }

  // In-order over trie structure (deterministic for a given content
  // history, but not sorted). Callback returns false to stop early.
  void ForEach(const std::function<bool(const K&, const V&)>& fn) const {
    if (root_ != nullptr) ForEachRec(root_.get(), fn);
  }

 private:
  static constexpr int kBitsPerLevel = 5;
  static constexpr int kMaxDepth = 12;  // 12*5 = 60 bits of 64-bit hash.

  struct Entry {
    K key;
    V value;
  };
  struct Node;
  using NodePtr = std::shared_ptr<const Node>;

  // CHAMP node: `datamap` marks slots holding inline entries, `nodemap`
  // marks slots holding children; the two sets are disjoint. At kMaxDepth
  // the node degenerates into a collision list (both maps zero).
  struct Node {
    uint32_t datamap = 0;
    uint32_t nodemap = 0;
    std::vector<Entry> data;
    std::vector<NodePtr> children;
  };

  static uint32_t BitFor(uint64_t hash, int depth) {
    return uint32_t{1} << ((hash >> (kBitsPerLevel * depth)) & 0x1F);
  }
  static int DataIndex(uint32_t datamap, uint32_t bit) {
    return std::popcount(datamap & (bit - 1));
  }
  static int NodeIndex(uint32_t nodemap, uint32_t bit) {
    return std::popcount(nodemap & (bit - 1));
  }

  static NodePtr MakeLeafPair(int depth, uint64_t h1, Entry e1, uint64_t h2,
                              Entry e2) {
    auto node = std::make_shared<Node>();
    if (depth >= kMaxDepth) {
      node->data.push_back(std::move(e1));
      node->data.push_back(std::move(e2));
      return node;
    }
    uint32_t b1 = BitFor(h1, depth);
    uint32_t b2 = BitFor(h2, depth);
    if (b1 == b2) {
      node->nodemap = b1;
      node->children.push_back(
          MakeLeafPair(depth + 1, h1, std::move(e1), h2, std::move(e2)));
    } else {
      node->datamap = b1 | b2;
      if (b1 < b2) {
        node->data.push_back(std::move(e1));
        node->data.push_back(std::move(e2));
      } else {
        node->data.push_back(std::move(e2));
        node->data.push_back(std::move(e1));
      }
    }
    return node;
  }

  static NodePtr PutRec(const NodePtr& node, int depth, uint64_t hash,
                        const K& key, V value, bool* replaced) {
    if (node == nullptr) {
      auto fresh = std::make_shared<Node>();
      if (depth >= kMaxDepth) {
        fresh->data.push_back(Entry{key, std::move(value)});
      } else {
        fresh->datamap = BitFor(hash, depth);
        fresh->data.push_back(Entry{key, std::move(value)});
      }
      return fresh;
    }

    if (depth >= kMaxDepth) {
      // Collision node: linear list.
      auto copy = std::make_shared<Node>(*node);
      for (Entry& e : copy->data) {
        if (Ops::Equal(e.key, key)) {
          e.value = std::move(value);
          *replaced = true;
          return copy;
        }
      }
      copy->data.push_back(Entry{key, std::move(value)});
      return copy;
    }

    uint32_t bit = BitFor(hash, depth);
    if (node->datamap & bit) {
      int idx = DataIndex(node->datamap, bit);
      const Entry& existing = node->data[idx];
      if (Ops::Equal(existing.key, key)) {
        auto copy = std::make_shared<Node>(*node);
        copy->data[idx].value = std::move(value);
        *replaced = true;
        return copy;
      }
      // Push both entries one level down.
      uint64_t existing_hash = Ops::Hash(existing.key);
      NodePtr sub =
          MakeLeafPair(depth + 1, existing_hash, existing, hash,
                       Entry{key, std::move(value)});
      auto copy = std::make_shared<Node>(*node);
      copy->data.erase(copy->data.begin() + idx);
      copy->datamap &= ~bit;
      int nidx = NodeIndex(copy->nodemap, bit);
      copy->children.insert(copy->children.begin() + nidx, std::move(sub));
      copy->nodemap |= bit;
      return copy;
    }
    if (node->nodemap & bit) {
      int nidx = NodeIndex(node->nodemap, bit);
      NodePtr child = PutRec(node->children[nidx], depth + 1, hash, key,
                             std::move(value), replaced);
      auto copy = std::make_shared<Node>(*node);
      copy->children[nidx] = std::move(child);
      return copy;
    }
    // Empty slot: insert inline.
    auto copy = std::make_shared<Node>(*node);
    int idx = DataIndex(copy->datamap, bit);
    copy->data.insert(copy->data.begin() + idx, Entry{key, std::move(value)});
    copy->datamap |= bit;
    return copy;
  }

  static NodePtr RemoveRec(const NodePtr& node, int depth, uint64_t hash,
                           const K& key, bool* removed) {
    if (depth >= kMaxDepth) {
      auto copy = std::make_shared<Node>(*node);
      for (size_t i = 0; i < copy->data.size(); ++i) {
        if (Ops::Equal(copy->data[i].key, key)) {
          copy->data.erase(copy->data.begin() + i);
          *removed = true;
          break;
        }
      }
      if (copy->data.empty()) return nullptr;
      return copy;
    }

    uint32_t bit = BitFor(hash, depth);
    if (node->datamap & bit) {
      int idx = DataIndex(node->datamap, bit);
      if (!Ops::Equal(node->data[idx].key, key)) return node;
      auto copy = std::make_shared<Node>(*node);
      copy->data.erase(copy->data.begin() + idx);
      copy->datamap &= ~bit;
      *removed = true;
      if (copy->data.empty() && copy->children.empty()) return nullptr;
      return copy;
    }
    if (node->nodemap & bit) {
      int nidx = NodeIndex(node->nodemap, bit);
      NodePtr child = RemoveRec(node->children[nidx], depth + 1, hash, key,
                                removed);
      if (!*removed) return node;
      auto copy = std::make_shared<Node>(*node);
      if (child == nullptr) {
        copy->children.erase(copy->children.begin() + nidx);
        copy->nodemap &= ~bit;
        if (copy->data.empty() && copy->children.empty()) return nullptr;
      } else if (child->children.empty() && child->data.size() == 1) {
        // CHAMP canonical form: inline single-entry subnodes.
        copy->children.erase(copy->children.begin() + nidx);
        copy->nodemap &= ~bit;
        int didx = DataIndex(copy->datamap, bit);
        copy->data.insert(copy->data.begin() + didx, child->data[0]);
        copy->datamap |= bit;
      } else {
        copy->children[nidx] = std::move(child);
      }
      return copy;
    }
    return node;
  }

  static bool ForEachRec(const Node* node,
                         const std::function<bool(const K&, const V&)>& fn) {
    for (const Entry& e : node->data) {
      if (!fn(e.key, e.value)) return false;
    }
    for (const NodePtr& child : node->children) {
      if (!ForEachRec(child.get(), fn)) return false;
    }
    return true;
  }

  NodePtr root_;
  size_t size_ = 0;
};

}  // namespace ccf::ds

#endif  // CCF_DS_CHAMP_H_
