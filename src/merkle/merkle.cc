#include "merkle/merkle.h"

#include <bit>
#include <cassert>

#include "common/buffer.h"

namespace ccf::merkle {

namespace {

// Largest power of two strictly smaller than n (n >= 2).
uint64_t SplitPoint(uint64_t n) {
  return std::bit_floor(n - 1);
}

}  // namespace

Digest LeafHash(ByteSpan data) {
  crypto::Sha256 h;
  uint8_t prefix = 0x00;
  h.Update(ByteSpan(&prefix, 1));
  h.Update(data);
  return h.Finish();
}

Digest InteriorHash(const Digest& left, const Digest& right) {
  crypto::Sha256 h;
  uint8_t prefix = 0x01;
  h.Update(ByteSpan(&prefix, 1));
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

Digest ComputeRootFromProof(const Digest& leaf, const Proof& proof) {
  Digest r = leaf;
  for (const ProofStep& step : proof.path) {
    if (step.side == ProofStep::Side::kLeft) {
      r = InteriorHash(step.digest, r);
    } else {
      r = InteriorHash(r, step.digest);
    }
  }
  return r;
}

Bytes Proof::Serialize() const {
  BufWriter w;
  w.U64(leaf_index);
  w.U64(tree_size);
  w.U32(static_cast<uint32_t>(path.size()));
  for (const ProofStep& step : path) {
    w.U8(static_cast<uint8_t>(step.side));
    w.Raw(ByteSpan(step.digest.data(), step.digest.size()));
  }
  return w.Take();
}

Result<Proof> Proof::Deserialize(ByteSpan data) {
  BufReader r(data);
  Proof proof;
  ASSIGN_OR_RETURN(proof.leaf_index, r.U64());
  ASSIGN_OR_RETURN(proof.tree_size, r.U64());
  ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (n > 64) {
    return Status::InvalidArgument("merkle: proof path too long");
  }
  for (uint32_t i = 0; i < n; ++i) {
    ProofStep step;
    ASSIGN_OR_RETURN(uint8_t side, r.U8());
    if (side > 1) {
      return Status::InvalidArgument("merkle: invalid proof side");
    }
    step.side = static_cast<ProofStep::Side>(side);
    ASSIGN_OR_RETURN(Bytes d, r.Raw(crypto::kSha256DigestSize));
    std::copy(d.begin(), d.end(), step.digest.begin());
    proof.path.push_back(step);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("merkle: trailing proof bytes");
  }
  return proof;
}

void MerkleTree::Append(ByteSpan data) {
  ++stats_.leaf_hashes;
  AppendLeafHash(LeafHash(data));
}

void MerkleTree::AppendLeafHash(const Digest& leaf) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf);
  // Complete parent subtrees along the right edge.
  for (size_t h = 0; h + 1 <= levels_.size(); ++h) {
    if (levels_[h].size() % 2 != 0) break;
    if (h + 1 == levels_.size()) levels_.emplace_back();
    size_t n = levels_[h].size();
    levels_[h + 1].push_back(InteriorHash(levels_[h][n - 2], levels_[h][n - 1]));
    ++stats_.interior_hashes;
  }
}

void MerkleTree::AppendBatch(std::span<const Bytes> leaves) {
  if (leaves.empty()) return;
  std::vector<Digest> digests(leaves.size());

  // Leaf hashing: groups of four equal-length contents go through the
  // 4-way kernel. The leaf hash is SHA-256(0x00 || content), so the
  // prefixed buffers are materialized in one scratch allocation; ledger
  // transaction leaves are fixed-size, so in practice every full group of
  // four qualifies.
  std::vector<uint8_t> scratch;
  size_t i = 0;
  while (i + 4 <= leaves.size()) {
    const size_t len = leaves[i].size();
    if (leaves[i + 1].size() != len || leaves[i + 2].size() != len ||
        leaves[i + 3].size() != len) {
      digests[i] = LeafHash(leaves[i]);
      ++stats_.leaf_hashes;
      ++i;
      continue;
    }
    scratch.resize(4 * (len + 1));
    const uint8_t* ptrs[4];
    for (int l = 0; l < 4; ++l) {
      uint8_t* dst = scratch.data() + l * (len + 1);
      dst[0] = 0x00;
      std::copy(leaves[i + l].begin(), leaves[i + l].end(), dst + 1);
      ptrs[l] = dst;
    }
    crypto::Sha256Digest out[4];
    crypto::Sha256x4(ptrs, len + 1, out);
    for (int l = 0; l < 4; ++l) digests[i + l] = out[l];
    stats_.leaf_hashes += 4;
    ++stats_.x4_groups;
    i += 4;
  }
  for (; i < leaves.size(); ++i) {
    digests[i] = LeafHash(leaves[i]);
    ++stats_.leaf_hashes;
  }

  AppendLeafHashes(digests);
}

void MerkleTree::AppendLeafHashes(std::span<const Digest> leaves) {
  if (leaves.empty()) return;
  if (levels_.empty()) levels_.emplace_back();
  stats_.batched_leaves += leaves.size();
  levels_[0].insert(levels_[0].end(), leaves.begin(), leaves.end());

  // Rebuild the complete-subtree levels bottom-up. The incremental
  // invariant is levels_[h+1].size() == levels_[h].size() / 2 for every h,
  // so each level just extends its parent level to the new target; the new
  // parents are hashed four at a time through the 4-way kernel.
  for (size_t h = 0;; ++h) {
    const size_t target = levels_[h].size() / 2;
    if (h + 1 == levels_.size()) {
      if (target == 0) break;
      levels_.emplace_back();
    }
    const std::vector<Digest>& child = levels_[h];
    std::vector<Digest>& parent = levels_[h + 1];
    size_t j = parent.size();
    if (j >= target) break;  // nothing new at this level => none above
    uint8_t buf[4][65];
    while (j + 4 <= target) {
      const uint8_t* ptrs[4];
      for (int l = 0; l < 4; ++l) {
        buf[l][0] = 0x01;
        std::copy(child[2 * (j + l)].begin(), child[2 * (j + l)].end(),
                  buf[l] + 1);
        std::copy(child[2 * (j + l) + 1].begin(), child[2 * (j + l) + 1].end(),
                  buf[l] + 33);
        ptrs[l] = buf[l];
      }
      crypto::Sha256Digest out[4];
      crypto::Sha256x4(ptrs, 65, out);
      parent.insert(parent.end(), out, out + 4);
      stats_.interior_hashes += 4;
      ++stats_.x4_groups;
      j += 4;
    }
    for (; j < target; ++j) {
      parent.push_back(InteriorHash(child[2 * j], child[2 * j + 1]));
      ++stats_.interior_hashes;
    }
  }
}

Digest MerkleTree::RangeHash(uint64_t lo, uint64_t hi) const {
  assert(hi > lo);
  uint64_t len = hi - lo;
  // Complete aligned subtree: O(1) lookup.
  if (std::has_single_bit(len) && lo % len == 0) {
    int h = std::countr_zero(len);
    if (h < static_cast<int>(levels_.size()) &&
        (lo >> h) < levels_[h].size()) {
      return levels_[h][lo >> h];
    }
  }
  if (len == 1) return levels_[0][lo];
  uint64_t k = SplitPoint(len);
  return InteriorHash(RangeHash(lo, lo + k), RangeHash(lo + k, hi));
}

Digest MerkleTree::Root() const {
  if (size() == 0) return crypto::Sha256::Hash({});
  return RangeHash(0, size());
}

Result<Digest> MerkleTree::RootAt(uint64_t n) const {
  if (n > size()) {
    return Status::OutOfRange("merkle: RootAt beyond tree size");
  }
  if (n == 0) return crypto::Sha256::Hash({});
  return RangeHash(0, n);
}

void MerkleTree::PathRec(uint64_t m, uint64_t lo, uint64_t hi,
                         std::vector<ProofStep>* out) const {
  if (hi - lo == 1) return;
  uint64_t k = SplitPoint(hi - lo);
  if (m < lo + k) {
    PathRec(m, lo, lo + k, out);
    out->push_back({ProofStep::Side::kRight, RangeHash(lo + k, hi)});
  } else {
    PathRec(m, lo + k, hi, out);
    out->push_back({ProofStep::Side::kLeft, RangeHash(lo, lo + k)});
  }
}

Result<Proof> MerkleTree::GetProof(uint64_t index, uint64_t tree_size) const {
  if (tree_size > size()) {
    return Status::OutOfRange("merkle: proof tree_size beyond tree");
  }
  if (index >= tree_size) {
    return Status::OutOfRange("merkle: leaf index beyond tree_size");
  }
  Proof proof;
  proof.leaf_index = index;
  proof.tree_size = tree_size;
  PathRec(index, 0, tree_size, &proof.path);
  return proof;
}

Result<Digest> MerkleTree::LeafAt(uint64_t index) const {
  if (index >= size()) {
    return Status::OutOfRange("merkle: leaf index beyond tree");
  }
  return levels_[0][index];
}

void MerkleTree::Truncate(uint64_t n) {
  if (levels_.empty()) return;
  for (size_t h = 0; h < levels_.size(); ++h) {
    size_t keep = static_cast<size_t>(n >> h);
    if (levels_[h].size() > keep) levels_[h].resize(keep);
  }
  while (levels_.size() > 1 && levels_.back().empty()) levels_.pop_back();
}

}  // namespace ccf::merkle
