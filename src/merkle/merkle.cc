#include "merkle/merkle.h"

#include <bit>
#include <cassert>

#include "common/buffer.h"

namespace ccf::merkle {

namespace {

// Largest power of two strictly smaller than n (n >= 2).
uint64_t SplitPoint(uint64_t n) {
  return std::bit_floor(n - 1);
}

}  // namespace

Digest LeafHash(ByteSpan data) {
  crypto::Sha256 h;
  uint8_t prefix = 0x00;
  h.Update(ByteSpan(&prefix, 1));
  h.Update(data);
  return h.Finish();
}

Digest InteriorHash(const Digest& left, const Digest& right) {
  crypto::Sha256 h;
  uint8_t prefix = 0x01;
  h.Update(ByteSpan(&prefix, 1));
  h.Update(left);
  h.Update(right);
  return h.Finish();
}

Digest ComputeRootFromProof(const Digest& leaf, const Proof& proof) {
  Digest r = leaf;
  for (const ProofStep& step : proof.path) {
    if (step.side == ProofStep::Side::kLeft) {
      r = InteriorHash(step.digest, r);
    } else {
      r = InteriorHash(r, step.digest);
    }
  }
  return r;
}

Bytes Proof::Serialize() const {
  BufWriter w;
  w.U64(leaf_index);
  w.U64(tree_size);
  w.U32(static_cast<uint32_t>(path.size()));
  for (const ProofStep& step : path) {
    w.U8(static_cast<uint8_t>(step.side));
    w.Raw(ByteSpan(step.digest.data(), step.digest.size()));
  }
  return w.Take();
}

Result<Proof> Proof::Deserialize(ByteSpan data) {
  BufReader r(data);
  Proof proof;
  ASSIGN_OR_RETURN(proof.leaf_index, r.U64());
  ASSIGN_OR_RETURN(proof.tree_size, r.U64());
  ASSIGN_OR_RETURN(uint32_t n, r.U32());
  if (n > 64) {
    return Status::InvalidArgument("merkle: proof path too long");
  }
  for (uint32_t i = 0; i < n; ++i) {
    ProofStep step;
    ASSIGN_OR_RETURN(uint8_t side, r.U8());
    if (side > 1) {
      return Status::InvalidArgument("merkle: invalid proof side");
    }
    step.side = static_cast<ProofStep::Side>(side);
    ASSIGN_OR_RETURN(Bytes d, r.Raw(crypto::kSha256DigestSize));
    std::copy(d.begin(), d.end(), step.digest.begin());
    proof.path.push_back(step);
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("merkle: trailing proof bytes");
  }
  return proof;
}

void MerkleTree::Append(ByteSpan data) { AppendLeafHash(LeafHash(data)); }

void MerkleTree::AppendLeafHash(const Digest& leaf) {
  if (levels_.empty()) levels_.emplace_back();
  levels_[0].push_back(leaf);
  // Complete parent subtrees along the right edge.
  for (size_t h = 0; h + 1 <= levels_.size(); ++h) {
    if (levels_[h].size() % 2 != 0) break;
    if (h + 1 == levels_.size()) levels_.emplace_back();
    size_t n = levels_[h].size();
    levels_[h + 1].push_back(InteriorHash(levels_[h][n - 2], levels_[h][n - 1]));
  }
}

Digest MerkleTree::RangeHash(uint64_t lo, uint64_t hi) const {
  assert(hi > lo);
  uint64_t len = hi - lo;
  // Complete aligned subtree: O(1) lookup.
  if (std::has_single_bit(len) && lo % len == 0) {
    int h = std::countr_zero(len);
    if (h < static_cast<int>(levels_.size()) &&
        (lo >> h) < levels_[h].size()) {
      return levels_[h][lo >> h];
    }
  }
  if (len == 1) return levels_[0][lo];
  uint64_t k = SplitPoint(len);
  return InteriorHash(RangeHash(lo, lo + k), RangeHash(lo + k, hi));
}

Digest MerkleTree::Root() const {
  if (size() == 0) return crypto::Sha256::Hash({});
  return RangeHash(0, size());
}

Result<Digest> MerkleTree::RootAt(uint64_t n) const {
  if (n > size()) {
    return Status::OutOfRange("merkle: RootAt beyond tree size");
  }
  if (n == 0) return crypto::Sha256::Hash({});
  return RangeHash(0, n);
}

void MerkleTree::PathRec(uint64_t m, uint64_t lo, uint64_t hi,
                         std::vector<ProofStep>* out) const {
  if (hi - lo == 1) return;
  uint64_t k = SplitPoint(hi - lo);
  if (m < lo + k) {
    PathRec(m, lo, lo + k, out);
    out->push_back({ProofStep::Side::kRight, RangeHash(lo + k, hi)});
  } else {
    PathRec(m, lo + k, hi, out);
    out->push_back({ProofStep::Side::kLeft, RangeHash(lo, lo + k)});
  }
}

Result<Proof> MerkleTree::GetProof(uint64_t index, uint64_t tree_size) const {
  if (tree_size > size()) {
    return Status::OutOfRange("merkle: proof tree_size beyond tree");
  }
  if (index >= tree_size) {
    return Status::OutOfRange("merkle: leaf index beyond tree_size");
  }
  Proof proof;
  proof.leaf_index = index;
  proof.tree_size = tree_size;
  PathRec(index, 0, tree_size, &proof.path);
  return proof;
}

Result<Digest> MerkleTree::LeafAt(uint64_t index) const {
  if (index >= size()) {
    return Status::OutOfRange("merkle: leaf index beyond tree");
  }
  return levels_[0][index];
}

void MerkleTree::Truncate(uint64_t n) {
  if (levels_.empty()) return;
  for (size_t h = 0; h < levels_.size(); ++h) {
    size_t keep = static_cast<size_t>(n >> h);
    if (levels_[h].size() > keep) levels_[h].resize(keep);
  }
  while (levels_.size() > 1 && levels_.back().empty()) levels_.pop_back();
}

}  // namespace ccf::merkle
