// Verifiable receipts (paper §3.5).
//
// A receipt proves offline that a transaction was committed at a given
// position in the ledger of a given service. It bundles:
//   - the transaction's ledger position (view, seqno) and write-set digest,
//   - optional application-attached claims,
//   - a Merkle proof from the transaction leaf to a signed root,
//   - the signing node's certificate, endorsed by the service identity.
//
// Convention: seqno is 1-based; the leaf index of transaction s is s-1.
// SignedRoot.seqno is the *covered-prefix boundary*: the root spans leaves
// [0, seqno-1), i.e. every transaction before seqno. With synchronous
// signing the signature transaction lands exactly at that seqno; with
// asynchronous offload (NodeConfig::worker_async) appends may continue
// while the sign is in flight, so the signature transaction can land at a
// later seqno m >= SignedRoot.seqno and covers a strict prefix. Verifiers
// therefore only assume seqno(entry carrying sr) >= sr.seqno.

#ifndef CCF_MERKLE_RECEIPT_H_
#define CCF_MERKLE_RECEIPT_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/cert.h"
#include "merkle/merkle.h"

namespace ccf::merkle {

// The signed content of a signature transaction (paper §3.2): the Merkle
// root over the ledger prefix, signed by the primary's node key.
struct SignedRoot {
  uint64_t view = 0;
  uint64_t seqno = 0;  // covered-prefix boundary (see header comment)
  Digest root{};       // root over leaves [0, seqno-1)
  std::string node_id;
  crypto::SignatureBytes signature{};

  // Byte string covered by `signature`.
  Bytes SignedPayload() const;
  Bytes Serialize() const;
  static Result<SignedRoot> Deserialize(ByteSpan data);
  bool operator==(const SignedRoot&) const = default;
};

// Canonical leaf content for a transaction: what the Merkle tree hashes.
Bytes TransactionLeafContent(uint64_t view, uint64_t seqno,
                             const Digest& write_set_digest,
                             const Digest& claims_digest);

struct Receipt {
  uint64_t view = 0;
  uint64_t seqno = 0;  // transaction being proven
  Digest write_set_digest{};
  Digest claims_digest{};  // digest of application claims (zero if none)
  Proof proof;
  SignedRoot signed_root;
  crypto::Certificate node_cert;  // role "node", issued by the service

  Bytes Serialize() const;
  static Result<Receipt> Deserialize(ByteSpan data);

  // Full offline verification against the service identity public key.
  Status Verify(ByteSpan service_public_key) const;
};

}  // namespace ccf::merkle

#endif  // CCF_MERKLE_RECEIPT_H_
