#include "merkle/receipt.h"

#include <cstring>

#include "common/buffer.h"

namespace ccf::merkle {

namespace {

void WriteDigest(BufWriter* w, const Digest& d) {
  w->Raw(ByteSpan(d.data(), d.size()));
}

Result<Digest> ReadDigest(BufReader* r) {
  ASSIGN_OR_RETURN(Bytes b, r->Raw(crypto::kSha256DigestSize));
  Digest d;
  std::copy(b.begin(), b.end(), d.begin());
  return d;
}

}  // namespace

Bytes SignedRoot::SignedPayload() const {
  BufWriter w;
  w.Str("ccf.signed-root.v1");
  w.U64(view);
  w.U64(seqno);
  WriteDigest(&w, root);
  w.Str(node_id);
  return w.Take();
}

Bytes SignedRoot::Serialize() const {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  WriteDigest(&w, root);
  w.Str(node_id);
  w.Raw(ByteSpan(signature.data(), signature.size()));
  return w.Take();
}

Result<SignedRoot> SignedRoot::Deserialize(ByteSpan data) {
  BufReader r(data);
  SignedRoot sr;
  ASSIGN_OR_RETURN(sr.view, r.U64());
  ASSIGN_OR_RETURN(sr.seqno, r.U64());
  ASSIGN_OR_RETURN(sr.root, ReadDigest(&r));
  ASSIGN_OR_RETURN(sr.node_id, r.Str());
  ASSIGN_OR_RETURN(Bytes sig, r.Raw(crypto::kSignatureSize));
  std::copy(sig.begin(), sig.end(), sr.signature.begin());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("signed-root: trailing bytes");
  }
  return sr;
}

Bytes TransactionLeafContent(uint64_t view, uint64_t seqno,
                             const Digest& write_set_digest,
                             const Digest& claims_digest) {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  WriteDigest(&w, write_set_digest);
  WriteDigest(&w, claims_digest);
  return w.Take();
}

Bytes Receipt::Serialize() const {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  WriteDigest(&w, write_set_digest);
  WriteDigest(&w, claims_digest);
  w.Blob(proof.Serialize());
  w.Blob(signed_root.Serialize());
  w.Blob(node_cert.Serialize());
  return w.Take();
}

Result<Receipt> Receipt::Deserialize(ByteSpan data) {
  BufReader r(data);
  Receipt receipt;
  ASSIGN_OR_RETURN(receipt.view, r.U64());
  ASSIGN_OR_RETURN(receipt.seqno, r.U64());
  ASSIGN_OR_RETURN(receipt.write_set_digest, ReadDigest(&r));
  ASSIGN_OR_RETURN(receipt.claims_digest, ReadDigest(&r));
  ASSIGN_OR_RETURN(Bytes proof_bytes, r.Blob());
  ASSIGN_OR_RETURN(receipt.proof, Proof::Deserialize(proof_bytes));
  ASSIGN_OR_RETURN(Bytes root_bytes, r.Blob());
  ASSIGN_OR_RETURN(receipt.signed_root, SignedRoot::Deserialize(root_bytes));
  ASSIGN_OR_RETURN(Bytes cert_bytes, r.Blob());
  ASSIGN_OR_RETURN(receipt.node_cert,
                   crypto::Certificate::Deserialize(cert_bytes));
  if (!r.AtEnd()) {
    return Status::InvalidArgument("receipt: trailing bytes");
  }
  return receipt;
}

Status Receipt::Verify(ByteSpan service_public_key) const {
  // 1. The node certificate chains to the service identity.
  if (node_cert.role != "node") {
    return Status::PermissionDenied("receipt: certificate is not a node cert");
  }
  RETURN_IF_ERROR(crypto::VerifyCertificate(node_cert, service_public_key));

  // 2. The root signature verifies under the node key.
  if (!crypto::Verify(node_cert.public_key, signed_root.SignedPayload(),
                      ByteSpan(signed_root.signature.data(),
                               signed_root.signature.size()))) {
    return Status::PermissionDenied("receipt: bad root signature");
  }

  // 3. Positions are consistent: the proof places leaf seqno-1 in the tree
  //    of size signed_root.seqno - 1 (everything before the signature tx).
  if (seqno == 0 || signed_root.seqno == 0 || seqno >= signed_root.seqno) {
    return Status::InvalidArgument("receipt: inconsistent seqnos");
  }
  if (proof.leaf_index != seqno - 1 ||
      proof.tree_size != signed_root.seqno - 1) {
    return Status::InvalidArgument("receipt: proof position mismatch");
  }

  // 4. The Merkle path folds from the transaction leaf to the signed root.
  Digest leaf = LeafHash(
      TransactionLeafContent(view, seqno, write_set_digest, claims_digest));
  Digest computed = ComputeRootFromProof(leaf, proof);
  if (computed != signed_root.root) {
    return Status::PermissionDenied("receipt: proof does not match root");
  }
  return Status::Ok();
}

}  // namespace ccf::merkle
