// Incremental append-only Merkle tree over ledger transactions (paper §3.2).
//
// Layout follows RFC 6962 (Certificate Transparency): the tree over n
// leaves splits at the largest power of two smaller than n. Leaf and
// interior hashes are domain-separated (0x00 / 0x01 prefixes). The tree
// supports:
//   - O(1) amortized Append,
//   - O(log n) Root over any prefix (for signature transactions),
//   - O(log^2 n) Merkle proofs for receipts (paper §3.5),
//   - Truncate, used when consensus rolls back an uncommitted suffix.

#ifndef CCF_MERKLE_MERKLE_H_
#define CCF_MERKLE_MERKLE_H_

#include <cstdint>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sha256.h"

namespace ccf::merkle {

using Digest = crypto::Sha256Digest;

// One step of a Merkle proof: the sibling digest and which side of the
// running hash it sits on. Matches the paper's Figure 3 notation, e.g.
// [(right, d8), (left, d56), (left, d1234), (right, d910)].
struct ProofStep {
  enum class Side : uint8_t { kLeft = 0, kRight = 1 };
  Side side;
  Digest digest;

  bool operator==(const ProofStep&) const = default;
};

struct Proof {
  uint64_t leaf_index = 0;
  uint64_t tree_size = 0;
  std::vector<ProofStep> path;

  Bytes Serialize() const;
  static Result<Proof> Deserialize(ByteSpan data);

  bool operator==(const Proof&) const = default;
};

// Domain-separated hashes.
Digest LeafHash(ByteSpan data);
Digest InteriorHash(const Digest& left, const Digest& right);

// Folds `leaf` up the proof path; the result must equal the signed root.
Digest ComputeRootFromProof(const Digest& leaf, const Proof& proof);

class MerkleTree {
 public:
  MerkleTree() = default;

  // Hash/append operation counters, for the per-node crypto op telemetry
  // and for benches/tests asserting that the batch kernels engaged.
  struct Stats {
    uint64_t leaf_hashes = 0;      // leaf contents hashed (any path)
    uint64_t interior_hashes = 0;  // interior nodes computed (any path)
    uint64_t batched_leaves = 0;   // leaves that arrived via a batch call
    uint64_t x4_groups = 0;        // Sha256x4 invocations (4 hashes each)
  };

  // Appends a transaction; `data` is the transaction's serialized leaf
  // content (hashed with the leaf prefix internally).
  void Append(ByteSpan data);
  // Appends a precomputed leaf digest.
  void AppendLeafHash(const Digest& leaf);
  // Appends many leaf contents at once, pushing both the leaf hashes and
  // the newly completed interior nodes through the 4-way SHA-256 kernel.
  // Exactly equivalent to calling Append(l) for each element.
  void AppendBatch(std::span<const Bytes> leaves);
  // Bulk AppendLeafHash for precomputed digests (joiner catch-up); interior
  // nodes are still batch-hashed.
  void AppendLeafHashes(std::span<const Digest> leaves);

  uint64_t size() const { return levels_.empty() ? 0 : levels_[0].size(); }

  // Root over all current leaves. Empty tree hashes to SHA-256("").
  Digest Root() const;
  // Root over the first n leaves (n <= size).
  Result<Digest> RootAt(uint64_t n) const;

  // Proof that leaf `index` is included in the tree over the first
  // `tree_size` leaves.
  Result<Proof> GetProof(uint64_t index, uint64_t tree_size) const;

  // Leaf digest at `index` (for re-verification).
  Result<Digest> LeafAt(uint64_t index) const;

  // Drops all leaves with index >= n (consensus rollback).
  void Truncate(uint64_t n);

  const Stats& stats() const { return stats_; }

 private:
  Digest RangeHash(uint64_t lo, uint64_t hi) const;
  void PathRec(uint64_t m, uint64_t lo, uint64_t hi,
               std::vector<ProofStep>* out) const;

  // levels_[h][i] = hash of leaves [i*2^h, (i+1)*2^h), stored only for
  // complete subtrees. levels_[0] holds the leaf digests themselves.
  std::vector<std::vector<Digest>> levels_;
  Stats stats_;
};

}  // namespace ccf::merkle

#endif  // CCF_MERKLE_MERKLE_H_
