#include "observe/metrics.h"

#include <bit>
#include <sstream>

namespace ccf::observe {

// ------------------------------------------------------------- Histogram

size_t Histogram::BucketIndex(uint64_t v) {
  if (v < kSubCount) return static_cast<size_t>(v);
  // Octave o holds [2^o, 2^(o+1)), o >= kSubBits; the top kSubBits bits
  // after the leading one pick the linear sub-bucket.
  uint32_t o = 63 - static_cast<uint32_t>(std::countl_zero(v));
  uint64_t sub = (v >> (o - kSubBits)) & (kSubCount - 1);
  return kSubCount + (o - kSubBits) * kSubCount + static_cast<size_t>(sub);
}

uint64_t Histogram::BucketUpperBound(size_t index) {
  if (index < kSubCount) return static_cast<uint64_t>(index);
  size_t rel = index - kSubCount;
  uint32_t o = kSubBits + static_cast<uint32_t>(rel / kSubCount);
  uint64_t sub = rel % kSubCount;
  uint64_t lower = (uint64_t{kSubCount} + sub) << (o - kSubBits);
  uint64_t width = uint64_t{1} << (o - kSubBits);
  return lower + width - 1;
}

void Histogram::Record(uint64_t v) {
  buckets_[BucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
  count_.fetch_add(1, std::memory_order_relaxed);
  sum_.fetch_add(v, std::memory_order_relaxed);
  uint64_t seen = max_.load(std::memory_order_relaxed);
  while (v > seen &&
         !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
  }
}

uint64_t Histogram::Quantile(double q) const {
  uint64_t n = count();
  if (n == 0) return 0;
  if (q < 0.0) q = 0.0;
  if (q > 1.0) q = 1.0;
  // Rank of the target sample, 1-based.
  uint64_t rank = static_cast<uint64_t>(q * static_cast<double>(n));
  if (rank < 1) rank = 1;
  if (rank > n) rank = n;
  uint64_t cumulative = 0;
  for (size_t i = 0; i < kBucketCount; ++i) {
    cumulative += buckets_[i].load(std::memory_order_relaxed);
    if (cumulative >= rank) {
      // Never report past the exact max (the last bucket may extend
      // beyond any recorded value).
      uint64_t ub = BucketUpperBound(i);
      uint64_t m = max();
      return ub < m ? ub : m;
    }
  }
  return max();
}

Histogram::Snapshot Histogram::GetSnapshot() const {
  Snapshot s;
  s.count = count();
  s.sum = sum();
  s.max = max();
  s.p50 = Quantile(0.50);
  s.p90 = Quantile(0.90);
  s.p99 = Quantile(0.99);
  return s;
}

// ------------------------------------------------------------ TimeSeries

TimeSeries::TimeSeries(size_t capacity)
    : capacity_(capacity > 0 ? capacity : 1) {
  ring_.reserve(capacity_);
}

void TimeSeries::Sample(uint64_t t_ms, uint64_t value) {
  if (ring_.size() < capacity_) {
    ring_.push_back({t_ms, value});
  } else {
    ring_[total_ % capacity_] = {t_ms, value};
  }
  ++total_;
}

std::vector<TimeSeries::Point> TimeSeries::Samples() const {
  std::vector<Point> out;
  out.reserve(ring_.size());
  if (total_ <= capacity_) {
    out = ring_;
  } else {
    uint64_t start = total_ % capacity_;  // oldest surviving sample
    for (size_t i = 0; i < capacity_; ++i) {
      out.push_back(ring_[(start + i) % capacity_]);
    }
  }
  return out;
}

// -------------------------------------------------------------- Registry

Counter* Registry::GetCounter(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.gauge || e.histogram || e.series) return nullptr;
  if (!e.counter) e.counter = std::make_unique<Counter>();
  return e.counter.get();
}

Gauge* Registry::GetGauge(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter || e.histogram || e.series) return nullptr;
  if (!e.gauge) e.gauge = std::make_unique<Gauge>();
  return e.gauge.get();
}

Histogram* Registry::GetHistogram(const std::string& name) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter || e.gauge || e.series) return nullptr;
  if (!e.histogram) e.histogram = std::make_unique<Histogram>();
  return e.histogram.get();
}

TimeSeries* Registry::GetTimeSeries(const std::string& name,
                                    size_t capacity) {
  std::lock_guard<std::mutex> lock(mu_);
  Entry& e = metrics_[name];
  if (e.counter || e.gauge || e.histogram) return nullptr;
  if (!e.series) e.series = std::make_unique<TimeSeries>(capacity);
  return e.series.get();
}

const Counter* Registry::FindCounter(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.counter.get() : nullptr;
}

const Gauge* Registry::FindGauge(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.gauge.get() : nullptr;
}

const Histogram* Registry::FindHistogram(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  return it != metrics_.end() ? it->second.histogram.get() : nullptr;
}

uint64_t Registry::ScalarValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = metrics_.find(name);
  if (it == metrics_.end()) return 0;
  if (it->second.counter) return it->second.counter->value();
  if (it->second.gauge) return it->second.gauge->value();
  return 0;
}

json::Value Registry::ToJson() const {
  std::lock_guard<std::mutex> lock(mu_);
  json::Object counters;
  json::Object gauges;
  json::Object histograms;
  json::Object series;
  for (const auto& [name, e] : metrics_) {
    if (e.counter != nullptr) {
      counters[name] = e.counter->value();
    } else if (e.gauge != nullptr) {
      json::Object g;
      g["value"] = e.gauge->value();
      g["max"] = e.gauge->max();
      gauges[name] = std::move(g);
    } else if (e.histogram != nullptr) {
      Histogram::Snapshot s = e.histogram->GetSnapshot();
      json::Object h;
      h["count"] = s.count;
      h["sum"] = s.sum;
      h["max"] = s.max;
      h["p50"] = s.p50;
      h["p90"] = s.p90;
      h["p99"] = s.p99;
      histograms[name] = std::move(h);
    } else if (e.series != nullptr) {
      json::Object t;
      t["capacity"] = static_cast<uint64_t>(e.series->capacity());
      t["total"] = e.series->total_samples();
      json::Array points;
      for (const TimeSeries::Point& p : e.series->Samples()) {
        points.push_back(json::Value(json::Array{json::Value(p.t_ms),
                                                 json::Value(p.value)}));
      }
      t["points"] = std::move(points);
      series[name] = std::move(t);
    }
  }
  json::Object out;
  out["counters"] = std::move(counters);
  out["gauges"] = std::move(gauges);
  out["histograms"] = std::move(histograms);
  out["series"] = std::move(series);
  return json::Value(std::move(out));
}

std::string PrometheusName(const std::string& prefix,
                           const std::string& name) {
  std::string out = prefix.empty() ? "" : prefix + "_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
              (c >= '0' && c <= '9') || c == '_' || c == ':';
    out.push_back(ok ? c : '_');
  }
  return out;
}

std::string Registry::ToPrometheus(const std::string& prefix) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  for (const auto& [name, e] : metrics_) {
    std::string pn = PrometheusName(prefix, name);
    if (e.counter != nullptr) {
      out << "# TYPE " << pn << " counter\n"
          << pn << " " << e.counter->value() << "\n";
    } else if (e.gauge != nullptr) {
      out << "# TYPE " << pn << " gauge\n"
          << pn << " " << e.gauge->value() << "\n"
          << "# TYPE " << pn << "_max gauge\n"
          << pn << "_max " << e.gauge->max() << "\n";
    } else if (e.histogram != nullptr) {
      Histogram::Snapshot s = e.histogram->GetSnapshot();
      out << "# TYPE " << pn << " summary\n"
          << pn << "{quantile=\"0.5\"} " << s.p50 << "\n"
          << pn << "{quantile=\"0.9\"} " << s.p90 << "\n"
          << pn << "{quantile=\"0.99\"} " << s.p99 << "\n"
          << pn << "_count " << s.count << "\n"
          << pn << "_sum " << s.sum << "\n"
          << pn << "_max " << s.max << "\n";
    }
    // TimeSeries is report-only; it has no Prometheus exposition.
  }
  return out.str();
}

}  // namespace ccf::observe
