// Unified observability: a registry of named metrics shared by every
// layer of the stack (paper §8 measures the service exclusively through
// throughput and tail-latency series; this subsystem is the first-class
// home for those measurements).
//
// Design constraints, in order:
//   1. Hot-path cost is one relaxed atomic RMW. Counters, gauges, and
//      histogram records never take a lock and never allocate; callers
//      resolve the metric pointer once (creation is mutex-guarded, the
//      pointer is stable for the registry's lifetime) and keep it.
//   2. Instrumentation must not perturb determinism. Metrics are
//      write-only from the instrumented code: no control flow ever reads
//      a metric, and recording draws no randomness. A chaos run with the
//      registry read at the end is bit-identical to one where it is
//      ignored (asserted by the chaos suites).
//   3. Bounded memory. Histograms have a fixed bucket layout (log-scaled,
//      16 sub-buckets per power of two, ~6.7% worst-case relative error on
//      percentile estimates) and TimeSeries is a bounded ring buffer.
//   4. Boundary rule: enclave code records only aggregate numbers
//      (counts, sizes, durations) — never payload bytes, keys, or any
//      value derived from confidential state — so host-visible exposition
//      (GET /node/metrics, run reports) leaks nothing the ledger's public
//      half does not already reveal (see DESIGN.md, observe section).

#ifndef CCF_OBSERVE_METRICS_H_
#define CCF_OBSERVE_METRICS_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "json/json.h"

namespace ccf::observe {

// Monotonically increasing event count.
class Counter {
 public:
  void Inc(uint64_t n = 1) { value_.fetch_add(n, std::memory_order_relaxed); }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
};

// Last-written value plus its high-water mark (ring occupancy, queue
// depth, lag). Set() is the hot-path operation.
class Gauge {
 public:
  void Set(uint64_t v) {
    value_.store(v, std::memory_order_relaxed);
    uint64_t seen = max_.load(std::memory_order_relaxed);
    while (v > seen &&
           !max_.compare_exchange_weak(seen, v, std::memory_order_relaxed)) {
    }
  }
  uint64_t value() const { return value_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

 private:
  std::atomic<uint64_t> value_{0};
  std::atomic<uint64_t> max_{0};
};

// Fixed-bucket log-scaled histogram (HdrHistogram layout): values below
// 2^kSubBits are recorded exactly; above that, each power-of-two octave is
// split into 2^kSubBits linear sub-buckets, so a bucket's width is at most
// 1/16 of its lower bound. Record() is one relaxed fetch_add (plus a CAS
// loop for the exact max). Percentiles are estimated on read by walking
// the cumulative bucket counts and reporting the bucket's upper bound,
// which bounds the relative overestimate by 1/16 (~6.7%); the self-check
// test asserts this against an exact sort.
class Histogram {
 public:
  static constexpr uint32_t kSubBits = 4;
  static constexpr uint32_t kSubCount = 1u << kSubBits;  // 16
  // Buckets: [0, 16) exact + 60 octaves (2^4 .. 2^63) of 16 sub-buckets.
  static constexpr size_t kBucketCount = kSubCount + (64 - kSubBits) * kSubCount;

  void Record(uint64_t v);

  uint64_t count() const { return count_.load(std::memory_order_relaxed); }
  uint64_t sum() const { return sum_.load(std::memory_order_relaxed); }
  uint64_t max() const { return max_.load(std::memory_order_relaxed); }

  // Upper bound of the bucket containing the q-th quantile (q in [0, 1]).
  // Returns 0 for an empty histogram.
  uint64_t Quantile(double q) const;

  struct Snapshot {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t max = 0;
    uint64_t p50 = 0;
    uint64_t p90 = 0;
    uint64_t p99 = 0;
  };
  Snapshot GetSnapshot() const;

  // Bucket index for a value, and the largest value mapping to a bucket
  // (exposed for the self-check test).
  static size_t BucketIndex(uint64_t v);
  static uint64_t BucketUpperBound(size_t index);

 private:
  std::atomic<uint64_t> count_{0};
  std::atomic<uint64_t> sum_{0};
  std::atomic<uint64_t> max_{0};
  std::array<std::atomic<uint64_t>, kBucketCount> buckets_{};
};

// Bounded ring buffer of (t_ms, value) samples. Driven by the
// deterministic simulation clock, so a chaos run's series is replayable
// from the seed. Single-writer (the sampling loop); reads are for
// end-of-run reports.
class TimeSeries {
 public:
  explicit TimeSeries(size_t capacity = 256);

  void Sample(uint64_t t_ms, uint64_t value);

  struct Point {
    uint64_t t_ms;
    uint64_t value;
  };
  // Samples in recording order (oldest surviving first).
  std::vector<Point> Samples() const;
  size_t capacity() const { return capacity_; }
  uint64_t total_samples() const { return total_; }

 private:
  size_t capacity_;
  uint64_t total_ = 0;
  std::vector<Point> ring_;
};

// Named metrics, one namespace per node. Get* creates on first use
// (mutex-guarded) and returns a stable pointer; instrumented code caches
// it. Metric kinds share one namespace: reusing a name with a different
// kind returns nullptr (programming error, surfaced loudly in tests).
class Registry {
 public:
  Counter* GetCounter(const std::string& name);
  Gauge* GetGauge(const std::string& name);
  Histogram* GetHistogram(const std::string& name);
  TimeSeries* GetTimeSeries(const std::string& name, size_t capacity = 256);

  // Read-side lookups (nullptr when absent or of a different kind).
  const Counter* FindCounter(const std::string& name) const;
  const Gauge* FindGauge(const std::string& name) const;
  const Histogram* FindHistogram(const std::string& name) const;

  // Value of a counter or gauge by name; 0 when absent. The aggregator's
  // kind-agnostic sampling hook.
  uint64_t ScalarValue(const std::string& name) const;

  // Full snapshot:
  //   {"counters": {name: n}, "gauges": {name: {"value", "max"}},
  //    "histograms": {name: {"count","sum","max","p50","p90","p99"}},
  //    "series": {name: {"capacity","total","points":[[t,v],...]}}}
  json::Value ToJson() const;

  // Prometheus text exposition. Metric names are sanitized to
  // [a-zA-Z0-9_:] and prefixed; histograms export summary-style quantile
  // lines plus _count/_sum/_max.
  std::string ToPrometheus(const std::string& prefix = "ccf") const;

 private:
  struct Entry {
    // Exactly one is set.
    std::unique_ptr<Counter> counter;
    std::unique_ptr<Gauge> gauge;
    std::unique_ptr<Histogram> histogram;
    std::unique_ptr<TimeSeries> series;
  };

  mutable std::mutex mu_;  // guards map shape only; metrics are atomic
  std::map<std::string, Entry> metrics_;
};

// "ccf_" + name with every character outside [a-zA-Z0-9_:] replaced by
// '_': "rpc.latency_us.GET /app/log" -> "rpc_latency_us_GET__app_log".
std::string PrometheusName(const std::string& prefix, const std::string& name);

}  // namespace ccf::observe

#endif  // CCF_OBSERVE_METRICS_H_
