// Banking consortium application (paper §2's motivating scenario),
// registered through the apps registry with per-endpoint schemas
// (DESIGN.md §14). Formerly embedded in examples/banking.cpp; the example
// now only drives this app.
//
// Endpoints (all /app/, user cert):
//   POST /app/open_account   {"account", "holder"}
//   POST /app/credit         {"account", "amount"}
//   POST /app/debit          {"account", "amount"}   409 on overdraft
//   POST /app/transfer       {"from", "to", "amount"} atomic, with claim
//   POST /app/apply_interest {"basis_points"}  updates every account
//   GET  /app/balance?account=ID                (read-only)
//   GET  /app/audit?threshold=N    regulator-only holder report
//   GET  /app/statement?account=ID per-account activity via an
//        application-defined indexing strategy (paper §3.4)

#ifndef CCF_APPS_BANKING_H_
#define CCF_APPS_BANKING_H_

#include <map>
#include <string>
#include <vector>

#include "apps/app.h"

namespace ccf::apps {

// Map names used by the banking app.
inline constexpr char kBankAccountsMap[] = "private:bank.accounts";
inline constexpr char kBankOwnersMap[] = "private:bank.owners";

// Indexing strategy: per account, the list of transaction seqnos that
// touched it (the paper's get_statement example). Fed by the node's
// indexer on the node thread; read by the (serial, non-exec-parallel)
// statement endpoint.
class AccountActivityIndex : public indexing::Strategy {
 public:
  const char* name() const override { return "AccountActivityIndex"; }

  void OnCommittedEntry(uint64_t view, uint64_t seqno,
                        const kv::WriteSet& writes) override;

  std::vector<uint64_t> Activity(const std::string& account) const;

 private:
  std::map<std::string, std::vector<uint64_t>> activity_;
};

class BankingApp : public node::Application {
 public:
  void RegisterEndpoints(rpc::EndpointRegistry* registry,
                         const node::NodeContext& node) override;
};

}  // namespace ccf::apps

#endif  // CCF_APPS_BANKING_H_
