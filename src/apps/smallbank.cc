#include "apps/smallbank.h"

#include <cstdlib>
#include <optional>
#include <string>

#include "json/schema.h"

namespace ccf::apps {

namespace {

// Balances are stored as decimal strings; absent key == no such account
// (a zero balance is stored explicitly, so "0" is a real account).
std::optional<int64_t> ReadBalance(kv::MapHandle* map,
                                   const std::string& id) {
  auto raw = map->GetStr(id);
  if (!raw.has_value()) return std::nullopt;
  return std::strtoll(raw->c_str(), nullptr, 10);
}

void WriteBalance(kv::MapHandle* map, const std::string& id,
                  int64_t balance) {
  map->PutStr(id, std::to_string(balance));
}

std::string AccountKey(const json::Value& params, const char* field) {
  return std::to_string(params.GetInt(field));
}

json::Value AccountAmountSchema() {
  return json::ObjectSchema(
      {{"account", json::Uint64Schema("account id")},
       {"amount", json::IntegerSchema("amount in minor units")}},
      {"account", "amount"});
}

json::Value BalanceResponseSchema() {
  return json::ObjectSchema(
      {{"account", json::Uint64Schema()},
       {"balance", json::IntegerSchema()}},
      {"account", "balance"});
}

}  // namespace

void SmallBankApp::RegisterEndpoints(rpc::EndpointRegistry* registry,
                                     const node::NodeContext& node) {
  (void)node;
  using rpc::AuthPolicy;
  using rpc::EndpointContext;

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/create_accounts",
      .summary = "Bulk-open accounts [from, to) with starting balances",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"from", json::Uint64Schema("first account id (inclusive)")},
           {"to", json::Uint64Schema("last account id (exclusive)")},
           {"savings", json::Uint64Schema("starting savings balance")},
           {"checking", json::Uint64Schema("starting checking balance")}},
          {"from", "to", "savings", "checking"}),
      .response_schema = json::ObjectSchema(
          {{"created", json::Uint64Schema()}}, {"created"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        int64_t from = p->GetInt("from");
        int64_t to = p->GetInt("to");
        if (to < from || to - from > 1000000) {
          ctx->SetError(400, "account range empty or too large");
          return;
        }
        int64_t savings = p->GetInt("savings");
        int64_t checking = p->GetInt("checking");
        kv::MapHandle* sav = ctx->tx().Handle(kSbSavingsMap);
        kv::MapHandle* chk = ctx->tx().Handle(kSbCheckingMap);
        for (int64_t id = from; id < to; ++id) {
          WriteBalance(sav, std::to_string(id), savings);
          WriteBalance(chk, std::to_string(id), checking);
        }
        json::Object out;
        out["created"] = to - from;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/transact_savings",
      .summary = "Add a (possibly negative) amount to savings",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = AccountAmountSchema(),
      .response_schema = BalanceResponseSchema(),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string id = AccountKey(*p, "account");
        kv::MapHandle* sav = ctx->tx().Handle(kSbSavingsMap);
        auto balance = ReadBalance(sav, id);
        if (!balance.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        int64_t next = *balance + p->GetInt("amount");
        if (next < 0) {
          ctx->SetError(409, "insufficient savings");
          return;
        }
        WriteBalance(sav, id, next);
        json::Object out;
        out["account"] = p->GetInt("account");
        out["balance"] = next;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/deposit_checking",
      .summary = "Add a non-negative amount to checking",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"account", json::Uint64Schema("account id")},
           {"amount", json::Uint64Schema("deposit in minor units")}},
          {"account", "amount"}),
      .response_schema = BalanceResponseSchema(),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string id = AccountKey(*p, "account");
        kv::MapHandle* chk = ctx->tx().Handle(kSbCheckingMap);
        auto balance = ReadBalance(chk, id);
        if (!balance.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        int64_t next = *balance + p->GetInt("amount");
        WriteBalance(chk, id, next);
        json::Object out;
        out["account"] = p->GetInt("account");
        out["balance"] = next;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/send_payment",
      .summary = "Move funds between two checking accounts",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"from", json::Uint64Schema("payer account id")},
           {"to", json::Uint64Schema("payee account id")},
           {"amount", json::Uint64Schema("payment in minor units")}},
          {"from", "to", "amount"}),
      .response_schema = json::ObjectSchema(
          {{"ok", json::BoolSchema()},
           {"from_balance", json::IntegerSchema()}},
          {"ok", "from_balance"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string from = AccountKey(*p, "from");
        std::string to = AccountKey(*p, "to");
        int64_t amount = p->GetInt("amount");
        kv::MapHandle* chk = ctx->tx().Handle(kSbCheckingMap);
        auto from_balance = ReadBalance(chk, from);
        auto to_balance = ReadBalance(chk, to);
        if (!from_balance.has_value() || !to_balance.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        if (*from_balance < amount) {
          ctx->SetError(409, "insufficient funds");
          return;
        }
        WriteBalance(chk, from, *from_balance - amount);
        WriteBalance(chk, to, *to_balance + amount);
        json::Object out;
        out["ok"] = true;
        out["from_balance"] = *from_balance - amount;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/write_check",
      .summary = "Deduct a check from checking; overdrafts cost 1 extra",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"account", json::Uint64Schema("account id")},
           {"amount", json::Uint64Schema("check amount in minor units")}},
          {"account", "amount"}),
      .response_schema = BalanceResponseSchema(),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string id = AccountKey(*p, "account");
        int64_t amount = p->GetInt("amount");
        kv::MapHandle* sav = ctx->tx().Handle(kSbSavingsMap);
        kv::MapHandle* chk = ctx->tx().Handle(kSbCheckingMap);
        auto savings = ReadBalance(sav, id);
        auto checking = ReadBalance(chk, id);
        if (!savings.has_value() || !checking.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        // Classic SmallBank semantics: the check clears even when the
        // combined balance is short, at a 1-unit overdraft penalty.
        int64_t charge = amount;
        if (amount > *savings + *checking) charge = amount + 1;
        int64_t next = *checking - charge;
        WriteBalance(chk, id, next);
        json::Object out;
        out["account"] = p->GetInt("account");
        out["balance"] = next;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/sb/amalgamate",
      .summary = "Move all of one account's funds into another's checking",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"from", json::Uint64Schema("source account id")},
           {"to", json::Uint64Schema("destination account id")}},
          {"from", "to"}),
      .response_schema = json::ObjectSchema(
          {{"ok", json::BoolSchema()},
           {"moved", json::IntegerSchema("total amount moved")}},
          {"ok", "moved"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string from = AccountKey(*p, "from");
        std::string to = AccountKey(*p, "to");
        kv::MapHandle* sav = ctx->tx().Handle(kSbSavingsMap);
        kv::MapHandle* chk = ctx->tx().Handle(kSbCheckingMap);
        auto from_savings = ReadBalance(sav, from);
        auto from_checking = ReadBalance(chk, from);
        auto to_checking = ReadBalance(chk, to);
        if (!from_savings.has_value() || !from_checking.has_value() ||
            !to_checking.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        int64_t moved = *from_savings + *from_checking;
        WriteBalance(sav, from, 0);
        WriteBalance(chk, from, 0);
        WriteBalance(chk, to, *to_checking + moved);
        json::Object out;
        out["ok"] = true;
        out["moved"] = moved;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/sb/balance",
      .summary = "savings + checking total for ?account=N",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .exec_parallel = true,
      .response_schema = BalanceResponseSchema(),
      .handler = [](EndpointContext* ctx) {
        std::string id = ctx->Param("account");
        if (id.empty()) {
          ctx->SetError(400, "missing account query parameter");
          return;
        }
        auto savings = ReadBalance(ctx->tx().Handle(kSbSavingsMap), id);
        auto checking = ReadBalance(ctx->tx().Handle(kSbCheckingMap), id);
        if (!savings.has_value() || !checking.has_value()) {
          ctx->SetError(404, "no such account");
          return;
        }
        json::Object out;
        out["account"] = static_cast<int64_t>(
            std::strtoll(id.c_str(), nullptr, 10));
        out["balance"] = *savings + *checking;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });
}

}  // namespace ccf::apps
