// The logging application from the paper's evaluation (§7): "a simple
// logging application, where messages with corresponding identifiers are
// posted, and later retrieved with read-only transactions. Messages are
// private."
//
// Provided both as a native C++ application (registered through the
// apps registry with per-endpoint request schemas, DESIGN.md §14) and as
// a CCL (scripted) module, so benchmarks can reproduce Table 5's
// C++-vs-JS comparison.

#ifndef CCF_APPS_LOGGING_H_
#define CCF_APPS_LOGGING_H_

#include <string>

#include "apps/app.h"

namespace ccf::apps {

// Map names used by the logging app.
inline constexpr char kPrivateMessagesMap[] = "private:app.messages";
inline constexpr char kPublicMessagesMap[] = "public:app.messages";

// Endpoints:
//   POST /app/log          {"id": N, "msg": "..."}      (user cert)
//   GET  /app/log?id=N                                  (user cert, RO)
//   POST /app/log_public   / GET /app/log_public?id=N   (public map)
//   GET  /app/count                                     (RO)
//   GET  /app/hashread?id=N[&work_us=U]                 (user cert, RO)
//       Reads the message, then burns ~1000 chained SHA-256 rounds over
//       it: a compute-heavy read for the exec-worker scaling benchmark.
//       Optional work_us (capped at 10ms) additionally blocks the worker
//       for U microseconds of modeled service time, so batch overlap is
//       measurable even on single-core hosts.
//   POST /app/rmw          {"id": N}                    (user cert)
//       Read-modify-write increment of counter "ctr:<id>"; contended ids
//       conflict at the serial commit point (OCC re-execution).
//   GET  /app/log/historical?id=N[&seqno=S]             (user cert, RO)
//       The message with id N as of seqno S (default: latest receiptable
//       write), served from the historical state cache with its receipt.
//       202 + Retry-After while the host fetch is in flight.
//   GET  /app/log/historical/range?id=N&from=A&to=B     (user cert, RO)
//       Every write to id N in [A, B], each with its receipt.
class LoggingApp : public node::Application {
 public:
  void RegisterEndpoints(rpc::EndpointRegistry* registry,
                         const node::NodeContext& node) override;
};

// The same application as a CCL module (install via set_js_app).
const std::string& LoggingAppModule();
// The endpoints table for set_js_app: {"POST /app/jslog": {...}, ...}.
const std::string& LoggingAppEndpointsJson();

}  // namespace ccf::apps

#endif  // CCF_APPS_LOGGING_H_
