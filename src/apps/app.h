// Application registry (DESIGN.md §14).
//
// Applications declare endpoints as EndpointDef values -- method, path,
// auth/execution metadata, JSON request/response schemas, handler -- and
// InstallEndpoint places them into the node's rpc::EndpointRegistry. The
// declared schemas drive both request validation (the node rejects bodies
// violating request_schema with a structured 400 before any KV transaction
// is opened) and the OpenAPI 3.0 document served at GET /app/api.
//
// AppRegistry composes several Applications into one, so a single node can
// serve e.g. logging + banking + SmallBank together (and the OpenAPI
// document covers them all).

#ifndef CCF_APPS_APP_H_
#define CCF_APPS_APP_H_

#include <string>
#include <vector>

#include "json/json.h"
#include "node/app.h"
#include "rpc/endpoints.h"

namespace ccf::apps {

// One declared endpoint. Aggregate-initialized with designated
// initializers at registration sites:
//
//   InstallEndpoint(registry, {
//       .method = "POST",
//       .path = "/app/log",
//       .summary = "Record a private message",
//       .auth = rpc::AuthPolicy::kUserCert,
//       .exec_parallel = true,
//       .request_schema = json::ObjectSchema({...}, {"id", "msg"}),
//       .handler = ...,
//   });
struct EndpointDef {
  std::string method;
  std::string path;
  std::string summary;
  rpc::AuthPolicy auth = rpc::AuthPolicy::kNoAuth;
  bool read_only = false;
  bool exec_parallel = false;
  // Null (default) means "no schema": the body is passed to the handler
  // unvalidated, and OpenAPI documents no requestBody/response content.
  json::Value request_schema;
  json::Value response_schema;
  rpc::EndpointHandler handler;
};

// Converts the declaration into an rpc::EndpointSpec (schemas become
// shared immutable values) and installs it.
void InstallEndpoint(rpc::EndpointRegistry* registry, EndpointDef def);

// Composes Applications; registration order is Add() order. Non-owning:
// callers keep the component apps alive for the node's lifetime, matching
// how single apps are already passed to node::Node.
class AppRegistry : public node::Application {
 public:
  AppRegistry& Add(node::Application* app) {
    apps_.push_back(app);
    return *this;
  }

  void RegisterEndpoints(rpc::EndpointRegistry* registry,
                         const node::NodeContext& node) override {
    for (node::Application* app : apps_) {
      app->RegisterEndpoints(registry, node);
    }
  }

 private:
  std::vector<node::Application*> apps_;
};

}  // namespace ccf::apps

#endif  // CCF_APPS_APP_H_
