#include "apps/banking.h"

#include <cstdlib>
#include <memory>
#include <utility>

#include "json/schema.h"

namespace ccf::apps {

namespace {

int64_t ReadBalance(kv::MapHandle* accounts, const std::string& id) {
  auto raw = accounts->GetStr(id);
  return raw.has_value() ? std::strtoll(raw->c_str(), nullptr, 10) : -1;
}

json::Value AccountAmountSchema() {
  return json::ObjectSchema(
      {{"account", json::StringSchema("account identifier")},
       {"amount", json::Uint64Schema("amount in minor units")}},
      {"account", "amount"});
}

json::Value BalanceSchema() {
  return json::ObjectSchema(
      {{"account", json::StringSchema()},
       {"balance", json::IntegerSchema()}},
      {"account", "balance"});
}

}  // namespace

void AccountActivityIndex::OnCommittedEntry(uint64_t view, uint64_t seqno,
                                            const kv::WriteSet& writes) {
  (void)view;
  auto it = writes.maps.find(kBankAccountsMap);
  if (it == writes.maps.end()) return;
  for (const auto& [key, value] : it->second) {
    activity_[ToString(key)].push_back(seqno);
  }
}

std::vector<uint64_t> AccountActivityIndex::Activity(
    const std::string& account) const {
  auto it = activity_.find(account);
  return it != activity_.end() ? it->second : std::vector<uint64_t>{};
}

void BankingApp::RegisterEndpoints(rpc::EndpointRegistry* registry,
                                   const node::NodeContext& node) {
  using rpc::AuthPolicy;
  using rpc::EndpointContext;

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/open_account",
      .summary = "Open an account with a zero balance",
      .auth = AuthPolicy::kUserCert,
      .request_schema = json::ObjectSchema(
          {{"account", json::StringSchema("account identifier")},
           {"holder", json::StringSchema("account holder name")}},
          {"account", "holder"}),
      .response_schema = json::ObjectSchema(
          {{"account", json::StringSchema()}}, {"account"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string id = p->GetString("account");
        ctx->tx().Handle(kBankAccountsMap)->PutStr(id, "0");
        ctx->tx().Handle(kBankOwnersMap)->PutStr(id, p->GetString("holder"));
        ctx->SetJsonResponse(200, json::Value(json::Object{
                                      {"account", json::Value(id)}}));
      },
  });

  auto adjust = [](EndpointContext* ctx, int sign) {
    auto p = ctx->Params();
    std::string id = p->GetString("account");
    int64_t amount = p->GetInt("amount");
    if (amount <= 0) {
      ctx->SetError(400, "amount must be positive");
      return;
    }
    kv::MapHandle* accounts = ctx->tx().Handle(kBankAccountsMap);
    int64_t balance = ReadBalance(accounts, id);
    if (balance < 0) {
      ctx->SetError(404, "no such account");
      return;
    }
    int64_t next = balance + sign * amount;
    if (next < 0) {
      // The paper's "insufficient funds" error.
      ctx->SetError(409, "insufficient funds");
      return;
    }
    accounts->PutStr(id, std::to_string(next));
    ctx->SetJsonResponse(
        200, json::Value(json::Object{{"account", json::Value(id)},
                                      {"balance", json::Value(next)}}));
  };
  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/credit",
      .summary = "Credit an account",
      .auth = AuthPolicy::kUserCert,
      .request_schema = AccountAmountSchema(),
      .response_schema = BalanceSchema(),
      .handler = [adjust](EndpointContext* ctx) { adjust(ctx, 1); },
  });
  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/debit",
      .summary = "Debit an account; 409 on overdraft",
      .auth = AuthPolicy::kUserCert,
      .request_schema = AccountAmountSchema(),
      .response_schema = BalanceSchema(),
      .handler = [adjust](EndpointContext* ctx) { adjust(ctx, -1); },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/transfer",
      .summary = "Atomically move funds between two accounts",
      .auth = AuthPolicy::kUserCert,
      .request_schema = json::ObjectSchema(
          {{"from", json::StringSchema("source account")},
           {"to", json::StringSchema("destination account")},
           {"amount", json::Uint64Schema("amount in minor units")}},
          {"from", "to", "amount"}),
      .response_schema = json::ObjectSchema(
          {{"ok", json::BoolSchema()},
           {"from_balance", json::IntegerSchema()}},
          {"ok", "from_balance"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        std::string from = p->GetString("from");
        std::string to = p->GetString("to");
        int64_t amount = p->GetInt("amount");
        kv::MapHandle* accounts = ctx->tx().Handle(kBankAccountsMap);
        int64_t from_balance = ReadBalance(accounts, from);
        int64_t to_balance = ReadBalance(accounts, to);
        if (from_balance < 0 || to_balance < 0) {
          ctx->SetError(404, "no such account");
          return;
        }
        if (amount <= 0 || from_balance < amount) {
          ctx->SetError(409, "insufficient funds");
          return;
        }
        // Atomic: both writes land in one ledger transaction (§6.4).
        accounts->PutStr(from, std::to_string(from_balance - amount));
        accounts->PutStr(to, std::to_string(to_balance + amount));
        // Attach an application claim so the transfer is provable from
        // the receipt alone (paper §3.5).
        ctx->SetClaims(ToBytes("transfer " + from + "->" + to + " " +
                               std::to_string(amount)));
        ctx->SetJsonResponse(200,
                             json::Value(json::Object{
                                 {"ok", json::Value(true)},
                                 {"from_balance",
                                  json::Value(from_balance - amount)}}));
      },
  });

  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/apply_interest",
      .summary = "Accrue interest on every account atomically",
      .auth = AuthPolicy::kUserCert,
      .request_schema = json::ObjectSchema(
          {{"basis_points",
            json::IntegerSchema("interest rate in basis points")}},
          {"basis_points"}),
      .response_schema = json::ObjectSchema(
          {{"accounts", json::Uint64Schema("accounts updated")}},
          {"accounts"}),
      .handler = [](EndpointContext* ctx) {
        auto p = ctx->Params();
        int64_t basis_points = p->GetInt("basis_points");
        kv::MapHandle* accounts = ctx->tx().Handle(kBankAccountsMap);
        std::vector<std::pair<std::string, int64_t>> updates;
        accounts->Foreach([&](const Bytes& key, const Bytes& value) {
          int64_t balance =
              std::strtoll(ToString(value).c_str(), nullptr, 10);
          updates.emplace_back(ToString(key),
                               balance + balance * basis_points / 10000);
          return true;
        });
        for (const auto& [id, next] : updates) {
          accounts->PutStr(id, std::to_string(next));
        }
        ctx->SetJsonResponse(
            200, json::Value(json::Object{
                     {"accounts", json::Value(updates.size())}}));
      },
  });

  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/balance",
      .summary = "Balance of ?account=ID",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .response_schema = BalanceSchema(),
      .handler = [](EndpointContext* ctx) {
        std::string id = ctx->Param("account");
        int64_t balance =
            ReadBalance(ctx->tx().Handle(kBankAccountsMap), id);
        if (balance < 0) {
          ctx->SetError(404, "no such account");
          return;
        }
        ctx->SetJsonResponse(
            200, json::Value(json::Object{
                     {"account", json::Value(id)},
                     {"balance", json::Value(balance)}}));
      },
  });

  // Audit: restricted to the regulator (paper §2: "available only to a
  // financial regulator, returns the names of account holders whose
  // total funds exceed some threshold").
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/audit",
      .summary = "Holders above ?threshold=N (regulator only)",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .response_schema = json::ObjectSchema(
          {{"holders", json::ArraySchema(json::StringSchema())}},
          {"holders"}),
      .handler = [](EndpointContext* ctx) {
        if (ctx->caller().id != "regulator") {
          ctx->SetError(403, "audit is restricted to the regulator");
          return;
        }
        int64_t threshold =
            static_cast<int64_t>(ctx->ParamU64("threshold"));
        kv::MapHandle* accounts = ctx->tx().Handle(kBankAccountsMap);
        kv::MapHandle* owners = ctx->tx().Handle(kBankOwnersMap);
        json::Array holders;
        accounts->Foreach([&](const Bytes& key, const Bytes& value) {
          int64_t balance =
              std::strtoll(ToString(value).c_str(), nullptr, 10);
          if (balance > threshold) {
            auto holder = owners->GetStr(ToString(key));
            holders.emplace_back(holder.value_or("?"));
          }
          return true;
        });
        ctx->SetJsonResponse(200, json::Value(json::Object{
                                      {"holders", std::move(holders)}}));
      },
  });

  // get_statement: serves the per-account activity from the indexer. Runs
  // serially (not exec_parallel): the index is fed on the node thread
  // without internal locking.
  if (node.indexer == nullptr) return;
  auto index = std::make_shared<AccountActivityIndex>();
  node.indexer->Install(index);
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/statement",
      .summary = "Transaction seqnos that touched ?account=ID",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .response_schema = json::ObjectSchema(
          {{"account", json::StringSchema()},
           {"transactions", json::ArraySchema(json::Uint64Schema())}},
          {"account", "transactions"}),
      .handler = [index](EndpointContext* ctx) {
        std::string id = ctx->Param("account");
        json::Array seqnos;
        for (uint64_t s : index->Activity(id)) {
          seqnos.emplace_back(static_cast<int64_t>(s));
        }
        ctx->SetJsonResponse(
            200, json::Value(json::Object{
                     {"account", json::Value(id)},
                     {"transactions", std::move(seqnos)}}));
      },
  });
}

}  // namespace ccf::apps
