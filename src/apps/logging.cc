#include "apps/logging.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>
#include <memory>
#include <thread>

#include "common/hex.h"
#include "crypto/sha256.h"
#include "json/json.h"
#include "json/schema.h"

namespace ccf::apps {

namespace historical = node::historical;

namespace {

void WriteMessage(rpc::EndpointContext* ctx, const char* map) {
  auto params = ctx->Params();
  if (!params.ok() || params->Get("id") == nullptr ||
      params->Get("msg") == nullptr) {
    ctx->SetError(400, "body must contain {id, msg}");
    return;
  }
  int64_t id = params->GetInt("id");
  std::string msg = params->GetString("msg");
  ctx->tx().Handle(map)->PutStr(std::to_string(id), msg);
  json::Object out;
  out["ok"] = true;
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

void ReadMessage(rpc::EndpointContext* ctx, const char* map) {
  std::string id = ctx->Param("id");
  if (id.empty()) {
    ctx->SetError(400, "missing id query parameter");
    return;
  }
  auto msg = ctx->tx().Handle(map)->GetStr(id);
  if (!msg.has_value()) {
    ctx->SetError(404, "no such message");
    return;
  }
  json::Object out;
  out["id"] = static_cast<int64_t>(std::strtoll(id.c_str(), nullptr, 10));
  out["msg"] = *msg;
  ctx->SetJsonResponse(200, json::Value(std::move(out)));
}

// 202 Accepted with Retry-After while the historical fetch is in flight.
void RespondAccepted(rpc::EndpointContext* ctx, uint64_t retry_after_ms) {
  json::Object out;
  out["state"] = "fetching";
  out["retry_after_ms"] = retry_after_ms;
  ctx->SetJsonResponse(202, json::Value(std::move(out)));
  uint64_t secs = std::max<uint64_t>(1, (retry_after_ms + 999) / 1000);
  ctx->response().headers["retry-after"] = std::to_string(secs);
  ctx->response().headers["x-ccf-retry-after-ms"] =
      std::to_string(retry_after_ms);
}

// Terminal 404 for seqnos retired below the host's snapshot horizon: the
// entries are gone for good, so clients must not keep retrying. Carries
// the standard envelope plus the horizon so clients can re-aim.
void RespondCompacted(rpc::EndpointContext* ctx,
                      const historical::StateCache::Lookup& lookup) {
  json::Value body = rpc::ErrorBody("Compacted", lookup.error);
  body["horizon"] = lookup.horizon;
  ctx->SetJsonResponse(404, body);
}

// The message written to `id` by the verified entry at `seqno`.
std::optional<std::string> MessageInEntry(
    const historical::VerifiedEntry& entry, const std::string& id) {
  auto map_it = entry.writes.maps.find(kPrivateMessagesMap);
  if (map_it == entry.writes.maps.end()) return std::nullopt;
  auto key_it = map_it->second.find(ToBytes(id));
  if (key_it == map_it->second.end() || !key_it->second.has_value()) {
    return std::nullopt;
  }
  return ToString(*key_it->second);
}

json::Value LogEntrySchema() {
  return json::ObjectSchema(
      {{"id", json::IntegerSchema("message identifier")},
       {"msg", json::StringSchema("message text")}},
      {"id", "msg"});
}

json::Value OkSchema() {
  return json::ObjectSchema({{"ok", json::BoolSchema()}}, {"ok"});
}

}  // namespace

void LoggingApp::RegisterEndpoints(rpc::EndpointRegistry* registry,
                                   const node::NodeContext& node) {
  using rpc::AuthPolicy;
  // The plain KV endpoints touch only their own transaction, so they are
  // eligible for batched optimistic execution (DESIGN.md §12). The
  // historical endpoints below are not: they mutate the shared historical
  // state cache and the per-node index.
  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/log",
      .summary = "Record a private message under an identifier",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = LogEntrySchema(),
      .response_schema = OkSchema(),
      .handler = [](rpc::EndpointContext* ctx) {
        WriteMessage(ctx, kPrivateMessagesMap);
      },
  });
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/log",
      .summary = "Read the private message with ?id=N",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .exec_parallel = true,
      .response_schema = LogEntrySchema(),
      .handler = [](rpc::EndpointContext* ctx) {
        ReadMessage(ctx, kPrivateMessagesMap);
      },
  });
  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/log_public",
      .summary = "Record a public message under an identifier",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = LogEntrySchema(),
      .response_schema = OkSchema(),
      .handler = [](rpc::EndpointContext* ctx) {
        WriteMessage(ctx, kPublicMessagesMap);
      },
  });
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/log_public",
      .summary = "Read the public message with ?id=N",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .exec_parallel = true,
      .response_schema = LogEntrySchema(),
      .handler = [](rpc::EndpointContext* ctx) {
        ReadMessage(ctx, kPublicMessagesMap);
      },
  });
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/count",
      .summary = "Number of private messages stored",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .exec_parallel = true,
      .response_schema = json::ObjectSchema(
          {{"count", json::Uint64Schema()}}, {"count"}),
      .handler = [](rpc::EndpointContext* ctx) {
        json::Object out;
        out["count"] = ctx->tx().Handle(kPrivateMessagesMap)->Size();
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });
  // Compute-heavy read for the exec-worker sweep: reads one message, then
  // burns ~1000 SHA-256 rounds over it. Models the paper's observation
  // that read-only requests scale with the number of worker threads
  // because they skip the serial commit point entirely.
  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/hashread",
      .summary = "Read a message and burn 1000 chained SHA-256 rounds",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .exec_parallel = true,
      .response_schema = json::ObjectSchema(
          {{"id", json::IntegerSchema()},
           {"digest", json::StringSchema("hex digest of the hash chain")}},
          {"id", "digest"}),
      .handler = [](rpc::EndpointContext* ctx) {
        std::string id = ctx->Param("id");
        if (id.empty()) {
          ctx->SetError(400, "missing id query parameter");
          return;
        }
        auto msg = ctx->tx().Handle(kPrivateMessagesMap)->GetStr(id);
        if (!msg.has_value()) {
          ctx->SetError(404, "no such message");
          return;
        }
        crypto::Sha256Digest d = crypto::Sha256::Hash(ToBytes(*msg));
        for (int i = 0; i < 1000; ++i) {
          d = crypto::Sha256::Hash(ByteSpan(d.data(), d.size()));
        }
        // Optional modeled service time: `work_us` blocks the executing
        // worker for that many microseconds (capped at 10ms). The exec
        // sweep uses it so batch-overlap is measurable even on a
        // single-core host, where the chained-hash loop alone would
        // time-slice instead of scaling. Timing only -- the response
        // bytes are unaffected, so determinism contracts still hold.
        std::string work_us = ctx->Param("work_us");
        if (!work_us.empty()) {
          long long us = std::strtoll(work_us.c_str(), nullptr, 10);
          us = std::min<long long>(std::max<long long>(us, 0), 10000);
          if (us > 0) {
            std::this_thread::sleep_for(std::chrono::microseconds(us));
          }
        }
        json::Object out;
        out["id"] = static_cast<int64_t>(
            std::strtoll(id.c_str(), nullptr, 10));
        out["digest"] = HexEncode(Bytes(d.begin(), d.end()));
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });
  // Read-modify-write counter for the mixed-workload sweep: increments
  // "ctr:<id>" and returns the new value. Contending ids conflict at the
  // serial commit point and exercise the bounded re-execution path.
  InstallEndpoint(registry, {
      .method = "POST",
      .path = "/app/rmw",
      .summary = "Increment the counter for an identifier",
      .auth = AuthPolicy::kUserCert,
      .exec_parallel = true,
      .request_schema = json::ObjectSchema(
          {{"id", json::IntegerSchema("counter identifier")}}, {"id"}),
      .response_schema = json::ObjectSchema(
          {{"id", json::IntegerSchema()},
           {"value", json::IntegerSchema("counter value after increment")}},
          {"id", "value"}),
      .handler = [](rpc::EndpointContext* ctx) {
        auto params = ctx->Params();
        if (!params.ok() || params->Get("id") == nullptr) {
          ctx->SetError(400, "body must contain {id}");
          return;
        }
        std::string key = "ctr:" + std::to_string(params->GetInt("id"));
        auto* handle = ctx->tx().Handle(kPrivateMessagesMap);
        int64_t value = 0;
        auto cur = handle->GetStr(key);
        if (cur.has_value()) {
          value = std::strtoll(cur->c_str(), nullptr, 10);
        }
        ++value;
        handle->PutStr(key, std::to_string(value));
        json::Object out;
        out["id"] = params->GetInt("id");
        out["value"] = value;
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  if (node.historical == nullptr || node.indexer == nullptr) return;

  // Per-node index of message-id -> write seqnos, fed asynchronously by
  // the node's indexer. One instance per registration, since the same
  // LoggingApp object may be registered on several nodes.
  auto index = std::make_shared<indexing::SeqnosByKey>(kPrivateMessagesMap);
  node.indexer->Install(index);

  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/log/historical",
      .summary = "Message ?id=N as of ?seqno=S, with its receipt",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .handler = [node, index](rpc::EndpointContext* ctx) {
        std::string id = ctx->Param("id");
        if (id.empty()) {
          ctx->SetError(400, "missing id query parameter");
          return;
        }
        uint64_t upto = node.receiptable_seqno();
        if (upto == 0) {
          ctx->SetError(404, "no receiptable state yet");
          return;
        }
        uint64_t seqno = ctx->ParamU64("seqno");
        if (seqno == 0 || seqno > upto) seqno = upto;
        auto write_seqno = index->LastWriteAtOrBefore(id, seqno);
        if (!write_seqno.has_value()) {
          // The index trails commit by a bounded lag; distinguish "not
          // indexed yet" from "never written".
          if (node.indexer->Lag(node.commit_seqno()) > 0) {
            RespondAccepted(ctx, 1);
            return;
          }
          ctx->SetError(404, "no write to this id at or before seqno");
          return;
        }
        auto lookup =
            node.historical->GetRange(*write_seqno, *write_seqno,
                                      node.now_ms());
        switch (lookup.state) {
          case historical::RequestState::kFetching:
            RespondAccepted(ctx, lookup.retry_after_ms);
            return;
          case historical::RequestState::kFailed:
            ctx->SetError(503, lookup.error);
            return;
          case historical::RequestState::kCompacted:
            RespondCompacted(ctx, lookup);
            return;
          case historical::RequestState::kReady:
            break;
        }
        const historical::VerifiedEntry* entry =
            lookup.request->EntryAt(*write_seqno);
        auto msg = entry != nullptr ? MessageInEntry(*entry, id)
                                    : std::nullopt;
        if (!msg.has_value()) {
          ctx->SetError(404, "no such message");
          return;
        }
        json::Object out;
        out["id"] = static_cast<int64_t>(
            std::strtoll(id.c_str(), nullptr, 10));
        out["msg"] = *msg;
        out["seqno"] = entry->entry.seqno;
        out["receipt"] = HexEncode(entry->receipt.Serialize());
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });

  InstallEndpoint(registry, {
      .method = "GET",
      .path = "/app/log/historical/range",
      .summary = "Every write to ?id=N in [?from, ?to], with receipts",
      .auth = AuthPolicy::kUserCert,
      .read_only = true,
      .handler = [node, index](rpc::EndpointContext* ctx) {
        std::string id = ctx->Param("id");
        if (id.empty()) {
          ctx->SetError(400, "missing id query parameter");
          return;
        }
        uint64_t upto = node.receiptable_seqno();
        if (upto == 0) {
          ctx->SetError(404, "no receiptable state yet");
          return;
        }
        uint64_t from = ctx->ParamU64("from");
        if (from == 0) from = 1;
        uint64_t to = ctx->ParamU64("to");
        if (to == 0 || to > upto) to = upto;
        if (from > to) {
          ctx->SetError(400, "empty range");
          return;
        }
        if (node.indexer->Lag(node.commit_seqno()) > 0) {
          RespondAccepted(ctx, 1);  // index still catching up
          return;
        }
        auto lookup = node.historical->GetRange(from, to, node.now_ms());
        switch (lookup.state) {
          case historical::RequestState::kFetching:
            RespondAccepted(ctx, lookup.retry_after_ms);
            return;
          case historical::RequestState::kFailed:
            ctx->SetError(503, lookup.error);
            return;
          case historical::RequestState::kCompacted:
            RespondCompacted(ctx, lookup);
            return;
          case historical::RequestState::kReady:
            break;
        }
        json::Array entries;
        for (uint64_t s : index->SeqnosInRange(id, from, to)) {
          const historical::VerifiedEntry* entry =
              lookup.request->EntryAt(s);
          if (entry == nullptr) continue;
          auto msg = MessageInEntry(*entry, id);
          if (!msg.has_value()) continue;
          json::Object e;
          e["seqno"] = s;
          e["msg"] = *msg;
          e["receipt"] = HexEncode(entry->receipt.Serialize());
          entries.push_back(json::Value(std::move(e)));
        }
        json::Object out;
        out["id"] = static_cast<int64_t>(
            std::strtoll(id.c_str(), nullptr, 10));
        out["from"] = from;
        out["to"] = to;
        out["entries"] = std::move(entries);
        ctx->SetJsonResponse(200, json::Value(std::move(out)));
      },
  });
}

const std::string& LoggingAppModule() {
  static const std::string module = R"CCL(
// Scripted logging application (Table 5's "JS" implementation).

function write_message(request) {
  let p = request.params;
  if (p == null || p.id == null || p.msg == null) {
    return {status: 400, body: {error: 'body must contain {id, msg}'}};
  }
  kv_put('private:app.messages', str(p.id), p.msg);
  return {status: 200, body: {ok: true}};
}

function read_message(request) {
  let p = request.params;
  if (p == null || p.id == null) {
    return {status: 400, body: {error: 'body must contain {id}'}};
  }
  let msg = kv_get('private:app.messages', str(p.id));
  if (msg == null) {
    return {status: 404, body: {error: 'no such message'}};
  }
  return {status: 200, body: {id: p.id, msg: msg}};
}
)CCL";
  return module;
}

const std::string& LoggingAppEndpointsJson() {
  static const std::string endpoints = R"JSON({
    "POST /app/jslog": {"handler": "write_message", "auth": "user_cert",
                        "readonly": false},
    "POST /app/jslog_read": {"handler": "read_message", "auth": "user_cert",
                             "readonly": true}
  })JSON";
  return endpoints;
}

}  // namespace ccf::apps
