// Deterministic workload samplers for benchmark and chaos drivers.
//
// ZipfianSampler draws account indices with the classic Zipf(s)
// distribution -- a small set of hot accounts absorbs most of the traffic,
// which is what makes SmallBank a *contended* workload (DESIGN.md §14):
// under skew, concurrent read-modify-writes of the same hot account
// collide at the serial OCC commit point and exercise re-execution.
//
// Sampling is driven by crypto::Drbg, so a seeded driver produces the
// same account sequence on every run: the SmallBank chaos suite depends
// on this to compare exec_threads=0 vs 4 bit-for-bit.

#ifndef CCF_APPS_WORKLOAD_H_
#define CCF_APPS_WORKLOAD_H_

#include <cmath>
#include <cstdint>
#include <vector>

#include "crypto/hmac.h"

namespace ccf::apps {

class ZipfianSampler {
 public:
  // Items are indices [0, n). s is the skew exponent: 0 degenerates to
  // uniform, 0.9-1.2 are the usual "hot account" settings.
  ZipfianSampler(size_t n, double s) : cdf_(n) {
    double total = 0;
    for (size_t i = 0; i < n; ++i) {
      total += 1.0 / std::pow(static_cast<double>(i + 1), s);
      cdf_[i] = total;
    }
    for (size_t i = 0; i < n; ++i) cdf_[i] /= total;
  }

  size_t Sample(crypto::Drbg* drbg) const {
    // 30 uniform bits -> [0, 1); binary search the precomputed CDF.
    constexpr uint64_t kScale = uint64_t{1} << 30;
    double u = static_cast<double>(drbg->Uniform(kScale)) /
               static_cast<double>(kScale);
    size_t lo = 0, hi = cdf_.size() - 1;
    while (lo < hi) {
      size_t mid = (lo + hi) / 2;
      if (cdf_[mid] < u) lo = mid + 1;
      else hi = mid;
    }
    return lo;
  }

 private:
  std::vector<double> cdf_;
};

}  // namespace ccf::apps

#endif  // CCF_APPS_WORKLOAD_H_
