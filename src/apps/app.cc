#include "apps/app.h"

#include <memory>
#include <utility>

namespace ccf::apps {

void InstallEndpoint(rpc::EndpointRegistry* registry, EndpointDef def) {
  rpc::EndpointSpec spec;
  spec.handler = std::move(def.handler);
  spec.auth = def.auth;
  spec.read_only = def.read_only;
  spec.exec_parallel = def.exec_parallel;
  spec.summary = std::move(def.summary);
  if (!def.request_schema.is_null()) {
    spec.request_schema =
        std::make_shared<const json::Value>(std::move(def.request_schema));
  }
  if (!def.response_schema.is_null()) {
    spec.response_schema =
        std::make_shared<const json::Value>(std::move(def.response_schema));
  }
  registry->Install(def.method, def.path, std::move(spec));
}

}  // namespace ccf::apps
