// SmallBank benchmark application (the paper's Table 5 perf workload
// family; DESIGN.md §14). Each customer has a savings and a checking
// balance; the six classic operations mix cross-account read-modify-writes
// with balance reads. Driven with Zipfian hot-account skew
// (apps/workload.h) it is the repo's first contended workload: concurrent
// writes to the same hot account conflict at the OCC commit point.
//
// Endpoints (all /app/sb/, user cert, exec-parallel):
//   POST /app/sb/create_accounts {"from", "to", "savings", "checking"}
//        Bulk-opens accounts [from, to) with the given starting balances
//        (bench/test setup; one atomic transaction).
//   POST /app/sb/transact_savings {"account", "amount"}
//        Adds amount (may be negative) to savings; 409 if it would go
//        negative.
//   POST /app/sb/deposit_checking {"account", "amount"}
//        Adds a non-negative amount to checking.
//   POST /app/sb/send_payment {"from", "to", "amount"}
//        Moves amount checking->checking; 409 on insufficient funds.
//   POST /app/sb/write_check {"account", "amount"}
//        Deducts from checking; an overdraft (amount > savings+checking)
//        incurs the classic 1-unit penalty instead of failing.
//   POST /app/sb/amalgamate {"from", "to"}
//        Moves all of from's savings+checking into to's checking.
//   GET  /app/sb/balance?account=N
//        savings + checking total (read-only).

#ifndef CCF_APPS_SMALLBANK_H_
#define CCF_APPS_SMALLBANK_H_

#include "apps/app.h"

namespace ccf::apps {

// Map names used by the SmallBank app (account id, decimal -> balance).
inline constexpr char kSbSavingsMap[] = "private:sb.savings";
inline constexpr char kSbCheckingMap[] = "private:sb.checking";

class SmallBankApp : public node::Application {
 public:
  void RegisterEndpoints(rpc::EndpointRegistry* registry,
                         const node::NodeContext& node) override;
};

}  // namespace ccf::apps

#endif  // CCF_APPS_SMALLBANK_H_
