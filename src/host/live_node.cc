#include "host/live_node.h"

namespace ccf::host {

Result<std::unique_ptr<LiveNodeHost>> LiveNodeHost::StartGenesis(
    LiveNodeConfig cfg, const node::ServiceInit& init, node::Application* app) {
  auto node =
      node::Node::CreateGenesis(cfg.node, init, app, /*env=*/nullptr);
  auto host = std::unique_ptr<LiveNodeHost>(new LiveNodeHost(std::move(cfg)));
  RETURN_IF_ERROR(host->Launch(std::move(node)));
  return host;
}

Result<std::unique_ptr<LiveNodeHost>> LiveNodeHost::StartJoiner(
    LiveNodeConfig cfg, crypto::PublicKeyBytes service_identity,
    const std::string& target_node, node::Application* app) {
  auto node = node::Node::CreateJoiner(cfg.node, std::move(service_identity),
                                       target_node, app, /*env=*/nullptr);
  auto host = std::unique_ptr<LiveNodeHost>(new LiveNodeHost(std::move(cfg)));
  RETURN_IF_ERROR(host->Launch(std::move(node)));
  return host;
}

Status LiveNodeHost::Launch(std::unique_ptr<node::Node> node) {
  node_ = std::move(node);
  ticker_ = std::make_unique<Ticker>(
      cfg_.tick_interval_ms,
      [this](uint64_t now_ms) { node_->Tick(now_ms); });
  cfg_.transport.node_id = cfg_.node.node_id;
  transport_ = std::make_unique<LiveTransport>(
      cfg_.transport,
      // IO thread -> enclave ring. A nudge makes the tick thread drain the
      // ring now instead of at the next interval boundary.
      [this](const std::string& from, ByteSpan data) {
        if (!node_->HostReceive(from, data)) return false;
        ticker_->Nudge();
        return true;
      },
      [this](const std::string& peer) {
        if (!node_->HostPostSessionClosed(peer)) return false;
        ticker_->Nudge();
        return true;
      });
  node_->SetHostTransport(transport_.get());
  RETURN_IF_ERROR(transport_->Start());
  ticker_->Start();
  running_ = true;
  return Status::Ok();
}

void LiveNodeHost::Stop() {
  if (!running_) return;
  running_ = false;
  ticker_->Stop();      // no more enclave entry
  transport_->Stop();   // no more ring producers or callbacks
  // node_ destroyed with the object, after both threads are joined.
}

}  // namespace ccf::host
