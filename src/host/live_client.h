// LiveClient: the live-mode counterpart of node::Client — a user or
// member client speaking STLS-over-TCP to a live node's RPC port.
//
// Single-threaded and poll-driven: the owning thread calls Connect once
// (dial + handshake, blocking up to a timeout), then either the blocking
// conveniences (Call/Get/PostJson/PostJsonSigned) or the pipelined pair
// SendRequest + PollOnce, which is what the closed-loop bench harness
// drives. Requests pipeline freely; responses are matched to callbacks in
// FIFO order, exactly as in the simulator client.
//
// Each TCP frame body is the byte string a simulated Environment::Send
// would carry (0x01 session-record prefix + STLS record), so the enclave
// cannot tell the two drivers apart.

#ifndef CCF_HOST_LIVE_CLIENT_H_
#define CCF_HOST_LIVE_CLIENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <optional>
#include <string>

#include "crypto/cert.h"
#include "crypto/hmac.h"
#include "http/http.h"
#include "json/json.h"
#include "rpc/session.h"

namespace ccf::host {

class LiveClient {
 public:
  // `key`/`cert` may be null/empty for anonymous clients.
  LiveClient(std::string client_id, crypto::PublicKeyBytes service_identity,
             const crypto::KeyPair* key = nullptr,
             std::optional<crypto::Certificate> cert = std::nullopt);
  ~LiveClient();

  LiveClient(const LiveClient&) = delete;
  LiveClient& operator=(const LiveClient&) = delete;

  // Dials host:port and completes the STLS handshake (or fails by
  // `timeout_ms`). Reconnecting fails outstanding callbacks first.
  Status Connect(const std::string& host, uint16_t port,
                 uint64_t timeout_ms = 5000);
  bool connected() const { return fd_ >= 0 && session_ != nullptr; }
  void Close();

  using ResponseCallback = std::function<void(Result<http::Response>)>;

  // Pipelines a request; the callback fires from a later PollOnce/Call.
  void SendRequest(http::Request request, ResponseCallback callback);

  // Processes socket IO for up to `timeout_ms` (one poll round) and
  // dispatches any completed responses. Returns false once the connection
  // is closed (all pending callbacks have been failed).
  bool PollOnce(int timeout_ms);

  // Blocking conveniences, mirroring node::Client.
  Result<http::Response> Call(http::Request request,
                              uint64_t timeout_ms = 5000);
  Result<http::Response> Get(const std::string& path,
                             uint64_t timeout_ms = 5000);
  Result<http::Response> PostJson(const std::string& path,
                                  const json::Value& body,
                                  uint64_t timeout_ms = 5000);
  // Signs the body with the client key (governance requests).
  Result<http::Response> PostJsonSigned(const std::string& path,
                                        const json::Value& body,
                                        uint64_t timeout_ms = 5000);

  static std::optional<std::pair<uint64_t, uint64_t>> TxIdOf(
      const http::Response& response);

  uint64_t responses_received() const { return responses_received_; }
  size_t pending() const { return pending_.size(); }

 private:
  void SendWire(ByteSpan session_payload);  // frame + buffer + try write
  void FlushQueue();
  bool HandleFrame(ByteSpan frame);
  bool TryWrite();
  void FailPending(const Status& why);

  std::string client_id_;
  crypto::PublicKeyBytes service_identity_;
  const crypto::KeyPair* key_;
  std::optional<crypto::Certificate> cert_;
  crypto::Drbg drbg_;

  int fd_ = -1;
  std::unique_ptr<rpc::ClientSession> session_;
  http::ResponseParser parser_;
  Bytes inbuf_;
  Bytes outbuf_;
  size_t out_off_ = 0;
  std::deque<Bytes> queued_requests_;  // serialized, awaiting handshake
  std::deque<ResponseCallback> pending_;
  uint64_t responses_received_ = 0;
};

}  // namespace ccf::host

#endif  // CCF_HOST_LIVE_CLIENT_H_
