#include "host/tcp.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace ccf::host {

void AppendFrame(Bytes* out, ByteSpan payload) {
  uint32_t n = static_cast<uint32_t>(payload.size());
  out->push_back(static_cast<uint8_t>(n));
  out->push_back(static_cast<uint8_t>(n >> 8));
  out->push_back(static_cast<uint8_t>(n >> 16));
  out->push_back(static_cast<uint8_t>(n >> 24));
  Append(out, payload);
}

bool ExtractFrames(Bytes* buf, std::vector<Bytes>* frames) {
  size_t off = 0;
  while (buf->size() - off >= 4) {
    const uint8_t* p = buf->data() + off;
    uint32_t n = static_cast<uint32_t>(p[0]) |
                 (static_cast<uint32_t>(p[1]) << 8) |
                 (static_cast<uint32_t>(p[2]) << 16) |
                 (static_cast<uint32_t>(p[3]) << 24);
    if (n > kMaxFrameSize) return false;
    if (buf->size() - off - 4 < n) break;
    frames->emplace_back(buf->begin() + static_cast<ptrdiff_t>(off + 4),
                         buf->begin() + static_cast<ptrdiff_t>(off + 4 + n));
    off += 4 + n;
  }
  if (off > 0) buf->erase(buf->begin(), buf->begin() + static_cast<ptrdiff_t>(off));
  return true;
}

Status SetNonBlocking(int fd) {
  int flags = fcntl(fd, F_GETFL, 0);
  if (flags < 0 || fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Status::Internal(std::string("fcntl: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void SetNoDelay(int fd) {
  int one = 1;
  setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
}

Result<int> DialNonBlocking(const std::string& host, uint16_t port) {
  int fd = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  SetNoDelay(fd);
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    close(fd);
    return Status::InvalidArgument("bad address: " + host);
  }
  if (connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0 &&
      errno != EINPROGRESS) {
    int err = errno;
    close(fd);
    return Status::Unavailable(std::string("connect: ") + std::strerror(err));
  }
  return fd;
}

int SoError(int fd) {
  int err = 0;
  socklen_t len = sizeof(err);
  if (getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) < 0) return errno;
  return err;
}

TcpListener::~TcpListener() { Close(); }

Status TcpListener::Listen(const std::string& host, uint16_t port) {
  Close();
  fd_ = socket(AF_INET, SOCK_STREAM | SOCK_NONBLOCK | SOCK_CLOEXEC, 0);
  if (fd_ < 0) {
    return Status::Internal(std::string("socket: ") + std::strerror(errno));
  }
  int one = 1;
  setsockopt(fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    Close();
    return Status::InvalidArgument("bad address: " + host);
  }
  if (bind(fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    int err = errno;
    Close();
    return Status::Unavailable(std::string("bind: ") + std::strerror(err));
  }
  if (listen(fd_, SOMAXCONN) < 0) {
    int err = errno;
    Close();
    return Status::Internal(std::string("listen: ") + std::strerror(err));
  }
  sockaddr_in bound{};
  socklen_t blen = sizeof(bound);
  if (getsockname(fd_, reinterpret_cast<sockaddr*>(&bound), &blen) == 0) {
    port_ = ntohs(bound.sin_port);
  }
  return Status::Ok();
}

int TcpListener::Accept() {
  if (fd_ < 0) return -1;
  int conn = accept4(fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
  if (conn >= 0) SetNoDelay(conn);
  return conn;
}

void TcpListener::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  port_ = 0;
}

Epoll::Epoll() { fd_ = epoll_create1(EPOLL_CLOEXEC); }

Epoll::~Epoll() {
  if (fd_ >= 0) close(fd_);
}

Status Epoll::Add(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(fd_, EPOLL_CTL_ADD, fd, &ev) < 0) {
    return Status::Internal(std::string("epoll add: ") + std::strerror(errno));
  }
  return Status::Ok();
}

Status Epoll::Mod(int fd, uint32_t events, uint64_t tag) {
  epoll_event ev{};
  ev.events = events;
  ev.data.u64 = tag;
  if (epoll_ctl(fd_, EPOLL_CTL_MOD, fd, &ev) < 0) {
    return Status::Internal(std::string("epoll mod: ") + std::strerror(errno));
  }
  return Status::Ok();
}

void Epoll::Del(int fd) { epoll_ctl(fd_, EPOLL_CTL_DEL, fd, nullptr); }

int Epoll::Wait(std::vector<Event>* out, int timeout_ms) {
  epoll_event evs[64];
  int n = epoll_wait(fd_, evs, 64, timeout_ms);
  out->clear();
  for (int i = 0; i < n; ++i) {
    out->push_back(Event{evs[i].data.u64, evs[i].events});
  }
  return n;
}

Waker::Waker() { fd_ = eventfd(0, EFD_NONBLOCK | EFD_CLOEXEC); }

Waker::~Waker() {
  if (fd_ >= 0) close(fd_);
}

void Waker::Wake() {
  uint64_t one = 1;
  // A full eventfd counter still wakes the poller; the result is unused.
  [[maybe_unused]] ssize_t n = write(fd_, &one, sizeof(one));
}

void Waker::Drain() {
  uint64_t val = 0;
  while (read(fd_, &val, sizeof(val)) > 0) {
  }
}

}  // namespace ccf::host
