#include "host/live_client.h"

#include <poll.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>

#include "common/hex.h"
#include "common/logging.h"
#include "crypto/sha256.h"
#include "host/tcp.h"
#include "host/ticker.h"
#include "node/client.h"

namespace ccf::host {

namespace {
constexpr uint8_t kSessionRecordKind = 1;

Bytes WrapSession(ByteSpan record) {
  Bytes out;
  out.push_back(kSessionRecordKind);
  Append(&out, record);
  return out;
}
}  // namespace

LiveClient::LiveClient(std::string client_id,
                       crypto::PublicKeyBytes service_identity,
                       const crypto::KeyPair* key,
                       std::optional<crypto::Certificate> cert)
    : client_id_(std::move(client_id)),
      service_identity_(service_identity),
      key_(key),
      cert_(std::move(cert)),
      drbg_("ccf-live-client-" + client_id_, 0) {}

LiveClient::~LiveClient() { Close(); }

void LiveClient::Close() {
  if (fd_ >= 0) {
    close(fd_);
    fd_ = -1;
  }
  session_.reset();
  inbuf_.clear();
  outbuf_.clear();
  out_off_ = 0;
  queued_requests_.clear();
  FailPending(Status::Unavailable("connection closed"));
}

void LiveClient::FailPending(const Status& why) {
  // A callback may issue new requests; keep the deque coherent.
  while (!pending_.empty()) {
    ResponseCallback cb = std::move(pending_.front());
    pending_.pop_front();
    cb(why);
  }
}

Status LiveClient::Connect(const std::string& host, uint16_t port,
                           uint64_t timeout_ms) {
  Close();
  const uint64_t deadline = SteadyNowMs() + timeout_ms;
  ASSIGN_OR_RETURN(fd_, DialNonBlocking(host, port));
  // Wait for the non-blocking connect to resolve.
  for (;;) {
    pollfd pfd{fd_, POLLOUT, 0};
    uint64_t now = SteadyNowMs();
    if (now >= deadline) {
      Close();
      return Status::Unavailable("connect timed out");
    }
    int n = poll(&pfd, 1, static_cast<int>(deadline - now));
    if (n < 0 && errno != EINTR) break;
    if (n > 0) break;
  }
  int err = SoError(fd_);
  if (err != 0) {
    Close();
    return Status::Unavailable(std::string("connect: ") + strerror(err));
  }
  session_ = std::make_unique<rpc::ClientSession>(service_identity_, key_,
                                                  cert_, &drbg_);
  parser_ = http::ResponseParser();
  SendWire(WrapSession(session_->Start()));
  while (!session_->established()) {
    uint64_t now = SteadyNowMs();
    if (now >= deadline) {
      Close();
      return Status::Unavailable("handshake timed out");
    }
    if (!PollOnce(static_cast<int>(deadline - now))) {
      return Status::Unavailable("connection closed during handshake");
    }
  }
  return Status::Ok();
}

void LiveClient::SendWire(ByteSpan session_payload) {
  AppendFrame(&outbuf_, session_payload);
  TryWrite();
}

bool LiveClient::TryWrite() {
  while (out_off_ < outbuf_.size()) {
    ssize_t n =
        write(fd_, outbuf_.data() + out_off_, outbuf_.size() - out_off_);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return true;
      if (errno == EINTR) continue;
      return false;
    }
    out_off_ += static_cast<size_t>(n);
  }
  outbuf_.clear();
  out_off_ = 0;
  return true;
}

void LiveClient::SendRequest(http::Request request, ResponseCallback callback) {
  if (!connected()) {
    callback(Status::FailedPrecondition("client not connected"));
    return;
  }
  pending_.push_back(std::move(callback));
  Bytes wire = request.Serialize();
  if (!session_->established()) {
    queued_requests_.push_back(std::move(wire));
    return;
  }
  auto record = session_->Seal(wire);
  if (record.ok()) SendWire(WrapSession(*record));
}

void LiveClient::FlushQueue() {
  while (!queued_requests_.empty()) {
    auto record = session_->Seal(queued_requests_.front());
    queued_requests_.pop_front();
    if (record.ok()) SendWire(WrapSession(*record));
  }
}

bool LiveClient::HandleFrame(ByteSpan frame) {
  if (session_ == nullptr || frame.empty() ||
      frame[0] != kSessionRecordKind) {
    return true;  // not a session record; ignore
  }
  auto out = session_->OnRecord(frame.subspan(1));
  if (!out.ok()) {
    LOG_DEBUG << client_id_ << " session error: " << out.status().ToString();
    return true;
  }
  if (out->established) FlushQueue();
  for (const Bytes& app_data : out->app_data) {
    parser_.Feed(app_data);
  }
  while (true) {
    auto resp = parser_.Next();
    if (!resp.ok() || !resp->has_value()) break;
    ++responses_received_;
    bool server_close = (*resp)->GetHeader("connection") == "close";
    if (!pending_.empty()) {
      ResponseCallback cb = std::move(pending_.front());
      pending_.pop_front();
      cb(std::move(**resp));
    }
    if (server_close) return false;
  }
  return true;
}

bool LiveClient::PollOnce(int timeout_ms) {
  if (fd_ < 0) return false;
  short want = POLLIN;
  if (out_off_ < outbuf_.size()) want |= POLLOUT;
  pollfd pfd{fd_, want, 0};
  int n = poll(&pfd, 1, timeout_ms);
  if (n < 0 && errno != EINTR) {
    Close();
    return false;
  }
  if (n <= 0) return true;
  if ((pfd.revents & POLLOUT) != 0 && !TryWrite()) {
    Close();
    return false;
  }
  if ((pfd.revents & (POLLIN | POLLHUP | POLLERR)) != 0) {
    uint8_t buf[64 * 1024];
    for (;;) {
      ssize_t r = read(fd_, buf, sizeof(buf));
      if (r > 0) {
        inbuf_.insert(inbuf_.end(), buf, buf + r);
        continue;
      }
      if (r < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
      if (r < 0 && errno == EINTR) continue;
      Close();  // EOF or error: fails all pending callbacks
      return false;
    }
    std::vector<Bytes> frames;
    if (!ExtractFrames(&inbuf_, &frames)) {
      Close();
      return false;
    }
    for (const Bytes& f : frames) {
      if (!HandleFrame(f)) {
        // Server announced connection: close — honour it.
        Close();
        return false;
      }
    }
  }
  return true;
}

Result<http::Response> LiveClient::Call(http::Request request,
                                        uint64_t timeout_ms) {
  // Shared, not stack-captured: on timeout the pending callback outlives
  // this frame and may still fire on a later close/reconnect.
  auto result = std::make_shared<std::optional<Result<http::Response>>>();
  SendRequest(std::move(request), [result](Result<http::Response> r) {
    *result = std::move(r);
  });
  const uint64_t deadline = SteadyNowMs() + timeout_ms;
  while (!result->has_value()) {
    uint64_t now = SteadyNowMs();
    if (now >= deadline) return Status::Unavailable("request timed out");
    if (!PollOnce(static_cast<int>(std::min<uint64_t>(deadline - now, 50))) &&
        !result->has_value()) {
      return Status::Unavailable("connection closed");
    }
  }
  return std::move(**result);
}

Result<http::Response> LiveClient::Get(const std::string& path,
                                       uint64_t timeout_ms) {
  http::Request req;
  req.method = "GET";
  req.path = path;
  return Call(std::move(req), timeout_ms);
}

Result<http::Response> LiveClient::PostJson(const std::string& path,
                                            const json::Value& body,
                                            uint64_t timeout_ms) {
  http::Request req;
  req.method = "POST";
  req.path = path;
  req.headers["content-type"] = "application/json";
  req.body = ToBytes(body.Dump());
  return Call(std::move(req), timeout_ms);
}

Result<http::Response> LiveClient::PostJsonSigned(const std::string& path,
                                                  const json::Value& body,
                                                  uint64_t timeout_ms) {
  if (key_ == nullptr) {
    return Status::FailedPrecondition("client has no signing key");
  }
  http::Request req;
  req.method = "POST";
  req.path = path;
  req.headers["content-type"] = "application/json";
  req.body = ToBytes(body.Dump());
  auto digest = crypto::Sha256::Hash(req.body);
  auto sig = key_->Sign(ByteSpan(digest.data(), digest.size()));
  req.headers["x-ccf-signature"] = HexEncode(ByteSpan(sig.data(), sig.size()));
  return Call(std::move(req), timeout_ms);
}

std::optional<std::pair<uint64_t, uint64_t>> LiveClient::TxIdOf(
    const http::Response& response) {
  return node::Client::TxIdOf(response);
}

}  // namespace ccf::host
