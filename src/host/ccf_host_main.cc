// ccf_host: runs the SAME enclave node under either driver.
//
//   --mode=sim   in-process deterministic simulation (smoke demo): one
//                genesis node, one client, a few logging writes.
//   --mode=live  real host: TCP listeners, epoll IO thread, wall-clock
//                ticker (DESIGN.md §13). Runs until SIGINT/SIGTERM.
//
// Live usage:
//   ccf_host --mode=live --node-id=n0 --rpc-port=8000 --node-port=8500 \
//            --genesis
//   ccf_host --mode=live --node-id=n1 --rpc-port=8001 --node-port=8501 \
//            --peer n0=127.0.0.1:8500 --join=n0 --service-identity=<hex>
//
// The genesis node prints its service identity; joiners pin it. The demo
// consortium/user keys are the deterministic test seeds — this binary is
// a development harness, not a production deployment.

#include <csignal>
#include <cstdio>
#include <cstring>
#include <string>
#include <thread>

#include "common/hex.h"
#include "common/logging.h"
#include "host/live_node.h"
#include "node/client.h"
#include "apps/logging.h"
#include "node/node.h"
#include "sim/environment.h"

namespace {

volatile std::sig_atomic_t g_stop = 0;
void OnSignal(int) { g_stop = 1; }

using namespace ccf;

node::NodeConfig DefaultConfig(const std::string& id) {
  node::NodeConfig cfg;
  cfg.node_id = id;
  cfg.seed = std::hash<std::string>{}(id) % 100000;
  cfg.raft.seed = cfg.seed;
  return cfg;
}

node::ServiceInit DemoServiceInit() {
  node::ServiceInit init;
  crypto::KeyPair member_key =
      crypto::KeyPair::FromSeed(ToBytes("member-key-0"));
  crypto::Certificate member_cert = crypto::IssueCertificate(
      "member0", "member", member_key.public_key(), member_key, "");
  init.members.push_back(
      {"member0", member_cert.Serialize(), member_key.public_key()});
  crypto::KeyPair user_key =
      crypto::KeyPair::FromSeed(ToBytes("user-key-user0"));
  crypto::Certificate user_cert = crypto::IssueCertificate(
      "user0", "user", user_key.public_key(), user_key, "");
  init.initial_users.emplace_back("user0", user_cert.Serialize());
  init.open_immediately = true;
  return init;
}

int RunSim() {
  sim::Environment env;
  apps::LoggingApp app;
  auto node =
      node::Node::CreateGenesis(DefaultConfig("n0"), DemoServiceInit(), &app,
                                &env);
  env.Step(200);  // let n0 elect itself

  crypto::KeyPair user_key =
      crypto::KeyPair::FromSeed(ToBytes("user-key-user0"));
  crypto::Certificate user_cert = crypto::IssueCertificate(
      "user0", "user", user_key.public_key(), user_key, "");
  node::Client client("client-user0", &env, node->service_identity(),
                      &user_key, user_cert);
  client.Connect("n0");
  for (int i = 0; i < 10; ++i) {
    json::Object body;
    body["id"] = static_cast<uint64_t>(1);
    body["msg"] = "sim entry " + std::to_string(i);
    auto resp = client.PostJson("/app/log", json::Value(std::move(body)));
    if (!resp.ok() || resp->status != 200) {
      std::fprintf(stderr, "sim write %d failed\n", i);
      return 1;
    }
  }
  auto read = client.Get("/app/log?id=1");
  if (!read.ok() || read->status != 200) {
    std::fprintf(stderr, "sim read failed\n");
    return 1;
  }
  std::printf("sim mode: 10 writes + read ok, commit=%llu\n",
              static_cast<unsigned long long>(node->commit_seqno()));
  return 0;
}

int RunLive(int argc, char** argv) {
  host::LiveNodeConfig cfg;
  std::string node_id = "n0";
  bool genesis = false;
  std::string join_target;
  std::string service_identity_hex;
  for (int i = 1; i < argc; ++i) {
    std::string arg = argv[i];
    auto val = [&arg](const char* prefix) -> const char* {
      size_t n = std::strlen(prefix);
      return arg.compare(0, n, prefix) == 0 ? arg.c_str() + n : nullptr;
    };
    if (const char* v = val("--node-id=")) {
      node_id = v;
    } else if (const char* v = val("--rpc-port=")) {
      cfg.transport.rpc_port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = val("--node-port=")) {
      cfg.transport.node_port = static_cast<uint16_t>(std::atoi(v));
    } else if (const char* v = val("--bind=")) {
      cfg.transport.bind_host = v;
    } else if (arg == "--peer" && i + 1 < argc) {
      std::string spec = argv[++i];  // id=host:port
      size_t eq = spec.find('=');
      if (eq == std::string::npos) {
        std::fprintf(stderr, "bad --peer %s\n", spec.c_str());
        return 2;
      }
      cfg.transport.peers[spec.substr(0, eq)] = spec.substr(eq + 1);
    } else if (arg == "--genesis") {
      genesis = true;
    } else if (const char* v = val("--join=")) {
      join_target = v;
    } else if (const char* v = val("--service-identity=")) {
      service_identity_hex = v;
    } else if (const char* v = val("--tick-ms=")) {
      cfg.tick_interval_ms = static_cast<uint64_t>(std::atoi(v));
    } else if (const char* v = val("--mode=")) {
      (void)v;  // handled in main
    } else {
      std::fprintf(stderr, "unknown argument: %s\n", arg.c_str());
      return 2;
    }
  }
  cfg.node = DefaultConfig(node_id);

  Result<std::unique_ptr<host::LiveNodeHost>> started =
      Status::InvalidArgument("pass --genesis or --join=<node>");
  apps::LoggingApp app;
  if (genesis) {
    started = host::LiveNodeHost::StartGenesis(std::move(cfg),
                                               DemoServiceInit(), &app);
  } else if (!join_target.empty()) {
    auto raw = HexDecode(service_identity_hex);
    if (!raw.ok() || raw->size() != std::tuple_size<crypto::PublicKeyBytes>()) {
      std::fprintf(stderr, "--join requires --service-identity=<hex>\n");
      return 2;
    }
    crypto::PublicKeyBytes identity{};
    std::copy(raw->begin(), raw->end(), identity.begin());
    started = host::LiveNodeHost::StartJoiner(std::move(cfg), identity,
                                              join_target, &app);
  }
  if (!started.ok()) {
    std::fprintf(stderr, "start failed: %s\n",
                 started.status().ToString().c_str());
    return 1;
  }
  auto& live = *started;
  std::string identity_hex = live->WithNode([](node::Node* n) {
    auto id = n->service_identity();
    return HexEncode(ByteSpan(id.data(), id.size()));
  });
  std::printf("%s live: rpc=%u node=%u service-identity=%s\n",
              live->node_id().c_str(), live->rpc_port(), live->node_port(),
              identity_hex.c_str());
  std::fflush(stdout);

  std::signal(SIGINT, OnSignal);
  std::signal(SIGTERM, OnSignal);
  while (g_stop == 0) {
    std::this_thread::sleep_for(std::chrono::milliseconds(100));
  }
  uint64_t commit = live->WithNode(
      [](node::Node* n) { return n->commit_seqno(); });
  live->Stop();
  std::printf("%s stopped, commit=%llu\n", live->node_id().c_str(),
              static_cast<unsigned long long>(commit));
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  std::string mode = "live";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--mode=", 7) == 0) mode = argv[i] + 7;
  }
  if (mode == "sim") return RunSim();
  if (mode == "live") return RunLive(argc, argv);
  std::fprintf(stderr, "unknown --mode=%s (sim|live)\n", mode.c_str());
  return 2;
}
