// LiveTransport: the untrusted host's network layer (DESIGN.md §13).
//
// One IO thread owns every socket:
//   - an RPC listener accepting client connections (labelled "tcp:<n>");
//   - a node listener accepting peer links, which announce their node id
//     in a hello frame;
//   - outbound peer links dialled from the configured address map, with
//     exponential reconnect-and-backoff.
// Inbound frames are pushed into the enclave's host-to-enclave ring via
// the deliver callback. A full ring PARKS the connection (read interest
// dropped, frame retried) instead of dropping bytes — backpressure
// propagates to the TCP peer, never into data loss (satellite:
// tee.ring_full).
//
// The enclave thread reaches the transport only through NetSend /
// CloseSession (the node::HostTransport interface), which enqueue
// commands under a mutex and wake the IO thread through an eventfd.

#ifndef CCF_HOST_TRANSPORT_H_
#define CCF_HOST_TRANSPORT_H_

#include <atomic>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "host/tcp.h"
#include "node/node.h"

namespace ccf::host {

struct TransportConfig {
  std::string node_id;
  std::string bind_host = "127.0.0.1";
  uint16_t rpc_port = 0;   // client listener; 0 = ephemeral
  uint16_t node_port = 0;  // node-to-node listener; 0 = ephemeral
  // Peer node id -> "host:port" of that node's node_port listener. Links
  // to configured peers are dialled proactively and redialled on loss.
  std::map<std::string, std::string> peers;
  uint64_t backoff_min_ms = 50;
  uint64_t backoff_max_ms = 2000;
  // Frames queued per peer while its link is down; beyond this the oldest
  // are dropped (consensus retransmits; sessions would have reset anyway).
  size_t max_peer_queue = 4096;
};

class LiveTransport : public node::HostTransport {
 public:
  // deliver(from, bytes): inject an inbound payload into the enclave
  // inbox; false = ring full, park and retry.
  // on_disconnect(peer): a labelled connection went away; false = ring
  // full, retried until accepted.
  using DeliverFn = std::function<bool(const std::string&, ByteSpan)>;
  using DisconnectFn = std::function<bool(const std::string&)>;

  LiveTransport(TransportConfig cfg, DeliverFn deliver,
                DisconnectFn on_disconnect);
  ~LiveTransport() override;

  LiveTransport(const LiveTransport&) = delete;
  LiveTransport& operator=(const LiveTransport&) = delete;

  // Binds both listeners and starts the IO thread.
  Status Start();
  // Stops and joins the IO thread, closing every socket. After Stop
  // returns, deliver/on_disconnect are never called again.
  void Stop();

  uint16_t rpc_port() const { return rpc_listener_.port(); }
  uint16_t node_port() const { return node_listener_.port(); }

  // Thread-safe; callable while running (a joiner learns peer addresses
  // after it starts, an operator adds nodes).
  void AddPeer(const std::string& id, const std::string& addr);

  // node::HostTransport (called from the enclave tick thread).
  void NetSend(const std::string& to, Bytes payload) override;
  void CloseSession(const std::string& peer) override;

  // Diagnostics (tests): connections currently parked on a full ring, and
  // total frames that had to wait at least one retry.
  uint64_t parked_frames_total() const { return parked_total_; }
  size_t live_connections() const { return live_conns_; }

 private:
  struct Conn {
    int fd = -1;
    std::string label;        // "" until known (node links await hello)
    bool node_link = false;   // peer link vs client session
    bool dialed = false;      // we initiated the connect
    bool connecting = false;  // non-blocking connect in flight
    bool hello_done = false;  // node links: id exchange complete
    Bytes inbuf;
    std::deque<Bytes> outq;   // framed wire bytes
    size_t out_off = 0;       // partial write offset into outq.front()
    std::deque<Bytes> parked; // decoded frames awaiting ring space
    bool closing = false;     // close once outq drains
    bool dead = false;        // scheduled for teardown this iteration
  };

  struct PeerState {
    std::string addr;           // "" for accepted-only peers
    int fd = -1;                // live link, -1 when down
    std::deque<Bytes> queued;   // payloads awaiting a link
    uint64_t next_dial_ms = 0;
    uint64_t backoff_ms = 0;
  };

  struct Command {
    enum Kind { kSend, kClose, kAddPeer } kind;
    std::string to;
    Bytes payload;
  };

  void IoLoop();
  void ProcessCommands();
  void RouteSend(const std::string& to, Bytes payload);
  void AcceptAll(TcpListener* listener, bool node_link);
  Conn* AddConn(int fd, bool node_link, bool dialed);
  void HandleReadable(Conn* c);
  void HandleWritable(Conn* c);
  void HandleFrame(Conn* c, Bytes frame);
  // Attempts enclave delivery; on a full ring parks the frame (and pauses
  // reads). Returns false when the frame was parked.
  bool DeliverOrPark(Conn* c, Bytes frame);
  void RetryParked();
  void SendHello(Conn* c);
  void EnqueueFrame(Conn* c, ByteSpan payload);
  void UpdateInterest(Conn* c);
  void MarkDead(Conn* c);
  void ReapDead();
  void DialDuePeers(uint64_t now_ms);
  void ScheduleRedial(PeerState* p, uint64_t now_ms);
  int WaitTimeoutMs() const;

  TransportConfig cfg_;
  DeliverFn deliver_;
  DisconnectFn on_disconnect_;

  Epoll epoll_;
  Waker waker_;
  TcpListener rpc_listener_;
  TcpListener node_listener_;

  std::map<int, std::unique_ptr<Conn>> conns_;     // by fd (IO thread only)
  std::map<std::string, int> label_to_fd_;         // live labelled conns
  std::map<std::string, PeerState> peers_;         // node links
  std::vector<int> dead_fds_;
  // Labels whose session-closed notice bounced off a full ring.
  std::deque<std::string> pending_disconnects_;
  uint64_t next_client_label_ = 1;
  size_t parked_conns_ = 0;

  std::mutex mu_;               // guards cmds_ (cross-thread entry point)
  std::vector<Command> cmds_;
  std::thread io_thread_;
  std::atomic<bool> stop_{false};
  std::atomic<bool> started_{false};
  std::atomic<uint64_t> parked_total_{0};
  std::atomic<size_t> live_conns_{0};
};

}  // namespace ccf::host

#endif  // CCF_HOST_TRANSPORT_H_
