// LiveNodeHost: one live CCF node = enclave Node + host threads.
//
// Wires the pieces of DESIGN.md §13 together:
//   - the Node is built with no simulator environment (env == nullptr) and
//     given a LiveTransport as its HostTransport — the same enclave code
//     path runs under both drivers;
//   - the transport's IO thread feeds inbound frames into the enclave ring
//     via Node::HostReceive and nudges the ticker so traffic is consumed
//     promptly;
//   - a ticker thread is the single ring consumer, calling Node::Tick with
//     wall-clock milliseconds.
//
// Shutdown order (relied on by destructors): ticker first (no more enclave
// entry), transport second (no more ring producers), node last.

#ifndef CCF_HOST_LIVE_NODE_H_
#define CCF_HOST_LIVE_NODE_H_

#include <memory>
#include <string>
#include <utility>

#include "common/status.h"
#include "host/ticker.h"
#include "host/transport.h"
#include "node/node.h"

namespace ccf::host {

struct LiveNodeConfig {
  node::NodeConfig node;
  TransportConfig transport;  // node_id is overwritten from node.node_id
  uint64_t tick_interval_ms = 1;
};

class LiveNodeHost {
 public:
  // First node of a new service: creates the service identity at genesis.
  static Result<std::unique_ptr<LiveNodeHost>> StartGenesis(
      LiveNodeConfig cfg, const node::ServiceInit& init,
      node::Application* app);
  // Joining node: attests to `target_node` (which must be reachable via
  // cfg.transport.peers) against the expected service identity.
  static Result<std::unique_ptr<LiveNodeHost>> StartJoiner(
      LiveNodeConfig cfg, crypto::PublicKeyBytes service_identity,
      const std::string& target_node, node::Application* app);

  ~LiveNodeHost() { Stop(); }
  LiveNodeHost(const LiveNodeHost&) = delete;
  LiveNodeHost& operator=(const LiveNodeHost&) = delete;

  // Idempotent. Ticker, then transport, then (on destruction) the node.
  void Stop();

  uint16_t rpc_port() const { return transport_->rpc_port(); }
  uint16_t node_port() const { return transport_->node_port(); }
  const std::string& node_id() const { return cfg_.node.node_id; }
  LiveTransport& transport() { return *transport_; }

  void AddPeer(const std::string& id, const std::string& addr) {
    transport_->AddPeer(id, addr);
  }

  // Runs `f(Node*)` mutually excluded with the tick thread — the only safe
  // way to inspect enclave state while the node is live.
  template <typename F>
  auto WithNode(F&& f) {
    return ticker_->Exclusive(
        [&] { return std::forward<F>(f)(node_.get()); });
  }

 private:
  explicit LiveNodeHost(LiveNodeConfig cfg) : cfg_(std::move(cfg)) {}
  Status Launch(std::unique_ptr<node::Node> node);

  LiveNodeConfig cfg_;
  std::unique_ptr<node::Node> node_;
  std::unique_ptr<Ticker> ticker_;
  std::unique_ptr<LiveTransport> transport_;
  bool running_ = false;
};

}  // namespace ccf::host

#endif  // CCF_HOST_LIVE_NODE_H_
