// Low-level TCP plumbing for the live host (DESIGN.md §13): non-blocking
// sockets, a loopback-friendly listener, an epoll wrapper, an eventfd
// waker, and the length-prefixed frame codec.
//
// Framing: every TCP message is a little-endian u32 length followed by the
// frame body. A frame body is exactly the byte string one
// sim::Environment::Send call would carry, so the enclave sees identical
// payloads under both drivers.

#ifndef CCF_HOST_TCP_H_
#define CCF_HOST_TCP_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf::host {

// Upper bound on one frame body; larger frames mean a corrupt or hostile
// stream and close the connection.
constexpr size_t kMaxFrameSize = 64u << 20;

// Appends `payload` to `out` as one frame (length prefix + body).
void AppendFrame(Bytes* out, ByteSpan payload);

// Moves every complete frame at the front of `buf` into `frames`, erasing
// the consumed bytes. Returns false on a malformed (oversized) frame;
// `buf` is then poisoned and the connection should be closed.
bool ExtractFrames(Bytes* buf, std::vector<Bytes>* frames);

Status SetNonBlocking(int fd);
// Disables Nagle: the host writes whole frames and latency benchmarks
// (bench_net p50/p99) must not absorb delayed-ACK artefacts.
void SetNoDelay(int fd);

// Begins a non-blocking connect to host:port. Returns the fd; the connect
// may still be in progress (wait for writability, then check SoError).
Result<int> DialNonBlocking(const std::string& host, uint16_t port);
// Pending error on a socket (0 = none); resolves an in-flight connect.
int SoError(int fd);

// Listening TCP socket. Binding port 0 picks an ephemeral port, readable
// back through port() — tests and in-process clusters rely on this.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  Status Listen(const std::string& host, uint16_t port);
  // Accepts one pending connection (non-blocking, CLOEXEC); -1 when none.
  int Accept();
  void Close();

  int fd() const { return fd_; }
  uint16_t port() const { return port_; }

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

// Thin epoll wrapper. Callers tag registrations with an opaque u64 (the fd
// works fine) and get the tag back from Wait.
class Epoll {
 public:
  Epoll();
  ~Epoll();
  Epoll(const Epoll&) = delete;
  Epoll& operator=(const Epoll&) = delete;

  struct Event {
    uint64_t tag = 0;
    uint32_t events = 0;  // EPOLLIN / EPOLLOUT / EPOLLERR / EPOLLHUP bits
  };

  Status Add(int fd, uint32_t events, uint64_t tag);
  Status Mod(int fd, uint32_t events, uint64_t tag);
  void Del(int fd);
  // Blocks up to timeout_ms (-1 = forever); fills `out`.
  int Wait(std::vector<Event>* out, int timeout_ms);

 private:
  int fd_ = -1;
};

// Cross-thread wakeup for an epoll loop (eventfd). Wake() is async-safe
// and callable from any thread; Drain() consumes pending wakes.
class Waker {
 public:
  Waker();
  ~Waker();
  Waker(const Waker&) = delete;
  Waker& operator=(const Waker&) = delete;

  int fd() const { return fd_; }
  void Wake();
  void Drain();

 private:
  int fd_ = -1;
};

}  // namespace ccf::host

#endif  // CCF_HOST_TCP_H_
