#include "host/transport.h"

#include <sys/epoll.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "common/logging.h"
#include "host/ticker.h"

namespace ccf::host {

namespace {

// Node links introduce themselves with one hello frame: magic + node id.
constexpr uint8_t kHelloMagic[4] = {'C', 'C', 'F', 'H'};

Bytes MakeHello(const std::string& node_id) {
  Bytes body(kHelloMagic, kHelloMagic + 4);
  Append(&body, ToBytes(node_id));
  return body;
}

bool ParseHello(ByteSpan frame, std::string* id) {
  if (frame.size() < 4 || std::memcmp(frame.data(), kHelloMagic, 4) != 0) {
    return false;
  }
  id->assign(frame.begin() + 4, frame.end());
  return !id->empty();
}

}  // namespace

LiveTransport::LiveTransport(TransportConfig cfg, DeliverFn deliver,
                             DisconnectFn on_disconnect)
    : cfg_(std::move(cfg)),
      deliver_(std::move(deliver)),
      on_disconnect_(std::move(on_disconnect)) {
  for (const auto& [id, addr] : cfg_.peers) {
    PeerState p;
    p.addr = addr;
    peers_.emplace(id, std::move(p));
  }
}

LiveTransport::~LiveTransport() { Stop(); }

Status LiveTransport::Start() {
  RETURN_IF_ERROR(rpc_listener_.Listen(cfg_.bind_host, cfg_.rpc_port));
  RETURN_IF_ERROR(node_listener_.Listen(cfg_.bind_host, cfg_.node_port));
  RETURN_IF_ERROR(epoll_.Add(rpc_listener_.fd(), EPOLLIN,
                             static_cast<uint64_t>(rpc_listener_.fd())));
  RETURN_IF_ERROR(epoll_.Add(node_listener_.fd(), EPOLLIN,
                             static_cast<uint64_t>(node_listener_.fd())));
  RETURN_IF_ERROR(
      epoll_.Add(waker_.fd(), EPOLLIN, static_cast<uint64_t>(waker_.fd())));
  stop_.store(false, std::memory_order_release);
  started_.store(true, std::memory_order_release);
  io_thread_ = std::thread([this] { IoLoop(); });
  return Status::Ok();
}

void LiveTransport::Stop() {
  if (!started_.exchange(false)) return;
  stop_.store(true, std::memory_order_release);
  waker_.Wake();
  if (io_thread_.joinable()) io_thread_.join();
  rpc_listener_.Close();
  node_listener_.Close();
}

void LiveTransport::AddPeer(const std::string& id, const std::string& addr) {
  std::lock_guard<std::mutex> lk(mu_);
  cmds_.push_back(Command{Command::kAddPeer, id, ToBytes(addr)});
  waker_.Wake();
}

void LiveTransport::NetSend(const std::string& to, Bytes payload) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cmds_.push_back(Command{Command::kSend, to, std::move(payload)});
  }
  waker_.Wake();
}

void LiveTransport::CloseSession(const std::string& peer) {
  {
    std::lock_guard<std::mutex> lk(mu_);
    cmds_.push_back(Command{Command::kClose, peer, {}});
  }
  waker_.Wake();
}

// ------------------------------------------------------------- IO thread

void LiveTransport::IoLoop() {
  std::vector<Epoll::Event> events;
  while (!stop_.load(std::memory_order_acquire)) {
    DialDuePeers(SteadyNowMs());
    epoll_.Wait(&events, WaitTimeoutMs());
    for (const Epoll::Event& ev : events) {
      int fd = static_cast<int>(ev.tag);
      if (fd == waker_.fd()) {
        waker_.Drain();
        continue;
      }
      if (fd == rpc_listener_.fd()) {
        AcceptAll(&rpc_listener_, /*node_link=*/false);
        continue;
      }
      if (fd == node_listener_.fd()) {
        AcceptAll(&node_listener_, /*node_link=*/true);
        continue;
      }
      auto it = conns_.find(fd);
      if (it == conns_.end()) continue;
      Conn* c = it->second.get();
      if (c->dead) continue;
      if (c->connecting && (ev.events & (EPOLLOUT | EPOLLERR | EPOLLHUP))) {
        int err = SoError(fd);
        if (err != 0) {
          MarkDead(c);
          continue;
        }
        c->connecting = false;
        SendHello(c);
        UpdateInterest(c);
      }
      if (ev.events & EPOLLIN) HandleReadable(c);
      if (!c->dead && (ev.events & EPOLLOUT) && !c->connecting) {
        HandleWritable(c);
      }
      if (!c->dead && (ev.events & EPOLLERR)) MarkDead(c);
      if (!c->dead && (ev.events & EPOLLHUP) && !(ev.events & EPOLLIN)) {
        MarkDead(c);
      }
    }
    ProcessCommands();
    RetryParked();
    // Session-closed notices that bounced off a full ring, oldest first.
    while (!pending_disconnects_.empty() &&
           on_disconnect_(pending_disconnects_.front())) {
      pending_disconnects_.pop_front();
    }
    ReapDead();
  }
  for (auto& [fd, c] : conns_) {
    epoll_.Del(fd);
    close(fd);
  }
  conns_.clear();
  label_to_fd_.clear();
  live_conns_.store(0, std::memory_order_relaxed);
}

int LiveTransport::WaitTimeoutMs() const {
  if (parked_conns_ > 0 || !pending_disconnects_.empty()) return 1;
  uint64_t now = SteadyNowMs();
  int timeout = 50;
  for (const auto& [id, p] : peers_) {
    if (p.fd >= 0 || p.addr.empty()) continue;
    uint64_t due = p.next_dial_ms > now ? p.next_dial_ms - now : 0;
    timeout = std::min<int>(timeout, static_cast<int>(due));
  }
  return std::max(timeout, 1);
}

void LiveTransport::ProcessCommands() {
  std::vector<Command> cmds;
  {
    std::lock_guard<std::mutex> lk(mu_);
    cmds.swap(cmds_);
  }
  for (Command& cmd : cmds) {
    switch (cmd.kind) {
      case Command::kSend:
        RouteSend(cmd.to, std::move(cmd.payload));
        break;
      case Command::kClose: {
        auto it = label_to_fd_.find(cmd.to);
        if (it == label_to_fd_.end()) break;
        auto cit = conns_.find(it->second);
        if (cit == conns_.end() || cit->second->dead) break;
        Conn* c = cit->second.get();
        c->closing = true;
        if (c->outq.empty()) {
          MarkDead(c);
        } else {
          UpdateInterest(c);
        }
        break;
      }
      case Command::kAddPeer: {
        PeerState& p = peers_[cmd.to];
        p.addr = ToString(cmd.payload);
        p.next_dial_ms = 0;
        p.backoff_ms = 0;
        break;
      }
    }
  }
}

void LiveTransport::RouteSend(const std::string& to, Bytes payload) {
  auto pit = peers_.find(to);
  if (pit != peers_.end()) {
    PeerState& p = pit->second;
    if (p.fd >= 0) {
      auto cit = conns_.find(p.fd);
      if (cit != conns_.end() && !cit->second->dead &&
          cit->second->hello_done) {
        EnqueueFrame(cit->second.get(), payload);
        return;
      }
    }
    // Link down or not yet verified: queue (bounded) for the reconnect.
    if (p.queued.size() >= cfg_.max_peer_queue) p.queued.pop_front();
    p.queued.push_back(std::move(payload));
    return;
  }
  auto it = label_to_fd_.find(to);
  if (it == label_to_fd_.end()) {
    LOG_DEBUG << cfg_.node_id << " host: no route to " << to << ", dropping";
    return;
  }
  auto cit = conns_.find(it->second);
  if (cit == conns_.end() || cit->second->dead) return;
  EnqueueFrame(cit->second.get(), payload);
}

void LiveTransport::AcceptAll(TcpListener* listener, bool node_link) {
  for (;;) {
    int fd = listener->Accept();
    if (fd < 0) return;
    Conn* c = AddConn(fd, node_link, /*dialed=*/false);
    if (c == nullptr) continue;
    if (node_link) {
      // Acceptor announces itself immediately; the remote's hello must be
      // its first frame.
      SendHello(c);
    } else {
      c->label = "tcp:" + std::to_string(next_client_label_++);
      label_to_fd_[c->label] = fd;
    }
    UpdateInterest(c);
  }
}

LiveTransport::Conn* LiveTransport::AddConn(int fd, bool node_link,
                                            bool dialed) {
  auto c = std::make_unique<Conn>();
  c->fd = fd;
  c->node_link = node_link;
  c->dialed = dialed;
  c->connecting = dialed;
  Conn* raw = c.get();
  if (!epoll_.Add(fd, EPOLLIN | (dialed ? EPOLLOUT : 0u),
                  static_cast<uint64_t>(fd))
           .ok()) {
    close(fd);
    return nullptr;
  }
  conns_.emplace(fd, std::move(c));
  live_conns_.store(conns_.size(), std::memory_order_relaxed);
  return raw;
}

void LiveTransport::HandleReadable(Conn* c) {
  uint8_t buf[64 * 1024];
  for (;;) {
    ssize_t n = read(c->fd, buf, sizeof(buf));
    if (n > 0) {
      c->inbuf.insert(c->inbuf.end(), buf, buf + n);
      continue;
    }
    if (n < 0 && (errno == EAGAIN || errno == EWOULDBLOCK)) break;
    if (n < 0 && errno == EINTR) continue;
    MarkDead(c);  // EOF or hard error
    return;
  }
  std::vector<Bytes> frames;
  if (!ExtractFrames(&c->inbuf, &frames)) {
    LOG_WARN << cfg_.node_id << " host: oversized frame from "
             << (c->label.empty() ? "<unlabelled>" : c->label)
             << ", closing connection";
    MarkDead(c);
    return;
  }
  for (Bytes& f : frames) {
    if (c->dead) return;
    HandleFrame(c, std::move(f));
  }
}

void LiveTransport::HandleFrame(Conn* c, Bytes frame) {
  if (c->node_link && !c->hello_done) {
    std::string id;
    if (!ParseHello(frame, &id)) {
      MarkDead(c);
      return;
    }
    if (c->dialed && id != c->label) {
      LOG_WARN << cfg_.node_id << " host: dialled " << c->label
               << " but peer announced " << id << ", closing";
      MarkDead(c);
      return;
    }
    c->label = id;
    c->hello_done = true;
    label_to_fd_[id] = c->fd;
    auto pit = peers_.find(id);
    if (pit != peers_.end()) {
      PeerState& p = pit->second;
      if (p.fd < 0 || p.fd == c->fd || conns_.find(p.fd) == conns_.end()) {
        p.fd = c->fd;
      }
      p.backoff_ms = 0;
      // The verified link drains anything queued while it was down.
      if (p.fd == c->fd) {
        while (!p.queued.empty()) {
          EnqueueFrame(c, p.queued.front());
          p.queued.pop_front();
        }
      }
    }
    return;
  }
  if (!c->parked.empty()) {
    // Order within a connection is sacred: behind a parked frame,
    // everything parks.
    c->parked.push_back(std::move(frame));
    parked_total_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  DeliverOrPark(c, std::move(frame));
}

bool LiveTransport::DeliverOrPark(Conn* c, Bytes frame) {
  if (deliver_(c->label, frame)) return true;
  // Ring full: park the connection — stop reading, keep the frame, retry
  // until the enclave drains (tee.ring_full counts these on the boundary).
  bool first = c->parked.empty();
  c->parked.push_back(std::move(frame));
  parked_total_.fetch_add(1, std::memory_order_relaxed);
  if (first) {
    ++parked_conns_;
    UpdateInterest(c);
  }
  return false;
}

void LiveTransport::RetryParked() {
  if (parked_conns_ == 0) return;
  for (auto& [fd, c] : conns_) {
    if (c->dead || c->parked.empty()) continue;
    while (!c->parked.empty() && deliver_(c->label, c->parked.front())) {
      c->parked.pop_front();
    }
    if (c->parked.empty()) {
      --parked_conns_;
      UpdateInterest(c.get());
    }
  }
}

void LiveTransport::SendHello(Conn* c) { EnqueueFrame(c, MakeHello(cfg_.node_id)); }

void LiveTransport::EnqueueFrame(Conn* c, ByteSpan payload) {
  if (c->dead || c->closing) return;
  Bytes framed;
  framed.reserve(payload.size() + 4);
  AppendFrame(&framed, payload);
  c->outq.push_back(std::move(framed));
  UpdateInterest(c);
  // Try to write immediately: common case, saves one epoll round trip.
  if (!c->connecting) HandleWritable(c);
}

void LiveTransport::HandleWritable(Conn* c) {
  while (!c->outq.empty()) {
    const Bytes& front = c->outq.front();
    ssize_t n =
        write(c->fd, front.data() + c->out_off, front.size() - c->out_off);
    if (n < 0) {
      if (errno == EAGAIN || errno == EWOULDBLOCK) return;
      if (errno == EINTR) continue;
      MarkDead(c);
      return;
    }
    c->out_off += static_cast<size_t>(n);
    if (c->out_off < front.size()) return;  // kernel buffer full
    c->out_off = 0;
    c->outq.pop_front();
  }
  if (c->closing) {
    MarkDead(c);
    return;
  }
  UpdateInterest(c);
}

void LiveTransport::UpdateInterest(Conn* c) {
  if (c->dead) return;
  uint32_t events = 0;
  if (c->parked.empty() && !c->closing) events |= EPOLLIN;
  if (!c->outq.empty() || c->connecting) events |= EPOLLOUT;
  epoll_.Mod(c->fd, events, static_cast<uint64_t>(c->fd));
}

void LiveTransport::MarkDead(Conn* c) {
  if (c->dead) return;
  c->dead = true;
  if (!c->parked.empty()) --parked_conns_;
  dead_fds_.push_back(c->fd);
}

void LiveTransport::ReapDead() {
  if (dead_fds_.empty()) return;
  uint64_t now = SteadyNowMs();
  for (int fd : dead_fds_) {
    auto it = conns_.find(fd);
    if (it == conns_.end()) continue;
    Conn* c = it->second.get();
    if (!c->label.empty()) {
      auto lit = label_to_fd_.find(c->label);
      if (lit != label_to_fd_.end() && lit->second == fd) {
        label_to_fd_.erase(lit);
      }
      if (c->node_link) {
        auto pit = peers_.find(c->label);
        if (pit != peers_.end() && pit->second.fd == fd) {
          pit->second.fd = -1;
          if (!pit->second.addr.empty()) ScheduleRedial(&pit->second, now);
        }
      } else {
        // The enclave holds session state for this label; tell it the
        // connection is gone (retried if the ring is momentarily full).
        pending_disconnects_.push_back(c->label);
      }
    }
    epoll_.Del(fd);
    close(fd);
    conns_.erase(it);
  }
  dead_fds_.clear();
  live_conns_.store(conns_.size(), std::memory_order_relaxed);
}

void LiveTransport::ScheduleRedial(PeerState* p, uint64_t now_ms) {
  p->backoff_ms = p->backoff_ms == 0
                      ? cfg_.backoff_min_ms
                      : std::min(p->backoff_ms * 2, cfg_.backoff_max_ms);
  p->next_dial_ms = now_ms + p->backoff_ms;
}

void LiveTransport::DialDuePeers(uint64_t now_ms) {
  for (auto& [id, p] : peers_) {
    if (p.fd >= 0 || p.addr.empty() || p.next_dial_ms > now_ms) continue;
    size_t colon = p.addr.rfind(':');
    if (colon == std::string::npos) {
      LOG_WARN << cfg_.node_id << " host: bad peer address " << p.addr;
      p.addr.clear();
      continue;
    }
    std::string host = p.addr.substr(0, colon);
    uint16_t port =
        static_cast<uint16_t>(std::strtoul(p.addr.c_str() + colon + 1,
                                           nullptr, 10));
    auto fd = DialNonBlocking(host, port);
    if (!fd.ok()) {
      ScheduleRedial(&p, now_ms);
      continue;
    }
    Conn* c = AddConn(*fd, /*node_link=*/true, /*dialed=*/true);
    if (c == nullptr) {
      ScheduleRedial(&p, now_ms);
      continue;
    }
    c->label = id;  // expected identity, verified against the peer's hello
    p.fd = *fd;
  }
}

}  // namespace ccf::host
