// Wall-clock ticker thread (DESIGN.md §13): the live-mode counterpart of
// the simulator's virtual-time tick. One thread calls the supplied
// callback with monotonic milliseconds at a fixed cadence; that thread is
// the node's single enclave/ring-consumer thread, so everything
// Node::Tick touches stays single-threaded exactly as under the
// simulator.
//
// Exclusive() runs a closure with the tick loop held off — how tests and
// the host binary inspect node state without racing the tick thread.

#ifndef CCF_HOST_TICKER_H_
#define CCF_HOST_TICKER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <utility>

namespace ccf::host {

// Monotonic milliseconds since an arbitrary process-local epoch. Shared by
// the ticker and the transport's backoff timers so they agree on "now".
inline uint64_t SteadyNowMs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::milliseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

class Ticker {
 public:
  Ticker(uint64_t interval_ms, std::function<void(uint64_t now_ms)> fn)
      : interval_ms_(interval_ms == 0 ? 1 : interval_ms), fn_(std::move(fn)) {}

  ~Ticker() { Stop(); }
  Ticker(const Ticker&) = delete;
  Ticker& operator=(const Ticker&) = delete;

  void Start() {
    if (thread_.joinable()) return;
    stop_ = false;
    thread_ = std::thread([this] { Loop(); });
  }

  // Idempotent; joins the tick thread. After Stop returns no further
  // callback invocations happen — the shutdown order in DESIGN.md §13
  // relies on this (ticker first, transport second).
  void Stop() {
    {
      std::lock_guard<std::mutex> lk(cv_mu_);
      stop_ = true;
    }
    cv_.notify_all();
    if (thread_.joinable()) thread_.join();
  }

  // Cuts the current sleep short (e.g. the IO thread delivered traffic and
  // wants the enclave to see it before the next full interval).
  void Nudge() {
    {
      std::lock_guard<std::mutex> lk(cv_mu_);
      nudged_ = true;
    }
    cv_.notify_all();
  }

  // Runs `f` mutually excluded with the tick callback.
  template <typename F>
  auto Exclusive(F&& f) {
    std::lock_guard<std::mutex> lk(tick_mu_);
    return std::forward<F>(f)();
  }

 private:
  void Loop() {
    for (;;) {
      {
        std::unique_lock<std::mutex> lk(cv_mu_);
        cv_.wait_for(lk, std::chrono::milliseconds(interval_ms_),
                     [this] { return stop_ || nudged_; });
        if (stop_) return;
        nudged_ = false;
      }
      std::lock_guard<std::mutex> lk(tick_mu_);
      fn_(SteadyNowMs());
    }
  }

  const uint64_t interval_ms_;
  std::function<void(uint64_t)> fn_;
  std::mutex cv_mu_;
  std::condition_variable cv_;
  bool stop_ = false;
  bool nudged_ = false;
  std::mutex tick_mu_;
  std::thread thread_;
};

}  // namespace ccf::host

#endif  // CCF_HOST_TICKER_H_
