// Endpoint framework (paper §3.1).
//
// "Each CCF endpoint declares how callers should be authenticated. Each
// invocation is first checked by CCF against these declared policies and
// the application logic is only called if the caller passes the checks."
//
// Handlers execute inside a KV transaction; CCF commits the transaction
// after the handler returns and attaches the transaction ID to the
// response (§3.1). Read-only endpoints can be served by any node without
// forwarding (§4.3).

#ifndef CCF_RPC_ENDPOINTS_H_
#define CCF_RPC_ENDPOINTS_H_

#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "crypto/cert.h"
#include "http/http.h"
#include "json/json.h"
#include "kv/store.h"
#include "observe/metrics.h"

namespace ccf::rpc {

// Declarative caller-authentication policy (paper §3.1).
enum class AuthPolicy {
  kNoAuth,       // anyone, including anonymous sessions
  kUserCert,     // session cert must be a registered user
  kMemberCert,   // session cert must be a registered consortium member
  kAnyCert,      // any registered user or member
};

struct CallerIdentity {
  // Fingerprint of the session certificate ("" when anonymous).
  std::string id;
  std::optional<crypto::Certificate> cert;
  bool is_user = false;
  bool is_member = false;
};

class EndpointContext {
 public:
  EndpointContext(kv::Tx* tx, const http::Request* request,
                  CallerIdentity caller)
      : tx_(tx), request_(request), caller_(std::move(caller)) {}

  kv::Tx& tx() { return *tx_; }
  const http::Request& request() const { return *request_; }
  const CallerIdentity& caller() const { return caller_; }

  // Parses the request body as JSON (cached).
  Result<json::Value> Params() const;

  // Query-string parameter `name` (percent-decoded), falling back to the
  // legacy "x-query-<name>" header so old clients keep working.
  std::string Param(const std::string& name) const;
  // Same, parsed as a decimal u64 (0 when absent or malformed).
  uint64_t ParamU64(const std::string& name) const;

  http::Response& response() { return response_; }
  void SetJsonResponse(int status, const json::Value& body);
  // Emits the standard error envelope {"error": {"code", "message"}} with
  // the code derived from the status (DefaultErrorCode below).
  void SetError(int status, const std::string& message);
  // Same, with an explicit machine-readable code.
  void SetError(int status, const std::string& code,
                const std::string& message);

  // Attaches application claims, covered by the receipt (paper §3.5).
  void SetClaims(ByteSpan claims) { tx_->SetClaims({claims.begin(), claims.end()}); }

 private:
  kv::Tx* tx_;
  const http::Request* request_;
  CallerIdentity caller_;
  http::Response response_;
};

using EndpointHandler = std::function<void(EndpointContext*)>;

struct EndpointSpec {
  EndpointHandler handler;
  AuthPolicy auth = AuthPolicy::kNoAuth;
  // Read-only endpoints execute locally on any node; others are forwarded
  // to the primary (paper §4.3).
  bool read_only = false;
  // Eligible for batched optimistic execution (DESIGN.md §12): the handler
  // touches only its EndpointContext (tx, request, response) and shared
  // *committed* state reachable through const reads, so concurrent
  // invocations against one immutable store snapshot are safe. Handlers
  // that mutate node-level caches or registries (e.g. historical range
  // requests) must leave this unset and run serially.
  bool exec_parallel = false;
  // One-line human summary, surfaced in the generated OpenAPI document.
  std::string summary;
  // Optional JSON schemas (json/schema.h subset). When request_schema is
  // set, the node validates the parsed request body against it and rejects
  // violations with a structured 400 *before* a KV transaction is opened.
  // response_schema is documentation-only (embedded in OpenAPI); responses
  // are not validated on the hot path. Shared pointers because specs are
  // copied into per-request resolution state and schemas can be large.
  std::shared_ptr<const json::Value> request_schema;
  std::shared_ptr<const json::Value> response_schema;
};

class EndpointRegistry {
 public:
  void Install(const std::string& method, const std::string& path,
               EndpointSpec spec);
  const EndpointSpec* Find(const std::string& method,
                           const std::string& path) const;

  // Lists installed "METHOD path" keys (for the built-in /node/api listing).
  std::vector<std::string> List() const;

  // Methods installed for `path`, sorted (std::map order). Empty when the
  // path is unknown -- lets dispatch distinguish 404 (no such path) from
  // 405 (path exists, method doesn't; the list becomes the Allow: header).
  std::vector<std::string> MethodsForPath(const std::string& path) const;

  // Visits every endpoint in deterministic (sorted-key) order; the OpenAPI
  // generator is built on this.
  void ForEach(const std::function<void(const std::string& method,
                                        const std::string& path,
                                        const EndpointSpec& spec)>& fn) const;

 private:
  std::map<std::string, EndpointSpec> endpoints_;  // "METHOD path"
};

// Machine-readable code for the standard error envelope, derived from the
// HTTP status: 400 InvalidInput, 401 Unauthorized, 403 Forbidden,
// 404 ResourceNotFound, 405 MethodNotAllowed, 409 Conflict,
// 500 InternalError, 503 ServiceUnavailable; otherwise "Error".
std::string DefaultErrorCode(int status);

// Builds the standard error body {"error": {"code", "message"}}.
json::Value ErrorBody(const std::string& code, const std::string& message);

// Builds a complete error http::Response carrying the standard envelope,
// for dispatch-layer rejections that happen outside an EndpointContext.
http::Response ErrorResponse(int status, const std::string& code,
                             const std::string& message);

// Validates `body` against spec.request_schema (no-op when unset).
// `body` carries the parse result of the raw request body: a parse
// failure yields 400/InvalidRequestBody, a schema violation
// 400/InvalidInput. Returns the ready-to-send 400 response on rejection.
std::optional<http::Response> CheckRequestSchema(
    const EndpointSpec& spec, const Result<json::Value>& body);

// Records one executed request into `reg`: a per-endpoint request counter
// ("rpc.requests.<METHOD path>"), a status-class counter ("rpc.status.2xx"
// etc.), and a per-endpoint latency histogram ("rpc.latency_us.<METHOD
// path>"). Latency is wall-clock and write-only -- it never feeds back
// into execution, so deterministic runs are unaffected by its variance.
void RecordEndpointMetrics(observe::Registry* reg, const std::string& method,
                           const std::string& path, int status,
                           uint64_t latency_us);

}  // namespace ccf::rpc

#endif  // CCF_RPC_ENDPOINTS_H_
