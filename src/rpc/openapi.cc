#include "rpc/openapi.h"

#include <algorithm>

namespace ccf::rpc {
namespace {

const char* AuthName(AuthPolicy auth) {
  switch (auth) {
    case AuthPolicy::kNoAuth: return "no_auth";
    case AuthPolicy::kUserCert: return "user_cert";
    case AuthPolicy::kMemberCert: return "member_cert";
    case AuthPolicy::kAnyCert: return "any_cert";
  }
  return "unknown";
}

json::Value JsonContent(const json::Value& schema) {
  json::Object media;
  media["schema"] = schema;
  json::Object content;
  content["application/json"] = json::Value(std::move(media));
  return json::Value(std::move(content));
}

json::Value ErrorEnvelopeSchema() {
  json::Object detail_props;
  detail_props["code"] = json::Object{{"type", json::Value("string")}};
  detail_props["message"] = json::Object{{"type", json::Value("string")}};
  json::Object detail;
  detail["type"] = "object";
  detail["properties"] = json::Value(std::move(detail_props));
  detail["required"] =
      json::Array{json::Value("code"), json::Value("message")};

  json::Object props;
  props["error"] = json::Value(std::move(detail));
  json::Object schema;
  schema["type"] = "object";
  schema["properties"] = json::Value(std::move(props));
  schema["required"] = json::Array{json::Value("error")};
  return json::Value(std::move(schema));
}

}  // namespace

json::Value BuildOpenApi(const EndpointRegistry& registry,
                         const OpenApiInfo& info,
                         const std::string& path_prefix) {
  json::Object paths;
  registry.ForEach([&](const std::string& method, const std::string& path,
                       const EndpointSpec& spec) {
    if (path.compare(0, path_prefix.size(), path_prefix) != 0) return;

    json::Object op;
    if (!spec.summary.empty()) op["summary"] = spec.summary;
    op["x-ccf-auth"] = AuthName(spec.auth);
    op["x-ccf-read-only"] = spec.read_only;

    if (spec.request_schema != nullptr) {
      json::Object body;
      body["required"] = true;
      body["content"] = JsonContent(*spec.request_schema);
      op["requestBody"] = json::Value(std::move(body));
    }

    json::Object responses;
    json::Object ok;
    ok["description"] = "Success";
    if (spec.response_schema != nullptr) {
      ok["content"] = JsonContent(*spec.response_schema);
    }
    responses["200"] = json::Value(std::move(ok));
    json::Object err;
    err["description"] = "Error";
    json::Object ref;
    ref["$ref"] = "#/components/schemas/Error";
    err["content"] = JsonContent(json::Value(std::move(ref)));
    responses["default"] = json::Value(std::move(err));
    op["responses"] = json::Value(std::move(responses));

    std::string method_lower = method;
    std::transform(method_lower.begin(), method_lower.end(),
                   method_lower.begin(),
                   [](unsigned char c) { return std::tolower(c); });
    // paths[path] may already exist when several methods share a path.
    json::Value& item = paths[path];
    if (!item.is_object()) item = json::Object{};
    item[method_lower] = json::Value(std::move(op));
  });

  json::Object info_obj;
  info_obj["title"] = info.title;
  if (!info.description.empty()) info_obj["description"] = info.description;
  info_obj["version"] = info.version;

  json::Object schemas;
  schemas["Error"] = ErrorEnvelopeSchema();
  json::Object components;
  components["schemas"] = json::Value(std::move(schemas));

  json::Object doc;
  doc["openapi"] = "3.0.3";
  doc["info"] = json::Value(std::move(info_obj));
  doc["paths"] = json::Value(std::move(paths));
  doc["components"] = json::Value(std::move(components));
  return json::Value(std::move(doc));
}

}  // namespace ccf::rpc
