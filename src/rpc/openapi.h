// OpenAPI 3.0 document generation from an EndpointRegistry.
//
// The node serves the generated document at GET /app/api (DESIGN.md §14)
// so clients can discover every installed application endpoint together
// with its request/response schemas and CCF-specific execution metadata
// (x-ccf-auth, x-ccf-read-only). Output is deterministic: the registry
// iterates in sorted key order and json::Object is std::map-backed, so two
// generations over the same registry are byte-identical -- tests pin this.

#ifndef CCF_RPC_OPENAPI_H_
#define CCF_RPC_OPENAPI_H_

#include <string>

#include "json/json.h"
#include "rpc/endpoints.h"

namespace ccf::rpc {

struct OpenApiInfo {
  std::string title;
  std::string description;
  std::string version = "0.0.1";
};

// Builds an OpenAPI 3.0.3 document covering every registry endpoint whose
// path starts with `path_prefix` (default: application endpoints only --
// framework /node/* endpoints have their own listing). Request/response
// schemas from the EndpointSpec are embedded verbatim; every operation
// gets a `default` error response referencing the shared error envelope
// under #/components/schemas/Error. Scripted (CCL) endpoints live in the
// KV store, not the registry, and are outside this document.
json::Value BuildOpenApi(const EndpointRegistry& registry,
                         const OpenApiInfo& info,
                         const std::string& path_prefix = "/app/");

}  // namespace ccf::rpc

#endif  // CCF_RPC_OPENAPI_H_
