#include "rpc/session.h"

#include "common/buffer.h"
#include "crypto/hmac.h"

namespace ccf::rpc {

namespace {

Bytes TranscriptDigestBytes(ByteSpan client_hello, ByteSpan server_eph) {
  BufWriter w;
  w.Str("ccf.stls.transcript.v1");
  w.Blob(client_hello);
  w.Blob(server_eph);
  auto d = crypto::Sha256::Hash(w.data());
  return Bytes(d.begin(), d.end());
}

Bytes ClientPossessionPayload(ByteSpan eph_pub) {
  BufWriter w;
  w.Str("ccf.stls.client-possession.v1");
  w.Raw(eph_pub);
  return w.Take();
}

}  // namespace

// ------------------------------------------------------------ Records

Bytes MakeRecord(RecordType type, ByteSpan payload) {
  Bytes out;
  out.push_back(static_cast<uint8_t>(type));
  Append(&out, payload);
  return out;
}

Result<std::pair<RecordType, Bytes>> ParseRecord(ByteSpan record) {
  if (record.empty()) {
    return Status::InvalidArgument("stls: empty record");
  }
  uint8_t t = record[0];
  if (t < 1 || t > 4) {
    return Status::InvalidArgument("stls: unknown record type");
  }
  return std::make_pair(static_cast<RecordType>(t),
                        Bytes(record.begin() + 1, record.end()));
}

// ------------------------------------------------------- SessionCrypto

void SessionCrypto::DeriveKeys(ByteSpan shared_secret, bool is_client) {
  Bytes c2s = crypto::Hkdf(shared_secret, ToBytes("stls.salt"),
                           ToBytes("client-to-server"), 32);
  Bytes s2c = crypto::Hkdf(shared_secret, ToBytes("stls.salt"),
                           ToBytes("server-to-client"), 32);
  if (is_client) {
    send_ = std::make_unique<crypto::AesGcm>(c2s);
    recv_ = std::make_unique<crypto::AesGcm>(s2c);
  } else {
    send_ = std::make_unique<crypto::AesGcm>(s2c);
    recv_ = std::make_unique<crypto::AesGcm>(c2s);
  }
}

Bytes SessionCrypto::EncryptRecord(ByteSpan plaintext) {
  BufWriter iv;
  iv.U64(send_counter_++);
  iv.U32(0);
  uint8_t aad = static_cast<uint8_t>(RecordType::kData);
  return send_->Seal(iv.data(), plaintext, ByteSpan(&aad, 1));
}

Result<Bytes> SessionCrypto::DecryptRecord(ByteSpan record_payload) {
  BufWriter iv;
  iv.U64(recv_counter_++);
  iv.U32(0);
  uint8_t aad = static_cast<uint8_t>(RecordType::kData);
  return recv_->Open(iv.data(), record_payload, ByteSpan(&aad, 1));
}

// ------------------------------------------------------- ServerSession

ServerSession::ServerSession(const crypto::KeyPair* node_key,
                             crypto::Certificate node_cert,
                             crypto::Drbg* drbg)
    : node_key_(node_key), node_cert_(std::move(node_cert)), drbg_(drbg) {}

Result<SessionOutput> ServerSession::OnRecord(ByteSpan record) {
  ASSIGN_OR_RETURN(auto parsed, ParseRecord(record));
  auto [type, payload] = std::move(parsed);
  SessionOutput out;

  if (type == RecordType::kClientHello) {
    if (crypto_.established()) {
      return Status::FailedPrecondition("stls: duplicate hello");
    }
    BufReader r(payload);
    ASSIGN_OR_RETURN(Bytes client_eph, r.Raw(crypto::kPublicKeySize));
    ASSIGN_OR_RETURN(bool has_cert, r.Bool());
    if (has_cert) {
      ASSIGN_OR_RETURN(Bytes cert_bytes, r.Blob());
      ASSIGN_OR_RETURN(Bytes sig, r.Raw(crypto::kSignatureSize));
      ASSIGN_OR_RETURN(crypto::Certificate cert,
                       crypto::Certificate::Deserialize(cert_bytes));
      // Proof of possession: signature over the ephemeral key under the
      // certificate's key.
      if (!crypto::Verify(cert.public_key,
                          ClientPossessionPayload(client_eph), sig)) {
        return Status::Unauthenticated("stls: client possession proof failed");
      }
      peer_cert_ = std::move(cert);
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument("stls: trailing hello bytes");
    }

    crypto::KeyPair eph = crypto::KeyPair::Generate(drbg_);
    ASSIGN_OR_RETURN(Bytes shared, eph.DeriveSharedSecret(client_eph));
    crypto_.DeriveKeys(shared, /*is_client=*/false);

    // ServerHello: eph pub || node cert || signature over transcript.
    Bytes transcript = TranscriptDigestBytes(
        payload, ByteSpan(eph.public_key().data(), crypto::kPublicKeySize));
    crypto::SignatureBytes sig = node_key_->Sign(transcript);
    BufWriter w;
    w.Raw(ByteSpan(eph.public_key().data(), crypto::kPublicKeySize));
    w.Blob(node_cert_.Serialize());
    w.Raw(ByteSpan(sig.data(), sig.size()));
    out.to_send = MakeRecord(RecordType::kServerHello, w.data());
    out.established = true;
    return out;
  }

  if (type == RecordType::kData) {
    if (!crypto_.established()) {
      return Status::FailedPrecondition("stls: data before handshake");
    }
    ASSIGN_OR_RETURN(Bytes plain, crypto_.DecryptRecord(payload));
    out.app_data.push_back(std::move(plain));
    out.established = true;
    return out;
  }

  return Status::InvalidArgument("stls: unexpected record for server");
}

Result<Bytes> ServerSession::Seal(ByteSpan plaintext) {
  if (!crypto_.established()) {
    return Status::FailedPrecondition("stls: session not established");
  }
  return MakeRecord(RecordType::kData, crypto_.EncryptRecord(plaintext));
}

// ------------------------------------------------------- ClientSession

ClientSession::ClientSession(crypto::PublicKeyBytes service_identity,
                             const crypto::KeyPair* client_key,
                             std::optional<crypto::Certificate> client_cert,
                             crypto::Drbg* drbg)
    : service_identity_(service_identity),
      client_key_(client_key),
      client_cert_(std::move(client_cert)),
      drbg_(drbg) {}

Bytes ClientSession::Start() {
  ephemeral_ = std::make_unique<crypto::KeyPair>(
      crypto::KeyPair::Generate(drbg_));
  BufWriter w;
  w.Raw(ByteSpan(ephemeral_->public_key().data(), crypto::kPublicKeySize));
  bool has_cert = client_key_ != nullptr && client_cert_.has_value();
  w.Bool(has_cert);
  if (has_cert) {
    w.Blob(client_cert_->Serialize());
    crypto::SignatureBytes sig = client_key_->Sign(ClientPossessionPayload(
        ByteSpan(ephemeral_->public_key().data(), crypto::kPublicKeySize)));
    w.Raw(ByteSpan(sig.data(), sig.size()));
  }
  hello_payload_ = w.Take();
  return MakeRecord(RecordType::kClientHello, hello_payload_);
}

Result<SessionOutput> ClientSession::OnRecord(ByteSpan record) {
  ASSIGN_OR_RETURN(auto parsed, ParseRecord(record));
  auto [type, payload] = std::move(parsed);
  SessionOutput out;

  if (type == RecordType::kServerHello) {
    if (crypto_.established()) {
      return Status::FailedPrecondition("stls: duplicate server hello");
    }
    BufReader r(payload);
    ASSIGN_OR_RETURN(Bytes server_eph, r.Raw(crypto::kPublicKeySize));
    ASSIGN_OR_RETURN(Bytes cert_bytes, r.Blob());
    ASSIGN_OR_RETURN(Bytes sig, r.Raw(crypto::kSignatureSize));
    if (!r.AtEnd()) {
      return Status::InvalidArgument("stls: trailing server hello bytes");
    }
    ASSIGN_OR_RETURN(crypto::Certificate cert,
                     crypto::Certificate::Deserialize(cert_bytes));
    // The node certificate must chain to the pinned service identity
    // (paper §6.1: TLS terminates in the TEE with the service cert as root
    // of trust).
    if (cert.role != "node") {
      return Status::Unauthenticated("stls: server cert is not a node cert");
    }
    RETURN_IF_ERROR(crypto::VerifyCertificate(cert, service_identity_));
    Bytes transcript = TranscriptDigestBytes(hello_payload_, server_eph);
    if (!crypto::Verify(cert.public_key, transcript, sig)) {
      return Status::Unauthenticated("stls: bad server transcript signature");
    }
    server_cert_ = std::move(cert);

    ASSIGN_OR_RETURN(Bytes shared, ephemeral_->DeriveSharedSecret(server_eph));
    crypto_.DeriveKeys(shared, /*is_client=*/true);
    out.established = true;
    return out;
  }

  if (type == RecordType::kData) {
    if (!crypto_.established()) {
      return Status::FailedPrecondition("stls: data before handshake");
    }
    ASSIGN_OR_RETURN(Bytes plain, crypto_.DecryptRecord(payload));
    out.app_data.push_back(std::move(plain));
    out.established = true;
    return out;
  }

  return Status::InvalidArgument("stls: unexpected record for client");
}

Result<Bytes> ClientSession::Seal(ByteSpan plaintext) {
  if (!crypto_.established()) {
    return Status::FailedPrecondition("stls: session not established");
  }
  return MakeRecord(RecordType::kData, crypto_.EncryptRecord(plaintext));
}

}  // namespace ccf::rpc
