// STLS: the simulated TLS stand-in (substitution documented in DESIGN.md).
//
// Properties preserved from the paper's TLS usage (§3.1, §6.1):
//   - sessions terminate inside the enclave,
//   - the server authenticates with a node certificate chaining to the
//     service identity (Table 1),
//   - clients may authenticate with their own certificate, proving key
//     possession by signing the handshake transcript,
//   - all application data is AEAD-protected with fresh per-session keys.
//
// Handshake: ClientHello{eph_pub, cert?, sig?} -> ServerHello{eph_pub,
// node_cert, sig(transcript)}; both sides derive directional AES-256-GCM
// keys from the ephemeral ECDH secret.

#ifndef CCF_RPC_SESSION_H_
#define CCF_RPC_SESSION_H_

#include <memory>
#include <optional>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/cert.h"
#include "crypto/gcm.h"

namespace ccf::rpc {

enum class RecordType : uint8_t {
  kClientHello = 1,
  kServerHello = 2,
  kData = 3,
  kAlert = 4,
};

// Common encrypted-record machinery once keys are established.
class SessionCrypto {
 public:
  void DeriveKeys(ByteSpan shared_secret, bool is_client);
  bool established() const { return send_ != nullptr; }

  Bytes EncryptRecord(ByteSpan plaintext);
  Result<Bytes> DecryptRecord(ByteSpan record_payload);

 private:
  std::unique_ptr<crypto::AesGcm> send_;
  std::unique_ptr<crypto::AesGcm> recv_;
  uint64_t send_counter_ = 0;
  uint64_t recv_counter_ = 0;
};

// Wire framing helpers: u8 type || payload.
Bytes MakeRecord(RecordType type, ByteSpan payload);
Result<std::pair<RecordType, Bytes>> ParseRecord(ByteSpan record);

struct SessionOutput {
  Bytes to_send;                 // handshake reply or empty
  std::vector<Bytes> app_data;   // decrypted application bytes
  bool established = false;
};

class ServerSession {
 public:
  // `node_key` signs the handshake; `node_cert` is the node's certificate
  // endorsed by the service identity.
  ServerSession(const crypto::KeyPair* node_key,
                crypto::Certificate node_cert, crypto::Drbg* drbg);

  // Processes one inbound record.
  Result<SessionOutput> OnRecord(ByteSpan record);
  // Encrypts application data into a record to send.
  Result<Bytes> Seal(ByteSpan plaintext);

  // The certificate presented (and possession-proven) by the client, if any.
  const std::optional<crypto::Certificate>& peer_cert() const {
    return peer_cert_;
  }
  bool established() const { return crypto_.established(); }

 private:
  const crypto::KeyPair* node_key_;
  crypto::Certificate node_cert_;
  crypto::Drbg* drbg_;
  SessionCrypto crypto_;
  std::optional<crypto::Certificate> peer_cert_;
};

class ClientSession {
 public:
  // `service_identity` pins the expected service public key. An empty
  // client key pair means anonymous.
  ClientSession(crypto::PublicKeyBytes service_identity,
                const crypto::KeyPair* client_key,
                std::optional<crypto::Certificate> client_cert,
                crypto::Drbg* drbg);

  // First record to send.
  Bytes Start();
  Result<SessionOutput> OnRecord(ByteSpan record);
  Result<Bytes> Seal(ByteSpan plaintext);

  bool established() const { return crypto_.established(); }
  // The node certificate the server presented.
  const std::optional<crypto::Certificate>& server_cert() const {
    return server_cert_;
  }

 private:
  crypto::PublicKeyBytes service_identity_;
  const crypto::KeyPair* client_key_;  // may be null
  std::optional<crypto::Certificate> client_cert_;
  crypto::Drbg* drbg_;
  SessionCrypto crypto_;
  std::unique_ptr<crypto::KeyPair> ephemeral_;
  Bytes hello_payload_;  // transcript part 1
  std::optional<crypto::Certificate> server_cert_;
};

}  // namespace ccf::rpc

#endif  // CCF_RPC_SESSION_H_
