#include "rpc/endpoints.h"

#include <cstdlib>

#include "json/schema.h"

namespace ccf::rpc {

Result<json::Value> EndpointContext::Params() const {
  if (request_->body.empty()) return json::Value(json::Object{});
  return json::Parse(ToString(request_->body));
}

std::string EndpointContext::Param(const std::string& name) const {
  std::string value = request_->QueryParam(name);
  if (value.empty()) value = request_->GetHeader("x-query-" + name);
  return value;
}

uint64_t EndpointContext::ParamU64(const std::string& name) const {
  return std::strtoull(Param(name).c_str(), nullptr, 10);
}

void EndpointContext::SetJsonResponse(int status, const json::Value& body) {
  response_.status = status;
  response_.headers["content-type"] = "application/json";
  response_.body = ToBytes(body.Dump());
}

void EndpointContext::SetError(int status, const std::string& message) {
  SetError(status, DefaultErrorCode(status), message);
}

void EndpointContext::SetError(int status, const std::string& code,
                               const std::string& message) {
  SetJsonResponse(status, ErrorBody(code, message));
}

void EndpointRegistry::Install(const std::string& method,
                               const std::string& path, EndpointSpec spec) {
  endpoints_[method + " " + path] = std::move(spec);
}

const EndpointSpec* EndpointRegistry::Find(const std::string& method,
                                           const std::string& path) const {
  auto it = endpoints_.find(method + " " + path);
  return it != endpoints_.end() ? &it->second : nullptr;
}

std::vector<std::string> EndpointRegistry::List() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [key, spec] : endpoints_) out.push_back(key);
  return out;
}

std::vector<std::string> EndpointRegistry::MethodsForPath(
    const std::string& path) const {
  std::vector<std::string> out;
  for (const auto& [key, spec] : endpoints_) {
    size_t space = key.find(' ');
    if (space != std::string::npos && key.compare(space + 1, std::string::npos,
                                                  path) == 0) {
      out.push_back(key.substr(0, space));
    }
  }
  return out;
}

void EndpointRegistry::ForEach(
    const std::function<void(const std::string&, const std::string&,
                             const EndpointSpec&)>& fn) const {
  for (const auto& [key, spec] : endpoints_) {
    size_t space = key.find(' ');
    if (space == std::string::npos) continue;
    fn(key.substr(0, space), key.substr(space + 1), spec);
  }
}

std::string DefaultErrorCode(int status) {
  switch (status) {
    case 400: return "InvalidInput";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "ResourceNotFound";
    case 405: return "MethodNotAllowed";
    case 409: return "Conflict";
    case 500: return "InternalError";
    case 503: return "ServiceUnavailable";
    default: return "Error";
  }
}

json::Value ErrorBody(const std::string& code, const std::string& message) {
  json::Object inner;
  inner["code"] = code;
  inner["message"] = message;
  json::Object body;
  body["error"] = json::Value(std::move(inner));
  return json::Value(std::move(body));
}

http::Response ErrorResponse(int status, const std::string& code,
                             const std::string& message) {
  http::Response resp;
  resp.status = status;
  resp.headers["content-type"] = "application/json";
  resp.body = ToBytes(ErrorBody(code, message).Dump());
  return resp;
}

std::optional<http::Response> CheckRequestSchema(
    const EndpointSpec& spec, const Result<json::Value>& body) {
  if (spec.request_schema == nullptr) return std::nullopt;
  if (!body.ok()) {
    return ErrorResponse(400, "InvalidRequestBody",
                         "request body is not valid JSON: " +
                             body.status().message());
  }
  Status valid = json::SchemaValidate(*spec.request_schema, *body);
  if (!valid.ok()) {
    return ErrorResponse(400, "InvalidInput",
                         "request body violates schema: " + valid.message());
  }
  return std::nullopt;
}

void RecordEndpointMetrics(observe::Registry* reg, const std::string& method,
                           const std::string& path, int status,
                           uint64_t latency_us) {
  if (reg == nullptr) return;
  std::string key = method + " " + path;
  observe::Counter* requests = reg->GetCounter("rpc.requests." + key);
  if (requests != nullptr) requests->Inc();
  const char* klass = "other";
  if (status >= 200 && status < 300) klass = "2xx";
  else if (status >= 300 && status < 400) klass = "3xx";
  else if (status >= 400 && status < 500) klass = "4xx";
  else if (status >= 500 && status < 600) klass = "5xx";
  observe::Counter* by_status =
      reg->GetCounter(std::string("rpc.status.") + klass);
  if (by_status != nullptr) by_status->Inc();
  observe::Histogram* latency = reg->GetHistogram("rpc.latency_us." + key);
  if (latency != nullptr) latency->Record(latency_us);
}

}  // namespace ccf::rpc
