#include "rpc/endpoints.h"

#include <cstdlib>

namespace ccf::rpc {

Result<json::Value> EndpointContext::Params() const {
  if (request_->body.empty()) return json::Value(json::Object{});
  return json::Parse(ToString(request_->body));
}

std::string EndpointContext::Param(const std::string& name) const {
  std::string value = request_->QueryParam(name);
  if (value.empty()) value = request_->GetHeader("x-query-" + name);
  return value;
}

uint64_t EndpointContext::ParamU64(const std::string& name) const {
  return std::strtoull(Param(name).c_str(), nullptr, 10);
}

void EndpointContext::SetJsonResponse(int status, const json::Value& body) {
  response_.status = status;
  response_.headers["content-type"] = "application/json";
  response_.body = ToBytes(body.Dump());
}

void EndpointContext::SetError(int status, const std::string& message) {
  json::Object err;
  err["error"] = message;
  SetJsonResponse(status, json::Value(std::move(err)));
}

void EndpointRegistry::Install(const std::string& method,
                               const std::string& path, EndpointSpec spec) {
  endpoints_[method + " " + path] = std::move(spec);
}

const EndpointSpec* EndpointRegistry::Find(const std::string& method,
                                           const std::string& path) const {
  auto it = endpoints_.find(method + " " + path);
  return it != endpoints_.end() ? &it->second : nullptr;
}

std::vector<std::string> EndpointRegistry::List() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [key, spec] : endpoints_) out.push_back(key);
  return out;
}

void RecordEndpointMetrics(observe::Registry* reg, const std::string& method,
                           const std::string& path, int status,
                           uint64_t latency_us) {
  if (reg == nullptr) return;
  std::string key = method + " " + path;
  observe::Counter* requests = reg->GetCounter("rpc.requests." + key);
  if (requests != nullptr) requests->Inc();
  const char* klass = "other";
  if (status >= 200 && status < 300) klass = "2xx";
  else if (status >= 300 && status < 400) klass = "3xx";
  else if (status >= 400 && status < 500) klass = "4xx";
  else if (status >= 500 && status < 600) klass = "5xx";
  observe::Counter* by_status =
      reg->GetCounter(std::string("rpc.status.") + klass);
  if (by_status != nullptr) by_status->Inc();
  observe::Histogram* latency = reg->GetHistogram("rpc.latency_us." + key);
  if (latency != nullptr) latency->Record(latency_us);
}

}  // namespace ccf::rpc
