#include "rpc/endpoints.h"

namespace ccf::rpc {

Result<json::Value> EndpointContext::Params() const {
  if (request_->body.empty()) return json::Value(json::Object{});
  return json::Parse(ToString(request_->body));
}

void EndpointContext::SetJsonResponse(int status, const json::Value& body) {
  response_.status = status;
  response_.headers["content-type"] = "application/json";
  response_.body = ToBytes(body.Dump());
}

void EndpointContext::SetError(int status, const std::string& message) {
  json::Object err;
  err["error"] = message;
  SetJsonResponse(status, json::Value(std::move(err)));
}

void EndpointRegistry::Install(const std::string& method,
                               const std::string& path, EndpointSpec spec) {
  endpoints_[method + " " + path] = std::move(spec);
}

const EndpointSpec* EndpointRegistry::Find(const std::string& method,
                                           const std::string& path) const {
  auto it = endpoints_.find(method + " " + path);
  return it != endpoints_.end() ? &it->second : nullptr;
}

std::vector<std::string> EndpointRegistry::List() const {
  std::vector<std::string> out;
  out.reserve(endpoints_.size());
  for (const auto& [key, spec] : endpoints_) out.push_back(key);
  return out;
}

}  // namespace ccf::rpc
