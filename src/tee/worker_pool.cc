#include "tee/worker_pool.h"

namespace ccf::tee {

WorkerPool::WorkerPool(size_t workers) {
  threads_.reserve(workers);
  for (size_t i = 0; i < workers; ++i) {
    threads_.emplace_back([this] { WorkerMain(); });
  }
}

WorkerPool::~WorkerPool() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    stop_ = true;
    // Unstarted jobs are abandoned: workers exit without popping them, and
    // their completions never run. An orderly shutdown drains first.
    queue_.clear();
  }
  work_cv_.notify_all();
  for (std::thread& t : threads_) t.join();
}

void WorkerPool::WorkerMain() {
  for (;;) {
    std::shared_ptr<Task> task;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (stop_) return;
      task = std::move(queue_.front());
      queue_.pop_front();
    }
    task->job();
    {
      std::lock_guard<std::mutex> lock(mu_);
      task->finished = true;
    }
    done_cv_.notify_all();
  }
}

void WorkerPool::BindMetrics(observe::Registry* reg,
                             const std::string& prefix) {
  m_submitted_ = reg->GetCounter(prefix + ".jobs_submitted");
  m_drained_ = reg->GetCounter(prefix + ".jobs_drained");
  m_queue_depth_ = reg->GetGauge(prefix + ".queue_depth");
}

void WorkerPool::Submit(Job job, Job completion) {
  auto task = std::make_shared<Task>();
  task->completion = std::move(completion);
  ++submitted_;
  if (m_submitted_ != nullptr) m_submitted_->Inc();
  if (threads_.empty()) {
    // Synchronous mode: the job runs right here at the submission point;
    // only the completion waits for the drain.
    job();
    task->finished = true;
    pending_.push_back(std::move(task));
    if (m_queue_depth_ != nullptr) m_queue_depth_->Set(pending_.size());
    return;
  }
  task->job = std::move(job);
  pending_.push_back(task);
  if (m_queue_depth_ != nullptr) m_queue_depth_->Set(pending_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    queue_.push_back(std::move(task));
  }
  work_cv_.notify_one();
}

void WorkerPool::SubmitBatch(std::vector<Job> jobs) {
  if (jobs.empty()) return;
  submitted_ += jobs.size();
  if (m_submitted_ != nullptr) m_submitted_->Inc(jobs.size());
  if (threads_.empty()) {
    // Synchronous mode: batch members run right here, in index order --
    // the same order a blocking Drain() retires them in threaded mode.
    for (Job& job : jobs) {
      job();
      auto task = std::make_shared<Task>();
      task->finished = true;
      pending_.push_back(std::move(task));
    }
    if (m_queue_depth_ != nullptr) m_queue_depth_->Set(pending_.size());
    return;
  }
  std::vector<std::shared_ptr<Task>> tasks;
  tasks.reserve(jobs.size());
  for (Job& job : jobs) {
    auto task = std::make_shared<Task>();
    task->job = std::move(job);
    pending_.push_back(task);
    tasks.push_back(std::move(task));
  }
  if (m_queue_depth_ != nullptr) m_queue_depth_->Set(pending_.size());
  {
    std::lock_guard<std::mutex> lock(mu_);
    for (std::shared_ptr<Task>& task : tasks) {
      queue_.push_back(std::move(task));
    }
  }
  work_cv_.notify_all();
}

size_t WorkerPool::Drain(bool wait_all) {
  size_t ran = 0;
  while (!pending_.empty()) {
    std::shared_ptr<Task> task = pending_.front();
    if (!threads_.empty()) {
      std::unique_lock<std::mutex> lock(mu_);
      if (wait_all) {
        done_cv_.wait(lock, [&task] { return task->finished; });
      } else if (!task->finished) {
        break;  // preserve submission order: stop at first unfinished job
      }
    }
    pending_.pop_front();
    ++drained_;
    ++ran;
    if (m_drained_ != nullptr) m_drained_->Inc();
    if (task->completion) task->completion();  // batch tasks carry none
  }
  if (m_queue_depth_ != nullptr) m_queue_depth_->Set(pending_.size());
  return ran;
}

}  // namespace ccf::tee
