#include "tee/attestation.h"

#include <cstring>

#include "common/buffer.h"

namespace ccf::tee {

Bytes Quote::SignedPayload() const {
  BufWriter w;
  w.Str("ccf.quote.v1");
  w.Str(code_id);
  w.Raw(ByteSpan(report_data.data(), report_data.size()));
  return w.Take();
}

Bytes Quote::Serialize() const {
  BufWriter w;
  w.Str(code_id);
  w.Raw(ByteSpan(report_data.data(), report_data.size()));
  w.Raw(ByteSpan(platform_signature.data(), platform_signature.size()));
  return w.Take();
}

Result<Quote> Quote::Deserialize(ByteSpan data) {
  BufReader r(data);
  Quote q;
  ASSIGN_OR_RETURN(q.code_id, r.Str());
  ASSIGN_OR_RETURN(Bytes rd, r.Raw(crypto::kSha256DigestSize));
  std::copy(rd.begin(), rd.end(), q.report_data.begin());
  ASSIGN_OR_RETURN(Bytes sig, r.Raw(crypto::kSignatureSize));
  std::copy(sig.begin(), sig.end(), q.platform_signature.begin());
  if (!r.AtEnd()) {
    return Status::InvalidArgument("quote: trailing bytes");
  }
  return q;
}

Platform::Platform()
    : key_(crypto::KeyPair::FromSeed(ToBytes("ccf.simulated.platform"))) {}

const Platform& Platform::Global() {
  static const Platform platform;
  return platform;
}

Quote Platform::GenerateQuote(const CodeId& code_id,
                              const crypto::Sha256Digest& report_data) const {
  Quote q;
  q.code_id = code_id;
  q.report_data = report_data;
  q.platform_signature = key_.Sign(q.SignedPayload());
  return q;
}

Status Platform::VerifyQuote(const Quote& quote) const {
  if (!crypto::Verify(key_.public_key(), quote.SignedPayload(),
                      ByteSpan(quote.platform_signature.data(),
                               quote.platform_signature.size()))) {
    return Status::PermissionDenied("quote: bad platform signature");
  }
  return Status::Ok();
}

crypto::Sha256Digest ReportDataForNodeKey(const crypto::PublicKeyBytes& key) {
  BufWriter w;
  w.Str("ccf.report-data.node-key.v1");
  w.Raw(ByteSpan(key.data(), key.size()));
  return crypto::Sha256::Hash(w.data());
}

}  // namespace ccf::tee
