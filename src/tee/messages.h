// Ring-buffer message types across the host/enclave boundary, shared by
// both halves of a node (node/node.cc) and by anything that inspects the
// boundary traffic.
//
// Network payloads (kInboundNet / kOutboundNet) wrap a (peer, bytes) pair.
// Historical ledger fetches (paper §3.5 / §4.3): the enclave can only
// reconstruct state inside its bounded retained-roots window, so committed
// entries older than that are requested back from the untrusted host's
// ledger with kLedgerFetchRequest and returned with kLedgerFetchResponse.
// Everything in a fetch response is UNTRUSTED until the enclave has
// re-verified it against its Merkle tree and a signed root
// (node/historical.h).

#ifndef CCF_TEE_MESSAGES_H_
#define CCF_TEE_MESSAGES_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/status.h"

namespace ccf::tee {

enum BoundaryMessageType : uint32_t {
  kInboundNet = 1,         // host -> enclave: network payload from a peer
  kOutboundNet = 2,        // enclave -> host: network payload to a peer
  kLedgerFetchRequest = 3,   // enclave -> host: committed entries [lo, hi]
  kLedgerFetchResponse = 4,  // host -> enclave: the (untrusted) entries
  kSnapshotWrite = 5,  // enclave -> host: persist a verified snapshot bundle
  kSessionClosed = 6,  // host -> enclave: transport connection went away
  kCloseSession = 7,   // enclave -> host: close the peer's connection
};

// Session lifecycle notification, both directions (kSessionClosed /
// kCloseSession). The payload is just the transport-level peer label. The
// simulator has no connection lifetime, so it never emits kSessionClosed;
// the live host (src/host) emits one per disconnect so the enclave can free
// session state, and honours kCloseSession by flushing pending writes and
// closing the socket.
struct SessionControl {
  std::string peer;

  Bytes Serialize() const {
    BufWriter w;
    w.Str(peer);
    return w.Take();
  }

  static Result<SessionControl> Deserialize(ByteSpan data) {
    BufReader r(data);
    SessionControl msg;
    ASSIGN_OR_RETURN(msg.peer, r.Str());
    if (!r.AtEnd()) {
      return Status::InvalidArgument("session control: trailing bytes");
    }
    return msg;
  }
};

// Enclave -> host: serve committed ledger entries with seqnos in [lo, hi]
// (inclusive, 1-based) from the host ledger.
struct LedgerFetchRequest {
  uint64_t lo = 0;
  uint64_t hi = 0;

  Bytes Serialize() const {
    BufWriter w;
    w.U64(lo);
    w.U64(hi);
    return w.Take();
  }

  static Result<LedgerFetchRequest> Deserialize(ByteSpan data) {
    BufReader r(data);
    LedgerFetchRequest req;
    ASSIGN_OR_RETURN(req.lo, r.U64());
    ASSIGN_OR_RETURN(req.hi, r.U64());
    if (req.lo == 0 || req.hi < req.lo) {
      return Status::InvalidArgument("bad ledger fetch range");
    }
    return req;
  }
};

// Host -> enclave: the serialized ledger entries for [lo, hi] in order,
// or ok=false with a diagnostic when the host ledger does not hold the
// full range. A range at or below the host's snapshot horizon is reported
// as compacted=true with the horizon seqno: definitive (the chunks were
// retired), as opposed to a transient miss a caller may retry.
struct LedgerFetchResponse {
  uint64_t lo = 0;
  uint64_t hi = 0;
  bool ok = false;
  std::string error;           // only meaningful when !ok
  bool compacted = false;      // !ok because the range was retired
  uint64_t horizon = 0;        // host ledger base when compacted
  std::vector<Bytes> entries;  // serialized ledger::Entry, one per seqno

  Bytes Serialize() const {
    BufWriter w;
    w.U64(lo);
    w.U64(hi);
    w.Bool(ok);
    w.Str(error);
    w.Bool(compacted);
    w.U64(horizon);
    w.U64(entries.size());
    for (const Bytes& e : entries) w.Blob(e);
    return w.Take();
  }

  static Result<LedgerFetchResponse> Deserialize(ByteSpan data) {
    BufReader r(data);
    LedgerFetchResponse resp;
    ASSIGN_OR_RETURN(resp.lo, r.U64());
    ASSIGN_OR_RETURN(resp.hi, r.U64());
    ASSIGN_OR_RETURN(resp.ok, r.Bool());
    ASSIGN_OR_RETURN(resp.error, r.Str());
    ASSIGN_OR_RETURN(resp.compacted, r.Bool());
    ASSIGN_OR_RETURN(resp.horizon, r.U64());
    ASSIGN_OR_RETURN(uint64_t n, r.U64());
    if (resp.ok && (resp.lo == 0 || resp.hi < resp.lo ||
                    n != resp.hi - resp.lo + 1)) {
      return Status::InvalidArgument("fetch response entry count mismatch");
    }
    if (n > r.remaining()) {
      return Status::OutOfRange("fetch response truncated");
    }
    resp.entries.reserve(static_cast<size_t>(n));
    for (uint64_t i = 0; i < n; ++i) {
      ASSIGN_OR_RETURN(Bytes e, r.Blob());
      resp.entries.push_back(std::move(e));
    }
    return resp;
  }
};

// Enclave -> host: persist `bundle` (a serialized node::SnapshotBundle,
// evidence-committed and receipt-carrying) as the node's latest snapshot.
// The host copy is outside the trust boundary; anything read back is
// re-verified against the service identity before install.
struct SnapshotWrite {
  uint64_t seqno = 0;
  Bytes bundle;

  Bytes Serialize() const {
    BufWriter w;
    w.U64(seqno);
    w.Blob(bundle);
    return w.Take();
  }

  static Result<SnapshotWrite> Deserialize(ByteSpan data) {
    BufReader r(data);
    SnapshotWrite msg;
    ASSIGN_OR_RETURN(msg.seqno, r.U64());
    ASSIGN_OR_RETURN(msg.bundle, r.Blob());
    if (msg.seqno == 0) {
      return Status::InvalidArgument("snapshot write at seqno 0");
    }
    if (!r.AtEnd()) {
      return Status::InvalidArgument("snapshot write: trailing bytes");
    }
    return msg;
  }
};

}  // namespace ccf::tee

#endif  // CCF_TEE_MESSAGES_H_
