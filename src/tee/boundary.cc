#include "tee/boundary.h"

#include "common/buffer.h"

namespace ccf::tee {

EnclaveBoundary::EnclaveBoundary(TeeMode mode, size_t buffer_capacity)
    : mode_(mode),
      host_to_enclave_(buffer_capacity),
      enclave_to_host_(buffer_capacity) {
  if (mode_ == TeeMode::kSgxSim) {
    Bytes key(crypto::kAes256KeySize, 0x42);
    seal_ = std::make_unique<crypto::AesGcm>(key);
  }
}

void EnclaveBoundary::BindMetrics(observe::Registry* reg) {
  h2e_metrics_.messages = reg->GetCounter("tee.h2e.messages");
  h2e_metrics_.stalls = reg->GetCounter("tee.h2e.stalls");
  h2e_metrics_.ring_used = reg->GetGauge("tee.h2e.ring_used_bytes");
  e2h_metrics_.messages = reg->GetCounter("tee.e2h.messages");
  e2h_metrics_.stalls = reg->GetCounter("tee.e2h.stalls");
  e2h_metrics_.ring_used = reg->GetGauge("tee.e2h.ring_used_bytes");
  m_ring_full_ = reg->GetCounter("tee.ring_full");
}

bool EnclaveBoundary::Send(ds::RingBuffer* rb,
                           std::atomic<uint64_t>* counter,
                           const DirMetrics& dm, uint32_t type,
                           ByteSpan payload) {
  bool ok;
  if (mode_ == TeeMode::kVirtual) {
    ok = rb->TryWrite(type, payload);
  } else {
    // SGX-sim: seal the payload across the boundary.
    uint64_t n = seal_counter_.fetch_add(1, std::memory_order_relaxed);
    BufWriter ivw;
    ivw.U64(n);
    ivw.U32(type);
    Bytes iv = ivw.Take();  // 12 bytes
    Bytes sealed = seal_->Seal(iv, payload, {});
    BufWriter w;
    w.U64(n);
    w.Raw(sealed);
    ok = rb->TryWrite(type, w.data());
  }
  if (ok) {
    counter->fetch_add(1, std::memory_order_relaxed);
    if (dm.messages != nullptr) dm.messages->Inc();
    if (dm.ring_used != nullptr) dm.ring_used->Set(rb->used_bytes());
  } else {
    ring_full_count_.fetch_add(1, std::memory_order_relaxed);
    if (dm.stalls != nullptr) dm.stalls->Inc();
    if (m_ring_full_ != nullptr) m_ring_full_->Inc();
  }
  return ok;
}

bool EnclaveBoundary::Receive(ds::RingBuffer* rb, const DirMetrics& dm,
                              uint32_t* type, Bytes* payload) {
  if (mode_ == TeeMode::kVirtual) {
    bool ok = rb->TryRead(type, payload);
    if (ok && dm.ring_used != nullptr) dm.ring_used->Set(rb->used_bytes());
    return ok;
  }
  Bytes sealed_msg;
  if (!rb->TryRead(type, &sealed_msg)) return false;
  if (dm.ring_used != nullptr) dm.ring_used->Set(rb->used_bytes());
  BufReader r(sealed_msg);
  auto n = r.U64();
  if (!n.ok()) return false;
  auto sealed = r.Raw(r.remaining());
  if (!sealed.ok()) return false;
  BufWriter ivw;
  ivw.U64(*n);
  ivw.U32(*type);
  auto opened = seal_->Open(ivw.data(), *sealed, {});
  if (!opened.ok()) return false;
  *payload = opened.take();
  return true;
}

bool EnclaveBoundary::HostSend(uint32_t type, ByteSpan payload) {
  return Send(&host_to_enclave_, &h2e_count_, h2e_metrics_, type, payload);
}

bool EnclaveBoundary::HostReceive(uint32_t* type, Bytes* payload) {
  return Receive(&enclave_to_host_, e2h_metrics_, type, payload);
}

bool EnclaveBoundary::EnclaveSend(uint32_t type, ByteSpan payload) {
  return Send(&enclave_to_host_, &e2h_count_, e2h_metrics_, type, payload);
}

bool EnclaveBoundary::EnclaveReceive(uint32_t* type, Bytes* payload) {
  return Receive(&host_to_enclave_, h2e_metrics_, type, payload);
}

}  // namespace ccf::tee
