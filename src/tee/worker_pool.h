// Enclave worker-thread pool for deferred crypto (paper §7: dedicated
// enclave threads keep signing and verification off the message-handling
// hot path, flattening the Figure 8 signature-interval latency spike).
//
// Determinism contract (see DESIGN.md):
//   - Jobs are submitted with a completion callback. Completions NEVER run
//     at submission; they run only inside Drain(), which the node calls at
//     one fixed point (the top of Node::Tick), in submission order.
//   - worker_count == 0: the job body executes synchronously inside
//     Submit(); only the completion is deferred to the drain point. No
//     threads exist, so the simulation stays bit-for-bit reproducible.
//   - worker_count > 0: job bodies execute on real threads. A blocking
//     drain (wait_all=true) waits for every submitted job, so the sequence
//     of {drain point, completions run} is identical to worker_count == 0
//     -- same virtual-time behavior, wall-clock work overlapped.
//   - A non-blocking drain (wait_all=false) runs only the finished prefix
//     of completions (still submission order, stopping at the first
//     unfinished job). Maximum overlap, wall-clock-dependent placement; the
//     node only uses it when NodeConfig::worker_async is set.
//
// Threading model: Submit() and Drain() are called from one thread (the
// enclave message loop); only the job bodies run elsewhere.

#ifndef CCF_TEE_WORKER_POOL_H_
#define CCF_TEE_WORKER_POOL_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "observe/metrics.h"

namespace ccf::tee {

class WorkerPool {
 public:
  using Job = std::function<void()>;

  explicit WorkerPool(size_t workers);
  ~WorkerPool();

  WorkerPool(const WorkerPool&) = delete;
  WorkerPool& operator=(const WorkerPool&) = delete;

  // Enqueues `job` for execution (inline if workers == 0) and `completion`
  // for the next Drain().
  void Submit(Job job, Job completion);

  // Enqueues a whole batch under one lock acquisition and a single
  // notify_all, for fan-out callers (the OCC request scheduler submits a
  // full request batch at its flush point). Jobs carry no completions; the
  // caller observes results through the jobs' own side effects after a
  // blocking Drain(). Ordering follows the vector: Drain() retires batch
  // members in index order.
  void SubmitBatch(std::vector<Job> jobs);

  // Runs completions in submission order. wait_all=true blocks until every
  // submitted job has finished; wait_all=false runs only the completions
  // whose jobs already finished, stopping at the first unfinished one.
  // Returns the number of completions run.
  size_t Drain(bool wait_all = true);

  // True if any submitted job has not yet been drained.
  bool HasPending() const { return !pending_.empty(); }

  size_t worker_count() const { return threads_.size(); }
  uint64_t submitted() const { return submitted_; }
  uint64_t drained() const { return drained_; }

  // Registers a queue-depth gauge (undrained tasks; max() is the
  // high-water mark) plus submit/drain counters. Call before traffic.
  // `prefix` namespaces the keys ("<prefix>.jobs_submitted" etc.) so a
  // node running several pools (crypto offload vs request execution) keeps
  // their telemetry apart.
  void BindMetrics(observe::Registry* reg,
                   const std::string& prefix = "tee.worker");

 private:
  struct Task {
    Job job;
    Job completion;
    bool finished = false;  // guarded by mu_
  };

  void WorkerMain();

  // Producer-side view of in-flight tasks, in submission order. Touched
  // only by the submitting thread.
  std::deque<std::shared_ptr<Task>> pending_;

  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // workers wait for queue_ / stop_
  std::condition_variable done_cv_;  // Drain waits for finished flags
  std::deque<std::shared_ptr<Task>> queue_;  // guarded by mu_
  bool stop_ = false;                        // guarded by mu_

  std::vector<std::thread> threads_;
  uint64_t submitted_ = 0;
  uint64_t drained_ = 0;
  observe::Counter* m_submitted_ = nullptr;
  observe::Counter* m_drained_ = nullptr;
  observe::Gauge* m_queue_depth_ = nullptr;
};

}  // namespace ccf::tee

#endif  // CCF_TEE_WORKER_POOL_H_
