// Simulated remote attestation (paper §2, §3; substitution documented in
// DESIGN.md §1).
//
// A quote binds a code measurement (code id) and enclave-chosen report
// data (here: the digest of the node's identity public key) under a
// platform signature. Verification checks the platform signature; whether
// the code id is trusted is decided by governance against the
// nodes.code_ids map (paper Listing 1: add_node_code).
//
// The "platform" stands in for the hardware manufacturer root of trust:
// a process-wide signing key that every simulated enclave can reach.

#ifndef CCF_TEE_ATTESTATION_H_
#define CCF_TEE_ATTESTATION_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/sign.h"

namespace ccf::tee {

// Hex string measuring the code running inside an enclave.
using CodeId = std::string;

struct Quote {
  CodeId code_id;
  crypto::Sha256Digest report_data{};
  crypto::SignatureBytes platform_signature{};

  Bytes SignedPayload() const;
  Bytes Serialize() const;
  static Result<Quote> Deserialize(ByteSpan data);
};

class Platform {
 public:
  // The simulated hardware vendor for this process.
  static const Platform& Global();

  const crypto::PublicKeyBytes& public_key() const {
    return key_.public_key();
  }

  // Enclave side: produce a quote over (code_id, report_data).
  Quote GenerateQuote(const CodeId& code_id,
                      const crypto::Sha256Digest& report_data) const;

  // Verifier side: check the platform signature. Code-id trust is a
  // separate, governance-level decision.
  Status VerifyQuote(const Quote& quote) const;

 private:
  Platform();
  crypto::KeyPair key_;
};

// Report data convention: digest of the node identity public key, so a
// quote cannot be replayed for a different node key.
crypto::Sha256Digest ReportDataForNodeKey(const crypto::PublicKeyBytes& key);

}  // namespace ccf::tee

#endif  // CCF_TEE_ATTESTATION_H_
