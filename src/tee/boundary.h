// The host/enclave boundary (paper §2, Figure 2, §7).
//
// "The host and the TEE communicate via a pair of lock-free multi-producer
// single-consumer ringbuffers." This class is that pair plus the TEE-mode
// cost model:
//   - kVirtual: payloads cross as plain copies (CCF's virtual mode).
//   - kSgxSim:  every payload crossing the boundary is AES-256-GCM sealed
//     on one side and opened on the other. This is a *mechanistic* stand-in
//     for SGX's memory-encryption/transition overhead — real work on the
//     actual bytes, not a sleep — reproducing the SGX-vs-virtual gap of
//     Table 5 in shape.

#ifndef CCF_TEE_BOUNDARY_H_
#define CCF_TEE_BOUNDARY_H_

#include <atomic>
#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/gcm.h"
#include "ds/ringbuffer.h"
#include "observe/metrics.h"

namespace ccf::tee {

enum class TeeMode { kVirtual, kSgxSim };

inline const char* TeeModeName(TeeMode m) {
  return m == TeeMode::kVirtual ? "virtual" : "sgx-sim";
}

class EnclaveBoundary {
 public:
  explicit EnclaveBoundary(TeeMode mode, size_t buffer_capacity = 8 << 20);

  TeeMode mode() const { return mode_; }

  // Host side.
  bool HostSend(uint32_t type, ByteSpan payload);
  bool HostReceive(uint32_t* type, Bytes* payload);

  // Enclave side.
  bool EnclaveSend(uint32_t type, ByteSpan payload);
  bool EnclaveReceive(uint32_t* type, Bytes* payload);

  // Number of messages that crossed in each direction (diagnostics).
  uint64_t host_to_enclave_count() const { return h2e_count_; }
  uint64_t enclave_to_host_count() const { return e2h_count_; }

  // Registers per-direction metrics (message counts, full-ring stalls,
  // ring occupancy gauges whose max() is the high-water mark) plus the
  // shared `tee.ring_full` counter of rejected writes. Call once, before
  // traffic; unbound boundaries record nothing.
  void BindMetrics(observe::Registry* reg);

  // Total sends rejected because a ring was full (either direction).
  // Callers are expected to retry or park the producer — a full ring is
  // backpressure, never an error (see DESIGN.md §13).
  uint64_t ring_full_count() const { return ring_full_count_; }

 private:
  struct DirMetrics {
    observe::Counter* messages = nullptr;
    observe::Counter* stalls = nullptr;
    observe::Gauge* ring_used = nullptr;
  };

  bool Send(ds::RingBuffer* rb, std::atomic<uint64_t>* counter,
            const DirMetrics& dm, uint32_t type, ByteSpan payload);
  bool Receive(ds::RingBuffer* rb, const DirMetrics& dm, uint32_t* type,
               Bytes* payload);

  TeeMode mode_;
  ds::RingBuffer host_to_enclave_;
  ds::RingBuffer enclave_to_host_;
  // SGX-sim sealing state. A fixed process key is fine: this models a cost,
  // not a security boundary inside the simulation.
  std::unique_ptr<crypto::AesGcm> seal_;
  std::atomic<uint64_t> seal_counter_{0};
  std::atomic<uint64_t> h2e_count_{0};
  std::atomic<uint64_t> e2h_count_{0};
  std::atomic<uint64_t> ring_full_count_{0};
  DirMetrics h2e_metrics_;
  DirMetrics e2h_metrics_;
  observe::Counter* m_ring_full_ = nullptr;
};

}  // namespace ccf::tee

#endif  // CCF_TEE_BOUNDARY_H_
