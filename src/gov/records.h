// JSON record formats for CCF's built-in maps (paper Table 3, Listing 2).
//
// All governance/internal records are JSON in public maps, so the ledger
// can be audited offline without decryption (paper §6.1), and ledger dumps
// look like the paper's Listing 2.

#ifndef CCF_GOV_RECORDS_H_
#define CCF_GOV_RECORDS_H_

#include <string>

#include "common/status.h"
#include "crypto/cert.h"
#include "json/json.h"
#include "kv/store.h"

namespace ccf::gov {

// Node lifecycle states (paper Figure 6).
enum class NodeStatus { kPending, kTrusted, kRetiring, kRetired };
const char* NodeStatusName(NodeStatus s);
Result<NodeStatus> NodeStatusFromName(const std::string& name);

struct NodeInfo {
  std::string node_id;
  NodeStatus status = NodeStatus::kPending;
  crypto::Certificate cert;  // node identity cert, endorsed by the service
  std::string code_id;       // measurement from the join quote
  std::string host;          // operator-visible address

  json::Value ToJson() const;
  static Result<NodeInfo> FromJson(const json::Value& j);
};

enum class ServiceStatus { kOpening, kOpen, kRecovering };
const char* ServiceStatusName(ServiceStatus s);

struct ServiceInfo {
  ServiceStatus status = ServiceStatus::kOpening;
  Bytes cert;  // serialized service identity certificate
  std::string previous_identity;  // hex pubkey of pre-recovery service ("")

  json::Value ToJson() const;
  static Result<ServiceInfo> FromJson(const json::Value& j);
};

struct MemberInfo {
  Bytes cert;  // serialized member certificate
  crypto::PublicKeyBytes encryption_key{};  // for recovery shares

  json::Value ToJson() const;
  static Result<MemberInfo> FromJson(const json::Value& j);
};

struct UserInfo {
  Bytes cert;

  json::Value ToJson() const;
  static Result<UserInfo> FromJson(const json::Value& j);
};

enum class ProposalState { kOpen, kAccepted, kRejected, kDropped };
const char* ProposalStateName(ProposalState s);

struct ProposalInfo {
  std::string proposer_id;
  ProposalState state = ProposalState::kOpen;
  // member id -> ballot script source.
  std::map<std::string, std::string> ballots;
  // Populated once resolved: member id -> evaluated vote.
  std::map<std::string, bool> final_votes;

  json::Value ToJson() const;
  static Result<ProposalInfo> FromJson(const json::Value& j);
};

// --------------------------------------------------- KV record helpers

// Reads a JSON record from a public map; NOT_FOUND when absent.
Result<json::Value> ReadRecord(kv::MapHandle* handle, std::string_view key);
void WriteRecord(kv::MapHandle* handle, std::string_view key,
                 const json::Value& record);

}  // namespace ccf::gov

#endif  // CCF_GOV_RECORDS_H_
