// The programmable constitution (paper §5.1).
//
// "The constitution is a contract between the consortium members
// describing all the available governance actions and the associated
// voting criteria... The constitution defines a resolve function, which
// takes a governance proposal and votes by consortium members, and
// determines if the proposal has been accepted. The constitution also
// defines apply, which takes an accepted proposal and executes the
// governance actions within it to modify the key-value store."
//
// Constitutions are CCL scripts (our QuickJS stand-in) stored in the
// public:ccf.gov.constitution map and replaceable via the
// set_constitution governance action.

#ifndef CCF_GOV_CONSTITUTION_H_
#define CCF_GOV_CONSTITUTION_H_

#include <map>
#include <string>

#include "common/status.h"
#include "json/json.h"
#include "kv/store.h"
#include "script/interp.h"

namespace ccf::gov {

// Installs kv_get/kv_put/kv_remove/kv_has/kv_size/kv_foreach/fail natives
// into `interp`, operating on `tx`. When read_only, mutating natives fail.
void BindKvNatives(script::Interpreter* interp, kv::Tx* tx, bool read_only);

class ConstitutionEngine {
 public:
  // Reads the current constitution source from the store.
  static Result<std::string> CurrentSource(kv::Tx* tx);

  // Runs the constitution's optional `validate(proposal)`; returns an
  // error for malformed proposals (Listing 1's checkType analogue).
  static Status Validate(const std::string& source,
                         const json::Value& proposal, kv::Tx* tx);

  // Evaluates one ballot script's vote(proposal, proposer_id).
  static Result<bool> EvalBallot(const std::string& ballot_source,
                                 const json::Value& proposal,
                                 const std::string& proposer_id, kv::Tx* tx);

  // Runs resolve(proposal, proposer_id, votes); returns "Open",
  // "Accepted", or "Rejected".
  static Result<std::string> Resolve(const std::string& source,
                                     const json::Value& proposal,
                                     const std::string& proposer_id,
                                     const std::map<std::string, bool>& votes,
                                     kv::Tx* tx);

  // Runs apply(proposal, proposal_id) with read-write KV access.
  static Status Apply(const std::string& source, const json::Value& proposal,
                      const std::string& proposal_id, kv::Tx* tx);
};

// The default constitution (paper §5.1: strict majority of members;
// Table 4 actions).
const std::string& DefaultConstitution();

}  // namespace ccf::gov

#endif  // CCF_GOV_CONSTITUTION_H_
