// Governance proposals and ballots (paper §5.1).
//
// Proposals are JSON documents {actions: [{name, args}, ...]}; ballots are
// CCL scripts defining vote(proposal, proposer_id). Both are recorded on
// the ledger in public maps, together with the signed member request
// (public:ccf.gov.history), so governance is fully auditable offline.

#ifndef CCF_GOV_PROPOSALS_H_
#define CCF_GOV_PROPOSALS_H_

#include <string>

#include "gov/records.h"
#include "json/json.h"
#include "kv/store.h"

namespace ccf::gov {

struct ProposalOutcome {
  std::string proposal_id;
  ProposalState state = ProposalState::kOpen;
};

class ProposalManager {
 public:
  // Records a new proposal from `member_id` (already authenticated and
  // signature-verified by the caller; `signed_request` is stored in the
  // governance history map). Runs the constitution's validate, then an
  // initial resolve (the proposer may have included a ballot).
  static Result<ProposalOutcome> Submit(kv::Tx* tx,
                                        const std::string& member_id,
                                        const json::Value& proposal,
                                        ByteSpan signed_request);

  // Records `member_id`'s ballot for `proposal_id` and re-tallies.
  static Result<ProposalOutcome> Vote(kv::Tx* tx, const std::string& member_id,
                                      const std::string& proposal_id,
                                      const std::string& ballot_source,
                                      ByteSpan signed_request);

  // Withdraws an open proposal (proposer only).
  static Status Withdraw(kv::Tx* tx, const std::string& member_id,
                         const std::string& proposal_id);

  static Result<json::Value> GetProposal(kv::Tx* tx,
                                         const std::string& proposal_id);
  static Result<ProposalInfo> GetInfo(kv::Tx* tx,
                                      const std::string& proposal_id);

 private:
  static Result<ProposalOutcome> TryResolve(kv::Tx* tx,
                                            const std::string& proposal_id);
  static void RecordHistory(kv::Tx* tx, const std::string& member_id,
                            ByteSpan signed_request);
};

// True iff `member_id` is a registered consortium member.
bool IsMember(kv::Tx* tx, const std::string& member_id);

}  // namespace ccf::gov

#endif  // CCF_GOV_PROPOSALS_H_
