#include "gov/shares.h"

#include <vector>

#include "common/hex.h"
#include "crypto/gcm.h"
#include "crypto/shamir.h"
#include "crypto/sign.h"
#include "gov/records.h"
#include "kv/tables.h"

namespace ccf::gov {

namespace {

constexpr char kWrappedSecretKey[] = "current";

struct MemberKeys {
  std::string member_id;
  crypto::PublicKeyBytes encryption_key;
};

Result<std::vector<MemberKeys>> CurrentMembers(kv::Tx* tx) {
  std::vector<MemberKeys> members;
  Status status = Status::Ok();
  tx->Handle(kv::tables::kMembersCerts)
      ->Foreach([&](const Bytes& key, const Bytes& value) {
        auto j = json::Parse(ToString(value));
        if (!j.ok()) {
          status = j.status();
          return false;
        }
        auto info = MemberInfo::FromJson(*j);
        if (!info.ok()) {
          status = info.status();
          return false;
        }
        members.push_back({ToString(key), info->encryption_key});
        return true;
      });
  RETURN_IF_ERROR(status);
  return members;
}

}  // namespace

int ShareManager::RecoveryThreshold(kv::Tx* tx) {
  auto raw = tx->Handle(kv::tables::kServiceConfig)
                 ->GetStr("recovery_threshold");
  if (raw.has_value()) {
    int k = std::atoi(raw->c_str());
    if (k >= 1) return k;
  }
  size_t members = tx->Handle(kv::tables::kMembersCerts)->Size();
  return static_cast<int>(members / 2 + 1);
}

Status ShareManager::ReissueShares(kv::Tx* tx, const kv::LedgerSecret& secret,
                                   crypto::Drbg* drbg) {
  ASSIGN_OR_RETURN(std::vector<MemberKeys> members, CurrentMembers(tx));
  if (members.empty()) {
    return Status::FailedPrecondition("shares: no members registered");
  }
  int n = static_cast<int>(members.size());
  int k = std::min(RecoveryThreshold(tx), n);

  // Fresh wrapping key; wrap the ledger secret with it.
  Bytes wrapping_key = drbg->Generate(crypto::kAes256KeySize);
  crypto::AesGcm wrapper(wrapping_key);
  Bytes iv(crypto::kGcmIvSize, 0);  // fresh key per wrap: zero IV is safe
  Bytes wrapped =
      wrapper.Seal(iv, secret.key, ToBytes("ccf.ledger-secret.v1"));
  json::Object wrapped_record;
  wrapped_record["wrapped_secret"] = HexEncode(wrapped);
  WriteRecord(tx->Handle(kv::tables::kLedgerSecret), kWrappedSecretKey,
              json::Value(std::move(wrapped_record)));
  tx->Handle(kv::tables::kServiceConfig)
      ->PutStr("recovery_threshold", std::to_string(k));

  // Split the wrapping key and encrypt one share per member.
  ASSIGN_OR_RETURN(std::vector<crypto::Share> shares,
                   crypto::ShamirSplit(wrapping_key, k, n, drbg));
  kv::MapHandle* shares_map = tx->Handle(kv::tables::kRecoveryShares);
  // Replace all existing shares.
  std::vector<std::string> stale;
  shares_map->Foreach([&](const Bytes& key, const Bytes&) {
    stale.push_back(ToString(key));
    return true;
  });
  for (const std::string& key : stale) shares_map->RemoveStr(key);

  for (int i = 0; i < n; ++i) {
    Bytes share_plain;
    share_plain.push_back(shares[i].index);
    Append(&share_plain, shares[i].data);
    ASSIGN_OR_RETURN(Bytes sealed,
                     crypto::EciesSeal(members[i].encryption_key, share_plain,
                                       drbg));
    json::Object record;
    record["encrypted_share"] = HexEncode(sealed);
    WriteRecord(shares_map, members[i].member_id,
                json::Value(std::move(record)));
  }
  return Status::Ok();
}

Result<Bytes> ShareManager::ExtractMemberShare(
    kv::Tx* tx, const std::string& member_id,
    const crypto::KeyPair& member_key) {
  ASSIGN_OR_RETURN(json::Value record,
                   ReadRecord(tx->Handle(kv::tables::kRecoveryShares),
                              member_id));
  ASSIGN_OR_RETURN(Bytes sealed,
                   HexDecode(record.GetString("encrypted_share")));
  return member_key.EciesOpen(sealed);
}

Result<kv::LedgerSecret> ShareManager::RecoverLedgerSecret(
    kv::Tx* tx, const std::map<std::string, Bytes>& submitted_shares) {
  int k = RecoveryThreshold(tx);
  if (static_cast<int>(submitted_shares.size()) < k) {
    return Status::FailedPrecondition(
        "shares: need " + std::to_string(k) + " shares, have " +
        std::to_string(submitted_shares.size()));
  }
  std::vector<crypto::Share> shares;
  for (const auto& [member_id, plain] : submitted_shares) {
    if (plain.size() < 2) {
      return Status::InvalidArgument("shares: malformed share from " +
                                     member_id);
    }
    crypto::Share s;
    s.index = plain[0];
    s.data.assign(plain.begin() + 1, plain.end());
    shares.push_back(std::move(s));
  }
  ASSIGN_OR_RETURN(Bytes wrapping_key, crypto::ShamirCombine(shares, k));

  ASSIGN_OR_RETURN(json::Value record,
                   ReadRecord(tx->Handle(kv::tables::kLedgerSecret),
                              kWrappedSecretKey));
  ASSIGN_OR_RETURN(Bytes wrapped, HexDecode(record.GetString("wrapped_secret")));
  crypto::AesGcm wrapper(wrapping_key);
  Bytes iv(crypto::kGcmIvSize, 0);
  auto secret = wrapper.Open(iv, wrapped, ToBytes("ccf.ledger-secret.v1"));
  if (!secret.ok()) {
    return Status::PermissionDenied(
        "shares: reconstructed wrapping key does not unwrap the secret (bad "
        "or insufficient shares)");
  }
  return kv::LedgerSecret{secret.take()};
}

}  // namespace ccf::gov
