#include "gov/records.h"

#include <cstring>

#include "common/hex.h"

namespace ccf::gov {

namespace {

Result<Bytes> HexField(const json::Value& j, std::string_view key) {
  const json::Value* v = j.Get(key);
  if (v == nullptr || !v->is_string()) {
    return Status::InvalidArgument("record: missing field " +
                                   std::string(key));
  }
  return HexDecode(v->AsString());
}

}  // namespace

const char* NodeStatusName(NodeStatus s) {
  switch (s) {
    case NodeStatus::kPending: return "Pending";
    case NodeStatus::kTrusted: return "Trusted";
    case NodeStatus::kRetiring: return "Retiring";
    case NodeStatus::kRetired: return "Retired";
  }
  return "?";
}

Result<NodeStatus> NodeStatusFromName(const std::string& name) {
  if (name == "Pending") return NodeStatus::kPending;
  if (name == "Trusted") return NodeStatus::kTrusted;
  if (name == "Retiring") return NodeStatus::kRetiring;
  if (name == "Retired") return NodeStatus::kRetired;
  return Status::InvalidArgument("unknown node status " + name);
}

json::Value NodeInfo::ToJson() const {
  json::Object o;
  o["node_id"] = node_id;
  o["status"] = NodeStatusName(status);
  o["cert"] = HexEncode(cert.Serialize());
  o["code_id"] = code_id;
  o["host"] = host;
  return json::Value(std::move(o));
}

Result<NodeInfo> NodeInfo::FromJson(const json::Value& j) {
  NodeInfo info;
  info.node_id = j.GetString("node_id");
  ASSIGN_OR_RETURN(info.status, NodeStatusFromName(j.GetString("status")));
  ASSIGN_OR_RETURN(Bytes cert_bytes, HexField(j, "cert"));
  ASSIGN_OR_RETURN(info.cert, crypto::Certificate::Deserialize(cert_bytes));
  info.code_id = j.GetString("code_id");
  info.host = j.GetString("host");
  return info;
}

const char* ServiceStatusName(ServiceStatus s) {
  switch (s) {
    case ServiceStatus::kOpening: return "Opening";
    case ServiceStatus::kOpen: return "Open";
    case ServiceStatus::kRecovering: return "Recovering";
  }
  return "?";
}

json::Value ServiceInfo::ToJson() const {
  json::Object o;
  o["status"] = ServiceStatusName(status);
  o["cert"] = HexEncode(cert);
  o["previous_identity"] = previous_identity;
  return json::Value(std::move(o));
}

Result<ServiceInfo> ServiceInfo::FromJson(const json::Value& j) {
  ServiceInfo info;
  std::string status = j.GetString("status");
  if (status == "Opening") {
    info.status = ServiceStatus::kOpening;
  } else if (status == "Open") {
    info.status = ServiceStatus::kOpen;
  } else if (status == "Recovering") {
    info.status = ServiceStatus::kRecovering;
  } else {
    return Status::InvalidArgument("unknown service status " + status);
  }
  ASSIGN_OR_RETURN(info.cert, HexField(j, "cert"));
  info.previous_identity = j.GetString("previous_identity");
  return info;
}

json::Value MemberInfo::ToJson() const {
  json::Object o;
  o["cert"] = HexEncode(cert);
  o["encryption_key"] =
      HexEncode(ByteSpan(encryption_key.data(), encryption_key.size()));
  return json::Value(std::move(o));
}

Result<MemberInfo> MemberInfo::FromJson(const json::Value& j) {
  MemberInfo info;
  ASSIGN_OR_RETURN(info.cert, HexField(j, "cert"));
  ASSIGN_OR_RETURN(Bytes ek, HexField(j, "encryption_key"));
  if (ek.size() != info.encryption_key.size()) {
    return Status::InvalidArgument("member record: bad encryption key size");
  }
  std::memcpy(info.encryption_key.data(), ek.data(), ek.size());
  return info;
}

json::Value UserInfo::ToJson() const {
  json::Object o;
  o["cert"] = HexEncode(cert);
  return json::Value(std::move(o));
}

Result<UserInfo> UserInfo::FromJson(const json::Value& j) {
  UserInfo info;
  ASSIGN_OR_RETURN(info.cert, HexField(j, "cert"));
  return info;
}

const char* ProposalStateName(ProposalState s) {
  switch (s) {
    case ProposalState::kOpen: return "Open";
    case ProposalState::kAccepted: return "Accepted";
    case ProposalState::kRejected: return "Rejected";
    case ProposalState::kDropped: return "Dropped";
  }
  return "?";
}

json::Value ProposalInfo::ToJson() const {
  json::Object o;
  o["proposer_id"] = proposer_id;
  o["state"] = ProposalStateName(state);
  json::Object ballots_json;
  for (const auto& [member, ballot] : ballots) ballots_json[member] = ballot;
  o["ballots"] = std::move(ballots_json);
  if (!final_votes.empty()) {
    json::Object votes_json;
    for (const auto& [member, vote] : final_votes) votes_json[member] = vote;
    o["final_votes"] = std::move(votes_json);
  }
  return json::Value(std::move(o));
}

Result<ProposalInfo> ProposalInfo::FromJson(const json::Value& j) {
  ProposalInfo info;
  info.proposer_id = j.GetString("proposer_id");
  std::string state = j.GetString("state");
  if (state == "Open") {
    info.state = ProposalState::kOpen;
  } else if (state == "Accepted") {
    info.state = ProposalState::kAccepted;
  } else if (state == "Rejected") {
    info.state = ProposalState::kRejected;
  } else if (state == "Dropped") {
    info.state = ProposalState::kDropped;
  } else {
    return Status::InvalidArgument("unknown proposal state " + state);
  }
  const json::Value* ballots = j.Get("ballots");
  if (ballots != nullptr && ballots->is_object()) {
    for (const auto& [member, ballot] : ballots->AsObject()) {
      if (ballot.is_string()) info.ballots[member] = ballot.AsString();
    }
  }
  const json::Value* votes = j.Get("final_votes");
  if (votes != nullptr && votes->is_object()) {
    for (const auto& [member, vote] : votes->AsObject()) {
      if (vote.is_bool()) info.final_votes[member] = vote.AsBool();
    }
  }
  return info;
}

Result<json::Value> ReadRecord(kv::MapHandle* handle, std::string_view key) {
  auto raw = handle->GetStr(key);
  if (!raw.has_value()) {
    return Status::NotFound("record not found: " + std::string(key));
  }
  return json::Parse(*raw);
}

void WriteRecord(kv::MapHandle* handle, std::string_view key,
                 const json::Value& record) {
  handle->PutStr(key, record.Dump());
}

}  // namespace ccf::gov
