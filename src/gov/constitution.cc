#include "gov/constitution.h"

#include "kv/tables.h"

namespace ccf::gov {

using script::Interpreter;
using script::NativeFn;
using script::Value;

void BindKvNatives(Interpreter* interp, kv::Tx* tx, bool read_only) {
  auto handle = [tx](const Value& map) { return tx->Handle(map.AsString()); };

  interp->SetGlobal(
      "kv_get", Value(NativeFn([handle](std::vector<Value>& args)
                                   -> Result<Value> {
        if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
          return Status::InvalidArgument("kv_get(map, key)");
        }
        auto v = handle(args[0])->GetStr(args[1].AsString());
        if (!v.has_value()) return Value();
        return Value(*v);
      })));
  interp->SetGlobal(
      "kv_has", Value(NativeFn([handle](std::vector<Value>& args)
                                   -> Result<Value> {
        if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
          return Status::InvalidArgument("kv_has(map, key)");
        }
        return Value(handle(args[0])->HasStr(args[1].AsString()));
      })));
  interp->SetGlobal(
      "kv_size", Value(NativeFn([handle](std::vector<Value>& args)
                                    -> Result<Value> {
        if (args.size() != 1 || !args[0].is_string()) {
          return Status::InvalidArgument("kv_size(map)");
        }
        return Value(handle(args[0])->Size());
      })));
  interp->SetGlobal(
      "kv_foreach",
      Value(NativeFn([handle, interp](std::vector<Value>& args)
                         -> Result<Value> {
        if (args.size() != 2 || !args[0].is_string() ||
            !args[1].is_callable()) {
          return Status::InvalidArgument("kv_foreach(map, fn)");
        }
        Status status = Status::Ok();
        handle(args[0])->Foreach([&](const Bytes& k, const Bytes& v) {
          auto r = interp->CallValue(args[1],
                                     {Value(ToString(k)), Value(ToString(v))});
          if (!r.ok()) {
            status = r.status();
            return false;
          }
          // Returning false stops iteration.
          return !(r->is_bool() && !r->AsBool());
        });
        RETURN_IF_ERROR(status);
        return Value();
      })));

  auto mutating_guard = [read_only]() -> Status {
    if (read_only) {
      return Status::PermissionDenied("kv: write from read-only context");
    }
    return Status::Ok();
  };
  interp->SetGlobal(
      "kv_put",
      Value(NativeFn([handle, mutating_guard](std::vector<Value>& args)
                         -> Result<Value> {
        RETURN_IF_ERROR(mutating_guard());
        if (args.size() != 3 || !args[0].is_string() || !args[1].is_string() ||
            !args[2].is_string()) {
          return Status::InvalidArgument("kv_put(map, key, value)");
        }
        handle(args[0])->PutStr(args[1].AsString(), args[2].AsString());
        return Value();
      })));
  interp->SetGlobal(
      "kv_remove",
      Value(NativeFn([handle, mutating_guard](std::vector<Value>& args)
                         -> Result<Value> {
        RETURN_IF_ERROR(mutating_guard());
        if (args.size() != 2 || !args[0].is_string() || !args[1].is_string()) {
          return Status::InvalidArgument("kv_remove(map, key)");
        }
        handle(args[0])->RemoveStr(args[1].AsString());
        return Value();
      })));
  interp->SetGlobal("fail",
                    Value(NativeFn([](std::vector<Value>& args)
                                       -> Result<Value> {
                      std::string msg = "constitution failure";
                      if (!args.empty()) msg = args[0].ToDisplayString();
                      return Status::FailedPrecondition(msg);
                    })));
}

namespace {

// Heap-allocated: natives capture the Interpreter pointer, so it must not
// move after binding.
Result<std::unique_ptr<Interpreter>> LoadedEngine(const std::string& source,
                                                  kv::Tx* tx,
                                                  bool read_only) {
  auto interp = std::make_unique<Interpreter>();
  BindKvNatives(interp.get(), tx, read_only);
  ASSIGN_OR_RETURN(auto program, script::Compile(source));
  auto run = interp->Run(program);
  RETURN_IF_ERROR(run.status());
  return interp;
}

}  // namespace

Result<std::string> ConstitutionEngine::CurrentSource(kv::Tx* tx) {
  auto src = tx->Handle(kv::tables::kConstitution)
                 ->GetStr(kv::tables::kCurrentKey);
  if (!src.has_value()) {
    return Status::NotFound("no constitution installed");
  }
  return *src;
}

Status ConstitutionEngine::Validate(const std::string& source,
                                    const json::Value& proposal, kv::Tx* tx) {
  ASSIGN_OR_RETURN(auto interp, LoadedEngine(source, tx, /*read_only=*/true));
  if (interp->GetGlobal("validate") == nullptr) return Status::Ok();
  auto r = interp->Call("validate", {Value::FromJson(proposal)});
  RETURN_IF_ERROR(r.status());
  if (r->is_string() && !r->AsString().empty()) {
    return Status::InvalidArgument("proposal invalid: " + r->AsString());
  }
  return Status::Ok();
}

Result<bool> ConstitutionEngine::EvalBallot(const std::string& ballot_source,
                                            const json::Value& proposal,
                                            const std::string& proposer_id,
                                            kv::Tx* tx) {
  ASSIGN_OR_RETURN(auto interp,
                   LoadedEngine(ballot_source, tx, /*read_only=*/true));
  auto r =
      interp->Call("vote", {Value::FromJson(proposal), Value(proposer_id)});
  RETURN_IF_ERROR(r.status());
  return r->Truthy();
}

Result<std::string> ConstitutionEngine::Resolve(
    const std::string& source, const json::Value& proposal,
    const std::string& proposer_id, const std::map<std::string, bool>& votes,
    kv::Tx* tx) {
  ASSIGN_OR_RETURN(auto interp, LoadedEngine(source, tx, /*read_only=*/true));
  script::Object votes_obj;
  for (const auto& [member, vote] : votes) votes_obj[member] = Value(vote);
  auto r = interp->Call("resolve", {Value::FromJson(proposal),
                                    Value(proposer_id),
                                    Value(std::move(votes_obj))});
  RETURN_IF_ERROR(r.status());
  if (!r->is_string()) {
    return Status::Internal("constitution resolve returned non-string");
  }
  std::string state = r->AsString();
  if (state != "Open" && state != "Accepted" && state != "Rejected") {
    return Status::Internal("constitution resolve returned '" + state + "'");
  }
  return state;
}

Status ConstitutionEngine::Apply(const std::string& source,
                                 const json::Value& proposal,
                                 const std::string& proposal_id, kv::Tx* tx) {
  ASSIGN_OR_RETURN(auto interp, LoadedEngine(source, tx, /*read_only=*/false));
  auto r = interp->Call("apply", {Value::FromJson(proposal),
                                  Value(proposal_id)});
  return r.status();
}

const std::string& DefaultConstitution() {
  static const std::string source = R"CCL(
// Default constitution (paper §5.1): a proposal is accepted once a strict
// majority of consortium members vote for it, rejected once a strict
// majority against it is inevitable.

function member_count() {
  return kv_size('public:ccf.gov.members.certs');
}

function resolve(proposal, proposer_id, votes) {
  let total = member_count();
  let votes_for = 0;
  let votes_against = 0;
  for (let m of votes) {
    if (votes[m]) { votes_for += 1; } else { votes_against += 1; }
  }
  if (votes_for * 2 > total) { return 'Accepted'; }
  if (votes_against * 2 >= total) { return 'Rejected'; }
  return 'Open';
}

function validate(proposal) {
  if (typeof(proposal.actions) != 'array') { return 'missing actions'; }
  for (let action of proposal.actions) {
    if (typeof(action.name) != 'string') { return 'action missing name'; }
    if (action.name == 'add_node_code' &&
        typeof(action.args.code_id) != 'string') {
      return 'add_node_code: code_id must be a string';
    }
    if (action.name == 'set_recovery_threshold' &&
        typeof(action.args.threshold) != 'number') {
      return 'set_recovery_threshold: threshold must be a number';
    }
  }
  return '';
}

function set_node_status(node_id, status) {
  let raw = kv_get('public:ccf.gov.nodes.info', node_id);
  if (raw == null) { fail('no such node: ' + node_id); }
  let info = json_parse(raw);
  info.status = status;
  kv_put('public:ccf.gov.nodes.info', node_id, json_stringify(info));
}

function apply(proposal, proposal_id) {
  for (let action of proposal.actions) {
    let args = action.args;
    if (action.name == 'set_user') {
      kv_put('public:ccf.gov.users.certs', args.user_id,
             json_stringify({cert: args.cert}));
    } else if (action.name == 'remove_user') {
      kv_remove('public:ccf.gov.users.certs', args.user_id);
    } else if (action.name == 'set_member') {
      kv_put('public:ccf.gov.members.certs', args.member_id,
             json_stringify({cert: args.cert,
                             encryption_key: args.encryption_key}));
    } else if (action.name == 'add_node_code') {
      kv_put('public:ccf.gov.nodes.code_ids', args.code_id, 'AllowedToJoin');
    } else if (action.name == 'remove_node_code') {
      kv_remove('public:ccf.gov.nodes.code_ids', args.code_id);
    } else if (action.name == 'transition_node_to_trusted') {
      set_node_status(args.node_id, 'Trusted');
    } else if (action.name == 'remove_node') {
      set_node_status(args.node_id, 'Retiring');
    } else if (action.name == 'transition_service_to_open') {
      let raw = kv_get('public:ccf.gov.service.info', 'current');
      if (raw == null) { fail('no service info'); }
      let info = json_parse(raw);
      info.status = 'Open';
      kv_put('public:ccf.gov.service.info', 'current', json_stringify(info));
    } else if (action.name == 'set_constitution') {
      kv_put('public:ccf.gov.constitution', 'current', args.constitution);
    } else if (action.name == 'set_js_app') {
      kv_put('public:ccf.gov.modules', 'app', args.module);
      for (let key of args.endpoints) {
        kv_put('public:ccf.gov.endpoints', key,
               json_stringify(args.endpoints[key]));
      }
    } else if (action.name == 'set_recovery_threshold') {
      kv_put('public:ccf.internal.config', 'recovery_threshold',
             str(args.threshold));
    } else {
      fail('unknown governance action: ' + action.name);
    }
  }
  return true;
}
)CCL";
  return source;
}

}  // namespace ccf::gov
