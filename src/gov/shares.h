// Recovery shares (paper §5.2).
//
// The ledger secret is wrapped by a fresh "ledger secret wrapping key";
// the wrapped secret is recorded in the ledger. The wrapping key is split
// k-of-n with Shamir sharing; each share is ECIES-encrypted to one
// consortium member's public encryption key and recorded in the ledger.
// During disaster recovery, members decrypt and submit their shares; once
// k arrive, the enclave reconstructs the wrapping key, unwraps the ledger
// secret, and decrypts the private ledger state.

#ifndef CCF_GOV_SHARES_H_
#define CCF_GOV_SHARES_H_

#include <map>
#include <string>

#include "crypto/hmac.h"
#include "crypto/sign.h"
#include "kv/encryptor.h"
#include "kv/store.h"

namespace ccf::gov {

class ShareManager {
 public:
  // (Re)wraps `ledger_secret` and issues encrypted shares to the current
  // members, using the recovery threshold from the service config
  // (default: majority of members). Writes the ledger_secret and
  // recovery_shares maps.
  static Status ReissueShares(kv::Tx* tx, const kv::LedgerSecret& secret,
                              crypto::Drbg* drbg);

  // Member side: decrypts this member's share from the restored state.
  static Result<Bytes> ExtractMemberShare(kv::Tx* tx,
                                          const std::string& member_id,
                                          const crypto::KeyPair& member_key);

  // Service side during recovery: combines >= threshold submitted
  // (plaintext) shares, unwraps and returns the ledger secret.
  static Result<kv::LedgerSecret> RecoverLedgerSecret(
      kv::Tx* tx, const std::map<std::string, Bytes>& submitted_shares);

  // Current recovery threshold (k). Defaults to a strict majority of the
  // members when unset.
  static int RecoveryThreshold(kv::Tx* tx);
};

}  // namespace ccf::gov

#endif  // CCF_GOV_SHARES_H_
