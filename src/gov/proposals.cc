#include "gov/proposals.h"

#include "common/hex.h"
#include "crypto/sha256.h"
#include "gov/constitution.h"
#include "kv/tables.h"

namespace ccf::gov {

bool IsMember(kv::Tx* tx, const std::string& member_id) {
  return tx->Handle(kv::tables::kMembersCerts)->HasStr(member_id);
}

void ProposalManager::RecordHistory(kv::Tx* tx, const std::string& member_id,
                                    ByteSpan signed_request) {
  // History key: digest of the signed request; value records who and what.
  auto digest = crypto::Sha256::Hash(signed_request);
  json::Object entry;
  entry["member_id"] = member_id;
  entry["request"] = HexEncode(signed_request);
  tx->Handle(kv::tables::kGovHistory)
      ->PutStr(HexEncode(ByteSpan(digest.data(), digest.size())),
               json::Value(std::move(entry)).Dump());
}

Result<ProposalOutcome> ProposalManager::Submit(kv::Tx* tx,
                                                const std::string& member_id,
                                                const json::Value& proposal,
                                                ByteSpan signed_request) {
  if (!IsMember(tx, member_id)) {
    return Status::PermissionDenied("not a consortium member: " + member_id);
  }
  ASSIGN_OR_RETURN(std::string constitution,
                   ConstitutionEngine::CurrentSource(tx));
  RETURN_IF_ERROR(ConstitutionEngine::Validate(constitution, proposal, tx));

  // Proposal ID: digest of content + proposer (stable, collision-free).
  Bytes id_material = ToBytes(proposal.Dump() + "|" + member_id);
  auto digest = crypto::Sha256::Hash(id_material);
  std::string proposal_id =
      HexEncode(ByteSpan(digest.data(), digest.size())).substr(0, 16);

  kv::MapHandle* proposals = tx->Handle(kv::tables::kProposals);
  if (proposals->HasStr(proposal_id)) {
    return Status::AlreadyExists("proposal already exists: " + proposal_id);
  }
  proposals->PutStr(proposal_id, proposal.Dump());

  ProposalInfo info;
  info.proposer_id = member_id;
  info.state = ProposalState::kOpen;
  WriteRecord(tx->Handle(kv::tables::kProposalsInfo), proposal_id,
              info.ToJson());
  RecordHistory(tx, member_id, signed_request);

  return TryResolve(tx, proposal_id);
}

Result<ProposalOutcome> ProposalManager::Vote(kv::Tx* tx,
                                              const std::string& member_id,
                                              const std::string& proposal_id,
                                              const std::string& ballot_source,
                                              ByteSpan signed_request) {
  if (!IsMember(tx, member_id)) {
    return Status::PermissionDenied("not a consortium member: " + member_id);
  }
  ASSIGN_OR_RETURN(ProposalInfo info, GetInfo(tx, proposal_id));
  if (info.state != ProposalState::kOpen) {
    return Status::FailedPrecondition(
        "proposal is not open: " + proposal_id + " is " +
        ProposalStateName(info.state));
  }
  info.ballots[member_id] = ballot_source;
  WriteRecord(tx->Handle(kv::tables::kProposalsInfo), proposal_id,
              info.ToJson());
  RecordHistory(tx, member_id, signed_request);
  return TryResolve(tx, proposal_id);
}

Status ProposalManager::Withdraw(kv::Tx* tx, const std::string& member_id,
                                 const std::string& proposal_id) {
  ASSIGN_OR_RETURN(ProposalInfo info, GetInfo(tx, proposal_id));
  if (info.proposer_id != member_id) {
    return Status::PermissionDenied("only the proposer may withdraw");
  }
  if (info.state != ProposalState::kOpen) {
    return Status::FailedPrecondition("proposal is not open");
  }
  info.state = ProposalState::kDropped;
  WriteRecord(tx->Handle(kv::tables::kProposalsInfo), proposal_id,
              info.ToJson());
  return Status::Ok();
}

Result<json::Value> ProposalManager::GetProposal(
    kv::Tx* tx, const std::string& proposal_id) {
  auto raw = tx->Handle(kv::tables::kProposals)->GetStr(proposal_id);
  if (!raw.has_value()) {
    return Status::NotFound("no such proposal: " + proposal_id);
  }
  return json::Parse(*raw);
}

Result<ProposalInfo> ProposalManager::GetInfo(kv::Tx* tx,
                                              const std::string& proposal_id) {
  ASSIGN_OR_RETURN(json::Value j,
                   ReadRecord(tx->Handle(kv::tables::kProposalsInfo),
                              proposal_id));
  return ProposalInfo::FromJson(j);
}

Result<ProposalOutcome> ProposalManager::TryResolve(
    kv::Tx* tx, const std::string& proposal_id) {
  ASSIGN_OR_RETURN(json::Value proposal, GetProposal(tx, proposal_id));
  ASSIGN_OR_RETURN(ProposalInfo info, GetInfo(tx, proposal_id));
  ASSIGN_OR_RETURN(std::string constitution,
                   ConstitutionEngine::CurrentSource(tx));

  // Evaluate each member's ballot against the proposal (paper §5.1: a
  // ballot is "conditional on the proposal itself and the current state of
  // the key-value store").
  std::map<std::string, bool> votes;
  for (const auto& [member, ballot] : info.ballots) {
    ASSIGN_OR_RETURN(bool vote,
                     ConstitutionEngine::EvalBallot(ballot, proposal,
                                                    info.proposer_id, tx));
    votes[member] = vote;
  }

  ASSIGN_OR_RETURN(std::string state,
                   ConstitutionEngine::Resolve(constitution, proposal,
                                               info.proposer_id, votes, tx));
  ProposalOutcome outcome;
  outcome.proposal_id = proposal_id;
  if (state == "Accepted") {
    RETURN_IF_ERROR(ConstitutionEngine::Apply(constitution, proposal,
                                              proposal_id, tx));
    info.state = ProposalState::kAccepted;
  } else if (state == "Rejected") {
    info.state = ProposalState::kRejected;
  } else {
    info.state = ProposalState::kOpen;
  }
  outcome.state = info.state;
  if (info.state != ProposalState::kOpen) {
    info.final_votes = votes;  // recorded like the paper's Listing 2
  }
  WriteRecord(tx->Handle(kv::tables::kProposalsInfo), proposal_id,
              info.ToJson());
  return outcome;
}

}  // namespace ccf::gov
