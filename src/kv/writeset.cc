#include "kv/writeset.h"

#include "common/buffer.h"

namespace ccf::kv {

bool WriteSet::empty() const {
  for (const auto& [name, writes] : maps) {
    if (!writes.empty()) return false;
  }
  return true;
}

size_t WriteSet::num_writes() const {
  size_t n = 0;
  for (const auto& [name, writes] : maps) n += writes.size();
  return n;
}

bool WriteSet::Overlaps(const WriteSet& other) const {
  for (const auto& [name, writes] : maps) {
    auto it = other.maps.find(name);
    if (it == other.maps.end()) continue;
    // Walk the smaller side, probe the larger: both are sorted maps.
    const MapWrites& probe = writes.size() <= it->second.size()
                                 ? writes
                                 : it->second;
    const MapWrites& lookup = writes.size() <= it->second.size()
                                  ? it->second
                                  : writes;
    for (const auto& [key, value] : probe) {
      if (lookup.count(key) > 0) return true;
    }
  }
  return false;
}

namespace {

Bytes SerializeFiltered(const WriteSet& ws, bool want_public) {
  BufWriter w;
  uint32_t count = 0;
  for (const auto& [name, writes] : ws.maps) {
    if (IsPublicMap(name) == want_public && !writes.empty()) ++count;
  }
  w.U32(count);
  for (const auto& [name, writes] : ws.maps) {
    if (IsPublicMap(name) != want_public || writes.empty()) continue;
    w.Str(name);
    w.U32(static_cast<uint32_t>(writes.size()));
    for (const auto& [key, value] : writes) {
      w.Blob(key);
      w.Bool(value.has_value());
      if (value.has_value()) w.Blob(*value);
    }
  }
  return w.Take();
}

}  // namespace

Bytes WriteSet::SerializePublic() const {
  return SerializeFiltered(*this, /*want_public=*/true);
}

Bytes WriteSet::SerializePrivate() const {
  return SerializeFiltered(*this, /*want_public=*/false);
}

Status WriteSet::ParseInto(ByteSpan data, WriteSet* out) {
  if (data.empty()) return Status::Ok();
  BufReader r(data);
  ASSIGN_OR_RETURN(uint32_t map_count, r.U32());
  for (uint32_t m = 0; m < map_count; ++m) {
    ASSIGN_OR_RETURN(std::string name, r.Str());
    ASSIGN_OR_RETURN(uint32_t write_count, r.U32());
    MapWrites& writes = out->maps[name];
    for (uint32_t i = 0; i < write_count; ++i) {
      ASSIGN_OR_RETURN(Bytes key, r.Blob());
      ASSIGN_OR_RETURN(bool has_value, r.Bool());
      if (has_value) {
        ASSIGN_OR_RETURN(Bytes value, r.Blob());
        writes[std::move(key)] = std::move(value);
      } else {
        writes[std::move(key)] = std::nullopt;
      }
    }
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("writeset: trailing bytes");
  }
  return Status::Ok();
}

Result<WriteSet> WriteSet::Parse(ByteSpan public_part, ByteSpan private_part) {
  WriteSet ws;
  RETURN_IF_ERROR(ParseInto(public_part, &ws));
  RETURN_IF_ERROR(ParseInto(private_part, &ws));
  return ws;
}

}  // namespace ccf::kv
