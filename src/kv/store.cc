#include "kv/store.h"

#include <cassert>

namespace ccf::kv {

// ----------------------------------------------------------------- Handle

std::optional<Bytes> MapHandle::Get(const Bytes& key) {
  auto wit = writes_.find(key);
  if (wit != writes_.end()) {
    return wit->second;  // own write (or own removal -> nullopt)
  }
  if (base_ == nullptr) {
    reads_[key] = 0;
    return std::nullopt;
  }
  const VersionedValue* vv = base_->data.Get(key);
  if (vv == nullptr) {
    reads_[key] = 0;
    return std::nullopt;
  }
  reads_[key] = vv->version;
  return vv->value;
}

void MapHandle::Put(const Bytes& key, Bytes value) {
  writes_[key] = std::move(value);
}

void MapHandle::Remove(const Bytes& key) { writes_[key] = std::nullopt; }

void MapHandle::Foreach(
    const std::function<bool(const Bytes&, const Bytes&)>& fn) {
  read_whole_map_ = true;
  bool keep_going = true;
  if (base_ != nullptr) {
    base_->data.ForEach([&](const Bytes& key, const VersionedValue& vv) {
      if (writes_.count(key) > 0) return true;  // overlaid below
      keep_going = fn(key, vv.value);
      return keep_going;
    });
  }
  if (!keep_going) return;
  for (const auto& [key, value] : writes_) {
    if (!value.has_value()) continue;  // removed
    if (!fn(key, *value)) return;
  }
}

size_t MapHandle::Size() {
  read_whole_map_ = true;
  size_t n = base_ != nullptr ? base_->data.size() : 0;
  for (const auto& [key, value] : writes_) {
    bool in_base =
        base_ != nullptr && base_->data.Get(key) != nullptr;
    if (value.has_value() && !in_base) ++n;
    if (!value.has_value() && in_base) --n;
  }
  return n;
}

std::optional<std::string> MapHandle::GetStr(std::string_view key) {
  auto v = Get(ToBytes(key));
  if (!v.has_value()) return std::nullopt;
  return ToString(*v);
}

void MapHandle::PutStr(std::string_view key, std::string_view value) {
  Put(ToBytes(key), ToBytes(value));
}

void MapHandle::RemoveStr(std::string_view key) { Remove(ToBytes(key)); }

// --------------------------------------------------------------------- Tx

MapHandle* Tx::Handle(const std::string& map_name) {
  auto it = handles_.find(map_name);
  if (it != handles_.end()) return it->second.get();
  const MapEntry* base = base_.maps.Get(map_name);
  auto handle =
      std::unique_ptr<MapHandle>(new MapHandle(map_name, base));
  MapHandle* ptr = handle.get();
  handles_[map_name] = std::move(handle);
  return ptr;
}

bool Tx::has_writes() const {
  for (const auto& [name, handle] : handles_) {
    if (handle->has_writes()) return true;
  }
  return false;
}

WriteSet Tx::ExtractWriteSet() const {
  WriteSet ws;
  for (const auto& [name, handle] : handles_) {
    if (!handle->writes_.empty()) {
      ws.maps[name] = handle->writes_;
    }
  }
  return ws;
}

// ------------------------------------------------------------------ Store

Result<Tx> Store::BeginTxAt(uint64_t seqno) const {
  ASSIGN_OR_RETURN(State state, StateAt(seqno));
  return Tx(std::move(state), seqno);
}

Result<State> Store::StateAt(uint64_t seqno) const {
  if (seqno == current_seqno_) return current_;
  if (seqno == committed_seqno_) return committed_state_;
  if (seqno < committed_seqno_ || seqno > current_seqno_) {
    return Status::NotFound("kv: version " + std::to_string(seqno) +
                            " not retained");
  }
  auto it = retained_.find(seqno);
  if (it != retained_.end()) return it->second;
  // The root was evicted under the retention cap; replay write sets from
  // the nearest retained root (or the committed state) up to `seqno`.
  State state = committed_state_;
  uint64_t from = committed_seqno_;
  auto next = retained_.lower_bound(seqno);
  if (next != retained_.begin()) {
    auto prev = std::prev(next);
    if (prev->first < seqno) {
      state = prev->second;
      from = prev->first;
    }
  }
  for (uint64_t s = from + 1; s <= seqno; ++s) {
    auto ws = retained_writes_.find(s);
    if (ws == retained_writes_.end()) {
      return Status::Internal("kv: missing write set for replay at " +
                              std::to_string(s));
    }
    ApplyWritesTo(&state, ws->second, s);
  }
  return state;
}

Status Store::ValidateReads(const Tx& tx) const {
  for (const auto& [name, handle] : tx.handles_) {
    const MapEntry* current_map = current_.maps.Get(name);
    if (handle->read_whole_map_) {
      uint64_t current_version =
          current_map != nullptr ? current_map->version : 0;
      if (current_version > tx.base_seqno_) {
        return Status::Aborted("kv: conflict on map " + name);
      }
    }
    for (const auto& [key, seen_version] : handle->reads_) {
      const VersionedValue* vv =
          current_map != nullptr ? current_map->data.Get(key) : nullptr;
      uint64_t current_version = vv != nullptr ? vv->version : 0;
      if (current_version != seen_version) {
        return Status::Aborted("kv: conflict on key in map " + name);
      }
    }
  }
  return Status::Ok();
}

void Store::ApplyWritesTo(State* state, const WriteSet& ws, uint64_t seqno) {
  for (const auto& [name, writes] : ws.maps) {
    if (writes.empty()) continue;
    const MapEntry* existing = state->maps.Get(name);
    MapEntry entry = existing != nullptr ? *existing : MapEntry{};
    for (const auto& [key, value] : writes) {
      if (value.has_value()) {
        entry.data = entry.data.Put(key, VersionedValue{*value, seqno});
      } else {
        entry.data = entry.data.Remove(key);
      }
    }
    entry.version = seqno;
    state->maps = state->maps.Put(name, entry);
  }
}

void Store::ApplyWrites(const WriteSet& ws, uint64_t seqno) {
  ApplyWritesTo(&current_, ws, seqno);
  current_seqno_ = seqno;
  retained_[seqno] = current_;
  retained_writes_[seqno] = ws;
  EnforceRootCap();
}

void Store::SetRetainedRootCap(size_t cap) {
  retained_root_cap_ = cap;
  EnforceRootCap();
}

void Store::EnforceRootCap() {
  if (retained_root_cap_ == 0) return;
  // Keep the newest roots: rollback and compaction targets cluster near
  // the head of the log (a new primary rolls back to its last signature,
  // compaction follows commit), so old roots are the cheapest to rebuild.
  while (retained_.size() > retained_root_cap_) {
    retained_.erase(retained_.begin());
  }
}

Result<CommitResult> Store::CommitTx(Tx* tx) {
  CommitResult result;
  result.claims = tx->claims();
  if (!tx->has_writes()) {
    // Read-only fast path (paper §3.4): no ledger entry, the response
    // carries the ID of the last applied transaction.
    result.seqno = current_seqno_;
    return result;
  }
  if (tx->base_seqno_ != current_seqno_) {
    RETURN_IF_ERROR(ValidateReads(*tx));
  }
  result.seqno = current_seqno_ + 1;
  result.write_set = tx->ExtractWriteSet();
  ApplyWrites(result.write_set, result.seqno);
  return result;
}

Status Store::ApplyWriteSet(const WriteSet& ws, uint64_t seqno) {
  if (seqno != current_seqno_ + 1) {
    return Status::FailedPrecondition(
        "kv: non-contiguous apply at " + std::to_string(seqno) +
        ", current " + std::to_string(current_seqno_));
  }
  ApplyWrites(ws, seqno);
  return Status::Ok();
}

Status Store::Rollback(uint64_t seqno) {
  if (seqno < committed_seqno_) {
    return Status::InvalidArgument("kv: cannot roll back below commit");
  }
  if (seqno >= current_seqno_) return Status::Ok();
  ASSIGN_OR_RETURN(State state, StateAt(seqno));
  current_ = std::move(state);
  current_seqno_ = seqno;
  retained_.erase(retained_.upper_bound(seqno), retained_.end());
  retained_writes_.erase(retained_writes_.upper_bound(seqno),
                         retained_writes_.end());
  return Status::Ok();
}

Status Store::Compact(uint64_t seqno) {
  if (seqno > current_seqno_) {
    return Status::InvalidArgument("kv: cannot compact beyond current");
  }
  if (seqno <= committed_seqno_) return Status::Ok();
  ASSIGN_OR_RETURN(State state, StateAt(seqno));
  committed_state_ = std::move(state);
  committed_seqno_ = seqno;
  retained_.erase(retained_.begin(), retained_.upper_bound(seqno));
  retained_writes_.erase(retained_writes_.begin(),
                         retained_writes_.upper_bound(seqno));
  return Status::Ok();
}

std::optional<Bytes> Store::Get(const std::string& map_name,
                                const Bytes& key) const {
  const MapEntry* map = current_.maps.Get(map_name);
  if (map == nullptr) return std::nullopt;
  const VersionedValue* vv = map->data.Get(key);
  if (vv == nullptr) return std::nullopt;
  return vv->value;
}

std::optional<std::string> Store::GetStr(const std::string& map_name,
                                         std::string_view key) const {
  auto v = Get(map_name, ToBytes(key));
  if (!v.has_value()) return std::nullopt;
  return ToString(*v);
}

void Store::InstallState(State state, uint64_t seqno) {
  current_ = state;
  committed_state_ = std::move(state);
  current_seqno_ = seqno;
  committed_seqno_ = seqno;
  retained_.clear();
  retained_writes_.clear();
}

}  // namespace ccf::kv
