// Snapshot serialization (paper §4.4: "nodes can begin from a snapshot and
// use the consensus layer to simply learn the transactions since").
//
// The serialized form is deterministic (maps and keys sorted), so every
// node producing a snapshot of the same version produces the same bytes,
// and its digest can be committed to a public map as snapshot evidence,
// making snapshots verifiable via receipts (paper §3.5).

#ifndef CCF_KV_SNAPSHOT_H_
#define CCF_KV_SNAPSHOT_H_

#include "common/status.h"
#include "crypto/sha256.h"
#include "kv/store.h"

namespace ccf::kv {

struct Snapshot {
  uint64_t seqno = 0;
  uint64_t view = 0;
  Bytes data;  // serialized State

  crypto::Sha256Digest Digest() const;
};

// Serializes a store state deterministically.
Bytes SerializeState(const State& state);
Result<State> DeserializeState(ByteSpan data);

// Captures the committed state of `store`.
Snapshot TakeSnapshot(const Store& store, uint64_t view);

// Installs a snapshot into `store` (replaces all state).
Status InstallSnapshot(const Snapshot& snapshot, Store* store);

// Splits a state by map visibility (writeset.h IsPublicMap): the returned
// state holds only the public (or only the private) maps. Used by the
// snapshot bundle, which ships public maps in plain text and seals the
// private maps with the ledger secret (node/snapshots.h).
State FilterState(const State& state, bool public_only);

// Re-joins two disjoint halves produced by FilterState. Maps present in
// both inputs are a FailedPrecondition (the halves were not disjoint).
Result<State> MergeStates(const State& a, const State& b);

}  // namespace ccf::kv

#endif  // CCF_KV_SNAPSHOT_H_
