// Ledger-secret encryption of private map updates (paper Table 1, §6.1).
//
// "Maps may be private, meaning their updates are encrypted before leaving
// the TEE and being appended to the ledger." The symmetric ledger secret is
// shared between all trusted nodes; the IV is derived from the transaction
// ID (unique per transaction), and the public half of the entry is bound in
// as additional authenticated data so the two halves cannot be mixed across
// transactions.

#ifndef CCF_KV_ENCRYPTOR_H_
#define CCF_KV_ENCRYPTOR_H_

#include <memory>

#include "common/bytes.h"
#include "common/status.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"

namespace ccf::kv {

// The symmetric ledger secret (paper Table 1).
struct LedgerSecret {
  Bytes key;  // 32 bytes

  static LedgerSecret Generate(crypto::Drbg* drbg) {
    return LedgerSecret{drbg->Generate(crypto::kAes256KeySize)};
  }
};

class TxEncryptor {
 public:
  explicit TxEncryptor(const LedgerSecret& secret);

  // Seals the serialized private write set of transaction (view, seqno).
  // `public_digest_aad` binds the ciphertext to the rest of the entry.
  Bytes Seal(uint64_t view, uint64_t seqno, ByteSpan plain,
             ByteSpan public_digest_aad) const;

  Result<Bytes> Open(uint64_t view, uint64_t seqno, ByteSpan sealed,
                     ByteSpan public_digest_aad) const;

 private:
  static Bytes MakeIv(uint64_t view, uint64_t seqno);
  static Bytes MakeAad(uint64_t view, uint64_t seqno, ByteSpan public_digest);

  crypto::AesGcm gcm_;
};

}  // namespace ccf::kv

#endif  // CCF_KV_ENCRYPTOR_H_
