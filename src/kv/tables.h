// Built-in map names (paper Table 3). All framework maps are public for
// transparency (auditable without ledger decryption); application maps are
// private by default.

#ifndef CCF_KV_TABLES_H_
#define CCF_KV_TABLES_H_

namespace ccf::kv::tables {

// Governance maps (public:ccf.gov.*).
inline constexpr char kUsersCerts[] = "public:ccf.gov.users.certs";
inline constexpr char kMembersCerts[] = "public:ccf.gov.members.certs";
inline constexpr char kMembersKeys[] = "public:ccf.gov.members_keys";
inline constexpr char kNodesInfo[] = "public:ccf.gov.nodes.info";
inline constexpr char kNodesCodeIds[] = "public:ccf.gov.nodes.code_ids";
inline constexpr char kServiceInfo[] = "public:ccf.gov.service.info";
inline constexpr char kConstitution[] = "public:ccf.gov.constitution";
inline constexpr char kModules[] = "public:ccf.gov.modules";
inline constexpr char kEndpoints[] = "public:ccf.gov.endpoints";
inline constexpr char kProposals[] = "public:ccf.gov.proposals";
inline constexpr char kProposalsInfo[] = "public:ccf.gov.proposals_info";
inline constexpr char kGovHistory[] = "public:ccf.gov.history";

// Internal maps (public:ccf.internal.*).
inline constexpr char kSignatures[] = "public:ccf.internal.signatures";
inline constexpr char kLedgerSecret[] = "public:ccf.internal.ledger_secret";
inline constexpr char kRecoveryShares[] =
    "public:ccf.internal.recovery_shares";
inline constexpr char kSnapshotEvidence[] =
    "public:ccf.internal.snapshot_evidence";
inline constexpr char kServiceConfig[] = "public:ccf.internal.config";

// Conventional singleton keys.
inline constexpr char kCurrentKey[] = "current";

}  // namespace ccf::kv::tables

#endif  // CCF_KV_TABLES_H_
