// Transactional key-value store over CHAMP maps (paper §3.3).
//
// The store holds a set of named maps. Application endpoints execute
// optimistically against the latest version; commits validate read sets and
// apply write sets atomically, producing one new store version per ledger
// transaction. Because every version is a persistent CHAMP root, the store
// retains all versions since the last compaction and can roll back an
// uncommitted suffix in O(1) after a view change (paper §4.2).
//
// Thread-compatibility: a Store is owned by one enclave thread. Tx objects
// capture an immutable snapshot and may be executed anywhere; CommitTx /
// ApplyWriteSet / Rollback / Compact must be serialized by the owner.

#ifndef CCF_KV_STORE_H_
#define CCF_KV_STORE_H_

#include <map>
#include <memory>
#include <optional>
#include <string>

#include "common/status.h"
#include "ds/champ.h"
#include "kv/writeset.h"

namespace ccf::kv {

struct VersionedValue {
  Bytes value;
  uint64_t version = 0;  // seqno of the transaction that wrote it
};

struct MapEntry {
  ds::ChampMap<Bytes, VersionedValue> data;
  uint64_t version = 0;  // seqno of the last write to this map
};

// One immutable store version. Cheap to copy (structural sharing).
struct State {
  ds::ChampMap<std::string, MapEntry> maps;
};

class Tx;

// Read/write access to one map within a transaction. Reads record the
// observed per-key version for optimistic validation; writes overlay the
// base state until commit.
class MapHandle {
 public:
  // Reads see the transaction's own writes first, then the base version.
  std::optional<Bytes> Get(const Bytes& key);
  bool Has(const Bytes& key) { return Get(key).has_value(); }
  void Put(const Bytes& key, Bytes value);
  void Remove(const Bytes& key);

  // Iterates over the merged view (base + overlay). Marks the whole map as
  // read, so any concurrent write to it conflicts. Callback returns false
  // to stop.
  void Foreach(const std::function<bool(const Bytes&, const Bytes&)>& fn);

  // Number of keys in the merged view (whole-map read).
  size_t Size();

  // String-typed conveniences (keys and values are raw bytes underneath).
  std::optional<std::string> GetStr(std::string_view key);
  void PutStr(std::string_view key, std::string_view value);
  void RemoveStr(std::string_view key);
  bool HasStr(std::string_view key) { return GetStr(key).has_value(); }

  bool has_writes() const { return !writes_.empty(); }

 private:
  friend class Tx;
  friend class Store;

  MapHandle(std::string name, const MapEntry* base)
      : name_(std::move(name)), base_(base) {}

  std::string name_;
  const MapEntry* base_;  // null if the map does not exist in the base
  MapWrites writes_;
  std::map<Bytes, uint64_t> reads_;  // key -> version observed (0 = absent)
  bool read_whole_map_ = false;
};

// A transaction executing against an immutable snapshot of the store.
class Tx {
 public:
  // Returns the handle for `map_name`, creating the map on first write.
  MapHandle* Handle(const std::string& map_name);

  uint64_t base_seqno() const { return base_seqno_; }
  bool has_writes() const;

  // Application-attached claims, covered by the transaction's receipt
  // (paper §3.5).
  void SetClaims(Bytes claims) { claims_ = std::move(claims); }
  const Bytes& claims() const { return claims_; }

 private:
  friend class Store;

  Tx(State base, uint64_t base_seqno)
      : base_(std::move(base)), base_seqno_(base_seqno) {}

  WriteSet ExtractWriteSet() const;

  State base_;
  uint64_t base_seqno_;
  Bytes claims_;
  std::map<std::string, std::unique_ptr<MapHandle>> handles_;
};

struct CommitResult {
  uint64_t seqno = 0;  // version the transaction was applied at
  WriteSet write_set;  // empty for read-only transactions
  Bytes claims;
};

class Store {
 public:
  Store() = default;

  // Begins a transaction against the latest applied version.
  Tx BeginTx() const { return Tx(current_, current_seqno_); }
  // Begins a transaction against a specific retained version (historical /
  // snapshot-consistent reads).
  Result<Tx> BeginTxAt(uint64_t seqno) const;

  // Optimistically commits: validates the read set against the latest
  // version and applies writes at seqno current+1. Returns ABORTED on
  // conflict — the caller re-executes the endpoint (paper §6.4: logic may
  // run multiple times, its transaction is applied exactly once).
  // Read-only transactions return the current seqno and an empty write set.
  Result<CommitResult> CommitTx(Tx* tx);

  // Re-validates a transaction's read set against the latest applied
  // version without committing: Ok when the transaction would still commit
  // cleanly, ABORTED naming the conflicting map otherwise. This is the
  // OCC conflict check CommitTx applies internally, exposed for the serial
  // commit point of batched execution (DESIGN.md §12) and for conflict
  // oracles in tests.
  Status CheckConflicts(const Tx& tx) const { return ValidateReads(tx); }

  // Applies a replicated write set (backup / replay path). `seqno` must be
  // current_seqno()+1.
  Status ApplyWriteSet(const WriteSet& ws, uint64_t seqno);

  // Discards all versions with seqno > `seqno` (must be >= committed).
  Status Rollback(uint64_t seqno);

  // Marks everything up to `seqno` as globally committed and drops the
  // per-version roots at or below it.
  Status Compact(uint64_t seqno);

  uint64_t current_seqno() const { return current_seqno_; }
  uint64_t committed_seqno() const { return committed_seqno_; }
  const State& current_state() const { return current_; }
  const State& committed_state() const { return committed_state_; }

  // Direct read of the latest version (no transaction bookkeeping).
  std::optional<Bytes> Get(const std::string& map_name,
                           const Bytes& key) const;
  std::optional<std::string> GetStr(const std::string& map_name,
                                    std::string_view key) const;

  // Snapshot support (see kv/snapshot.h for the serialized format).
  // Installs `state` as both committed and current at `seqno`.
  void InstallState(State state, uint64_t seqno);

  // Caps how many full State roots are retained between committed and
  // current. Older versions keep only their write set and are
  // reconstructed by replaying write sets when Rollback / BeginTxAt /
  // Compact needs them, so memory between signature intervals is bounded
  // by `cap` roots plus the (irreducible) uncommitted deltas. 0 means
  // retain every root (no reconstruction cost).
  void SetRetainedRootCap(size_t cap);
  size_t retained_root_count() const { return retained_.size(); }

 private:
  Status ValidateReads(const Tx& tx) const;
  void ApplyWrites(const WriteSet& ws, uint64_t seqno);
  static void ApplyWritesTo(State* state, const WriteSet& ws, uint64_t seqno);
  // The state at `seqno`, from a retained root or reconstructed by replay.
  Result<State> StateAt(uint64_t seqno) const;
  void EnforceRootCap();

  State current_;
  uint64_t current_seqno_ = 0;
  uint64_t committed_seqno_ = 0;
  State committed_state_;
  // Retained roots for (a bounded suffix of) seqnos in (committed, current].
  std::map<uint64_t, State> retained_;
  // Write sets for every seqno in (committed, current], for replay.
  std::map<uint64_t, WriteSet> retained_writes_;
  size_t retained_root_cap_ = 64;
};

}  // namespace ccf::kv

#endif  // CCF_KV_STORE_H_
