#include "kv/encryptor.h"

#include "common/buffer.h"

namespace ccf::kv {

TxEncryptor::TxEncryptor(const LedgerSecret& secret) : gcm_(secret.key) {}

Bytes TxEncryptor::MakeIv(uint64_t view, uint64_t seqno) {
  // 12 bytes: seqno (8, LE) || low 32 bits of view. Unique per transaction
  // ID, and transaction IDs are unique per ledger (paper §3.1).
  BufWriter w;
  w.U64(seqno);
  w.U32(static_cast<uint32_t>(view));
  return w.Take();
}

Bytes TxEncryptor::MakeAad(uint64_t view, uint64_t seqno,
                           ByteSpan public_digest) {
  BufWriter w;
  w.U64(view);
  w.U64(seqno);
  w.Blob(public_digest);
  return w.Take();
}

Bytes TxEncryptor::Seal(uint64_t view, uint64_t seqno, ByteSpan plain,
                        ByteSpan public_digest_aad) const {
  return gcm_.Seal(MakeIv(view, seqno), plain,
                   MakeAad(view, seqno, public_digest_aad));
}

Result<Bytes> TxEncryptor::Open(uint64_t view, uint64_t seqno, ByteSpan sealed,
                                ByteSpan public_digest_aad) const {
  return gcm_.Open(MakeIv(view, seqno), sealed,
                   MakeAad(view, seqno, public_digest_aad));
}

}  // namespace ccf::kv
