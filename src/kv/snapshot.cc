#include "kv/snapshot.h"

#include <algorithm>
#include <vector>

#include "common/buffer.h"

namespace ccf::kv {

crypto::Sha256Digest Snapshot::Digest() const {
  BufWriter w;
  w.Str("ccf.snapshot.v1");
  w.U64(view);
  w.U64(seqno);
  w.Blob(data);
  return crypto::Sha256::Hash(w.data());
}

Bytes SerializeState(const State& state) {
  // Sort map names for determinism.
  std::vector<std::string> names;
  state.maps.ForEach([&](const std::string& name, const MapEntry&) {
    names.push_back(name);
    return true;
  });
  std::sort(names.begin(), names.end());

  BufWriter w;
  w.U32(static_cast<uint32_t>(names.size()));
  for (const std::string& name : names) {
    const MapEntry* entry = state.maps.Get(name);
    w.Str(name);
    w.U64(entry->version);
    // Sort keys for determinism.
    std::vector<std::pair<Bytes, const VersionedValue*>> items;
    items.reserve(entry->data.size());
    entry->data.ForEach([&](const Bytes& key, const VersionedValue& vv) {
      items.emplace_back(key, &vv);
      return true;
    });
    std::sort(items.begin(), items.end(),
              [](const auto& a, const auto& b) { return a.first < b.first; });
    w.U64(items.size());
    for (const auto& [key, vv] : items) {
      w.Blob(key);
      w.Blob(vv->value);
      w.U64(vv->version);
    }
  }
  return w.Take();
}

Result<State> DeserializeState(ByteSpan data) {
  BufReader r(data);
  State state;
  ASSIGN_OR_RETURN(uint32_t map_count, r.U32());
  for (uint32_t m = 0; m < map_count; ++m) {
    ASSIGN_OR_RETURN(std::string name, r.Str());
    MapEntry entry;
    ASSIGN_OR_RETURN(entry.version, r.U64());
    ASSIGN_OR_RETURN(uint64_t item_count, r.U64());
    for (uint64_t i = 0; i < item_count; ++i) {
      ASSIGN_OR_RETURN(Bytes key, r.Blob());
      VersionedValue vv;
      ASSIGN_OR_RETURN(vv.value, r.Blob());
      ASSIGN_OR_RETURN(vv.version, r.U64());
      entry.data = entry.data.Put(key, std::move(vv));
    }
    state.maps = state.maps.Put(name, std::move(entry));
  }
  if (!r.AtEnd()) {
    return Status::InvalidArgument("snapshot: trailing bytes");
  }
  return state;
}

Snapshot TakeSnapshot(const Store& store, uint64_t view) {
  Snapshot snap;
  snap.seqno = store.committed_seqno();
  snap.view = view;
  snap.data = SerializeState(store.committed_state());
  return snap;
}

Status InstallSnapshot(const Snapshot& snapshot, Store* store) {
  ASSIGN_OR_RETURN(State state, DeserializeState(snapshot.data));
  store->InstallState(std::move(state), snapshot.seqno);
  return Status::Ok();
}

State FilterState(const State& state, bool public_only) {
  State out;
  state.maps.ForEach([&](const std::string& name, const MapEntry& entry) {
    if (IsPublicMap(name) == public_only) {
      out.maps = out.maps.Put(name, entry);
    }
    return true;
  });
  return out;
}

Result<State> MergeStates(const State& a, const State& b) {
  State out = a;
  Status status = Status::Ok();
  b.maps.ForEach([&](const std::string& name, const MapEntry& entry) {
    if (out.maps.Get(name) != nullptr) {
      status = Status::FailedPrecondition("kv: merge overlap on map " + name);
      return false;
    }
    out.maps = out.maps.Put(name, entry);
    return true;
  });
  RETURN_IF_ERROR(status);
  return out;
}

}  // namespace ccf::kv
