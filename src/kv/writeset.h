// Write sets: the unit recorded per transaction on the ledger (paper §3.3).
//
// "Each transaction in the ledger includes a set of updates, each either a
// write-to or a removal-of a single key, to be applied atomically to the
// maps. These updates are subdivided into updates to public maps
// (unencrypted) and updates to private maps (encrypted)."
//
// Map naming follows CCF: names beginning with "public:" are public; all
// others are private and their updates are sealed with the ledger secret
// before leaving the enclave.

#ifndef CCF_KV_WRITESET_H_
#define CCF_KV_WRITESET_H_

#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf::kv {

inline bool IsPublicMap(const std::string& name) {
  return name.rfind("public:", 0) == 0;
}

// Updates to one map: key -> new value, or nullopt for removal.
// std::map keys keep serialization deterministic.
using MapWrites = std::map<Bytes, std::optional<Bytes>>;

struct WriteSet {
  // Map name -> writes, both public and private maps.
  std::map<std::string, MapWrites> maps;

  bool empty() const;
  size_t num_writes() const;

  // True when both write sets touch at least one common key of a common
  // map. Two transactions with non-overlapping write sets and disjoint
  // read sets commute: they commit in any order with the same final state
  // (the conflict-matrix property tests use this as the oracle predicate).
  bool Overlaps(const WriteSet& other) const;

  // Serializes only the public (resp. private) maps' updates.
  Bytes SerializePublic() const;
  Bytes SerializePrivate() const;

  // Parses a serialized half and merges it into `out`.
  static Status ParseInto(ByteSpan data, WriteSet* out);
  static Result<WriteSet> Parse(ByteSpan public_part, ByteSpan private_part);
};

}  // namespace ccf::kv

#endif  // CCF_KV_WRITESET_H_
