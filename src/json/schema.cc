#include "json/schema.h"

#include <cmath>

namespace ccf::json {
namespace {

const char* TypeName(Value::Type t) {
  switch (t) {
    case Value::Type::kNull: return "null";
    case Value::Type::kBool: return "boolean";
    case Value::Type::kInt: return "integer";
    case Value::Type::kDouble: return "number";
    case Value::Type::kString: return "string";
    case Value::Type::kArray: return "array";
    case Value::Type::kObject: return "object";
  }
  return "unknown";
}

bool IsIntegral(const Value& v) {
  if (v.is_int()) return true;
  if (!v.is_double()) return false;
  double d = v.AsDouble();
  return std::floor(d) == d && std::isfinite(d);
}

Status Fail(const std::string& path, const std::string& what) {
  return Status::InvalidArgument(path + ": " + what);
}

Status CheckType(const std::string& type, const Value& instance,
                 const std::string& path) {
  bool ok = false;
  if (type == "object") ok = instance.is_object();
  else if (type == "array") ok = instance.is_array();
  else if (type == "string") ok = instance.is_string();
  else if (type == "integer") ok = IsIntegral(instance);
  else if (type == "number") ok = instance.is_number();
  else if (type == "boolean") ok = instance.is_bool();
  else if (type == "null") ok = instance.is_null();
  else return Fail(path, "schema declares unknown type \"" + type + "\"");
  if (!ok) {
    return Fail(path, "expected " + type + ", got " +
                          TypeName(instance.type()));
  }
  return Status::Ok();
}

Status ValidateAt(const Value& schema, const Value& instance,
                  const std::string& path) {
  if (!schema.is_object()) {
    return Fail(path, "schema node is not an object");
  }

  if (const Value* type = schema.Get("type"); type != nullptr) {
    if (!type->is_string()) return Fail(path, "schema \"type\" not a string");
    RETURN_IF_ERROR(CheckType(type->AsString(), instance, path));
  }

  if (const Value* en = schema.Get("enum"); en != nullptr) {
    if (!en->is_array()) return Fail(path, "schema \"enum\" not an array");
    bool matched = false;
    for (const Value& allowed : en->AsArray()) {
      if (instance == allowed) { matched = true; break; }
    }
    if (!matched) return Fail(path, "value not in enum");
  }

  if (instance.is_number()) {
    if (const Value* lo = schema.Get("minimum"); lo != nullptr) {
      if (!lo->is_number()) return Fail(path, "schema \"minimum\" not a number");
      if (instance.AsDouble() < lo->AsDouble()) {
        return Fail(path, "value below minimum");
      }
    }
    if (const Value* hi = schema.Get("maximum"); hi != nullptr) {
      if (!hi->is_number()) return Fail(path, "schema \"maximum\" not a number");
      if (instance.AsDouble() > hi->AsDouble()) {
        return Fail(path, "value above maximum");
      }
    }
  }

  if (instance.is_string()) {
    size_t len = instance.AsString().size();
    if (const Value* lo = schema.Get("minLength");
        lo != nullptr && lo->is_number() &&
        len < static_cast<size_t>(lo->AsInt())) {
      return Fail(path, "string shorter than minLength");
    }
    if (const Value* hi = schema.Get("maxLength");
        hi != nullptr && hi->is_number() &&
        len > static_cast<size_t>(hi->AsInt())) {
      return Fail(path, "string longer than maxLength");
    }
  }

  if (instance.is_array()) {
    const Array& arr = instance.AsArray();
    if (const Value* lo = schema.Get("minItems");
        lo != nullptr && lo->is_number() &&
        arr.size() < static_cast<size_t>(lo->AsInt())) {
      return Fail(path, "array shorter than minItems");
    }
    if (const Value* hi = schema.Get("maxItems");
        hi != nullptr && hi->is_number() &&
        arr.size() > static_cast<size_t>(hi->AsInt())) {
      return Fail(path, "array longer than maxItems");
    }
    if (const Value* items = schema.Get("items"); items != nullptr) {
      for (size_t i = 0; i < arr.size(); ++i) {
        RETURN_IF_ERROR(ValidateAt(*items, arr[i],
                                   path + "[" + std::to_string(i) + "]"));
      }
    }
  }

  if (instance.is_object()) {
    const Object& obj = instance.AsObject();
    const Value* props = schema.Get("properties");
    if (props != nullptr && !props->is_object()) {
      return Fail(path, "schema \"properties\" not an object");
    }

    if (const Value* req = schema.Get("required"); req != nullptr) {
      if (!req->is_array()) {
        return Fail(path, "schema \"required\" not an array");
      }
      for (const Value& name : req->AsArray()) {
        if (!name.is_string()) {
          return Fail(path, "schema \"required\" entry not a string");
        }
        if (obj.find(name.AsString()) == obj.end()) {
          return Fail(path, "missing required property \"" +
                                name.AsString() + "\"");
        }
      }
    }

    bool additional = true;
    if (const Value* ap = schema.Get("additionalProperties");
        ap != nullptr && ap->is_bool()) {
      additional = ap->AsBool();
    }

    for (const auto& [name, member] : obj) {
      const Value* sub =
          props != nullptr ? props->Get(name) : nullptr;
      if (sub != nullptr) {
        RETURN_IF_ERROR(ValidateAt(*sub, member, path + "." + name));
      } else if (!additional) {
        return Fail(path, "unexpected property \"" + name + "\"");
      }
    }
  }

  return Status::Ok();
}

Value Typed(const char* type, const std::string& description) {
  Object s;
  s["type"] = type;
  if (!description.empty()) s["description"] = description;
  return Value(std::move(s));
}

}  // namespace

Status SchemaValidate(const Value& schema, const Value& instance) {
  return ValidateAt(schema, instance, "$");
}

Value StringSchema(const std::string& description) {
  return Typed("string", description);
}

Value IntegerSchema(const std::string& description) {
  return Typed("integer", description);
}

Value Uint64Schema(const std::string& description) {
  Value s = Typed("integer", description);
  s["minimum"] = int64_t{0};
  return s;
}

Value NumberSchema(const std::string& description) {
  return Typed("number", description);
}

Value BoolSchema(const std::string& description) {
  return Typed("boolean", description);
}

Value ArraySchema(Value items, const std::string& description) {
  Value s = Typed("array", description);
  s["items"] = std::move(items);
  return s;
}

Value ObjectSchema(std::vector<std::pair<std::string, Value>> properties,
                   std::vector<std::string> required,
                   bool additional_properties) {
  Object s;
  s["type"] = "object";
  Object props;
  for (auto& [name, sub] : properties) props[name] = std::move(sub);
  s["properties"] = Value(std::move(props));
  if (!required.empty()) {
    Array req;
    for (auto& name : required) req.emplace_back(std::move(name));
    s["required"] = Value(std::move(req));
  }
  s["additionalProperties"] = additional_properties;
  return Value(std::move(s));
}

}  // namespace ccf::json
