// Self-contained JSON value, parser, and serializer.
//
// Used for governance proposals and ballots (paper §5.1: "proposals are
// encoded as succinct JSON documents"), HTTP request/response bodies, and as
// the interchange format between native code and CCL scripts.

#ifndef CCF_JSON_JSON_H_
#define CCF_JSON_JSON_H_

#include <cstdint>
#include <initializer_list>
#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <variant>
#include <vector>

#include "common/status.h"

namespace ccf::json {

class Value;

using Array = std::vector<Value>;
// std::map keeps key order deterministic, which matters because governance
// proposals are hashed and signed over their serialized form.
using Object = std::map<std::string, Value>;

// A JSON document node. Numbers preserve integer-ness: values parsed from
// integer literals round-trip as int64.
class Value {
 public:
  enum class Type { kNull, kBool, kInt, kDouble, kString, kArray, kObject };

  Value() : data_(nullptr) {}
  Value(std::nullptr_t) : data_(nullptr) {}          // NOLINT
  Value(bool b) : data_(b) {}                        // NOLINT
  Value(int v) : data_(static_cast<int64_t>(v)) {}   // NOLINT
  Value(int64_t v) : data_(v) {}                     // NOLINT
  Value(uint64_t v) : data_(static_cast<int64_t>(v)) {}  // NOLINT
  Value(double v) : data_(v) {}                      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}    // NOLINT
  Value(std::string s) : data_(std::move(s)) {}      // NOLINT
  Value(std::string_view s) : data_(std::string(s)) {}  // NOLINT
  Value(Array a) : data_(std::move(a)) {}            // NOLINT
  Value(Object o) : data_(std::move(o)) {}           // NOLINT

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_int() const { return type() == Type::kInt; }
  bool is_double() const { return type() == Type::kDouble; }
  bool is_number() const { return is_int() || is_double(); }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }

  bool AsBool() const { return std::get<bool>(data_); }
  int64_t AsInt() const {
    if (is_double()) return static_cast<int64_t>(std::get<double>(data_));
    return std::get<int64_t>(data_);
  }
  double AsDouble() const {
    if (is_int()) return static_cast<double>(std::get<int64_t>(data_));
    return std::get<double>(data_);
  }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const Array& AsArray() const { return std::get<Array>(data_); }
  Array& AsArray() { return std::get<Array>(data_); }
  const Object& AsObject() const { return std::get<Object>(data_); }
  Object& AsObject() { return std::get<Object>(data_); }

  // Object field access. Get returns nullptr when absent or not an object.
  const Value* Get(std::string_view key) const {
    if (!is_object()) return nullptr;
    auto it = AsObject().find(std::string(key));
    return it == AsObject().end() ? nullptr : &it->second;
  }
  Value& operator[](const std::string& key) {
    if (!is_object()) data_ = Object{};
    return AsObject()[key];
  }

  // Typed field accessors with defaults, for terse handler code.
  std::string GetString(std::string_view key,
                        const std::string& dflt = "") const {
    const Value* v = Get(key);
    return (v != nullptr && v->is_string()) ? v->AsString() : dflt;
  }
  int64_t GetInt(std::string_view key, int64_t dflt = 0) const {
    const Value* v = Get(key);
    return (v != nullptr && v->is_number()) ? v->AsInt() : dflt;
  }
  bool GetBool(std::string_view key, bool dflt = false) const {
    const Value* v = Get(key);
    return (v != nullptr && v->is_bool()) ? v->AsBool() : dflt;
  }

  bool operator==(const Value& other) const { return data_ == other.data_; }
  bool operator!=(const Value& other) const { return !(*this == other); }

  // Compact serialization (no whitespace). Deterministic: object keys are
  // already sorted by the underlying std::map.
  std::string Dump() const;
  // Pretty serialization with 2-space indentation.
  std::string DumpPretty() const;

 private:
  std::variant<std::nullptr_t, bool, int64_t, double, std::string, Array,
               Object>
      data_;
};

// Parses a complete JSON document. Trailing non-whitespace is an error.
Result<Value> Parse(std::string_view text);

}  // namespace ccf::json

#endif  // CCF_JSON_JSON_H_
