// JSON Schema subset: validation of parsed json::Value instances against
// schemas that are themselves json::Values, plus terse builder helpers for
// declaring schemas in application code.
//
// Endpoints declare request/response schemas (DESIGN.md §14); the node
// validates request bodies *before* opening a KV transaction, and the same
// schema objects are embedded verbatim into the generated OpenAPI document
// served at GET /app/api. Supported keywords (the subset OpenAPI 3.0 and
// our apps need):
//
//   type                  "object" | "array" | "string" | "integer" |
//                         "number" | "boolean" | "null"
//   properties            object of name -> sub-schema
//   required              array of property names
//   additionalProperties  boolean (default true)
//   items                 sub-schema applied to every array element
//   enum                  array of allowed literal values
//   minimum / maximum     numeric bounds (inclusive)
//   minLength / maxLength string length bounds (bytes)
//   minItems / maxItems   array length bounds
//
// "integer" accepts doubles with integral values (JSON has one number
// type); "number" accepts both. Unknown keywords are ignored so schemas
// can carry OpenAPI annotations ("description", "example") untouched.

#ifndef CCF_JSON_SCHEMA_H_
#define CCF_JSON_SCHEMA_H_

#include <initializer_list>
#include <string>
#include <utility>
#include <vector>

#include "common/status.h"
#include "json/json.h"

namespace ccf::json {

// Validates `instance` against `schema`. On failure returns
// InvalidArgument with a message locating the offending node in
// JSONPath-ish form, e.g. `$.accounts[2].balance: expected integer, got
// string`. A malformed schema node (e.g. "type" not a string) also fails
// validation -- schemas are developer-authored, so loudly rejecting a bad
// one beats silently accepting everything.
Status SchemaValidate(const Value& schema, const Value& instance);

// ---- Builder helpers ----------------------------------------------------
// Terse construction for endpoint declarations:
//
//   ObjectSchema({{"id", Uint64Schema("account id")},
//                 {"msg", StringSchema("log line")}},
//                /*required=*/{"id", "msg"})

Value StringSchema(const std::string& description = "");
Value IntegerSchema(const std::string& description = "");
// Integer constrained to >= 0 (JSON has no unsigned type; this is how
// u64-valued fields are declared).
Value Uint64Schema(const std::string& description = "");
Value NumberSchema(const std::string& description = "");
Value BoolSchema(const std::string& description = "");
Value ArraySchema(Value items, const std::string& description = "");
// Properties are {name, schema} pairs; names listed in `required` must be
// present in instances. additionalProperties defaults to false for object
// schemas built here: request bodies with unknown fields are rejected,
// which catches client typos (a misspelled optional field would otherwise
// be silently ignored).
Value ObjectSchema(
    std::vector<std::pair<std::string, Value>> properties,
    std::vector<std::string> required,
    bool additional_properties = false);

}  // namespace ccf::json

#endif  // CCF_JSON_SCHEMA_H_
