#include "json/json.h"

#include <cctype>
#include <charconv>
#include <cmath>
#include <cstdio>

namespace ccf::json {

namespace {

// ---------------------------------------------------------------- Serialize

void EscapeString(const std::string& s, std::string* out) {
  out->push_back('"');
  for (char c : s) {
    switch (c) {
      case '"': *out += "\\\""; break;
      case '\\': *out += "\\\\"; break;
      case '\b': *out += "\\b"; break;
      case '\f': *out += "\\f"; break;
      case '\n': *out += "\\n"; break;
      case '\r': *out += "\\r"; break;
      case '\t': *out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          *out += buf;
        } else {
          out->push_back(c);
        }
    }
  }
  out->push_back('"');
}

void DumpNumber(const Value& v, std::string* out) {
  if (v.is_int()) {
    *out += std::to_string(v.AsInt());
    return;
  }
  double d = v.AsDouble();
  if (std::isnan(d) || std::isinf(d)) {
    *out += "null";  // JSON has no NaN/Inf.
    return;
  }
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.17g", d);
  *out += buf;
}

void DumpTo(const Value& v, std::string* out, int indent, int depth) {
  auto newline = [&] {
    if (indent > 0) {
      out->push_back('\n');
      out->append(static_cast<size_t>(indent) * depth, ' ');
    }
  };
  switch (v.type()) {
    case Value::Type::kNull: *out += "null"; break;
    case Value::Type::kBool: *out += v.AsBool() ? "true" : "false"; break;
    case Value::Type::kInt:
    case Value::Type::kDouble: DumpNumber(v, out); break;
    case Value::Type::kString: EscapeString(v.AsString(), out); break;
    case Value::Type::kArray: {
      const Array& a = v.AsArray();
      if (a.empty()) {
        *out += "[]";
        break;
      }
      out->push_back('[');
      bool first = true;
      for (const Value& e : a) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        DumpTo(e, out, indent, depth + 1);
      }
      newline();
      out->push_back(']');
      break;
    }
    case Value::Type::kObject: {
      const Object& o = v.AsObject();
      if (o.empty()) {
        *out += "{}";
        break;
      }
      out->push_back('{');
      bool first = true;
      for (const auto& [key, val] : o) {
        if (!first) out->push_back(',');
        first = false;
        ++depth;
        newline();
        --depth;
        EscapeString(key, out);
        out->push_back(':');
        if (indent > 0) out->push_back(' ');
        DumpTo(val, out, indent, depth + 1);
      }
      newline();
      out->push_back('}');
      break;
    }
  }
}

// ------------------------------------------------------------------ Parse

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  Result<Value> ParseDocument() {
    ASSIGN_OR_RETURN(Value v, ParseValue());
    SkipWs();
    if (pos_ != text_.size()) {
      return Err("trailing characters after JSON document");
    }
    return v;
  }

 private:
  Status Err(const std::string& msg) {
    return Status::InvalidArgument("json: " + msg + " at offset " +
                                   std::to_string(pos_));
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  Result<Value> ParseValue() {
    if (++depth_ > kMaxDepth) return Err("nesting too deep");
    struct DepthGuard {
      int* d;
      ~DepthGuard() { --*d; }
    } guard{&depth_};

    SkipWs();
    if (pos_ >= text_.size()) return Err("unexpected end of input");
    char c = text_[pos_];
    switch (c) {
      case '{': return ParseObject();
      case '[': return ParseArray();
      case '"': {
        ASSIGN_OR_RETURN(std::string s, ParseString());
        return Value(std::move(s));
      }
      case 't':
        if (text_.substr(pos_, 4) == "true") {
          pos_ += 4;
          return Value(true);
        }
        return Err("invalid literal");
      case 'f':
        if (text_.substr(pos_, 5) == "false") {
          pos_ += 5;
          return Value(false);
        }
        return Err("invalid literal");
      case 'n':
        if (text_.substr(pos_, 4) == "null") {
          pos_ += 4;
          return Value(nullptr);
        }
        return Err("invalid literal");
      default:
        return ParseNumber();
    }
  }

  Result<Value> ParseObject() {
    ++pos_;  // '{'
    Object obj;
    SkipWs();
    if (Consume('}')) return Value(std::move(obj));
    while (true) {
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != '"') {
        return Err("expected object key");
      }
      ASSIGN_OR_RETURN(std::string key, ParseString());
      SkipWs();
      if (!Consume(':')) return Err("expected ':'");
      ASSIGN_OR_RETURN(Value val, ParseValue());
      obj[std::move(key)] = std::move(val);
      SkipWs();
      if (Consume(',')) continue;
      if (Consume('}')) return Value(std::move(obj));
      return Err("expected ',' or '}'");
    }
  }

  Result<Value> ParseArray() {
    ++pos_;  // '['
    Array arr;
    SkipWs();
    if (Consume(']')) return Value(std::move(arr));
    while (true) {
      ASSIGN_OR_RETURN(Value val, ParseValue());
      arr.push_back(std::move(val));
      SkipWs();
      if (Consume(',')) continue;
      if (Consume(']')) return Value(std::move(arr));
      return Err("expected ',' or ']'");
    }
  }

  Result<std::string> ParseString() {
    ++pos_;  // '"'
    std::string out;
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return out;
      if (c == '\\') {
        if (pos_ >= text_.size()) return Err("unterminated escape");
        char e = text_[pos_++];
        switch (e) {
          case '"': out.push_back('"'); break;
          case '\\': out.push_back('\\'); break;
          case '/': out.push_back('/'); break;
          case 'b': out.push_back('\b'); break;
          case 'f': out.push_back('\f'); break;
          case 'n': out.push_back('\n'); break;
          case 'r': out.push_back('\r'); break;
          case 't': out.push_back('\t'); break;
          case 'u': {
            ASSIGN_OR_RETURN(uint32_t cp, ParseHex4());
            // Surrogate pair handling.
            if (cp >= 0xD800 && cp <= 0xDBFF) {
              if (pos_ + 1 < text_.size() && text_[pos_] == '\\' &&
                  text_[pos_ + 1] == 'u') {
                pos_ += 2;
                ASSIGN_OR_RETURN(uint32_t lo, ParseHex4());
                if (lo >= 0xDC00 && lo <= 0xDFFF) {
                  cp = 0x10000 + ((cp - 0xD800) << 10) + (lo - 0xDC00);
                } else {
                  return Err("invalid low surrogate");
                }
              } else {
                return Err("lone high surrogate");
              }
            }
            AppendUtf8(cp, &out);
            break;
          }
          default:
            return Err("invalid escape");
        }
      } else {
        out.push_back(c);
      }
    }
    return Err("unterminated string");
  }

  Result<uint32_t> ParseHex4() {
    if (pos_ + 4 > text_.size()) return Err("truncated \\u escape");
    uint32_t v = 0;
    for (int i = 0; i < 4; ++i) {
      char c = text_[pos_++];
      v <<= 4;
      if (c >= '0' && c <= '9') {
        v |= static_cast<uint32_t>(c - '0');
      } else if (c >= 'a' && c <= 'f') {
        v |= static_cast<uint32_t>(c - 'a' + 10);
      } else if (c >= 'A' && c <= 'F') {
        v |= static_cast<uint32_t>(c - 'A' + 10);
      } else {
        return Err("invalid \\u escape");
      }
    }
    return v;
  }

  static void AppendUtf8(uint32_t cp, std::string* out) {
    if (cp < 0x80) {
      out->push_back(static_cast<char>(cp));
    } else if (cp < 0x800) {
      out->push_back(static_cast<char>(0xC0 | (cp >> 6)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else if (cp < 0x10000) {
      out->push_back(static_cast<char>(0xE0 | (cp >> 12)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    } else {
      out->push_back(static_cast<char>(0xF0 | (cp >> 18)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 12) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
      out->push_back(static_cast<char>(0x80 | (cp & 0x3F)));
    }
  }

  Result<Value> ParseNumber() {
    size_t start = pos_;
    if (Consume('-')) {
    }
    bool is_double = false;
    while (pos_ < text_.size()) {
      char c = text_[pos_];
      if (std::isdigit(static_cast<unsigned char>(c))) {
        ++pos_;
      } else if (c == '.' || c == 'e' || c == 'E' || c == '+' || c == '-') {
        is_double = true;
        ++pos_;
      } else {
        break;
      }
    }
    std::string_view num = text_.substr(start, pos_ - start);
    if (num.empty() || num == "-") return Err("invalid number");
    if (!is_double) {
      int64_t v = 0;
      auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec == std::errc() && ptr == num.data() + num.size()) {
        return Value(v);
      }
      // Fall through to double for out-of-range integers.
    }
    double d = 0;
    auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), d);
    if (ec != std::errc() || ptr != num.data() + num.size()) {
      return Err("invalid number");
    }
    return Value(d);
  }

  static constexpr int kMaxDepth = 256;

  std::string_view text_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

std::string Value::Dump() const {
  std::string out;
  DumpTo(*this, &out, /*indent=*/0, /*depth=*/0);
  return out;
}

std::string Value::DumpPretty() const {
  std::string out;
  DumpTo(*this, &out, /*indent=*/2, /*depth=*/0);
  return out;
}

Result<Value> Parse(std::string_view text) {
  return Parser(text).ParseDocument();
}

}  // namespace ccf::json
