// Status / Result error model used across the project (RocksDB idiom).
//
// Functions that can fail return a Status, or a Result<T> when they also
// produce a value. No exceptions cross module boundaries.

#ifndef CCF_COMMON_STATUS_H_
#define CCF_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <utility>

namespace ccf {

// Error/success descriptor. Cheap to copy on the OK path.
class Status {
 public:
  enum class Code {
    kOk = 0,
    kInvalidArgument,
    kNotFound,
    kAlreadyExists,
    kCorruption,
    kPermissionDenied,
    kUnauthenticated,
    kFailedPrecondition,
    kUnavailable,
    kInternal,
    kOutOfRange,
    kAborted,
  };

  Status() : code_(Code::kOk) {}

  static Status Ok() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(Code::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(Code::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(Code::kAlreadyExists, std::move(msg));
  }
  static Status Corruption(std::string msg) {
    return Status(Code::kCorruption, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(Code::kPermissionDenied, std::move(msg));
  }
  static Status Unauthenticated(std::string msg) {
    return Status(Code::kUnauthenticated, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(Code::kFailedPrecondition, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(Code::kUnavailable, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(Code::kInternal, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(Code::kOutOfRange, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(Code::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == Code::kOk; }
  Code code() const { return code_; }
  const std::string& message() const { return message_; }

  bool IsNotFound() const { return code_ == Code::kNotFound; }
  bool IsCorruption() const { return code_ == Code::kCorruption; }
  bool IsUnavailable() const { return code_ == Code::kUnavailable; }
  bool IsOutOfRange() const { return code_ == Code::kOutOfRange; }

  // Human-readable "CODE: message" string for logs and test failures.
  std::string ToString() const {
    if (ok()) return "OK";
    return std::string(CodeName(code_)) + ": " + message_;
  }

  static const char* CodeName(Code code) {
    switch (code) {
      case Code::kOk: return "OK";
      case Code::kInvalidArgument: return "INVALID_ARGUMENT";
      case Code::kNotFound: return "NOT_FOUND";
      case Code::kAlreadyExists: return "ALREADY_EXISTS";
      case Code::kCorruption: return "CORRUPTION";
      case Code::kPermissionDenied: return "PERMISSION_DENIED";
      case Code::kUnauthenticated: return "UNAUTHENTICATED";
      case Code::kFailedPrecondition: return "FAILED_PRECONDITION";
      case Code::kUnavailable: return "UNAVAILABLE";
      case Code::kInternal: return "INTERNAL";
      case Code::kOutOfRange: return "OUT_OF_RANGE";
      case Code::kAborted: return "ABORTED";
    }
    return "UNKNOWN";
  }

 private:
  Status(Code code, std::string msg) : code_(code), message_(std::move(msg)) {}

  Code code_;
  std::string message_;
};

// A Status plus a value on success. Access to value() requires ok().
template <typename T>
class Result {
 public:
  // Implicit conversions keep call sites terse: `return value;` or
  // `return Status::NotFound(...)`.
  Result(T value) : value_(std::move(value)) {}  // NOLINT(runtime/explicit)
  Result(Status status) : status_(std::move(status)) {  // NOLINT
    assert(!status_.ok() && "Result(Status) requires an error status");
  }

  bool ok() const { return status_.ok(); }
  const Status& status() const { return status_; }

  T& value() {
    assert(ok());
    return *value_;
  }
  const T& value() const {
    assert(ok());
    return *value_;
  }
  T&& take() {
    assert(ok());
    return std::move(*value_);
  }

  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }
  T& operator*() { return value(); }
  const T& operator*() const { return value(); }

 private:
  Status status_;
  std::optional<T> value_;
};

// Propagates errors to the caller: `RETURN_IF_ERROR(DoThing());`
#define RETURN_IF_ERROR(expr)                   \
  do {                                          \
    ::ccf::Status _st = (expr);                 \
    if (!_st.ok()) return _st;                  \
  } while (0)

// Unwraps a Result into `lhs`, propagating errors:
// `ASSIGN_OR_RETURN(auto v, ParseThing(buf));`
#define CCF_CONCAT_INNER(a, b) a##b
#define CCF_CONCAT(a, b) CCF_CONCAT_INNER(a, b)
#define ASSIGN_OR_RETURN(lhs, expr)                      \
  auto CCF_CONCAT(_res_, __LINE__) = (expr);             \
  if (!CCF_CONCAT(_res_, __LINE__).ok())                 \
    return CCF_CONCAT(_res_, __LINE__).status();         \
  lhs = CCF_CONCAT(_res_, __LINE__).take()

}  // namespace ccf

#endif  // CCF_COMMON_STATUS_H_
