#include "common/logging.h"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <mutex>

namespace ccf {

namespace {

LogLevel LevelFromEnv() {
  const char* env = std::getenv("CCF_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "trace") == 0) return LogLevel::kTrace;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

std::atomic<LogLevel> g_level{LevelFromEnv()};
std::mutex g_mutex;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kTrace: return "TRACE";
    case LogLevel::kDebug: return "DEBUG";
    case LogLevel::kInfo: return "INFO ";
    case LogLevel::kWarn: return "WARN ";
    case LogLevel::kError: return "ERROR";
    case LogLevel::kOff: return "OFF  ";
  }
  return "?";
}

}  // namespace

LogLevel GetLogLevel() { return g_level.load(std::memory_order_relaxed); }
void SetLogLevel(LogLevel level) {
  g_level.store(level, std::memory_order_relaxed);
}

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg) {
  const char* base = std::strrchr(file, '/');
  base = (base != nullptr) ? base + 1 : file;
  std::lock_guard<std::mutex> lock(g_mutex);
  std::fprintf(stderr, "[%s %s:%d] %s\n", LevelName(level), base, line,
               msg.c_str());
}
}  // namespace internal

}  // namespace ccf
