// Hex encoding/decoding.

#ifndef CCF_COMMON_HEX_H_
#define CCF_COMMON_HEX_H_

#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf {

// Lowercase hex encoding of `data`.
std::string HexEncode(ByteSpan data);

// Decodes a hex string (case-insensitive). Fails on odd length or
// non-hex characters.
Result<Bytes> HexDecode(std::string_view hex);

}  // namespace ccf

#endif  // CCF_COMMON_HEX_H_
