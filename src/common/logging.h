// Minimal leveled logger. Off by default in tests/benchmarks; nodes log
// protocol events at kInfo when enabled via CCF_LOG_LEVEL or SetLogLevel.

#ifndef CCF_COMMON_LOGGING_H_
#define CCF_COMMON_LOGGING_H_

#include <sstream>
#include <string>

namespace ccf {

enum class LogLevel { kTrace = 0, kDebug, kInfo, kWarn, kError, kOff };

LogLevel GetLogLevel();
void SetLogLevel(LogLevel level);

namespace internal {
void LogLine(LogLevel level, const char* file, int line,
             const std::string& msg);

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line)
      : level_(level), file_(file), line_(line) {}
  ~LogMessage() { LogLine(level_, file_, line_, stream_.str()); }
  std::ostringstream& stream() { return stream_; }

 private:
  LogLevel level_;
  const char* file_;
  int line_;
  std::ostringstream stream_;
};
}  // namespace internal

#define CCF_LOG(level)                                      \
  if (::ccf::GetLogLevel() <= ::ccf::LogLevel::level)       \
  ::ccf::internal::LogMessage(::ccf::LogLevel::level,       \
                              __FILE__, __LINE__)           \
      .stream()

#define LOG_TRACE CCF_LOG(kTrace)
#define LOG_DEBUG CCF_LOG(kDebug)
#define LOG_INFO CCF_LOG(kInfo)
#define LOG_WARN CCF_LOG(kWarn)
#define LOG_ERROR CCF_LOG(kError)

}  // namespace ccf

#endif  // CCF_COMMON_LOGGING_H_
