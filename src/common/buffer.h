// Binary serialization helpers.
//
// All wire formats in the project (ledger entries, KV write sets, consensus
// RPCs, ring-buffer messages, snapshots) are built from these primitives:
// little-endian fixed-width integers and length-prefixed byte strings.

#ifndef CCF_COMMON_BUFFER_H_
#define CCF_COMMON_BUFFER_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf {

// Appends primitive values to an owned byte vector.
class BufWriter {
 public:
  void U8(uint8_t v) { buf_.push_back(v); }
  void U16(uint16_t v) { AppendLe(v, 2); }
  void U32(uint32_t v) { AppendLe(v, 4); }
  void U64(uint64_t v) { AppendLe(v, 8); }
  void I64(int64_t v) { AppendLe(static_cast<uint64_t>(v), 8); }
  void Bool(bool v) { U8(v ? 1 : 0); }

  // Raw bytes, no length prefix.
  void Raw(ByteSpan data) { Append(&buf_, data); }

  // Length-prefixed (u64) byte string.
  void Blob(ByteSpan data) {
    U64(data.size());
    Raw(data);
  }
  void Str(std::string_view s) {
    U64(s.size());
    buf_.insert(buf_.end(), s.begin(), s.end());
  }

  const Bytes& data() const { return buf_; }
  size_t size() const { return buf_.size(); }
  Bytes Take() { return std::move(buf_); }

 private:
  void AppendLe(uint64_t v, int bytes) {
    for (int i = 0; i < bytes; ++i) {
      buf_.push_back(static_cast<uint8_t>(v >> (8 * i)));
    }
  }

  Bytes buf_;
};

// Consumes primitive values from a non-owned byte span. All accessors
// fail with OUT_OF_RANGE instead of reading past the end.
class BufReader {
 public:
  explicit BufReader(ByteSpan data) : data_(data) {}

  Result<uint8_t> U8() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe(1));
    return static_cast<uint8_t>(v);
  }
  Result<uint16_t> U16() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe(2));
    return static_cast<uint16_t>(v);
  }
  Result<uint32_t> U32() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe(4));
    return static_cast<uint32_t>(v);
  }
  Result<uint64_t> U64() { return ReadLe(8); }
  Result<int64_t> I64() {
    ASSIGN_OR_RETURN(uint64_t v, ReadLe(8));
    return static_cast<int64_t>(v);
  }
  Result<bool> Bool() {
    ASSIGN_OR_RETURN(uint8_t v, U8());
    return v != 0;
  }

  Result<Bytes> Raw(size_t n) {
    if (n > remaining()) {
      return Status::OutOfRange("buffer underflow");
    }
    Bytes out(data_.begin() + pos_, data_.begin() + pos_ + n);
    pos_ += n;
    return out;
  }

  Result<Bytes> Blob() {
    ASSIGN_OR_RETURN(uint64_t n, U64());
    if (n > remaining()) {
      return Status::OutOfRange("blob length exceeds buffer");
    }
    return Raw(static_cast<size_t>(n));
  }

  Result<std::string> Str() {
    ASSIGN_OR_RETURN(Bytes b, Blob());
    return std::string(b.begin(), b.end());
  }

  size_t remaining() const { return data_.size() - pos_; }
  bool AtEnd() const { return pos_ == data_.size(); }
  size_t pos() const { return pos_; }

 private:
  Result<uint64_t> ReadLe(int bytes) {
    if (static_cast<size_t>(bytes) > remaining()) {
      return Status::OutOfRange("buffer underflow");
    }
    uint64_t v = 0;
    for (int i = 0; i < bytes; ++i) {
      v |= static_cast<uint64_t>(data_[pos_ + i]) << (8 * i);
    }
    pos_ += bytes;
    return v;
  }

  ByteSpan data_;
  size_t pos_ = 0;
};

}  // namespace ccf

#endif  // CCF_COMMON_BUFFER_H_
