// Byte-vector aliases and small helpers shared across the project.

#ifndef CCF_COMMON_BYTES_H_
#define CCF_COMMON_BYTES_H_

#include <cstdint>
#include <cstring>
#include <span>
#include <string>
#include <string_view>
#include <vector>

namespace ccf {

using Bytes = std::vector<uint8_t>;
using ByteSpan = std::span<const uint8_t>;

inline Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

inline std::string ToString(ByteSpan b) {
  return std::string(reinterpret_cast<const char*>(b.data()), b.size());
}

inline Bytes Concat(ByteSpan a, ByteSpan b) {
  Bytes out;
  out.reserve(a.size() + b.size());
  out.insert(out.end(), a.begin(), a.end());
  out.insert(out.end(), b.begin(), b.end());
  return out;
}

inline void Append(Bytes* dst, ByteSpan src) {
  dst->insert(dst->end(), src.begin(), src.end());
}

// Constant-time equality for secrets and MAC tags.
inline bool ConstantTimeEqual(ByteSpan a, ByteSpan b) {
  if (a.size() != b.size()) return false;
  uint8_t acc = 0;
  for (size_t i = 0; i < a.size(); ++i) acc |= a[i] ^ b[i];
  return acc == 0;
}

}  // namespace ccf

#endif  // CCF_COMMON_BYTES_H_
