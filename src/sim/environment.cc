#include "sim/environment.h"

#include <algorithm>

namespace ccf::sim {

Environment::Environment(EnvOptions options)
    : options_(options), rng_("sim-env", options.seed) {}

void Environment::Register(const std::string& id, Handler handler,
                           Ticker ticker) {
  processes_[id] = Process{std::move(handler), std::move(ticker), true};
}

void Environment::Unregister(const std::string& id) { processes_.erase(id); }

void Environment::SetUp(const std::string& id, bool up) {
  auto it = processes_.find(id);
  if (it != processes_.end()) it->second.up = up;
}

bool Environment::IsUp(const std::string& id) const {
  auto it = processes_.find(id);
  return it != processes_.end() && it->second.up;
}

void Environment::SetPartitioned(const std::string& a, const std::string& b,
                                 bool partitioned) {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void Environment::SetBlockedOneWay(const std::string& from,
                                   const std::string& to, bool blocked) {
  if (blocked) {
    one_way_blocks_.insert({from, to});
  } else {
    one_way_blocks_.erase({from, to});
  }
}

void Environment::Isolate(const std::string& id, bool isolated) {
  for (const auto& [other, process] : processes_) {
    if (other != id) SetPartitioned(id, other, isolated);
  }
}

void Environment::SetLinkFaults(const std::string& from, const std::string& to,
                                LinkFaults faults) {
  if (faults.Any()) {
    link_faults_[{from, to}] = faults;
  } else {
    link_faults_.erase({from, to});
  }
}

void Environment::SetFaultsAmong(const std::vector<std::string>& ids,
                                 LinkFaults faults) {
  for (const auto& a : ids) {
    for (const auto& b : ids) {
      if (a != b) SetLinkFaults(a, b, faults);
    }
  }
}

void Environment::ClearLinkFaults() { link_faults_.clear(); }

void Environment::SetHostFaults(const std::string& id, HostFaults faults) {
  if (faults.Any()) {
    host_faults_[id] = faults;
  } else {
    host_faults_.erase(id);
  }
}

HostFaults Environment::HostFaultsFor(const std::string& id) const {
  auto it = host_faults_.find(id);
  return it != host_faults_.end() ? it->second : HostFaults{};
}

void Environment::ClearHostFaults() { host_faults_.clear(); }

void Environment::At(uint64_t at_ms, std::function<void()> action) {
  scheduled_.emplace(std::make_pair(at_ms, next_sequence_++),
                     std::move(action));
}

void Environment::AddStepObserver(std::function<void(uint64_t)> observer) {
  step_observers_.push_back(std::move(observer));
}

void Environment::SetStepObserver(std::function<void(uint64_t)> observer) {
  step_observers_.clear();
  step_observers_.push_back(std::move(observer));
}

bool Environment::Blocked(const std::string& a, const std::string& b) const {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (partitions_.count(key) > 0) return true;
  return one_way_blocks_.count({a, b}) > 0;
}

bool Environment::Bernoulli(double probability) {
  if (probability <= 0.0) return false;
  double draw = static_cast<double>(rng_.Uniform(1u << 30)) /
                static_cast<double>(1u << 30);
  return draw < probability;
}

uint64_t Environment::DrawLatency() {
  uint64_t span = options_.max_latency_ms - options_.min_latency_ms;
  uint64_t latency =
      options_.min_latency_ms + (span > 0 ? rng_.Uniform(span + 1) : 0);
  return std::max<uint64_t>(latency, 1);
}

void Environment::Enqueue(const std::string& from, const std::string& to,
                          Bytes payload, uint64_t deliver_at_ms, bool fifo) {
  Pending p;
  p.deliver_at_ms = deliver_at_ms;
  if (fifo) {
    // FIFO per directed link: never deliver before an earlier message on
    // the same (from, to) pair.
    uint64_t& last = last_delivery_[{from, to}];
    p.deliver_at_ms = std::max(p.deliver_at_ms, last);
    last = p.deliver_at_ms;
  }
  p.sequence = next_sequence_++;
  p.from = from;
  p.to = to;
  p.payload = std::move(payload);
  queue_.emplace(std::make_pair(p.deliver_at_ms, p.sequence), std::move(p));
}

void Environment::Send(const std::string& from, const std::string& to,
                       Bytes payload) {
  ++messages_sent_;
  if (options_.drop_probability > 0.0) {
    // Deterministic Bernoulli draw from the seeded DRBG.
    if (Bernoulli(options_.drop_probability)) {
      ++messages_dropped_;
      return;
    }
  }

  const LinkFaults* faults = nullptr;
  auto fit = link_faults_.find({from, to});
  if (fit != link_faults_.end()) faults = &fit->second;

  if (faults != nullptr && Bernoulli(faults->drop)) {
    ++messages_dropped_;
    return;
  }

  uint64_t latency = DrawLatency();
  bool fifo = true;
  if (faults != nullptr) {
    if (faults->extra_delay_max_ms > 0) {
      latency += rng_.Uniform(faults->extra_delay_max_ms + 1);
    }
    if (Bernoulli(faults->reorder)) {
      // A reordered message gets extra delay and skips the FIFO clamp, so
      // later traffic on the same link may overtake it.
      ++messages_reordered_;
      latency += 1 + rng_.Uniform(std::max<uint64_t>(
                         options_.max_latency_ms * 2, 4));
      fifo = false;
    }
    if (Bernoulli(faults->duplicate)) {
      // The copy takes an independent (non-FIFO) path.
      ++messages_duplicated_;
      uint64_t dup_latency = DrawLatency() + rng_.Uniform(4);
      Enqueue(from, to, payload, now_ms_ + dup_latency, /*fifo=*/false);
    }
  }
  Enqueue(from, to, std::move(payload), now_ms_ + latency, fifo);
}

void Environment::Step(uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    ++now_ms_;
    // Run scheduled actions due at or before now (partition heals, crash /
    // restart events, ...), before any delivery this millisecond.
    while (!scheduled_.empty() && scheduled_.begin()->first.first <= now_ms_) {
      auto action = std::move(scheduled_.begin()->second);
      scheduled_.erase(scheduled_.begin());
      action();
    }
    // Deliver everything due at or before now.
    while (!queue_.empty() && queue_.begin()->first.first <= now_ms_) {
      Pending p = std::move(queue_.begin()->second);
      queue_.erase(queue_.begin());
      auto it = processes_.find(p.to);
      if (it == processes_.end() || !it->second.up) continue;
      if (Blocked(p.from, p.to)) continue;
      ++messages_delivered_;
      it->second.handler(p.from, p.payload);
    }
    // Tick live processes (deterministic order: map is sorted by id).
    for (auto& [id, process] : processes_) {
      if (process.up) process.ticker(now_ms_);
    }
    for (auto& observer : step_observers_) observer(now_ms_);
  }
}

bool Environment::RunUntil(const std::function<bool()>& predicate,
                           uint64_t timeout_ms) {
  uint64_t deadline = now_ms_ + timeout_ms;
  while (now_ms_ < deadline) {
    if (predicate()) return true;
    Step(1);
  }
  return predicate();
}

}  // namespace ccf::sim
