#include "sim/environment.h"

#include <algorithm>

namespace ccf::sim {

Environment::Environment(EnvOptions options)
    : options_(options), rng_("sim-env", options.seed) {}

void Environment::Register(const std::string& id, Handler handler,
                           Ticker ticker) {
  processes_[id] = Process{std::move(handler), std::move(ticker), true};
}

void Environment::Unregister(const std::string& id) { processes_.erase(id); }

void Environment::SetUp(const std::string& id, bool up) {
  auto it = processes_.find(id);
  if (it != processes_.end()) it->second.up = up;
}

bool Environment::IsUp(const std::string& id) const {
  auto it = processes_.find(id);
  return it != processes_.end() && it->second.up;
}

void Environment::SetPartitioned(const std::string& a, const std::string& b,
                                 bool partitioned) {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  if (partitioned) {
    partitions_.insert(key);
  } else {
    partitions_.erase(key);
  }
}

void Environment::Isolate(const std::string& id, bool isolated) {
  for (const auto& [other, process] : processes_) {
    if (other != id) SetPartitioned(id, other, isolated);
  }
}

bool Environment::Blocked(const std::string& a, const std::string& b) const {
  auto key = a < b ? std::make_pair(a, b) : std::make_pair(b, a);
  return partitions_.count(key) > 0;
}

void Environment::Send(const std::string& from, const std::string& to,
                       Bytes payload) {
  ++messages_sent_;
  if (options_.drop_probability > 0.0) {
    // Deterministic Bernoulli draw from the seeded DRBG.
    double draw = static_cast<double>(rng_.Uniform(1u << 30)) /
                  static_cast<double>(1u << 30);
    if (draw < options_.drop_probability) return;
  }
  uint64_t span = options_.max_latency_ms - options_.min_latency_ms;
  uint64_t latency =
      options_.min_latency_ms + (span > 0 ? rng_.Uniform(span + 1) : 0);
  Pending p;
  p.deliver_at_ms = now_ms_ + std::max<uint64_t>(latency, 1);
  // FIFO per directed link: never deliver before an earlier message on
  // the same (from, to) pair.
  uint64_t& last = last_delivery_[{from, to}];
  p.deliver_at_ms = std::max(p.deliver_at_ms, last);
  last = p.deliver_at_ms;
  p.sequence = next_sequence_++;
  p.from = from;
  p.to = to;
  p.payload = std::move(payload);
  queue_.emplace(std::make_pair(p.deliver_at_ms, p.sequence), std::move(p));
}

void Environment::Step(uint64_t ms) {
  for (uint64_t i = 0; i < ms; ++i) {
    ++now_ms_;
    // Deliver everything due at or before now.
    while (!queue_.empty() && queue_.begin()->first.first <= now_ms_) {
      Pending p = std::move(queue_.begin()->second);
      queue_.erase(queue_.begin());
      auto it = processes_.find(p.to);
      if (it == processes_.end() || !it->second.up) continue;
      if (Blocked(p.from, p.to)) continue;
      ++messages_delivered_;
      it->second.handler(p.from, p.payload);
    }
    // Tick live processes (deterministic order: map is sorted by id).
    for (auto& [id, process] : processes_) {
      if (process.up) process.ticker(now_ms_);
    }
  }
}

bool Environment::RunUntil(const std::function<bool()>& predicate,
                           uint64_t timeout_ms) {
  uint64_t deadline = now_ms_ + timeout_ms;
  while (now_ms_ < deadline) {
    if (predicate()) return true;
    Step(1);
  }
  return predicate();
}

}  // namespace ccf::sim
