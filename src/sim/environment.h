// Deterministic discrete-event simulation environment.
//
// Stands in for the paper's Azure testbed: processes exchange byte
// payloads over links with configurable latency, drop probability,
// partitions, and crashes. Time is virtual; the whole run is reproducible
// from a seed. Consensus safety properties are property-tested under this
// environment with random failure schedules.
//
// Fault injection. Beyond the global drop probability, each directed link
// can be given a LinkFaults policy (drop, duplication, reordering, extra
// delay), partitions can be symmetric or asymmetric (one-way), and any
// fault can be scheduled to appear or heal at a future virtual time via
// At(). All randomness is drawn from the single seeded DRBG, so a run is
// replayable bit-for-bit from (seed, schedule).

#ifndef CCF_SIM_ENVIRONMENT_H_
#define CCF_SIM_ENVIRONMENT_H_

#include <functional>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "crypto/hmac.h"

namespace ccf::sim {

struct EnvOptions {
  uint64_t min_latency_ms = 1;
  uint64_t max_latency_ms = 3;
  double drop_probability = 0.0;
  uint64_t seed = 42;
};

// Fault policy for a node's untrusted host serving its own enclave
// (historical ledger fetches, tee/messages.h): the host may drop, corrupt,
// delay, or reorder the responses it owes the enclave. Draws come from the
// node's own seeded host-side DRBG (node/node.cc), not the environment's,
// so injecting these faults never perturbs network delivery order.
struct HostFaults {
  double drop = 0.0;     // response silently discarded
  double corrupt = 0.0;  // one byte of the response flipped
  double reorder = 0.0;  // response swapped with another queued response
  uint64_t extra_delay_max_ms = 0;  // uniform extra latency in [0, max]
  // Snapshot I/O faults: the host loses a snapshot bundle the enclave
  // asked it to persist, or bit-rots the stored copy. Enclave-side
  // verification must turn a corrupt bundle into a loud rejection, never
  // an install.
  double snapshot_drop = 0.0;
  double snapshot_corrupt = 0.0;

  bool Any() const {
    return drop > 0.0 || corrupt > 0.0 || reorder > 0.0 ||
           extra_delay_max_ms > 0 || snapshot_drop > 0.0 ||
           snapshot_corrupt > 0.0;
  }
};

// Per-directed-link fault policy. Probabilities are in [0, 1]; draws come
// from the environment's seeded DRBG so behaviour is deterministic.
struct LinkFaults {
  double drop = 0.0;       // message silently lost
  double duplicate = 0.0;  // a second copy is delivered later
  double reorder = 0.0;    // message may overtake / be overtaken
  uint64_t extra_delay_max_ms = 0;  // uniform extra latency in [0, max]

  bool Any() const {
    return drop > 0.0 || duplicate > 0.0 || reorder > 0.0 ||
           extra_delay_max_ms > 0;
  }
};

class Environment {
 public:
  explicit Environment(EnvOptions options = {});

  using Handler = std::function<void(const std::string& from, ByteSpan)>;
  using Ticker = std::function<void(uint64_t now_ms)>;

  // Registers a process. `handler` receives messages; `ticker` is invoked
  // once per Step while the process is up.
  void Register(const std::string& id, Handler handler, Ticker ticker);
  void Unregister(const std::string& id);

  // Crash / restart. A down process neither ticks nor receives; messages
  // addressed to it are dropped at delivery time.
  void SetUp(const std::string& id, bool up);
  bool IsUp(const std::string& id) const;

  // Symmetric partition between two processes.
  void SetPartitioned(const std::string& a, const std::string& b,
                      bool partitioned);
  // Asymmetric partition: messages from -> to are blocked, the reverse
  // direction still flows.
  void SetBlockedOneWay(const std::string& from, const std::string& to,
                        bool blocked);
  // Isolates `id` from every other process (one-call partition).
  void Isolate(const std::string& id, bool isolated);

  // Installs a fault policy on the directed link from -> to (replacing any
  // previous policy; a default-constructed LinkFaults clears it).
  void SetLinkFaults(const std::string& from, const std::string& to,
                     LinkFaults faults);
  // Installs the same policy on every directed link among `ids`.
  void SetFaultsAmong(const std::vector<std::string>& ids, LinkFaults faults);
  // Removes every per-link fault policy.
  void ClearLinkFaults();

  // Installs a host-fault policy for process `id` (replacing any previous
  // policy; a default-constructed HostFaults clears it). The node reads it
  // back with HostFaultsFor when serving enclave ledger fetches.
  void SetHostFaults(const std::string& id, HostFaults faults);
  HostFaults HostFaultsFor(const std::string& id) const;
  void ClearHostFaults();

  // Schedules `action` to run at virtual time `at_ms` (or the next Step if
  // already past). Actions run before deliveries, ordered by (time,
  // insertion); use for scheduled partitions, heals, crashes, restarts.
  void At(uint64_t at_ms, std::function<void()> action);

  // Observer invoked at the end of every simulated millisecond (after
  // deliveries and ticks). Multiple observers run in registration order
  // (e.g. the invariant checker and the metrics aggregator coexist).
  void AddStepObserver(std::function<void(uint64_t now_ms)> observer);
  // Legacy single-slot form: clears previously added observers first.
  void SetStepObserver(std::function<void(uint64_t now_ms)> observer);

  // Schedules a message. Drops happen at send time (per the drop
  // probability and link faults) or at delivery time (crashes, partitions).
  void Send(const std::string& from, const std::string& to, Bytes payload);

  // Advances virtual time by `ms`, delivering due messages and ticking
  // live processes once per millisecond.
  void Step(uint64_t ms = 1);
  // Steps until `predicate` holds or `timeout_ms` elapses; returns whether
  // the predicate held.
  bool RunUntil(const std::function<bool()>& predicate, uint64_t timeout_ms);

  uint64_t now_ms() const { return now_ms_; }
  crypto::Drbg& rng() { return rng_; }
  size_t messages_sent() const { return messages_sent_; }
  size_t messages_delivered() const { return messages_delivered_; }
  size_t messages_dropped() const { return messages_dropped_; }
  size_t messages_duplicated() const { return messages_duplicated_; }
  size_t messages_reordered() const { return messages_reordered_; }

 private:
  struct Pending {
    uint64_t deliver_at_ms;
    uint64_t sequence;  // tie-break for deterministic ordering
    std::string from;
    std::string to;
    Bytes payload;
  };

  struct Process {
    Handler handler;
    Ticker ticker;
    bool up = true;
  };

  bool Blocked(const std::string& a, const std::string& b) const;
  bool Bernoulli(double probability);
  uint64_t DrawLatency();
  void Enqueue(const std::string& from, const std::string& to, Bytes payload,
               uint64_t deliver_at_ms, bool fifo);

  EnvOptions options_;
  crypto::Drbg rng_;
  uint64_t now_ms_ = 0;
  uint64_t next_sequence_ = 0;
  size_t messages_sent_ = 0;
  size_t messages_delivered_ = 0;
  size_t messages_dropped_ = 0;
  size_t messages_duplicated_ = 0;
  size_t messages_reordered_ = 0;
  std::map<std::string, Process> processes_;
  std::set<std::pair<std::string, std::string>> partitions_;
  std::set<std::pair<std::string, std::string>> one_way_blocks_;
  std::map<std::pair<std::string, std::string>, LinkFaults> link_faults_;
  std::map<std::string, HostFaults> host_faults_;
  // Per (from, to) pair: last scheduled delivery time, enforcing FIFO
  // ordering per directed link (streams behave like TCP; STLS relies on
  // in-order records). Reordered and duplicated messages bypass the clamp.
  std::map<std::pair<std::string, std::string>, uint64_t> last_delivery_;
  // Ordered by (time, sequence) for deterministic delivery.
  std::multimap<std::pair<uint64_t, uint64_t>, Pending> queue_;
  // Scheduled actions, ordered by (time, insertion sequence).
  std::multimap<std::pair<uint64_t, uint64_t>, std::function<void()>>
      scheduled_;
  std::vector<std::function<void(uint64_t)>> step_observers_;
};

}  // namespace ccf::sim

#endif  // CCF_SIM_ENVIRONMENT_H_
