// Environment-level metrics aggregation: snapshots every tracked node's
// observe::Registry on the deterministic sim clock and emits a structured
// end-of-run report (consumed by the chaos suites and benches).
//
// The aggregator is strictly read-only over the registries: it samples
// counter/gauge values into its own TimeSeries rings and serializes
// snapshots, but never mutates a metric and never draws randomness, so
// attaching it cannot perturb a deterministic run.

#ifndef CCF_SIM_AGGREGATOR_H_
#define CCF_SIM_AGGREGATOR_H_

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "observe/metrics.h"
#include "sim/environment.h"

namespace ccf::sim {

class MetricsAggregator {
 public:
  explicit MetricsAggregator(size_t series_capacity = 512)
      : series_capacity_(series_capacity) {}

  // Registers a node's registry for snapshotting. The registry must
  // outlive the aggregator (or be Untracked first).
  void Track(const std::string& node_id, const observe::Registry* registry);
  void Untrack(const std::string& node_id);

  // Samples the named counter/gauge (via Registry::ScalarValue) into a
  // bounded per-node TimeSeries at every sampling step.
  void Watch(const std::string& metric_name);

  // Hooks the aggregator into the environment's step loop, sampling every
  // `sample_every_ms` virtual milliseconds. Coexists with other step
  // observers (Environment::AddStepObserver).
  void Attach(Environment* env, uint64_t sample_every_ms = 10);

  // Structured end-of-run report:
  //   {"env": {"duration_ms", "messages_sent", ...},
  //    "nodes": {node_id: <Registry::ToJson()>},
  //    "watched": {node_id: {metric: {"total", "points": [[t, v], ...]}}}}
  json::Value Report() const;

 private:
  void SampleAll(uint64_t now_ms);

  Environment* env_ = nullptr;
  size_t series_capacity_;
  uint64_t sample_every_ms_ = 10;
  std::map<std::string, const observe::Registry*> nodes_;
  std::vector<std::string> watched_;
  // (node_id, metric name) -> sampled series.
  std::map<std::pair<std::string, std::string>, observe::TimeSeries> series_;
};

}  // namespace ccf::sim

#endif  // CCF_SIM_AGGREGATOR_H_
