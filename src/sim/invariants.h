// Cross-node consensus invariant checking for chaos tests.
//
// An InvariantChecker observes every tracked RaftNode after each simulator
// step (via Environment::SetStepObserver) and accumulates violations of
// the four safety properties the paper's protocol must uphold under any
// fault schedule (§4, and the "Smart Casual Verification" follow-up):
//
//   1. Election safety — at most one node becomes primary in any view.
//   2. Log matching — any two entries at the same (view, seqno) carry
//      identical payloads.
//   3. Commit monotonicity and prefix agreement — no node's commit index
//      moves backwards, and all committed prefixes agree byte-for-byte.
//   4. State convergence — once the cluster quiesces, logs, commit
//      indices, and application state digests (KV root, Merkle root) are
//      identical across live nodes (CheckConverged).
//
// Checking is incremental: each observation only re-examines a node's
// role events since the last observation, newly committed seqnos, and the
// mutable (uncommitted) log suffix, so per-step cost stays proportional
// to recent activity rather than log length.

#ifndef CCF_SIM_INVARIANTS_H_
#define CCF_SIM_INVARIANTS_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "common/bytes.h"
#include "consensus/raft.h"
#include "crypto/sha256.h"
#include "sim/environment.h"

namespace ccf::sim {

class InvariantChecker {
 public:
  // Starts observing `raft` (not owned; must outlive the checker or be
  // Untrack()ed first). `state_digest`, if provided, contributes an
  // application-level digest (e.g. Merkle root + KV root) to the
  // convergence check.
  void Track(const std::string& id, const consensus::RaftNode* raft,
             std::function<Bytes()> state_digest = nullptr);
  // Stops observing `id` (e.g. the node crashed and its state was wiped).
  // Its already-recorded history stays part of the global maps.
  void Untrack(const std::string& id);

  // Installs this checker as `env`'s step observer.
  void Attach(Environment* env);

  // Observes every tracked node once; called automatically per step when
  // attached. Appends any violations found.
  void ObserveAll(uint64_t now_ms);

  bool ok() const { return violations_.empty(); }
  const std::vector<std::string>& violations() const { return violations_; }
  // All violations joined into one printable report.
  std::string Report() const;

  // Invariant 4. Returns true when every tracked node accepted by
  // `include` agrees on commit seqno, last seqno, full log contents, and
  // (when provided) application state digest. On failure `why` (if
  // non-null) describes the first disagreement.
  bool CheckConverged(const std::function<bool(const std::string&)>& include,
                      std::string* why = nullptr) const;

 private:
  struct Tracked {
    const consensus::RaftNode* raft = nullptr;
    std::function<Bytes()> state_digest;
    size_t role_events_seen = 0;
    uint64_t last_commit_seen = 0;
  };

  void ObserveNode(const std::string& id, Tracked& t, uint64_t now_ms);
  void AddViolation(uint64_t now_ms, const std::string& what);

  std::map<std::string, Tracked> nodes_;
  // view -> first node observed as primary in that view.
  std::map<uint64_t, std::string> primaries_;
  // (view, seqno) -> payload digest, across all nodes ever observed.
  std::map<std::pair<uint64_t, uint64_t>, crypto::Sha256Digest> entries_;
  // seqno -> (view, payload digest) of committed entries.
  std::map<uint64_t, std::pair<uint64_t, crypto::Sha256Digest>> committed_;
  std::vector<std::string> violations_;
};

}  // namespace ccf::sim

#endif  // CCF_SIM_INVARIANTS_H_
