#include "sim/aggregator.h"

namespace ccf::sim {

void MetricsAggregator::Track(const std::string& node_id,
                              const observe::Registry* registry) {
  nodes_[node_id] = registry;
}

void MetricsAggregator::Untrack(const std::string& node_id) {
  // Keep the sampled series: a crashed node's history is still part of
  // the run report, we just stop reading its (soon to be dead) registry.
  nodes_.erase(node_id);
}

void MetricsAggregator::Watch(const std::string& metric_name) {
  watched_.push_back(metric_name);
}

void MetricsAggregator::Attach(Environment* env, uint64_t sample_every_ms) {
  env_ = env;
  sample_every_ms_ = sample_every_ms == 0 ? 1 : sample_every_ms;
  env->AddStepObserver([this](uint64_t now_ms) {
    if (now_ms % sample_every_ms_ == 0) SampleAll(now_ms);
  });
}

void MetricsAggregator::SampleAll(uint64_t now_ms) {
  for (const auto& [id, reg] : nodes_) {
    for (const std::string& name : watched_) {
      auto key = std::make_pair(id, name);
      auto it = series_.find(key);
      if (it == series_.end()) {
        it = series_.emplace(key, observe::TimeSeries(series_capacity_)).first;
      }
      it->second.Sample(now_ms, reg->ScalarValue(name));
    }
  }
}

json::Value MetricsAggregator::Report() const {
  json::Object env;
  if (env_ != nullptr) {
    env["duration_ms"] = env_->now_ms();
    env["messages_sent"] = static_cast<uint64_t>(env_->messages_sent());
    env["messages_delivered"] =
        static_cast<uint64_t>(env_->messages_delivered());
    env["messages_dropped"] = static_cast<uint64_t>(env_->messages_dropped());
    env["messages_duplicated"] =
        static_cast<uint64_t>(env_->messages_duplicated());
    env["messages_reordered"] =
        static_cast<uint64_t>(env_->messages_reordered());
  }

  json::Object nodes;
  for (const auto& [id, reg] : nodes_) nodes[id] = reg->ToJson();

  json::Object watched;
  for (const auto& [key, ts] : series_) {
    const auto& [node_id, metric] = key;
    json::Object entry;
    entry["total"] = ts.total_samples();
    json::Array points;
    for (const auto& p : ts.Samples()) {
      json::Array point;
      point.emplace_back(p.t_ms);
      point.emplace_back(p.value);
      points.emplace_back(std::move(point));
    }
    entry["points"] = std::move(points);
    auto it = watched.find(node_id);
    if (it == watched.end()) {
      json::Object per_node;
      per_node[metric] = json::Value(std::move(entry));
      watched[node_id] = json::Value(std::move(per_node));
    } else {
      it->second.AsObject()[metric] = json::Value(std::move(entry));
    }
  }

  json::Object report;
  report["env"] = json::Value(std::move(env));
  report["nodes"] = json::Value(std::move(nodes));
  report["watched"] = json::Value(std::move(watched));
  return json::Value(std::move(report));
}

}  // namespace ccf::sim
