#include "sim/invariants.h"

#include <algorithm>
#include <sstream>

#include "common/hex.h"

namespace ccf::sim {

namespace {

using consensus::LogEntry;
using consensus::RaftNode;
using consensus::Role;

crypto::Sha256Digest EntryDigest(const LogEntry& e) {
  return crypto::Sha256::Hash(*e.data);
}

std::string DigestPrefix(const crypto::Sha256Digest& d) {
  return HexEncode(ByteSpan(d.data(), 4));
}

// Digest over a node's full available log: chained (view, payload digest)
// per seqno in (from, last_seqno]. Used by the convergence check.
crypto::Sha256Digest LogDigest(const RaftNode& raft, uint64_t from) {
  Bytes acc;
  for (uint64_t s = from + 1; s <= raft.last_seqno(); ++s) {
    const LogEntry* e = raft.GetLogEntry(s);
    if (e == nullptr) continue;
    for (int i = 0; i < 8; ++i) {
      acc.push_back(static_cast<uint8_t>(e->view >> (8 * i)));
    }
    auto d = EntryDigest(*e);
    acc.insert(acc.end(), d.begin(), d.end());
  }
  return crypto::Sha256::Hash(acc);
}

}  // namespace

void InvariantChecker::Track(const std::string& id, const RaftNode* raft,
                             std::function<Bytes()> state_digest) {
  Tracked t;
  t.raft = raft;
  t.state_digest = std::move(state_digest);
  t.last_commit_seen = raft->commit_seqno();
  nodes_[id] = std::move(t);
}

void InvariantChecker::Untrack(const std::string& id) { nodes_.erase(id); }

void InvariantChecker::Attach(Environment* env) {
  env->AddStepObserver([this](uint64_t now_ms) { ObserveAll(now_ms); });
}

void InvariantChecker::AddViolation(uint64_t now_ms, const std::string& what) {
  violations_.push_back("t=" + std::to_string(now_ms) + "ms: " + what);
}

void InvariantChecker::ObserveAll(uint64_t now_ms) {
  for (auto& [id, t] : nodes_) ObserveNode(id, t, now_ms);
}

void InvariantChecker::ObserveNode(const std::string& id, Tracked& t,
                                   uint64_t now_ms) {
  const RaftNode& raft = *t.raft;

  // (1) Election safety: every new primary role event claims its view.
  const auto& history = raft.role_history();
  for (; t.role_events_seen < history.size(); ++t.role_events_seen) {
    const auto& ev = history[t.role_events_seen];
    if (ev.role != Role::kPrimary) continue;
    auto [it, inserted] = primaries_.emplace(ev.view, id);
    if (!inserted && it->second != id) {
      AddViolation(now_ms, "election safety: view " + std::to_string(ev.view) +
                               " has primaries " + it->second + " and " + id);
    }
  }

  // (3a) Commit monotonicity.
  uint64_t commit = raft.commit_seqno();
  if (commit < t.last_commit_seen) {
    AddViolation(now_ms, "commit monotonicity: " + id + " commit went " +
                             std::to_string(t.last_commit_seen) + " -> " +
                             std::to_string(commit));
    t.last_commit_seen = commit;
    return;
  }

  // (3b) Committed prefix agreement: newly committed entries must match
  // what any other node committed at the same seqno.
  for (uint64_t s = t.last_commit_seen + 1; s <= commit; ++s) {
    const LogEntry* e = raft.GetLogEntry(s);
    if (e == nullptr) continue;  // below a joiner's snapshot base
    auto rec = std::make_pair(e->view, EntryDigest(*e));
    auto [it, inserted] = committed_.emplace(s, rec);
    if (!inserted && it->second != rec) {
      AddViolation(now_ms,
                   "prefix agreement: " + id + " committed seqno " +
                       std::to_string(s) + " view " + std::to_string(e->view) +
                       " digest " + DigestPrefix(rec.second) +
                       " but another node committed view " +
                       std::to_string(it->second.first) + " digest " +
                       DigestPrefix(it->second.second));
    }
  }
  t.last_commit_seen = commit;

  // (2) Log matching over the mutable suffix. Entries at or below commit
  // were checked above (and can no longer change); the suffix is small
  // (bounded by the signature interval plus in-flight entries).
  for (uint64_t s = commit + 1; s <= raft.last_seqno(); ++s) {
    const LogEntry* e = raft.GetLogEntry(s);
    if (e == nullptr) continue;
    auto key = std::make_pair(e->view, e->seqno);
    auto digest = EntryDigest(*e);
    auto [it, inserted] = entries_.emplace(key, digest);
    if (!inserted && it->second != digest) {
      AddViolation(now_ms, "log matching: " + id + " entry (view " +
                               std::to_string(e->view) + ", seqno " +
                               std::to_string(e->seqno) +
                               ") digest " + DigestPrefix(digest) +
                               " conflicts with previously observed " +
                               DigestPrefix(it->second));
    }
  }
}

std::string InvariantChecker::Report() const {
  std::ostringstream out;
  for (const auto& v : violations_) out << v << "\n";
  return out.str();
}

bool InvariantChecker::CheckConverged(
    const std::function<bool(const std::string&)>& include,
    std::string* why) const {
  auto fail = [&](const std::string& reason) {
    if (why != nullptr) *why = reason;
    return false;
  };

  const std::string* ref_id = nullptr;
  const Tracked* ref = nullptr;
  uint64_t max_base = 0;
  for (const auto& [id, t] : nodes_) {
    if (!include(id)) continue;
    max_base = std::max(max_base, t.raft->base_seqno());
    if (ref == nullptr) {
      ref_id = &id;
      ref = &t;
    }
  }
  if (ref == nullptr) return true;  // nothing to compare

  for (const auto& [id, t] : nodes_) {
    if (!include(id) || &t == ref) continue;
    if (t.raft->commit_seqno() != ref->raft->commit_seqno()) {
      return fail("commit mismatch: " + *ref_id + "=" +
                  std::to_string(ref->raft->commit_seqno()) + " " + id + "=" +
                  std::to_string(t.raft->commit_seqno()));
    }
    if (t.raft->last_seqno() != ref->raft->last_seqno()) {
      return fail("last_seqno mismatch: " + *ref_id + "=" +
                  std::to_string(ref->raft->last_seqno()) + " " + id + "=" +
                  std::to_string(t.raft->last_seqno()));
    }
    // Compare full logs above the highest snapshot base among the
    // included nodes (below that, some node has no entries to compare).
    if (LogDigest(*t.raft, max_base) != LogDigest(*ref->raft, max_base)) {
      return fail("log digest mismatch between " + *ref_id + " and " + id);
    }
    if (ref->state_digest && t.state_digest &&
        ref->state_digest() != t.state_digest()) {
      return fail("state digest mismatch between " + *ref_id + " and " + id);
    }
  }
  return true;
}

}  // namespace ccf::sim
