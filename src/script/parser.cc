#include "script/parser.h"

#include "script/lexer.h"

namespace ccf::script {

namespace {

class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<std::shared_ptr<const Program>> ParseProgram() {
    auto prog = std::make_shared<Program>();
    while (!At(Token::Kind::kEof)) {
      ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      prog->stmts.push_back(std::move(s));
    }
    return std::shared_ptr<const Program>(std::move(prog));
  }

 private:
  const Token& Peek(int ahead = 0) const {
    size_t idx = std::min(pos_ + ahead, tokens_.size() - 1);
    return tokens_[idx];
  }
  const Token& Advance() { return tokens_[pos_++]; }
  bool At(Token::Kind k) const { return Peek().kind == k; }
  bool AtPunct(std::string_view p) const { return Peek().IsPunct(p); }
  bool AtKeyword(std::string_view k) const { return Peek().IsKeyword(k); }

  bool Eat(std::string_view punct) {
    if (AtPunct(punct)) {
      ++pos_;
      return true;
    }
    return false;
  }
  bool EatKeyword(std::string_view kw) {
    if (AtKeyword(kw)) {
      ++pos_;
      return true;
    }
    return false;
  }

  Status Err(const std::string& msg) const {
    return Status::InvalidArgument("ccl:" + std::to_string(Peek().line) +
                                   ": " + msg + " (found '" + Peek().text +
                                   "')");
  }

  Status Expect(std::string_view punct) {
    if (!Eat(punct)) return Err("expected '" + std::string(punct) + "'");
    return Status::Ok();
  }

  Result<std::string> ExpectIdent() {
    if (!At(Token::Kind::kIdent)) return Err("expected identifier");
    return Advance().text;
  }

  // ------------------------------------------------------- statements

  Result<StmtPtr> ParseStatement() {
    int line = Peek().line;
    if (EatKeyword("let")) {
      ASSIGN_OR_RETURN(std::string name, ExpectIdent());
      ExprPtr init;
      if (Eat("=")) {
        ASSIGN_OR_RETURN(init, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(";"));
      return StmtPtr(new LetStmt(std::move(name), std::move(init), line));
    }
    if (AtKeyword("function") && Peek(1).kind == Token::Kind::kIdent) {
      ++pos_;
      ASSIGN_OR_RETURN(FunctionDecl decl, ParseFunctionRest(/*named=*/true));
      return StmtPtr(new FunctionStmt(std::move(decl), line));
    }
    if (EatKeyword("if")) {
      RETURN_IF_ERROR(Expect("("));
      ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      RETURN_IF_ERROR(Expect(")"));
      ASSIGN_OR_RETURN(StmtPtr then_s, ParseStatement());
      StmtPtr else_s;
      if (EatKeyword("else")) {
        ASSIGN_OR_RETURN(else_s, ParseStatement());
      }
      return StmtPtr(new IfStmt(std::move(cond), std::move(then_s),
                                std::move(else_s), line));
    }
    if (EatKeyword("while")) {
      RETURN_IF_ERROR(Expect("("));
      ASSIGN_OR_RETURN(ExprPtr cond, ParseExpr());
      RETURN_IF_ERROR(Expect(")"));
      ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
      return StmtPtr(new WhileStmt(std::move(cond), std::move(body), line));
    }
    if (EatKeyword("for")) {
      RETURN_IF_ERROR(Expect("("));
      // for (let x of expr)
      if (AtKeyword("let") && Peek(1).kind == Token::Kind::kIdent &&
          Peek(2).IsKeyword("of")) {
        pos_ += 1;  // let
        std::string var = Advance().text;
        pos_ += 1;  // of
        ASSIGN_OR_RETURN(ExprPtr iterable, ParseExpr());
        RETURN_IF_ERROR(Expect(")"));
        ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
        return StmtPtr(new ForOfStmt(std::move(var), std::move(iterable),
                                     std::move(body), line));
      }
      // Classic for (init; cond; step).
      StmtPtr init;
      if (!Eat(";")) {
        if (AtKeyword("let")) {
          ++pos_;
          ASSIGN_OR_RETURN(std::string name, ExpectIdent());
          ExprPtr iexpr;
          if (Eat("=")) {
            ASSIGN_OR_RETURN(iexpr, ParseExpr());
          }
          init = StmtPtr(new LetStmt(std::move(name), std::move(iexpr), line));
        } else {
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          init = StmtPtr(new ExprStmt(std::move(e), line));
        }
        RETURN_IF_ERROR(Expect(";"));
      }
      ExprPtr cond;
      if (!AtPunct(";")) {
        ASSIGN_OR_RETURN(cond, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(";"));
      ExprPtr step;
      if (!AtPunct(")")) {
        ASSIGN_OR_RETURN(step, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(")"));
      ASSIGN_OR_RETURN(StmtPtr body, ParseStatement());
      return StmtPtr(new ForStmt(std::move(init), std::move(cond),
                                 std::move(step), std::move(body), line));
    }
    if (EatKeyword("return")) {
      ExprPtr expr;
      if (!AtPunct(";")) {
        ASSIGN_OR_RETURN(expr, ParseExpr());
      }
      RETURN_IF_ERROR(Expect(";"));
      return StmtPtr(new ReturnStmt(std::move(expr), line));
    }
    if (EatKeyword("break")) {
      RETURN_IF_ERROR(Expect(";"));
      return StmtPtr(new BreakStmt(line));
    }
    if (EatKeyword("continue")) {
      RETURN_IF_ERROR(Expect(";"));
      return StmtPtr(new ContinueStmt(line));
    }
    if (AtPunct("{")) return ParseBlock();

    ASSIGN_OR_RETURN(ExprPtr expr, ParseExpr());
    RETURN_IF_ERROR(Expect(";"));
    return StmtPtr(new ExprStmt(std::move(expr), line));
  }

  Result<StmtPtr> ParseBlock() {
    int line = Peek().line;
    RETURN_IF_ERROR(Expect("{"));
    std::vector<StmtPtr> stmts;
    while (!AtPunct("}") && !At(Token::Kind::kEof)) {
      ASSIGN_OR_RETURN(StmtPtr s, ParseStatement());
      stmts.push_back(std::move(s));
    }
    RETURN_IF_ERROR(Expect("}"));
    return StmtPtr(new BlockStmt(std::move(stmts), line));
  }

  Result<FunctionDecl> ParseFunctionRest(bool named) {
    FunctionDecl decl;
    decl.line = Peek().line;
    if (named) {
      ASSIGN_OR_RETURN(decl.name, ExpectIdent());
    }
    RETURN_IF_ERROR(Expect("("));
    if (!AtPunct(")")) {
      while (true) {
        ASSIGN_OR_RETURN(std::string p, ExpectIdent());
        decl.params.push_back(std::move(p));
        if (!Eat(",")) break;
      }
    }
    RETURN_IF_ERROR(Expect(")"));
    ASSIGN_OR_RETURN(StmtPtr body, ParseBlock());
    decl.body.reset(static_cast<BlockStmt*>(body.release()));
    return decl;
  }

  // ------------------------------------------------------ expressions

  Result<ExprPtr> ParseExpr() { return ParseAssignment(); }

  Result<ExprPtr> ParseAssignment() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseTernary());
    int line = Peek().line;
    std::string op;
    if (AtPunct("=")) {
      op = "";
    } else if (AtPunct("+=")) {
      op = "+";
    } else if (AtPunct("-=")) {
      op = "-";
    } else if (AtPunct("*=")) {
      op = "*";
    } else if (AtPunct("/=")) {
      op = "/";
    } else {
      return lhs;
    }
    ++pos_;
    if (lhs->kind != Expr::Kind::kIdent && lhs->kind != Expr::Kind::kMember &&
        lhs->kind != Expr::Kind::kIndex) {
      return Err("invalid assignment target");
    }
    ASSIGN_OR_RETURN(ExprPtr value, ParseAssignment());
    return ExprPtr(
        new AssignExpr(std::move(lhs), std::move(value), op, line));
  }

  Result<ExprPtr> ParseTernary() {
    ASSIGN_OR_RETURN(ExprPtr cond, ParseOr());
    if (!Eat("?")) return cond;
    int line = Peek().line;
    ASSIGN_OR_RETURN(ExprPtr then_e, ParseExpr());
    RETURN_IF_ERROR(Expect(":"));
    ASSIGN_OR_RETURN(ExprPtr else_e, ParseExpr());
    return ExprPtr(new TernaryExpr(std::move(cond), std::move(then_e),
                                   std::move(else_e), line));
  }

  Result<ExprPtr> ParseOr() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAnd());
    while (AtPunct("||")) {
      int line = Advance().line;
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAnd());
      lhs = ExprPtr(
          new LogicalExpr(false, std::move(lhs), std::move(rhs), line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAnd() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseEquality());
    while (AtPunct("&&")) {
      int line = Advance().line;
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseEquality());
      lhs =
          ExprPtr(new LogicalExpr(true, std::move(lhs), std::move(rhs), line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseEquality() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseComparison());
    while (AtPunct("==") || AtPunct("!=") || AtPunct("===") ||
           AtPunct("!==")) {
      Token t = Advance();
      std::string op = (t.text == "===") ? "==" :
                       (t.text == "!==") ? "!=" : t.text;
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseComparison());
      lhs = ExprPtr(new BinaryExpr(op, std::move(lhs), std::move(rhs),
                                   t.line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseComparison() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseAdditive());
    while (AtPunct("<") || AtPunct("<=") || AtPunct(">") || AtPunct(">=")) {
      Token t = Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseAdditive());
      lhs = ExprPtr(
          new BinaryExpr(t.text, std::move(lhs), std::move(rhs), t.line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseAdditive() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseMultiplicative());
    while (AtPunct("+") || AtPunct("-")) {
      Token t = Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseMultiplicative());
      lhs = ExprPtr(
          new BinaryExpr(t.text, std::move(lhs), std::move(rhs), t.line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseMultiplicative() {
    ASSIGN_OR_RETURN(ExprPtr lhs, ParseUnary());
    while (AtPunct("*") || AtPunct("/") || AtPunct("%")) {
      Token t = Advance();
      ASSIGN_OR_RETURN(ExprPtr rhs, ParseUnary());
      lhs = ExprPtr(
          new BinaryExpr(t.text, std::move(lhs), std::move(rhs), t.line));
    }
    return lhs;
  }

  Result<ExprPtr> ParseUnary() {
    if (AtPunct("!") || AtPunct("-")) {
      Token t = Advance();
      ASSIGN_OR_RETURN(ExprPtr operand, ParseUnary());
      return ExprPtr(new UnaryExpr(t.text[0], std::move(operand), t.line));
    }
    return ParsePostfix();
  }

  Result<ExprPtr> ParsePostfix() {
    ASSIGN_OR_RETURN(ExprPtr expr, ParsePrimary());
    while (true) {
      int line = Peek().line;
      if (Eat("(")) {
        std::vector<ExprPtr> args;
        if (!AtPunct(")")) {
          while (true) {
            ASSIGN_OR_RETURN(ExprPtr a, ParseExpr());
            args.push_back(std::move(a));
            if (!Eat(",")) break;
          }
        }
        RETURN_IF_ERROR(Expect(")"));
        expr = ExprPtr(new CallExpr(std::move(expr), std::move(args), line));
      } else if (Eat(".")) {
        if (!At(Token::Kind::kIdent) && !At(Token::Kind::kKeyword)) {
          return Err("expected property name");
        }
        std::string name = Advance().text;
        expr = ExprPtr(new MemberExpr(std::move(expr), std::move(name), line));
      } else if (Eat("[")) {
        ASSIGN_OR_RETURN(ExprPtr index, ParseExpr());
        RETURN_IF_ERROR(Expect("]"));
        expr = ExprPtr(new IndexExpr(std::move(expr), std::move(index), line));
      } else {
        break;
      }
    }
    return expr;
  }

  Result<ExprPtr> ParsePrimary() {
    const Token& t = Peek();
    int line = t.line;
    if (t.kind == Token::Kind::kNumber) {
      ++pos_;
      return ExprPtr(new LiteralExpr(Value(t.number), line));
    }
    if (t.kind == Token::Kind::kString) {
      ++pos_;
      return ExprPtr(new LiteralExpr(Value(t.text), line));
    }
    if (EatKeyword("true")) return ExprPtr(new LiteralExpr(Value(true), line));
    if (EatKeyword("false")) {
      return ExprPtr(new LiteralExpr(Value(false), line));
    }
    if (EatKeyword("null")) return ExprPtr(new LiteralExpr(Value(), line));
    if (AtKeyword("function")) {
      ++pos_;
      ASSIGN_OR_RETURN(FunctionDecl decl, ParseFunctionRest(/*named=*/false));
      return ExprPtr(new FunctionExpr(std::move(decl), line));
    }
    if (t.kind == Token::Kind::kIdent) {
      ++pos_;
      return ExprPtr(new IdentExpr(t.text, line));
    }
    if (Eat("(")) {
      ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
      RETURN_IF_ERROR(Expect(")"));
      return e;
    }
    if (Eat("[")) {
      std::vector<ExprPtr> elements;
      if (!AtPunct("]")) {
        while (true) {
          ASSIGN_OR_RETURN(ExprPtr e, ParseExpr());
          elements.push_back(std::move(e));
          if (!Eat(",")) break;
        }
      }
      RETURN_IF_ERROR(Expect("]"));
      return ExprPtr(new ArrayLitExpr(std::move(elements), line));
    }
    if (Eat("{")) {
      std::vector<std::pair<std::string, ExprPtr>> props;
      if (!AtPunct("}")) {
        while (true) {
          std::string key;
          if (At(Token::Kind::kIdent) || At(Token::Kind::kKeyword)) {
            key = Advance().text;
          } else if (At(Token::Kind::kString)) {
            key = Advance().text;
          } else {
            return Err("expected property key");
          }
          RETURN_IF_ERROR(Expect(":"));
          ASSIGN_OR_RETURN(ExprPtr v, ParseExpr());
          props.emplace_back(std::move(key), std::move(v));
          if (!Eat(",")) break;
        }
      }
      RETURN_IF_ERROR(Expect("}"));
      return ExprPtr(new ObjectLitExpr(std::move(props), line));
    }
    return Err("expected expression");
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

Result<std::shared_ptr<const Program>> Compile(std::string_view source) {
  ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(source));
  return Parser(std::move(tokens)).ParseProgram();
}

}  // namespace ccf::script
