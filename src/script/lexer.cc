#include "script/lexer.h"

#include <cctype>
#include <charconv>
#include <set>

namespace ccf::script {

namespace {

const std::set<std::string>& Keywords() {
  static const std::set<std::string> kw = {
      "let",    "function", "if",   "else",  "while", "for",      "of",
      "return", "break",    "continue", "true", "false", "null"};
  return kw;
}

// Multi-character operators, longest first.
const char* kPuncts[] = {"===", "!==", "==", "!=", "<=", ">=", "&&", "||",
                         "+=",  "-=",  "*=", "/=", "(",  ")",  "{",  "}",
                         "[",   "]",   ",",  ";",  ":",  ".",  "?",  "+",
                         "-",   "*",   "/",  "%",  "<",  ">",  "=",  "!"};

}  // namespace

Result<std::vector<Token>> Tokenize(std::string_view src) {
  std::vector<Token> tokens;
  size_t i = 0;
  int line = 1;

  auto err = [&](const std::string& msg) {
    return Status::InvalidArgument("ccl:" + std::to_string(line) + ": " + msg);
  };

  while (i < src.size()) {
    char c = src[i];
    if (c == '\n') {
      ++line;
      ++i;
      continue;
    }
    if (c == ' ' || c == '\t' || c == '\r') {
      ++i;
      continue;
    }
    // Comments.
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '/') {
      while (i < src.size() && src[i] != '\n') ++i;
      continue;
    }
    if (c == '/' && i + 1 < src.size() && src[i + 1] == '*') {
      i += 2;
      while (i + 1 < src.size() && !(src[i] == '*' && src[i + 1] == '/')) {
        if (src[i] == '\n') ++line;
        ++i;
      }
      if (i + 1 >= src.size()) return err("unterminated block comment");
      i += 2;
      continue;
    }
    // Numbers.
    if (std::isdigit(static_cast<unsigned char>(c))) {
      size_t start = i;
      while (i < src.size() &&
             (std::isdigit(static_cast<unsigned char>(src[i])) ||
              src[i] == '.' || src[i] == 'e' || src[i] == 'E' ||
              ((src[i] == '+' || src[i] == '-') && i > start &&
               (src[i - 1] == 'e' || src[i - 1] == 'E')))) {
        ++i;
      }
      std::string_view num = src.substr(start, i - start);
      double v = 0;
      auto [ptr, ec] = std::from_chars(num.data(), num.data() + num.size(), v);
      if (ec != std::errc() || ptr != num.data() + num.size()) {
        return err("invalid number literal '" + std::string(num) + "'");
      }
      tokens.push_back({Token::Kind::kNumber, std::string(num), v, line});
      continue;
    }
    // Identifiers / keywords.
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_' || c == '$') {
      size_t start = i;
      while (i < src.size() &&
             (std::isalnum(static_cast<unsigned char>(src[i])) ||
              src[i] == '_' || src[i] == '$')) {
        ++i;
      }
      std::string word(src.substr(start, i - start));
      Token::Kind kind = Keywords().count(word) > 0 ? Token::Kind::kKeyword
                                                    : Token::Kind::kIdent;
      tokens.push_back({kind, std::move(word), 0, line});
      continue;
    }
    // Strings.
    if (c == '"' || c == '\'') {
      char quote = c;
      ++i;
      std::string out;
      while (i < src.size() && src[i] != quote) {
        char s = src[i];
        if (s == '\n') return err("unterminated string");
        if (s == '\\') {
          ++i;
          if (i >= src.size()) return err("unterminated escape");
          char e = src[i];
          switch (e) {
            case 'n': out.push_back('\n'); break;
            case 't': out.push_back('\t'); break;
            case 'r': out.push_back('\r'); break;
            case '\\': out.push_back('\\'); break;
            case '"': out.push_back('"'); break;
            case '\'': out.push_back('\''); break;
            default: return err(std::string("unknown escape \\") + e);
          }
          ++i;
        } else {
          out.push_back(s);
          ++i;
        }
      }
      if (i >= src.size()) return err("unterminated string");
      ++i;  // closing quote
      tokens.push_back({Token::Kind::kString, std::move(out), 0, line});
      continue;
    }
    // Punctuation / operators.
    bool matched = false;
    for (const char* p : kPuncts) {
      size_t len = std::char_traits<char>::length(p);
      if (src.substr(i, len) == p) {
        tokens.push_back({Token::Kind::kPunct, std::string(p), 0, line});
        i += len;
        matched = true;
        break;
      }
    }
    if (!matched) {
      return err(std::string("unexpected character '") + c + "'");
    }
  }
  tokens.push_back({Token::Kind::kEof, "", 0, line});
  return tokens;
}

}  // namespace ccf::script
