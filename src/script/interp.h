// Tree-walking interpreter for CCL.
//
// Execution is bounded by a step budget and a recursion limit so that a
// malicious or buggy constitution/application script cannot hang a node.
// Errors surface as Status values with source line numbers; there are no
// exceptions.

#ifndef CCF_SCRIPT_INTERP_H_
#define CCF_SCRIPT_INTERP_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/status.h"
#include "script/ast.h"
#include "script/parser.h"
#include "script/value.h"

namespace ccf::script {

class Environment {
 public:
  explicit Environment(std::shared_ptr<Environment> parent = nullptr)
      : parent_(std::move(parent)) {}

  // Defines in this scope; overwrites an existing local binding.
  void Define(const std::string& name, Value v) {
    vars_[name] = std::move(v);
  }
  // Finds a binding anywhere in the scope chain.
  Value* Find(const std::string& name) {
    auto it = vars_.find(name);
    if (it != vars_.end()) return &it->second;
    return parent_ != nullptr ? parent_->Find(name) : nullptr;
  }

 private:
  std::map<std::string, Value> vars_;
  std::shared_ptr<Environment> parent_;
};

struct InterpOptions {
  size_t max_steps = 2'000'000;
  size_t max_call_depth = 200;
};

class Interpreter {
 public:
  explicit Interpreter(InterpOptions options = {});

  // Installs a host value as a global (e.g. the kv bindings).
  void SetGlobal(const std::string& name, Value v);
  Value* GetGlobal(const std::string& name) { return globals_->Find(name); }

  // Executes the program's top level (function declarations populate the
  // global scope). Returns the value of the last expression statement.
  Result<Value> Run(std::shared_ptr<const Program> program);

  // Calls a global function by name. Run must have defined it.
  Result<Value> Call(const std::string& name, std::vector<Value> args);
  // Calls a function value (closure or native).
  Result<Value> CallValue(const Value& fn, std::vector<Value> args);

  // Resets the step budget (call before each endpoint invocation so one
  // request cannot starve the next).
  void ResetBudget() { steps_ = 0; }

 private:
  struct Flow {
    enum class Kind { kNormal, kReturn, kBreak, kContinue };
    Kind kind = Kind::kNormal;
    Value value;
  };

  Status Budget(int line);
  Result<Flow> ExecStmt(const Stmt* stmt, std::shared_ptr<Environment> env);
  Result<Flow> ExecBlock(const BlockStmt* block,
                         std::shared_ptr<Environment> env);
  Result<Value> EvalExpr(const Expr* expr, std::shared_ptr<Environment> env);
  Result<Value> EvalBinary(const BinaryExpr* e,
                           std::shared_ptr<Environment> env);
  Result<Value> EvalAssign(const AssignExpr* e,
                           std::shared_ptr<Environment> env);
  Result<Value> MemberGet(const Value& object, const std::string& name,
                          int line);
  Result<Value> IndexGet(const Value& object, const Value& index, int line);
  Result<Value> CallClosure(const std::shared_ptr<Closure>& closure,
                            std::vector<Value>& args, int line);

  void InstallBuiltins();

  Status Err(int line, const std::string& msg) const {
    return Status::InvalidArgument("ccl:" + std::to_string(line) + ": " + msg);
  }

  InterpOptions options_;
  std::shared_ptr<Environment> globals_;
  std::vector<std::shared_ptr<const Program>> programs_;  // keepalive
  size_t steps_ = 0;
  size_t depth_ = 0;
};

}  // namespace ccf::script

#endif  // CCF_SCRIPT_INTERP_H_
