#include "script/interp.h"

#include <algorithm>
#include <cmath>

namespace ccf::script {

Interpreter::Interpreter(InterpOptions options)
    : options_(options), globals_(std::make_shared<Environment>()) {
  InstallBuiltins();
}

void Interpreter::SetGlobal(const std::string& name, Value v) {
  globals_->Define(name, std::move(v));
}

Status Interpreter::Budget(int line) {
  if (++steps_ > options_.max_steps) {
    return Status::Aborted("ccl:" + std::to_string(line) +
                           ": step budget exhausted");
  }
  return Status::Ok();
}

Result<Value> Interpreter::Run(std::shared_ptr<const Program> program) {
  programs_.push_back(program);
  Value last;
  for (const StmtPtr& stmt : program->stmts) {
    ASSIGN_OR_RETURN(Flow flow, ExecStmt(stmt.get(), globals_));
    if (flow.kind == Flow::Kind::kReturn) return flow.value;
    if (flow.kind != Flow::Kind::kNormal) {
      return Err(stmt->line, "break/continue outside loop");
    }
    last = std::move(flow.value);
  }
  return last;
}

Result<Value> Interpreter::Call(const std::string& name,
                                std::vector<Value> args) {
  Value* fn = globals_->Find(name);
  if (fn == nullptr) {
    return Status::NotFound("ccl: no such function '" + name + "'");
  }
  return CallValue(*fn, std::move(args));
}

Result<Value> Interpreter::CallValue(const Value& fn,
                                     std::vector<Value> args) {
  if (fn.type() == Value::Type::kNative) {
    return fn.AsNative()(args);
  }
  if (fn.type() == Value::Type::kClosure) {
    return CallClosure(fn.AsClosure(), args, 0);
  }
  return Status::InvalidArgument("ccl: value is not callable");
}

Result<Value> Interpreter::CallClosure(const std::shared_ptr<Closure>& closure,
                                       std::vector<Value>& args, int line) {
  if (depth_ + 1 > options_.max_call_depth) {
    return Err(line, "call depth limit exceeded");
  }
  ++depth_;
  auto env = std::make_shared<Environment>(closure->env);
  const FunctionDecl* decl = closure->decl;
  for (size_t i = 0; i < decl->params.size(); ++i) {
    env->Define(decl->params[i], i < args.size() ? args[i] : Value());
  }
  auto result = ExecBlock(decl->body.get(), env);
  --depth_;
  if (!result.ok()) return result.status();
  if (result->kind == Flow::Kind::kReturn) return result->value;
  if (result->kind != Flow::Kind::kNormal) {
    return Err(line, "break/continue escaped function");
  }
  return Value();
}

// ------------------------------------------------------------ Statements

Result<Interpreter::Flow> Interpreter::ExecBlock(
    const BlockStmt* block, std::shared_ptr<Environment> env) {
  for (const StmtPtr& stmt : block->stmts) {
    ASSIGN_OR_RETURN(Flow flow, ExecStmt(stmt.get(), env));
    if (flow.kind != Flow::Kind::kNormal) return flow;
  }
  return Flow{};
}

Result<Interpreter::Flow> Interpreter::ExecStmt(
    const Stmt* stmt, std::shared_ptr<Environment> env) {
  RETURN_IF_ERROR(Budget(stmt->line));
  switch (stmt->kind) {
    case Stmt::Kind::kExpr: {
      const auto* s = static_cast<const ExprStmt*>(stmt);
      ASSIGN_OR_RETURN(Value v, EvalExpr(s->expr.get(), env));
      Flow flow;
      flow.value = std::move(v);
      return flow;
    }
    case Stmt::Kind::kLet: {
      const auto* s = static_cast<const LetStmt*>(stmt);
      Value init;
      if (s->init != nullptr) {
        ASSIGN_OR_RETURN(init, EvalExpr(s->init.get(), env));
      }
      env->Define(s->name, std::move(init));
      return Flow{};
    }
    case Stmt::Kind::kFunction: {
      const auto* s = static_cast<const FunctionStmt*>(stmt);
      Closure closure{&s->decl, env, programs_.empty() ? nullptr
                                                       : programs_.back()};
      env->Define(s->decl.name, Value(std::move(closure)));
      return Flow{};
    }
    case Stmt::Kind::kBlock: {
      auto inner = std::make_shared<Environment>(env);
      return ExecBlock(static_cast<const BlockStmt*>(stmt), inner);
    }
    case Stmt::Kind::kIf: {
      const auto* s = static_cast<const IfStmt*>(stmt);
      ASSIGN_OR_RETURN(Value cond, EvalExpr(s->cond.get(), env));
      if (cond.Truthy()) {
        return ExecStmt(s->then_stmt.get(), env);
      }
      if (s->else_stmt != nullptr) {
        return ExecStmt(s->else_stmt.get(), env);
      }
      return Flow{};
    }
    case Stmt::Kind::kWhile: {
      const auto* s = static_cast<const WhileStmt*>(stmt);
      while (true) {
        RETURN_IF_ERROR(Budget(s->line));
        ASSIGN_OR_RETURN(Value cond, EvalExpr(s->cond.get(), env));
        if (!cond.Truthy()) break;
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(s->body.get(), env));
        if (flow.kind == Flow::Kind::kReturn) return flow;
        if (flow.kind == Flow::Kind::kBreak) break;
      }
      return Flow{};
    }
    case Stmt::Kind::kFor: {
      const auto* s = static_cast<const ForStmt*>(stmt);
      auto scope = std::make_shared<Environment>(env);
      if (s->init != nullptr) {
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(s->init.get(), scope));
        (void)flow;
      }
      while (true) {
        RETURN_IF_ERROR(Budget(s->line));
        if (s->cond != nullptr) {
          ASSIGN_OR_RETURN(Value cond, EvalExpr(s->cond.get(), scope));
          if (!cond.Truthy()) break;
        }
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(s->body.get(), scope));
        if (flow.kind == Flow::Kind::kReturn) return flow;
        if (flow.kind == Flow::Kind::kBreak) break;
        if (s->step != nullptr) {
          ASSIGN_OR_RETURN(Value step, EvalExpr(s->step.get(), scope));
          (void)step;
        }
      }
      return Flow{};
    }
    case Stmt::Kind::kForOf: {
      const auto* s = static_cast<const ForOfStmt*>(stmt);
      ASSIGN_OR_RETURN(Value iterable, EvalExpr(s->iterable.get(), env));
      std::vector<Value> items;
      if (iterable.is_array()) {
        items = *iterable.AsArray();
      } else if (iterable.is_object()) {
        for (const auto& [k, v] : *iterable.AsObject()) {
          items.emplace_back(k);
        }
      } else if (iterable.is_string()) {
        for (char c : iterable.AsString()) {
          items.emplace_back(std::string(1, c));
        }
      } else {
        return Err(s->line, std::string("cannot iterate over ") +
                                iterable.TypeName());
      }
      for (Value& item : items) {
        RETURN_IF_ERROR(Budget(s->line));
        auto scope = std::make_shared<Environment>(env);
        scope->Define(s->var, std::move(item));
        ASSIGN_OR_RETURN(Flow flow, ExecStmt(s->body.get(), scope));
        if (flow.kind == Flow::Kind::kReturn) return flow;
        if (flow.kind == Flow::Kind::kBreak) break;
      }
      return Flow{};
    }
    case Stmt::Kind::kReturn: {
      const auto* s = static_cast<const ReturnStmt*>(stmt);
      Flow flow;
      flow.kind = Flow::Kind::kReturn;
      if (s->expr != nullptr) {
        ASSIGN_OR_RETURN(flow.value, EvalExpr(s->expr.get(), env));
      }
      return flow;
    }
    case Stmt::Kind::kBreak: {
      Flow flow;
      flow.kind = Flow::Kind::kBreak;
      return flow;
    }
    case Stmt::Kind::kContinue: {
      Flow flow;
      flow.kind = Flow::Kind::kContinue;
      return flow;
    }
  }
  return Err(stmt->line, "unknown statement");
}

// ----------------------------------------------------------- Expressions

Result<Value> Interpreter::EvalExpr(const Expr* expr,
                                    std::shared_ptr<Environment> env) {
  RETURN_IF_ERROR(Budget(expr->line));
  switch (expr->kind) {
    case Expr::Kind::kLiteral:
      return static_cast<const LiteralExpr*>(expr)->value;
    case Expr::Kind::kIdent: {
      const auto* e = static_cast<const IdentExpr*>(expr);
      Value* v = env->Find(e->name);
      if (v == nullptr) {
        return Err(e->line, "undefined variable '" + e->name + "'");
      }
      return *v;
    }
    case Expr::Kind::kUnary: {
      const auto* e = static_cast<const UnaryExpr*>(expr);
      ASSIGN_OR_RETURN(Value v, EvalExpr(e->operand.get(), env));
      if (e->op == '!') return Value(!v.Truthy());
      if (!v.is_number()) {
        return Err(e->line, std::string("cannot negate ") + v.TypeName());
      }
      return Value(-v.AsNumber());
    }
    case Expr::Kind::kBinary:
      return EvalBinary(static_cast<const BinaryExpr*>(expr), env);
    case Expr::Kind::kLogical: {
      const auto* e = static_cast<const LogicalExpr*>(expr);
      ASSIGN_OR_RETURN(Value lhs, EvalExpr(e->lhs.get(), env));
      if (e->is_and) {
        if (!lhs.Truthy()) return lhs;
      } else {
        if (lhs.Truthy()) return lhs;
      }
      return EvalExpr(e->rhs.get(), env);
    }
    case Expr::Kind::kTernary: {
      const auto* e = static_cast<const TernaryExpr*>(expr);
      ASSIGN_OR_RETURN(Value cond, EvalExpr(e->cond.get(), env));
      return EvalExpr(
          cond.Truthy() ? e->then_expr.get() : e->else_expr.get(), env);
    }
    case Expr::Kind::kAssign:
      return EvalAssign(static_cast<const AssignExpr*>(expr), env);
    case Expr::Kind::kCall: {
      const auto* e = static_cast<const CallExpr*>(expr);
      ASSIGN_OR_RETURN(Value callee, EvalExpr(e->callee.get(), env));
      std::vector<Value> args;
      args.reserve(e->args.size());
      for (const ExprPtr& a : e->args) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(a.get(), env));
        args.push_back(std::move(v));
      }
      if (callee.type() == Value::Type::kNative) {
        auto result = callee.AsNative()(args);
        if (!result.ok()) {
          return Err(e->line, result.status().message());
        }
        return result;
      }
      if (callee.type() == Value::Type::kClosure) {
        return CallClosure(callee.AsClosure(), args, e->line);
      }
      return Err(e->line,
                 std::string("cannot call ") + callee.TypeName());
    }
    case Expr::Kind::kMember: {
      const auto* e = static_cast<const MemberExpr*>(expr);
      ASSIGN_OR_RETURN(Value object, EvalExpr(e->object.get(), env));
      return MemberGet(object, e->name, e->line);
    }
    case Expr::Kind::kIndex: {
      const auto* e = static_cast<const IndexExpr*>(expr);
      ASSIGN_OR_RETURN(Value object, EvalExpr(e->object.get(), env));
      ASSIGN_OR_RETURN(Value index, EvalExpr(e->index.get(), env));
      return IndexGet(object, index, e->line);
    }
    case Expr::Kind::kArrayLit: {
      const auto* e = static_cast<const ArrayLitExpr*>(expr);
      Array out;
      out.reserve(e->elements.size());
      for (const ExprPtr& el : e->elements) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(el.get(), env));
        out.push_back(std::move(v));
      }
      return Value(std::move(out));
    }
    case Expr::Kind::kObjectLit: {
      const auto* e = static_cast<const ObjectLitExpr*>(expr);
      Object out;
      for (const auto& [key, val_expr] : e->props) {
        ASSIGN_OR_RETURN(Value v, EvalExpr(val_expr.get(), env));
        out[key] = std::move(v);
      }
      return Value(std::move(out));
    }
    case Expr::Kind::kFunction: {
      const auto* e = static_cast<const FunctionExpr*>(expr);
      Closure closure{&e->decl, env,
                      programs_.empty() ? nullptr : programs_.back()};
      return Value(std::move(closure));
    }
  }
  return Err(expr->line, "unknown expression");
}

Result<Value> Interpreter::EvalBinary(const BinaryExpr* e,
                                      std::shared_ptr<Environment> env) {
  ASSIGN_OR_RETURN(Value lhs, EvalExpr(e->lhs.get(), env));
  ASSIGN_OR_RETURN(Value rhs, EvalExpr(e->rhs.get(), env));
  const std::string& op = e->op;

  if (op == "==") return Value(lhs.Equals(rhs));
  if (op == "!=") return Value(!lhs.Equals(rhs));

  if (op == "+") {
    if (lhs.is_number() && rhs.is_number()) {
      return Value(lhs.AsNumber() + rhs.AsNumber());
    }
    if (lhs.is_string() || rhs.is_string()) {
      return Value(lhs.ToDisplayString() + rhs.ToDisplayString());
    }
    return Err(e->line, std::string("cannot add ") + lhs.TypeName() +
                            " and " + rhs.TypeName());
  }

  if (op == "<" || op == "<=" || op == ">" || op == ">=") {
    int cmp;
    if (lhs.is_number() && rhs.is_number()) {
      double a = lhs.AsNumber(), b = rhs.AsNumber();
      cmp = a < b ? -1 : (a > b ? 1 : 0);
    } else if (lhs.is_string() && rhs.is_string()) {
      cmp = lhs.AsString().compare(rhs.AsString());
      cmp = cmp < 0 ? -1 : (cmp > 0 ? 1 : 0);
    } else {
      return Err(e->line, std::string("cannot compare ") + lhs.TypeName() +
                              " and " + rhs.TypeName());
    }
    if (op == "<") return Value(cmp < 0);
    if (op == "<=") return Value(cmp <= 0);
    if (op == ">") return Value(cmp > 0);
    return Value(cmp >= 0);
  }

  if (!lhs.is_number() || !rhs.is_number()) {
    return Err(e->line, "'" + op + "' requires numbers");
  }
  double a = lhs.AsNumber(), b = rhs.AsNumber();
  if (op == "-") return Value(a - b);
  if (op == "*") return Value(a * b);
  if (op == "/") {
    if (b == 0) return Err(e->line, "division by zero");
    return Value(a / b);
  }
  if (op == "%") {
    if (b == 0) return Err(e->line, "modulo by zero");
    return Value(std::fmod(a, b));
  }
  return Err(e->line, "unknown operator '" + op + "'");
}

Result<Value> Interpreter::EvalAssign(const AssignExpr* e,
                                      std::shared_ptr<Environment> env) {
  ASSIGN_OR_RETURN(Value value, EvalExpr(e->value.get(), env));

  auto apply_op = [&](const Value& old) -> Result<Value> {
    if (e->op.empty()) return value;
    if (e->op == "+" ) {
      if (old.is_number() && value.is_number()) {
        return Value(old.AsNumber() + value.AsNumber());
      }
      if (old.is_string() || value.is_string()) {
        return Value(old.ToDisplayString() + value.ToDisplayString());
      }
      return Err(e->line, "invalid '+=' operands");
    }
    if (!old.is_number() || !value.is_number()) {
      return Err(e->line, "compound assignment requires numbers");
    }
    double a = old.AsNumber(), b = value.AsNumber();
    if (e->op == "-") return Value(a - b);
    if (e->op == "*") return Value(a * b);
    if (e->op == "/") {
      if (b == 0) return Err(e->line, "division by zero");
      return Value(a / b);
    }
    return Err(e->line, "unknown compound operator");
  };

  if (e->target->kind == Expr::Kind::kIdent) {
    const auto* t = static_cast<const IdentExpr*>(e->target.get());
    Value* slot = env->Find(t->name);
    if (slot == nullptr) {
      return Err(e->line, "assignment to undeclared variable '" + t->name +
                              "' (use let)");
    }
    ASSIGN_OR_RETURN(Value next, apply_op(*slot));
    *slot = next;
    return next;
  }
  if (e->target->kind == Expr::Kind::kMember) {
    const auto* t = static_cast<const MemberExpr*>(e->target.get());
    ASSIGN_OR_RETURN(Value object, EvalExpr(t->object.get(), env));
    if (!object.is_object()) {
      return Err(e->line, std::string("cannot set property on ") +
                              object.TypeName());
    }
    Object& obj = *object.AsObject();
    auto it = obj.find(t->name);
    Value old = it != obj.end() ? it->second : Value();
    ASSIGN_OR_RETURN(Value next, apply_op(old));
    obj[t->name] = next;
    return next;
  }
  if (e->target->kind == Expr::Kind::kIndex) {
    const auto* t = static_cast<const IndexExpr*>(e->target.get());
    ASSIGN_OR_RETURN(Value object, EvalExpr(t->object.get(), env));
    ASSIGN_OR_RETURN(Value index, EvalExpr(t->index.get(), env));
    if (object.is_object()) {
      if (!index.is_string()) {
        return Err(e->line, "object index must be a string");
      }
      Object& obj = *object.AsObject();
      auto it = obj.find(index.AsString());
      Value old = it != obj.end() ? it->second : Value();
      ASSIGN_OR_RETURN(Value next, apply_op(old));
      obj[index.AsString()] = next;
      return next;
    }
    if (object.is_array()) {
      if (!index.is_number()) {
        return Err(e->line, "array index must be a number");
      }
      Array& arr = *object.AsArray();
      auto i = static_cast<int64_t>(index.AsNumber());
      if (i < 0 || i > static_cast<int64_t>(arr.size())) {
        return Err(e->line, "array index out of range");
      }
      if (i == static_cast<int64_t>(arr.size())) arr.emplace_back();
      ASSIGN_OR_RETURN(Value next, apply_op(arr[i]));
      arr[i] = next;
      return next;
    }
    return Err(e->line, std::string("cannot index ") + object.TypeName());
  }
  return Err(e->line, "invalid assignment target");
}

Result<Value> Interpreter::MemberGet(const Value& object,
                                     const std::string& name, int line) {
  if (object.is_object()) {
    const Object& obj = *object.AsObject();
    auto it = obj.find(name);
    return it != obj.end() ? it->second : Value();
  }
  if (object.is_array()) {
    auto arr = object.AsArray();
    if (name == "length") return Value(arr->size());
    if (name == "push") {
      return Value(NativeFn([arr](std::vector<Value>& args) -> Result<Value> {
        for (Value& v : args) arr->push_back(std::move(v));
        return Value(arr->size());
      }));
    }
    if (name == "pop") {
      return Value(NativeFn([arr](std::vector<Value>&) -> Result<Value> {
        if (arr->empty()) return Value();
        Value v = std::move(arr->back());
        arr->pop_back();
        return v;
      }));
    }
    if (name == "includes") {
      return Value(NativeFn([arr](std::vector<Value>& args) -> Result<Value> {
        if (args.empty()) return Value(false);
        for (const Value& v : *arr) {
          if (v.Equals(args[0])) return Value(true);
        }
        return Value(false);
      }));
    }
    if (name == "join") {
      return Value(NativeFn([arr](std::vector<Value>& args) -> Result<Value> {
        std::string sep = !args.empty() && args[0].is_string()
                              ? args[0].AsString()
                              : ",";
        std::string out;
        for (size_t i = 0; i < arr->size(); ++i) {
          if (i > 0) out += sep;
          out += (*arr)[i].ToDisplayString();
        }
        return Value(std::move(out));
      }));
    }
    return Err(line, "unknown array member '" + name + "'");
  }
  if (object.is_string()) {
    const std::string s = object.AsString();
    if (name == "length") return Value(s.size());
    if (name == "startsWith") {
      return Value(NativeFn([s](std::vector<Value>& args) -> Result<Value> {
        if (args.empty() || !args[0].is_string()) return Value(false);
        return Value(s.rfind(args[0].AsString(), 0) == 0);
      }));
    }
    return Err(line, "unknown string member '" + name + "'");
  }
  if (object.is_null()) {
    return Err(line, "cannot read property '" + name + "' of null");
  }
  return Err(line, std::string("cannot read property of ") +
                       object.TypeName());
}

Result<Value> Interpreter::IndexGet(const Value& object, const Value& index,
                                    int line) {
  if (object.is_object()) {
    if (!index.is_string()) return Err(line, "object index must be a string");
    const Object& obj = *object.AsObject();
    auto it = obj.find(index.AsString());
    return it != obj.end() ? it->second : Value();
  }
  if (object.is_array()) {
    if (!index.is_number()) return Err(line, "array index must be a number");
    const Array& arr = *object.AsArray();
    auto i = static_cast<int64_t>(index.AsNumber());
    if (i < 0 || i >= static_cast<int64_t>(arr.size())) return Value();
    return arr[i];
  }
  if (object.is_string()) {
    if (!index.is_number()) return Err(line, "string index must be a number");
    const std::string& s = object.AsString();
    auto i = static_cast<int64_t>(index.AsNumber());
    if (i < 0 || i >= static_cast<int64_t>(s.size())) return Value();
    return Value(std::string(1, s[i]));
  }
  return Err(line, std::string("cannot index ") + object.TypeName());
}

// -------------------------------------------------------------- Builtins

void Interpreter::InstallBuiltins() {
  auto define = [&](const std::string& name, NativeFn fn) {
    globals_->Define(name, Value(std::move(fn)));
  };

  define("len", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("len takes 1 arg");
    const Value& v = args[0];
    if (v.is_string()) return Value(v.AsString().size());
    if (v.is_array()) return Value(v.AsArray()->size());
    if (v.is_object()) return Value(v.AsObject()->size());
    return Status::InvalidArgument(std::string("len of ") + v.TypeName());
  });
  define("str", [](std::vector<Value>& args) -> Result<Value> {
    std::string out;
    for (const Value& v : args) out += v.ToDisplayString();
    return Value(std::move(out));
  });
  define("num", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("num takes 1 arg");
    if (args[0].is_number()) return args[0];
    if (args[0].is_string()) {
      try {
        return Value(std::stod(args[0].AsString()));
      } catch (...) {
        return Status::InvalidArgument("num: not a number");
      }
    }
    if (args[0].is_bool()) return Value(args[0].AsBool() ? 1.0 : 0.0);
    return Status::InvalidArgument("num: unsupported type");
  });
  define("keys", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_object()) {
      return Status::InvalidArgument("keys takes an object");
    }
    Array out;
    for (const auto& [k, v] : *args[0].AsObject()) out.emplace_back(k);
    return Value(std::move(out));
  });
  define("has", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_object() || !args[1].is_string()) {
      return Status::InvalidArgument("has(obj, key)");
    }
    return Value(args[0].AsObject()->count(args[1].AsString()) > 0);
  });
  define("del", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_object() || !args[1].is_string()) {
      return Status::InvalidArgument("del(obj, key)");
    }
    return Value(args[0].AsObject()->erase(args[1].AsString()) > 0);
  });
  define("floor", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_number()) {
      return Status::InvalidArgument("floor takes a number");
    }
    return Value(std::floor(args[0].AsNumber()));
  });
  define("abs", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_number()) {
      return Status::InvalidArgument("abs takes a number");
    }
    return Value(std::abs(args[0].AsNumber()));
  });
  define("min", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_number() || !args[1].is_number()) {
      return Status::InvalidArgument("min takes two numbers");
    }
    return Value(std::min(args[0].AsNumber(), args[1].AsNumber()));
  });
  define("max", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 2 || !args[0].is_number() || !args[1].is_number()) {
      return Status::InvalidArgument("max takes two numbers");
    }
    return Value(std::max(args[0].AsNumber(), args[1].AsNumber()));
  });
  define("typeof", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) return Status::InvalidArgument("typeof takes 1 arg");
    return Value(std::string(args[0].TypeName()));
  });
  define("json_stringify", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1) {
      return Status::InvalidArgument("json_stringify takes 1 arg");
    }
    ASSIGN_OR_RETURN(json::Value j, args[0].ToJson());
    return Value(j.Dump());
  });
  define("json_parse", [](std::vector<Value>& args) -> Result<Value> {
    if (args.size() != 1 || !args[0].is_string()) {
      return Status::InvalidArgument("json_parse takes a string");
    }
    ASSIGN_OR_RETURN(json::Value j, json::Parse(args[0].AsString()));
    return Value::FromJson(j);
  });
}

}  // namespace ccf::script
