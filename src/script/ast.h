// AST for CCL. Produced by the parser, walked by the interpreter.

#ifndef CCF_SCRIPT_AST_H_
#define CCF_SCRIPT_AST_H_

#include <memory>
#include <string>
#include <vector>

#include "script/value.h"

namespace ccf::script {

struct Expr;
struct Stmt;
using ExprPtr = std::unique_ptr<Expr>;
using StmtPtr = std::unique_ptr<Stmt>;

struct Expr {
  enum class Kind {
    kLiteral,
    kIdent,
    kUnary,
    kBinary,
    kLogical,
    kTernary,
    kAssign,
    kCall,
    kMember,
    kIndex,
    kArrayLit,
    kObjectLit,
    kFunction,
  };

  explicit Expr(Kind kind, int line) : kind(kind), line(line) {}
  virtual ~Expr() = default;

  Kind kind;
  int line;
};

struct Stmt {
  enum class Kind {
    kExpr,
    kLet,
    kFunction,
    kIf,
    kWhile,
    kFor,
    kForOf,
    kReturn,
    kBreak,
    kContinue,
    kBlock,
  };

  explicit Stmt(Kind kind, int line) : kind(kind), line(line) {}
  virtual ~Stmt() = default;

  Kind kind;
  int line;
};

// ------------------------------------------------------------ Functions

struct BlockStmt;

struct FunctionDecl {
  std::string name;  // empty for anonymous function expressions
  std::vector<std::string> params;
  std::unique_ptr<BlockStmt> body;
  int line = 0;
};

// --------------------------------------------------------- Expressions

struct LiteralExpr : Expr {
  LiteralExpr(Value v, int line)
      : Expr(Kind::kLiteral, line), value(std::move(v)) {}
  Value value;
};

struct IdentExpr : Expr {
  IdentExpr(std::string n, int line)
      : Expr(Kind::kIdent, line), name(std::move(n)) {}
  std::string name;
};

struct UnaryExpr : Expr {
  UnaryExpr(char op, ExprPtr operand, int line)
      : Expr(Kind::kUnary, line), op(op), operand(std::move(operand)) {}
  char op;  // '!' or '-'
  ExprPtr operand;
};

struct BinaryExpr : Expr {
  BinaryExpr(std::string op, ExprPtr lhs, ExprPtr rhs, int line)
      : Expr(Kind::kBinary, line),
        op(std::move(op)),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  std::string op;  // + - * / % == != < <= > >=
  ExprPtr lhs;
  ExprPtr rhs;
};

struct LogicalExpr : Expr {
  LogicalExpr(bool is_and, ExprPtr lhs, ExprPtr rhs, int line)
      : Expr(Kind::kLogical, line),
        is_and(is_and),
        lhs(std::move(lhs)),
        rhs(std::move(rhs)) {}
  bool is_and;
  ExprPtr lhs;
  ExprPtr rhs;
};

struct TernaryExpr : Expr {
  TernaryExpr(ExprPtr cond, ExprPtr then_e, ExprPtr else_e, int line)
      : Expr(Kind::kTernary, line),
        cond(std::move(cond)),
        then_expr(std::move(then_e)),
        else_expr(std::move(else_e)) {}
  ExprPtr cond;
  ExprPtr then_expr;
  ExprPtr else_expr;
};

struct AssignExpr : Expr {
  AssignExpr(ExprPtr target, ExprPtr value, std::string op, int line)
      : Expr(Kind::kAssign, line),
        target(std::move(target)),
        value(std::move(value)),
        op(std::move(op)) {}
  ExprPtr target;  // IdentExpr, MemberExpr, or IndexExpr
  ExprPtr value;
  std::string op;  // "" for plain '=', else "+", "-", "*", "/"
};

struct CallExpr : Expr {
  CallExpr(ExprPtr callee, std::vector<ExprPtr> args, int line)
      : Expr(Kind::kCall, line),
        callee(std::move(callee)),
        args(std::move(args)) {}
  ExprPtr callee;
  std::vector<ExprPtr> args;
};

struct MemberExpr : Expr {
  MemberExpr(ExprPtr object, std::string name, int line)
      : Expr(Kind::kMember, line),
        object(std::move(object)),
        name(std::move(name)) {}
  ExprPtr object;
  std::string name;
};

struct IndexExpr : Expr {
  IndexExpr(ExprPtr object, ExprPtr index, int line)
      : Expr(Kind::kIndex, line),
        object(std::move(object)),
        index(std::move(index)) {}
  ExprPtr object;
  ExprPtr index;
};

struct ArrayLitExpr : Expr {
  ArrayLitExpr(std::vector<ExprPtr> elements, int line)
      : Expr(Kind::kArrayLit, line), elements(std::move(elements)) {}
  std::vector<ExprPtr> elements;
};

struct ObjectLitExpr : Expr {
  ObjectLitExpr(std::vector<std::pair<std::string, ExprPtr>> props, int line)
      : Expr(Kind::kObjectLit, line), props(std::move(props)) {}
  std::vector<std::pair<std::string, ExprPtr>> props;
};

struct FunctionExpr : Expr {
  FunctionExpr(FunctionDecl decl, int line)
      : Expr(Kind::kFunction, line), decl(std::move(decl)) {}
  FunctionDecl decl;
};

// ---------------------------------------------------------- Statements

struct ExprStmt : Stmt {
  ExprStmt(ExprPtr expr, int line)
      : Stmt(Kind::kExpr, line), expr(std::move(expr)) {}
  ExprPtr expr;
};

struct LetStmt : Stmt {
  LetStmt(std::string name, ExprPtr init, int line)
      : Stmt(Kind::kLet, line), name(std::move(name)), init(std::move(init)) {}
  std::string name;
  ExprPtr init;  // may be null
};

struct FunctionStmt : Stmt {
  FunctionStmt(FunctionDecl decl, int line)
      : Stmt(Kind::kFunction, line), decl(std::move(decl)) {}
  FunctionDecl decl;
};

struct BlockStmt : Stmt {
  BlockStmt(std::vector<StmtPtr> stmts, int line)
      : Stmt(Kind::kBlock, line), stmts(std::move(stmts)) {}
  std::vector<StmtPtr> stmts;
};

struct IfStmt : Stmt {
  IfStmt(ExprPtr cond, StmtPtr then_s, StmtPtr else_s, int line)
      : Stmt(Kind::kIf, line),
        cond(std::move(cond)),
        then_stmt(std::move(then_s)),
        else_stmt(std::move(else_s)) {}
  ExprPtr cond;
  StmtPtr then_stmt;
  StmtPtr else_stmt;  // may be null
};

struct WhileStmt : Stmt {
  WhileStmt(ExprPtr cond, StmtPtr body, int line)
      : Stmt(Kind::kWhile, line), cond(std::move(cond)), body(std::move(body)) {}
  ExprPtr cond;
  StmtPtr body;
};

struct ForStmt : Stmt {
  ForStmt(StmtPtr init, ExprPtr cond, ExprPtr step, StmtPtr body, int line)
      : Stmt(Kind::kFor, line),
        init(std::move(init)),
        cond(std::move(cond)),
        step(std::move(step)),
        body(std::move(body)) {}
  StmtPtr init;  // LetStmt or ExprStmt, may be null
  ExprPtr cond;  // may be null (infinite)
  ExprPtr step;  // may be null
  StmtPtr body;
};

// for (let x of collection) body — arrays iterate values, objects keys.
struct ForOfStmt : Stmt {
  ForOfStmt(std::string var, ExprPtr iterable, StmtPtr body, int line)
      : Stmt(Kind::kForOf, line),
        var(std::move(var)),
        iterable(std::move(iterable)),
        body(std::move(body)) {}
  std::string var;
  ExprPtr iterable;
  StmtPtr body;
};

struct ReturnStmt : Stmt {
  ReturnStmt(ExprPtr expr, int line)
      : Stmt(Kind::kReturn, line), expr(std::move(expr)) {}
  ExprPtr expr;  // may be null
};

struct BreakStmt : Stmt {
  explicit BreakStmt(int line) : Stmt(Kind::kBreak, line) {}
};

struct ContinueStmt : Stmt {
  explicit ContinueStmt(int line) : Stmt(Kind::kContinue, line) {}
};

// A parsed CCL program. Owns the whole AST.
struct Program {
  std::vector<StmtPtr> stmts;
};

}  // namespace ccf::script

#endif  // CCF_SCRIPT_AST_H_
