#include "script/value.h"

#include <cmath>

namespace ccf::script {

bool Value::Truthy() const {
  switch (type()) {
    case Type::kNull: return false;
    case Type::kBool: return AsBool();
    case Type::kNumber: return AsNumber() != 0.0 && !std::isnan(AsNumber());
    case Type::kString: return !AsString().empty();
    default: return true;
  }
}

bool Value::Equals(const Value& other) const {
  if (type() != other.type()) return false;
  switch (type()) {
    case Type::kNull: return true;
    case Type::kBool: return AsBool() == other.AsBool();
    case Type::kNumber: return AsNumber() == other.AsNumber();
    case Type::kString: return AsString() == other.AsString();
    case Type::kArray: {
      const auto& a = *AsArray();
      const auto& b = *other.AsArray();
      if (a.size() != b.size()) return false;
      for (size_t i = 0; i < a.size(); ++i) {
        if (!a[i].Equals(b[i])) return false;
      }
      return true;
    }
    case Type::kObject: {
      const auto& a = *AsObject();
      const auto& b = *other.AsObject();
      if (a.size() != b.size()) return false;
      for (const auto& [k, v] : a) {
        auto it = b.find(k);
        if (it == b.end() || !v.Equals(it->second)) return false;
      }
      return true;
    }
    case Type::kClosure: return AsClosure() == other.AsClosure();
    case Type::kNative: return false;
  }
  return false;
}

const char* Value::TypeName() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return "bool";
    case Type::kNumber: return "number";
    case Type::kString: return "string";
    case Type::kArray: return "array";
    case Type::kObject: return "object";
    case Type::kClosure: return "function";
    case Type::kNative: return "native function";
  }
  return "?";
}

std::string Value::ToDisplayString() const {
  switch (type()) {
    case Type::kNull: return "null";
    case Type::kBool: return AsBool() ? "true" : "false";
    case Type::kNumber: {
      double d = AsNumber();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        return std::to_string(static_cast<int64_t>(d));
      }
      return std::to_string(d);
    }
    case Type::kString: return AsString();
    case Type::kArray:
    case Type::kObject: {
      auto j = ToJson();
      return j.ok() ? j->Dump() : std::string("<unrepresentable>");
    }
    case Type::kClosure: return "<function>";
    case Type::kNative: return "<native>";
  }
  return "?";
}

Result<json::Value> Value::ToJson() const {
  switch (type()) {
    case Type::kNull: return json::Value(nullptr);
    case Type::kBool: return json::Value(AsBool());
    case Type::kNumber: {
      double d = AsNumber();
      if (d == static_cast<int64_t>(d) && std::abs(d) < 1e15) {
        return json::Value(static_cast<int64_t>(d));
      }
      return json::Value(d);
    }
    case Type::kString: return json::Value(AsString());
    case Type::kArray: {
      json::Array out;
      for (const Value& v : *AsArray()) {
        ASSIGN_OR_RETURN(json::Value j, v.ToJson());
        out.push_back(std::move(j));
      }
      return json::Value(std::move(out));
    }
    case Type::kObject: {
      json::Object out;
      for (const auto& [k, v] : *AsObject()) {
        ASSIGN_OR_RETURN(json::Value j, v.ToJson());
        out[k] = std::move(j);
      }
      return json::Value(std::move(out));
    }
    default:
      return Status::InvalidArgument("script: function not JSON-representable");
  }
}

Value Value::FromJson(const json::Value& j) {
  switch (j.type()) {
    case json::Value::Type::kNull: return Value();
    case json::Value::Type::kBool: return Value(j.AsBool());
    case json::Value::Type::kInt: return Value(static_cast<double>(j.AsInt()));
    case json::Value::Type::kDouble: return Value(j.AsDouble());
    case json::Value::Type::kString: return Value(j.AsString());
    case json::Value::Type::kArray: {
      Array out;
      for (const json::Value& e : j.AsArray()) out.push_back(FromJson(e));
      return Value(std::move(out));
    }
    case json::Value::Type::kObject: {
      Object out;
      for (const auto& [k, v] : j.AsObject()) out[k] = FromJson(v);
      return Value(std::move(out));
    }
  }
  return Value();
}

}  // namespace ccf::script
