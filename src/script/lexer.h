// Tokenizer for CCL.

#ifndef CCF_SCRIPT_LEXER_H_
#define CCF_SCRIPT_LEXER_H_

#include <string>
#include <vector>

#include "common/status.h"

namespace ccf::script {

struct Token {
  enum class Kind {
    kNumber,
    kString,
    kIdent,
    kKeyword,   // let function if else while for of return break continue
                // true false null
    kPunct,     // operators and punctuation
    kEof,
  };

  Kind kind;
  std::string text;   // identifier / keyword / punct spelling / string value
  double number = 0;  // for kNumber
  int line = 1;

  bool Is(Kind k, std::string_view t) const { return kind == k && text == t; }
  bool IsPunct(std::string_view t) const { return Is(Kind::kPunct, t); }
  bool IsKeyword(std::string_view t) const { return Is(Kind::kKeyword, t); }
};

// Tokenizes CCL source. Supports // and /* */ comments, decimal number
// literals, and single- or double-quoted strings with escapes.
Result<std::vector<Token>> Tokenize(std::string_view source);

}  // namespace ccf::script

#endif  // CCF_SCRIPT_LEXER_H_
