// Runtime values for CCL, the small JS-like language standing in for the
// paper's JavaScript runtime (QuickJS). Used by the programmable
// constitution (paper §5.1) and by scripted application endpoints
// (paper §7, Table 5).

#ifndef CCF_SCRIPT_VALUE_H_
#define CCF_SCRIPT_VALUE_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "common/status.h"
#include "json/json.h"

namespace ccf::script {

class Value;
struct FunctionDecl;  // AST node, defined in ast.h
class Environment;

using Array = std::vector<Value>;
using Object = std::map<std::string, Value>;

// A user-defined function value: AST + captured environment.
struct Closure {
  const FunctionDecl* decl;
  std::shared_ptr<Environment> env;
  // Keeps the owning program alive while the closure exists.
  std::shared_ptr<const void> program_keepalive;
};

// A host function exposed to scripts (e.g. kv.put).
using NativeFn =
    std::function<Result<Value>(std::vector<Value>& args)>;

class Value {
 public:
  enum class Type {
    kNull,
    kBool,
    kNumber,
    kString,
    kArray,
    kObject,
    kClosure,
    kNative
  };

  Value() : data_(std::monostate{}) {}
  Value(std::nullptr_t) : data_(std::monostate{}) {}        // NOLINT
  Value(bool b) : data_(b) {}                               // NOLINT
  Value(double d) : data_(d) {}                             // NOLINT
  Value(int i) : data_(static_cast<double>(i)) {}           // NOLINT
  Value(int64_t i) : data_(static_cast<double>(i)) {}       // NOLINT
  Value(uint64_t i) : data_(static_cast<double>(i)) {}      // NOLINT
  Value(const char* s) : data_(std::string(s)) {}           // NOLINT
  Value(std::string s) : data_(std::move(s)) {}             // NOLINT
  Value(Array a) : data_(std::make_shared<Array>(std::move(a))) {}   // NOLINT
  Value(Object o) : data_(std::make_shared<Object>(std::move(o))) {}  // NOLINT
  Value(std::shared_ptr<Array> a) : data_(std::move(a)) {}  // NOLINT
  Value(std::shared_ptr<Object> o) : data_(std::move(o)) {}  // NOLINT
  Value(Closure c) : data_(std::make_shared<Closure>(std::move(c))) {}  // NOLINT
  Value(NativeFn f) : data_(std::move(f)) {}                // NOLINT

  Type type() const { return static_cast<Type>(data_.index()); }
  bool is_null() const { return type() == Type::kNull; }
  bool is_bool() const { return type() == Type::kBool; }
  bool is_number() const { return type() == Type::kNumber; }
  bool is_string() const { return type() == Type::kString; }
  bool is_array() const { return type() == Type::kArray; }
  bool is_object() const { return type() == Type::kObject; }
  bool is_callable() const {
    return type() == Type::kClosure || type() == Type::kNative;
  }

  bool AsBool() const { return std::get<bool>(data_); }
  double AsNumber() const { return std::get<double>(data_); }
  const std::string& AsString() const { return std::get<std::string>(data_); }
  const std::shared_ptr<Array>& AsArray() const {
    return std::get<std::shared_ptr<Array>>(data_);
  }
  const std::shared_ptr<Object>& AsObject() const {
    return std::get<std::shared_ptr<Object>>(data_);
  }
  const std::shared_ptr<Closure>& AsClosure() const {
    return std::get<std::shared_ptr<Closure>>(data_);
  }
  const NativeFn& AsNative() const { return std::get<NativeFn>(data_); }

  // JS-like truthiness.
  bool Truthy() const;
  // Structural equality (functions compare by identity).
  bool Equals(const Value& other) const;
  // Human-readable rendering (used by str() and error messages).
  std::string ToDisplayString() const;

  const char* TypeName() const;

  // JSON bridge (closures/natives are not representable and fail).
  Result<json::Value> ToJson() const;
  static Value FromJson(const json::Value& j);

 private:
  std::variant<std::monostate, bool, double, std::string,
               std::shared_ptr<Array>, std::shared_ptr<Object>,
               std::shared_ptr<Closure>, NativeFn>
      data_;
};

}  // namespace ccf::script

#endif  // CCF_SCRIPT_VALUE_H_
