// Recursive-descent parser for CCL.

#ifndef CCF_SCRIPT_PARSER_H_
#define CCF_SCRIPT_PARSER_H_

#include <memory>

#include "common/status.h"
#include "script/ast.h"

namespace ccf::script {

// Parses CCL source into a Program. The shared_ptr keeps the AST alive for
// closures created during execution.
Result<std::shared_ptr<const Program>> Compile(std::string_view source);

}  // namespace ccf::script

#endif  // CCF_SCRIPT_PARSER_H_
