#include "http/http.h"

#include <algorithm>
#include <cctype>
#include <charconv>

namespace ccf::http {

namespace {

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string UrlDecode(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (size_t i = 0; i < s.size(); ++i) {
    if (s[i] == '+') {
      out.push_back(' ');
    } else if (s[i] == '%' && i + 2 < s.size()) {
      int hi = HexNibble(s[i + 1]);
      int lo = HexNibble(s[i + 2]);
      if (hi >= 0 && lo >= 0) {
        out.push_back(static_cast<char>(hi * 16 + lo));
        i += 2;
      } else {
        out.push_back('%');
      }
    } else {
      out.push_back(s[i]);
    }
  }
  return out;
}

ParsedTarget ParseTarget(const std::string& raw_target) {
  ParsedTarget out;
  size_t q = raw_target.find('?');
  if (q == std::string::npos) {
    out.path = raw_target;
    return out;
  }
  out.path = raw_target.substr(0, q);
  std::string_view rest(raw_target);
  rest.remove_prefix(q + 1);
  while (!rest.empty()) {
    size_t amp = rest.find('&');
    std::string_view pair =
        amp == std::string_view::npos ? rest : rest.substr(0, amp);
    if (!pair.empty()) {
      size_t eq = pair.find('=');
      std::string key = UrlDecode(eq == std::string_view::npos
                                      ? pair
                                      : pair.substr(0, eq));
      std::string value =
          eq == std::string_view::npos ? "" : UrlDecode(pair.substr(eq + 1));
      if (!key.empty()) out.params.emplace(std::move(key), std::move(value));
    }
    if (amp == std::string_view::npos) break;
    rest.remove_prefix(amp + 1);
  }
  return out;
}

std::string Request::QueryParam(const std::string& name) const {
  auto params = ParseTarget(path).params;
  auto it = params.find(name);
  return it != params.end() ? it->second : "";
}

namespace {

std::string ToLower(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::tolower(c); });
  return s;
}

void AppendStr(Bytes* out, std::string_view s) {
  out->insert(out->end(), s.begin(), s.end());
}

// Finds "\r\n\r\n"; returns offset past it, or npos.
size_t FindHeaderEnd(const Bytes& buf) {
  for (size_t i = 0; i + 3 < buf.size(); ++i) {
    if (buf[i] == '\r' && buf[i + 1] == '\n' && buf[i + 2] == '\r' &&
        buf[i + 3] == '\n') {
      return i + 4;
    }
  }
  return std::string::npos;
}

struct ParsedHead {
  std::string first_line;
  std::map<std::string, std::string> headers;
  size_t body_len = 0;
};

Result<ParsedHead> ParseHead(const Bytes& buf, size_t head_end) {
  ParsedHead out;
  std::string head(buf.begin(), buf.begin() + head_end - 4);
  size_t pos = 0;
  bool first = true;
  while (pos <= head.size()) {
    size_t eol = head.find("\r\n", pos);
    std::string line =
        eol == std::string::npos ? head.substr(pos) : head.substr(pos, eol - pos);
    if (first) {
      out.first_line = line;
      first = false;
    } else if (!line.empty()) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) {
        return Status::InvalidArgument("http: malformed header line");
      }
      std::string name = ToLower(line.substr(0, colon));
      size_t vstart = line.find_first_not_of(' ', colon + 1);
      std::string value =
          vstart == std::string::npos ? "" : line.substr(vstart);
      out.headers[name] = value;
    }
    if (eol == std::string::npos) break;
    pos = eol + 2;
  }
  auto it = out.headers.find("content-length");
  if (it != out.headers.end()) {
    size_t v = 0;
    auto [p, ec] =
        std::from_chars(it->second.data(), it->second.data() + it->second.size(), v);
    if (ec != std::errc() || p != it->second.data() + it->second.size()) {
      return Status::InvalidArgument("http: bad content-length");
    }
    if (v > (64u << 20)) {
      return Status::InvalidArgument("http: body too large");
    }
    out.body_len = v;
  }
  return out;
}

}  // namespace

const char* ReasonPhrase(int status) {
  switch (status) {
    case 200: return "OK";
    case 204: return "No Content";
    case 400: return "Bad Request";
    case 401: return "Unauthorized";
    case 403: return "Forbidden";
    case 404: return "Not Found";
    case 409: return "Conflict";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

Bytes Request::Serialize() const {
  Bytes out;
  AppendStr(&out, method);
  AppendStr(&out, " ");
  AppendStr(&out, path);
  AppendStr(&out, " HTTP/1.1\r\n");
  for (const auto& [name, value] : headers) {
    AppendStr(&out, name);
    AppendStr(&out, ": ");
    AppendStr(&out, value);
    AppendStr(&out, "\r\n");
  }
  if (headers.find("content-length") == headers.end()) {
    AppendStr(&out, "content-length: " + std::to_string(body.size()) + "\r\n");
  }
  AppendStr(&out, "\r\n");
  Append(&out, body);
  return out;
}

Bytes Response::Serialize() const {
  Bytes out;
  AppendStr(&out, "HTTP/1.1 " + std::to_string(status) + " " +
                      ReasonPhrase(status) + "\r\n");
  for (const auto& [name, value] : headers) {
    AppendStr(&out, name);
    AppendStr(&out, ": ");
    AppendStr(&out, value);
    AppendStr(&out, "\r\n");
  }
  if (headers.find("content-length") == headers.end()) {
    AppendStr(&out, "content-length: " + std::to_string(body.size()) + "\r\n");
  }
  AppendStr(&out, "\r\n");
  Append(&out, body);
  return out;
}

template <>
Result<std::optional<Request>> Parser<Request>::Next() {
  size_t head_end = FindHeaderEnd(buffer_);
  if (head_end == std::string::npos) return std::optional<Request>{};
  // On a malformed head, consume through it before surfacing the error;
  // otherwise the session would re-parse the same poisoned bytes forever.
  auto reject = [&](Status error) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + head_end);
    return error;
  };
  auto head_or = ParseHead(buffer_, head_end);
  if (!head_or.ok()) return reject(head_or.status());
  ParsedHead head = std::move(*head_or);
  if (buffer_.size() < head_end + head.body_len) {
    return std::optional<Request>{};  // body incomplete
  }
  // Request line: METHOD SP PATH SP VERSION
  size_t sp1 = head.first_line.find(' ');
  size_t sp2 =
      sp1 == std::string::npos ? std::string::npos
                               : head.first_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos) {
    return reject(Status::InvalidArgument("http: malformed request line"));
  }
  std::string version = head.first_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) {
    return reject(Status::InvalidArgument("http: unsupported version"));
  }
  Request req;
  req.method = head.first_line.substr(0, sp1);
  req.path = head.first_line.substr(sp1 + 1, sp2 - sp1 - 1);
  req.headers = std::move(head.headers);
  req.body.assign(buffer_.begin() + head_end,
                  buffer_.begin() + head_end + head.body_len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + head_end + head.body_len);
  return std::optional<Request>(std::move(req));
}

template <>
Result<std::optional<Response>> Parser<Response>::Next() {
  size_t head_end = FindHeaderEnd(buffer_);
  if (head_end == std::string::npos) return std::optional<Response>{};
  auto reject = [&](Status error) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + head_end);
    return error;
  };
  auto head_or = ParseHead(buffer_, head_end);
  if (!head_or.ok()) return reject(head_or.status());
  ParsedHead head = std::move(*head_or);
  if (buffer_.size() < head_end + head.body_len) {
    return std::optional<Response>{};
  }
  // Status line: VERSION SP CODE SP REASON
  if (head.first_line.rfind("HTTP/1.", 0) != 0) {
    return reject(Status::InvalidArgument("http: malformed status line"));
  }
  size_t sp1 = head.first_line.find(' ');
  if (sp1 == std::string::npos) {
    return reject(Status::InvalidArgument("http: malformed status line"));
  }
  int code = std::atoi(head.first_line.c_str() + sp1 + 1);
  if (code < 100 || code > 599) {
    return reject(Status::InvalidArgument("http: bad status code"));
  }
  Response resp;
  resp.status = code;
  resp.headers = std::move(head.headers);
  resp.body.assign(buffer_.begin() + head_end,
                   buffer_.begin() + head_end + head.body_len);
  buffer_.erase(buffer_.begin(), buffer_.begin() + head_end + head.body_len);
  return std::optional<Response>(std::move(resp));
}

template class Parser<Request>;
template class Parser<Response>;

}  // namespace ccf::http
