// Minimal HTTP/1.1 message codec (paper §3.1: users invoke endpoints using
// the HTTP REST API; §7: custom transaction-ID response header).
//
// Supports the subset CCF needs: request line, status line, headers,
// Content-Length bodies, incremental parsing of a byte stream (records
// arriving over STLS sessions may be split or pipelined).

#ifndef CCF_HTTP_HTTP_H_
#define CCF_HTTP_HTTP_H_

#include <map>
#include <optional>
#include <string>

#include "common/bytes.h"
#include "common/status.h"

namespace ccf::http {

// The response header carrying the transaction ID (paper §7).
inline constexpr char kTxIdHeader[] = "x-ccf-tx-id";

// Percent-decodes %XX escapes and '+' (as space) in a URL component.
// Malformed escapes are kept verbatim.
std::string UrlDecode(std::string_view s);

// Splits a request target "/path?k=v&flag" into the path and the decoded
// query parameters (duplicate keys keep the first value).
struct ParsedTarget {
  std::string path;
  std::map<std::string, std::string> params;
};
ParsedTarget ParseTarget(const std::string& raw_target);

struct Request {
  std::string method;  // GET, POST, ...
  std::string path;    // /app/log?id=1, /gov/proposals, ... (raw target)
  std::map<std::string, std::string> headers;  // lowercase names
  Bytes body;

  std::string GetHeader(const std::string& name) const {
    auto it = headers.find(name);
    return it != headers.end() ? it->second : "";
  }

  // Path with any ?query suffix removed (endpoint lookup key).
  std::string PathOnly() const { return ParseTarget(path).path; }
  // Decoded query-string parameter, "" when absent.
  std::string QueryParam(const std::string& name) const;
  std::map<std::string, std::string> QueryParams() const {
    return ParseTarget(path).params;
  }

  Bytes Serialize() const;
};

struct Response {
  int status = 200;
  std::map<std::string, std::string> headers;
  Bytes body;

  std::string GetHeader(const std::string& name) const {
    auto it = headers.find(name);
    return it != headers.end() ? it->second : "";
  }

  Bytes Serialize() const;
};

const char* ReasonPhrase(int status);

// Incremental parser: feed bytes, poll complete messages. One instance per
// direction of a session.
template <typename Message>
class Parser {
 public:
  void Feed(ByteSpan data) { Append(&buffer_, data); }

  // Returns a complete message if available, nullopt if more bytes are
  // needed, or an error on malformed input.
  Result<std::optional<Message>> Next();

 private:
  Bytes buffer_;
};

using RequestParser = Parser<Request>;
using ResponseParser = Parser<Response>;

}  // namespace ccf::http

#endif  // CCF_HTTP_HTTP_H_
