// Property tests for crypto::VerifyBatch (random-linear-combination batch
// verification): a valid batch always passes; one forged signature fails
// the batch and the per-signature fallback pinpoints exactly the culprit,
// for every position and batch size.

#include <gtest/gtest.h>

#include <vector>

#include "crypto/hmac.h"
#include "crypto/sign.h"

namespace ccf::crypto {
namespace {

constexpr size_t kMaxBatch = 64;

// One signer set, built once: signing is the expensive part of this suite.
struct Fixture {
  std::vector<KeyPair> keys;
  std::vector<Bytes> msgs;
  std::vector<SignatureBytes> sigs;

  Fixture() {
    for (size_t i = 0; i < kMaxBatch; ++i) {
      keys.push_back(
          KeyPair::FromSeed(ToBytes("batch-signer-" + std::to_string(i % 7))));
      msgs.push_back(ToBytes("signed merkle root #" + std::to_string(i)));
      sigs.push_back(keys.back().Sign(msgs.back()));
    }
  }

  std::vector<BatchVerifyItem> Items(size_t n,
                                     const std::vector<SignatureBytes>& s) {
    std::vector<BatchVerifyItem> items;
    for (size_t i = 0; i < n; ++i) {
      items.push_back({keys[i].public_key(), msgs[i], s[i]});
    }
    return items;
  }
};

Fixture& F() {
  static Fixture f;
  return f;
}

TEST(VerifyBatch, AllValidPassesEverySize) {
  for (size_t n = 1; n <= kMaxBatch; ++n) {
    Drbg drbg("batch-valid", n);
    std::vector<bool> ok;
    auto items = F().Items(n, F().sigs);
    EXPECT_TRUE(VerifyBatch(items, &drbg, &ok)) << "n=" << n;
    ASSERT_EQ(ok.size(), n);
    for (size_t i = 0; i < n; ++i) EXPECT_TRUE(ok[i]) << "n=" << n;
  }
}

TEST(VerifyBatch, OneForgedRejectsOnlyThat) {
  // Every position for small batches; a rotating position for the rest
  // (the fallback cost is linear in n, so exhaustive n x position would
  // dominate the suite's runtime without adding coverage).
  for (size_t n = 1; n <= kMaxBatch; ++n) {
    std::vector<size_t> positions;
    if (n <= 8) {
      for (size_t p = 0; p < n; ++p) positions.push_back(p);
    } else {
      positions.push_back(0);
      positions.push_back(n - 1);
      positions.push_back((n * 7 + 3) % n);
    }
    for (size_t forged : positions) {
      std::vector<SignatureBytes> sigs = F().sigs;
      sigs[forged][7] ^= 0x40;
      Drbg drbg("batch-forged", n);
      std::vector<bool> ok;
      auto items = F().Items(n, sigs);
      EXPECT_FALSE(VerifyBatch(items, &drbg, &ok))
          << "n=" << n << " forged=" << forged;
      ASSERT_EQ(ok.size(), n);
      for (size_t i = 0; i < n; ++i) {
        EXPECT_EQ(ok[i], i != forged) << "n=" << n << " forged=" << forged;
      }
    }
  }
}

TEST(VerifyBatch, WrongMessageRejected) {
  std::vector<BatchVerifyItem> items = F().Items(4, F().sigs);
  Bytes wrong = ToBytes("a different message entirely");
  items[2].msg = wrong;
  Drbg drbg("batch-wrong-msg", 0);
  std::vector<bool> ok;
  EXPECT_FALSE(VerifyBatch(items, &drbg, &ok));
  EXPECT_EQ(ok, (std::vector<bool>{true, true, false, true}));
}

TEST(VerifyBatch, WrongKeyRejected) {
  std::vector<BatchVerifyItem> items = F().Items(4, F().sigs);
  KeyPair other = KeyPair::FromSeed(ToBytes("not-the-signer"));
  items[1].pub = other.public_key();
  Drbg drbg("batch-wrong-key", 0);
  std::vector<bool> ok;
  EXPECT_FALSE(VerifyBatch(items, &drbg, &ok));
  EXPECT_EQ(ok, (std::vector<bool>{true, false, true, true}));
}

TEST(VerifyBatch, MalformedItemsExcludedUpFront) {
  // Truncated signature, truncated public key, and a non-canonical s are
  // all marked invalid without poisoning the rest of the batch.
  std::vector<BatchVerifyItem> items = F().Items(5, F().sigs);
  items[0].sig = items[0].sig.subspan(0, 63);
  items[1].pub = items[1].pub.subspan(0, 31);
  SignatureBytes bad_s = F().sigs[3];
  for (size_t i = 32; i < 64; ++i) bad_s[i] = 0xff;  // s >= group order
  items[3].sig = bad_s;
  Drbg drbg("batch-malformed", 0);
  std::vector<bool> ok;
  EXPECT_FALSE(VerifyBatch(items, &drbg, &ok));
  EXPECT_EQ(ok, (std::vector<bool>{false, false, true, false, true}));
}

TEST(VerifyBatch, EmptyBatchPasses) {
  Drbg drbg("batch-empty", 0);
  std::vector<bool> ok;
  EXPECT_TRUE(VerifyBatch({}, &drbg, &ok));
  EXPECT_TRUE(ok.empty());
}

TEST(VerifyBatch, DrbgStateDoesNotAffectOutcome) {
  // Combiner scalars come from the caller's DRBG; any stream position must
  // give the same accept/reject decisions.
  auto items = F().Items(8, F().sigs);
  Drbg a("combiner-a", 1);
  Drbg b("combiner-b", 2);
  b.Generate(123);  // desync the stream
  EXPECT_TRUE(VerifyBatch(items, &a));
  EXPECT_TRUE(VerifyBatch(items, &b));

  std::vector<SignatureBytes> sigs = F().sigs;
  sigs[5][0] ^= 1;
  auto forged = F().Items(8, sigs);
  std::vector<bool> ok_a, ok_b;
  Drbg c("combiner-c", 3);
  EXPECT_FALSE(VerifyBatch(forged, &a, &ok_a));
  EXPECT_FALSE(VerifyBatch(forged, &c, &ok_b));
  EXPECT_EQ(ok_a, ok_b);
}

TEST(VerifyBatch, AgreesWithSerialVerify) {
  // Cross-check against the single-signature verifier on a mixed batch.
  std::vector<SignatureBytes> sigs = F().sigs;
  sigs[1][10] ^= 2;
  sigs[6][0] ^= 8;
  auto items = F().Items(8, sigs);
  Drbg drbg("batch-cross", 0);
  std::vector<bool> ok;
  VerifyBatch(items, &drbg, &ok);
  for (size_t i = 0; i < items.size(); ++i) {
    EXPECT_EQ(ok[i], Verify(items[i].pub, items[i].msg, items[i].sig))
        << "i=" << i;
  }
}

}  // namespace
}  // namespace ccf::crypto
