// Self-checks for the observability subsystem (registered under the
// "observe" ctest label): histogram bucket math and percentile accuracy
// against an exact sort, counter/histogram atomicity under concurrent
// writers (meaningful under TSan), registry namespace rules, time-series
// ring behaviour, and Prometheus name sanitization.

#include <gtest/gtest.h>

#include <algorithm>
#include <thread>
#include <vector>

#include "crypto/hmac.h"
#include "observe/metrics.h"

namespace ccf::observe {
namespace {

TEST(Histogram, BucketIndexRoundTrip) {
  // Values below 2^kSubBits land in exact buckets.
  for (uint64_t v = 0; v < Histogram::kSubCount; ++v) {
    EXPECT_EQ(Histogram::BucketIndex(v), v);
    EXPECT_EQ(Histogram::BucketUpperBound(v), v);
  }
  // Every probed value maps to a bucket whose upper bound contains it,
  // and the upper bound maps back to the same bucket.
  std::vector<uint64_t> probes = {16, 17, 31, 32, 100, 1000, 4095, 4096};
  for (int shift = 5; shift < 64; ++shift) {
    probes.push_back((uint64_t{1} << shift) - 1);
    probes.push_back(uint64_t{1} << shift);
    if (shift < 63) probes.push_back((uint64_t{1} << shift) + 3);
  }
  for (uint64_t v : probes) {
    size_t idx = Histogram::BucketIndex(v);
    ASSERT_LT(idx, Histogram::kBucketCount) << v;
    uint64_t ub = Histogram::BucketUpperBound(idx);
    EXPECT_GE(ub, v) << v;
    EXPECT_EQ(Histogram::BucketIndex(ub), idx) << v;
    // Bucket width bounds the relative error: upper bound at most
    // (1 + 1/16) of the value for anything past the exact range.
    if (v >= Histogram::kSubCount) {
      EXPECT_LE(ub - v, v / Histogram::kSubCount) << v;
    }
  }
}

TEST(Histogram, QuantileMatchesExactSortWithinBucketError) {
  crypto::Drbg rng("observe-selfcheck", 1);
  Histogram h;
  std::vector<uint64_t> values;
  for (int i = 0; i < 20000; ++i) {
    // Log-uniform spread over ~6 orders of magnitude, the shape of a
    // latency distribution with a long tail.
    uint64_t magnitude = rng.Uniform(20);
    uint64_t v = (uint64_t{1} << magnitude) + rng.Uniform(1 + (uint64_t{1} << magnitude));
    values.push_back(v);
    h.Record(v);
  }
  std::sort(values.begin(), values.end());
  ASSERT_EQ(h.count(), values.size());
  EXPECT_EQ(h.max(), values.back());

  for (double q : {0.5, 0.9, 0.99, 0.999}) {
    size_t rank = static_cast<size_t>(q * static_cast<double>(values.size()));
    if (rank == 0) rank = 1;
    uint64_t exact = values[rank - 1];
    uint64_t est = h.Quantile(q);
    // The estimate reports the containing bucket's upper bound, so it
    // never undershoots and overshoots by at most 1/16 relative.
    EXPECT_GE(est, exact) << "q=" << q;
    EXPECT_LE(est, exact + exact / Histogram::kSubCount + 1) << "q=" << q;
  }
  // Degenerate quantiles stay in range.
  EXPECT_GE(h.Quantile(0.0), values.front());
  EXPECT_EQ(h.Quantile(1.0), values.back());
}

TEST(Histogram, EmptyAndSingleValue) {
  Histogram h;
  EXPECT_EQ(h.Quantile(0.5), 0u);
  EXPECT_EQ(h.GetSnapshot().count, 0u);
  h.Record(42);
  Histogram::Snapshot s = h.GetSnapshot();
  EXPECT_EQ(s.count, 1u);
  EXPECT_EQ(s.sum, 42u);
  EXPECT_EQ(s.max, 42u);
  // A single sample: every percentile is that sample (clamped to max).
  EXPECT_EQ(s.p50, 42u);
  EXPECT_EQ(s.p99, 42u);
}

TEST(ConcurrentWriters, CountersAndHistogramsStayConsistent) {
  Registry reg;
  Counter* c = reg.GetCounter("contended.counter");
  Histogram* h = reg.GetHistogram("contended.histogram");
  Gauge* g = reg.GetGauge("contended.gauge");
  constexpr int kThreads = 8;
  constexpr uint64_t kPerThread = 20000;
  std::vector<std::thread> threads;
  threads.reserve(kThreads);
  for (int t = 0; t < kThreads; ++t) {
    threads.emplace_back([&, t] {
      for (uint64_t i = 0; i < kPerThread; ++i) {
        c->Inc();
        h->Record(i + 1);
        g->Set(static_cast<uint64_t>(t) * kPerThread + i);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(c->value(), kThreads * kPerThread);
  EXPECT_EQ(h->count(), kThreads * kPerThread);
  EXPECT_EQ(h->sum(), kThreads * (kPerThread * (kPerThread + 1) / 2));
  EXPECT_EQ(h->max(), kPerThread);
  // The gauge's high-water mark saw the global maximum.
  EXPECT_EQ(g->max(), uint64_t{kThreads - 1} * kPerThread + kPerThread - 1);
}

TEST(Registry, KindMismatchReturnsNull) {
  Registry reg;
  ASSERT_NE(reg.GetCounter("a.metric"), nullptr);
  EXPECT_EQ(reg.GetGauge("a.metric"), nullptr);
  EXPECT_EQ(reg.GetHistogram("a.metric"), nullptr);
  EXPECT_EQ(reg.GetTimeSeries("a.metric"), nullptr);
  // Same kind, same name: same stable pointer.
  EXPECT_EQ(reg.GetCounter("a.metric"), reg.GetCounter("a.metric"));
  // Read-side lookups respect kinds too.
  EXPECT_NE(reg.FindCounter("a.metric"), nullptr);
  EXPECT_EQ(reg.FindGauge("a.metric"), nullptr);
  EXPECT_EQ(reg.FindCounter("missing"), nullptr);
}

TEST(Registry, ScalarValueReadsCountersAndGauges) {
  Registry reg;
  reg.GetCounter("c")->Inc(7);
  reg.GetGauge("g")->Set(9);
  reg.GetHistogram("h")->Record(5);
  EXPECT_EQ(reg.ScalarValue("c"), 7u);
  EXPECT_EQ(reg.ScalarValue("g"), 9u);
  EXPECT_EQ(reg.ScalarValue("h"), 0u);  // histograms are not scalars
  EXPECT_EQ(reg.ScalarValue("missing"), 0u);
}

TEST(TimeSeries, RingOverwritesOldestAndKeepsOrder) {
  TimeSeries ts(4);
  for (uint64_t i = 0; i < 10; ++i) ts.Sample(i * 10, i);
  EXPECT_EQ(ts.total_samples(), 10u);
  auto samples = ts.Samples();
  ASSERT_EQ(samples.size(), 4u);
  for (size_t i = 0; i < samples.size(); ++i) {
    EXPECT_EQ(samples[i].value, 6 + i);
    EXPECT_EQ(samples[i].t_ms, (6 + i) * 10);
  }
}

TEST(Exposition, JsonAndPrometheusShapes) {
  Registry reg;
  reg.GetCounter("rpc.requests.GET /app/log")->Inc(3);
  reg.GetGauge("tee.h2e.ring_used_bytes")->Set(128);
  reg.GetHistogram("rpc.latency_us.GET /app/log")->Record(250);

  json::Value j = reg.ToJson();
  const json::Value* counters = j.Get("counters");
  ASSERT_NE(counters, nullptr);
  EXPECT_EQ(counters->GetInt("rpc.requests.GET /app/log"), 3);
  const json::Value* gauges = j.Get("gauges");
  ASSERT_NE(gauges, nullptr);
  const json::Value* ring = gauges->Get("tee.h2e.ring_used_bytes");
  ASSERT_NE(ring, nullptr);
  EXPECT_EQ(ring->GetInt("value"), 128);
  EXPECT_EQ(ring->GetInt("max"), 128);
  const json::Value* hists = j.Get("histograms");
  ASSERT_NE(hists, nullptr);
  const json::Value* lat = hists->Get("rpc.latency_us.GET /app/log");
  ASSERT_NE(lat, nullptr);
  EXPECT_EQ(lat->GetInt("count"), 1);

  std::string prom = reg.ToPrometheus();
  EXPECT_NE(prom.find("# TYPE ccf_rpc_requests_GET__app_log counter"),
            std::string::npos);
  EXPECT_NE(prom.find("ccf_rpc_requests_GET__app_log 3"), std::string::npos);
  EXPECT_NE(prom.find("quantile=\"0.99\""), std::string::npos);
  EXPECT_NE(prom.find("ccf_tee_h2e_ring_used_bytes_max 128"),
            std::string::npos);
}

TEST(Exposition, PrometheusNameSanitization) {
  EXPECT_EQ(PrometheusName("ccf", "rpc.latency_us.GET /app/log"),
            "ccf_rpc_latency_us_GET__app_log");
  EXPECT_EQ(PrometheusName("ccf", "simple"), "ccf_simple");
  EXPECT_EQ(PrometheusName("x", "a:b-c"), "x_a:b_c");
}

}  // namespace
}  // namespace ccf::observe
