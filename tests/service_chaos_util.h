// Shared seeded-chaos runner over full services (paper §5): a three-node
// service with real STLS sessions, governance, signatures, snapshots and
// ledgers, driven through seeded link faults, partitions and crashes while
// sim::InvariantChecker observes every node after every simulated
// millisecond. Convergence is checked down to byte-identical Merkle roots
// and committed KV state. Used by service_chaos_test.cc (worker-pool
// offload determinism) and exec_chaos_test.cc (batched optimistic
// execution determinism).

#ifndef CCF_TESTS_SERVICE_CHAOS_UTIL_H_
#define CCF_TESTS_SERVICE_CHAOS_UTIL_H_

#include <sstream>
#include <string>
#include <vector>

#include "common/hex.h"
#include "sim/aggregator.h"
#include "tests/service_harness.h"

namespace ccf::testing {

inline const std::vector<std::string> kChaosNodeIds = {"n0", "n1", "n2"};

struct ChaosOutcome {
  std::string failure;   // empty = invariants held and the service converged
  std::string schedule;  // human-readable, replayable fault schedule
  std::string trace;     // per-round state fingerprint (determinism checks)
  // Post-convergence per-node digest (commit seqno, Merkle root, committed
  // KV state) -- compared across worker_threads / exec_threads settings.
  std::string final_state;
  // End-of-run metrics report (sim::MetricsAggregator JSON) when requested.
  // Reading metrics must not perturb the run: schedule/trace/final_state
  // are asserted identical with and without it.
  std::string report;
};

inline void HealEverything(ServiceHarness* h) {
  for (const std::string& a : kChaosNodeIds) {
    for (const std::string& b : kChaosNodeIds) {
      if (a == b) continue;
      h->env().SetBlockedOneWay(a, b, false);
      h->env().SetPartitioned(a, b, false);
    }
    h->env().SetUp(a, true);
  }
  h->env().ClearLinkFaults();
}

inline bool Quiesced(ServiceHarness* h) {
  uint64_t last = 0;
  bool first = true;
  for (const std::string& id : kChaosNodeIds) {
    node::Node* n = h->node(id);
    if (n == nullptr || !n->has_joined() || !n->raft().InActiveConfig()) {
      return false;
    }
    if (first) {
      last = n->last_seqno();
      first = false;
    }
    if (n->last_seqno() != last || n->commit_seqno() != last) return false;
  }
  return last > 0;
}

inline ChaosOutcome RunServiceChaos(uint64_t seed, uint64_t worker_threads = 0,
                                    bool with_metrics_report = false,
                                    uint64_t exec_threads = 0) {
  ChaosOutcome out;
  std::ostringstream schedule;
  std::ostringstream trace;

  sim::EnvOptions opts;
  opts.seed = seed;
  ServiceHarness h(opts);
  // Blocking offload (worker_async=false) and batched request execution
  // must be indistinguishable from the sync baseline in virtual time:
  // everything below -- the trace, the fault schedule and the final state
  // digests -- is asserted identical across worker_threads settings by
  // WorkerThreadsPreserveDeterminism and across exec_threads settings by
  // ExecThreadsPreserveDeterminism.
  h.SetConfigTweak([worker_threads, exec_threads](node::NodeConfig* cfg) {
    cfg->worker_threads = worker_threads;
    cfg->exec_threads = exec_threads;
  });
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  if (n0 == nullptr) {
    out.failure = "genesis failed";
    return out;
  }
  // Joins and governance need a clean network (STLS is order-sensitive).
  if (h.JoinAndTrust("n1") == nullptr || h.JoinAndTrust("n2") == nullptr) {
    out.failure = "join failed on clean network";
    return out;
  }
  sim::InvariantChecker& checker = h.EnableInvariantChecker();

  // Optional metrics aggregation riding alongside the invariant checker
  // (both are Environment step observers). Strictly read-only over each
  // node's registry, so attaching it must not change the run.
  sim::MetricsAggregator aggregator;
  if (with_metrics_report) {
    for (const std::string& id : kChaosNodeIds) {
      aggregator.Track(id, &h.node(id)->metrics());
    }
    aggregator.Watch("consensus.commit_seqno");
    aggregator.Watch("tee.e2h.ring_used_bytes");
    aggregator.Attach(&h.env(), /*sample_every_ms=*/20);
  }

  // Committed baseline data before the faults start.
  {
    node::Client* c = h.UserClient("alice");
    for (int i = 0; i < 4; ++i) {
      json::Object msg;
      msg["id"] = i;
      msg["msg"] = "pre-chaos-" + std::to_string(i);
      auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 3000);
      if (!w.ok() || w->status != 200) {
        out.failure = "baseline write failed";
        return out;
      }
    }
  }

  crypto::Drbg chaos("service-chaos", seed);

  sim::LinkFaults faults;
  faults.drop = static_cast<double>(1 + chaos.Uniform(5)) / 100.0;
  faults.duplicate = static_cast<double>(chaos.Uniform(6)) / 100.0;
  faults.reorder = static_cast<double>(chaos.Uniform(6)) / 100.0;
  faults.extra_delay_max_ms = chaos.Uniform(3);
  h.env().SetFaultsAmong(kChaosNodeIds, faults);
  schedule << "seed " << seed << " link faults: drop=" << faults.drop
           << " dup=" << faults.duplicate << " reorder=" << faults.reorder
           << " delay<=" << faults.extra_delay_max_ms << "ms\n";

  int written = 0;
  for (int round = 0; round < 12; ++round) {
    uint64_t now = h.env().now_ms();
    uint64_t action = chaos.Uniform(10);
    const std::string& victim =
        kChaosNodeIds[chaos.Uniform(kChaosNodeIds.size())];
    const std::string& other =
        kChaosNodeIds[chaos.Uniform(kChaosNodeIds.size())];
    if (action < 2 && victim != other) {
      bool on = chaos.Uniform(2) == 0;
      h.env().SetPartitioned(victim, other, on);
      schedule << "t=" << now << " partition " << victim << "<->" << other
               << (on ? " on" : " off") << "\n";
    } else if (action < 4 && victim != other) {
      bool on = chaos.Uniform(2) == 0;
      h.env().SetBlockedOneWay(victim, other, on);
      schedule << "t=" << now << " one-way block " << victim << "->" << other
               << (on ? " on" : " off") << "\n";
    } else if (action < 6) {
      // Crash with a scheduled restart; volatile network state is lost
      // while the node object (its enclave "memory") pauses.
      uint64_t restart_at = now + 30 + chaos.Uniform(120);
      h.env().SetUp(victim, false);
      std::string v = victim;
      sim::Environment* env = &h.env();
      h.env().At(restart_at, [env, v] { env->SetUp(v, true); });
      schedule << "t=" << now << " crash " << victim << " until t="
               << restart_at << "\n";
    } else if (action < 7) {
      uint64_t heal_at = now + 20 + chaos.Uniform(80);
      ServiceHarness* hp = &h;
      h.env().At(heal_at, [hp] {
        for (const std::string& a : kChaosNodeIds) {
          for (const std::string& b : kChaosNodeIds) {
            if (a == b) continue;
            hp->env().SetBlockedOneWay(a, b, false);
            hp->env().SetPartitioned(a, b, false);
          }
          hp->env().SetUp(a, true);
        }
      });
      schedule << "t=" << now << " heal scheduled at t=" << heal_at << "\n";
    }

    // Offer load; failures under faults are expected and ignored.
    if (h.env().IsUp("n0") && h.Primary() != nullptr) {
      node::Client* c = h.UserClient("alice");
      json::Object msg;
      msg["id"] = 100 + written;
      msg["msg"] = "chaos-" + std::to_string(written);
      auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 300);
      if (w.ok() && w->status == 200) ++written;
    }
    h.env().Step(40);

    trace << "r" << round << " t=" << h.env().now_ms()
          << " sent=" << h.env().messages_sent()
          << " dropped=" << h.env().messages_dropped()
          << " dup=" << h.env().messages_duplicated()
          << " reord=" << h.env().messages_reordered();
    for (const std::string& id : kChaosNodeIds) {
      node::Node* n = h.node(id);
      trace << " " << id << "=(" << n->view() << "," << n->last_seqno()
            << "," << n->commit_seqno() << ")";
    }
    trace << "\n";

    if (!checker.ok()) break;
  }

  out.schedule = schedule.str();
  out.trace = trace.str();
  if (!checker.ok()) {
    out.failure = "invariant violation:\n" + checker.Report();
    return out;
  }

  // Heal, then require full convergence: a fresh committed write, equal
  // logs, and byte-identical Merkle roots + committed KV state.
  HealEverything(&h);
  bool converged = false;
  for (int attempt = 0; attempt < 8 && !converged; ++attempt) {
    // Chaos may have corrupted client record streams; reconnect fresh.
    h.DropClients();
    if (!h.env().RunUntil([&] { return h.Primary() != nullptr; }, 10000)) {
      continue;
    }
    node::Client* c = h.UserClient("alice");
    json::Object msg;
    msg["id"] = 1000 + attempt;
    msg["msg"] = "converge";
    auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 3000);
    if (!w.ok() || w->status != 200) {
      h.env().Step(200);
      continue;
    }
    converged = h.env().RunUntil([&] { return Quiesced(&h); }, 5000);
  }
  if (!converged) {
    out.failure = "service failed to converge after heal";
    return out;
  }

  std::string why;
  if (!checker.CheckConverged([](const std::string&) { return true; },
                              &why)) {
    out.failure = "state convergence violated: " + why;
    return out;
  }
  if (!checker.ok()) {
    out.failure =
        "invariant violation during convergence:\n" + checker.Report();
    return out;
  }
  std::ostringstream fs;
  for (const std::string& id : kChaosNodeIds) {
    fs << id << "=" << HexEncode(ServiceHarness::StateDigest(h.node(id)))
       << "\n";
  }
  out.final_state = fs.str();
  if (with_metrics_report) out.report = aggregator.Report().Dump();
  return out;
}

}  // namespace ccf::testing

#endif  // CCF_TESTS_SERVICE_CHAOS_UTIL_H_
