// Election-criteria tests, including a direct reproduction of the paper's
// Table 2 / Figure 5 example.

#include <gtest/gtest.h>

#include "consensus/raft.h"
#include "tests/raft_harness.h"

namespace ccf::testing {
namespace {

using consensus::AppendEntriesReq;
using consensus::Message;
using consensus::RequestVoteReq;
using consensus::RequestVoteResp;

// Records outbound messages; everything else is a no-op.
class RecordingCallbacks : public consensus::RaftCallbacks {
 public:
  void OnAppend(const LogEntry&) override {}
  void OnRollback(uint64_t) override {}
  void OnCommit(uint64_t) override {}
  void OnRoleChange(Role, uint64_t) override {}
  void Send(const NodeId& to, const Message& msg) override {
    sent.emplace_back(to, msg);
  }

  std::vector<std::pair<NodeId, Message>> sent;
};

LogEntry MakeEntry(uint64_t view, uint64_t seqno, bool sig) {
  LogEntry e;
  e.view = view;
  e.seqno = seqno;
  e.is_signature = sig;
  e.data = std::make_shared<const Bytes>(
      ToBytes((sig ? "sig-" : "tx-") + std::to_string(view) + "." +
              std::to_string(seqno)));
  return e;
}

// The five ledgers of Figure 5 (left), reconstructed to match Table 2's
// vote matrix. Underlined IDs in the paper are signature transactions.
std::vector<LogEntry> LedgerOf(int node) {
  std::vector<LogEntry> base = {MakeEntry(1, 1, false), MakeEntry(1, 2, true)};
  if (node == 0) return base;
  base.push_back(MakeEntry(2, 3, false));
  base.push_back(MakeEntry(2, 4, true));
  if (node == 1) return base;
  base.push_back(MakeEntry(3, 5, false));
  base.push_back(MakeEntry(3, 6, true));
  if (node == 3 || node == 4) return base;
  // node 2: the view-3 primary, with the longest signed log.
  base.push_back(MakeEntry(3, 7, false));
  base.push_back(MakeEntry(3, 8, true));
  return base;
}

TEST(ElectionCriteria, Table2VoteMatrix) {
  // For each candidate, ask every other node for a vote in view 4 and
  // compare against the paper's Table 2.
  const bool kExpected[5][5] = {
      // voters:  n0     n1     n2     n3     n4      (candidate row)
      {true, false, false, false, false},  // n0
      {true, true, false, false, false},   // n1
      {true, true, true, true, true},      // n2
      {true, true, false, true, true},     // n3
      {true, true, false, true, true},     // n4
  };
  const bool kCouldWin[5] = {false, false, true, true, true};

  std::set<NodeId> all = {"n0", "n1", "n2", "n3", "n4"};
  for (int candidate = 0; candidate < 5; ++candidate) {
    // Candidate's last signature transaction ID.
    std::vector<LogEntry> clog = LedgerOf(candidate);
    uint64_t sig_view = 0, sig_seqno = 0;
    for (const LogEntry& e : clog) {
      if (e.is_signature) {
        sig_view = e.view;
        sig_seqno = e.seqno;
      }
    }

    int votes = 1;  // the candidate votes for itself
    for (int voter = 0; voter < 5; ++voter) {
      if (voter == candidate) continue;
      RecordingCallbacks cb;
      RaftNode node("n" + std::to_string(voter), FastRaftConfig(), all,
                    false, &cb);
      node.TestInstallLog(LedgerOf(voter), /*view=*/3);

      RequestVoteReq req;
      req.view = 4;
      req.last_sig_view = sig_view;
      req.last_sig_seqno = sig_seqno;
      node.Receive(Message{"n" + std::to_string(candidate), req}, 0);

      ASSERT_EQ(cb.sent.size(), 1u);
      const auto* resp = std::get_if<RequestVoteResp>(&cb.sent[0].second.body);
      ASSERT_NE(resp, nullptr);
      EXPECT_EQ(resp->granted, kExpected[candidate][voter])
          << "candidate n" << candidate << ", voter n" << voter;
      if (resp->granted) ++votes;
    }
    EXPECT_EQ(votes >= 3, kCouldWin[candidate])
        << "candidate n" << candidate << " got " << votes << " votes";
  }
}

TEST(ElectionCriteria, VoteComparesSignaturesNotLogLength) {
  // A node with a longer log but older last signature must lose to a node
  // with a shorter log but newer signature — the key CCF deviation from
  // vanilla Raft (§4.2).
  std::set<NodeId> all = {"a", "b"};
  RecordingCallbacks cb;
  RaftNode voter("b", FastRaftConfig(), all, false, &cb);
  // Voter: sig at (2,4) then unsigned suffix to seqno 8.
  std::vector<LogEntry> log;
  log.push_back(MakeEntry(1, 1, false));
  log.push_back(MakeEntry(1, 2, true));
  log.push_back(MakeEntry(2, 3, false));
  log.push_back(MakeEntry(2, 4, true));
  for (uint64_t s = 5; s <= 8; ++s) log.push_back(MakeEntry(2, s, false));
  voter.TestInstallLog(std::move(log), 2);

  // Candidate's last signature (3,5): newer view, shorter log.
  RequestVoteReq req;
  req.view = 4;
  req.last_sig_view = 3;
  req.last_sig_seqno = 5;
  voter.Receive(Message{"a", req}, 0);
  ASSERT_EQ(cb.sent.size(), 1u);
  EXPECT_TRUE(std::get<RequestVoteResp>(cb.sent[0].second.body).granted);

  // Candidate with same-view signature but smaller seqno: rejected.
  RecordingCallbacks cb2;
  RaftNode voter2("b", FastRaftConfig(), all, false, &cb2);
  voter2.TestInstallLog(LedgerOf(2), 3);  // last sig (3,8)
  RequestVoteReq req2;
  req2.view = 4;
  req2.last_sig_view = 3;
  req2.last_sig_seqno = 6;
  voter2.Receive(Message{"a", req2}, 0);
  EXPECT_FALSE(std::get<RequestVoteResp>(cb2.sent[0].second.body).granted);
}

TEST(ElectionCriteria, OneVotePerView) {
  std::set<NodeId> all = {"a", "b", "c"};
  RecordingCallbacks cb;
  RaftNode voter("c", FastRaftConfig(), all, false, &cb);
  RequestVoteReq req;
  req.view = 5;
  req.last_sig_view = 1;
  req.last_sig_seqno = 1;
  voter.Receive(Message{"a", req}, 0);
  voter.Receive(Message{"b", req}, 0);
  ASSERT_EQ(cb.sent.size(), 2u);
  EXPECT_TRUE(std::get<RequestVoteResp>(cb.sent[0].second.body).granted);
  EXPECT_FALSE(std::get<RequestVoteResp>(cb.sent[1].second.body).granted);
  // But the same candidate asking again (retransmit) is re-granted.
  voter.Receive(Message{"a", req}, 0);
  EXPECT_TRUE(std::get<RequestVoteResp>(cb.sent[2].second.body).granted);
}

TEST(ElectionCriteria, StaleViewRejected) {
  std::set<NodeId> all = {"a", "b"};
  RecordingCallbacks cb;
  RaftNode voter("b", FastRaftConfig(), all, false, &cb);
  voter.TestInstallLog(LedgerOf(2), /*view=*/6);
  RequestVoteReq req;
  req.view = 4;  // below the voter's view
  req.last_sig_view = 100;
  req.last_sig_seqno = 100;
  voter.Receive(Message{"a", req}, 0);
  ASSERT_EQ(cb.sent.size(), 1u);
  const auto& resp = std::get<RequestVoteResp>(cb.sent[0].second.body);
  EXPECT_FALSE(resp.granted);
  EXPECT_EQ(resp.view, 6u);  // so the candidate can update itself
}

TEST(ElectionCriteria, NewPrimaryRollsBackUnsignedSuffix) {
  // Figure 5 (right): n4 becomes primary in view 4 and first rolls back
  // its unsigned suffix (3.5 was not followed by a signature on n4... in
  // our reconstruction, an unsigned tail after (3,6)).
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  primary->set_signature_interval(1000);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(
      cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  // Append unsigned entries, replicated everywhere but never signed.
  ASSERT_TRUE(primary->ReplicateUser("unsigned-1").ok());
  ASSERT_TRUE(primary->ReplicateUser("unsigned-2").ok());
  uint64_t unsigned_tail = primary->raft().last_seqno();
  cluster.env().Step(100);  // replicate the unsigned tail

  // Kill the primary; the new primary must discard the unsigned suffix
  // and start its view with a fresh signature transaction.
  cluster.env().SetUp(primary->id(), false);
  RaftTestNode* np = cluster.WaitForPrimary();
  ASSERT_NE(np, nullptr);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return np->raft().commit_seqno() >= np->raft().last_seqno() &&
                   np->raft().last_seqno() > 0; },
      5000));
  EXPECT_GT(np->rollbacks(), 0u);
  // The first entry of the new view is a signature transaction.
  const LogEntry* first_new = nullptr;
  for (uint64_t s = 1; s <= np->raft().last_seqno(); ++s) {
    const LogEntry* e = np->raft().GetLogEntry(s);
    if (e != nullptr && e->view == np->raft().view()) {
      first_new = e;
      break;
    }
  }
  ASSERT_NE(first_new, nullptr);
  EXPECT_TRUE(first_new->is_signature);
  EXPECT_LT(first_new->seqno, unsigned_tail + 1);
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(ElectionCriteria, SplitVoteEventuallyResolves) {
  // With aggressive identical timeouts, candidates may split votes; the
  // randomized timer must still converge.
  sim::EnvOptions opts;
  opts.seed = 99;
  RaftCluster cluster(5, opts, /*seed=*/99);
  RaftTestNode* primary = cluster.WaitForPrimary(10000);
  ASSERT_NE(primary, nullptr);
  EXPECT_TRUE(cluster.AtMostOnePrimaryPerView());
}

}  // namespace
}  // namespace ccf::testing
