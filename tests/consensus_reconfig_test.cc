// Atomic reconfiguration and node retirement tests (paper §4.4, §4.5).

#include <gtest/gtest.h>

#include "consensus/raft.h"
#include "tests/raft_harness.h"

namespace ccf::testing {
namespace {

std::set<NodeId> Names(std::initializer_list<int> idx) {
  std::set<NodeId> s;
  for (int i : idx) s.insert(RaftCluster::Name(i));
  return s;
}

// Adds node n<i> to the cluster as a joiner with an empty log.
RaftTestNode* AddJoiner(RaftCluster* cluster, int i,
                        std::vector<Configuration> configs) {
  NodeId id = RaftCluster::Name(i);
  auto node = std::make_unique<RaftTestNode>(
      id, FastRaftConfig(100 + i), /*base_view=*/0, /*base_seqno=*/0,
      std::move(configs), &cluster->env());
  RaftTestNode* ptr = node.get();
  cluster->AddNode(id, std::move(node));
  return ptr;
}

TEST(Reconfiguration, AddOneNode) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateUser("before").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  // Joiner starts with the initial configuration (it is not in it yet).
  RaftTestNode* joiner =
      AddJoiner(&cluster, 3, {Configuration{0, Names({0, 1, 2})}});

  // One reconfiguration transaction adds it (paper: single-transaction
  // reconfiguration).
  ASSERT_TRUE(primary->ReplicateReconfig(Names({0, 1, 2, 3})).ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(target, 10000));

  // The joiner caught up and the old configuration was retired.
  EXPECT_GE(joiner->raft().commit_seqno(), target);
  ASSERT_EQ(primary->raft().active_configs().size(), 1u);
  EXPECT_EQ(primary->raft().active_configs()[0].nodes, Names({0, 1, 2, 3}));
  EXPECT_TRUE(joiner->raft().InActiveConfig());

  // The 4-node service keeps working and tolerates one fault.
  cluster.env().SetUp(RaftCluster::Name(1), false);
  RaftTestNode* p = cluster.WaitForPrimary(10000);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->ReplicateUser("after-add").ok());
  ASSERT_TRUE(p->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return p->raft().commit_seqno() >= p->raft().last_seqno(); },
      10000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(Reconfiguration, RemoveBackup) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  // Remove a backup.
  NodeId removed;
  for (int i = 0; i < 3; ++i) {
    if (RaftCluster::Name(i) != primary->id()) {
      removed = RaftCluster::Name(i);
      break;
    }
  }
  std::set<NodeId> remaining = Names({0, 1, 2});
  remaining.erase(removed);
  ASSERT_TRUE(primary->ReplicateReconfig(remaining).ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= target; }, 5000));
  ASSERT_EQ(primary->raft().active_configs().size(), 1u);
  EXPECT_EQ(primary->raft().active_configs()[0].nodes, remaining);

  // The removed node no longer counts toward quorums: the 2-node service
  // still commits with both remaining nodes.
  cluster.env().SetUp(removed, false);
  ASSERT_TRUE(primary->ReplicateUser("still-works").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        return primary->raft().commit_seqno() >= primary->raft().last_seqno();
      },
      5000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(Reconfiguration, PrimaryRetiresItself) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  std::set<NodeId> remaining = Names({0, 1, 2});
  remaining.erase(primary->id());

  ASSERT_TRUE(primary->ReplicateReconfig(remaining).ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= target; }, 5000));

  // Paper §4.5: once its removal commits, the primary steps down, and one
  // of the remaining nodes takes over.
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return !primary->raft().IsPrimary(); }, 5000));
  RaftTestNode* np = nullptr;
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        for (const NodeId& id : remaining) {
          if (cluster.node(id).raft().IsPrimary()) {
            np = &cluster.node(id);
            return true;
          }
        }
        return false;
      },
      10000));
  ASSERT_TRUE(np->ReplicateUser("new regime").ok());
  ASSERT_TRUE(np->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return np->raft().commit_seqno() >= np->raft().last_seqno(); },
      5000));
  // The retired node never starts elections (it is outside every config).
  EXPECT_FALSE(primary->raft().InActiveConfig());
  EXPECT_NE(primary->raft().role(), Role::kCandidate);
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(Reconfiguration, ArbitraryWholesaleReplacement) {
  // {n0,n1,n2} -> {n2,n3,n4} in a single reconfiguration transaction
  // (paper §4.4: "an arbitrary transition from any node configuration to
  // any other").
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateUser("old world").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  std::vector<Configuration> initial_cfg = {
      Configuration{0, Names({0, 1, 2})}};
  AddJoiner(&cluster, 3, initial_cfg);
  AddJoiner(&cluster, 4, initial_cfg);

  ASSERT_TRUE(primary->ReplicateReconfig(Names({2, 3, 4})).ok());
  uint64_t target = primary->raft().last_seqno();
  // Commit requires majorities in BOTH configurations while pending.
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        RaftTestNode* p = cluster.GetPrimary();
        return p != nullptr && p->raft().commit_seqno() >= target;
      },
      10000));

  // Shut down the old nodes; the new configuration must be self-sufficient.
  cluster.env().SetUp(RaftCluster::Name(0), false);
  cluster.env().SetUp(RaftCluster::Name(1), false);
  RaftTestNode* np = cluster.WaitForPrimary(10000);
  ASSERT_NE(np, nullptr);
  EXPECT_TRUE(Names({2, 3, 4}).count(np->id()) > 0);
  ASSERT_TRUE(np->ReplicateUser("new world").ok());
  ASSERT_TRUE(np->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return np->raft().commit_seqno() >= np->raft().last_seqno(); },
      10000));
  // Old committed data is preserved in the new world's logs.
  EXPECT_TRUE(cluster.CommittedPrefixesAgree());
  EXPECT_TRUE(cluster.LogsMatch());
}

TEST(Reconfiguration, CommitStallsWithoutNewConfigQuorum) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));
  uint64_t committed_before = primary->raft().commit_seqno();

  // New config {primary, n3, n4} where n3, n4 do not exist yet: no
  // majority in the new configuration is reachable.
  std::set<NodeId> unreachable = {primary->id(), "n3", "n4"};
  ASSERT_TRUE(primary->ReplicateReconfig(unreachable).ok());
  cluster.env().Step(500);
  EXPECT_EQ(primary->raft().commit_seqno(), committed_before);
  // Both configurations are still active.
  EXPECT_EQ(primary->raft().active_configs().size(), 2u);
}

TEST(Reconfiguration, RolledBackReconfigIsRemoved) {
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  // Isolate the primary, then append a reconfiguration that can never
  // commit.
  cluster.env().Isolate(primary->id(), true);
  ASSERT_TRUE(primary->ReplicateReconfig(Names({0, 1, 2, 3, 4})).ok());
  EXPECT_EQ(primary->raft().active_configs().size(), 2u);

  // Majority side elects a new primary and moves on.
  RaftTestNode* np = nullptr;
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        for (auto& [id, node] : cluster.nodes()) {
          if (id != primary->id() && node->raft().IsPrimary() &&
              node->raft().view() > primary->raft().view()) {
            np = node.get();
            return true;
          }
        }
        return false;
      },
      5000));
  ASSERT_TRUE(np->ReplicateUser("moved on").ok());
  ASSERT_TRUE(np->ReplicateSignature().ok());
  uint64_t target = np->raft().last_seqno();

  // Heal: the rolled-back reconfiguration disappears from the old
  // primary's active configurations (paper §4.4).
  cluster.env().Isolate(primary->id(), false);
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return primary->raft().commit_seqno() >= target; }, 5000));
  EXPECT_EQ(primary->raft().active_configs().size(), 1u);
  EXPECT_EQ(primary->raft().active_configs()[0].nodes, Names({0, 1, 2}));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

TEST(Reconfiguration, JoinerFromSnapshotBase) {
  // A joiner starting from a snapshot base only needs the log suffix.
  RaftCluster cluster(3);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  for (int i = 0; i < 30; ++i) {
    ASSERT_TRUE(primary->ReplicateUser("old" + std::to_string(i)).ok());
  }
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t snap_seqno = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(snap_seqno));

  // Joiner pretends it installed a snapshot at (view, snap_seqno).
  NodeId id = RaftCluster::Name(3);
  auto joiner_node = std::make_unique<RaftTestNode>(
      id, FastRaftConfig(103), primary->raft().view(), snap_seqno,
      std::vector<Configuration>{Configuration{0, Names({0, 1, 2})}},
      &cluster.env());
  RaftTestNode* joiner = joiner_node.get();
  cluster.AddNode(id, std::move(joiner_node));

  ASSERT_TRUE(primary->ReplicateReconfig(Names({0, 1, 2, 3})).ok());
  ASSERT_TRUE(primary->ReplicateUser("suffix").ok());
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return joiner->raft().commit_seqno() >= target; }, 10000));
  // The joiner never replayed entries at or below its base.
  EXPECT_EQ(joiner->raft().GetLogEntry(snap_seqno), nullptr);
  EXPECT_NE(joiner->raft().GetLogEntry(target), nullptr);
}

TEST(Reconfiguration, FaultToleranceRestoredAfterReplacement) {
  // Paper §6.3: five nodes tolerate two faults; after one fails,
  // reconfiguring it out and a fresh node in restores tolerance to two.
  RaftCluster cluster(5);
  RaftTestNode* primary = cluster.WaitForPrimary();
  ASSERT_NE(primary, nullptr);
  ASSERT_TRUE(primary->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.WaitForCommitEverywhere(primary->raft().last_seqno()));

  // One backup fails.
  NodeId dead;
  for (int i = 0; i < 5; ++i) {
    if (RaftCluster::Name(i) != primary->id()) {
      dead = RaftCluster::Name(i);
      break;
    }
  }
  cluster.env().SetUp(dead, false);

  // Replace it with a fresh node n5.
  NodeId fresh = "n5";
  std::set<NodeId> new_config;
  for (int i = 0; i < 5; ++i) new_config.insert(RaftCluster::Name(i));
  new_config.erase(dead);
  new_config.insert(fresh);
  auto joiner = std::make_unique<RaftTestNode>(
      fresh, FastRaftConfig(105), /*base_view=*/0, /*base_seqno=*/0,
      std::vector<Configuration>{
          Configuration{0, {"n0", "n1", "n2", "n3", "n4"}}},
      &cluster.env());
  cluster.AddNode(fresh, std::move(joiner));
  ASSERT_TRUE(primary->ReplicateReconfig(new_config).ok());
  uint64_t target = primary->raft().last_seqno();
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] {
        RaftTestNode* p = cluster.GetPrimary();
        return p != nullptr && p->raft().commit_seqno() >= target;
      },
      10000));

  // Two more failures are now tolerable again.
  int killed = 0;
  for (const NodeId& id : new_config) {
    if (killed == 2) break;
    if (id != cluster.GetPrimary()->id() && id != fresh) {
      cluster.env().SetUp(id, false);
      ++killed;
    }
  }
  RaftTestNode* p = cluster.WaitForPrimary(10000);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->ReplicateUser("resilient").ok());
  ASSERT_TRUE(p->ReplicateSignature().ok());
  ASSERT_TRUE(cluster.env().RunUntil(
      [&] { return p->raft().commit_seqno() >= p->raft().last_seqno(); },
      10000));
  EXPECT_TRUE(cluster.AllInvariantsHold());
}

}  // namespace
}  // namespace ccf::testing
