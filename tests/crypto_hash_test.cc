#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hmac.h"
#include "crypto/sha256.h"
#include "crypto/sha512.h"

namespace ccf::crypto {
namespace {

std::string HashHex256(std::string_view msg) {
  auto d = Sha256::Hash(ToBytes(msg));
  return HexEncode(ByteSpan(d.data(), d.size()));
}

std::string HashHex512(std::string_view msg) {
  auto d = Sha512::Hash(ToBytes(msg));
  return HexEncode(ByteSpan(d.data(), d.size()));
}

// FIPS 180-4 known-answer vectors.
TEST(Sha256, EmptyString) {
  EXPECT_EQ(HashHex256(""),
            "e3b0c44298fc1c149afbf4c8996fb92427ae41e4649b934ca495991b7852b855");
}

TEST(Sha256, Abc) {
  EXPECT_EQ(HashHex256("abc"),
            "ba7816bf8f01cfea414140de5dae2223b00361a396177a9cb410ff61f20015ad");
}

TEST(Sha256, TwoBlockMessage) {
  EXPECT_EQ(HashHex256("abcdbcdecdefdefgefghfghighijhijkijkljklmklmnlmnomnopnopq"),
            "248d6a61d20638b8e5c026930c3e6039a33ce45964ff2167f6ecedd419db06c1");
}

TEST(Sha256, MillionA) {
  Sha256 h;
  Bytes chunk(1000, 'a');
  for (int i = 0; i < 1000; ++i) h.Update(chunk);
  auto d = h.Finish();
  EXPECT_EQ(HexEncode(ByteSpan(d.data(), d.size())),
            "cdc76e5c9914fb9281a1c7e284d73e67f1809a48a497200e046d39ccc7112cd0");
}

TEST(Sha256, IncrementalMatchesOneShot) {
  std::string msg(300, 'x');
  for (size_t split = 0; split <= msg.size(); split += 37) {
    Sha256 h;
    h.Update(ToBytes(msg.substr(0, split)));
    h.Update(ToBytes(msg.substr(split)));
    auto inc = h.Finish();
    EXPECT_EQ(inc, Sha256::Hash(ToBytes(msg))) << "split=" << split;
  }
}

TEST(Sha256, ReusableAfterFinish) {
  Sha256 h;
  h.Update(ToBytes("abc"));
  auto first = h.Finish();
  h.Update(ToBytes("abc"));
  auto second = h.Finish();
  EXPECT_EQ(first, second);
}

// Boundary lengths around the 64-byte block and 56-byte padding cutoff.
TEST(Sha256, PaddingBoundaries) {
  for (size_t len : {55u, 56u, 57u, 63u, 64u, 65u, 119u, 120u, 128u}) {
    std::string msg(len, 'q');
    auto a = Sha256::Hash(ToBytes(msg));
    Sha256 h;
    for (char c : msg) h.Update(ToBytes(std::string(1, c)));
    EXPECT_EQ(h.Finish(), a) << "len=" << len;
  }
}

// The 4-way interleaved kernel must agree with four independent scalar
// hashes for every length, in particular around the padding boundaries
// (55/56/64) where the shared tail layout changes.
TEST(Sha256x4, MatchesScalarForAllLengths) {
  Drbg drbg("sha256x4-test", 0);
  for (size_t len = 0; len <= 300; ++len) {
    Bytes msgs[4];
    const uint8_t* ptrs[4];
    for (int i = 0; i < 4; ++i) {
      msgs[i] = drbg.Generate(len);
      ptrs[i] = msgs[i].data();
    }
    Sha256Digest out[4];
    Sha256x4(ptrs, len, out);
    for (int i = 0; i < 4; ++i) {
      ASSERT_EQ(out[i], Sha256::Hash(msgs[i])) << "len=" << len
                                               << " lane=" << i;
    }
  }
}

TEST(Sha256x4, LanesAreIndependent) {
  // Identical inputs in every lane produce identical digests; changing one
  // lane changes only that lane.
  Bytes base = ToBytes(std::string(100, 'a'));
  Bytes other = base;
  other[50] ^= 1;
  const uint8_t* ptrs[4] = {base.data(), base.data(), other.data(),
                            base.data()};
  Sha256Digest out[4];
  Sha256x4(ptrs, base.size(), out);
  EXPECT_EQ(out[0], out[1]);
  EXPECT_EQ(out[1], out[3]);
  EXPECT_NE(out[0], out[2]);
  EXPECT_EQ(out[2], Sha256::Hash(other));
}

// The whole-block fast path in Update (multi-block compression straight
// from the caller's span, no staging copy) must be invisible: feeding any
// chunking of a long message gives the one-shot digest.
TEST(Sha256, MultiBlockUpdateMatchesChunked) {
  Drbg drbg("multiblock-test", 0);
  Bytes msg = drbg.Generate(4096 + 13);
  Sha256Digest expect = Sha256::Hash(msg);
  for (size_t chunk : {1u, 63u, 64u, 65u, 128u, 1000u, 4096u}) {
    Sha256 h;
    for (size_t off = 0; off < msg.size(); off += chunk) {
      h.Update(ByteSpan(msg).subspan(off, std::min(chunk, msg.size() - off)));
    }
    EXPECT_EQ(h.Finish(), expect) << "chunk=" << chunk;
  }
}

// SHA-512 constants are derived at runtime; validate the derivation against
// published FIPS 180-4 values.
TEST(Sha512, DerivedConstants) {
  EXPECT_EQ(internal::CbrtFrac64(2), 0x428a2f98d728ae22ULL);   // K[0]
  EXPECT_EQ(internal::SqrtFrac64(2), 0x6a09e667f3bcc908ULL);   // H[0]
  EXPECT_EQ(internal::SqrtFrac64(19), 0x5be0cd19137e2179ULL);  // H[7]
}

TEST(Sha512, Abc) {
  EXPECT_EQ(HashHex512("abc"),
            "ddaf35a193617abacc417349ae20413112e6fa4e89a97ea20a9eeee64b55d39a"
            "2192992a274fc1a836ba3c23a3feebbd454d4423643ce80e2a9ac94fa54ca49f");
}

TEST(Sha512, EmptyString) {
  EXPECT_EQ(HashHex512(""),
            "cf83e1357eefb8bdf1542850d66d8007d620e4050b5715dc83f4a921d36ce9ce"
            "47d0d13c5d85f2b0ff8318d2877eec2f63b931bd47417a81a538327af927da3e");
}

TEST(Sha512, IncrementalMatchesOneShot) {
  std::string msg(517, 'z');
  Sha512 h;
  h.Update(ToBytes(msg.substr(0, 100)));
  h.Update(ToBytes(msg.substr(100)));
  EXPECT_EQ(h.Finish(), Sha512::Hash(ToBytes(msg)));
}

TEST(Sha512, PaddingBoundaries) {
  for (size_t len : {111u, 112u, 113u, 127u, 128u, 129u}) {
    std::string msg(len, 'p');
    auto a = Sha512::Hash(ToBytes(msg));
    Sha512 h;
    h.Update(ToBytes(msg));
    EXPECT_EQ(h.Finish(), a) << "len=" << len;
  }
}

// RFC 4231 test case 1.
TEST(Hmac, Rfc4231Case1) {
  Bytes key(20, 0x0b);
  auto mac = HmacSha256(key, ToBytes("Hi There"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "b0344c61d8db38535ca8afceaf0bf12b881dc200c9833da726e9376c2e32cff7");
}

// RFC 4231 test case 2: short key "Jefe".
TEST(Hmac, Rfc4231Case2) {
  auto mac = HmacSha256(ToBytes("Jefe"), ToBytes("what do ya want for nothing?"));
  EXPECT_EQ(HexEncode(ByteSpan(mac.data(), mac.size())),
            "5bdcc146bf60754e6a042426089575c75a003f089d2739839dec58b964ec3843");
}

TEST(Hmac, LongKeyIsHashed) {
  Bytes key(131, 0xaa);
  auto a = HmacSha256(key, ToBytes("msg"));
  Sha256Digest kd = Sha256::Hash(key);
  auto b = HmacSha256(ByteSpan(kd.data(), kd.size()), ToBytes("msg"));
  EXPECT_EQ(a, b);
}

TEST(Hkdf, DeterministicAndLabelSeparated) {
  Bytes ikm = ToBytes("input key material");
  Bytes a = Hkdf(ikm, ToBytes("salt"), ToBytes("info-a"), 42);
  Bytes b = Hkdf(ikm, ToBytes("salt"), ToBytes("info-a"), 42);
  Bytes c = Hkdf(ikm, ToBytes("salt"), ToBytes("info-b"), 42);
  EXPECT_EQ(a, b);
  EXPECT_NE(a, c);
  EXPECT_EQ(a.size(), 42u);
}

// RFC 5869 test case 1.
TEST(Hkdf, Rfc5869Case1) {
  Bytes ikm(22, 0x0b);
  Bytes salt = HexDecode("000102030405060708090a0b0c").take();
  Bytes info = HexDecode("f0f1f2f3f4f5f6f7f8f9").take();
  Bytes okm = Hkdf(ikm, salt, info, 42);
  EXPECT_EQ(HexEncode(okm),
            "3cb25f25faacd57a90434f64d0362f2a2d2d0a90cf1a5a4c5db02d56ecc4c5bf"
            "34007208d5b887185865");
}

TEST(Drbg, DeterministicStreams) {
  Drbg a(ToBytes("seed-1"));
  Drbg b(ToBytes("seed-1"));
  Drbg c(ToBytes("seed-2"));
  Bytes xa = a.Generate(64);
  Bytes xb = b.Generate(64);
  Bytes xc = c.Generate(64);
  EXPECT_EQ(xa, xb);
  EXPECT_NE(xa, xc);
}

TEST(Drbg, LabeledConstructor) {
  Drbg a("node", 3);
  Drbg b("node", 3);
  Drbg c("node", 4);
  EXPECT_EQ(a.NextU64(), b.NextU64());
  EXPECT_NE(a.NextU64(), c.NextU64());
}

TEST(Drbg, UniformRespectsBound) {
  Drbg d("uniform", 0);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(d.Uniform(17), 17u);
  }
}

TEST(Drbg, UniformCoversRange) {
  Drbg d("coverage", 1);
  bool seen[8] = {};
  for (int i = 0; i < 200; ++i) seen[d.Uniform(8)] = true;
  for (bool s : seen) EXPECT_TRUE(s);
}

}  // namespace
}  // namespace ccf::crypto
