// Seed-sweep chaos tests over full services (paper §5): three-node
// services with real STLS sessions, governance, signatures, snapshots and
// ledgers, driven through seeded link faults, partitions and crashes while
// sim::InvariantChecker observes every node after every simulated
// millisecond. Convergence is checked down to byte-identical Merkle roots
// and committed KV state. On failure the seed and the full fault schedule
// are printed; reruns with the same seed replay the run bit-for-bit.
//
// Faults apply only to node<->node links: client and join traffic uses
// STLS record streams which (like TCP in the real system) assume in-order
// delivery, while node-to-node consensus messages are individually
// AES-GCM-sealed and tolerate drop/duplication/reordering.

#include <gtest/gtest.h>

#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <optional>
#include <sstream>
#include <string>
#include <vector>

#include "common/hex.h"
#include "ledger/ledger.h"
#include "merkle/receipt.h"
#include "node/audit.h"
#include "sim/aggregator.h"
#include "tests/service_chaos_util.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

// ChaosOutcome, RunServiceChaos, HealEverything and Quiesced live in
// tests/service_chaos_util.h, shared with exec_chaos_test.cc.
const std::vector<std::string>& kNodeIds = kChaosNodeIds;

// 20 batches x 10 seeds = 200 fault schedules.
class ServiceChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ServiceChaosTest, InvariantsHoldAcrossSeedBatch) {
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = GetParam() * 10 + i;
    ChaosOutcome out = RunServiceChaos(seed);
    ASSERT_TRUE(out.failure.empty())
        << "seed " << seed << ": " << out.failure
        << "\nreplayable fault schedule:\n"
        << out.schedule;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBatches, ServiceChaosTest,
                         ::testing::Range<uint64_t>(0, 20));

TEST(ServiceChaosDeterminism, SameSeedSameTrace) {
  ChaosOutcome a = RunServiceChaos(7);
  ChaosOutcome b = RunServiceChaos(7);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.final_state, b.final_state);
}

// The observability determinism contract (DESIGN.md, observe section):
// metrics are write-only, so a run whose registries are sampled every 20ms
// and serialized into a report is bit-identical -- same fault schedule,
// same per-round trace, same final state -- to one where the metrics are
// recorded but never read.
TEST(ServiceChaosMetrics, ReportDoesNotPerturbDeterminism) {
  ChaosOutcome unread = RunServiceChaos(7);
  ChaosOutcome read = RunServiceChaos(7, /*worker_threads=*/0,
                                      /*with_metrics_report=*/true);
  EXPECT_EQ(unread.schedule, read.schedule);
  EXPECT_EQ(unread.trace, read.trace);
  EXPECT_EQ(unread.failure, read.failure);
  EXPECT_EQ(unread.final_state, read.final_state);
  EXPECT_TRUE(unread.report.empty());
  EXPECT_FALSE(read.report.empty());
}

// The end-of-run report carries the signals the paper's evaluation relies
// on: a submit->commit latency histogram (recorded in virtual time on the
// primary) and tee ring-buffer high-water marks on every node.
TEST(ServiceChaosMetrics, ReportContainsConsensusAndBoundarySignals) {
  ChaosOutcome out = RunServiceChaos(5, /*worker_threads=*/0,
                                     /*with_metrics_report=*/true);
  ASSERT_TRUE(out.failure.empty()) << out.failure;
  auto report = json::Parse(out.report);
  ASSERT_TRUE(report.ok());

  const json::Value* env = report->Get("env");
  ASSERT_NE(env, nullptr);
  EXPECT_GT(env->GetInt("messages_sent"), 0);
  EXPECT_GT(env->GetInt("duration_ms"), 0);

  const json::Value* nodes = report->Get("nodes");
  ASSERT_NE(nodes, nullptr);
  int64_t commit_latency_samples = 0;
  for (const std::string& id : kNodeIds) {
    const json::Value* node = nodes->Get(id);
    ASSERT_NE(node, nullptr) << id;
    const json::Value* hist = node->Get("histograms");
    ASSERT_NE(hist, nullptr) << id;
    const json::Value* latency = hist->Get("consensus.commit_latency_ms");
    if (latency != nullptr) {
      commit_latency_samples += latency->GetInt("count");
    }
    // Every node moved bytes across its enclave boundary.
    const json::Value* gauges = node->Get("gauges");
    ASSERT_NE(gauges, nullptr) << id;
    const json::Value* ring = gauges->Get("tee.e2h.ring_used_bytes");
    ASSERT_NE(ring, nullptr) << id;
    EXPECT_GT(ring->GetInt("max"), 0) << id;
  }
  // Whichever node(s) held the primacy recorded submit->commit latencies.
  EXPECT_GT(commit_latency_samples, 0);

  // Watched counters/gauges were sampled into bounded time series.
  const json::Value* watched = report->Get("watched");
  ASSERT_NE(watched, nullptr);
  const json::Value* n0 = watched->Get("n0");
  ASSERT_NE(n0, nullptr);
  const json::Value* series = n0->Get("consensus.commit_seqno");
  ASSERT_NE(series, nullptr);
  EXPECT_GT(series->GetInt("total"), 0);

  // CCF_METRICS_REPORT=<path> dumps the report for inspection with
  // scripts/metrics_report.py (the EXPERIMENTS.md observability example).
  if (const char* path = std::getenv("CCF_METRICS_REPORT")) {
    std::ofstream f(path);
    f << report->DumpPretty() << "\n";
  }
}

// The worker-pool determinism contract (DESIGN.md): with worker_async off,
// worker_threads=N behaves bit-identically to worker_threads=0 -- real
// threads do the signing, but completions land at the same drain point in
// virtual time. Same chaos seed => same fault schedule, same per-round
// trace, same committed KV state and ledger digests on every node.
TEST(ServiceChaosDeterminism, WorkerThreadsPreserveDeterminism) {
  for (uint64_t seed : {3u, 11u}) {
    ChaosOutcome sync = RunServiceChaos(seed, /*worker_threads=*/0);
    ChaosOutcome offload = RunServiceChaos(seed, /*worker_threads=*/4);
    ASSERT_EQ(sync.failure, offload.failure) << "seed " << seed;
    EXPECT_EQ(sync.schedule, offload.schedule) << "seed " << seed;
    EXPECT_EQ(sync.trace, offload.trace) << "seed " << seed;
    EXPECT_EQ(sync.final_state, offload.final_state) << "seed " << seed;
    ASSERT_FALSE(sync.final_state.empty()) << "seed " << seed;

    // And the offloaded run itself replays bit-for-bit despite the real
    // threads (completions are ordered by submission, not finish time).
    ChaosOutcome again = RunServiceChaos(seed, /*worker_threads=*/4);
    EXPECT_EQ(offload.trace, again.trace) << "seed " << seed;
    EXPECT_EQ(offload.final_state, again.final_state) << "seed " << seed;
  }
}

// worker_async=true gives up virtual-time determinism (completions drain
// as they finish) but must never give up correctness: writes commit,
// receipts verify offline, nodes converge and the ledger audits clean.
TEST(ServiceChaosOffload, AsyncModeStaysCorrect) {
  ServiceHarness h;
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->worker_threads = 2;
    cfg->worker_async = true;
  });
  h.AddUser("alice");
  ASSERT_NE(h.StartGenesis(), nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);
  sim::InvariantChecker& checker = h.EnableInvariantChecker();

  node::Client* c = h.UserClient("alice");
  std::optional<std::pair<uint64_t, uint64_t>> txid;
  for (int i = 0; i < 20; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "async-" + std::to_string(i);
    auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 5000);
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(w->status, 200);
    if (i == 10) txid = node::Client::TxIdOf(*w);
  }
  ASSERT_TRUE(txid.has_value());
  ASSERT_TRUE(h.env().RunUntil([&] { return Quiesced(&h); }, 8000));

  // The deferred signing path actually engaged on the primary.
  node::Node* p = h.Primary();
  ASSERT_NE(p, nullptr);
  EXPECT_GT(p->crypto_ops().signs_deferred, 0u);

  // A receipt for a mid-stream write verifies offline.
  Result<http::Response> rr = Status::Unavailable("none");
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        rr = c->Get("/node/receipt?seqno=" + std::to_string(txid->second));
        return rr.ok() && rr->status == 200;
      },
      5000));
  auto body = json::Parse(ToString(rr->body));
  ASSERT_TRUE(body.ok());
  auto receipt_bytes = HexDecode(body->GetString("receipt"));
  ASSERT_TRUE(receipt_bytes.ok());
  auto receipt = merkle::Receipt::Deserialize(*receipt_bytes);
  ASSERT_TRUE(receipt.ok());
  EXPECT_TRUE(receipt->Verify(p->service_identity()).ok());

  // Nodes converged to identical committed state...
  std::string why;
  EXPECT_TRUE(
      checker.CheckConverged([](const std::string&) { return true; }, &why))
      << why;
  EXPECT_TRUE(checker.ok()) << checker.Report();

  // ...and the whole ledger audits clean against the service identity.
  auto report = node::AuditLedger(p->host_ledger(), p->service_identity());
  ASSERT_TRUE(report.ok()) << report.status().ToString();
  EXPECT_GT(report->signature_transactions, 0u);
}

// The acceptance scenario: a node crashes losing all volatile state, is
// restarted from its on-disk ledger (SaveToDir -> LoadFromDir replay), and
// recovers to a state whose Merkle root matches the surviving nodes'.
TEST(ServiceChaos, CrashRestartLedgerReplayMatchesSurvivors) {
  ServiceHarness h;
  h.AddUser("alice");
  node::Node* n0 = h.StartGenesis();
  ASSERT_NE(n0, nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);
  h.EnableInvariantChecker();

  node::Client* c = h.UserClient("alice");
  for (int i = 0; i < 12; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "durable-" + std::to_string(i);
    auto w = c->PostJson("/app/log", json::Value(std::move(msg)));
    ASSERT_TRUE(w.ok());
    ASSERT_EQ(w->status, 200);
  }
  ASSERT_TRUE(h.env().RunUntil([&] { return Quiesced(&h); }, 5000));

  const uint64_t kLast = n0->last_seqno();
  auto survivor_root = h.node("n1")->tree().RootAt(kLast);
  ASSERT_TRUE(survivor_root.ok());

  // n0 (which holds the full ledger from genesis) dies: persist its ledger
  // to "disk", destroy the node object (all volatile state gone), and
  // restart from the files alone. n1+n2 keep quorum and live on.
  std::string dir = (std::filesystem::temp_directory_path() /
                     ("ccf_chaos_replay_" + std::to_string(::getpid())))
                        .string();
  ASSERT_TRUE(n0->SaveLedgerToDir(dir).ok());
  h.UntrackNode("n0");
  h.DropClients();
  h.env().SetUp("n0", false);
  h.nodes().erase("n0");

  auto restored = ledger::LoadFromDir(dir);
  ASSERT_TRUE(restored.ok()) << restored.status().ToString();
  ASSERT_EQ(restored->last_seqno(), kLast);
  auto r0 = node::Node::CreateRecovery(FastNodeConfig("r0", 11),
                                       std::move(*restored), nullptr,
                                       &h.env());
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r0->IsPrimary() &&
               r0->service_status() == gov::ServiceStatus::kRecovering;
      },
      8000));

  // Ledger replay rebuilt the identical transaction history.
  auto replayed_root = r0->tree().RootAt(kLast);
  ASSERT_TRUE(replayed_root.ok());
  EXPECT_EQ(*replayed_root, *survivor_root);
  auto other_survivor_root = h.node("n2")->tree().RootAt(kLast);
  ASSERT_TRUE(other_survivor_root.ok());
  EXPECT_EQ(*replayed_root, *other_survivor_root);

  std::filesystem::remove_all(dir);
}

// A node that joins after a chaos episode catches up through snapshot
// install plus log replay and converges with the veterans.
TEST(ServiceChaos, JoinerAfterChaosConverges) {
  sim::EnvOptions opts;
  opts.seed = 99;
  ServiceHarness h(opts);
  h.AddUser("alice");
  ASSERT_NE(h.StartGenesis(), nullptr);
  ASSERT_NE(h.JoinAndTrust("n1"), nullptr);
  ASSERT_NE(h.JoinAndTrust("n2"), nullptr);
  sim::InvariantChecker& checker = h.EnableInvariantChecker();

  node::Client* c = h.UserClient("alice");
  for (int i = 0; i < 8; ++i) {
    json::Object msg;
    msg["id"] = i;
    msg["msg"] = "m" + std::to_string(i);
    ASSERT_TRUE(c->PostJson("/app/log", json::Value(std::move(msg))).ok());
  }

  // A brief fault episode among the nodes.
  sim::LinkFaults faults;
  faults.drop = 0.05;
  faults.reorder = 0.05;
  faults.duplicate = 0.03;
  h.env().SetFaultsAmong(kNodeIds, faults);
  h.env().SetPartitioned("n1", "n2", true);
  h.env().Step(400);
  HealEverything(&h);
  h.DropClients();
  ASSERT_TRUE(h.env().RunUntil([&] { return h.Primary() != nullptr; },
                               10000));
  c = h.UserClient("alice");
  json::Object msg;
  msg["id"] = 100;
  msg["msg"] = "post-chaos";
  auto w = c->PostJson("/app/log", json::Value(std::move(msg)), 5000);
  ASSERT_TRUE(w.ok());
  ASSERT_EQ(w->status, 200);
  ASSERT_TRUE(h.env().RunUntil([&] { return Quiesced(&h); }, 5000));

  // Late joiner: snapshot install + tail replay.
  node::Node* n3 = h.JoinAndTrust("n3", 15000);
  ASSERT_NE(n3, nullptr);
  h.TrackNode("n3");

  json::Object msg2;
  msg2["id"] = 101;
  msg2["msg"] = "with-joiner";
  auto w2 = c->PostJson("/app/log", json::Value(std::move(msg2)), 5000);
  ASSERT_TRUE(w2.ok());
  ASSERT_EQ(w2->status, 200);

  uint64_t target = h.Primary()->last_seqno();
  ASSERT_TRUE(h.WaitForCommitEverywhere(target, 10000));
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        for (const std::string& id : {"n0", "n1", "n2", "n3"}) {
          node::Node* n = h.node(id);
          if (n->last_seqno() != n3->last_seqno() ||
              n->commit_seqno() != n->last_seqno()) {
            return false;
          }
        }
        return true;
      },
      5000));

  std::string why;
  EXPECT_TRUE(checker.CheckConverged([](const std::string&) { return true; },
                                     &why))
      << why;
  EXPECT_TRUE(checker.ok()) << checker.Report();
}

}  // namespace
}  // namespace ccf::testing
