// Seeded chaos over the historical fetch path (paper §3.4 / §5): the
// untrusted host drops, corrupts, delays and reorders ledger-fetch
// responses mid-query. The enclave must either complete the query with
// every entry re-verified against a signed Merkle root, or fail cleanly
// with a timeout -- never serve an unverified entry and never poison the
// cache. Each seed replays bit-for-bit.

#include <gtest/gtest.h>

#include <sstream>
#include <string>
#include <vector>

#include "common/hex.h"
#include "merkle/receipt.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

struct ChaosResult {
  std::string failure;  // empty = all invariants held
  uint64_t completed = 0;
  uint64_t timed_out = 0;
  std::string trace;  // per-query outcome fingerprint (determinism)
};

ChaosResult RunHistoricalChaos(uint64_t seed) {
  ChaosResult out;
  std::ostringstream trace;

  sim::EnvOptions opts;
  opts.seed = seed;
  ServiceHarness h(opts);
  h.AddUser("user0");
  // Short fetch timeout so lossy schedules fail fast instead of retrying
  // past the query deadline.
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->historical.fetch_timeout_ms = 300;
    cfg->historical.retry_interval_ms = 15;
    cfg->historical.cache_max_requests = 4;
  });
  node::Node* n0 = h.StartGenesis();
  h.EnableInvariantChecker();
  node::Client* client = h.UserClient("user0");

  // Some committed history to query.
  uint64_t last = 0;
  for (int i = 0; i < 15; ++i) {
    json::Object body;
    body["id"] = i % 3;
    body["msg"] = "m" + std::to_string(i);
    auto resp = client->PostJson("/app/log", json::Value(std::move(body)));
    if (!resp.ok() || resp->status != 200) {
      out.failure = "setup write failed";
      return out;
    }
    auto txid = node::Client::TxIdOf(*resp);
    if (txid.has_value()) last = txid->second;
  }
  if (!h.env().RunUntil([&] { return n0->ReceiptableUpto() >= last; },
                        8000)) {
    out.failure = "setup never became receiptable";
    return out;
  }
  uint64_t upto = n0->ReceiptableUpto();

  crypto::Drbg chaos("historical-chaos", seed);

  // Queries under shifting host-fault regimes. Fault parameters are drawn
  // per round, including mid-query changes (the fault policy is re-read by
  // the host on every fetch it serves).
  for (int round = 0; round < 6; ++round) {
    sim::HostFaults faults;
    faults.drop = static_cast<double>(chaos.Uniform(40)) / 100.0;     // 0-39%
    faults.corrupt = static_cast<double>(chaos.Uniform(30)) / 100.0;  // 0-29%
    faults.reorder = static_cast<double>(chaos.Uniform(50)) / 100.0;
    faults.extra_delay_max_ms = chaos.Uniform(40);
    h.env().SetHostFaults("n0", faults);

    uint64_t lo = 1 + chaos.Uniform(upto);
    uint64_t hi = lo + chaos.Uniform(8);
    if (hi > upto) hi = upto;
    std::string path = "/app/log/historical/range?id=" +
                       std::to_string(chaos.Uniform(3)) +
                       "&from=" + std::to_string(lo) +
                       "&to=" + std::to_string(hi);

    // Poll until a terminal answer. 503 (clean timeout under faults) is
    // acceptable; anything else but 200 is a bug.
    Result<http::Response> final = Status::Unavailable("none");
    h.env().RunUntil(
        [&] {
          final = client->Get(path, 2000);
          return final.ok() && final->status != 202;
        },
        4000);
    if (!final.ok()) {
      out.failure = "round " + std::to_string(round) +
                    ": no terminal response: " + final.status().ToString();
      return out;
    }
    if (final->status == 200) {
      ++out.completed;
      // Every served entry carries a receipt that verifies offline.
      auto body = json::Parse(ToString(final->body));
      if (!body.ok()) {
        out.failure = "round " + std::to_string(round) + ": bad json";
        return out;
      }
      const json::Value* entries = body->Get("entries");
      for (const json::Value& e :
           entries != nullptr ? entries->AsArray() : json::Array{}) {
        auto receipt_bytes = HexDecode(e.GetString("receipt"));
        if (!receipt_bytes.ok()) {
          out.failure = "round " + std::to_string(round) + ": bad receipt hex";
          return out;
        }
        auto receipt = merkle::Receipt::Deserialize(*receipt_bytes);
        if (!receipt.ok() ||
            !receipt->Verify(n0->service_identity()).ok()) {
          out.failure = "round " + std::to_string(round) +
                        ": served entry with unverifiable receipt";
          return out;
        }
      }
    } else if (final->status == 503) {
      ++out.timed_out;
    } else {
      out.failure = "round " + std::to_string(round) +
                    ": unexpected status " + std::to_string(final->status);
      return out;
    }
    trace << "r" << round << ":" << final->status << ";";

    // The cache never holds an unverified entry, faults or not.
    Status audit = n0->historical().AuditCache(n0->service_identity());
    if (!audit.ok()) {
      out.failure = "round " + std::to_string(round) +
                    ": poisoned cache: " + audit.ToString();
      return out;
    }
  }

  // Heal: with faults cleared, a full-prefix query must complete verified.
  h.env().ClearHostFaults();
  std::string full = "/app/log/historical/range?id=0&from=1&to=" +
                     std::to_string(upto);
  Result<http::Response> healed = Status::Unavailable("none");
  if (!h.env().RunUntil(
          [&] {
            healed = client->Get(full, 2000);
            return healed.ok() && healed->status == 200;
          },
          8000)) {
    out.failure = "query did not complete after healing";
    return out;
  }
  if (!n0->historical().AuditCache(n0->service_identity()).ok()) {
    out.failure = "poisoned cache after healing";
    return out;
  }
  // Fault injection actually exercised the path (over all rounds some
  // fault fired, except for pathological all-zero draws).
  const auto& hc = n0->historical_counters();
  trace << "fetches:" << hc.host_fetch_requests
        << ";verified:" << hc.entries_verified;
  out.trace = trace.str();
  return out;
}

class HistoricalChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(HistoricalChaos, FaultyHostFetchesNeverPoisonTheCache) {
  const uint64_t base = GetParam() * 10;
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = base + i;
    ChaosResult r = RunHistoricalChaos(seed);
    ASSERT_TRUE(r.failure.empty())
        << "seed " << seed << ": " << r.failure << "\ntrace: " << r.trace;
    // Each run resolves every query one way or the other.
    EXPECT_EQ(r.completed + r.timed_out, 6u) << "seed " << seed;
  }
}

// 20 params x 10 seeds = 200 distinct seeds.
INSTANTIATE_TEST_SUITE_P(Seeds, HistoricalChaos,
                         ::testing::Range<uint64_t>(0, 20));

// Same seed, same run: the fault schedule and every outcome replay
// bit-for-bit (the host draws faults from a dedicated seeded DRBG).
TEST(HistoricalChaosDeterminism, SameSeedSameTrace) {
  ChaosResult a = RunHistoricalChaos(7);
  ChaosResult b = RunHistoricalChaos(7);
  ASSERT_TRUE(a.failure.empty()) << a.failure;
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.completed, b.completed);
  EXPECT_EQ(a.timed_out, b.timed_out);
}

}  // namespace
}  // namespace ccf::testing
