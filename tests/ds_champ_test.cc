#include <gtest/gtest.h>

#include <map>
#include <string>

#include "crypto/hmac.h"
#include "ds/champ.h"

namespace ccf::ds {
namespace {

using Map = ChampMap<std::string, int>;

TEST(Champ, EmptyMap) {
  Map m;
  EXPECT_EQ(m.size(), 0u);
  EXPECT_TRUE(m.empty());
  EXPECT_EQ(m.Get("a"), nullptr);
  EXPECT_FALSE(m.Contains("a"));
}

TEST(Champ, PutGet) {
  Map m;
  Map m2 = m.Put("a", 1);
  EXPECT_EQ(m.size(), 0u);  // original untouched
  EXPECT_EQ(m2.size(), 1u);
  ASSERT_NE(m2.Get("a"), nullptr);
  EXPECT_EQ(*m2.Get("a"), 1);
}

TEST(Champ, PutReplaces) {
  Map m = Map().Put("k", 1).Put("k", 2);
  EXPECT_EQ(m.size(), 1u);
  EXPECT_EQ(*m.Get("k"), 2);
}

TEST(Champ, RemoveExisting) {
  Map m = Map().Put("a", 1).Put("b", 2);
  Map m2 = m.Remove("a");
  EXPECT_EQ(m2.size(), 1u);
  EXPECT_EQ(m2.Get("a"), nullptr);
  EXPECT_EQ(*m2.Get("b"), 2);
  // Original unchanged.
  EXPECT_EQ(*m.Get("a"), 1);
}

TEST(Champ, RemoveAbsentIsNoop) {
  Map m = Map().Put("a", 1);
  Map m2 = m.Remove("zzz");
  EXPECT_EQ(m2.size(), 1u);
  EXPECT_EQ(*m2.Get("a"), 1);
}

TEST(Champ, PersistentVersions) {
  // Each version must see exactly its own state — this is what KV rollback
  // relies on.
  std::vector<Map> versions;
  Map m;
  versions.push_back(m);
  for (int i = 0; i < 100; ++i) {
    m = m.Put("key" + std::to_string(i), i);
    versions.push_back(m);
  }
  for (int v = 0; v <= 100; ++v) {
    EXPECT_EQ(versions[v].size(), static_cast<size_t>(v));
    for (int i = 0; i < 100; ++i) {
      const int* got = versions[v].Get("key" + std::to_string(i));
      if (i < v) {
        ASSERT_NE(got, nullptr) << "v=" << v << " i=" << i;
        EXPECT_EQ(*got, i);
      } else {
        EXPECT_EQ(got, nullptr) << "v=" << v << " i=" << i;
      }
    }
  }
}

TEST(Champ, ForEachVisitsAll) {
  Map m;
  for (int i = 0; i < 50; ++i) m = m.Put("k" + std::to_string(i), i);
  std::map<std::string, int> seen;
  m.ForEach([&](const std::string& k, const int& v) {
    seen[k] = v;
    return true;
  });
  EXPECT_EQ(seen.size(), 50u);
  for (int i = 0; i < 50; ++i) {
    EXPECT_EQ(seen["k" + std::to_string(i)], i);
  }
}

TEST(Champ, ForEachEarlyStop) {
  Map m;
  for (int i = 0; i < 50; ++i) m = m.Put("k" + std::to_string(i), i);
  int count = 0;
  m.ForEach([&](const std::string&, const int&) {
    ++count;
    return count < 10;
  });
  EXPECT_EQ(count, 10);
}

// Force hash collisions to exercise collision nodes.
struct CollidingOps {
  static uint64_t Hash(const std::string& k) {
    // Only two buckets, and identical across all trie levels.
    return k.size() % 2 == 0 ? 0 : ~uint64_t{0};
  }
  static bool Equal(const std::string& a, const std::string& b) {
    return a == b;
  }
};

TEST(Champ, HashCollisionsHandled) {
  ChampMap<std::string, int, CollidingOps> m;
  for (int i = 0; i < 40; ++i) {
    m = m.Put("key" + std::to_string(i), i);
  }
  EXPECT_EQ(m.size(), 40u);
  for (int i = 0; i < 40; ++i) {
    const int* got = m.Get("key" + std::to_string(i));
    ASSERT_NE(got, nullptr) << i;
    EXPECT_EQ(*got, i);
  }
  // Remove half.
  for (int i = 0; i < 40; i += 2) {
    m = m.Remove("key" + std::to_string(i));
  }
  EXPECT_EQ(m.size(), 20u);
  for (int i = 0; i < 40; ++i) {
    EXPECT_EQ(m.Get("key" + std::to_string(i)) != nullptr, i % 2 == 1) << i;
  }
}

TEST(Champ, CollisionReplace) {
  ChampMap<std::string, int, CollidingOps> m;
  m = m.Put("aa", 1).Put("bb", 2).Put("aa", 3);
  EXPECT_EQ(m.size(), 2u);
  EXPECT_EQ(*m.Get("aa"), 3);
}

// Model-based property test: random Put/Remove mirrored against std::map.
TEST(Champ, MatchesStdMapModel) {
  crypto::Drbg drbg("champ-model", 0);
  Map champ;
  std::map<std::string, int> model;
  for (int step = 0; step < 5000; ++step) {
    std::string key = "k" + std::to_string(drbg.Uniform(400));
    int op = static_cast<int>(drbg.Uniform(3));
    if (op < 2) {
      int value = static_cast<int>(drbg.Uniform(1000));
      champ = champ.Put(key, value);
      model[key] = value;
    } else {
      champ = champ.Remove(key);
      model.erase(key);
    }
    ASSERT_EQ(champ.size(), model.size()) << "step " << step;
    // Spot-check a few keys per step.
    for (int probe = 0; probe < 4; ++probe) {
      std::string pk = "k" + std::to_string(drbg.Uniform(400));
      auto it = model.find(pk);
      const int* got = champ.Get(pk);
      if (it == model.end()) {
        ASSERT_EQ(got, nullptr) << "step " << step << " key " << pk;
      } else {
        ASSERT_NE(got, nullptr) << "step " << step << " key " << pk;
        ASSERT_EQ(*got, it->second);
      }
    }
  }
  // Final full comparison.
  std::map<std::string, int> dumped;
  champ.ForEach([&](const std::string& k, const int& v) {
    dumped[k] = v;
    return true;
  });
  EXPECT_EQ(dumped, model);
}

TEST(Champ, LargeScale) {
  Map m;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) m = m.Put(std::to_string(i), i);
  EXPECT_EQ(m.size(), static_cast<size_t>(kN));
  for (int i = 0; i < kN; i += 97) {
    ASSERT_NE(m.Get(std::to_string(i)), nullptr);
    EXPECT_EQ(*m.Get(std::to_string(i)), i);
  }
  for (int i = 0; i < kN; ++i) m = m.Remove(std::to_string(i));
  EXPECT_TRUE(m.empty());
}

TEST(Champ, BytesKeys) {
  ChampMap<Bytes, Bytes> m;
  m = m.Put(Bytes{1, 2, 3}, Bytes{4, 5});
  m = m.Put(Bytes{}, Bytes{9});
  ASSERT_NE(m.Get(Bytes{1, 2, 3}), nullptr);
  EXPECT_EQ(*m.Get(Bytes{1, 2, 3}), (Bytes{4, 5}));
  ASSERT_NE(m.Get(Bytes{}), nullptr);
  EXPECT_EQ(m.Get(Bytes{1, 2}), nullptr);
}

}  // namespace
}  // namespace ccf::ds
