#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>
#include <fstream>

#include "crypto/hmac.h"
#include "ledger/ledger.h"

namespace ccf::ledger {
namespace {

Entry MakeEntry(uint64_t view, uint64_t seqno,
                EntryType type = EntryType::kUser) {
  Entry e;
  e.view = view;
  e.seqno = seqno;
  e.type = type;
  e.public_ws = ToBytes("pub-" + std::to_string(seqno));
  e.private_sealed = ToBytes("priv-" + std::to_string(seqno));
  return e;
}

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccf_ledger_test_" + std::to_string(counter_++) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

TEST(LedgerEntry, SerializationRoundTrip) {
  Entry e = MakeEntry(3, 17, EntryType::kSignature);
  e.claims_digest = crypto::Sha256::Hash(ToBytes("claims"));
  Bytes ser = e.Serialize();
  auto back = Entry::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(back->view, 3u);
  EXPECT_EQ(back->seqno, 17u);
  EXPECT_EQ(back->type, EntryType::kSignature);
  EXPECT_EQ(back->public_ws, e.public_ws);
  EXPECT_EQ(back->private_sealed, e.private_sealed);
  EXPECT_EQ(back->claims_digest, e.claims_digest);
}

TEST(LedgerEntry, DeserializeRejectsCorruption) {
  Entry e = MakeEntry(1, 1);
  Bytes ser = e.Serialize();
  Bytes truncated(ser.begin(), ser.end() - 1);
  EXPECT_FALSE(Entry::Deserialize(truncated).ok());
  Bytes extended = ser;
  extended.push_back(0);
  EXPECT_FALSE(Entry::Deserialize(extended).ok());
  Bytes bad_type = ser;
  bad_type[16] = 99;  // type byte
  EXPECT_FALSE(Entry::Deserialize(bad_type).ok());
}

TEST(LedgerEntry, WriteSetDigestDependsOnContent) {
  Entry a = MakeEntry(1, 1);
  Entry b = MakeEntry(1, 1);
  b.public_ws.push_back(0xFF);
  EXPECT_NE(a.WriteSetDigest(), b.WriteSetDigest());
  Entry c = MakeEntry(1, 1);
  c.type = EntryType::kSignature;
  EXPECT_NE(a.WriteSetDigest(), c.WriteSetDigest());
}

TEST(Ledger, AppendContiguous) {
  Ledger ledger;
  EXPECT_TRUE(ledger.Append(MakeEntry(1, 1)).ok());
  EXPECT_TRUE(ledger.Append(MakeEntry(1, 2)).ok());
  EXPECT_FALSE(ledger.Append(MakeEntry(1, 4)).ok());  // gap
  EXPECT_FALSE(ledger.Append(MakeEntry(1, 2)).ok());  // duplicate
  EXPECT_EQ(ledger.last_seqno(), 2u);
}

TEST(Ledger, GetBounds) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeEntry(1, 1)).ok());
  EXPECT_TRUE(ledger.Get(1).ok());
  EXPECT_FALSE(ledger.Get(0).ok());
  EXPECT_FALSE(ledger.Get(2).ok());
  EXPECT_EQ((*ledger.Get(1))->seqno, 1u);
}

TEST(Ledger, TruncateDropsSuffix) {
  Ledger ledger;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  ledger.Truncate(6);
  EXPECT_EQ(ledger.last_seqno(), 6u);
  EXPECT_FALSE(ledger.Get(7).ok());
  // Re-append with new content (view change scenario).
  EXPECT_TRUE(ledger.Append(MakeEntry(2, 7)).ok());
  EXPECT_EQ((*ledger.Get(7))->view, 2u);
}

TEST(LedgerFiles, SaveLoadRoundTrip) {
  TempDir dir;
  Ledger ledger;
  // 12 entries with signatures at 5 and 10 -> chunks [1-5], [6-10],
  // partial [11-12].
  for (uint64_t i = 1; i <= 12; ++i) {
    EntryType type =
        (i % 5 == 0) ? EntryType::kSignature : EntryType::kUser;
    ASSERT_TRUE(ledger.Append(MakeEntry(2, i, type)).ok());
  }
  ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());

  // Chunk layout on disk matches the paper: files terminate at signatures.
  std::vector<std::string> names;
  for (const auto& de : std::filesystem::directory_iterator(dir.path())) {
    names.push_back(de.path().filename().string());
  }
  std::sort(names.begin(), names.end());
  ASSERT_EQ(names.size(), 3u);
  EXPECT_EQ(names[0], "ledger_1-5");
  EXPECT_EQ(names[1], "ledger_11");  // open chunk: no last seqno yet
  EXPECT_EQ(names[2], "ledger_6-10");

  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_seqno(), 12u);
  for (uint64_t i = 1; i <= 12; ++i) {
    EXPECT_EQ((*loaded->Get(i))->Serialize(), (*ledger.Get(i))->Serialize());
  }
}

TEST(LedgerFiles, SaveOverwritesStaleChunks) {
  TempDir dir;
  Ledger long_ledger;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(long_ledger
                    .Append(MakeEntry(1, i,
                                      i % 3 == 0 ? EntryType::kSignature
                                                 : EntryType::kUser))
                    .ok());
  }
  ASSERT_TRUE(SaveToDir(long_ledger, dir.path()).ok());

  Ledger short_ledger;
  for (uint64_t i = 1; i <= 4; ++i) {
    ASSERT_TRUE(short_ledger
                    .Append(MakeEntry(2, i,
                                      i == 4 ? EntryType::kSignature
                                             : EntryType::kUser))
                    .ok());
  }
  ASSERT_TRUE(SaveToDir(short_ledger, dir.path()).ok());
  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_seqno(), 4u);
  EXPECT_EQ((*loaded->Get(1))->view, 2u);
}

TEST(LedgerFiles, LoadRejectsCorruptMagic) {
  TempDir dir;
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeEntry(1, 1, EntryType::kSignature)).ok());
  ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());
  // Corrupt the magic of the chunk file.
  std::string path = dir.path() + "/ledger_1-1";
  std::fstream f(path, std::ios::binary | std::ios::in | std::ios::out);
  f.seekp(0);
  f.write("XXXX", 4);
  f.close();
  EXPECT_FALSE(LoadFromDir(dir.path()).ok());
}

TEST(LedgerFiles, LoadRejectsTruncatedFrame) {
  TempDir dir;
  Ledger ledger;
  for (uint64_t i = 1; i <= 3; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());
  std::string path = dir.path() + "/ledger_1";
  // Chop off the last few bytes.
  auto size = std::filesystem::file_size(path);
  std::filesystem::resize_file(path, size - 3);
  EXPECT_FALSE(LoadFromDir(dir.path()).ok());
}

TEST(LedgerFiles, LoadMissingDirFails) {
  EXPECT_FALSE(LoadFromDir("/nonexistent/ccf/dir").ok());
}

// A crash mid-write can leave a 1-3 byte fragment of the next frame's
// length prefix. Such a partial read sets eofbit together with failbit and
// used to be silently accepted as a clean end of chunk.
TEST(LedgerFiles, LoadRejectsTrailingFrameLengthFragment) {
  for (int extra = 1; extra <= 3; ++extra) {
    TempDir dir;
    Ledger ledger;
    for (uint64_t i = 1; i <= 3; ++i) {
      ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
    }
    ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());
    std::string path = dir.path() + "/ledger_1";
    std::ofstream f(path, std::ios::binary | std::ios::app);
    for (int i = 0; i < extra; ++i) f.put('\x7f');
    f.close();
    EXPECT_FALSE(LoadFromDir(dir.path()).ok())
        << "accepted a " << extra << "-byte trailing fragment";
  }
}

// Directories written after a snapshot prune start at a chunk whose first
// seqno is > 1; loading must adopt that base instead of rejecting the
// first append as non-contiguous.
TEST(LedgerFiles, LoadPostSnapshotDirAdoptsBase) {
  TempDir dir;
  Ledger pruned;
  pruned.SetBase(5);  // entries 1..5 live only in a snapshot
  for (uint64_t i = 6; i <= 10; ++i) {
    ASSERT_TRUE(pruned.Append(MakeEntry(2, i)).ok());
  }
  ASSERT_TRUE(SaveToDir(pruned, dir.path()).ok());

  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->base_seqno(), 5u);
  EXPECT_EQ(loaded->last_seqno(), 10u);
  EXPECT_EQ(loaded->Get(6).value()->public_ws, ToBytes("pub-6"));
  EXPECT_EQ(loaded->Get(10).value()->public_ws, ToBytes("pub-10"));
  EXPECT_FALSE(loaded->Get(5).ok());  // pruned into the snapshot
  // And the loaded ledger keeps working: contiguous appends succeed.
  EXPECT_TRUE(loaded->Append(MakeEntry(2, 11)).ok());
}

// Historical fetches ask the host ledger for arbitrary committed seqnos;
// after a snapshot prune the entries below base_seqno_ are gone and Get
// must report NotFound (the enclave treats that as a permanent host-side
// failure for the range), while everything above the base stays servable.
TEST(Ledger, GetAroundBaseAfterSetBase) {
  Ledger ledger;
  ledger.SetBase(5);
  for (uint64_t i = 6; i <= 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  EXPECT_FALSE(ledger.Get(0).ok());
  EXPECT_FALSE(ledger.Get(4).ok());
  EXPECT_FALSE(ledger.Get(5).ok());  // exactly at the base: pruned
  ASSERT_TRUE(ledger.Get(6).ok());
  EXPECT_EQ((*ledger.Get(6))->seqno, 6u);
  ASSERT_TRUE(ledger.Get(10).ok());
  EXPECT_FALSE(ledger.Get(11).ok());
}

TEST(LedgerFiles, GetAroundBaseAfterSnapshotLoad) {
  TempDir dir;
  Ledger pruned;
  pruned.SetBase(7);
  for (uint64_t i = 8; i <= 12; ++i) {
    ASSERT_TRUE(pruned.Append(MakeEntry(3, i)).ok());
  }
  ASSERT_TRUE(SaveToDir(pruned, dir.path()).ok());

  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->base_seqno(), 7u);
  // The boundary is exact: base itself is pruned, base+1 is the first
  // servable entry.
  EXPECT_FALSE(loaded->Get(7).ok());
  ASSERT_TRUE(loaded->Get(8).ok());
  EXPECT_EQ((*loaded->Get(8))->public_ws, ToBytes("pub-8"));
  ASSERT_TRUE(loaded->Get(12).ok());
  EXPECT_FALSE(loaded->Get(13).ok());
}

// A view change truncates the suffix and the new primary re-appends
// different entries at the same seqnos; Get must serve the replacement
// content, never the truncated original.
TEST(Ledger, GetAfterTruncateThenReappend) {
  Ledger ledger;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  ledger.Truncate(6);
  EXPECT_FALSE(ledger.Get(7).ok());
  EXPECT_FALSE(ledger.Get(10).ok());
  ASSERT_TRUE(ledger.Get(6).ok());

  Entry replacement = MakeEntry(2, 7);
  replacement.public_ws = ToBytes("replacement-7");
  ASSERT_TRUE(ledger.Append(std::move(replacement)).ok());
  ASSERT_TRUE(ledger.Get(7).ok());
  EXPECT_EQ((*ledger.Get(7))->view, 2u);
  EXPECT_EQ((*ledger.Get(7))->public_ws, ToBytes("replacement-7"));
  // Seqnos beyond the re-appended head remain unavailable.
  EXPECT_FALSE(ledger.Get(8).ok());
}

// SetBase used to silently no-op when entries already existed; it now
// fails loudly so callers cannot end up with a ledger whose base and
// contents disagree.
TEST(Ledger, SetBaseFailsOnNonEmptyLedger) {
  Ledger ledger;
  ASSERT_TRUE(ledger.Append(MakeEntry(1, 1)).ok());
  Status s = ledger.SetBase(5);
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(ledger.base_seqno(), 0u);  // unchanged
  EXPECT_EQ(ledger.last_seqno(), 1u);
  // On an empty ledger it succeeds, including re-basing.
  Ledger fresh;
  EXPECT_TRUE(fresh.SetBase(3).ok());
  EXPECT_TRUE(fresh.SetBase(7).ok());
  EXPECT_EQ(fresh.base_seqno(), 7u);
}

// Truncation semantics around the base are now defined: truncating below
// the base is an error (those entries live only in the snapshot), while
// truncating exactly at the base empties the suffix.
TEST(Ledger, TruncateAtOrBelowBase) {
  Ledger ledger;
  ASSERT_TRUE(ledger.SetBase(5).ok());
  for (uint64_t i = 6; i <= 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  Status below = ledger.Truncate(3);
  EXPECT_FALSE(below.ok());
  EXPECT_EQ(below.code(), Status::Code::kFailedPrecondition);
  EXPECT_EQ(ledger.last_seqno(), 10u);  // untouched on error

  EXPECT_TRUE(ledger.Truncate(5).ok());  // exactly at base: empty suffix
  EXPECT_EQ(ledger.last_seqno(), 5u);
  EXPECT_EQ(ledger.base_seqno(), 5u);
  EXPECT_FALSE(ledger.Get(6).ok());
  EXPECT_TRUE(ledger.Append(MakeEntry(2, 6)).ok());
  EXPECT_EQ((*ledger.Get(6))->view, 2u);
}

// RetireBelow drops the prefix covered by a snapshot and advances the
// base; retired seqnos answer OutOfRange ("compacted"), distinct from the
// NotFound past the tail.
TEST(Ledger, RetireBelowAdvancesBase) {
  Ledger ledger;
  for (uint64_t i = 1; i <= 10; ++i) {
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i)).ok());
  }
  EXPECT_TRUE(ledger.RetireBelow(6).ok());
  EXPECT_EQ(ledger.base_seqno(), 6u);
  EXPECT_EQ(ledger.last_seqno(), 10u);
  EXPECT_TRUE(ledger.Get(6).status().IsOutOfRange());
  EXPECT_TRUE(ledger.Get(3).status().IsOutOfRange());
  EXPECT_TRUE(ledger.Get(11).status().IsNotFound());
  ASSERT_TRUE(ledger.Get(7).ok());
  EXPECT_EQ((*ledger.Get(7))->seqno, 7u);

  // Retiring at or below the current base is a no-op.
  EXPECT_TRUE(ledger.RetireBelow(4).ok());
  EXPECT_EQ(ledger.base_seqno(), 6u);
  // Retiring beyond the tail is refused.
  EXPECT_FALSE(ledger.RetireBelow(11).ok());
  EXPECT_EQ(ledger.base_seqno(), 6u);
}

// Retired chunks are absent from the saved directory and the base is
// re-derived from the first remaining chunk on load.
TEST(LedgerFiles, RetiredChunksAbsentFromDir) {
  TempDir dir;
  Ledger ledger;
  for (uint64_t i = 1; i <= 12; ++i) {
    EntryType type =
        (i % 4 == 0) ? EntryType::kSignature : EntryType::kUser;
    ASSERT_TRUE(ledger.Append(MakeEntry(1, i, type)).ok());
  }
  ASSERT_TRUE(ledger.RetireBelow(8).ok());
  ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());
  std::vector<std::string> names;
  for (const auto& de : std::filesystem::directory_iterator(dir.path())) {
    names.push_back(de.path().filename().string());
  }
  ASSERT_EQ(names.size(), 1u);
  EXPECT_EQ(names[0], "ledger_9-12");  // retired chunks are gone

  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status().ToString();
  EXPECT_EQ(loaded->base_seqno(), 8u);
  EXPECT_EQ(loaded->last_seqno(), 12u);
  EXPECT_TRUE(loaded->Get(8).status().IsOutOfRange());
  ASSERT_TRUE(loaded->Get(9).ok());
}

TEST(LedgerFiles, EmptyLedgerRoundTrip) {
  TempDir dir;
  Ledger ledger;
  ASSERT_TRUE(SaveToDir(ledger, dir.path()).ok());
  auto loaded = LoadFromDir(dir.path());
  ASSERT_TRUE(loaded.ok());
  EXPECT_EQ(loaded->last_seqno(), 0u);
}

}  // namespace
}  // namespace ccf::ledger
