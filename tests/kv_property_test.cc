// Model-based property tests for the KV store: random sequences of
// commits, replicated applies, rollbacks, and compactions are mirrored
// against a simple reference model; the store must agree at every step.

#include <gtest/gtest.h>

#include <map>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "crypto/hmac.h"
#include "kv/snapshot.h"
#include "kv/store.h"

namespace ccf::kv {
namespace {

using Model = std::map<std::string, std::map<std::string, std::string>>;

Model ModelOf(const State& state) {
  Model m;
  state.maps.ForEach([&](const std::string& name, const MapEntry& entry) {
    auto& dst = m[name];
    entry.data.ForEach([&](const Bytes& k, const VersionedValue& v) {
      dst[ToString(k)] = ToString(v.value);
      return true;
    });
    return true;
  });
  // Normalize away empty maps.
  for (auto it = m.begin(); it != m.end();) {
    it = it->second.empty() ? m.erase(it) : std::next(it);
  }
  return m;
}

class KvChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvChaosTest, StoreMatchesModelUnderRandomOps) {
  crypto::Drbg rng("kv-chaos", GetParam());
  Store store;
  // Reference: model per version seqno (for rollback), plus committed mark.
  std::vector<Model> versions = {{}};  // versions[s] = model at seqno s
  uint64_t committed = 0;

  const std::vector<std::string> maps = {"public:a", "private:b", "private:c"};

  for (int step = 0; step < 2000; ++step) {
    uint64_t action = rng.Uniform(100);
    if (action < 70) {
      // Commit a transaction with 1-3 random writes/removes.
      Tx tx = store.BeginTx();
      Model next = versions.back();
      int writes = 1 + static_cast<int>(rng.Uniform(3));
      for (int w = 0; w < writes; ++w) {
        const std::string& map = maps[rng.Uniform(maps.size())];
        std::string key = "k" + std::to_string(rng.Uniform(30));
        if (rng.Uniform(5) == 0) {
          tx.Handle(map)->RemoveStr(key);
          next[map].erase(key);
          if (next[map].empty()) next.erase(map);
        } else {
          std::string value = "v" + std::to_string(step);
          tx.Handle(map)->PutStr(key, value);
          next[map][key] = value;
        }
      }
      auto result = store.CommitTx(&tx);
      ASSERT_TRUE(result.ok()) << step;
      ASSERT_EQ(result->seqno, versions.size()) << step;
      versions.push_back(std::move(next));
    } else if (action < 85 && store.current_seqno() > committed) {
      // Rollback to a random uncommitted-but-valid point.
      uint64_t target =
          committed + rng.Uniform(store.current_seqno() - committed + 1);
      ASSERT_TRUE(store.Rollback(target).ok()) << step;
      versions.resize(target + 1);
    } else if (store.current_seqno() > committed) {
      // Compact (commit) up to a random point.
      uint64_t target =
          committed + 1 + rng.Uniform(store.current_seqno() - committed);
      ASSERT_TRUE(store.Compact(target).ok()) << step;
      committed = target;
    }

    ASSERT_EQ(store.current_seqno() + 1, versions.size()) << step;
    ASSERT_EQ(store.committed_seqno(), committed) << step;
    if (step % 50 == 0) {
      ASSERT_EQ(ModelOf(store.current_state()), versions.back()) << step;
    }
  }
  EXPECT_EQ(ModelOf(store.current_state()), versions.back());
  // Snapshot of the committed state matches the committed model.
  EXPECT_EQ(ModelOf(store.committed_state()), versions[committed]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// OCC conflict-matrix property (DESIGN.md §12): two transactions opened
// from the same snapshot conflict iff the first committer's write/remove
// keys intersect the second's read keys on some map. Read-read and
// (read-free) write-write pairs always commute; after a conflicted abort,
// re-execution against the new head commits and last-writer-wins holds.
class KvConflictMatrixTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvConflictMatrixTest, ConflictIffWritesIntersectReads) {
  crypto::Drbg rng("kv-conflict", GetParam());
  Store store;
  const std::vector<std::string> maps = {"private:x", "public:y"};
  const int kKeys = 12;

  // Prepopulate every key so removes always hit a live version.
  {
    Tx init = store.BeginTx();
    for (const std::string& map : maps) {
      for (int k = 0; k < kKeys; ++k) {
        init.Handle(map)->PutStr("k" + std::to_string(k), "init");
      }
    }
    ASSERT_TRUE(store.CommitTx(&init).ok());
  }

  for (int round = 0; round < 400; ++round) {
    // Key sets for this round, drawn up front so the oracle and the
    // transactions agree. Map name + key identifies a cell.
    auto draw = [&](size_t n) {
      std::set<std::pair<std::string, std::string>> out;
      for (size_t i = 0; i < n; ++i) {
        out.emplace(maps[rng.Uniform(maps.size())],
                    "k" + std::to_string(rng.Uniform(kKeys)));
      }
      return out;
    };
    auto a_writes = draw(1 + rng.Uniform(3));
    auto b_reads = draw(rng.Uniform(3));  // possibly read-free
    auto b_writes = draw(1 + rng.Uniform(3));
    bool a_removes = rng.Uniform(4) == 0;

    // Both transactions open against the same head (the OCC batch shape).
    Tx a = store.BeginTx();
    Tx b = store.BeginTx();
    for (const auto& [map, key] : b_reads) b.Handle(map)->GetStr(key);
    for (const auto& [map, key] : b_writes) {
      b.Handle(map)->PutStr(key, "b" + std::to_string(round));
    }
    for (const auto& [map, key] : a_writes) {
      if (a_removes) {
        a.Handle(map)->RemoveStr(key);
      } else {
        a.Handle(map)->PutStr(key, "a" + std::to_string(round));
      }
    }

    auto a_result = store.CommitTx(&a);
    ASSERT_TRUE(a_result.ok()) << round;

    bool expect_conflict = false;
    for (const auto& cell : a_writes) {
      if (b_reads.count(cell) > 0) expect_conflict = true;
    }

    Status check = store.CheckConflicts(b);
    EXPECT_EQ(check.ok(), !expect_conflict)
        << "round " << round << ": " << check.ToString();
    auto b_result = store.CommitTx(&b);
    if (expect_conflict) {
      ASSERT_FALSE(b_result.ok()) << round;
      EXPECT_EQ(b_result.status().code(), Status::Code::kAborted) << round;
      // Re-execution against the new head (what the serial commit point
      // does with a loser) commits cleanly.
      Tx retry = store.BeginTx();
      for (const auto& [map, key] : b_reads) retry.Handle(map)->GetStr(key);
      for (const auto& [map, key] : b_writes) {
        retry.Handle(map)->PutStr(key, "b" + std::to_string(round));
      }
      ASSERT_TRUE(store.CommitTx(&retry).ok()) << round;
    } else {
      // Commutes: write-write overlap without reads is not a conflict
      // (OCC validates read sets only); B's writes land after A's.
      ASSERT_TRUE(b_result.ok()) << round << ": "
                                 << b_result.status().ToString();
    }

    // Last-writer-wins on every key B wrote, whichever path it took.
    Tx probe = store.BeginTx();
    for (const auto& [map, key] : b_writes) {
      auto got = probe.Handle(map)->GetStr(key);
      ASSERT_TRUE(got.has_value()) << round;
      EXPECT_EQ(*got, "b" + std::to_string(round)) << round;
    }

    // Restore any removed keys for the next round.
    if (a_removes) {
      Tx heal = store.BeginTx();
      for (const auto& [map, key] : a_writes) {
        if (b_writes.count({map, key}) == 0) {
          heal.Handle(map)->PutStr(key, "init");
        }
      }
      ASSERT_TRUE(store.CommitTx(&heal).ok()) << round;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvConflictMatrixTest,
                         ::testing::Values(1, 2, 3, 4));

// The write-set overlap oracle used by batch diagnostics: Overlaps is
// exactly nonempty key intersection per map.
TEST(KvWriteSetProperty, OverlapsMatchesKeyIntersection) {
  crypto::Drbg rng("kv-overlap", 9);
  for (int round = 0; round < 200; ++round) {
    Store store;
    auto build = [&](const char* tag) {
      Tx tx = store.BeginTx();
      std::set<std::pair<std::string, std::string>> cells;
      int n = 1 + static_cast<int>(rng.Uniform(4));
      for (int i = 0; i < n; ++i) {
        std::string map = rng.Uniform(2) == 0 ? "private:x" : "public:y";
        std::string key = "k" + std::to_string(rng.Uniform(8));
        cells.emplace(map, key);
        tx.Handle(map)->PutStr(key, tag);
      }
      auto result = store.CommitTx(&tx);
      EXPECT_TRUE(result.ok());
      return std::make_pair(result->write_set, cells);
    };
    auto [ws_a, cells_a] = build("a");
    auto [ws_b, cells_b] = build("b");
    bool expect = false;
    for (const auto& cell : cells_a) {
      if (cells_b.count(cell) > 0) expect = true;
    }
    EXPECT_EQ(ws_a.Overlaps(ws_b), expect) << round;
    EXPECT_EQ(ws_b.Overlaps(ws_a), expect) << round;
    EXPECT_FALSE(ws_a.Overlaps(WriteSet{})) << round;
  }
}

// Replicated path: a backup applying the primary's write sets stays
// byte-identical through random rollbacks mirrored on both sides.
TEST(KvReplicaProperty, BackupMirrorsThroughRollbacks) {
  crypto::Drbg rng("kv-replica", 3);
  Store primary, backup;
  uint64_t committed = 0;
  for (int step = 0; step < 800; ++step) {
    uint64_t action = rng.Uniform(10);
    if (action < 7) {
      Tx tx = primary.BeginTx();
      tx.Handle("private:data")
          ->PutStr("k" + std::to_string(rng.Uniform(20)),
                   "v" + std::to_string(step));
      auto result = primary.CommitTx(&tx);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(backup.ApplyWriteSet(result->write_set, result->seqno).ok());
    } else if (action < 8 && primary.current_seqno() > committed) {
      uint64_t target =
          committed + rng.Uniform(primary.current_seqno() - committed + 1);
      ASSERT_TRUE(primary.Rollback(target).ok());
      ASSERT_TRUE(backup.Rollback(target).ok());
    } else if (primary.current_seqno() > committed) {
      committed = primary.current_seqno();
      ASSERT_TRUE(primary.Compact(committed).ok());
      ASSERT_TRUE(backup.Compact(committed).ok());
    }
    if (step % 100 == 0) {
      ASSERT_EQ(SerializeState(primary.current_state()),
                SerializeState(backup.current_state()))
          << step;
    }
  }
  EXPECT_EQ(SerializeState(primary.current_state()),
            SerializeState(backup.current_state()));
}

}  // namespace
}  // namespace ccf::kv
