// Model-based property tests for the KV store: random sequences of
// commits, replicated applies, rollbacks, and compactions are mirrored
// against a simple reference model; the store must agree at every step.

#include <gtest/gtest.h>

#include <map>
#include <string>
#include <vector>

#include "crypto/hmac.h"
#include "kv/snapshot.h"
#include "kv/store.h"

namespace ccf::kv {
namespace {

using Model = std::map<std::string, std::map<std::string, std::string>>;

Model ModelOf(const State& state) {
  Model m;
  state.maps.ForEach([&](const std::string& name, const MapEntry& entry) {
    auto& dst = m[name];
    entry.data.ForEach([&](const Bytes& k, const VersionedValue& v) {
      dst[ToString(k)] = ToString(v.value);
      return true;
    });
    return true;
  });
  // Normalize away empty maps.
  for (auto it = m.begin(); it != m.end();) {
    it = it->second.empty() ? m.erase(it) : std::next(it);
  }
  return m;
}

class KvChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(KvChaosTest, StoreMatchesModelUnderRandomOps) {
  crypto::Drbg rng("kv-chaos", GetParam());
  Store store;
  // Reference: model per version seqno (for rollback), plus committed mark.
  std::vector<Model> versions = {{}};  // versions[s] = model at seqno s
  uint64_t committed = 0;

  const std::vector<std::string> maps = {"public:a", "private:b", "private:c"};

  for (int step = 0; step < 2000; ++step) {
    uint64_t action = rng.Uniform(100);
    if (action < 70) {
      // Commit a transaction with 1-3 random writes/removes.
      Tx tx = store.BeginTx();
      Model next = versions.back();
      int writes = 1 + static_cast<int>(rng.Uniform(3));
      for (int w = 0; w < writes; ++w) {
        const std::string& map = maps[rng.Uniform(maps.size())];
        std::string key = "k" + std::to_string(rng.Uniform(30));
        if (rng.Uniform(5) == 0) {
          tx.Handle(map)->RemoveStr(key);
          next[map].erase(key);
          if (next[map].empty()) next.erase(map);
        } else {
          std::string value = "v" + std::to_string(step);
          tx.Handle(map)->PutStr(key, value);
          next[map][key] = value;
        }
      }
      auto result = store.CommitTx(&tx);
      ASSERT_TRUE(result.ok()) << step;
      ASSERT_EQ(result->seqno, versions.size()) << step;
      versions.push_back(std::move(next));
    } else if (action < 85 && store.current_seqno() > committed) {
      // Rollback to a random uncommitted-but-valid point.
      uint64_t target =
          committed + rng.Uniform(store.current_seqno() - committed + 1);
      ASSERT_TRUE(store.Rollback(target).ok()) << step;
      versions.resize(target + 1);
    } else if (store.current_seqno() > committed) {
      // Compact (commit) up to a random point.
      uint64_t target =
          committed + 1 + rng.Uniform(store.current_seqno() - committed);
      ASSERT_TRUE(store.Compact(target).ok()) << step;
      committed = target;
    }

    ASSERT_EQ(store.current_seqno() + 1, versions.size()) << step;
    ASSERT_EQ(store.committed_seqno(), committed) << step;
    if (step % 50 == 0) {
      ASSERT_EQ(ModelOf(store.current_state()), versions.back()) << step;
    }
  }
  EXPECT_EQ(ModelOf(store.current_state()), versions.back());
  // Snapshot of the committed state matches the committed model.
  EXPECT_EQ(ModelOf(store.committed_state()), versions[committed]);
}

INSTANTIATE_TEST_SUITE_P(Seeds, KvChaosTest,
                         ::testing::Values(11, 22, 33, 44, 55, 66));

// Replicated path: a backup applying the primary's write sets stays
// byte-identical through random rollbacks mirrored on both sides.
TEST(KvReplicaProperty, BackupMirrorsThroughRollbacks) {
  crypto::Drbg rng("kv-replica", 3);
  Store primary, backup;
  uint64_t committed = 0;
  for (int step = 0; step < 800; ++step) {
    uint64_t action = rng.Uniform(10);
    if (action < 7) {
      Tx tx = primary.BeginTx();
      tx.Handle("private:data")
          ->PutStr("k" + std::to_string(rng.Uniform(20)),
                   "v" + std::to_string(step));
      auto result = primary.CommitTx(&tx);
      ASSERT_TRUE(result.ok());
      ASSERT_TRUE(backup.ApplyWriteSet(result->write_set, result->seqno).ok());
    } else if (action < 8 && primary.current_seqno() > committed) {
      uint64_t target =
          committed + rng.Uniform(primary.current_seqno() - committed + 1);
      ASSERT_TRUE(primary.Rollback(target).ok());
      ASSERT_TRUE(backup.Rollback(target).ok());
    } else if (primary.current_seqno() > committed) {
      committed = primary.current_seqno();
      ASSERT_TRUE(primary.Compact(committed).ok());
      ASSERT_TRUE(backup.Compact(committed).ok());
    }
    if (step % 100 == 0) {
      ASSERT_EQ(SerializeState(primary.current_state()),
                SerializeState(backup.current_state()))
          << step;
    }
  }
  EXPECT_EQ(SerializeState(primary.current_state()),
            SerializeState(backup.current_state()));
}

}  // namespace
}  // namespace ccf::kv
