#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/hmac.h"
#include "merkle/merkle.h"
#include "merkle/receipt.h"

namespace ccf::merkle {
namespace {

Bytes Leaf(int i) { return ToBytes("tx-" + std::to_string(i)); }

// Reference implementation: recompute the RFC 6962 root from scratch.
Digest ReferenceRoot(const std::vector<Bytes>& leaves, size_t lo, size_t hi) {
  if (hi == lo) return crypto::Sha256::Hash({});
  if (hi - lo == 1) return LeafHash(leaves[lo]);
  size_t len = hi - lo;
  size_t k = 1;
  while (k * 2 < len) k *= 2;
  return InteriorHash(ReferenceRoot(leaves, lo, lo + k),
                      ReferenceRoot(leaves, lo + k, hi));
}

TEST(Merkle, EmptyTreeRoot) {
  MerkleTree t;
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Root(), crypto::Sha256::Hash({}));
}

TEST(Merkle, SingleLeaf) {
  MerkleTree t;
  t.Append(Leaf(0));
  EXPECT_EQ(t.size(), 1u);
  EXPECT_EQ(t.Root(), LeafHash(Leaf(0)));
}

TEST(Merkle, RootMatchesReferenceForAllSizes) {
  MerkleTree t;
  std::vector<Bytes> leaves;
  for (int i = 0; i < 130; ++i) {
    leaves.push_back(Leaf(i));
    t.Append(Leaf(i));
    ASSERT_EQ(t.size(), static_cast<uint64_t>(i + 1));
    ASSERT_EQ(t.Root(), ReferenceRoot(leaves, 0, leaves.size()))
        << "size " << i + 1;
  }
}

TEST(Merkle, RootAtHistoricalPrefix) {
  MerkleTree t;
  std::vector<Bytes> leaves;
  std::vector<Digest> roots;
  for (int i = 0; i < 40; ++i) {
    leaves.push_back(Leaf(i));
    t.Append(Leaf(i));
    roots.push_back(t.Root());
  }
  for (int n = 1; n <= 40; ++n) {
    auto r = t.RootAt(n);
    ASSERT_TRUE(r.ok());
    EXPECT_EQ(*r, roots[n - 1]) << "prefix " << n;
  }
  EXPECT_EQ(*t.RootAt(0), crypto::Sha256::Hash({}));
  EXPECT_FALSE(t.RootAt(41).ok());
}

TEST(Merkle, LeafHashDomainSeparation) {
  // A leaf whose content equals an interior preimage must not collide.
  Digest a = LeafHash(ToBytes("x"));
  Digest b = LeafHash(ToBytes("y"));
  Digest interior = InteriorHash(a, b);
  Bytes fake_leaf;
  fake_leaf.insert(fake_leaf.end(), a.begin(), a.end());
  fake_leaf.insert(fake_leaf.end(), b.begin(), b.end());
  EXPECT_NE(LeafHash(fake_leaf), interior);
}

TEST(Merkle, ProofsVerifyForAllPositionsAndSizes) {
  MerkleTree t;
  std::vector<Bytes> leaves;
  for (int i = 0; i < 33; ++i) {
    leaves.push_back(Leaf(i));
    t.Append(Leaf(i));
  }
  for (uint64_t tree_size = 1; tree_size <= 33; ++tree_size) {
    Digest expected_root = t.RootAt(tree_size).take();
    for (uint64_t idx = 0; idx < tree_size; ++idx) {
      auto proof = t.GetProof(idx, tree_size);
      ASSERT_TRUE(proof.ok()) << idx << "/" << tree_size;
      Digest folded = ComputeRootFromProof(LeafHash(leaves[idx]), *proof);
      ASSERT_EQ(folded, expected_root) << idx << "/" << tree_size;
    }
  }
}

TEST(Merkle, ProofRejectsWrongLeaf) {
  MerkleTree t;
  for (int i = 0; i < 10; ++i) t.Append(Leaf(i));
  auto proof = t.GetProof(3, 10).take();
  Digest folded = ComputeRootFromProof(LeafHash(Leaf(4)), proof);
  EXPECT_NE(folded, t.Root());
}

TEST(Merkle, ProofRejectsTamperedPath) {
  MerkleTree t;
  for (int i = 0; i < 16; ++i) t.Append(Leaf(i));
  auto proof = t.GetProof(7, 16).take();
  proof.path[1].digest[0] ^= 1;
  EXPECT_NE(ComputeRootFromProof(LeafHash(Leaf(7)), proof), t.Root());
}

TEST(Merkle, ProofBoundsChecked) {
  MerkleTree t;
  for (int i = 0; i < 5; ++i) t.Append(Leaf(i));
  EXPECT_FALSE(t.GetProof(5, 5).ok());   // index == size
  EXPECT_FALSE(t.GetProof(0, 6).ok());   // size beyond tree
  EXPECT_TRUE(t.GetProof(4, 5).ok());
  EXPECT_TRUE(t.GetProof(0, 1).ok());
}

TEST(Merkle, ProofSerializationRoundTrip) {
  MerkleTree t;
  for (int i = 0; i < 20; ++i) t.Append(Leaf(i));
  auto proof = t.GetProof(11, 20).take();
  Bytes ser = proof.Serialize();
  auto back = Proof::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, proof);
  ser.pop_back();
  EXPECT_FALSE(Proof::Deserialize(ser).ok());
}

TEST(Merkle, TruncateRollsBack) {
  MerkleTree t;
  std::vector<Digest> roots;
  for (int i = 0; i < 50; ++i) {
    t.Append(Leaf(i));
    roots.push_back(t.Root());
  }
  // Roll back to 20 leaves, verify root matches historical value, then
  // re-append different content.
  t.Truncate(20);
  EXPECT_EQ(t.size(), 20u);
  EXPECT_EQ(t.Root(), roots[19]);
  t.Append(ToBytes("divergent"));
  EXPECT_EQ(t.size(), 21u);
  EXPECT_NE(t.Root(), roots[20]);
  // Proofs still work after truncate + append.
  auto proof = t.GetProof(20, 21);
  ASSERT_TRUE(proof.ok());
  EXPECT_EQ(ComputeRootFromProof(LeafHash(ToBytes("divergent")), *proof),
            t.Root());
}

TEST(Merkle, TruncateToZero) {
  MerkleTree t;
  for (int i = 0; i < 10; ++i) t.Append(Leaf(i));
  t.Truncate(0);
  EXPECT_EQ(t.size(), 0u);
  EXPECT_EQ(t.Root(), crypto::Sha256::Hash({}));
  t.Append(Leaf(0));
  EXPECT_EQ(t.Root(), LeafHash(Leaf(0)));
}

// ----------------------------------------------------------- AppendBatch
//
// The batched appender (4-way SHA-256 kernel) must be observationally
// identical to repeated Append: same roots, same historical roots, same
// proofs, same behaviour under truncation.

Bytes FixedLeaf(int i) {
  // Equal lengths so batches go through the interleaved kernel.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "transaction-leaf-%08d", i);
  return ToBytes(std::string(buf));
}

TEST(Merkle, AppendBatchMatchesSerialForAllSizes) {
  for (size_t n : {0u, 1u, 2u, 3u, 4u, 5u, 7u, 8u, 9u, 31u, 64u, 130u}) {
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < n; ++i) leaves.push_back(FixedLeaf(i));
    MerkleTree batched, serial;
    batched.AppendBatch(leaves);
    for (const Bytes& l : leaves) serial.Append(l);
    ASSERT_EQ(batched.size(), serial.size()) << "n=" << n;
    ASSERT_EQ(batched.Root(), serial.Root()) << "n=" << n;
    if (n >= 4) {
      EXPECT_GT(batched.stats().x4_groups, 0u) << "n=" << n;
    }
  }
}

TEST(Merkle, AppendBatchUnequalLengthsFallBack) {
  // Mixed-length leaves cannot share the interleaved kernel's common tail;
  // the batch must still produce the serial tree.
  std::vector<Bytes> leaves;
  for (int i = 0; i < 23; ++i) leaves.push_back(Leaf(i));  // "tx-0".."tx-22"
  MerkleTree batched, serial;
  batched.AppendBatch(leaves);
  for (const Bytes& l : leaves) serial.Append(l);
  EXPECT_EQ(batched.Root(), serial.Root());
}

TEST(Merkle, AppendBatchRandomInterleavings) {
  // Random mix of single appends and batches of random size; roots and
  // all historical roots must match a purely serial twin.
  crypto::Drbg drbg("merkle-batch-prop", 0);
  MerkleTree batched, serial;
  int next = 0;
  while (next < 400) {
    size_t n = drbg.Uniform(17);  // 0..16
    if (n == 0) {
      batched.Append(FixedLeaf(next));
      serial.Append(FixedLeaf(next));
      ++next;
      continue;
    }
    std::vector<Bytes> leaves;
    for (size_t i = 0; i < n; ++i) leaves.push_back(FixedLeaf(next + i));
    batched.AppendBatch(leaves);
    for (const Bytes& l : leaves) serial.Append(l);
    next += n;
  }
  ASSERT_EQ(batched.size(), serial.size());
  EXPECT_EQ(batched.Root(), serial.Root());
  for (uint64_t s = 1; s <= batched.size(); s += 13) {
    EXPECT_EQ(batched.RootAt(s - 1).value(), serial.RootAt(s - 1).value())
        << "prefix=" << s;
  }
}

TEST(Merkle, AppendBatchProofsVerify) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 37; ++i) leaves.push_back(FixedLeaf(i));
  MerkleTree t;
  t.AppendBatch(leaves);
  Digest root = t.Root();
  for (uint64_t i = 0; i < t.size(); ++i) {
    auto proof = t.GetProof(i, t.size());
    ASSERT_TRUE(proof.ok()) << i;
    EXPECT_EQ(ComputeRootFromProof(LeafHash(leaves[i]), *proof), root) << i;
  }
}

TEST(Merkle, AppendBatchThenTruncate) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 50; ++i) leaves.push_back(FixedLeaf(i));
  MerkleTree batched, serial;
  batched.AppendBatch(leaves);
  for (const Bytes& l : leaves) serial.Append(l);
  batched.Truncate(29);
  serial.Truncate(29);
  ASSERT_EQ(batched.size(), 29u);
  EXPECT_EQ(batched.Root(), serial.Root());
  // Growth after truncation stays aligned, batched or not.
  std::vector<Bytes> more;
  for (int i = 100; i < 111; ++i) more.push_back(FixedLeaf(i));
  batched.AppendBatch(more);
  for (const Bytes& l : more) serial.Append(l);
  EXPECT_EQ(batched.Root(), serial.Root());
}

TEST(Merkle, AppendLeafHashesMatchesAppend) {
  // The digest-level entry point (joiner catch-up installs leaf hashes
  // directly) must agree with content-level appends.
  std::vector<Bytes> leaves;
  std::vector<Digest> hashes;
  for (int i = 0; i < 41; ++i) {
    leaves.push_back(FixedLeaf(i));
    hashes.push_back(LeafHash(leaves.back()));
  }
  MerkleTree from_hashes, from_content;
  from_hashes.AppendLeafHashes(hashes);
  for (const Bytes& l : leaves) from_content.Append(l);
  ASSERT_EQ(from_hashes.size(), from_content.size());
  EXPECT_EQ(from_hashes.Root(), from_content.Root());
  for (uint64_t i = 0; i < from_hashes.size(); i += 7) {
    EXPECT_EQ(from_hashes.GetProof(i, 41).value().Serialize(),
              from_content.GetProof(i, 41).value().Serialize());
  }
}

TEST(Merkle, BatchStatsCount) {
  std::vector<Bytes> leaves;
  for (int i = 0; i < 16; ++i) leaves.push_back(FixedLeaf(i));
  MerkleTree t;
  t.AppendBatch(leaves);
  const MerkleTree::Stats& s = t.stats();
  EXPECT_EQ(s.batched_leaves, 16u);
  EXPECT_EQ(s.leaf_hashes, 16u);
  EXPECT_GE(s.x4_groups, 4u);  // 4 leaf groups, plus interior groups
  EXPECT_EQ(s.interior_hashes, 15u);  // a full binary tree over 16 leaves
}

TEST(Merkle, PaperFigure3Example) {
  // Figure 3: the Merkle proof for transaction 1.7 in a ledger where the
  // proof is [(right, d8), (left, d56), (left, d1234), (right, d910)].
  // With 1-based seqnos, tx 7 is leaf 6, in a tree over 10 transactions.
  MerkleTree t;
  std::vector<Bytes> leaves;
  for (int i = 1; i <= 10; ++i) {
    leaves.push_back(Leaf(i));
    t.Append(Leaf(i));
  }
  auto proof = t.GetProof(6, 10).take();
  ASSERT_EQ(proof.path.size(), 4u);
  // Sibling of leaf 7 (index 6) is leaf 8 (index 7), on the right.
  EXPECT_EQ(proof.path[0].side, ProofStep::Side::kRight);
  EXPECT_EQ(proof.path[0].digest, LeafHash(leaves[7]));
  // Then the pair (5,6) on the left.
  EXPECT_EQ(proof.path[1].side, ProofStep::Side::kLeft);
  EXPECT_EQ(proof.path[1].digest,
            InteriorHash(LeafHash(leaves[4]), LeafHash(leaves[5])));
  // Then (1,2,3,4) on the left.
  EXPECT_EQ(proof.path[2].side, ProofStep::Side::kLeft);
  // Then (9,10) on the right.
  EXPECT_EQ(proof.path[3].side, ProofStep::Side::kRight);
  EXPECT_EQ(proof.path[3].digest,
            InteriorHash(LeafHash(leaves[8]), LeafHash(leaves[9])));
}

// --------------------------------------------------------------- Receipts

struct ReceiptFixture {
  crypto::KeyPair service = crypto::KeyPair::FromSeed(ToBytes("service"));
  crypto::KeyPair node = crypto::KeyPair::FromSeed(ToBytes("node0"));
  crypto::Certificate node_cert = crypto::IssueCertificate(
      "node0", "node", node.public_key(), service, "service");
  MerkleTree tree;
  std::vector<Digest> write_set_digests;

  // Appends `n` transactions and returns a receipt for `target_seqno`
  // signed at signature transaction seqno n+1.
  Receipt MakeReceipt(int n, uint64_t target_seqno) {
    for (int i = 1; i <= n; ++i) {
      Digest wsd = crypto::Sha256::Hash(ToBytes("writes-" + std::to_string(i)));
      write_set_digests.push_back(wsd);
      Bytes leaf = TransactionLeafContent(2, i, wsd, Digest{});
      tree.Append(leaf);
    }
    Receipt receipt;
    receipt.view = 2;
    receipt.seqno = target_seqno;
    receipt.write_set_digest = write_set_digests[target_seqno - 1];
    receipt.proof = tree.GetProof(target_seqno - 1, n).take();
    receipt.signed_root.view = 2;
    receipt.signed_root.seqno = n + 1;  // the signature tx position
    receipt.signed_root.root = tree.Root();
    receipt.signed_root.node_id = "node0";
    receipt.signed_root.signature =
        node.Sign(receipt.signed_root.SignedPayload());
    receipt.node_cert = node_cert;
    return receipt;
  }
};

TEST(Receipt, EndToEndVerification) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  EXPECT_TRUE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, SerializationRoundTrip) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 3);
  Bytes ser = r.Serialize();
  auto back = Receipt::Deserialize(ser);
  ASSERT_TRUE(back.ok());
  EXPECT_TRUE(back->Verify(f.service.public_key()).ok());
  EXPECT_EQ(back->Serialize(), ser);
}

TEST(Receipt, RejectsWrongService) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  crypto::KeyPair other = crypto::KeyPair::FromSeed(ToBytes("other-service"));
  EXPECT_FALSE(r.Verify(other.public_key()).ok());
}

TEST(Receipt, RejectsTamperedWriteSet) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  r.write_set_digest[0] ^= 1;
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, RejectsTamperedRootSignature) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  r.signed_root.signature[10] ^= 1;
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, RejectsPositionMismatch) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  r.seqno = 6;  // claims a different position than the proof shows
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, RejectsNonNodeCert) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  crypto::KeyPair member = crypto::KeyPair::FromSeed(ToBytes("member"));
  r.node_cert = crypto::IssueCertificate("m0", "member", member.public_key(),
                                         f.service, "service");
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, RejectsSeqnoAtOrAfterSignature) {
  ReceiptFixture f;
  Receipt r = f.MakeReceipt(10, 7);
  r.signed_root.seqno = 7;  // signature tx cannot prove itself or later txs
  r.signed_root.signature = f.node.Sign(r.signed_root.SignedPayload());
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

TEST(Receipt, ClaimsAreCovered) {
  ReceiptFixture f;
  // Build a tree where tx 2 carries a claims digest.
  Digest wsd = crypto::Sha256::Hash(ToBytes("w1"));
  Digest claims = crypto::Sha256::Hash(ToBytes("app-claim: balance=100"));
  f.tree.Append(TransactionLeafContent(2, 1, wsd, Digest{}));
  f.tree.Append(TransactionLeafContent(2, 2, wsd, claims));
  Receipt r;
  r.view = 2;
  r.seqno = 2;
  r.write_set_digest = wsd;
  r.claims_digest = claims;
  r.proof = f.tree.GetProof(1, 2).take();
  r.signed_root = {2, 3, f.tree.Root(), "node0", {}};
  r.signed_root.signature = f.node.Sign(r.signed_root.SignedPayload());
  r.node_cert = f.node_cert;
  EXPECT_TRUE(r.Verify(f.service.public_key()).ok());
  // Forged claims fail.
  r.claims_digest[5] ^= 1;
  EXPECT_FALSE(r.Verify(f.service.public_key()).ok());
}

}  // namespace
}  // namespace ccf::merkle
