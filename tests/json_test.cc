#include <gtest/gtest.h>

#include "json/json.h"

namespace ccf::json {
namespace {

TEST(JsonParse, Scalars) {
  EXPECT_TRUE(Parse("null")->is_null());
  EXPECT_EQ(Parse("true")->AsBool(), true);
  EXPECT_EQ(Parse("false")->AsBool(), false);
  EXPECT_EQ(Parse("42")->AsInt(), 42);
  EXPECT_EQ(Parse("-7")->AsInt(), -7);
  EXPECT_DOUBLE_EQ(Parse("3.5")->AsDouble(), 3.5);
  EXPECT_DOUBLE_EQ(Parse("1e3")->AsDouble(), 1000.0);
  EXPECT_EQ(Parse("\"hi\"")->AsString(), "hi");
}

TEST(JsonParse, IntegerStaysInt) {
  auto v = Parse("9007199254740993");  // not representable as double
  ASSERT_TRUE(v.ok());
  EXPECT_TRUE(v->is_int());
  EXPECT_EQ(v->AsInt(), 9007199254740993LL);
}

TEST(JsonParse, NestedStructure) {
  auto v = Parse(R"({"a": [1, 2, {"b": true}], "c": {"d": null}})");
  ASSERT_TRUE(v.ok());
  const Value* a = v->Get("a");
  ASSERT_NE(a, nullptr);
  ASSERT_TRUE(a->is_array());
  EXPECT_EQ(a->AsArray()[0].AsInt(), 1);
  EXPECT_TRUE(a->AsArray()[2].Get("b")->AsBool());
  EXPECT_TRUE(v->Get("c")->Get("d")->is_null());
}

TEST(JsonParse, StringEscapes) {
  auto v = Parse(R"("a\"b\\c\nd\tA")");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "a\"b\\c\nd\tA");
}

TEST(JsonParse, UnicodeSurrogatePair) {
  auto v = Parse(R"("😀")");  // 😀
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->AsString(), "\xF0\x9F\x98\x80");
}

TEST(JsonParse, Whitespace) {
  auto v = Parse("  {\n\t\"k\" :  1 , \"l\":[ ] }  ");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->GetInt("k"), 1);
  EXPECT_TRUE(v->Get("l")->AsArray().empty());
}

TEST(JsonParse, Errors) {
  EXPECT_FALSE(Parse("").ok());
  EXPECT_FALSE(Parse("{").ok());
  EXPECT_FALSE(Parse("[1,]").ok());
  EXPECT_FALSE(Parse("{\"a\":1,}").ok());
  EXPECT_FALSE(Parse("tru").ok());
  EXPECT_FALSE(Parse("\"unterminated").ok());
  EXPECT_FALSE(Parse("1 2").ok());
  EXPECT_FALSE(Parse("{'a':1}").ok());
  EXPECT_FALSE(Parse("-").ok());
}

TEST(JsonParse, DeepNestingRejected) {
  std::string deep(1000, '[');
  deep += std::string(1000, ']');
  EXPECT_FALSE(Parse(deep).ok());
}

TEST(JsonDump, RoundTrip) {
  const char* docs[] = {
      R"(null)",
      R"(true)",
      R"(-12)",
      R"("x\ny")",
      R"([1,2,3])",
      R"({"a":1,"b":[true,null],"c":{"d":"e"}})",
  };
  for (const char* doc : docs) {
    auto v = Parse(doc);
    ASSERT_TRUE(v.ok()) << doc;
    auto v2 = Parse(v->Dump());
    ASSERT_TRUE(v2.ok()) << v->Dump();
    EXPECT_EQ(*v, *v2) << doc;
  }
}

TEST(JsonDump, DeterministicKeyOrder) {
  auto v = Parse(R"({"b":1,"a":2})");
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v->Dump(), R"({"a":2,"b":1})");
}

TEST(JsonDump, ControlCharactersEscaped) {
  Value v(std::string("\x01x"));
  EXPECT_EQ(v.Dump(), "\"\\u0001x\"");
}

TEST(JsonDump, PrettyParsesBack) {
  auto v = Parse(R"({"a":[1,{"b":2}],"c":null})");
  ASSERT_TRUE(v.ok());
  auto v2 = Parse(v->DumpPretty());
  ASSERT_TRUE(v2.ok());
  EXPECT_EQ(*v, *v2);
}

TEST(JsonValue, BuildersAndAccessors) {
  Value obj;
  obj["name"] = "ledger";
  obj["count"] = 3;
  obj["ok"] = true;
  obj["items"] = Array{1, "two", nullptr};
  EXPECT_EQ(obj.GetString("name"), "ledger");
  EXPECT_EQ(obj.GetInt("count"), 3);
  EXPECT_TRUE(obj.GetBool("ok"));
  EXPECT_EQ(obj.GetString("missing", "dflt"), "dflt");
  EXPECT_EQ(obj.Get("items")->AsArray().size(), 3u);
}

TEST(JsonValue, Equality) {
  EXPECT_EQ(*Parse("{\"a\":[1,2]}"), *Parse("{ \"a\" : [1, 2] }"));
  EXPECT_NE(*Parse("1"), *Parse("2"));
}

}  // namespace
}  // namespace ccf::json
