#include <gtest/gtest.h>

#include "http/http.h"

namespace ccf::http {
namespace {

TEST(Http, RequestRoundTrip) {
  Request req;
  req.method = "POST";
  req.path = "/app/log";
  req.headers["x-custom"] = "abc";
  req.body = ToBytes(R"({"id": 1, "msg": "hello"})");

  RequestParser parser;
  parser.Feed(req.Serialize());
  auto parsed = parser.Next();
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->has_value());
  EXPECT_EQ((*parsed)->method, "POST");
  EXPECT_EQ((*parsed)->path, "/app/log");
  EXPECT_EQ((*parsed)->GetHeader("x-custom"), "abc");
  EXPECT_EQ((*parsed)->body, req.body);
  // No second message.
  auto next = parser.Next();
  ASSERT_TRUE(next.ok());
  EXPECT_FALSE(next->has_value());
}

TEST(Http, ResponseRoundTrip) {
  Response resp;
  resp.status = 404;
  resp.headers[kTxIdHeader] = "2.17";
  resp.body = ToBytes("{\"error\":\"nope\"}");

  ResponseParser parser;
  parser.Feed(resp.Serialize());
  auto parsed = parser.Next();
  ASSERT_TRUE(parsed.ok());
  ASSERT_TRUE(parsed->has_value());
  EXPECT_EQ((*parsed)->status, 404);
  EXPECT_EQ((*parsed)->GetHeader(kTxIdHeader), "2.17");
  EXPECT_EQ((*parsed)->body, resp.body);
}

TEST(Http, IncrementalFeed) {
  Request req;
  req.method = "GET";
  req.path = "/app/messages";
  req.body = ToBytes("0123456789");
  Bytes wire = req.Serialize();

  RequestParser parser;
  for (size_t i = 0; i < wire.size(); ++i) {
    parser.Feed(ByteSpan(&wire[i], 1));
    auto r = parser.Next();
    ASSERT_TRUE(r.ok());
    if (i + 1 < wire.size()) {
      EXPECT_FALSE(r->has_value()) << "completed early at byte " << i;
    } else {
      ASSERT_TRUE(r->has_value());
      EXPECT_EQ((*r)->body, req.body);
    }
  }
}

TEST(Http, PipelinedRequests) {
  Request a;
  a.method = "GET";
  a.path = "/one";
  Request b;
  b.method = "POST";
  b.path = "/two";
  b.body = ToBytes("body2");

  RequestParser parser;
  Bytes wire = a.Serialize();
  Append(&wire, b.Serialize());
  parser.Feed(wire);

  auto first = parser.Next();
  ASSERT_TRUE(first.ok() && first->has_value());
  EXPECT_EQ((*first)->path, "/one");
  auto second = parser.Next();
  ASSERT_TRUE(second.ok() && second->has_value());
  EXPECT_EQ((*second)->path, "/two");
  EXPECT_EQ(ToString((*second)->body), "body2");
}

TEST(Http, HeaderNamesCaseInsensitive) {
  RequestParser parser;
  parser.Feed(ToBytes("GET /x HTTP/1.1\r\nX-CCF-Thing: Value\r\n"
                      "Content-Length: 0\r\n\r\n"));
  auto r = parser.Next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->GetHeader("x-ccf-thing"), "Value");
}

TEST(Http, MalformedInputsRejected) {
  {
    RequestParser p;
    p.Feed(ToBytes("NOT-HTTP\r\n\r\n"));
    EXPECT_FALSE(p.Next().ok());
  }
  {
    RequestParser p;
    p.Feed(ToBytes("GET /x HTTP/2.0\r\n\r\n"));
    EXPECT_FALSE(p.Next().ok());
  }
  {
    RequestParser p;
    p.Feed(ToBytes("GET /x HTTP/1.1\r\ncontent-length: banana\r\n\r\n"));
    EXPECT_FALSE(p.Next().ok());
  }
  {
    RequestParser p;
    p.Feed(ToBytes("GET /x HTTP/1.1\r\nbadheader\r\n\r\n"));
    EXPECT_FALSE(p.Next().ok());
  }
  {
    ResponseParser p;
    p.Feed(ToBytes("HTTP/1.1 9999 Nope\r\n\r\n"));
    EXPECT_FALSE(p.Next().ok());
  }
}

TEST(Http, EmptyBody) {
  Request req;
  req.method = "GET";
  req.path = "/";
  RequestParser parser;
  parser.Feed(req.Serialize());
  auto r = parser.Next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_TRUE((*r)->body.empty());
}

TEST(Http, ReasonPhrases) {
  EXPECT_STREQ(ReasonPhrase(200), "OK");
  EXPECT_STREQ(ReasonPhrase(503), "Service Unavailable");
  EXPECT_STREQ(ReasonPhrase(299), "Unknown");
}

// A malformed head must be consumed, not left in the buffer: otherwise
// every subsequent Next() re-parses the same poisoned bytes and the
// session can never make progress again.
TEST(Http, MalformedHeadConsumedThenValidRequestParses) {
  RequestParser parser;
  parser.Feed(ToBytes("GARBAGE NOT HTTP\r\n\r\n"));
  EXPECT_FALSE(parser.Next().ok());
  // The stream recovers at the next message boundary.
  parser.Feed(ToBytes("GET /app/ok HTTP/1.1\r\ncontent-length: 0\r\n\r\n"));
  auto r = parser.Next();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((*r)->method, "GET");
  EXPECT_EQ((*r)->path, "/app/ok");
}

TEST(Http, MalformedResponseHeadConsumedThenValidResponseParses) {
  ResponseParser parser;
  parser.Feed(ToBytes("HTTP/1.1 banana Nope\r\n\r\n"));
  EXPECT_FALSE(parser.Next().ok());
  parser.Feed(ToBytes("HTTP/1.1 204 No Content\r\ncontent-length: 0\r\n\r\n"));
  auto r = parser.Next();
  ASSERT_TRUE(r.ok());
  ASSERT_TRUE(r->has_value());
  EXPECT_EQ((*r)->status, 204);
}

TEST(Http, MalformedHeadDoesNotLoopForever) {
  RequestParser parser;
  parser.Feed(ToBytes("NOT-HTTP\r\n\r\n"));
  EXPECT_FALSE(parser.Next().ok());
  // With the poisoned head consumed, the parser is just waiting for data.
  auto r = parser.Next();
  ASSERT_TRUE(r.ok());
  EXPECT_FALSE(r->has_value());
}

// Serialize must not emit a second content-length when the caller already
// set one (e.g. a forwarded request carrying its original headers).
TEST(Http, SerializeRespectsCallerContentLength) {
  Request req;
  req.method = "POST";
  req.path = "/app/log";
  req.headers["content-length"] = "4";
  req.body = ToBytes("abcd");
  std::string wire = ToString(req.Serialize());
  size_t first = wire.find("content-length");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(wire.find("content-length", first + 1), std::string::npos);

  Response resp;
  resp.status = 200;
  resp.headers["content-length"] = "2";
  resp.body = ToBytes("ok");
  wire = ToString(resp.Serialize());
  first = wire.find("content-length");
  ASSERT_NE(first, std::string::npos);
  EXPECT_EQ(wire.find("content-length", first + 1), std::string::npos);
}

TEST(HttpTarget, UrlDecode) {
  EXPECT_EQ(UrlDecode("plain"), "plain");
  EXPECT_EQ(UrlDecode("a%20b"), "a b");
  EXPECT_EQ(UrlDecode("a+b"), "a b");
  EXPECT_EQ(UrlDecode("%2Fapp%2Flog"), "/app/log");
  // Malformed escapes fall through literally instead of being rejected.
  EXPECT_EQ(UrlDecode("100%"), "100%");
  EXPECT_EQ(UrlDecode("%zz"), "%zz");
  EXPECT_EQ(UrlDecode("%2"), "%2");
}

TEST(HttpTarget, ParseTargetSplitsPathAndParams) {
  ParsedTarget t = ParseTarget("/app/log/historical?id=42&seqno=17");
  EXPECT_EQ(t.path, "/app/log/historical");
  ASSERT_EQ(t.params.size(), 2u);
  EXPECT_EQ(t.params.at("id"), "42");
  EXPECT_EQ(t.params.at("seqno"), "17");
}

TEST(HttpTarget, ParseTargetEdgeCases) {
  // No query string: the whole target is the path.
  EXPECT_EQ(ParseTarget("/app/log").path, "/app/log");
  EXPECT_TRUE(ParseTarget("/app/log").params.empty());
  // Trailing '?' and empty pairs are tolerated.
  EXPECT_TRUE(ParseTarget("/x?").params.empty());
  EXPECT_EQ(ParseTarget("/x?a=1&&b=2").params.size(), 2u);
  // Key without '=' gets an empty value; bare '=' (empty key) is dropped.
  ParsedTarget t = ParseTarget("/x?flag&=orphan");
  ASSERT_EQ(t.params.size(), 1u);
  EXPECT_EQ(t.params.at("flag"), "");
  // Percent-encoded keys and values decode.
  EXPECT_EQ(ParseTarget("/x?msg=hello%20world").params.at("msg"),
            "hello world");
}

TEST(HttpTarget, RequestQueryParamHelpers) {
  Request req;
  req.method = "GET";
  req.path = "/app/balance?account=alice&threshold=1000";
  EXPECT_EQ(req.PathOnly(), "/app/balance");
  EXPECT_EQ(req.QueryParam("account"), "alice");
  EXPECT_EQ(req.QueryParam("threshold"), "1000");
  EXPECT_EQ(req.QueryParam("missing"), "");
  auto all = req.QueryParams();
  EXPECT_EQ(all.size(), 2u);
}

// Query strings survive the wire: the raw target (path + query) must
// round-trip through serialization so enclave-side handlers can parse it.
TEST(HttpTarget, QueryStringSurvivesSerialization) {
  Request req;
  req.method = "GET";
  req.path = "/app/log?id=7&seqno=3";
  RequestParser parser;
  parser.Feed(req.Serialize());
  auto r = parser.Next();
  ASSERT_TRUE(r.ok() && r->has_value());
  EXPECT_EQ((*r)->path, "/app/log?id=7&seqno=3");
  EXPECT_EQ((*r)->PathOnly(), "/app/log");
  EXPECT_EQ((*r)->QueryParam("id"), "7");
}

}  // namespace
}  // namespace ccf::http
