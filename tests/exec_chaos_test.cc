// Determinism of batched optimistic execution (DESIGN.md §12) under
// seeded chaos: exec_threads=N hands request handlers to a real worker
// pool, but the serial commit point orders effects by submission, so a
// service configured with exec_threads=4 must replay bit-identically to
// the inline exec_threads=0 baseline -- same fault schedule, same
// per-round trace, same converged Merkle roots and committed KV state on
// every node. 20 batches x 10 seeds = 200 fault schedules, each run both
// ways.

#include <gtest/gtest.h>

#include "tests/service_chaos_util.h"

namespace ccf::testing {
namespace {

class ExecChaosTest : public ::testing::TestWithParam<uint64_t> {};

TEST_P(ExecChaosTest, ExecThreadsPreserveDeterminismAcrossSeedBatch) {
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = GetParam() * 10 + i;
    ChaosOutcome inline_exec =
        RunServiceChaos(seed, /*worker_threads=*/0,
                        /*with_metrics_report=*/false, /*exec_threads=*/0);
    ChaosOutcome pooled_exec =
        RunServiceChaos(seed, /*worker_threads=*/0,
                        /*with_metrics_report=*/false, /*exec_threads=*/4);
    ASSERT_EQ(inline_exec.failure, pooled_exec.failure)
        << "seed " << seed << "\nreplayable fault schedule:\n"
        << inline_exec.schedule;
    ASSERT_TRUE(inline_exec.failure.empty())
        << "seed " << seed << ": " << inline_exec.failure
        << "\nreplayable fault schedule:\n"
        << inline_exec.schedule;
    EXPECT_EQ(inline_exec.schedule, pooled_exec.schedule) << "seed " << seed;
    EXPECT_EQ(inline_exec.trace, pooled_exec.trace) << "seed " << seed;
    EXPECT_EQ(inline_exec.final_state, pooled_exec.final_state)
        << "seed " << seed;
    ASSERT_FALSE(inline_exec.final_state.empty()) << "seed " << seed;
  }
}

INSTANTIATE_TEST_SUITE_P(SeedBatches, ExecChaosTest,
                         ::testing::Range<uint64_t>(0, 20));

// A pooled run replays bit-for-bit against itself: handler wall-clock
// finish order varies between runs, but retirement is by submission order
// and the commit point is serial, so nothing real-time-dependent leaks
// into the virtual-time run.
TEST(ExecChaosDeterminism, PooledRunReplaysBitForBit) {
  ChaosOutcome a = RunServiceChaos(13, 0, false, /*exec_threads=*/4);
  ChaosOutcome b = RunServiceChaos(13, 0, false, /*exec_threads=*/4);
  EXPECT_EQ(a.schedule, b.schedule);
  EXPECT_EQ(a.trace, b.trace);
  EXPECT_EQ(a.failure, b.failure);
  EXPECT_EQ(a.final_state, b.final_state);
}

// Batched execution composes with crypto offload: both pools on at once
// still matches the all-inline baseline.
TEST(ExecChaosDeterminism, ExecAndWorkerPoolsCompose) {
  for (uint64_t seed : {5u, 17u}) {
    ChaosOutcome baseline = RunServiceChaos(seed, 0, false, 0);
    ChaosOutcome both = RunServiceChaos(seed, /*worker_threads=*/4, false,
                                        /*exec_threads=*/4);
    ASSERT_EQ(baseline.failure, both.failure) << "seed " << seed;
    EXPECT_EQ(baseline.schedule, both.schedule) << "seed " << seed;
    EXPECT_EQ(baseline.trace, both.trace) << "seed " << seed;
    EXPECT_EQ(baseline.final_state, both.final_state) << "seed " << seed;
  }
}

}  // namespace
}  // namespace ccf::testing
