#include <gtest/gtest.h>

#include "common/hex.h"
#include "crypto/aes.h"
#include "crypto/gcm.h"
#include "crypto/hmac.h"

namespace ccf::crypto {
namespace {

// FIPS 197 Appendix C.3 known-answer vector for AES-256.
TEST(Aes256, Fips197VectorEncrypt) {
  Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
      .take();
  Bytes pt = HexDecode("00112233445566778899aabbccddeeff").take();
  Aes256 aes(key);
  uint8_t ct[16];
  aes.EncryptBlock(pt.data(), ct);
  EXPECT_EQ(HexEncode(ByteSpan(ct, 16)),
            "8ea2b7ca516745bfeafc49904b496089");
}

TEST(Aes256, Fips197VectorDecrypt) {
  Bytes key = HexDecode(
      "000102030405060708090a0b0c0d0e0f101112131415161718191a1b1c1d1e1f")
      .take();
  Bytes ct = HexDecode("8ea2b7ca516745bfeafc49904b496089").take();
  Aes256 aes(key);
  uint8_t pt[16];
  aes.DecryptBlock(ct.data(), pt);
  EXPECT_EQ(HexEncode(ByteSpan(pt, 16)),
            "00112233445566778899aabbccddeeff");
}

TEST(Aes256, DecryptInvertsEncryptRandomized) {
  Drbg drbg("aes-roundtrip", 0);
  for (int i = 0; i < 50; ++i) {
    Bytes key = drbg.Generate(32);
    Bytes block = drbg.Generate(16);
    Aes256 aes(key);
    uint8_t ct[16], pt[16];
    aes.EncryptBlock(block.data(), ct);
    aes.DecryptBlock(ct, pt);
    EXPECT_EQ(Bytes(pt, pt + 16), block);
  }
}

TEST(Aes256, DifferentKeysDifferentCiphertext) {
  Bytes k1(32, 0x01), k2(32, 0x02);
  uint8_t block[16] = {0};
  uint8_t c1[16], c2[16];
  Aes256(k1).EncryptBlock(block, c1);
  Aes256(k2).EncryptBlock(block, c2);
  EXPECT_NE(Bytes(c1, c1 + 16), Bytes(c2, c2 + 16));
}

// GCM spec test case 13: all-zero key/IV, empty plaintext & AAD.
TEST(AesGcm, SpecCase13EmptyPlaintext) {
  Bytes key(32, 0);
  Bytes iv(12, 0);
  AesGcm gcm(key);
  Bytes sealed = gcm.Seal(iv, {}, {});
  EXPECT_EQ(HexEncode(sealed), "530f8afbc74536b9a963b4f1c4cb738b");
}

// GCM spec test case 14: one zero block of plaintext.
TEST(AesGcm, SpecCase14OneBlock) {
  Bytes key(32, 0);
  Bytes iv(12, 0);
  Bytes pt(16, 0);
  AesGcm gcm(key);
  Bytes sealed = gcm.Seal(iv, pt, {});
  EXPECT_EQ(HexEncode(sealed),
            "cea7403d4d606b6e074ec5d3baf39d18"
            "d0d1c8a799996bf0265b98b5d48ab919");
}

TEST(AesGcm, SealOpenRoundTrip) {
  Drbg drbg("gcm-roundtrip", 0);
  Bytes key = drbg.Generate(32);
  AesGcm gcm(key);
  for (size_t len : {0u, 1u, 15u, 16u, 17u, 100u, 1000u}) {
    Bytes iv = drbg.Generate(12);
    Bytes pt = drbg.Generate(len);
    Bytes aad = drbg.Generate(len % 31);
    Bytes sealed = gcm.Seal(iv, pt, aad);
    EXPECT_EQ(sealed.size(), len + kGcmTagSize);
    auto opened = gcm.Open(iv, sealed, aad);
    ASSERT_TRUE(opened.ok()) << "len=" << len;
    EXPECT_EQ(*opened, pt);
  }
}

TEST(AesGcm, TamperedCiphertextRejected) {
  Drbg drbg("gcm-tamper", 0);
  Bytes key = drbg.Generate(32);
  Bytes iv = drbg.Generate(12);
  AesGcm gcm(key);
  Bytes sealed = gcm.Seal(iv, ToBytes("attack at dawn"), ToBytes("hdr"));
  for (size_t i = 0; i < sealed.size(); ++i) {
    Bytes bad = sealed;
    bad[i] ^= 0x01;
    EXPECT_FALSE(gcm.Open(iv, bad, ToBytes("hdr")).ok()) << "byte " << i;
  }
}

TEST(AesGcm, WrongAadRejected) {
  Bytes key(32, 7);
  Bytes iv(12, 9);
  AesGcm gcm(key);
  Bytes sealed = gcm.Seal(iv, ToBytes("payload"), ToBytes("aad-1"));
  EXPECT_FALSE(gcm.Open(iv, sealed, ToBytes("aad-2")).ok());
  EXPECT_TRUE(gcm.Open(iv, sealed, ToBytes("aad-1")).ok());
}

TEST(AesGcm, WrongIvRejected) {
  Bytes key(32, 7);
  AesGcm gcm(key);
  Bytes iv1(12, 1), iv2(12, 2);
  Bytes sealed = gcm.Seal(iv1, ToBytes("payload"), {});
  EXPECT_FALSE(gcm.Open(iv2, sealed, {}).ok());
}

TEST(AesGcm, WrongKeyRejected) {
  Bytes k1(32, 1), k2(32, 2);
  Bytes iv(12, 0);
  Bytes sealed = AesGcm(k1).Seal(iv, ToBytes("payload"), {});
  EXPECT_FALSE(AesGcm(k2).Open(iv, sealed, {}).ok());
}

TEST(AesGcm, TruncatedBlobRejected) {
  Bytes key(32, 1);
  Bytes iv(12, 0);
  AesGcm gcm(key);
  EXPECT_FALSE(gcm.Open(iv, Bytes(8, 0), {}).ok());
}

}  // namespace
}  // namespace ccf::crypto
