// Seeded chaos over the snapshot pipeline (paper §4.4, §5): the untrusted
// host drops and corrupts snapshot persistence, while ledger chunks below
// the horizon are retired. Joiners must still bootstrap from a verified
// bundle and converge; historical queries must answer terminally (served,
// compacted, or clean timeout); and disaster recovery must either verify
// the stored bundle or refuse it -- corrupt snapshot bytes are never
// installed. Each seed replays bit-for-bit.

#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>

#include "node/snapshots.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

struct ChaosResult {
  std::string failure;  // empty = all invariants held
  std::string trace;    // outcome fingerprint (determinism check)
};

uint64_t ChaosWrite(node::Client* client, int64_t id,
                    const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  auto resp = client->PostJson("/app/log", json::Value(std::move(body)));
  if (!resp.ok() || resp->status != 200) return 0;
  auto txid = node::Client::TxIdOf(*resp);
  return txid.has_value() ? txid->second : 0;
}

ChaosResult RunSnapshotChaos(uint64_t seed) {
  ChaosResult out;
  std::ostringstream trace;

  sim::EnvOptions opts;
  opts.seed = seed;
  ServiceHarness h(opts);
  h.AddUser("user0");
  h.SetConfigTweak([](node::NodeConfig* cfg) {
    cfg->snapshot_interval_txs = 20;
    cfg->snapshot_retire_ledger = true;
    cfg->historical.fetch_timeout_ms = 300;
    cfg->historical.retry_interval_ms = 15;
  });
  node::Node* n0 = h.StartGenesis();
  h.EnableInvariantChecker();
  node::Client* client = h.UserClient("user0");

  // Per-seed fault regime, active from the first snapshot on.
  crypto::Drbg chaos("snapshot-chaos", seed);
  sim::HostFaults faults;
  faults.snapshot_drop = static_cast<double>(chaos.Uniform(50)) / 100.0;
  faults.snapshot_corrupt = static_cast<double>(chaos.Uniform(40)) / 100.0;
  faults.drop = static_cast<double>(chaos.Uniform(30)) / 100.0;
  faults.corrupt = static_cast<double>(chaos.Uniform(30)) / 100.0;
  h.env().SetHostFaults("n0", faults);

  uint64_t early = ChaosWrite(client, 99, "early");
  if (early == 0) {
    out.failure = "setup write failed";
    return out;
  }
  uint64_t last = early;
  for (int i = 0; i < 40; ++i) {
    last = ChaosWrite(client, i % 3, "m" + std::to_string(i));
    if (last == 0) {
      out.failure = "write " + std::to_string(i) + " failed";
      return out;
    }
  }
  if (!h.env().RunUntil([&] { return n0->commit_seqno() >= last; }, 8000)) {
    out.failure = "writes never committed";
    return out;
  }

  // By now the snapshot at seqno 20 is long since receipted enclave-side
  // (host faults cannot touch that), so a joiner MUST be offered a bundle
  // and start past its horizon instead of replaying from seqno 1.
  node::Node* n1 = h.Join("n1");
  if (n1 == nullptr ||
      !h.env().RunUntil([&] { return n1->has_joined(); }, 8000)) {
    out.failure = "joiner never joined";
    return out;
  }
  if (n1->host_ledger().base_seqno() < 20) {
    out.failure = "joiner replayed below the snapshot horizon (base " +
                  std::to_string(n1->host_ledger().base_seqno()) + ")";
    return out;
  }
  trace << "jbase:" << n1->host_ledger().base_seqno() << ";";
  if (!h.TrustNode("n1")) {
    out.failure = "joiner never trusted";
    return out;
  }
  h.TrackNode("n1");

  for (int i = 0; i < 10; ++i) {
    last = ChaosWrite(client, 3 + (i % 2), "post-join-" + std::to_string(i));
    if (last == 0) {
      out.failure = "post-join write failed";
      return out;
    }
  }
  if (!h.WaitForCommitEverywhere(last, 8000) ||
      !h.env().RunUntil(
          [&] {
            return ServiceHarness::StateDigest(n0) ==
                   ServiceHarness::StateDigest(n1);
          },
          8000)) {
    out.failure = "joiner never converged";
    return out;
  }
  trace << "snap:" << n0->host_snapshot_seqno()
        << ";base:" << n0->host_ledger().base_seqno() << ";";

  // Historical poke at the early write: under retirement + fetch faults
  // the only acceptable terminal answers are 200 (verified), 404 with a
  // horizon (compacted), or 503 (clean timeout) -- never a hang.
  std::string path =
      "/app/log/historical?id=99&seqno=" + std::to_string(early);
  Result<http::Response> final = Status::Unavailable("none");
  if (!h.env().RunUntil(
          [&] {
            final = client->Get(path, 2000);
            return final.ok() && final->status != 202;
          },
          8000)) {
    out.failure = "historical query never answered terminally";
    return out;
  }
  if (final->status != 200 && final->status != 404 &&
      final->status != 503) {
    out.failure = "unexpected historical status " +
                  std::to_string(final->status);
    return out;
  }
  if (final->status == 404) {
    auto body = json::Parse(ToString(final->body));
    if (!body.ok() || body->GetInt("horizon") <= 0) {
      out.failure = "compacted 404 without a horizon";
      return out;
    }
  }
  trace << "hist:" << final->status << ";";
  if (!n0->historical().AuditCache(n0->service_identity()).ok()) {
    out.failure = "poisoned historical cache";
    return out;
  }

  // Disaster recovery from whatever the faulty host managed to persist.
  // A corrupted stored bundle must be refused (verification fails before
  // any install); refusal is only legitimate when corruption faults were
  // actually in play.
  std::string dir = std::filesystem::temp_directory_path() /
                    ("ccf_snapchaos_" + std::to_string(seed) + "_" +
                     std::to_string(::getpid()));
  if (!n0->SaveLedgerToDir(dir).ok()) {
    out.failure = "SaveLedgerToDir failed";
    return out;
  }
  if (n0->host_snapshot_seqno() > 0 &&
      !n0->SaveSnapshotToDir(dir).ok()) {
    out.failure = "SaveSnapshotToDir failed";
    return out;
  }
  h.DropClients();
  h.env().SetUp("n0", false);
  h.env().SetUp("n1", false);

  auto recovered = node::Node::CreateRecoveryFromDir(
      FastNodeConfig("r0", 7 + seed % 5), dir, nullptr, &h.env());
  if (recovered.ok()) {
    node::Node* r0 = recovered->get();
    if (!h.env().RunUntil(
            [&] {
              return r0->IsPrimary() && r0->service_status() ==
                                            gov::ServiceStatus::kRecovering;
            },
            8000)) {
      out.failure = "recovery node never reached Recovering";
      std::filesystem::remove_all(dir);
      return out;
    }
    trace << "rec:ok";
  } else {
    if (faults.snapshot_corrupt == 0.0) {
      out.failure = "recovery refused without corruption faults: " +
                    recovered.status().ToString();
      std::filesystem::remove_all(dir);
      return out;
    }
    trace << "rec:refused";
  }
  std::filesystem::remove_all(dir);
  out.trace = trace.str();
  return out;
}

class SnapshotChaos : public ::testing::TestWithParam<uint64_t> {};

TEST_P(SnapshotChaos, JoinersAndRecoveryStaySoundUnderSnapshotFaults) {
  const uint64_t base = GetParam() * 10;
  for (uint64_t i = 0; i < 10; ++i) {
    uint64_t seed = base + i;
    ChaosResult r = RunSnapshotChaos(seed);
    ASSERT_TRUE(r.failure.empty())
        << "seed " << seed << ": " << r.failure << "\ntrace: " << r.trace;
  }
}

// 20 params x 10 seeds = 200 distinct seeds.
INSTANTIATE_TEST_SUITE_P(Seeds, SnapshotChaos,
                         ::testing::Range<uint64_t>(0, 20));

// Same seed, same run: the snapshot fault schedule and every outcome
// replay bit-for-bit.
TEST(SnapshotChaosDeterminism, SameSeedSameTrace) {
  ChaosResult a = RunSnapshotChaos(11);
  ChaosResult b = RunSnapshotChaos(11);
  ASSERT_TRUE(a.failure.empty()) << a.failure;
  EXPECT_EQ(a.trace, b.trace);
}

}  // namespace
}  // namespace ccf::testing
