// Verified snapshot bundles end to end (paper §4.4, §3.5): the primary
// commits snapshot evidence to a public map, ships the receipted bundle to
// the host, joiners and disaster recovery bootstrap from the verified
// bundle plus the ledger suffix, and anything forged or corrupt is
// rejected by receipt verification before any install.

#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <string>
#include <vector>

#include "common/hex.h"
#include "node/snapshots.h"
#include "tests/service_harness.h"

namespace ccf::testing {
namespace {

class TempDir {
 public:
  TempDir() {
    dir_ = std::filesystem::temp_directory_path() /
           ("ccf_snapshot_test_" + std::to_string(counter_++) + "_" +
            std::to_string(::getpid()));
    std::filesystem::create_directories(dir_);
  }
  ~TempDir() { std::filesystem::remove_all(dir_); }
  std::string path() const { return dir_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path dir_;
};

uint64_t WriteLog(node::Client* client, const char* path, int64_t id,
                  const std::string& msg) {
  json::Object body;
  body["id"] = id;
  body["msg"] = msg;
  auto resp = client->PostJson(path, json::Value(std::move(body)));
  EXPECT_TRUE(resp.ok()) << resp.status().ToString();
  EXPECT_EQ(resp->status, 200);
  auto txid = node::Client::TxIdOf(*resp);
  return txid.has_value() ? txid->second : 0;
}

// Drives the service until the host has persisted a snapshot bundle.
bool WaitForHostSnapshot(ServiceHarness* h, node::Node* n,
                         uint64_t timeout_ms = 10000) {
  return h->env().RunUntil([&] { return n->host_snapshot_seqno() > 0; },
                           timeout_ms);
}

TEST(SnapshotSeal, DeterministicRoundTripAndTamperRejection) {
  kv::LedgerSecret secret{ToBytes("0123456789abcdef0123456789abcdef")};
  Bytes plain = ToBytes("the private half of the state");

  Bytes sealed = node::SealSnapshotPrivate(secret, /*view=*/2, /*seqno=*/50,
                                           plain);
  // Determinism: same secret + position + plaintext -> identical bytes,
  // so the bundle's content digest is comparable across nodes.
  EXPECT_EQ(node::SealSnapshotPrivate(secret, 2, 50, plain), sealed);

  auto opened = node::OpenSnapshotPrivate(secret, 2, 50, sealed);
  ASSERT_TRUE(opened.ok()) << opened.status().ToString();
  EXPECT_EQ(*opened, plain);

  // Wrong position, wrong secret, or a flipped byte all fail the AEAD.
  EXPECT_FALSE(node::OpenSnapshotPrivate(secret, 2, 51, sealed).ok());
  EXPECT_FALSE(node::OpenSnapshotPrivate(secret, 3, 50, sealed).ok());
  kv::LedgerSecret other{ToBytes("fedcba9876543210fedcba9876543210")};
  EXPECT_FALSE(node::OpenSnapshotPrivate(other, 2, 50, sealed).ok());
  Bytes tampered = sealed;
  tampered[tampered.size() / 2] ^= 1;
  EXPECT_FALSE(node::OpenSnapshotPrivate(secret, 2, 50, tampered).ok());
}

// The host-persisted bundle verifies against the service identity, and
// every forgery -- state bytes, evidence entry, receipt, or a different
// service -- is rejected before anything could be installed.
TEST(SnapshotBundle, PersistedBundleVerifiesAndForgeriesAreRejected) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  for (int i = 0; i < 60; ++i) {
    const char* path = (i % 5 == 0) ? "/app/log_public" : "/app/log";
    ASSERT_GT(WriteLog(client, path, i, "m" + std::to_string(i)), 0u);
  }
  ASSERT_TRUE(WaitForHostSnapshot(&h, n0));

  TempDir dir;
  ASSERT_TRUE(n0->SaveSnapshotToDir(dir.path()).ok());
  auto bundle = node::LoadLatestBundleFromDir(dir.path());
  ASSERT_TRUE(bundle.ok()) << bundle.status().ToString();

  EXPECT_EQ(bundle->seqno, n0->host_snapshot_seqno());
  EXPECT_EQ(bundle->leaves.size(), bundle->seqno);
  EXPECT_FALSE(bundle->configs.empty());
  EXPECT_GT(bundle->evidence_seqno, bundle->seqno);
  ASSERT_TRUE(node::VerifyBundle(*bundle, n0->service_identity()).ok());

  // The public half restores without any secrets and contains the
  // application's public writes.
  auto pub = node::RestorePublicState(*bundle);
  ASSERT_TRUE(pub.ok()) << pub.status().ToString();
  kv::Store probe;
  probe.InstallState(*pub, bundle->seqno);
  EXPECT_EQ(probe.GetStr(apps::kPublicMessagesMap, "5"), "m5");
  // ...but none of the private writes, which travel sealed.
  EXPECT_FALSE(probe.GetStr(apps::kPrivateMessagesMap, "1").has_value());

  {  // Forged state bytes: content digest no longer matches the evidence.
    node::SnapshotBundle forged = *bundle;
    forged.public_data[forged.public_data.size() / 2] ^= 1;
    Status s = node::VerifyBundleContent(forged);
    ASSERT_FALSE(s.ok());
    EXPECT_EQ(s.code(), Status::Code::kPermissionDenied) << s.ToString();
  }
  {  // Forged sealed half: same digest check catches it.
    node::SnapshotBundle forged = *bundle;
    forged.private_sealed[0] ^= 1;
    EXPECT_FALSE(node::VerifyBundleContent(forged).ok());
  }
  {  // Forged evidence entry: parse failure or digest mismatch.
    node::SnapshotBundle forged = *bundle;
    forged.evidence_entry[forged.evidence_entry.size() / 2] ^= 1;
    EXPECT_FALSE(node::VerifyBundleContent(forged).ok());
  }
  {  // Forged receipt bytes.
    node::SnapshotBundle forged = *bundle;
    forged.receipt[forged.receipt.size() / 2] ^= 1;
    EXPECT_FALSE(node::VerifyBundle(forged, n0->service_identity()).ok());
  }
  {  // Intact bundle, wrong service: the receipt chain must not verify.
    crypto::KeyPair other = crypto::KeyPair::FromSeed(ToBytes("not-the-svc"));
    EXPECT_TRUE(node::VerifyBundleContent(*bundle).ok());
    EXPECT_FALSE(node::VerifyBundle(*bundle, other.public_key()).ok());
  }
}

// A joiner on a long ledger bootstraps from the verified bundle: its host
// ledger starts at the snapshot horizon (no retired prefix was replayed)
// and it converges to the service state, private writes included.
TEST(SnapshotJoin, JoinerBootstrapsFromVerifiedSnapshot) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  for (int i = 0; i < 60; ++i) {
    ASSERT_GT(WriteLog(client, "/app/log", i, "m" + std::to_string(i)), 0u);
  }
  ASSERT_TRUE(WaitForHostSnapshot(&h, n0));
  uint64_t snapshot_seqno = n0->host_snapshot_seqno();
  ASSERT_GE(snapshot_seqno, 50u);

  node::Node* n1 = h.Join("n1");
  ASSERT_TRUE(h.env().RunUntil([&] { return n1->has_joined(); }, 8000));

  // The join handed over the bundle, not the full ledger: the joiner's
  // ledger starts at the snapshot horizon.
  EXPECT_GE(n1->host_ledger().base_seqno(), snapshot_seqno);
  EXPECT_GE(n1->commit_seqno(), snapshot_seqno);

  ASSERT_TRUE(h.TrustNode("n1"));
  ASSERT_TRUE(h.WaitForCommitEverywhere(n0->commit_seqno()));
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return ServiceHarness::StateDigest(n1) ==
               ServiceHarness::StateDigest(n0);
      },
      8000));
  // Private state crossed inside the sealed half of the bundle.
  EXPECT_EQ(n1->store().GetStr(apps::kPrivateMessagesMap, "7"), "m7");
}

// Satellite regression: a node that serves a join inside a reconfiguration
// window must hand over ALL active configurations, not just the oldest --
// otherwise the joiner's consensus starts blind to the incoming config.
TEST(SnapshotJoin, JoinDuringReconfigWindowSeesAllActiveConfigs) {
  ServiceHarness h;
  h.AddUser("user0");
  node::Node* n0 = h.StartGenesis();

  node::Node* n1 = h.Join("n1");
  ASSERT_TRUE(h.env().RunUntil([&] { return n1->has_joined(); }, 8000));

  // Hold the joint window open: isolate n1, then trust it. The
  // reconfiguration entry appends on n0 but cannot commit (the new config
  // {n0, n1} needs n1's ack), so both configs stay active on n0.
  h.env().Isolate("n1", true);
  ASSERT_TRUE(h.RunProposal("transition_node_to_trusted", [] {
    json::Object args;
    args["node_id"] = "n1";
    return json::Value(std::move(args));
  }()));
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->raft().active_configs().size() == 2; }, 4000));

  // A third node joins inside the window.
  node::Node* n2 = h.Join("n2");
  ASSERT_TRUE(h.env().RunUntil([&] { return n2->has_joined(); }, 8000));

  bool saw_incoming_config = false;
  for (const auto& cfg : n2->raft().active_configs()) {
    if (cfg.nodes.count("n1") > 0) saw_incoming_config = true;
  }
  EXPECT_GE(n2->raft().active_configs().size(), 2u);
  EXPECT_TRUE(saw_incoming_config)
      << "joiner was handed only the oldest active config";

  // Heal and let the reconfiguration finish so teardown is clean.
  h.env().Isolate("n1", false);
  h.env().RunUntil(
      [&] { return n0->raft().active_configs().size() == 1; }, 8000);
}

// Historical queries below the snapshot horizon answer a terminal 404
// carrying the horizon, instead of retrying a fetch that can never
// succeed (the chunks were retired).
TEST(SnapshotCompaction, HistoricalQueryBelowHorizonIs404WithHorizon) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->snapshot_retire_ledger = true; });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  uint64_t early = WriteLog(client, "/app/log", 99, "early-write");
  ASSERT_GT(early, 0u);
  for (int i = 0; i < 60; ++i) {
    ASSERT_GT(WriteLog(client, "/app/log", i % 3, "m" + std::to_string(i)),
              0u);
  }
  ASSERT_TRUE(WaitForHostSnapshot(&h, n0));
  // Retirement ran: the host ledger now starts at the snapshot horizon.
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->host_ledger().base_seqno() >= early; }, 8000));
  uint64_t horizon = n0->host_ledger().base_seqno();

  std::string path =
      "/app/log/historical?id=99&seqno=" + std::to_string(early);
  Result<http::Response> final = Status::Unavailable("none");
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        final = client->Get(path);
        return final.ok() && final->status != 202;
      },
      8000));
  ASSERT_EQ(final->status, 404) << ToString(final->body);
  auto body = json::Parse(ToString(final->body));
  ASSERT_TRUE(body.ok());
  EXPECT_EQ(body->GetInt("horizon"), static_cast<int64_t>(horizon));
  const json::Value* err = body->Get("error");
  ASSERT_NE(err, nullptr);
  EXPECT_EQ(err->GetString("code"), "Compacted");
  EXPECT_NE(err->GetString("message").find("compacted"), std::string::npos);
  EXPECT_GT(n0->historical().stats().compacted, 0u);

  // The verdict is sticky: an immediate repeat answers 404 from the cache
  // without another fetch.
  uint64_t fetches_before = n0->historical().stats().fetches;
  auto again = client->Get(path);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(again->status, 404);
  EXPECT_EQ(n0->historical().stats().fetches, fetches_before);
}

// Disaster recovery from a directory whose ledger starts past seqno 1:
// the snapshot bundle is required, verified against the evidence receipt,
// and private state below the horizon is restored from the sealed half
// once members submit their shares.
TEST(SnapshotRecovery, RecoveryFromRetiredLedgerUsesVerifiedBundle) {
  ServiceHarness h;
  h.AddUser("user0");
  h.SetConfigTweak(
      [](node::NodeConfig* cfg) { cfg->snapshot_retire_ledger = true; });
  node::Node* n0 = h.StartGenesis();
  node::Client* client = h.UserClient("user0");

  for (int i = 0; i < 60; ++i) {
    ASSERT_GT(WriteLog(client, "/app/log", i, "pre-" + std::to_string(i)),
              0u);
  }
  ASSERT_TRUE(WaitForHostSnapshot(&h, n0));
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->host_ledger().base_seqno() > 0; }, 8000));
  // A write that lands in the suffix, above the snapshot horizon.
  ASSERT_GT(WriteLog(client, "/app/log", 777, "suffix-write"), 0u);
  ASSERT_TRUE(h.env().RunUntil(
      [&] { return n0->commit_seqno() >= n0->last_seqno(); }, 8000));

  TempDir dir;
  ASSERT_TRUE(n0->SaveLedgerToDir(dir.path()).ok());
  ASSERT_TRUE(n0->SaveSnapshotToDir(dir.path()).ok());
  uint64_t horizon = n0->host_ledger().base_seqno();
  h.DropClients();
  h.env().SetUp("n0", false);

  {  // A corrupted bundle is refused outright -- never installed.
    TempDir bad;
    for (const auto& de : std::filesystem::directory_iterator(dir.path())) {
      std::filesystem::copy(de.path(),
                            std::filesystem::path(bad.path()) /
                                de.path().filename());
    }
    std::filesystem::path bundle_file;
    for (const auto& de : std::filesystem::directory_iterator(bad.path())) {
      if (de.path().filename().string().rfind("snapshot_", 0) == 0) {
        bundle_file = de.path();
      }
    }
    ASSERT_FALSE(bundle_file.empty());
    std::string raw;
    {
      std::ifstream in(bundle_file, std::ios::binary);
      raw.assign(std::istreambuf_iterator<char>(in),
                 std::istreambuf_iterator<char>());
    }
    ASSERT_FALSE(raw.empty());
    raw[raw.size() / 2] ^= 1;
    {
      std::ofstream out(bundle_file, std::ios::binary | std::ios::trunc);
      out.write(raw.data(), static_cast<std::streamsize>(raw.size()));
    }
    auto refused = node::Node::CreateRecoveryFromDir(
        FastNodeConfig("rbad", 9), bad.path(), nullptr, &h.env());
    EXPECT_FALSE(refused.ok());
  }
  {  // A retired ledger without its bundle cannot be recovered from.
    TempDir missing;
    for (const auto& de : std::filesystem::directory_iterator(dir.path())) {
      if (de.path().filename().string().rfind("snapshot_", 0) == 0) continue;
      std::filesystem::copy(de.path(),
                            std::filesystem::path(missing.path()) /
                                de.path().filename());
    }
    auto refused = node::Node::CreateRecoveryFromDir(
        FastNodeConfig("rmiss", 10), missing.path(), nullptr, &h.env());
    EXPECT_FALSE(refused.ok());
  }

  // The genuine directory recovers: bundle verified, public state restored
  // from snapshot + suffix immediately.
  auto recovered = node::Node::CreateRecoveryFromDir(
      FastNodeConfig("r0", 7), dir.path(), nullptr, &h.env());
  ASSERT_TRUE(recovered.ok()) << recovered.status().ToString();
  node::Node* r0 = recovered->get();
  EXPECT_EQ(r0->host_ledger().base_seqno(), horizon);
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r0->IsPrimary() &&
               r0->service_status() == gov::ServiceStatus::kRecovering;
      },
      8000));
  // Private state (both below and above the horizon) is still sealed.
  EXPECT_FALSE(
      r0->store().GetStr(apps::kPrivateMessagesMap, "3").has_value());

  // Members submit shares; private state below the horizon comes from the
  // bundle's sealed half, above it from suffix replay.
  auto& members = h.consortium().members;
  bool recovered_flag = false;
  for (size_t i = 0; i < members.size() && !recovered_flag; ++i) {
    auto share = r0->ExtractRecoveryShare(members[i].id, members[i].key);
    ASSERT_TRUE(share.ok()) << share.status().ToString();
    node::Client mc("rec-member-" + members[i].id, &h.env(),
                    r0->service_identity(), &members[i].key,
                    members[i].cert);
    mc.Connect("r0");
    json::Object body;
    body["share"] = HexEncode(*share);
    auto resp = mc.PostJsonSigned("/gov/recovery_share",
                                  json::Value(std::move(body)));
    ASSERT_TRUE(resp.ok()) << resp.status().ToString();
    ASSERT_EQ(resp->status, 200) << ToString(resp->body);
    auto parsed = json::Parse(ToString(resp->body));
    ASSERT_TRUE(parsed.ok());
    recovered_flag = parsed->GetBool("recovered");
  }
  ASSERT_TRUE(recovered_flag);
  ASSERT_TRUE(h.env().RunUntil(
      [&] {
        return r0->store()
            .GetStr(apps::kPrivateMessagesMap, "3")
            .has_value();
      },
      5000));
  EXPECT_EQ(r0->store().GetStr(apps::kPrivateMessagesMap, "3"), "pre-3");
  EXPECT_EQ(r0->store().GetStr(apps::kPrivateMessagesMap, "777"),
            "suffix-write");
}

}  // namespace
}  // namespace ccf::testing
