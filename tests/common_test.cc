#include <gtest/gtest.h>

#include "common/buffer.h"
#include "common/bytes.h"
#include "common/hex.h"
#include "common/status.h"

namespace ccf {
namespace {

TEST(StatusTest, OkByDefault) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::NotFound("missing key");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsNotFound());
  EXPECT_EQ(s.code(), Status::Code::kNotFound);
  EXPECT_EQ(s.message(), "missing key");
  EXPECT_EQ(s.ToString(), "NOT_FOUND: missing key");
}

TEST(StatusTest, AllCodesHaveNames) {
  EXPECT_STREQ(Status::CodeName(Status::Code::kCorruption), "CORRUPTION");
  EXPECT_STREQ(Status::CodeName(Status::Code::kAborted), "ABORTED");
  EXPECT_STREQ(Status::CodeName(Status::Code::kUnavailable), "UNAVAILABLE");
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = Status::Internal("boom");
  EXPECT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), Status::Code::kInternal);
}

Result<int> ParsePositive(int x) {
  if (x <= 0) return Status::InvalidArgument("not positive");
  return x;
}

Status UseAssignOrReturn(int x, int* out) {
  ASSIGN_OR_RETURN(int v, ParsePositive(x));
  *out = v * 2;
  return Status::Ok();
}

TEST(ResultTest, AssignOrReturnPropagates) {
  int out = 0;
  EXPECT_TRUE(UseAssignOrReturn(21, &out).ok());
  EXPECT_EQ(out, 42);
  Status s = UseAssignOrReturn(-1, &out);
  EXPECT_EQ(s.code(), Status::Code::kInvalidArgument);
}

TEST(HexTest, RoundTrip) {
  Bytes data = {0x00, 0x01, 0xab, 0xff};
  std::string hex = HexEncode(data);
  EXPECT_EQ(hex, "0001abff");
  auto back = HexDecode(hex);
  ASSERT_TRUE(back.ok());
  EXPECT_EQ(*back, data);
}

TEST(HexTest, DecodeUppercase) {
  auto r = HexDecode("ABFF");
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, (Bytes{0xab, 0xff}));
}

TEST(HexTest, RejectsOddLength) {
  EXPECT_FALSE(HexDecode("abc").ok());
}

TEST(HexTest, RejectsNonHex) {
  EXPECT_FALSE(HexDecode("zz").ok());
}

TEST(BytesTest, ConstantTimeEqual) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 3};
  Bytes c = {1, 2, 4};
  EXPECT_TRUE(ConstantTimeEqual(a, b));
  EXPECT_FALSE(ConstantTimeEqual(a, c));
  EXPECT_FALSE(ConstantTimeEqual(a, ByteSpan(a.data(), 2)));
}

TEST(BufferTest, IntegerRoundTrip) {
  BufWriter w;
  w.U8(0xab);
  w.U16(0x1234);
  w.U32(0xdeadbeef);
  w.U64(0x0123456789abcdefULL);
  w.I64(-17);
  w.Bool(true);

  BufReader r(w.data());
  EXPECT_EQ(r.U8().value(), 0xab);
  EXPECT_EQ(r.U16().value(), 0x1234);
  EXPECT_EQ(r.U32().value(), 0xdeadbeefu);
  EXPECT_EQ(r.U64().value(), 0x0123456789abcdefULL);
  EXPECT_EQ(r.I64().value(), -17);
  EXPECT_EQ(r.Bool().value(), true);
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, BlobAndStr) {
  BufWriter w;
  w.Blob(Bytes{9, 8, 7});
  w.Str("hello");

  BufReader r(w.data());
  EXPECT_EQ(r.Blob().value(), (Bytes{9, 8, 7}));
  EXPECT_EQ(r.Str().value(), "hello");
  EXPECT_TRUE(r.AtEnd());
}

TEST(BufferTest, UnderflowFails) {
  BufWriter w;
  w.U16(7);
  BufReader r(w.data());
  EXPECT_FALSE(r.U32().ok());
}

TEST(BufferTest, BlobLengthBeyondBufferFails) {
  BufWriter w;
  w.U64(1000);  // claims a 1000-byte blob
  w.U8(1);
  BufReader r(w.data());
  EXPECT_FALSE(r.Blob().ok());
}

TEST(BufferTest, LittleEndianLayout) {
  BufWriter w;
  w.U32(0x01020304);
  ASSERT_EQ(w.size(), 4u);
  EXPECT_EQ(w.data()[0], 0x04);
  EXPECT_EQ(w.data()[3], 0x01);
}

}  // namespace
}  // namespace ccf
